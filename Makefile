# Tier-1 verification plus the race-clean CI gate for the parallel
# experiment runner. `make check` is the full pre-merge pipeline.

GO ?= go

# Hot-path packages measured by the benchmark trajectory (BENCH_*.json).
BENCH_PKGS = ./internal/sim ./internal/lock ./internal/cpu ./internal/hybrid

# Fuzz targets of the correctness harness (DESIGN.md §11); FUZZTIME bounds
# each target's smoke budget.
FUZZTIME ?= 10s
FUZZ_TARGETS = FuzzHeap:./internal/sim FuzzShardSync:./internal/sim FuzzLock:./internal/lock FuzzConfig:./internal/simtest FuzzWorkloadConfig:./internal/simtest

.PHONY: all build test vet staticcheck race race-stress smoke bench-smoke simtest fuzz-smoke cluster-smoke check bench figures

all: build test

# Tests always run shuffled: any hidden ordering dependence between tests
# is a bug, and a fixed execution order would mask it.
test:
	$(GO) test -shuffle=on ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Staticcheck is optional locally (the target skips with a hint when the
# binary is absent) but enforced in CI, which installs a pinned version.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)"; \
	fi

# The parallel runner fans concurrent engines across goroutines; the race
# detector must stay clean over the whole tree.
race:
	$(GO) test -race -shuffle=on ./...

# The correctness harness under the race detector: metamorphic relations,
# conservation laws, the model↔sim differential gate, and the
# sequential↔parallel bit-exactness matrix of the sharded core, all fanned
# through the parallel pool — so this doubles as a concurrency test.
# Shuffled so hidden ordering dependence between harness tests is a failure.
simtest:
	$(GO) test -race -shuffle=on -v -run 'Test' ./internal/simtest/

# Saturated 64-site run through the sharded parallel core under the race
# detector, with the Group's 10s deadlock watchdog armed: any data race or
# synchronization hang in the shard workers fails loudly here.
race-stress:
	$(GO) test -race -count=1 -run 'TestParallelRaceStress|TestParallelSequentialDifferential' ./internal/simtest/
	$(GO) test -race -count=1 ./internal/sim/ ./internal/hybrid/

# Short native-fuzzing pass over every fuzz target. Each target gets
# FUZZTIME of mutation on top of replaying the committed corpus; a crasher
# is reported with its corpus file for replay.
fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		name=$${t%%:*}; pkg=$${t#*:}; \
		echo "--- fuzz $$name ($$pkg, $(FUZZTIME))"; \
		$(GO) test -fuzz "^$$name$$" -fuzztime $(FUZZTIME) -run '^$$' $$pkg; \
	done

# Live loopback cluster gate (DESIGN.md §13): the in-process cluster smoke
# (1 central + 2 sites, paced load, nonzero commits on both paths), then
# the process-level smoke — build cmd/hybridd and cmd/hybridload, boot
# 1 central + 4 site processes on loopback, drive a short paced run, and
# require nonzero completions, zero request errors, and clean SIGTERM
# shutdowns with counter lines from every node.
# Live-cluster gate, two levels. In-process: 1 central + 2 sites under one
# test binary, asserting commits on both routing paths and transaction
# conservation from each node's metrics registry. Process-level: builds
# hybridd + hybridload, boots 1 central + 4 sites as real processes, drives
# a paced load, scrapes every node's /metrics and asserts conservation
# (generated == completed + replies + in-flight per site, ship_arrived ==
# commits + in_system at central, sums balancing cluster-wide), then merges
# the per-process span traces and requires a cross-process span tree.
cluster-smoke:
	$(GO) test -count=1 -run 'TestClusterSmoke' ./internal/cluster/
	$(GO) test -count=1 -run 'TestClusterProcessSmoke' ./cmd/hybridd/

# Short-sweep smoke run of the figure pipeline: replicated, fanned across
# 4 workers, exercising seeds, aggregation, and table rendering end to end.
smoke:
	$(GO) run ./cmd/figures -quick -fig 4.2 -reps 2 -parallel 4

# One-iteration benchmark pass: keeps every benchmark compiling and running
# without paying for statistically meaningful timings.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' $(BENCH_PKGS)

check: vet staticcheck race simtest race-stress smoke bench-smoke fuzz-smoke cluster-smoke

# Full benchmark run over the hot-path packages, recorded as a
# machine-readable summary (BENCH_$(BENCH_LABEL).json) diffed against the
# committed pre-PR baseline. See DESIGN.md "Performance".
BENCH_LABEL ?= pr10
BENCH_BASELINE ?= bench/baseline_pr6.txt
BENCH_NOTES ?=
bench:
	$(GO) test -bench=. -benchmem -run='^$$' $(BENCH_PKGS) | tee bench/current.txt
	$(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -baseline $(BENCH_BASELINE) -notes '$(BENCH_NOTES)' -out BENCH_$(BENCH_LABEL).json bench/current.txt

# Full-length regeneration of every figure (about 5 minutes serially; use
# REPS/PARALLEL to replicate and fan out, e.g. make figures REPS=5).
REPS ?= 1
PARALLEL ?= 0
figures:
	$(GO) run ./cmd/figures -reps $(REPS) -parallel $(PARALLEL)
