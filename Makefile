# Tier-1 verification plus the race-clean CI gate for the parallel
# experiment runner. `make check` is the full pre-merge pipeline.

GO ?= go

# Hot-path packages measured by the benchmark trajectory (BENCH_*.json).
BENCH_PKGS = ./internal/sim ./internal/lock ./internal/cpu ./internal/hybrid

.PHONY: all build test vet race smoke bench-smoke check bench figures

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel runner fans concurrent engines across goroutines; the race
# detector must stay clean over the whole tree.
race:
	$(GO) test -race ./...

# Short-sweep smoke run of the figure pipeline: replicated, fanned across
# 4 workers, exercising seeds, aggregation, and table rendering end to end.
smoke:
	$(GO) run ./cmd/figures -quick -fig 4.2 -reps 2 -parallel 4

# One-iteration benchmark pass: keeps every benchmark compiling and running
# without paying for statistically meaningful timings.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' $(BENCH_PKGS)

check: vet race smoke bench-smoke

# Full benchmark run over the hot-path packages, recorded as a
# machine-readable summary (BENCH_pr3.json) diffed against the committed
# pre-PR baseline in bench/baseline_pr2.txt. See DESIGN.md "Performance".
bench:
	$(GO) test -bench=. -benchmem -run='^$$' $(BENCH_PKGS) | tee bench/current.txt
	$(GO) run ./cmd/benchjson -label pr3 -baseline bench/baseline_pr2.txt -o BENCH_pr3.json bench/current.txt

# Full-length regeneration of every figure (about 5 minutes serially; use
# REPS/PARALLEL to replicate and fan out, e.g. make figures REPS=5).
REPS ?= 1
PARALLEL ?= 0
figures:
	$(GO) run ./cmd/figures -reps $(REPS) -parallel $(PARALLEL)
