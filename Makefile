# Tier-1 verification plus the race-clean CI gate for the parallel
# experiment runner. `make check` is the full pre-merge pipeline.

GO ?= go

.PHONY: all build test vet race smoke check bench figures

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel runner fans concurrent engines across goroutines; the race
# detector must stay clean over the whole tree.
race:
	$(GO) test -race ./...

# Short-sweep smoke run of the figure pipeline: replicated, fanned across
# 4 workers, exercising seeds, aggregation, and table rendering end to end.
smoke:
	$(GO) run ./cmd/figures -quick -fig 4.2 -reps 2 -parallel 4

check: vet race smoke

bench:
	$(GO) test -bench=. -benchmem ./...

# Full-length regeneration of every figure (about 5 minutes serially; use
# REPS/PARALLEL to replicate and fan out, e.g. make figures REPS=5).
REPS ?= 1
PARALLEL ?= 0
figures:
	$(GO) run ./cmd/figures -reps $(REPS) -parallel $(PARALLEL)
