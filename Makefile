# Tier-1 verification plus the race-clean CI gate for the parallel
# experiment runner. `make check` is the full pre-merge pipeline.

GO ?= go

# Hot-path packages measured by the benchmark trajectory (BENCH_*.json).
BENCH_PKGS = ./internal/sim ./internal/lock ./internal/cpu ./internal/hybrid

.PHONY: all build test vet staticcheck race smoke bench-smoke check bench figures

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Staticcheck is optional locally (the target skips with a hint when the
# binary is absent) but enforced in CI, which installs a pinned version.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)"; \
	fi

# The parallel runner fans concurrent engines across goroutines; the race
# detector must stay clean over the whole tree.
race:
	$(GO) test -race ./...

# Short-sweep smoke run of the figure pipeline: replicated, fanned across
# 4 workers, exercising seeds, aggregation, and table rendering end to end.
smoke:
	$(GO) run ./cmd/figures -quick -fig 4.2 -reps 2 -parallel 4

# One-iteration benchmark pass: keeps every benchmark compiling and running
# without paying for statistically meaningful timings.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' $(BENCH_PKGS)

check: vet staticcheck race smoke bench-smoke

# Full benchmark run over the hot-path packages, recorded as a
# machine-readable summary (BENCH_$(BENCH_LABEL).json) diffed against the
# committed pre-PR baseline. See DESIGN.md "Performance".
BENCH_LABEL ?= pr4
BENCH_BASELINE ?= bench/baseline_pr2.txt
bench:
	$(GO) test -bench=. -benchmem -run='^$$' $(BENCH_PKGS) | tee bench/current.txt
	$(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -baseline $(BENCH_BASELINE) -out BENCH_$(BENCH_LABEL).json bench/current.txt

# Full-length regeneration of every figure (about 5 minutes serially; use
# REPS/PARALLEL to replicate and fan out, e.g. make figures REPS=5).
REPS ?= 1
PARALLEL ?= 0
figures:
	$(GO) run ./cmd/figures -reps $(REPS) -parallel $(PARALLEL)
