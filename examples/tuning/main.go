// Tuning: reproduces the threshold-tuning story of Figures 4.4 and 4.7 in
// miniature. The queue-length heuristic ships a transaction when the local
// utilization estimate exceeds the central one by a threshold θ. The paper's
// finding: the best θ is negative (~-0.2) at 0.2 s communications delay —
// the fast central CPU is worth shipping to even when the local site looks
// less busy — but moves positive-ward at 0.5 s delay, and picking it wrong
// costs real response time. The state-aware dynamic strategy needs no such
// tuning.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"hybriddb"
)

func main() {
	thetas := []float64{-0.3, -0.2, -0.1, 0, +0.1, +0.2}
	delays := []float64{0.2, 0.5}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Println("Queue-threshold tuning at 25 tps — mean response time (s)")
	fmt.Fprintln(tw, "θ \\ delay\t0.2 s\t0.5 s")

	results := make(map[float64][]float64, len(thetas))
	best := map[float64]struct {
		theta float64
		rt    float64
	}{}
	for _, d := range delays {
		best[d] = struct {
			theta float64
			rt    float64
		}{rt: 1e18}
	}

	for _, theta := range thetas {
		for _, d := range delays {
			cfg := config(d)
			r, err := hybriddb.Run(cfg, hybriddb.QueueThreshold(theta))
			if err != nil {
				log.Fatal(err)
			}
			results[theta] = append(results[theta], r.MeanRT)
			if r.MeanRT < best[d].rt {
				best[d] = struct {
					theta float64
					rt    float64
				}{theta, r.MeanRT}
			}
		}
		fmt.Fprintf(tw, "%+.1f\t%.3f\t%.3f\n", theta, results[theta][0], results[theta][1])
	}

	// The tuning-free reference.
	var reference []float64
	for _, d := range delays {
		cfg := config(d)
		r, err := hybriddb.Run(cfg, hybriddb.Best(cfg))
		if err != nil {
			log.Fatal(err)
		}
		reference = append(reference, r.MeanRT)
	}
	fmt.Fprintf(tw, "best dynamic\t%.3f\t%.3f\n", reference[0], reference[1])
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nbest threshold: θ=%+.1f at 0.2 s delay, θ=%+.1f at 0.5 s delay\n",
		best[0.2].theta, best[0.5].theta)
	lowCost := results[-0.3][0] - best[0.2].rt
	highCost := results[-0.3][1] - best[0.5].rt
	fmt.Printf("cost of mistuning to θ=-0.3: %.3f s at 0.2 s delay, %.3f s at 0.5 s delay\n",
		lowCost, highCost)
	fmt.Println("An aggressive (negative) threshold is nearly free at low delay but expensive")
	fmt.Println("at high delay: the right θ depends on the communications delay (and on MIPS")
	fmt.Println("ratios and site counts) — the model-based dynamic strategy needs no tuning.")
}

func config(delay float64) hybriddb.Config {
	cfg := hybriddb.DefaultConfig()
	cfg.CommDelay = delay
	cfg.ArrivalRatePerSite = 2.5
	cfg.Warmup = 100
	cfg.Duration = 400
	return cfg
}
