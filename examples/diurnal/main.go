// Diurnal: time-varying regional load — the "load fluctuations" the paper's
// introduction names alongside regional locality. Ten regional sites span
// time zones; each cycles through a quiet night, a morning ramp, a midday
// peak, and an evening tail, with the peaks staggered so the system-wide
// load follows the sun.
//
// A static policy can only be tuned to one operating point. The adaptive
// static strategy re-optimizes from measured rates every few minutes, and
// the fully dynamic strategy decides per arrival — the example prints the
// response-time time series so the adaptation is visible.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"hybriddb"
)

func main() {
	cfg := hybriddb.DefaultConfig()
	cfg.Warmup = 200
	cfg.Duration = 1200
	cfg.SeriesBucket = 200

	// A 1200 s "day": night, ramp, peak, tail. Site i's day is shifted by
	// i*120 s, staggering the regional peaks.
	day := hybriddb.RateSchedule{
		{Duration: 400, Rate: 0.5},
		{Duration: 200, Rate: 2.0},
		{Duration: 300, Rate: 3.2},
		{Duration: 300, Rate: 1.2},
	}
	cfg.RateSchedules = make([]hybriddb.RateSchedule, cfg.Sites)
	for i := range cfg.RateSchedules {
		cfg.RateSchedules[i] = day.Shift(float64(i) * 120)
	}
	// The a-priori static optimum only knows the mean rate.
	cfg.ArrivalRatePerSite = day.MeanRate()

	staticStrat, pShip, err := hybriddb.StaticOptimal(cfg)
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := hybriddb.AdaptiveStatic(cfg, 60, 7)
	if err != nil {
		log.Fatal(err)
	}
	policies := []struct {
		label string
		s     hybriddb.Strategy
	}{
		{fmt.Sprintf("static p=%.2f (mean-rate tuned)", pShip), staticStrat},
		{"adaptive static (60s window)", adaptive},
		{"best dynamic (min-average/nis)", hybriddb.Best(cfg)},
	}

	fmt.Printf("Follow-the-sun load: staggered regional days, mean %.1f tps/site\n\n",
		day.MeanRate())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tmean RT\tp95 RT\tshipped\tRT by 200s bucket")
	for _, p := range policies {
		r, err := hybriddb.Run(cfg, p.s)
		if err != nil {
			log.Fatal(err)
		}
		series := ""
		for _, b := range r.RTSeries {
			series += fmt.Sprintf("%.2f ", b.MeanRT)
		}
		fmt.Fprintf(tw, "%s\t%.2f s\t%.2f s\t%.0f%%\t%s\n",
			p.label, r.MeanRT, r.P95RT, 100*r.ShipFraction, series)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe per-arrival dynamic policy rides the staggered peaks with the")
	fmt.Println("flattest series; the mean-rate-tuned static policy over-ships during")
	fmt.Println("regional nights and under-ships during peaks.")
}
