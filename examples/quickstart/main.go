// Quickstart: simulate the paper's default system (10 regional database
// sites + one central complex) at a moderate load and compare running
// everything locally against the paper's best dynamic load-sharing strategy.
package main

import (
	"fmt"
	"log"

	"hybriddb"
)

func main() {
	// The paper's §4.1 parameters: 10 sites of 1 MIPS, a 15 MIPS central
	// complex, 0.2 s one-way network delay, 75% local-data transactions.
	cfg := hybriddb.DefaultConfig()
	cfg.ArrivalRatePerSite = 2.5 // 25 transactions/second system-wide
	cfg.Warmup = 100
	cfg.Duration = 400

	baseline, err := hybriddb.Run(cfg, hybriddb.None())
	if err != nil {
		log.Fatal(err)
	}
	best, err := hybriddb.Run(cfg, hybriddb.Best(cfg))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hybriddb quickstart — 25 tps over 10 regional sites")
	fmt.Println()
	show("no load sharing", baseline)
	show("best dynamic (min-average/nis)", best)
	fmt.Printf("load sharing improves mean response time by %.1fx\n",
		baseline.MeanRT/best.MeanRT)
}

func show(label string, r hybriddb.Result) {
	fmt.Printf("%-32s mean RT %6.3f s   p95 %6.3f s   shipped %4.1f%%   local util %.2f   central util %.2f\n",
		label, r.MeanRT, r.P95RT, 100*r.ShipFraction, r.UtilLocalMean, r.UtilCentral)
}
