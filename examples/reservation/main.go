// Reservation: an airline-reservation scenario, one of the applications the
// paper's introduction motivates. Ten regional booking systems hold the
// seat inventory for flights departing from their region; the central
// complex replicates everything. Most bookings touch only regional flights
// (class A); itineraries spanning regions are class B and run centrally.
//
// The example sweeps the booking rate through an evening peak and prints,
// for each policy, the mean time to confirm a booking — reproducing in
// miniature the paper's Figure 4.1 story: regional systems alone fall over
// first, probabilistic offloading helps, and state-aware dynamic routing
// holds the lowest confirmation times through the peak.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"hybriddb"
)

func main() {
	base := hybriddb.DefaultConfig()
	base.Warmup = 100
	base.Duration = 400
	base.PLocal = 0.75 // 75% of bookings are single-region
	base.PWrite = 0.30 // seat updates are writes; availability checks reads

	peak := []float64{1.0, 1.8, 2.6, 3.2} // bookings/s per region

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Println("Regional reservation system — time to confirm a booking (seconds)")
	fmt.Fprintln(tw, "bookings/s (system)\tregional only\tstatic offload\tdynamic routing\tdynamic ships")
	for _, rate := range peak {
		cfg := base
		cfg.ArrivalRatePerSite = rate

		regional, err := hybriddb.Run(cfg, hybriddb.None())
		if err != nil {
			log.Fatal(err)
		}

		staticStrat, pShip, err := hybriddb.StaticOptimal(cfg)
		if err != nil {
			log.Fatal(err)
		}
		static, err := hybriddb.Run(cfg, staticStrat)
		if err != nil {
			log.Fatal(err)
		}

		dynamic, err := hybriddb.Run(cfg, hybriddb.Best(cfg))
		if err != nil {
			log.Fatal(err)
		}

		fmt.Fprintf(tw, "%.0f\t%.2f\t%.2f (p=%.2f)\t%.2f\t%.0f%%\n",
			rate*float64(cfg.Sites),
			regional.MeanRT, static.MeanRT, pShip,
			dynamic.MeanRT, 100*dynamic.ShipFraction)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRegional-only confirmation times collapse at the peak; dynamic routing")
	fmt.Println("keeps them nearly flat by shipping just enough bookings to the center.")
}
