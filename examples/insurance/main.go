// Insurance: the third application domain the paper names (reservation
// systems, insurance, banking). Regional offices hold their policyholders'
// records; the central complex replicates them for company-wide processing.
// Claims handling is read-heavy (adjusters reading policies and histories);
// end-of-month policy renewals are write-heavy (premium and term updates).
//
// The example contrasts the two regimes at the same transaction volume to
// show how the write mix drives cross-site data contention — the force that
// distinguishes this system from classical load balancing: under writes,
// shipping a transaction can abort the transactions already running at the
// other tier, and the dynamic strategies must weigh that.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"hybriddb"
)

func main() {
	regimes := []struct {
		label  string
		pWrite float64
	}{
		{"claims handling (reads, 10% writes)", 0.10},
		{"renewals batch (55% writes)", 0.55},
	}

	fmt.Println("Regional insurance system at 25 tps — read-heavy vs write-heavy")
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tpolicy\tmean RT\tcross-site aborts\tshipped")
	for _, regime := range regimes {
		cfg := hybriddb.DefaultConfig()
		cfg.ArrivalRatePerSite = 2.5
		cfg.PWrite = regime.pWrite
		cfg.Lockspace = 8_192 // a regional policy base small enough to contend
		cfg.Warmup = 100
		cfg.Duration = 400

		for _, policy := range []struct {
			label string
			s     hybriddb.Strategy
		}{
			{"static optimal", mustStatic(cfg)},
			{"best dynamic", hybriddb.Best(cfg)},
		} {
			r, err := hybriddb.Run(cfg, policy.s)
			if err != nil {
				log.Fatal(err)
			}
			cross := r.AbortsLocalSeized + r.AbortsCentralNACK + r.AbortsCentralInval
			fmt.Fprintf(tw, "%s\t%s\t%.2f s\t%d\t%.0f%%\n",
				regime.label, policy.label, r.MeanRT, cross, 100*r.ShipFraction)
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWrites multiply cross-site aborts several-fold: every regional update can")
	fmt.Println("invalidate central readers, and every central commit can seize locks from")
	fmt.Println("regional transactions. The dynamic policy still wins on response time while")
	fmt.Println("shipping far less than the static optimum in both regimes.")
}

func mustStatic(cfg hybriddb.Config) hybriddb.Strategy {
	s, _, err := hybriddb.StaticOptimal(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return s
}
