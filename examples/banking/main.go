// Banking: branch banking with a regional load surge — the "load
// fluctuations" the paper's introduction names as a motivation for dynamic
// load sharing. Nine branch regions run at a calm 1.2 tps while one region
// (a city center on payday) surges to 4 tps, beyond its local processor's
// capacity.
//
// A static policy tuned for the *average* rate treats all regions alike: it
// ships too much from the calm regions and too little from the hot one. The
// dynamic strategies decide per arrival from the observed state of the
// arrival site, so only the hot branch offloads heavily.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"hybriddb"
)

func main() {
	cfg := hybriddb.DefaultConfig()
	cfg.Warmup = 100
	cfg.Duration = 400
	cfg.PWrite = 0.35 // debits/credits update balances

	// Nine calm regions, one payday surge.
	rates := make([]float64, cfg.Sites)
	var total float64
	for i := range rates {
		rates[i] = 1.2
		total += rates[i]
	}
	rates[0] = 4.0
	total += rates[0] - 1.2
	cfg.SiteRates = rates
	// The static optimizer only knows the average rate — its handicap here.
	cfg.ArrivalRatePerSite = total / float64(cfg.Sites)

	staticStrat, pShip, err := hybriddb.StaticOptimal(cfg)
	if err != nil {
		log.Fatal(err)
	}

	policies := []struct {
		label string
		s     hybriddb.Strategy
	}{
		{"branch only (none)", hybriddb.None()},
		{fmt.Sprintf("static p=%.2f (rate-blind)", pShip), staticStrat},
		{"queue-length heuristic", hybriddb.QueueLengthHeuristic()},
		{"best dynamic (min-average/nis)", hybriddb.Best(cfg)},
	}

	fmt.Printf("Branch banking, payday surge: region 0 at 4.0 tps, others at 1.2 tps (%.1f tps total)\n\n", total)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tmean RT\tp95 RT\thottest branch util\tmean branch util\tshipped")
	for _, p := range policies {
		r, err := hybriddb.Run(cfg, p.s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.2f s\t%.2f s\t%.2f\t%.2f\t%.0f%%\n",
			p.label, r.MeanRT, r.P95RT, r.UtilLocalMax, r.UtilLocalMean,
			100*r.ShipFraction)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe dynamic policies drain the surging branch without over-shipping the")
	fmt.Println("calm ones — something no single static probability can do.")
}
