// Architectures: reproduces the motivating comparison of the paper's
// introduction (§1). Three ways to build the same regional transaction
// system:
//
//   - fully centralized: every transaction ships to the central complex;
//     simple, fast CPU, but every transaction pays the network round trip;
//   - fully distributed: transactions run at their home site and reach
//     remote data by remote function calls; excellent when references are
//     local, but the paper (citing DIAS87) notes it is much worse than the
//     centralized system once remote calls per transaction approach one;
//   - hybrid: the paper's architecture, with the central site replicating
//     every regional database and the best dynamic load-sharing strategy
//     routing class A transactions.
//
// The example sweeps the locality of reference and prints the three mean
// response times side by side: the pure architectures cross over, and the
// hybrid tracks (or beats) the better of the two at every point.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"hybriddb/internal/altarch"
	"hybriddb/internal/hybrid"
)

func main() {
	cfg := hybrid.DefaultConfig()
	cfg.ArrivalRatePerSite = 1.0
	cfg.CommDelay = 0.5 // long-haul links make the architectural choice stark
	cfg.Warmup = 100
	cfg.Duration = 400

	points, err := altarch.LocalitySweep(cfg,
		[]float64{0.5, 0.75, 0.9, 1.0}, altarch.DefaultLockTimeout)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Centralized vs distributed vs hybrid — mean response time (s)")
	fmt.Printf("10 sites x 1 MIPS, central 15 MIPS, delay %.1f s, %.0f tps total\n\n",
		cfg.CommDelay, cfg.ArrivalRatePerSite*float64(cfg.Sites))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "locality (p_local)\tremote calls/txn\tcentralized\tdistributed\thybrid (best dynamic)")
	for _, p := range points {
		fmt.Fprintf(tw, "%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			p.PLocal, p.Distributed.RemoteCallsPerTxn,
			p.Centralized.MeanRT, p.Distributed.MeanRT, p.Hybrid.MeanRT)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe distributed system wins only when remote calls per transaction are")
	fmt.Println("far below one (locality near 1.0); the centralized system wins otherwise;")
	fmt.Println("the hybrid tracks the better of the two across the whole range — the")
	fmt.Println("design goal stated in the paper's introduction.")
}
