// Epochs: asynchronous per-commit propagation versus epoch-batched
// (STAR-style) propagation, head to head. Every local commit must reach the
// central copy, and each update message costs central CPU to process
// (UpdateProcInstr); batching all of a site's commits into one message per
// epoch amortises that cost at the price of staler central data — invalidated
// central executions are discovered later, and the coherence windows grow
// with the epoch.
//
// The sweep holds the workload fixed and varies the epoch length from 0
// (per-commit async) upward, printing the trade: network messages and central
// utilization fall with the epoch, while invalidation aborts and response
// time drift up once epochs are long enough for stale central locks to
// matter.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"hybriddb"
)

func main() {
	cfg := hybriddb.DefaultConfig()
	cfg.Sites = 8
	cfg.ArrivalRatePerSite = 2.0
	cfg.Warmup = 100
	cfg.Duration = 600
	// Message handling consumes central CPU per update message — the term
	// batching exists to amortise. Without it the modes differ only in
	// timing, not in load.
	cfg.UpdateProcInstr = 60_000

	epochs := []float64{0, 0.25, 1, 4, 16}

	fmt.Printf("Per-commit async vs epoch-batched propagation, %d sites at %.1f tps/site\n",
		cfg.Sites, cfg.ArrivalRatePerSite)
	fmt.Printf("(update processing %.0fk instructions per message at central)\n\n",
		cfg.UpdateProcInstr/1000)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "propagation\tmean RT\tp95 RT\tmessages\tcentral util\taborts inval\tNACK")
	for _, epoch := range epochs {
		run := cfg
		run.EpochLength = epoch
		r, err := hybriddb.Run(run, hybriddb.Best(run))
		if err != nil {
			log.Fatal(err)
		}
		label := "per-commit async"
		if epoch > 0 {
			label = fmt.Sprintf("epoch %.2g s", epoch)
		}
		fmt.Fprintf(tw, "%s\t%.3f s\t%.3f s\t%d\t%.3f\t%d\t%d\n",
			label, r.MeanRT, r.P95RT, r.MessagesSent, r.UtilCentral,
			r.AbortsCentralInval, r.AbortsCentralNACK)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nShort epochs already collapse the per-commit message stream into one")
	fmt.Println("uplink message per site per epoch, relieving the central CPU of the")
	fmt.Println("per-message processing; long epochs trade that gain for staleness —")
	fmt.Println("central executions hold invalidated data longer before the batched")
	fmt.Println("updates arrive to abort them.")
}
