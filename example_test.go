package hybriddb_test

import (
	"fmt"

	"hybriddb"
)

// Example simulates the paper's default system at a moderate load under the
// best dynamic strategy and reports whether load sharing engaged.
func Example() {
	cfg := hybriddb.DefaultConfig()
	cfg.ArrivalRatePerSite = 2.0 // 20 tps over 10 sites
	cfg.Warmup, cfg.Duration = 100, 400

	res, err := hybriddb.Run(cfg, hybriddb.Best(cfg))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("strategy: %s\n", res.Strategy)
	fmt.Printf("shipped some class A transactions: %v\n", res.ShipFraction > 0.1)
	fmt.Printf("kept mean response under 1.5s: %v\n", res.MeanRT < 1.5)
	// Output:
	// strategy: min-average/nis
	// shipped some class A transactions: true
	// kept mean response under 1.5s: true
}

// ExampleOptimalShipFraction finds the optimal static policy analytically:
// at low load nothing should be shipped.
func ExampleOptimalShipFraction() {
	cfg := hybriddb.DefaultConfig()
	cfg.ArrivalRatePerSite = 0.3 // 3 tps total: local sites are nearly idle
	p, _, err := hybriddb.OptimalShipFraction(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("optimal p_ship below 0.05: %v\n", p < 0.05)
	// Output:
	// optimal p_ship below 0.05: true
}

// ExampleAnalyze solves the §3.1 analytical model without simulating.
func ExampleAnalyze() {
	cfg := hybriddb.DefaultConfig()
	cfg.ArrivalRatePerSite = 1.0
	m, err := hybriddb.Analyze(cfg, 0.3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("converged: %v, saturated: %v\n", m.Converged, m.Saturated)
	fmt.Printf("local faster than shipped at low load: %v\n", m.RLocal < m.RCentral)
	// Output:
	// converged: true, saturated: false
	// local faster than shipped at low load: true
}

// ExampleCompareArchitectures reproduces the introduction's three-way
// architecture comparison at full locality and a long-haul delay, where the
// distributed system's avoidance of communication wins.
func ExampleCompareArchitectures() {
	cfg := hybriddb.DefaultConfig()
	cfg.PLocal = 1.0
	cfg.CommDelay = 0.5
	cfg.ArrivalRatePerSite = 0.5
	cfg.Warmup, cfg.Duration = 50, 200

	cmp, err := hybriddb.CompareArchitectures(cfg, hybriddb.DefaultLockTimeout)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("distributed beats centralized at full locality: %v\n",
		cmp.Distributed.MeanRT < cmp.Centralized.MeanRT)
	// Output:
	// distributed beats centralized at full locality: true
}
