package hybriddb_test

import (
	"math"
	"testing"

	"hybriddb"
)

func smallConfig() hybriddb.Config {
	cfg := hybriddb.DefaultConfig()
	cfg.Warmup = 30
	cfg.Duration = 90
	return cfg
}

func TestPublicRun(t *testing.T) {
	cfg := smallConfig()
	res, err := hybriddb.Run(cfg, hybriddb.Best(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.MeanRT <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.Strategy != "min-average/nis" {
		t.Errorf("strategy = %q", res.Strategy)
	}
}

func TestPublicRunInvalidConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Sites = 0
	if _, err := hybriddb.Run(cfg, hybriddb.None()); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestNewEngine(t *testing.T) {
	cfg := smallConfig()
	e, err := hybriddb.NewEngine(cfg, hybriddb.None())
	if err != nil {
		t.Fatal(err)
	}
	if r := e.Run(); r.ShipFraction != 0 {
		t.Errorf("None shipped %v", r.ShipFraction)
	}
}

func TestStrategyConstructors(t *testing.T) {
	cfg := smallConfig()
	strategies := map[string]hybriddb.Strategy{
		"none":             hybriddb.None(),
		"static(0.300)":    hybriddb.Static(0.3, 1),
		"measured-rt":      hybriddb.MeasuredRT(),
		"queue-length":     hybriddb.QueueLengthHeuristic(),
		"min-incoming/ql":  hybriddb.MinIncomingByQueue(cfg),
		"min-incoming/nis": hybriddb.MinIncomingByCount(cfg),
		"min-average/ql":   hybriddb.MinAverageByQueue(cfg),
		"min-average/nis":  hybriddb.MinAverageByCount(cfg),
	}
	for want, s := range strategies {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
	if got := hybriddb.QueueThreshold(-0.2).Name(); got != "queue-threshold(-0.20)" {
		t.Errorf("threshold name = %q", got)
	}
}

func TestStaticOptimalShipsMoreUnderLoad(t *testing.T) {
	low := smallConfig()
	low.ArrivalRatePerSite = 0.3
	_, pLow, err := hybriddb.StaticOptimal(low)
	if err != nil {
		t.Fatal(err)
	}
	high := smallConfig()
	high.ArrivalRatePerSite = 2.5
	_, pHigh, err := hybriddb.StaticOptimal(high)
	if err != nil {
		t.Fatal(err)
	}
	if pHigh <= pLow {
		t.Errorf("optimal pShip: low-load %v, high-load %v", pLow, pHigh)
	}
}

func TestAnalyzeMatchesSimulationAtLowLoad(t *testing.T) {
	cfg := smallConfig()
	cfg.ArrivalRatePerSite = 0.5
	cfg.Warmup, cfg.Duration = 100, 400

	m, err := hybriddb.Analyze(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := hybriddb.Run(cfg, hybriddb.None())
	if err != nil {
		t.Fatal(err)
	}
	// The analytical model should predict the low-load simulation within
	// ~15% — the paper's validation regime.
	if rel := math.Abs(m.RAvg-sim.MeanRT) / sim.MeanRT; rel > 0.15 {
		t.Errorf("model RAvg %v vs simulated %v (rel err %.2f)", m.RAvg, sim.MeanRT, rel)
	}
}

func TestOptimalShipFractionExposed(t *testing.T) {
	cfg := smallConfig()
	cfg.ArrivalRatePerSite = 2.5
	p, res, err := hybriddb.OptimalShipFraction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0 || p > 1 {
		t.Fatalf("pShip = %v", p)
	}
	if res.Saturated {
		t.Error("optimal solution saturated")
	}
}

func TestFeedbackConstantsWired(t *testing.T) {
	cfg := smallConfig()
	for _, f := range []hybriddb.Feedback{
		hybriddb.FeedbackAuthOnly, hybriddb.FeedbackAllMessages, hybriddb.FeedbackIdeal,
	} {
		cfg.Feedback = f
		if err := cfg.Validate(); err != nil {
			t.Errorf("feedback %v rejected: %v", f, err)
		}
	}
}
