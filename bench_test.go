// Benchmarks regenerating the paper's evaluation. Each BenchmarkFigNN runs
// the corresponding figure driver over a reduced sweep (short simulations so
// benchmark iterations stay tractable) and reports headline metrics of the
// resulting series; cmd/figures regenerates the full-length tables. The
// *shape* metrics reported here are the ones the paper reads off each
// figure.
package hybriddb_test

import (
	"testing"

	"hybriddb"
	"hybriddb/internal/experiments"
	"hybriddb/internal/routing"
)

// benchOptions keeps benchmark sweeps short: two rates bracketing the
// interesting region, 150 simulated seconds after 50 of warmup.
func benchOptions() experiments.Options {
	base := hybriddb.DefaultConfig()
	base.Warmup = 50
	base.Duration = 150
	return experiments.Options{
		Base:         base,
		RatesPerSite: []float64{1.5, 2.8},
	}
}

// lastY returns the final-point Y of the labelled curve, or -1.
func lastY(fig experiments.Figure, label string) float64 {
	for _, c := range fig.Curves {
		if c.Label == label && len(c.Points) > 0 {
			return c.Points[len(c.Points)-1].Y
		}
	}
	return -1
}

func benchFigure(b *testing.B, driver func(experiments.Options) (experiments.Figure, error),
	metric string, label string) {
	b.Helper()
	opt := benchOptions()
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = driver(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastY(fig, label), metric)
}

// BenchmarkFig41 regenerates Figure 4.1 (none / static / best dynamic,
// D=0.2 s) and reports the best dynamic strategy's high-load response time.
func BenchmarkFig41(b *testing.B) {
	benchFigure(b, experiments.Figure41, "rt28tps/s", "min-average/nis")
}

// BenchmarkFig42 regenerates Figure 4.2 (dynamic schemes A–F, D=0.2 s).
func BenchmarkFig42(b *testing.B) {
	benchFigure(b, experiments.Figure42, "rt28tps/s", "min-average/nis")
}

// BenchmarkFig43 regenerates Figure 4.3 (shipped fraction, D=0.2 s) and
// reports the best dynamic strategy's high-load ship fraction.
func BenchmarkFig43(b *testing.B) {
	benchFigure(b, experiments.Figure43, "ship28tps", "min-average/nis")
}

// BenchmarkFig44 regenerates Figure 4.4 (threshold tuning, D=0.2 s) and
// reports the θ=-0.2 curve the paper singles out.
func BenchmarkFig44(b *testing.B) {
	benchFigure(b, experiments.Figure44, "rt28tps/s", "threshold(-0.2)")
}

// BenchmarkFig45 regenerates Figure 4.5 (as 4.1 at D=0.5 s).
func BenchmarkFig45(b *testing.B) {
	benchFigure(b, experiments.Figure45, "rt28tps/s", "min-average/nis")
}

// BenchmarkFig46 regenerates Figure 4.6 (shipped fraction, D=0.5 s) and
// reports the static curve with the paper's inflection.
func BenchmarkFig46(b *testing.B) {
	benchFigure(b, experiments.Figure46, "ship28tps", "static*")
}

// BenchmarkFig47 regenerates Figure 4.7 (threshold tuning, D=0.5 s).
func BenchmarkFig47(b *testing.B) {
	benchFigure(b, experiments.Figure47, "rt28tps/s", "threshold(+0.1)")
}

// BenchmarkMaxThroughput regenerates the §4.2 maximum-supportable-rate
// comparison (the "about 20 tps without sharing, about 30 with static"
// reading of Figure 4.1) and reports the best dynamic strategy's maximum.
func BenchmarkMaxThroughput(b *testing.B) {
	opt := benchOptions()
	opt.RatesPerSite = []float64{2.0, 2.5, 3.0, 3.4}
	makers := []experiments.StrategyMaker{
		experiments.MakerNone(),
		experiments.MakerStaticOptimal(),
		experiments.MakerMinAverage(routing.FromInSystem),
	}
	var rows []experiments.MaxThroughputRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.MaxThroughput(opt, makers, 4.0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].MaxTPS, "maxtps")
}

// BenchmarkAblationWriteMix sweeps the exclusive-lock probability — the
// sensitivity of the headline result to the substituted trace parameter
// (DESIGN.md §5).
func BenchmarkAblationWriteMix(b *testing.B) {
	base := benchOptions().Base
	base.ArrivalRatePerSite = 2.5
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationWriteMix(base, []float64{0.1, 0.5})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].Improvement, "speedupx")
}

// BenchmarkAblationFeedback compares the central-state feedback modes (the
// delayed-information discussion of §4.2).
func BenchmarkAblationFeedback(b *testing.B) {
	base := benchOptions().Base
	base.ArrivalRatePerSite = 2.5
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationFeedback(base)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].BestRT, "idealrt/s")
}

// BenchmarkSimulationRun measures raw simulator speed: one 200-simulated-
// second run of the full protocol at 25 tps under the best dynamic strategy.
func BenchmarkSimulationRun(b *testing.B) {
	cfg := hybriddb.DefaultConfig()
	cfg.ArrivalRatePerSite = 2.5
	cfg.Warmup = 50
	cfg.Duration = 150
	var completed uint64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		r, err := hybriddb.Run(cfg, hybriddb.Best(cfg))
		if err != nil {
			b.Fatal(err)
		}
		completed += r.Completed
	}
	// Simulated transactions processed per wall-clock second.
	b.ReportMetric(float64(completed)/b.Elapsed().Seconds(), "txn/s")
}

// BenchmarkArchitectures regenerates the introduction's three-architecture
// comparison (§1) at one locality point and reports the hybrid's advantage
// over the worse pure architecture.
func BenchmarkArchitectures(b *testing.B) {
	cfg := hybriddb.DefaultConfig()
	cfg.Warmup, cfg.Duration = 30, 100
	cfg.ArrivalRatePerSite = 1.0
	cfg.PLocal = 0.75
	var cmp hybriddb.ArchComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = hybriddb.CompareArchitectures(cfg, hybriddb.DefaultLockTimeout)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := cmp.Centralized.MeanRT
	if cmp.Distributed.MeanRT > worst {
		worst = cmp.Distributed.MeanRT
	}
	b.ReportMetric(worst/cmp.Hybrid.MeanRT, "hybrid-speedupx")
}

// BenchmarkAblationBatching sweeps the §2 update-batching window and reports
// the message reduction of a 0.5 s window.
func BenchmarkAblationBatching(b *testing.B) {
	base := hybriddb.DefaultConfig()
	base.Warmup, base.Duration = 30, 100
	base.ArrivalRatePerSite = 2.0
	base.UpdateProcInstr = 60_000
	var rows []experiments.BatchingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationBatching(base, []float64{0, 0.5})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Messages)/float64(rows[1].Messages), "msg-reductionx")
}

// benchReplicatedFig42 regenerates Figure 4.2 with 4 replications per sweep
// point at a fixed worker count. Comparing the Parallel variant against
// Serial measures the experiment runner's wall-clock speedup; on a 4-core
// machine the parallel sweep is expected to run >= 2x faster while producing
// bit-identical curves (the determinism tests assert the identity).
func benchReplicatedFig42(b *testing.B, parallelism int) {
	b.Helper()
	opt := benchOptions()
	opt.Replications = 4
	opt.Parallelism = parallelism
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiments.Figure42(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastY(fig, "min-average/nis"), "rt28tps/s")
}

// BenchmarkFig42Reps4Serial is the replicated sweep on one worker.
func BenchmarkFig42Reps4Serial(b *testing.B) { benchReplicatedFig42(b, 1) }

// BenchmarkFig42Reps4Parallel4 fans the same sweep across 4 workers.
func BenchmarkFig42Reps4Parallel4(b *testing.B) { benchReplicatedFig42(b, 4) }

// BenchmarkFig42Reps4ParallelMax uses every core (GOMAXPROCS workers).
func BenchmarkFig42Reps4ParallelMax(b *testing.B) { benchReplicatedFig42(b, 0) }

// BenchmarkReplicationsParallel measures replicate.RunParallel fan-out of one
// operating point across all cores.
func BenchmarkReplicationsParallel(b *testing.B) {
	cfg := hybriddb.DefaultConfig()
	cfg.ArrivalRatePerSite = 2.5
	cfg.Warmup = 50
	cfg.Duration = 150
	mk := func(cfg hybriddb.Config) (hybriddb.Strategy, error) { return hybriddb.Best(cfg), nil }
	for i := 0; i < b.N; i++ {
		if _, err := hybriddb.Replicate(cfg, mk, 8); err != nil {
			b.Fatal(err)
		}
	}
}
