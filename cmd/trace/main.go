// Command trace works with recorded workloads and protocol event traces:
//
//	trace capture -out trace.jsonl -rate 2.0 -count 10000   # record a workload
//	trace replay  -in trace.jsonl -strategy best            # re-run it
//	trace follow  -txn 42 -rate 2.0 -strategy best          # dump one txn's protocol events
//
// Replay makes simulation results bit-reproducible across machines and code
// versions; follow prints the full §2 protocol history of one transaction
// (routing, locks, authentication, aborts) for debugging.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hybriddb/internal/experiments"
	"hybriddb/internal/hybrid"
	"hybriddb/internal/hybrid/obs"
	"hybriddb/internal/report"
	"hybriddb/internal/trace"
	"hybriddb/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: trace capture|replay|follow [flags]")
	}
	switch args[0] {
	case "capture":
		return capture(args[1:], out)
	case "replay":
		return replay(args[1:], out)
	case "follow":
		return follow(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want capture, replay, or follow)", args[0])
	}
}

func capture(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace capture", flag.ContinueOnError)
	var (
		path  = fs.String("out", "trace.jsonl", "output trace file")
		rate  = fs.Float64("rate", 1.0, "arrival rate per site (txn/s)")
		count = fs.Int("count", 10_000, "transactions to record")
		seed  = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := hybrid.DefaultConfig()
	file, err := os.Create(*path)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := workload.Capture(file, cfg.WorkloadConfig(), *seed, *rate, *count); err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %d transactions to %s\n", *count, *path)
	return nil
}

func replay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace replay", flag.ContinueOnError)
	var (
		path     = fs.String("in", "trace.jsonl", "input trace file")
		strategy = fs.String("strategy", "best", "routing strategy")
		warmup   = fs.Float64("warmup", 100, "warmup seconds")
		duration = fs.Float64("duration", 800, "measured seconds")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	file, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer file.Close()
	txns, gaps, err := workload.ReadAll(file)
	if err != nil {
		return err
	}
	cfg := hybrid.DefaultConfig()
	cfg.Warmup, cfg.Duration = *warmup, *duration
	maker, err := experiments.ParseStrategy(*strategy)
	if err != nil {
		return err
	}
	strat, err := maker.Make(cfg)
	if err != nil {
		return err
	}
	engine, err := hybrid.New(cfg, strat)
	if err != nil {
		return err
	}
	if err := engine.SetTrace(txns, gaps); err != nil {
		return err
	}
	res := engine.Run()
	fmt.Fprintf(out, "replayed %d of %d recorded transactions\n\n", res.Generated, len(txns))
	return report.WriteResult(out, res)
}

func follow(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace follow", flag.ContinueOnError)
	var (
		txnID    = fs.Int64("txn", 1, "transaction id to follow")
		rate     = fs.Float64("rate", 1.0, "arrival rate per site (txn/s)")
		strategy = fs.String("strategy", "best", "routing strategy")
		seed     = fs.Uint64("seed", 1, "random seed")
		events   = fs.Int("events", 512, "maximum events to retain")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := hybrid.DefaultConfig()
	cfg.ArrivalRatePerSite = *rate
	cfg.Seed = *seed
	cfg.Warmup, cfg.Duration = 0, 200
	maker, err := experiments.ParseStrategy(*strategy)
	if err != nil {
		return err
	}
	strat, err := maker.Make(cfg)
	if err != nil {
		return err
	}
	engine, err := hybrid.New(cfg, strat)
	if err != nil {
		return err
	}
	ring := trace.NewRing(*events)
	ring.FilterTxn(*txnID)
	engine.Subscribe(obs.NewTracer(ring))
	engine.Run()
	if len(ring.Events()) == 0 {
		return fmt.Errorf("transaction %d produced no events (did it arrive within the run?)", *txnID)
	}
	fmt.Fprintf(out, "protocol events of transaction %d:\n", *txnID)
	return ring.Dump(out)
}
