// Command trace works with recorded workloads and protocol event traces:
//
//	trace capture -out trace.jsonl -rate 2.0 -count 10000   # record a workload
//	trace replay  -in trace.jsonl -strategy best            # re-run it
//	trace follow  -txn 42 -rate 2.0 -strategy best          # dump one txn's protocol events
//	trace export  -out spans.json -rate 2.0 -strategy best  # Chrome trace-event spans
//	trace merge   -out merged.json central.json site0.json  # fuse per-process cluster traces
//
// Replay makes simulation results bit-reproducible across machines and code
// versions; follow prints the full §2 protocol history of one transaction
// (routing, locks, authentication, aborts) for debugging; export renders
// every transaction's lifecycle as a span tree loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing; merge fuses the
// per-process span files a live cluster writes (hybridd -spans-dir) into
// one Perfetto-loadable view, shifting each file by its handshake-estimated
// clock offset so cross-site transactions read as a single span tree.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hybriddb/internal/experiments"
	"hybriddb/internal/hybrid"
	"hybriddb/internal/hybrid/obs"
	"hybriddb/internal/obsx/spans"
	"hybriddb/internal/report"
	"hybriddb/internal/trace"
	"hybriddb/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: trace capture|replay|follow|export|merge [flags]")
	}
	switch args[0] {
	case "capture":
		return capture(args[1:], out)
	case "replay":
		return replay(args[1:], out)
	case "follow":
		return follow(args[1:], out)
	case "export":
		return export(args[1:], out)
	case "merge":
		return merge(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want capture, replay, follow, export, or merge)", args[0])
	}
}

// merge fuses per-process span files from a live cluster run into a single
// trace, shifting each input into the central timebase by the clock offset
// its process estimated at the Hello handshake.
func merge(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace merge", flag.ContinueOnError)
	path := fs.String("out", "merged.json", "output trace-event file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inputs := fs.Args()
	if len(inputs) == 0 {
		return fmt.Errorf("usage: trace merge [-out merged.json] <span-file>...")
	}
	info, err := spans.MergeToFile(*path, inputs...)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "merged %d files into %s: %d events across %d process lanes, %d cross-process transactions (open in Perfetto: https://ui.perfetto.dev)\n",
		info.Files, *path, info.Events, info.Processes, info.CrossProcessTxns)
	return nil
}

func capture(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace capture", flag.ContinueOnError)
	var (
		path  = fs.String("out", "trace.jsonl", "output trace file")
		rate  = fs.Float64("rate", 1.0, "arrival rate per site (txn/s)")
		count = fs.Int("count", 10_000, "transactions to record")
		seed  = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := hybrid.DefaultConfig()
	file, err := os.Create(*path)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := workload.Capture(file, cfg.WorkloadConfig(), *seed, *rate, *count); err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %d transactions to %s\n", *count, *path)
	return nil
}

func replay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace replay", flag.ContinueOnError)
	var (
		path     = fs.String("in", "trace.jsonl", "input trace file")
		strategy = fs.String("strategy", "best", "routing strategy")
		warmup   = fs.Float64("warmup", 100, "warmup seconds")
		duration = fs.Float64("duration", 800, "measured seconds")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	file, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer file.Close()
	txns, gaps, err := workload.ReadAll(file)
	if err != nil {
		return err
	}
	cfg := hybrid.DefaultConfig()
	cfg.Warmup, cfg.Duration = *warmup, *duration
	maker, err := experiments.ParseStrategy(*strategy)
	if err != nil {
		return err
	}
	strat, err := maker.Make(cfg)
	if err != nil {
		return err
	}
	engine, err := hybrid.New(cfg, strat)
	if err != nil {
		return err
	}
	if err := engine.SetTrace(txns, gaps); err != nil {
		return err
	}
	res := engine.Run()
	fmt.Fprintf(out, "replayed %d of %d recorded transactions\n\n", res.Generated, len(txns))
	return report.WriteResult(out, res)
}

// export runs a simulation with the span collector attached and writes a
// Chrome trace-event file: one process lane per site plus the central
// complex, one thread per transaction, aborts flagged in span args.
func export(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace export", flag.ContinueOnError)
	var (
		path     = fs.String("out", "spans.json", "output trace-event file")
		rate     = fs.Float64("rate", 1.0, "arrival rate per site (txn/s)")
		sites    = fs.Int("sites", 10, "number of local sites")
		strategy = fs.String("strategy", "best", "routing strategy")
		seed     = fs.Uint64("seed", 1, "random seed")
		duration = fs.Float64("duration", 60, "simulated seconds to trace")
		maxEv    = fs.Int("max-events", spans.DefaultMaxEvents, "span event buffer cap (new transactions are dropped beyond it)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := hybrid.DefaultConfig()
	cfg.ArrivalRatePerSite = *rate
	cfg.Sites = *sites
	cfg.Seed = *seed
	cfg.Warmup, cfg.Duration = 0, *duration
	maker, err := experiments.ParseStrategy(*strategy)
	if err != nil {
		return err
	}
	strat, err := maker.Make(cfg)
	if err != nil {
		return err
	}
	engine, err := hybrid.New(cfg, strat)
	if err != nil {
		return err
	}
	c := spans.NewCollector(cfg.Sites)
	c.MaxEvents = *maxEv
	engine.Subscribe(c)
	engine.Run()
	if err := c.WriteFile(*path); err != nil {
		return err
	}
	if n := c.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "trace: buffer full; %d transactions not traced (raise -max-events or shorten -duration)\n", n)
	}
	fmt.Fprintf(out, "wrote %d span events to %s (open in Perfetto: https://ui.perfetto.dev)\n", c.Events(), *path)
	return nil
}

func follow(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace follow", flag.ContinueOnError)
	var (
		txnID    = fs.Int64("txn", 1, "transaction id to follow")
		rate     = fs.Float64("rate", 1.0, "arrival rate per site (txn/s)")
		strategy = fs.String("strategy", "best", "routing strategy")
		seed     = fs.Uint64("seed", 1, "random seed")
		events   = fs.Int("events", 512, "maximum events to retain")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := hybrid.DefaultConfig()
	cfg.ArrivalRatePerSite = *rate
	cfg.Seed = *seed
	cfg.Warmup, cfg.Duration = 0, 200
	maker, err := experiments.ParseStrategy(*strategy)
	if err != nil {
		return err
	}
	strat, err := maker.Make(cfg)
	if err != nil {
		return err
	}
	engine, err := hybrid.New(cfg, strat)
	if err != nil {
		return err
	}
	ring := trace.NewRing(*events)
	ring.FilterTxn(*txnID)
	engine.Subscribe(obs.NewTracer(ring))
	engine.Run()
	if len(ring.Events()) == 0 {
		return fmt.Errorf("transaction %d produced no events (did it arrive within the run?)", *txnID)
	}
	fmt.Fprintf(out, "protocol events of transaction %d:\n", *txnID)
	return ring.Dump(out)
}
