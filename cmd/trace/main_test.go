package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hybriddb/internal/obsx/spans"
)

func TestCaptureThenReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.jsonl")

	var buf bytes.Buffer
	if err := run([]string{"capture", "-out", path, "-rate", "2.0", "-count", "500"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "recorded 500 transactions") {
		t.Errorf("capture output: %q", buf.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	buf.Reset()
	err := run([]string{"replay", "-in", path, "-warmup", "5", "-duration", "50", "-strategy", "queue-length"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"replayed", "strategy", "mean response time"} {
		if !strings.Contains(out, want) {
			t.Errorf("replay output missing %q:\n%s", want, out)
		}
	}
}

func TestFollowDumpsProtocolEvents(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"follow", "-txn", "5", "-rate", "1.0"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "protocol events of transaction 5") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "arrive") {
		t.Errorf("arrive event missing:\n%s", out)
	}
}

func TestFollowUnknownTxn(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"follow", "-txn", "99999999", "-rate", "0.5"}, &buf); err == nil {
		t.Fatal("nonexistent transaction accepted")
	}
}

func TestBadSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"bogus"}, &buf); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestReplayMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"replay", "-in", "/nonexistent/file"}, &buf); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestExportWritesSpans(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.json")
	var buf bytes.Buffer
	err := run([]string{"export", "-out", path, "-rate", "1.0", "-sites", "4", "-duration", "15"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "span events") {
		t.Errorf("no confirmation line:\n%s", buf.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export holds no events")
	}
}

func TestMergeFusesRecorderFiles(t *testing.T) {
	dir := t.TempDir()
	site := spans.NewRecorder("site 0", spans.SitePid(0), 0)
	site.SetClockOffset(2.0)
	site.Begin(1.0, 7, "txn")
	site.End(1.5, 7)
	central := spans.NewRecorder("central complex", spans.CentralPid, 0)
	central.Begin(3.1, 7, "exec")
	central.End(3.4, 7)
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	if err := site.WriteFile(a); err != nil {
		t.Fatal(err)
	}
	if err := central.WriteFile(b); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "merged.json")
	var buf bytes.Buffer
	if err := run([]string{"merge", "-out", out, a, b}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 cross-process transactions") {
		t.Errorf("merge summary:\n%s", buf.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("merged file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 4 {
		t.Fatalf("merged file holds %d events, want >= 4", len(doc.TraceEvents))
	}
}

func TestMergeNeedsInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"merge", "-out", filepath.Join(t.TempDir(), "m.json")}, &buf); err == nil {
		t.Fatal("merge with no inputs accepted")
	}
}

func TestExportRejectsBadStrategy(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"export", "-strategy", "nonsense"}, &buf); err == nil {
		t.Fatal("bad strategy accepted")
	}
}
