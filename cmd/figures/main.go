// Command figures regenerates the tables behind every figure of the paper's
// evaluation section (Figures 4.1–4.7), plus the maximum-supportable-
// throughput summary.
//
// Examples:
//
//	figures                 # every figure, full-length runs
//	figures -fig 4.2        # one figure
//	figures -quick          # shorter runs for a fast look
//	figures -csv out.csv    # machine-readable long-form output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"hybriddb/internal/altarch"
	"hybriddb/internal/experiments"
	"hybriddb/internal/hybrid"
	"hybriddb/internal/obsx/manifest"
	"hybriddb/internal/obsx/progress"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", `figure to regenerate: 4.1 ... 4.7, "max", "arch", or "all"`)
		quick    = fs.Bool("quick", false, "shorter simulations (less precise, much faster)")
		plotFlg  = fs.Bool("plot", false, "render ASCII charts alongside the tables")
		seed     = fs.Uint64("seed", 1, "random seed")
		csvPath  = fs.String("csv", "", "also write long-form CSV to this file")
		reps     = fs.Int("reps", 1, "independent replications per sweep point (>1 adds 95% confidence half-widths)")
		parallel = fs.Int("parallel", 0, "worker goroutines for the sweep (0 = GOMAXPROCS); affects speed only, never results")
		progFlg  = fs.Bool("progress", false, "print sweep progress with an ETA to stderr")
		maniOut  = fs.String("manifest", "", "write a machine-readable manifest of every run (RUN_*.json) to this file")
		dbgAddr  = fs.String("debug-addr", "", "serve expvar and pprof on this address for the sweep's duration")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reps < 1 {
		return fmt.Errorf("-reps %d: need at least one replication", *reps)
	}

	base := hybrid.DefaultConfig()
	base.Seed = *seed
	opt := experiments.Options{Base: base, Replications: *reps, Parallelism: *parallel}
	if *quick {
		opt.Base.Warmup, opt.Base.Duration = 50, 200
		opt.RatesPerSite = []float64{1.0, 2.0, 2.8, 3.4}
	}
	if *progFlg {
		opt.Progress = progress.NewTicker(os.Stderr, time.Second).Callback
	}
	start := time.Now()
	if *maniOut != "" {
		opt.Base.CaptureHistograms = true
		opt.Manifest = manifest.New("figures", "figure sweep: "+*fig)
	}
	if *dbgAddr != "" {
		addr, err := progress.StartDebugServer(*dbgAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "figures: debug server on http://%s/debug/pprof (expvar at /debug/vars)\n", addr)
	}
	defer func() {
		if opt.Manifest == nil {
			return
		}
		opt.Manifest.Finish(time.Since(start))
		if err := opt.Manifest.WriteFile(*maniOut); err != nil {
			fmt.Fprintln(os.Stderr, "figures: manifest:", err)
			return
		}
		fmt.Fprintf(os.Stderr, "figures: wrote %d runs to %s\n", len(opt.Manifest.Runs), *maniOut)
	}()

	var figures []experiments.Figure
	switch *fig {
	case "all":
		all, err := experiments.All(opt)
		if err != nil {
			return err
		}
		figures = all
	case "max":
		return writeMaxThroughput(out, opt)
	case "arch":
		return writeArchitectures(out, opt)
	default:
		drivers := map[string]func(experiments.Options) (experiments.Figure, error){
			"4.1": experiments.Figure41,
			"4.2": experiments.Figure42,
			"4.3": experiments.Figure43,
			"4.4": experiments.Figure44,
			"4.5": experiments.Figure45,
			"4.6": experiments.Figure46,
			"4.7": experiments.Figure47,
		}
		driver, ok := drivers[*fig]
		if !ok {
			return fmt.Errorf("unknown figure %q", *fig)
		}
		f, err := driver(opt)
		if err != nil {
			return err
		}
		figures = []experiments.Figure{f}
	}

	for _, f := range figures {
		if err := f.WriteTable(out); err != nil {
			return err
		}
		if *plotFlg {
			if err := f.WritePlot(out); err != nil {
				return err
			}
		}
	}
	if *csvPath != "" {
		file, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer file.Close()
		for _, f := range figures {
			if err := f.WriteCSV(file); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeArchitectures regenerates the introduction's three-architecture
// comparison (§1): centralized vs distributed vs hybrid across locality.
func writeArchitectures(out io.Writer, opt experiments.Options) error {
	cfg := opt.Base
	cfg.ArrivalRatePerSite = 1.0
	points, err := altarch.LocalitySweep(cfg, []float64{0.5, 0.75, 0.9, 1.0}, altarch.DefaultLockTimeout)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Architecture comparison (§1) — mean response time (s)")
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "p_local\tremote calls/txn\tcentralized\tdistributed\thybrid(best)")
	for _, p := range points {
		fmt.Fprintf(tw, "%.2f\t%.2f\t%.3f\t%.3f\t%.3f\n",
			p.PLocal, p.Distributed.RemoteCallsPerTxn,
			p.Centralized.MeanRT, p.Distributed.MeanRT, p.Hybrid.MeanRT)
	}
	return tw.Flush()
}

func writeMaxThroughput(out io.Writer, opt experiments.Options) error {
	const cutoff = 4.0 // seconds; the knee criterion for "supportable"
	rows, err := experiments.MaxThroughput(opt, experiments.StandardMakers(), cutoff)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Maximum supportable throughput (mean RT < %.1f s)\n", cutoff)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tmax tps\tRT at max")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.3f\n", r.Strategy, r.MaxTPS, r.RTAtMax)
	}
	return tw.Flush()
}
