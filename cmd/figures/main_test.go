package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hybriddb/internal/obsx/manifest"
)

func TestFigureSingle(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "4.1", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 4.1", "none", "static*", "min-average/nis"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFigureCSVOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	var buf bytes.Buffer
	if err := run([]string{"-fig", "4.3", "-quick", "-csv", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "figure,curve,") {
		t.Errorf("CSV header missing: %q", string(data[:40]))
	}
	if !strings.Contains(string(data), "4.3,") {
		t.Error("CSV missing figure rows")
	}
}

func TestFigureUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "9.9"}, &buf); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestMaxThroughputTable(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	var buf bytes.Buffer
	if err := run([]string{"-fig", "max", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Maximum supportable throughput") {
		t.Errorf("missing table header:\n%s", out)
	}
	if !strings.Contains(out, "min-average/nis") {
		t.Errorf("missing strategy rows:\n%s", out)
	}
}

func TestArchitectureComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	var buf bytes.Buffer
	if err := run([]string{"-fig", "arch", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Architecture comparison", "centralized", "distributed", "hybrid"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFigureWithPlot(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "4.1", "-quick", "-plot"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "A = none") {
		t.Errorf("plot legend missing:\n%s", out)
	}
	if !strings.Contains(out, "|") {
		t.Error("plot canvas missing")
	}
}

func TestFigureReplicated(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "4.1", "-quick", "-reps", "3", "-parallel", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "±") {
		t.Errorf("replicated table missing confidence half-widths:\n%s", buf.String())
	}
}

func TestFigureReplicatedCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	var buf bytes.Buffer
	if err := run([]string{"-fig", "4.3", "-quick", "-reps", "2", "-csv", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(string(data), "\n", 2)[0]
	for _, col := range []string{"stddev", "ci95", "replications"} {
		if !strings.Contains(header, col) {
			t.Errorf("CSV header %q missing column %q", header, col)
		}
	}
}

func TestFigureParallelismDoesNotChangeOutput(t *testing.T) {
	render := func(parallel string) string {
		var buf bytes.Buffer
		if err := run([]string{"-fig", "4.1", "-quick", "-reps", "2", "-parallel", parallel}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if serial, fanned := render("1"), render("8"); serial != fanned {
		t.Error("-parallel changed the rendered tables")
	}
}

func TestFigureRejectsBadReps(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "4.1", "-reps", "0"}, &buf); err == nil {
		t.Fatal("zero replications accepted")
	}
}

// TestFigureManifest: a sweep with -manifest records every (strategy × rate)
// run with its exact config and result, and the artifact reads back.
func TestFigureManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "RUN_fig41.json")
	var buf bytes.Buffer
	if err := run([]string{"-fig", "4.1", "-quick", "-manifest", path}, &buf); err != nil {
		t.Fatal(err)
	}
	m, err := manifest.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "figures" {
		t.Errorf("tool %q, want figures", m.Tool)
	}
	// Quick mode sweeps 4 rates across Figure 4.1's 3 strategies.
	if len(m.Runs) != 12 {
		t.Fatalf("%d manifest runs, want 12", len(m.Runs))
	}
	for _, r := range m.Runs {
		if r.Result.Histograms == nil {
			t.Fatalf("run %q lacks histogram dumps", r.Label)
		}
	}
}
