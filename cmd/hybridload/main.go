// Command hybridload drives an open-loop paced workload against a live
// hybridd cluster and reports measured response times and routing mix.
// Arrivals are submitted at the configured rate regardless of completions
// (open loop), so queueing shows up as response time — the same offered-load
// discipline as the simulator's Poisson arrival process.
//
// Example against a two-site cluster (see cmd/hybridd for booting one):
//
//	hybridload -addrs 127.0.0.1:4100,127.0.0.1:4101 -sites 2 \
//	    -rate 8 -warmup 1 -duration 10 -manifest RUN_live.json
//
// The configuration flags must match the cluster's: the load generator
// draws the transaction specs (class, home site, lock elements) itself and
// ships them fully formed, so a -sites or -plocal mismatch changes the
// workload the cluster observes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hybriddb/internal/cluster"
	"hybriddb/internal/hybrid"
	"hybriddb/internal/obsx/manifest"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hybridload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hybridload", flag.ContinueOnError)
	var (
		addrsFlg = fs.String("addrs", "", "comma-separated site addresses, in site-index order (required)")
		pacing   = fs.String("pacing", cluster.PacingPoisson, "interarrival pacing: poisson or uniform")
		ramp     = fs.Float64("ramp", 0, "seconds to ramp the rate from ~0 to -rate")
		warmup   = fs.Float64("warmup", 1, "seconds of load before the measurement window opens")
		duration = fs.Float64("duration", 10, "measured seconds")
		threads  = fs.Int("threads", 2, "connections per site")
		loadSeed = fs.Uint64("load-seed", 0, "workload/pacing seed (default: the configuration -seed)")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-request timeout; a timeout counts as an error")
		maniOut  = fs.String("manifest", "", "write a machine-readable run manifest (RUN_*.json) to this file")
		notes    = fs.String("label", "live", "result label used in the manifest")
	)
	cf := cluster.RegisterConfigFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := cf.Config()
	if err != nil {
		return err
	}
	if *addrsFlg == "" {
		return fmt.Errorf("missing -addrs (comma-separated site addresses)")
	}
	addrs := strings.Split(*addrsFlg, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	seed := *loadSeed
	if seed == 0 {
		seed = cfg.Seed
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	wallStart := time.Now()
	res, err := cluster.RunLoad(ctx, addrs, cfg, cluster.LoadOptions{
		Rate:           cfg.ArrivalRatePerSite,
		Pacing:         *pacing,
		Ramp:           *ramp,
		Warmup:         *warmup,
		Duration:       *duration,
		Threads:        *threads,
		Seed:           seed,
		RequestTimeout: *timeout,
	})
	if res == nil {
		return err
	}
	if err != nil {
		// Cancellation still reports the partial window below.
		fmt.Fprintf(out, "hybridload: run ended early: %v\n", err)
	}

	fmt.Fprintf(out, "hybridload: %d submitted, %d completed, %d errors over %.1fs window (%.1fs wall)\n",
		res.Submitted, res.Completed, res.Errors, *duration, res.Elapsed)
	fmt.Fprintf(out, "  routing: %d local A, %d shipped A, %d class B (ship fraction %.3f)\n",
		res.LocalA, res.ShippedA, res.ClassB, res.ShipFraction)
	fmt.Fprintf(out, "  RT mean %.1fms, p50 %.1fms, p95 %.1fms; throughput %.1f txn/s\n",
		res.MeanRT*1e3, res.P50RT*1e3, res.P95RT*1e3, res.Throughput)

	if *maniOut != "" {
		m := manifest.New("hybridload", "live cluster paced load run")
		m.Add(*notes, cfg, liveResult(res, *duration))
		m.Finish(time.Since(wallStart))
		if werr := m.WriteFile(*maniOut); werr != nil {
			return werr
		}
		fmt.Fprintf(out, "  manifest written to %s\n", *maniOut)
	}
	if err != nil {
		return err
	}
	if res.Errors > 0 {
		return fmt.Errorf("%d request errors (timeouts or transport failures)", res.Errors)
	}
	return nil
}

// liveResult maps a measured load window onto the simulator's Result shape
// so live runs share the manifest schema (and downstream tooling) with
// simulation runs. Fields the live measurement cannot observe (per-class
// RT splits, central-node internals) stay zero.
func liveResult(res *cluster.LoadResult, window float64) hybrid.Result {
	return hybrid.Result{
		Strategy:          "live",
		Window:            window,
		CompletedLocalA:   res.LocalA,
		CompletedShippedA: res.ShippedA,
		CompletedClassB:   res.ClassB,
		MeanRT:            res.MeanRT,
		P95RT:             res.P95RT,
		Throughput:        res.Throughput,
		ShipFraction:      res.ShipFraction,
	}
}
