// Command hybridload drives an open-loop paced workload against a live
// hybridd cluster and reports measured response times and routing mix.
// Arrivals are submitted at the configured rate regardless of completions
// (open loop), so queueing shows up as response time — the same offered-load
// discipline as the simulator's Poisson arrival process.
//
// Example against a two-site cluster (see cmd/hybridd for booting one):
//
//	hybridload -addrs 127.0.0.1:4100,127.0.0.1:4101 -sites 2 \
//	    -rate 8 -warmup 1 -duration 10 -manifest RUN_live.json
//
// The configuration flags must match the cluster's: the load generator
// draws the transaction specs (class, home site, lock elements) itself and
// ships them fully formed, so a -sites or -plocal mismatch changes the
// workload the cluster observes.
//
// With -drift the simulator first predicts the operating point for the
// same configuration and -strategy; while the load runs, a stderr ticker
// compares the measured mean RT and routing mix against the prediction
// using the differential test's tolerance bands, and the drift is exposed
// as gauges on -debug-addr's /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hybriddb/internal/cluster"
	"hybriddb/internal/experiments"
	"hybriddb/internal/hybrid"
	"hybriddb/internal/obsx/flight"
	"hybriddb/internal/obsx/logx"
	"hybriddb/internal/obsx/manifest"
	"hybriddb/internal/obsx/metrics"
	"hybriddb/internal/routing"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hybridload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hybridload", flag.ContinueOnError)
	var (
		addrsFlg  = fs.String("addrs", "", "comma-separated site addresses, in site-index order (required)")
		pacing    = fs.String("pacing", cluster.PacingPoisson, "interarrival pacing: poisson or uniform")
		ramp      = fs.Float64("ramp", 0, "seconds to ramp the rate from ~0 to -rate")
		warmup    = fs.Float64("warmup", 1, "seconds of load before the measurement window opens")
		duration  = fs.Float64("duration", 10, "measured seconds")
		threads   = fs.Int("threads", 2, "connections per site")
		loadSeed  = fs.Uint64("load-seed", 0, "workload/pacing seed (default: the configuration -seed)")
		timeout   = fs.Duration("timeout", 30*time.Second, "per-request timeout; a timeout counts as an error")
		maniOut   = fs.String("manifest", "", "write a machine-readable run manifest (RUN_*.json) to this file")
		notes     = fs.String("label", "live", "result label used in the manifest")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		drift     = fs.Bool("drift", false, "predict the operating point with the simulator and report live drift")
		strategy  = fs.String("strategy", "threshold:0", "the cluster's routing strategy, for the -drift prediction: "+strings.Join(experiments.StrategyNames(), ", "))
		tick      = fs.Duration("tick", 2*time.Second, "progress/drift ticker interval")
	)
	cf := cluster.RegisterConfigFlags(fs)
	applyLog := logx.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	applyLog()
	cfg, err := cf.Config()
	if err != nil {
		return err
	}
	if *addrsFlg == "" {
		return fmt.Errorf("missing -addrs (comma-separated site addresses)")
	}
	addrs := strings.Split(*addrsFlg, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	seed := *loadSeed
	if seed == 0 {
		seed = cfg.Seed
	}

	lg := logx.New("load")
	reg := metrics.NewRegistry()
	fr := flight.NewRecorder("hybridload", 256)
	flight.InstallSigquit(os.Stderr, fr)
	if *debugAddr != "" {
		bound, err := metrics.StartDebugServer(*debugAddr, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "hybridload: debug listener on http://%s/metrics\n", bound)
	}
	submittedG := reg.Gauge("load_submitted", "submissions in the measurement window so far")
	completedG := reg.Gauge("load_completed", "completions in the measurement window so far")
	errorsG := reg.Gauge("load_errors", "request timeouts and transport failures so far")
	measuredRT := reg.Gauge("load_measured_mean_rt_seconds", "measured mean response time, window so far")
	measuredShip := reg.Gauge("load_measured_ship_fraction", "measured class A ship fraction, window so far")

	// With -drift, predict the operating point before offering load, then
	// hold the live window against the prediction under the differential
	// test's tolerance bands.
	var (
		pred cluster.SimPrediction
		tol  cluster.Tolerances

		predRT    *metrics.Gauge
		predShip  *metrics.Gauge
		driftRT   *metrics.Gauge
		driftShip *metrics.Gauge
		withinG   *metrics.Gauge
	)
	if *drift {
		if tol, err = cluster.DefaultTolerances(); err != nil {
			return err
		}
		maker, err := experiments.ParseStrategy(*strategy)
		if err != nil {
			return err
		}
		simStart := time.Now()
		pred, err = cluster.PredictSim(cfg, func() (routing.Strategy, error) {
			return maker.Make(cfg)
		}, tol.SimReplications)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "hybridload: sim predicts meanRT %.1fms, ship fraction %.3f (%d replications, %.1fs); "+
			"bands: rt rel err ≤ %.2f, ship abs err ≤ %.2f\n",
			pred.MeanRT*1e3, pred.ShipFraction, pred.Replications, time.Since(simStart).Seconds(),
			tol.RTRelErrMax, tol.ShipFracAbsErrMax)
		predRT = reg.Gauge("load_predicted_mean_rt_seconds", "simulator-predicted mean response time for this configuration")
		predShip = reg.Gauge("load_predicted_ship_fraction", "simulator-predicted class A ship fraction")
		driftRT = reg.Gauge("load_drift_rt_rel_err", "relative mean-RT error of the live window vs the simulator prediction")
		driftShip = reg.Gauge("load_drift_ship_frac_abs_err", "absolute ship-fraction error vs the simulator prediction")
		withinG = reg.Gauge("load_drift_within_bands", "1 when the live window agrees with the simulator within the tolerance bands")
		predRT.Set(pred.MeanRT)
		predShip.Set(pred.ShipFraction)
		withinG.Set(1)
	}

	progress := func(p cluster.LoadProgress) {
		submittedG.Set(float64(p.Submitted))
		completedG.Set(float64(p.Completed))
		errorsG.Set(float64(p.Errors))
		measuredRT.Set(p.MeanRT)
		measuredShip.Set(p.ShipFraction)
		line := fmt.Sprintf("t=%.1fs submitted %d completed %d errors %d meanRT %.1fms ship %.3f",
			p.Elapsed, p.Submitted, p.Completed, p.Errors, p.MeanRT*1e3, p.ShipFraction)
		if *drift && p.Completed > 0 {
			d := cluster.ComputeDrift(p.MeanRT, p.ShipFraction, pred, tol)
			driftRT.Set(d.RTRelErr)
			driftShip.Set(d.ShipFracAbsErr)
			verdict := "within bands"
			if d.WithinBands {
				withinG.Set(1)
			} else {
				withinG.Set(0)
				verdict = "OUT OF BANDS"
			}
			line += fmt.Sprintf(" | drift: rt %.3f/%.2f ship %.3f/%.2f (%s)",
				d.RTRelErr, tol.RTRelErrMax, d.ShipFracAbsErr, tol.ShipFracAbsErrMax, verdict)
		}
		lg.Infof("%s", line)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	wallStart := time.Now()
	res, err := cluster.RunLoad(ctx, addrs, cfg, cluster.LoadOptions{
		Rate:           cfg.ArrivalRatePerSite,
		Pacing:         *pacing,
		Ramp:           *ramp,
		Warmup:         *warmup,
		Duration:       *duration,
		Threads:        *threads,
		Seed:           seed,
		RequestTimeout: *timeout,
		Progress:       progress,
		ProgressEvery:  *tick,
		Flight:         fr,
	})
	if res == nil {
		return err
	}
	if err != nil {
		// Cancellation still reports the partial window below.
		fmt.Fprintf(out, "hybridload: run ended early: %v\n", err)
	}

	fmt.Fprintf(out, "hybridload: %d submitted, %d completed, %d errors over %.1fs window (%.1fs wall)\n",
		res.Submitted, res.Completed, res.Errors, *duration, res.Elapsed)
	fmt.Fprintf(out, "  routing: %d local A, %d shipped A, %d class B (ship fraction %.3f)\n",
		res.LocalA, res.ShippedA, res.ClassB, res.ShipFraction)
	fmt.Fprintf(out, "  RT mean %.1fms, p50 %.1fms, p95 %.1fms; throughput %.1f txn/s\n",
		res.MeanRT*1e3, res.P50RT*1e3, res.P95RT*1e3, res.Throughput)
	if *drift && res.Completed > 0 {
		d := cluster.ComputeDrift(res.MeanRT, res.ShipFraction, pred, tol)
		verdict := "within bands"
		if !d.WithinBands {
			verdict = "OUT OF BANDS"
		}
		fmt.Fprintf(out, "  drift vs simulator: rt rel err %.3f (≤ %.2f), ship abs err %.3f (≤ %.2f) — %s\n",
			d.RTRelErr, tol.RTRelErrMax, d.ShipFracAbsErr, tol.ShipFracAbsErrMax, verdict)
	}

	if *maniOut != "" {
		m := manifest.New("hybridload", "live cluster paced load run")
		m.Add(*notes, cfg, liveResult(res, *duration))
		m.AttachMetrics(reg.Snapshot())
		m.Finish(time.Since(wallStart))
		if werr := m.WriteFile(*maniOut); werr != nil {
			return werr
		}
		fmt.Fprintf(out, "  manifest written to %s\n", *maniOut)
	}
	if err != nil {
		return err
	}
	if res.Errors > 0 {
		return fmt.Errorf("%d request errors (timeouts or transport failures)", res.Errors)
	}
	return nil
}

// liveResult maps a measured load window onto the simulator's Result shape
// so live runs share the manifest schema (and downstream tooling) with
// simulation runs. Fields the live measurement cannot observe (per-class
// RT splits, central-node internals) stay zero.
func liveResult(res *cluster.LoadResult, window float64) hybrid.Result {
	return hybrid.Result{
		Strategy:          "live",
		Window:            window,
		CompletedLocalA:   res.LocalA,
		CompletedShippedA: res.ShippedA,
		CompletedClassB:   res.ClassB,
		MeanRT:            res.MeanRT,
		P95RT:             res.P95RT,
		Throughput:        res.Throughput,
		ShipFraction:      res.ShipFraction,
	}
}
