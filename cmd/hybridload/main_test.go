package main

import (
	"bytes"
	"testing"
)

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{},                                             // missing -addrs
		{"-addrs", "x", "-pacing", "bursty"},           // unknown pacing
		{"-addrs", "x", "-duration", "0"},              // zero duration
		{"-addrs", "x,y", "-sites", "4"},               // addr count != sites
		{"-addrs", "x", "-feedback", "sideways"},       // unknown feedback
		{"-addrs", "x", "-drift", "-strategy", "nope"}, // unknown drift strategy
		{"-addrs", "x", "-drift", "-strategy", "threshold:bogus"}, // bad strategy argument
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
