// Command analyze queries the analytical performance model of §3.1 without
// running a simulation: it solves the steady-state equations for a given
// ship probability, or sweeps for the optimal static load-sharing policy.
//
// Examples:
//
//	analyze -rate 2.5 -pship 0.4        # solve one operating point
//	analyze -rate 2.5 -optimize         # find the optimal static p_ship
//	analyze -rate 2.5 -sweep            # table of RT vs p_ship
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"hybriddb/internal/experiments"
	"hybriddb/internal/hybrid"
	"hybriddb/internal/model"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	var (
		rate     = fs.Float64("rate", 1.0, "arrival rate per site (txn/s)")
		delay    = fs.Float64("delay", 0.2, "one-way communications delay (s)")
		pship    = fs.Float64("pship", 0, "static ship probability to analyze")
		optimize = fs.Bool("optimize", false, "find the optimal static ship probability")
		sweepFlg = fs.Bool("sweep", false, "print a table of response time vs ship probability")
		validate = fs.Bool("validate", false, "compare the model against simulations across load")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := hybrid.DefaultConfig()
	cfg.ArrivalRatePerSite = *rate
	cfg.CommDelay = *delay

	switch {
	case *validate:
		rows, err := experiments.ModelValidation(experiments.Options{
			Base:         cfg,
			RatesPerSite: []float64{0.5, 1.0, 1.5, 2.0, 2.5},
		}, *pship)
		if err != nil {
			return err
		}
		return experiments.WriteValidation(out, rows)
	case *sweepFlg:
		return sweepTable(out, cfg)
	case *optimize:
		opt, err := model.OptimalShipFraction(cfg.ModelInput(0), 0.01)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "optimal static p_ship = %.3f\n\n", opt.PShip)
		return printResult(out, opt.Result)
	default:
		res, err := model.Solve(cfg.ModelInput(*pship))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "model solution at p_ship = %.3f\n\n", *pship)
		return printResult(out, res)
	}
}

func printResult(out io.Writer, r model.Result) error {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "mean response time\t%.3f s\n", r.RAvg)
	fmt.Fprintf(tw, "  local class A\t%.3f s\n", r.RLocal)
	fmt.Fprintf(tw, "  central (shipped + class B)\t%.3f s\n", r.RCentral)
	fmt.Fprintf(tw, "utilization\tlocal %.3f, central %.3f\n", r.UtilLocal, r.UtilCentral)
	fmt.Fprintf(tw, "abort probability\tlocal %.4f, central %.4f\n", r.PAbortLocal, r.PAbortCentral)
	fmt.Fprintf(tw, "expected re-runs\tlocal %.4f, central %.4f\n", r.RerunsLocal, r.RerunsCentral)
	fmt.Fprintf(tw, "saturated\t%v\n", r.Saturated)
	fmt.Fprintf(tw, "converged\t%v in %d iterations\n", r.Converged, r.Iterations)
	return tw.Flush()
}

func sweepTable(out io.Writer, cfg hybrid.Config) error {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "p_ship\tR_avg\tR_local\tR_central\tutil_local\tutil_central")
	for p := 0.0; p <= 1.0001; p += 0.05 {
		if p > 1 {
			p = 1
		}
		res, err := model.Solve(cfg.ModelInput(p))
		if err != nil {
			return err
		}
		if res.Saturated {
			fmt.Fprintf(tw, "%.2f\tsaturated\t-\t-\t%.3f\t%.3f\n", p, res.UtilLocal, res.UtilCentral)
			continue
		}
		fmt.Fprintf(tw, "%.2f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			p, res.RAvg, res.RLocal, res.RCentral, res.UtilLocal, res.UtilCentral)
	}
	return tw.Flush()
}
