// Command analyze queries the analytical performance model of §3.1 without
// running a simulation: it solves the steady-state equations for a given
// ship probability, or sweeps for the optimal static load-sharing policy.
//
// Examples:
//
//	analyze -rate 2.5 -pship 0.4        # solve one operating point
//	analyze -rate 2.5 -optimize         # find the optimal static p_ship
//	analyze -rate 2.5 -sweep            # table of RT vs p_ship
//	analyze -manifest RUN_fig42.json    # summarize a recorded run manifest
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"hybriddb/internal/experiments"
	"hybriddb/internal/hybrid"
	"hybriddb/internal/model"
	"hybriddb/internal/obsx/manifest"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	var (
		rate     = fs.Float64("rate", 1.0, "arrival rate per site (txn/s)")
		delay    = fs.Float64("delay", 0.2, "one-way communications delay (s)")
		pship    = fs.Float64("pship", 0, "static ship probability to analyze")
		optimize = fs.Bool("optimize", false, "find the optimal static ship probability")
		sweepFlg = fs.Bool("sweep", false, "print a table of response time vs ship probability")
		validate = fs.Bool("validate", false, "compare the model against simulations across load")
		maniPath = fs.String("manifest", "", "summarize a RUN_*.json manifest written by hybridsim or figures")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := hybrid.DefaultConfig()
	cfg.ArrivalRatePerSite = *rate
	cfg.CommDelay = *delay

	switch {
	case *maniPath != "":
		return summarizeManifest(out, *maniPath)
	case *validate:
		rows, err := experiments.ModelValidation(experiments.Options{
			Base:         cfg,
			RatesPerSite: []float64{0.5, 1.0, 1.5, 2.0, 2.5},
		}, *pship)
		if err != nil {
			return err
		}
		return experiments.WriteValidation(out, rows)
	case *sweepFlg:
		return sweepTable(out, cfg)
	case *optimize:
		opt, err := model.OptimalShipFraction(cfg.ModelInput(0), 0.01)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "optimal static p_ship = %.3f\n\n", opt.PShip)
		return printResult(out, opt.Result)
	default:
		res, err := model.Solve(cfg.ModelInput(*pship))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "model solution at p_ship = %.3f\n\n", *pship)
		return printResult(out, res)
	}
}

// summarizeManifest renders a recorded run manifest without resimulating.
// Percentiles are recomputed from the artifact's own histogram dumps when
// the run captured them (hybridsim/figures -manifest do), demonstrating that
// RUN_*.json is self-sufficient for re-plotting; otherwise the result's
// stored percentile fields are shown.
func summarizeManifest(out io.Writer, path string) error {
	m, err := manifest.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "manifest %s — %s (%s)\n", path, m.Tool, m.Title)
	fmt.Fprintf(out, "built with %s", m.GoVersion)
	if m.GitRevision != "" {
		rev := m.GitRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(out, " at %s", rev)
		if m.GitDirty {
			fmt.Fprint(out, " (dirty)")
		}
	}
	if m.Created != "" {
		fmt.Fprintf(out, ", recorded %s", m.Created)
	}
	fmt.Fprintf(out, ", %.1fs wall\n\n", m.WallSeconds)

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "run\tstrategy\trate/site\tseed\ttput\tmean RT\tp50\tp95\tp99\taborts(dl/sz/nack/inv)\tclipped")
	for _, run := range m.Runs {
		r := run.Result
		p50, p95, p99 := r.RTPercentiles.P50, r.RTPercentiles.P95, r.RTPercentiles.P99
		if r.Histograms != nil {
			h := r.Histograms.All
			p50, p95, p99 = h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
		}
		fmt.Fprintf(tw, "%s\t%s\t%g\t%d\t%.2f\t%.3f\t%.3f\t%.3f\t%.3f\t%d/%d/%d/%d\t%d\n",
			run.Label, r.Strategy, run.Config.ArrivalRatePerSite, run.Seed,
			r.Throughput, r.MeanRT, p50, p95, p99,
			r.AbortsDeadlockLocal+r.AbortsDeadlockCentral,
			r.AbortsLocalSeized, r.AbortsCentralNACK, r.AbortsCentralInval,
			r.ClipAll.Over)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(out, "\n%d runs\n", len(m.Runs))
	return nil
}

func printResult(out io.Writer, r model.Result) error {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "mean response time\t%.3f s\n", r.RAvg)
	fmt.Fprintf(tw, "  local class A\t%.3f s\n", r.RLocal)
	fmt.Fprintf(tw, "  central (shipped + class B)\t%.3f s\n", r.RCentral)
	fmt.Fprintf(tw, "utilization\tlocal %.3f, central %.3f\n", r.UtilLocal, r.UtilCentral)
	fmt.Fprintf(tw, "abort probability\tlocal %.4f, central %.4f\n", r.PAbortLocal, r.PAbortCentral)
	fmt.Fprintf(tw, "expected re-runs\tlocal %.4f, central %.4f\n", r.RerunsLocal, r.RerunsCentral)
	fmt.Fprintf(tw, "saturated\t%v\n", r.Saturated)
	fmt.Fprintf(tw, "converged\t%v in %d iterations\n", r.Converged, r.Iterations)
	return tw.Flush()
}

func sweepTable(out io.Writer, cfg hybrid.Config) error {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "p_ship\tR_avg\tR_local\tR_central\tutil_local\tutil_central")
	for p := 0.0; p <= 1.0001; p += 0.05 {
		if p > 1 {
			p = 1
		}
		res, err := model.Solve(cfg.ModelInput(p))
		if err != nil {
			return err
		}
		if res.Saturated {
			fmt.Fprintf(tw, "%.2f\tsaturated\t-\t-\t%.3f\t%.3f\n", p, res.UtilLocal, res.UtilCentral)
			continue
		}
		fmt.Fprintf(tw, "%.2f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			p, res.RAvg, res.RLocal, res.RCentral, res.UtilLocal, res.UtilCentral)
	}
	return tw.Flush()
}
