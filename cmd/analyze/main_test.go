package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/obsx/manifest"
	"hybriddb/internal/routing"
)

func TestAnalyzePoint(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-rate", "2.0", "-pship", "0.4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"p_ship = 0.400", "mean response time", "utilization", "converged"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeOptimize(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-rate", "2.5", "-optimize"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "optimal static p_ship") {
		t.Errorf("missing optimum line:\n%s", buf.String())
	}
}

func TestAnalyzeSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-rate", "3.0", "-sweep"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "p_ship") {
		t.Errorf("missing sweep header:\n%s", out)
	}
	// At 30 tps, p_ship = 0 saturates the local sites.
	if !strings.Contains(out, "saturated") {
		t.Errorf("sweep at 30 tps shows no saturated points:\n%s", out)
	}
}

func TestAnalyzeRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-rate", "0"}, &buf); err == nil {
		t.Error("zero rate accepted")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestAnalyzeValidate(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-pship", "0.3", "-validate"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "model vs simulation") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "rel err") {
		t.Errorf("columns missing:\n%s", out)
	}
}

// TestAnalyzeManifest round-trips a recorded run through -manifest: a real
// simulation's artifact is summarized without resimulating, with percentiles
// recomputed from the dumped histogram buckets.
func TestAnalyzeManifest(t *testing.T) {
	cfg := hybrid.DefaultConfig()
	cfg.Sites = 4
	cfg.Warmup, cfg.Duration = 5, 25
	cfg.CaptureHistograms = true
	e, err := hybrid.New(cfg, routing.QueueLength{})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()

	m := manifest.New("test", "analyze round trip")
	m.Add("single", cfg, res)
	m.Finish(0)
	path := filepath.Join(t.TempDir(), "RUN_test.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run([]string{"-manifest", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"analyze round trip", "single", "queue-length", "1 runs"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeManifestRejectsMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-manifest", filepath.Join(t.TempDir(), "nope.json")}, &buf); err == nil {
		t.Fatal("missing manifest accepted")
	}
}
