package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/obsx/manifest"
	"hybriddb/internal/routing"
)

func TestAnalyzePoint(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-rate", "2.0", "-pship", "0.4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"p_ship = 0.400", "mean response time", "utilization", "converged"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeOptimize(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-rate", "2.5", "-optimize"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "optimal static p_ship") {
		t.Errorf("missing optimum line:\n%s", buf.String())
	}
}

func TestAnalyzeSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-rate", "3.0", "-sweep"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "p_ship") {
		t.Errorf("missing sweep header:\n%s", out)
	}
	// At 30 tps, p_ship = 0 saturates the local sites.
	if !strings.Contains(out, "saturated") {
		t.Errorf("sweep at 30 tps shows no saturated points:\n%s", out)
	}
}

func TestAnalyzeRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-rate", "0"}, &buf); err == nil {
		t.Error("zero rate accepted")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestAnalyzeValidate(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-pship", "0.3", "-validate"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "model vs simulation") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "rel err") {
		t.Errorf("columns missing:\n%s", out)
	}
}

// TestAnalyzeManifest round-trips a recorded run through -manifest: a real
// simulation's artifact is summarized without resimulating, with percentiles
// recomputed from the dumped histogram buckets.
func TestAnalyzeManifest(t *testing.T) {
	cfg := hybrid.DefaultConfig()
	cfg.Sites = 4
	cfg.Warmup, cfg.Duration = 5, 25
	cfg.CaptureHistograms = true
	e, err := hybrid.New(cfg, routing.QueueLength{})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()

	m := manifest.New("test", "analyze round trip")
	m.Add("single", cfg, res)
	m.Finish(0)
	path := filepath.Join(t.TempDir(), "RUN_test.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run([]string{"-manifest", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"analyze round trip", "single", "queue-length", "1 runs"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeManifestRejectsMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-manifest", filepath.Join(t.TempDir(), "nope.json")}, &buf); err == nil {
		t.Fatal("missing manifest accepted")
	}
}

// TestAnalyzeManifestRejectsCorruptJSON: a truncated or garbled manifest
// must produce a decode error naming the file, not a zero-valued summary.
func TestAnalyzeManifestRejectsCorruptJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "RUN_corrupt.json")
	if err := os.WriteFile(path, []byte(`{"schema": "hybriddb.run/1", "runs": [`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{"-manifest", path}, &buf)
	if err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	if !strings.Contains(err.Error(), "RUN_corrupt.json") {
		t.Errorf("error does not name the file: %v", err)
	}
}

// TestAnalyzeManifestRejectsWrongSchema: valid JSON with an unknown schema
// tag must be refused — silently summarizing a future or foreign format
// would misreport its contents.
func TestAnalyzeManifestRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "RUN_alien.json")
	if err := os.WriteFile(path, []byte(`{"schema": "somebody-elses/9", "runs": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{"-manifest", path}, &buf)
	if err == nil {
		t.Fatal("wrong-schema manifest accepted")
	}
	if !strings.Contains(err.Error(), "schema") {
		t.Errorf("error does not mention the schema mismatch: %v", err)
	}
}
