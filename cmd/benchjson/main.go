// Command benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON summary, optionally comparing against a baseline
// bench output to compute per-benchmark deltas. It is the recording half of
// the repository's benchmark trajectory: each perf PR captures its numbers
// in a BENCH_<pr>.json so speedups are measured, not asserted.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -label pr3 -o BENCH_pr3.json
//	benchjson -baseline bench/baseline_pr2.txt -label pr3 current.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Measurement is one benchmark's figures.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

// Entry is one benchmark in the summary, with an optional baseline and the
// resulting deltas (negative percentages are improvements).
type Entry struct {
	Package string       `json:"package"`
	Name    string       `json:"name"`
	Current Measurement  `json:"current"`
	Base    *Measurement `json:"baseline,omitempty"`

	DeltaNsPct     *float64 `json:"delta_ns_pct,omitempty"`
	DeltaBytesPct  *float64 `json:"delta_bytes_pct,omitempty"`
	DeltaAllocsPct *float64 `json:"delta_allocs_pct,omitempty"`
}

// Fingerprint identifies the host a benchmark run was measured on. Benchmark
// deltas across different fingerprints measure the hosts, not the code, so
// every emitted summary carries one and diffing against a baseline from a
// different fingerprint warns.
type Fingerprint struct {
	// GOMAXPROCS of the measuring run, read from the -N suffix on the
	// benchmark names; falls back to the converting process's own value
	// when the input has no suffix.
	GoMaxProcs int `json:"gomaxprocs"`
	// CPU is the "cpu:" header go test prints, e.g.
	// "Intel(R) Xeon(R) Processor @ 2.10GHz". Empty if the input omits it.
	CPU string `json:"cpu,omitempty"`
	// GoVersion is the toolchain of the converting process — the same
	// toolchain that ran the benchmarks in the normal pipe usage.
	GoVersion string `json:"go_version"`
}

// Summary is the emitted document. Notes carries the human verdict of the
// measurement campaign — the conditions (host, core count) and the
// conclusion the numbers support — so a BENCH_*.json file stands alone.
type Summary struct {
	Label       string       `json:"label"`
	Notes       string       `json:"notes,omitempty"`
	Fingerprint *Fingerprint `json:"fingerprint,omitempty"`
	Benchmarks  []Entry      `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkScheduleStep-8   12345678   95.2 ns/op   0 B/op   0 allocs/op
//
// The -N GOMAXPROCS suffix is stripped from the key so runs from machines
// with different core counts still line up against a baseline; its value
// feeds the host fingerprint instead.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var out string
	fs.StringVar(&out, "o", "", "output file (default stdout)")
	fs.StringVar(&out, "out", "", "alias for -o")
	var (
		label    = fs.String("label", "", "summary label, e.g. the PR being measured")
		notes    = fs.String("notes", "", "verdict/conditions note embedded in the summary")
		baseline = fs.String("baseline", "", "baseline bench output to diff against")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var current map[string]Measurement
	var order []string
	var host hostInfo
	var err error
	switch fs.NArg() {
	case 0:
		current, order, host, err = parseBench(stdin)
	case 1:
		current, order, host, err = parseBenchFile(fs.Arg(0))
	default:
		return fmt.Errorf("at most one input file, got %d", fs.NArg())
	}
	if err != nil {
		return err
	}
	if len(order) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	var base map[string]Measurement
	if *baseline != "" {
		var baseHost hostInfo
		base, _, baseHost, err = parseBenchFile(*baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if stderr != nil {
			if w := host.diff(baseHost); w != "" {
				fmt.Fprintf(stderr, "benchjson: warning: baseline measured on a different host (%s); deltas compare hosts, not code\n", w)
			}
		}
	}

	fp := Fingerprint{
		GoMaxProcs: host.maxprocs,
		CPU:        host.cpu,
		GoVersion:  runtime.Version(),
	}
	if fp.GoMaxProcs == 0 {
		fp.GoMaxProcs = runtime.GOMAXPROCS(0)
	}
	summary := Summary{Label: *label, Notes: *notes, Fingerprint: &fp}
	for _, key := range order {
		cur := current[key]
		pkg, name := splitKey(key)
		e := Entry{Package: pkg, Name: name, Current: cur}
		if b, ok := base[key]; ok {
			b := b
			e.Base = &b
			e.DeltaNsPct = deltaPct(cur.NsPerOp, b.NsPerOp)
			e.DeltaBytesPct = deltaPct(cur.BytesPerOp, b.BytesPerOp)
			e.DeltaAllocsPct = deltaPct(cur.AllocsPerOp, b.AllocsPerOp)
		}
		summary.Benchmarks = append(summary.Benchmarks, e)
	}

	buf, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = stdout.Write(buf)
		return err
	}
	return os.WriteFile(out, buf, 0o644)
}

// deltaPct returns 100*(cur-base)/base, or nil when base is zero (a delta
// against zero is meaningless; zero-alloc baselines stay zero or regress to
// a bare current value the reader can see directly).
func deltaPct(cur, base float64) *float64 {
	if base == 0 {
		return nil
	}
	d := 100 * (cur - base) / base
	return &d
}

func splitKey(key string) (pkg, name string) {
	if i := strings.LastIndex(key, " "); i >= 0 {
		return key[:i], key[i+1:]
	}
	return "", key
}

// hostInfo is the host evidence a bench output carries about the machine
// that produced it: the "cpu:" header and the GOMAXPROCS suffix on the
// benchmark names. Zero fields mean the input did not say.
type hostInfo struct {
	cpu      string
	maxprocs int
}

// diff describes how two host fingerprints disagree, or "" when every field
// both sides recorded matches. Fields only one side recorded are not a
// disagreement — old baselines may predate the header lines.
func (h hostInfo) diff(base hostInfo) string {
	var parts []string
	if h.cpu != "" && base.cpu != "" && h.cpu != base.cpu {
		parts = append(parts, fmt.Sprintf("cpu %q vs baseline %q", h.cpu, base.cpu))
	}
	if h.maxprocs != 0 && base.maxprocs != 0 && h.maxprocs != base.maxprocs {
		parts = append(parts, fmt.Sprintf("GOMAXPROCS %d vs baseline %d", h.maxprocs, base.maxprocs))
	}
	return strings.Join(parts, "; ")
}

func parseBenchFile(path string) (map[string]Measurement, []string, hostInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, hostInfo{}, err
	}
	defer f.Close()
	return parseBench(f)
}

// parseBench extracts benchmark measurements keyed by "package name". The
// `pkg:` header lines that `go test` prints qualify subsequent benchmarks;
// input without headers (a single package's output) keys by bare name.
func parseBench(r io.Reader) (map[string]Measurement, []string, hostInfo, error) {
	got := make(map[string]Measurement)
	var order []string
	var host hostInfo
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			host.cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if host.maxprocs == 0 && m[2] != "" {
			host.maxprocs, _ = strconv.Atoi(m[2])
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return nil, nil, host, fmt.Errorf("bad iteration count in %q", line)
		}
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, nil, host, fmt.Errorf("bad ns/op in %q", line)
		}
		meas := Measurement{NsPerOp: ns, Iterations: iters}
		if m[5] != "" {
			meas.BytesPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		if m[6] != "" {
			meas.AllocsPerOp, _ = strconv.ParseFloat(m[6], 64)
		}
		key := m[1]
		if pkg != "" {
			key = pkg + " " + m[1]
		}
		if _, dup := got[key]; !dup {
			order = append(order, key)
		}
		got[key] = meas
	}
	return got, order, host, sc.Err()
}
