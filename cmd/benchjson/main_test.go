package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCurrent = `goos: linux
goarch: amd64
pkg: hybriddb/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkScheduleStep-8    	12000000	        95.0 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	hybriddb/internal/sim	2.1s
pkg: hybriddb/internal/hybrid
BenchmarkEngineObserversOff    	     100	  10000000 ns/op	 2000000 B/op	   40000 allocs/op
PASS
`

const sampleBaseline = `pkg: hybriddb/internal/sim
BenchmarkScheduleStep-4    	 9000000	       120.0 ns/op	      48 B/op	       1 allocs/op
pkg: hybriddb/internal/hybrid
BenchmarkEngineObserversOff-4  	      75	  16000000 ns/op	 6000000 B/op	  120000 allocs/op
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseAndDiff(t *testing.T) {
	cur := writeFile(t, "cur.txt", sampleCurrent)
	base := writeFile(t, "base.txt", sampleBaseline)
	out := filepath.Join(t.TempDir(), "out.json")

	var warn strings.Builder
	if err := run([]string{"-label", "pr3", "-baseline", base, "-o", out, cur}, nil, nil, &warn); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if s.Label != "pr3" {
		t.Errorf("label %q, want pr3", s.Label)
	}
	if len(s.Benchmarks) != 2 {
		t.Fatalf("%d benchmarks, want 2", len(s.Benchmarks))
	}

	sched := s.Benchmarks[0]
	if sched.Package != "hybriddb/internal/sim" || sched.Name != "BenchmarkScheduleStep" {
		t.Fatalf("first benchmark = %s %s", sched.Package, sched.Name)
	}
	if sched.Current.NsPerOp != 95.0 || sched.Current.AllocsPerOp != 0 {
		t.Errorf("current measurement wrong: %+v", sched.Current)
	}
	if sched.Base == nil || sched.Base.NsPerOp != 120.0 {
		t.Fatalf("baseline not matched across GOMAXPROCS suffixes: %+v", sched.Base)
	}
	// allocs went 1 -> 0: -100%.
	if sched.DeltaAllocsPct == nil || *sched.DeltaAllocsPct != -100 {
		t.Errorf("DeltaAllocsPct = %v, want -100", sched.DeltaAllocsPct)
	}

	eng := s.Benchmarks[1]
	if eng.DeltaAllocsPct == nil {
		t.Fatal("engine delta missing")
	}
	// 40000 vs 120000 allocs: -66.7%.
	if got := *eng.DeltaAllocsPct; got > -66 || got < -67 {
		t.Errorf("engine DeltaAllocsPct = %v, want about -66.7", got)
	}
	if eng.DeltaNsPct == nil || *eng.DeltaNsPct >= 0 {
		t.Errorf("engine DeltaNsPct = %v, want negative", eng.DeltaNsPct)
	}

	// The sample baseline ran at GOMAXPROCS 4 against the current 8: the
	// cross-host diff must be flagged.
	if w := warn.String(); !strings.Contains(w, "different host") || !strings.Contains(w, "GOMAXPROCS 8 vs baseline 4") {
		t.Errorf("cross-fingerprint diff not warned about: %q", w)
	}
}

// TestFingerprintEmbedded checks every summary records the measuring host:
// GOMAXPROCS from the bench-name suffix, the CPU model from the cpu: header,
// and a go version.
func TestFingerprintEmbedded(t *testing.T) {
	cur := writeFile(t, "cur.txt", sampleCurrent)
	var sb strings.Builder
	if err := run([]string{cur}, nil, &sb, nil); err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal([]byte(sb.String()), &s); err != nil {
		t.Fatal(err)
	}
	fp := s.Fingerprint
	if fp == nil {
		t.Fatal("summary has no host fingerprint")
	}
	if fp.GoMaxProcs != 8 {
		t.Errorf("GoMaxProcs = %d, want 8 (from the -8 bench suffix)", fp.GoMaxProcs)
	}
	if want := "Intel(R) Xeon(R) Processor @ 2.10GHz"; fp.CPU != want {
		t.Errorf("CPU = %q, want %q", fp.CPU, want)
	}
	if !strings.HasPrefix(fp.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want a goX.Y version", fp.GoVersion)
	}
}

// TestSameHostNoWarning checks diffing two runs with matching fingerprints
// stays quiet, and fields only one side recorded are not a mismatch.
func TestSameHostNoWarning(t *testing.T) {
	cur := writeFile(t, "cur.txt", sampleCurrent)
	// Same suffix, no cpu header: cpu is unknown on the baseline side.
	base := writeFile(t, "base.txt", "pkg: hybriddb/internal/sim\nBenchmarkScheduleStep-8 \t 9000000\t 120.0 ns/op\n")
	var sb, warn strings.Builder
	if err := run([]string{"-baseline", base, cur}, nil, &sb, &warn); err != nil {
		t.Fatal(err)
	}
	if warn.Len() != 0 {
		t.Errorf("matching fingerprints still warned: %q", warn.String())
	}
}

func TestNoBaselineOmitsDeltas(t *testing.T) {
	cur := writeFile(t, "cur.txt", sampleCurrent)
	var sb strings.Builder
	if err := run([]string{cur}, nil, &sb, nil); err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal([]byte(sb.String()), &s); err != nil {
		t.Fatal(err)
	}
	for _, b := range s.Benchmarks {
		if b.Base != nil || b.DeltaNsPct != nil {
			t.Errorf("benchmark %s has baseline fields without -baseline", b.Name)
		}
	}
}

func TestZeroBaselineDeltaOmitted(t *testing.T) {
	// A zero-alloc baseline must not produce a divide-by-zero delta.
	cur := writeFile(t, "cur.txt", "pkg: p\nBenchmarkX \t 10\t 5.0 ns/op\t 8 B/op\t 1 allocs/op\n")
	base := writeFile(t, "base.txt", "pkg: p\nBenchmarkX \t 10\t 4.0 ns/op\t 0 B/op\t 0 allocs/op\n")
	var sb strings.Builder
	if err := run([]string{"-baseline", base, cur}, nil, &sb, nil); err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal([]byte(sb.String()), &s); err != nil {
		t.Fatal(err)
	}
	b := s.Benchmarks[0]
	if b.DeltaAllocsPct != nil || b.DeltaBytesPct != nil {
		t.Error("delta against a zero baseline should be omitted")
	}
	if b.DeltaNsPct == nil || *b.DeltaNsPct != 25 {
		t.Errorf("DeltaNsPct = %v, want 25", b.DeltaNsPct)
	}
}

func TestEmptyInputFails(t *testing.T) {
	cur := writeFile(t, "cur.txt", "no benchmarks here\n")
	if err := run([]string{cur}, nil, nil, nil); err == nil {
		t.Fatal("empty input did not error")
	}
}
