package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/obsx/manifest"
)

// TestShardFallbackReason pins the config-level sharding eligibility
// explanation against the engine's own decision.
func TestShardFallbackReason(t *testing.T) {
	cfg := hybrid.DefaultConfig()
	if s := shardFallbackReason(cfg); s != "" {
		t.Errorf("default config flagged as unshardable: %q", s)
	}
	cfg = hybrid.DefaultConfig()
	cfg.CommDelay = 0
	if s := shardFallbackReason(cfg); !strings.Contains(s, "delay") {
		t.Errorf("zero delay reason %q does not name the delay", s)
	}
	cfg = hybrid.DefaultConfig()
	cfg.Feedback = hybrid.FeedbackIdeal
	if s := shardFallbackReason(cfg); !strings.Contains(s, "ideal") {
		t.Errorf("ideal feedback reason %q does not name the feedback mode", s)
	}
}

func TestRunProducesReport(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-rate", "1.0", "-warmup", "20", "-duration", "60", "-strategy", "best",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"strategy", "min-average/nis", "throughput", "mean response time",
		"ship fraction", "utilization", "aborts",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllStrategySpecs(t *testing.T) {
	for _, spec := range []string{"none", "static:0.3", "queue-length", "threshold:-0.2"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			var buf bytes.Buffer
			err := run([]string{
				"-rate", "0.8", "-warmup", "10", "-duration", "30", "-strategy", spec,
			}, &buf)
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunFeedbackModes(t *testing.T) {
	for _, fb := range []string{"auth-only", "all-messages", "ideal"} {
		var buf bytes.Buffer
		err := run([]string{
			"-rate", "0.8", "-warmup", "10", "-duration", "30", "-feedback", fb,
		}, &buf)
		if err != nil {
			t.Fatalf("feedback %s: %v", fb, err)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-strategy", "nonsense"},
		{"-feedback", "psychic"},
		{"-rate", "0"},
		{"-shards", "-1"},
		{"-unknownflag"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var buf bytes.Buffer
	err := run([]string{
		"-rate", "0.8", "-warmup", "5", "-duration", "20",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

func TestRunRejectsBadProfilePath(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-rate", "0.8", "-warmup", "5", "-duration", "10",
		"-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.prof"),
	}, &buf)
	if err == nil {
		t.Fatal("unwritable cpuprofile path accepted")
	}
}

func TestRunSelfCheck(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-rate", "1.5", "-warmup", "10", "-duration", "40", "-selfcheck",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithReplications(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-rate", "1.0", "-warmup", "10", "-duration", "30",
		"-strategy", "queue-length", "-replications", "3",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3 replications") {
		t.Errorf("replication header missing:\n%s", out)
	}
	if !strings.Contains(out, "±") {
		t.Errorf("confidence interval missing:\n%s", out)
	}
}

func TestRunRepsShorthandAndParallel(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-rate", "1.0", "-warmup", "10", "-duration", "30",
		"-strategy", "queue-length", "-reps", "3", "-parallel", "4",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3 replications") {
		t.Errorf("replication header missing:\n%s", out)
	}
}

func TestRunParallelismDoesNotChangeReport(t *testing.T) {
	render := func(parallel string) string {
		var buf bytes.Buffer
		err := run([]string{
			"-rate", "1.0", "-warmup", "10", "-duration", "30",
			"-strategy", "best", "-reps", "3", "-parallel", parallel,
		}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if serial, fanned := render("1"), render("8"); serial != fanned {
		t.Error("-parallel changed the replication report")
	}
}

func TestRunWritesSpansFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.json")
	var buf bytes.Buffer
	err := run([]string{
		"-rate", "1.0", "-sites", "4", "-warmup", "0", "-duration", "20",
		"-spans", path,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("span file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("span file holds no events")
	}
}

func TestRunSpansRejectsReplications(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-rate", "1.0", "-warmup", "0", "-duration", "10",
		"-reps", "2", "-spans", filepath.Join(t.TempDir(), "x.json"),
	}, &buf)
	if err == nil {
		t.Fatal("-spans with -reps accepted")
	}
}

func TestRunWritesManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "RUN_test.json")
	var buf bytes.Buffer
	err := run([]string{
		"-rate", "1.0", "-sites", "4", "-warmup", "5", "-duration", "20",
		"-strategy", "queue-length", "-manifest", path,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := manifest.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "hybridsim" || len(m.Runs) != 1 {
		t.Fatalf("manifest header: tool=%q runs=%d", m.Tool, len(m.Runs))
	}
	r := m.Runs[0]
	if r.Result.Histograms == nil {
		t.Error("manifest run lacks histogram dumps")
	}
	if r.Config.ArrivalRatePerSite != 1.0 || r.Config.Sites != 4 {
		t.Errorf("manifest config mangled: %+v", r.Config)
	}
}

func TestRunManifestWithReplications(t *testing.T) {
	path := filepath.Join(t.TempDir(), "RUN_reps.json")
	var buf bytes.Buffer
	err := run([]string{
		"-rate", "1.0", "-warmup", "5", "-duration", "20",
		"-strategy", "queue-length", "-reps", "3", "-manifest", path,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := manifest.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 3 {
		t.Fatalf("%d manifest runs, want 3", len(m.Runs))
	}
	for i, r := range m.Runs {
		if want := uint64(1) + uint64(i); r.Seed != want {
			t.Errorf("replication %d seed %d, want %d", i, r.Seed, want)
		}
	}
}

func TestRunReportsPercentiles(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-rate", "1.0", "-warmup", "10", "-duration", "40"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "percentiles") || !strings.Contains(buf.String(), "p99") {
		t.Errorf("report missing percentile line:\n%s", buf.String())
	}
}
