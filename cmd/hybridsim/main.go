// Command hybridsim runs one simulation of the hybrid distributed–
// centralized database system and prints the measured result.
//
// Example:
//
//	hybridsim -rate 2.5 -strategy best -delay 0.2 -duration 800
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"hybriddb/internal/experiments"
	"hybriddb/internal/hybrid"
	"hybriddb/internal/obsx/manifest"
	"hybriddb/internal/obsx/progress"
	"hybriddb/internal/obsx/spans"
	"hybriddb/internal/replicate"
	"hybriddb/internal/report"
	"hybriddb/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hybridsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hybridsim", flag.ContinueOnError)
	var (
		preset   = fs.String("preset", "", "named configuration preset: "+strings.Join(presetNames(), ", ")+"; explicit flags override preset values")
		rate     = fs.Float64("rate", 1.0, "arrival rate per site (txn/s)")
		delay    = fs.Float64("delay", 0.2, "one-way communications delay (s)")
		sites    = fs.Int("sites", 10, "number of local sites")
		strategy = fs.String("strategy", "best", "routing strategy: "+strings.Join(experiments.StrategyNames(), ", "))
		seed     = fs.Uint64("seed", 1, "random seed")
		warmup   = fs.Float64("warmup", 200, "warmup period discarded from statistics (s)")
		duration = fs.Float64("duration", 800, "measured simulated duration (s)")
		pwrite   = fs.Float64("pwrite", 0.25, "probability a lock request is exclusive")
		plocal   = fs.Float64("plocal", 0.75, "fraction of class A (local-data) transactions")
		feedback = fs.String("feedback", "auth-only", "central-state feedback: auth-only, all-messages, ideal")
		skew     = fs.Float64("skew", 0, "Zipf exponent of the lock-reference distribution (0 = uniform)")
		hotFrac  = fs.Float64("hot-fraction", 1, "fraction of each partition replicated at central (1 = full replication)")
		coldF    = fs.Float64("cold-fetch", 0, "seconds a central execution waits to fetch a cold element (first run only)")
		epoch    = fs.Float64("epoch", 0, "epoch length for batched update propagation, seconds (0 = per-commit async)")
		check    = fs.Bool("selfcheck", false, "run simulator invariant checks (slower)")
		shards   = fs.Int("shards", 0, "event-queue shards for the parallel core (0/1 = sequential); results are bit-identical either way")
		parallel = fs.Int("parallel", 0, "worker goroutines for replications (0 = GOMAXPROCS); affects speed only, never results")
		cpuprof  = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprof  = fs.String("memprofile", "", "write a pprof heap profile (post-run) to this file")
		spansOut = fs.String("spans", "", "write a Chrome trace-event span file of the run (open in Perfetto); single runs only")
		maniOut  = fs.String("manifest", "", "write a machine-readable run manifest (RUN_*.json) to this file")
		progFlg  = fs.Bool("progress", false, "print replication progress to stderr")
		dbgAddr  = fs.String("debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060) for the run's duration")
	)
	var reps int
	fs.IntVar(&reps, "replications", 1, "independent replications (>1 adds confidence intervals)")
	fs.IntVar(&reps, "reps", 1, "shorthand for -replications")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := hybrid.DefaultConfig()
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *preset != "" {
		p, err := applyPreset(*preset, &cfg)
		if err != nil {
			return err
		}
		// Preset values yield to explicitly passed flags below; flags the
		// user did not pass keep the preset's choices instead of their
		// defaults.
		if !set["rate"] {
			*rate = cfg.ArrivalRatePerSite
		}
		if !set["delay"] {
			*delay = cfg.CommDelay
		}
		if !set["sites"] {
			*sites = cfg.Sites
		}
		if !set["warmup"] {
			*warmup = cfg.Warmup
		}
		if !set["duration"] {
			*duration = cfg.Duration
		}
		if !set["shards"] {
			*shards = p.shards
		}
	}
	cfg.ArrivalRatePerSite = *rate
	cfg.CommDelay = *delay
	cfg.Sites = *sites
	cfg.Seed = *seed
	cfg.Warmup = *warmup
	cfg.Duration = *duration
	cfg.PWrite = *pwrite
	cfg.PLocal = *plocal
	cfg.SkewTheta = *skew
	cfg.CentralHotFraction = *hotFrac
	cfg.ColdFetchDelay = *coldF
	cfg.EpochLength = *epoch
	cfg.SelfCheck = *check
	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative (0 or 1 runs sequentially), got %d", *shards)
	}
	cfg.Shards = *shards
	switch *feedback {
	case "auth-only":
		cfg.Feedback = hybrid.FeedbackAuthOnly
	case "all-messages":
		cfg.Feedback = hybrid.FeedbackAllMessages
	case "ideal":
		cfg.Feedback = hybrid.FeedbackIdeal
	default:
		return fmt.Errorf("unknown feedback mode %q", *feedback)
	}

	if *maniOut != "" {
		// Manifests carry full histogram dumps, so ask the engine to keep them.
		cfg.CaptureHistograms = true
	}

	maker, err := experiments.ParseStrategy(*strategy)
	if err != nil {
		return err
	}

	if *dbgAddr != "" {
		addr, err := progress.StartDebugServer(*dbgAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hybridsim: debug server on http://%s/debug/pprof (expvar at /debug/vars)\n", addr)
	}

	// Profiling hooks: hot-path regressions in the event kernel, lock
	// manager, or lifecycle layers are diagnosed with pprof on a real run
	// rather than by editing benchmark code.
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			// An explicit GC makes the heap profile reflect live steady-state
			// structures (pools, heaps, tables) instead of collectible garbage.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hybridsim: memprofile:", err)
			}
			f.Close()
		}()
	}

	start := time.Now()
	if reps > 1 {
		if *spansOut != "" {
			return fmt.Errorf("-spans records a single run; drop -replications")
		}
		if *shards > 1 {
			if s := shardFallbackReason(cfg); s != "" {
				fmt.Fprintf(os.Stderr, "hybridsim: note: -shards %d ignored, running sequentially: %s\n", *shards, s)
			}
		}
		// Ctrl-C / SIGTERM stops dispatching further replications; the ones
		// in flight finish, and everything measured so far is still
		// reported and flushed to the manifest.
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stopSignals()
		popt := runner.Options{Parallelism: *parallel, Context: ctx}
		if *progFlg {
			popt.Progress = progress.NewTicker(os.Stderr, time.Second).Callback
		}
		summary, err := replicate.RunOpts(cfg, maker.Make, reps, popt)
		if err != nil && summary.Replications == 0 {
			return err
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybridsim: interrupted (%v); reporting the %d of %d replications that completed\n",
				err, summary.Replications, reps)
		}
		if *maniOut != "" {
			m := manifest.New("hybridsim", fmt.Sprintf("%s, %d replications", *strategy, summary.Replications))
			for i, r := range summary.Results {
				if r.Window <= 0 {
					continue // replication cancelled before it started
				}
				runCfg := cfg
				runCfg.Seed = cfg.Seed + uint64(i)
				m.Add(fmt.Sprintf("replication %d", i), runCfg, r)
			}
			m.Finish(time.Since(start))
			if err := m.WriteFile(*maniOut); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "hybridsim: wrote run manifest to %s\n", *maniOut)
		}
		for _, r := range summary.Results {
			if r.Window > 0 {
				warnClipped(r)
			}
		}
		if werr := report.WriteReplication(out, summary); werr != nil {
			return werr
		}
		return err
	}
	strat, err := maker.Make(cfg)
	if err != nil {
		return err
	}
	engine, err := hybrid.New(cfg, strat)
	if err != nil {
		return err
	}
	var collector *spans.Collector
	if *spansOut != "" {
		collector = spans.NewCollector(cfg.Sites)
		engine.Subscribe(collector)
	}
	r := engine.Run()
	if *shards > 1 && !engine.Parallel() {
		reason := "an external observer is attached (-spans needs the single ordered event stream)"
		if s := shardFallbackReason(cfg); s != "" {
			reason = s
		}
		fmt.Fprintf(os.Stderr, "hybridsim: note: -shards %d ignored, ran sequentially: %s\n", *shards, reason)
	}
	if collector != nil {
		if err := collector.WriteFile(*spansOut); err != nil {
			return err
		}
		if n := collector.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "hybridsim: span buffer full; %d transactions not traced (raise spans.Collector.MaxEvents or shorten the run)\n", n)
		}
		fmt.Fprintf(os.Stderr, "hybridsim: wrote %d span events to %s (open in Perfetto: https://ui.perfetto.dev)\n", collector.Events(), *spansOut)
	}
	if *maniOut != "" {
		m := manifest.New("hybridsim", *strategy)
		m.Add("single", cfg, r)
		m.Finish(time.Since(start))
		if err := m.WriteFile(*maniOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hybridsim: wrote run manifest to %s\n", *maniOut)
	}
	warnClipped(r)

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintf(tw, "strategy\t%s\n", r.Strategy)
	fmt.Fprintf(tw, "offered load\t%.1f tps total (%.2f/site x %d sites)\n",
		*rate*float64(*sites), *rate, *sites)
	fmt.Fprintf(tw, "throughput\t%.2f tps\n", r.Throughput)
	fmt.Fprintf(tw, "mean response time\t%.3f s (p95 %.3f s)\n", r.MeanRT, r.P95RT)
	fmt.Fprintf(tw, "  percentiles\tp50 %.3f, p90 %.3f, p95 %.3f, p99 %.3f s\n",
		r.RTPercentiles.P50, r.RTPercentiles.P90, r.RTPercentiles.P95, r.RTPercentiles.P99)
	fmt.Fprintf(tw, "  class A local\t%.3f s (%d txns)\n", r.MeanRTLocalA, r.CompletedLocalA)
	fmt.Fprintf(tw, "  class A shipped\t%.3f s (%d txns)\n", r.MeanRTShippedA, r.CompletedShippedA)
	fmt.Fprintf(tw, "  class B\t%.3f s (%d txns)\n", r.MeanRTClassB, r.CompletedClassB)
	fmt.Fprintf(tw, "ship fraction\t%.3f of class A\n", r.ShipFraction)
	fmt.Fprintf(tw, "utilization\tlocal mean %.2f (max %.2f), central %.2f\n",
		r.UtilLocalMean, r.UtilLocalMax, r.UtilCentral)
	fmt.Fprintf(tw, "aborts\tdeadlock %d/%d, seized %d, NACK %d, invalidated %d\n",
		r.AbortsDeadlockLocal, r.AbortsDeadlockCentral,
		r.AbortsLocalSeized, r.AbortsCentralNACK, r.AbortsCentralInval)
	fmt.Fprintf(tw, "mean lock wait\t%.4f s\n", r.MeanLockWait)
	fmt.Fprintf(tw, "network messages\t%d (auth rounds %d)\n", r.MessagesSent, r.AuthRounds)
	return nil
}

// presetExtras carries preset choices that live outside hybrid.Config.
type presetExtras struct {
	shards int // default for -shards when the flag is not passed
}

func presetNames() []string { return []string{"scale1000"} }

// applyPreset overwrites cfg with a named preset's values. Flags the user
// passed explicitly still win — run() re-applies them after the preset.
func applyPreset(name string, cfg *hybrid.Config) (presetExtras, error) {
	switch name {
	case "scale1000":
		// The paper's §4.1 system scaled 100x: 1000 local sites with the
		// shared hardware grown in proportion — central CPU 15 -> 1500 MIPS,
		// lockspace 32,768 -> 3,276,800 elements — and every per-site
		// parameter unchanged, so each site sees the paper's workload. The
		// horizon is sized for a ~10^7-transaction run (1000 sites x 1
		// txn/s x 10,000 simulated seconds); shorten it with -duration for
		// a quick look. Shards default to GOMAXPROCS: the sweet spot is
		// one worker per core, not one per site.
		cfg.Sites = 1000
		cfg.CentralMIPS = 1500
		cfg.Lockspace = 3_276_800
		cfg.Warmup = 200
		cfg.Duration = 9800
		return presetExtras{shards: runtime.GOMAXPROCS(0)}, nil
	}
	return presetExtras{}, fmt.Errorf("unknown preset %q (presets: %s)", name, strings.Join(presetNames(), ", "))
}

// shardFallbackReason names the configuration property that forces the
// engine to ignore Shards>1 and run sequentially, or "" if the
// configuration itself can shard (an attached observer can still force
// sequential; the engine reports that case via Parallel()). Mirrors the
// eligibility test in the engine's setupRunMode.
func shardFallbackReason(cfg hybrid.Config) string {
	switch {
	case cfg.CommDelay <= 0:
		return "zero -delay leaves no conservative lookahead window"
	case cfg.Feedback == hybrid.FeedbackIdeal:
		return "ideal feedback reads central state with no delay"
	}
	return ""
}

// warnClipped flags histogram overflow: observations above the bucketed
// range are clamped to the ceiling, so upper percentiles are underestimates
// and the run's numbers should not be quoted without this caveat.
func warnClipped(r hybrid.Result) {
	if r.ClipAll.Over == 0 {
		return
	}
	completed := r.CompletedLocalA + r.CompletedShippedA + r.CompletedClassB
	fmt.Fprintf(os.Stderr,
		"hybridsim: warning: %s: %d of %d response times exceeded the histogram range; p95/p99 are underestimates\n",
		r.Strategy, r.ClipAll.Over, completed)
}
