// Command hybridsim runs one simulation of the hybrid distributed–
// centralized database system and prints the measured result.
//
// Example:
//
//	hybridsim -rate 2.5 -strategy best -delay 0.2 -duration 800
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"

	"hybriddb/internal/experiments"
	"hybriddb/internal/hybrid"
	"hybriddb/internal/replicate"
	"hybriddb/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hybridsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hybridsim", flag.ContinueOnError)
	var (
		rate     = fs.Float64("rate", 1.0, "arrival rate per site (txn/s)")
		delay    = fs.Float64("delay", 0.2, "one-way communications delay (s)")
		sites    = fs.Int("sites", 10, "number of local sites")
		strategy = fs.String("strategy", "best", "routing strategy: "+strings.Join(experiments.StrategyNames(), ", "))
		seed     = fs.Uint64("seed", 1, "random seed")
		warmup   = fs.Float64("warmup", 200, "warmup period discarded from statistics (s)")
		duration = fs.Float64("duration", 800, "measured simulated duration (s)")
		pwrite   = fs.Float64("pwrite", 0.25, "probability a lock request is exclusive")
		plocal   = fs.Float64("plocal", 0.75, "fraction of class A (local-data) transactions")
		feedback = fs.String("feedback", "auth-only", "central-state feedback: auth-only, all-messages, ideal")
		check    = fs.Bool("selfcheck", false, "run simulator invariant checks (slower)")
		parallel = fs.Int("parallel", 0, "worker goroutines for replications (0 = GOMAXPROCS); affects speed only, never results")
		cpuprof  = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprof  = fs.String("memprofile", "", "write a pprof heap profile (post-run) to this file")
	)
	var reps int
	fs.IntVar(&reps, "replications", 1, "independent replications (>1 adds confidence intervals)")
	fs.IntVar(&reps, "reps", 1, "shorthand for -replications")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := hybrid.DefaultConfig()
	cfg.ArrivalRatePerSite = *rate
	cfg.CommDelay = *delay
	cfg.Sites = *sites
	cfg.Seed = *seed
	cfg.Warmup = *warmup
	cfg.Duration = *duration
	cfg.PWrite = *pwrite
	cfg.PLocal = *plocal
	cfg.SelfCheck = *check
	switch *feedback {
	case "auth-only":
		cfg.Feedback = hybrid.FeedbackAuthOnly
	case "all-messages":
		cfg.Feedback = hybrid.FeedbackAllMessages
	case "ideal":
		cfg.Feedback = hybrid.FeedbackIdeal
	default:
		return fmt.Errorf("unknown feedback mode %q", *feedback)
	}

	maker, err := experiments.ParseStrategy(*strategy)
	if err != nil {
		return err
	}

	// Profiling hooks: hot-path regressions in the event kernel, lock
	// manager, or lifecycle layers are diagnosed with pprof on a real run
	// rather than by editing benchmark code.
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			// An explicit GC makes the heap profile reflect live steady-state
			// structures (pools, heaps, tables) instead of collectible garbage.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hybridsim: memprofile:", err)
			}
			f.Close()
		}()
	}

	if reps > 1 {
		summary, err := replicate.RunParallel(cfg, maker.Make, reps, *parallel)
		if err != nil {
			return err
		}
		return report.WriteReplication(out, summary)
	}
	strat, err := maker.Make(cfg)
	if err != nil {
		return err
	}
	engine, err := hybrid.New(cfg, strat)
	if err != nil {
		return err
	}
	r := engine.Run()

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintf(tw, "strategy\t%s\n", r.Strategy)
	fmt.Fprintf(tw, "offered load\t%.1f tps total (%.2f/site x %d sites)\n",
		*rate*float64(*sites), *rate, *sites)
	fmt.Fprintf(tw, "throughput\t%.2f tps\n", r.Throughput)
	fmt.Fprintf(tw, "mean response time\t%.3f s (p95 %.3f s)\n", r.MeanRT, r.P95RT)
	fmt.Fprintf(tw, "  class A local\t%.3f s (%d txns)\n", r.MeanRTLocalA, r.CompletedLocalA)
	fmt.Fprintf(tw, "  class A shipped\t%.3f s (%d txns)\n", r.MeanRTShippedA, r.CompletedShippedA)
	fmt.Fprintf(tw, "  class B\t%.3f s (%d txns)\n", r.MeanRTClassB, r.CompletedClassB)
	fmt.Fprintf(tw, "ship fraction\t%.3f of class A\n", r.ShipFraction)
	fmt.Fprintf(tw, "utilization\tlocal mean %.2f (max %.2f), central %.2f\n",
		r.UtilLocalMean, r.UtilLocalMax, r.UtilCentral)
	fmt.Fprintf(tw, "aborts\tdeadlock %d/%d, seized %d, NACK %d, invalidated %d\n",
		r.AbortsDeadlockLocal, r.AbortsDeadlockCentral,
		r.AbortsLocalSeized, r.AbortsCentralNACK, r.AbortsCentralInval)
	fmt.Fprintf(tw, "mean lock wait\t%.4f s\n", r.MeanLockWait)
	fmt.Fprintf(tw, "network messages\t%d (auth rounds %d)\n", r.MessagesSent, r.AuthRounds)
	return nil
}
