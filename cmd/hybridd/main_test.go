package main

import (
	"bytes"
	"context"
	"fmt"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"hybriddb/internal/obsx/metrics"
	"hybriddb/internal/obsx/spans"
)

// TestRunFlagValidation pins the CLI's error paths without booting anything.
func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{},                 // missing role
		{"-role", "bogus"}, // unknown role
		{"-role", "site"},  // site without -central
		{"-role", "site", "-central", "x", "-strategy", "nope"}, // unknown strategy
		{"-role", "central", "-feedback", "ideal"},              // unsupported live feedback
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// proc wraps a hybridd/hybridload child process with line-captured stdout.
// Output is captured through an io.Writer (proc.Write) rather than
// StdoutPipe: cmd.Wait closes a pipe as soon as the child exits, which
// races a reader goroutine for the final lines (the shutdown counter line
// would intermittently vanish), whereas with a plain Writer, Wait blocks
// until exec's copier has delivered everything.
type proc struct {
	t     *testing.T
	name  string
	cmd   *exec.Cmd
	lines chan string
	mu    sync.Mutex
	out   bytes.Buffer
	tail  []byte // bytes of the current, not-yet-terminated line
}

func startProc(t *testing.T, name, bin string, args ...string) *proc {
	t.Helper()
	p := &proc{t: t, name: name, cmd: exec.Command(bin, args...), lines: make(chan string, 64)}
	p.cmd.Stdout = p
	p.cmd.Stderr = p // interleave; errors show up in the line feed too
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("%s: start: %v", name, err)
	}
	return p
}

// Write implements io.Writer for the child's stdout+stderr: accumulate the
// full transcript and feed completed lines to the expectLine channel.
func (p *proc) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.out.Write(b)
	p.tail = append(p.tail, b...)
	for {
		i := bytes.IndexByte(p.tail, '\n')
		if i < 0 {
			return len(b), nil
		}
		line := string(p.tail[:i])
		p.tail = p.tail[i+1:]
		select {
		case p.lines <- line:
		default:
		}
	}
}

// expectLine waits for a stdout line containing substr and returns it.
func (p *proc) expectLine(substr string, timeout time.Duration) string {
	p.t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case line := <-p.lines:
			if strings.Contains(line, substr) {
				return line
			}
		case <-deadline:
			p.t.Fatalf("%s did not print %q within %v; output:\n%s", p.name, substr, timeout, p.output())
		}
	}
}

func (p *proc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.String()
}

// terminate sends SIGTERM and requires a clean (exit 0) shutdown.
func (p *proc) terminate() {
	p.t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		p.t.Fatalf("%s: SIGTERM: %v", p.name, err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			p.t.Errorf("%s did not exit cleanly on SIGTERM: %v; output:\n%s", p.name, err, p.output())
		}
	case <-time.After(10 * time.Second):
		p.cmd.Process.Kill()
		p.t.Fatalf("%s hung on SIGTERM; output:\n%s", p.name, p.output())
	}
}

func (p *proc) kill() {
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// listenAddr extracts the address from a "listening on <addr>" line.
func listenAddr(t *testing.T, line string) string {
	t.Helper()
	_, after, ok := strings.Cut(line, "listening on ")
	if !ok {
		t.Fatalf("no address in %q", line)
	}
	return strings.Fields(after)[0]
}

// debugURL extracts the /metrics URL from a "debug listener on http://..."
// line.
func debugURL(t *testing.T, line string) string {
	t.Helper()
	_, after, ok := strings.Cut(line, "debug listener on ")
	if !ok {
		t.Fatalf("no debug URL in %q", line)
	}
	return strings.Fields(after)[0]
}

// TestClusterProcessSmoke is the `make cluster-smoke` gate at the process
// level: build both binaries, boot 1 central + 4 sites as real processes on
// loopback (DefaultLiveConfig, ports picked by the kernel), run a short
// paced load, scrape every node's /metrics and require transaction
// conservation per site and cluster-wide, then require nonzero commits,
// zero request errors, clean SIGTERM shutdowns all around, and a merged
// span trace with at least one transaction crossing two processes.
func TestClusterProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: builds binaries and runs a paced cluster")
	}
	dir := t.TempDir()
	hybridd := dir + "/hybridd"
	hybridload := dir + "/hybridload"
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, b := range []struct{ out, pkg string }{
		{hybridd, "hybriddb/cmd/hybridd"},
		{hybridload, "hybriddb/cmd/hybridload"},
	} {
		if out, err := exec.CommandContext(ctx, "go", "build", "-o", b.out, b.pkg).CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", b.pkg, err, out)
		}
	}

	// The debug-listener line prints before the listening line, and
	// expectLine discards non-matching lines, so capture them in that order.
	const sites = 4 // DefaultLiveConfig().Sites
	spanFiles := []string{dir + "/spans-central.json"}
	central := startProc(t, "central", hybridd, "-role", "central", "-listen", "127.0.0.1:0",
		"-debug-addr", "127.0.0.1:0", "-spans", spanFiles[0])
	defer central.kill()
	centralMetrics := debugURL(t, central.expectLine("debug listener on", 10*time.Second))
	centralAddr := listenAddr(t, central.expectLine("listening on", 10*time.Second))

	var siteProcs []*proc
	var siteAddrs, siteMetrics []string
	for i := 0; i < sites; i++ {
		spanFile := fmt.Sprintf("%s/spans-site%d.json", dir, i)
		spanFiles = append(spanFiles, spanFile)
		s := startProc(t, fmt.Sprintf("site%d", i), hybridd,
			"-role", "site", "-id", fmt.Sprint(i), "-central", centralAddr,
			"-listen", "127.0.0.1:0", "-strategy", "threshold:0",
			"-debug-addr", "127.0.0.1:0", "-spans", spanFile)
		defer s.kill()
		siteProcs = append(siteProcs, s)
		siteMetrics = append(siteMetrics, debugURL(t, s.expectLine("debug listener on", 10*time.Second)))
		siteAddrs = append(siteAddrs, listenAddr(t, s.expectLine("listening on", 10*time.Second)))
	}

	load := startProc(t, "hybridload", hybridload,
		"-addrs", strings.Join(siteAddrs, ","),
		"-warmup", "0.4", "-duration", "1.5", "-ramp", "0.2", "-threads", "2")
	defer load.kill()
	done := make(chan error, 1)
	go func() { done <- load.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("hybridload failed: %v; output:\n%s", err, load.output())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("hybridload hung; output:\n%s", load.output())
	}
	lout := load.output()
	if !strings.Contains(lout, " completed, 0 errors") {
		t.Errorf("load run reported errors or no summary:\n%s", lout)
	}
	if strings.Contains(lout, " 0 completed,") {
		t.Errorf("load run completed nothing:\n%s", lout)
	}

	// Scrape every node while the cluster is up and hold the flow invariants:
	// the mirrored metrics are loop-consistent, so they must balance exactly
	// at any instant, stragglers included.
	centralSnap, err := metrics.ScrapeHTTP(centralMetrics)
	if err != nil {
		t.Fatalf("scrape central: %v", err)
	}
	if got, want := centralSnap["central_ship_arrived_total"],
		centralSnap["central_commits_total"]+centralSnap["central_in_system"]; got != want {
		t.Errorf("central conservation broken: ship_arrived %v != commits %v + in_system %v",
			got, centralSnap["central_commits_total"], centralSnap["central_in_system"])
	}
	if centralSnap["central_ship_arrived_total"] == 0 {
		t.Error("central metrics saw no shipped transactions")
	}
	var genSum, doneSum float64
	for i, url := range siteMetrics {
		snap, err := metrics.ScrapeHTTP(url)
		if err != nil {
			t.Fatalf("scrape site %d: %v", i, err)
		}
		gen := snap["site_generated_total"]
		acc := snap["site_completed_local_total"] + snap["site_replies_delivered_total"] + snap["site_in_flight"]
		if gen != acc {
			t.Errorf("site %d conservation broken: generated %v != completed_local %v + replies %v + in_flight %v",
				i, gen, snap["site_completed_local_total"], snap["site_replies_delivered_total"], snap["site_in_flight"])
		}
		genSum += gen
		doneSum += acc
	}
	if genSum != doneSum {
		t.Errorf("cluster-wide conservation broken: %v generated vs %v accounted", genSum, doneSum)
	}
	if genSum == 0 {
		t.Error("site metrics saw no transactions")
	}

	// Clean shutdown: sites first (uplinks drop), central last. Each must
	// exit 0, print its counter line, and write its span file.
	for _, s := range siteProcs {
		s.terminate()
		if !strings.Contains(s.output(), "done:") {
			t.Errorf("%s printed no shutdown counters:\n%s", s.name, s.output())
		}
	}
	central.terminate()
	if !strings.Contains(central.output(), "done:") {
		t.Errorf("central printed no shutdown counters:\n%s", central.output())
	}
	if !strings.Contains(central.output(), "commits") {
		t.Errorf("central counters missing commits:\n%s", central.output())
	}

	// Merge the per-process span files and require at least one shipped
	// transaction whose span tree crosses processes (site txn + central exec).
	merged := dir + "/trace.json"
	info, err := spans.MergeToFile(merged, spanFiles...)
	if err != nil {
		t.Fatalf("merging span files: %v", err)
	}
	t.Logf("trace merge: %d files, %d events, %d processes, %d cross-process txns",
		info.Files, info.Events, info.Processes, info.CrossProcessTxns)
	if info.Processes < 2 {
		t.Errorf("merged trace covers %d processes, want >= 2", info.Processes)
	}
	if info.CrossProcessTxns == 0 {
		t.Error("no transaction's span tree crosses processes in the merged trace")
	}
}
