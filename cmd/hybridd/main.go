// Command hybridd runs one node of a live hybrid distributed–centralized
// database cluster: either the central node or one local site. The nodes
// run the same transaction lifecycle as the simulator (internal/cluster is
// the wall-clock twin of internal/hybrid) over length-prefixed TCP frames.
//
// A minimal loopback cluster:
//
//	hybridd -role central -listen 127.0.0.1:4000 &
//	hybridd -role site -id 0 -central 127.0.0.1:4000 -listen 127.0.0.1:4100 &
//	hybridd -role site -id 1 -central 127.0.0.1:4000 -listen 127.0.0.1:4101 &
//	hybridload -addrs 127.0.0.1:4100,127.0.0.1:4101 -sites 2 -duration 5
//
// All nodes of a cluster must be started with the same configuration flags
// (-sites, -delay, service times, ...): the workload shape determines data
// partitioning and the service times drive the emulation. Each node prints
// "listening on <addr>" once ready (with -listen :0 the kernel picks the
// port) and shuts down cleanly on SIGINT/SIGTERM, printing its counters.
//
// Observability: -debug-addr serves /metrics (Prometheus text),
// /debug/vars, and /debug/pprof; -spans writes the node's span trace on
// shutdown (merge per-process files with `trace merge`); SIGQUIT dumps the
// flight recorder of recent wire events to stderr; -v / -q adjust log
// verbosity.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"hybriddb/internal/cluster"
	"hybriddb/internal/experiments"
	"hybriddb/internal/obsx/flight"
	"hybriddb/internal/obsx/logx"
	"hybriddb/internal/obsx/metrics"
	"hybriddb/internal/obsx/spans"
	"hybriddb/internal/routing"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hybridd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hybridd", flag.ContinueOnError)
	var (
		role      = fs.String("role", "", "node role: central or site")
		id        = fs.Int("id", 0, "site index in [0, sites), site role only")
		central   = fs.String("central", "", "central node address, site role only")
		listen    = fs.String("listen", "127.0.0.1:0", "listen address (port 0 picks a free port)")
		strategy  = fs.String("strategy", "threshold:0", "routing strategy, site role only: "+strings.Join(experiments.StrategyNames(), ", "))
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		spansOut  = fs.String("spans", "", "write the node's span trace (Chrome trace-event JSON) here on shutdown")
	)
	cf := cluster.RegisterConfigFlags(fs)
	applyLog := logx.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	applyLog()
	cfg, err := cf.Config()
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// startObs wires the node-independent observability surfaces once the
	// node is up.
	startObs := func(reg *metrics.Registry, fr *flight.Recorder) error {
		flight.InstallSigquit(os.Stderr, fr)
		if *debugAddr == "" {
			return nil
		}
		bound, err := metrics.StartDebugServer(*debugAddr, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "hybridd: debug listener on http://%s/metrics\n", bound)
		return nil
	}
	writeSpans := func(rec *spans.Recorder) error {
		if *spansOut == "" {
			return nil
		}
		if err := rec.WriteFile(*spansOut); err != nil {
			return fmt.Errorf("writing spans: %w", err)
		}
		fmt.Fprintf(out, "hybridd: %d span events written to %s (%d dropped)\n",
			rec.Events(), *spansOut, rec.Dropped())
		return nil
	}

	switch *role {
	case "central":
		node, err := cluster.StartCentral(cfg, *listen)
		if err != nil {
			return err
		}
		if err := startObs(node.Metrics(), node.Flight()); err != nil {
			return err
		}
		fmt.Fprintf(out, "hybridd: central listening on %s (%d sites configured)\n", node.Addr(), cfg.Sites)
		<-ctx.Done()
		st := node.Stats()
		node.Close()
		fmt.Fprintf(out, "hybridd: central done: %d shipped arrivals, %d commits, %d auth rounds, "+
			"%d NACK aborts, %d invalidation aborts, %d deadlock aborts, %d updates applied\n",
			st.ShipArrived, st.Commits, st.AuthRounds,
			st.AbortsNACK, st.AbortsInval, st.AbortsDeadlock, st.UpdatesApplied)
		return writeSpans(node.Spans())

	case "site":
		if *central == "" {
			return fmt.Errorf("site role requires -central <addr>")
		}
		maker, err := experiments.ParseStrategy(*strategy)
		if err != nil {
			return err
		}
		strat, err := maker.Make(cfg)
		if err != nil {
			return err
		}
		// Fork stateful strategies per site as the simulator does, so two
		// site processes never share decision state. The per-site seed is
		// derived from the configuration seed; it is deterministic across
		// restarts of the same site but (unlike the simulator's split RNG
		// stream) not bit-matched to a simulation run.
		if sl, ok := strat.(routing.SiteLocal); ok {
			strat = sl.ForSite(*id, cfg.Seed+uint64(*id)*0x9E3779B97F4A7C15+0x1234)
		}
		node, err := cluster.StartSite(cfg, *id, *central, *listen, strat)
		if err != nil {
			return err
		}
		if err := startObs(node.Metrics(), node.Flight()); err != nil {
			return err
		}
		fmt.Fprintf(out, "hybridd: site %d listening on %s (uplink %s, strategy %s)\n",
			*id, node.Addr(), *central, strat.Name())
		<-ctx.Done()
		st := node.Stats()
		node.Close()
		fmt.Fprintf(out, "hybridd: site %d done: %d arrivals, %d local commits, %d replies delivered, "+
			"%d/%d class A/B shipped, %d seized aborts, %d deadlock aborts, %d ship send errors\n",
			*id, st.Generated, st.CompletedLocal, st.RepliesDelivered,
			st.ShippedA, st.ShippedB, st.AbortsSeized, st.AbortsDeadlock, st.ShipSendErrors)
		return writeSpans(node.Spans())

	case "":
		return fmt.Errorf("missing -role (central or site)")
	default:
		return fmt.Errorf("unknown role %q (want central or site)", *role)
	}
}
