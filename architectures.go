package hybriddb

import (
	"hybriddb/internal/altarch"
	"hybriddb/internal/model"
	"hybriddb/internal/replicate"
	"hybriddb/internal/routing"
)

// Alternative-architecture and methodology types (see also DESIGN.md §2).
type (
	// ArchResult summarises a run of a pure (centralized or distributed)
	// architecture.
	ArchResult = altarch.Result
	// ArchComparison is one operating point of the three-architecture
	// comparison of the paper's introduction.
	ArchComparison = altarch.Comparison
	// Replication aggregates independent simulation replications with
	// confidence intervals.
	Replication = replicate.Summary
	// Estimate is a replication-aggregated scalar with a 95% interval.
	Estimate = replicate.Estimate
)

// DefaultLockTimeout is the lock-wait timeout the fully distributed
// architecture uses to break cross-site deadlocks.
const DefaultLockTimeout = altarch.DefaultLockTimeout

// RunCentralized simulates the fully centralized architecture of §1: every
// transaction is shipped to the central complex and processed there.
func RunCentralized(cfg Config) (ArchResult, error) {
	return altarch.RunCentralized(cfg)
}

// RunDistributed simulates the fully distributed architecture of §1:
// transactions run at their home site with remote function calls for
// non-local data, two-phase commits across sites, and timeout-based
// cross-site deadlock resolution.
func RunDistributed(cfg Config, lockTimeout float64) (ArchResult, error) {
	return altarch.RunDistributed(cfg, lockTimeout)
}

// CompareArchitectures runs centralized, distributed, and the hybrid (under
// its best strategy) on the shared configuration — the paper's motivating
// comparison.
func CompareArchitectures(cfg Config, lockTimeout float64) (ArchComparison, error) {
	return altarch.CompareArchitectures(cfg, lockTimeout)
}

// LocalitySweep runs CompareArchitectures across class A fractions,
// exposing the [DIAS87] crossover between the pure architectures.
func LocalitySweep(cfg Config, pLocals []float64, lockTimeout float64) ([]ArchComparison, error) {
	return altarch.LocalitySweep(cfg, pLocals, lockTimeout)
}

// AdaptiveStatic returns the semi-static strategy: probabilistic shipping
// like Static, with the probability re-optimized from measured arrival
// rates every window seconds.
func AdaptiveStatic(cfg Config, window float64, seed uint64) (Strategy, error) {
	return routing.NewAdaptiveStatic(cfg.ModelParams(), cfg.PLocal, window, seed)
}

// Replicate runs n independent replications of cfg under the strategy built
// by mk for each run, aggregating the headline metrics with 95% confidence
// intervals.
func Replicate(cfg Config, mk func(Config) (Strategy, error), n int) (Replication, error) {
	return replicate.Run(cfg, mk, n)
}

// ReplicateCompare replicates two strategies and reports whether the first
// is significantly faster (non-overlapping 95% intervals on mean response
// time).
func ReplicateCompare(cfg Config, a, b func(Config) (Strategy, error), n int) (bool, Replication, Replication, error) {
	return replicate.Compare(cfg, a, b, n)
}

// ModelParams exposes the analytical model's parameter block derived from a
// configuration, for callers composing their own routing strategies.
func ModelParams(cfg Config) model.Params { return cfg.ModelParams() }
