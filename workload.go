package hybriddb

import "hybriddb/internal/workload"

// Workload-shaping types (see Config.RateSchedules).
type (
	// RateStep is one segment of a cyclic arrival-rate schedule.
	RateStep = workload.RateStep
	// RateSchedule is a cyclic piecewise-constant arrival-rate function —
	// the "load fluctuations" the paper's introduction motivates.
	RateSchedule = workload.Schedule
)

// ConstantRate returns a schedule holding one fixed rate.
func ConstantRate(rate float64) RateSchedule { return workload.Constant(rate) }
