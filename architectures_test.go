package hybriddb_test

import (
	"testing"

	"hybriddb"
)

func TestPublicArchitectures(t *testing.T) {
	cfg := smallConfig()
	cfg.ArrivalRatePerSite = 0.5

	cent, err := hybriddb.RunCentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cent.Architecture != "centralized" || cent.Completed == 0 {
		t.Fatalf("centralized result: %+v", cent)
	}

	dist, err := hybriddb.RunDistributed(cfg, hybriddb.DefaultLockTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Architecture != "distributed" || dist.Completed == 0 {
		t.Fatalf("distributed result: %+v", dist)
	}
}

func TestPublicCompareArchitectures(t *testing.T) {
	cfg := smallConfig()
	cfg.ArrivalRatePerSite = 0.5
	cmp, err := hybriddb.CompareArchitectures(cfg, hybriddb.DefaultLockTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Centralized.MeanRT <= 0 || cmp.Distributed.MeanRT <= 0 || cmp.Hybrid.MeanRT <= 0 {
		t.Fatalf("missing results: %+v", cmp)
	}
}

func TestPublicLocalitySweep(t *testing.T) {
	cfg := smallConfig()
	cfg.Warmup, cfg.Duration = 15, 50
	cfg.ArrivalRatePerSite = 0.4
	points, err := hybriddb.LocalitySweep(cfg, []float64{0.6, 1.0}, hybriddb.DefaultLockTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[1].Distributed.RemoteCallsPerTxn != 0 {
		t.Errorf("full locality has %v remote calls", points[1].Distributed.RemoteCallsPerTxn)
	}
}

func TestPublicAdaptiveStatic(t *testing.T) {
	cfg := smallConfig()
	s, err := hybriddb.AdaptiveStatic(cfg, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "adaptive-static" {
		t.Errorf("name = %q", s.Name())
	}
	res, err := hybriddb.Run(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
}

func TestPublicReplicate(t *testing.T) {
	cfg := smallConfig()
	cfg.Warmup, cfg.Duration = 15, 40
	sum, err := hybriddb.Replicate(cfg, func(c hybriddb.Config) (hybriddb.Strategy, error) {
		return hybriddb.QueueLengthHeuristic(), nil
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Replications != 3 || sum.MeanRT.Mean <= 0 {
		t.Fatalf("summary: %+v", sum)
	}
}

func TestPublicReplicateCompare(t *testing.T) {
	cfg := smallConfig()
	cfg.Warmup, cfg.Duration = 15, 40
	cfg.ArrivalRatePerSite = 3.2
	better, _, _, err := hybriddb.ReplicateCompare(cfg,
		func(c hybriddb.Config) (hybriddb.Strategy, error) { return hybriddb.Best(c), nil },
		func(c hybriddb.Config) (hybriddb.Strategy, error) { return hybriddb.None(), nil },
		3)
	if err != nil {
		t.Fatal(err)
	}
	if !better {
		t.Error("best dynamic not significantly better than none at 32 tps")
	}
}

func TestPublicModelParams(t *testing.T) {
	p := hybriddb.ModelParams(smallConfig())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
