module hybriddb

go 1.22
