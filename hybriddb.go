// Package hybriddb reproduces "Load Sharing in Hybrid Distributed–
// Centralized Database Systems" (Ciciani, Dias, Yu; ICDCS 1988): a
// discrete-event simulator of the hybrid architecture — geographically
// distributed database systems attached to a central computing complex that
// replicates every local database — together with the paper's
// concurrency/coherency protocol, its analytical performance model, and all
// of its static and dynamic load-sharing strategies.
//
// The central question the library answers is where to run a "class A"
// transaction (one touching only its home region's data): at its home site,
// or shipped to the faster but remote central site. The decision trades CPU
// speed asymmetry and queueing against communications delay and, uniquely to
// this system, against cross-site data contention: local and central
// transactions touching the same replicated data conflict optimistically and
// resolve by aborting one side.
//
// Basic use:
//
//	cfg := hybriddb.DefaultConfig()       // the paper's §4.1 parameters
//	cfg.ArrivalRatePerSite = 2.5          // 25 tps across 10 sites
//	res, err := hybriddb.Run(cfg, hybriddb.Best(cfg))
//
// Strategies are constructed by the helpers below (None, StaticOptimal,
// MeasuredRT, QueueLengthHeuristic, QueueThreshold, MinIncoming*,
// MinAverage*); Best returns the strategy the paper found strongest,
// min-average/nis. Analyze and OptimalShipFraction expose the §3.1
// analytical model directly.
package hybriddb

import (
	"hybriddb/internal/hybrid"
	"hybriddb/internal/model"
	"hybriddb/internal/routing"
)

// Core simulation types. These are aliases of the internal engine types so
// the whole configuration and result surface is available unchanged.
type (
	// Config holds every simulation parameter; see DefaultConfig.
	Config = hybrid.Config
	// Result is the measured outcome of one simulation run.
	Result = hybrid.Result
	// Feedback selects how local sites learn the central site's state.
	Feedback = hybrid.Feedback
	// Engine is a configured simulation, created by NewEngine.
	Engine = hybrid.Engine
	// Strategy routes incoming class A transactions.
	Strategy = routing.Strategy
	// RoutingState is the information a Strategy sees per decision.
	RoutingState = routing.State
	// Decision is a strategy's routing outcome.
	Decision = routing.Decision
	// ModelResult is the analytical model's steady-state solution.
	ModelResult = model.Result
)

// Feedback modes (see the Feedback type).
const (
	// FeedbackAuthOnly updates a site's view of the central state only on
	// authentication messages — the paper's assumption.
	FeedbackAuthOnly = hybrid.FeedbackAuthOnly
	// FeedbackAllMessages piggybacks central state on every message.
	FeedbackAllMessages = hybrid.FeedbackAllMessages
	// FeedbackIdeal gives strategies instantaneous central state.
	FeedbackIdeal = hybrid.FeedbackIdeal
)

// Routing decisions (see the Decision type).
const (
	// RunLocal keeps the transaction at its home site.
	RunLocal = routing.RunLocal
	// Ship sends the transaction to the central site.
	Ship = routing.Ship
)

// DefaultConfig returns the paper's §4.1 parameters: 10 local sites of
// 1 MIPS, a 15 MIPS central site, 0.2 s one-way communications delay, 75%
// class A transactions, 10 database calls per transaction over a 32K-element
// lockspace, and the pathlengths of §3.1.
func DefaultConfig() Config { return hybrid.DefaultConfig() }

// NewEngine builds a simulation for the configuration and strategy.
func NewEngine(cfg Config, s Strategy) (*Engine, error) { return hybrid.New(cfg, s) }

// Run builds and runs a simulation, returning the measured result.
func Run(cfg Config, s Strategy) (Result, error) {
	e, err := hybrid.New(cfg, s)
	if err != nil {
		return Result{}, err
	}
	return e.Run(), nil
}

// ---- Strategy constructors.

// None returns the no-load-sharing baseline: class A transactions always run
// at their home site.
func None() Strategy { return routing.AlwaysLocal{} }

// Static returns the static probabilistic policy shipping each class A
// transaction with probability p. It panics if p is outside [0, 1].
func Static(p float64, seed uint64) Strategy { return routing.NewStatic(p, seed) }

// StaticOptimal computes the analytically optimal ship probability for the
// configuration (§3.1) and returns the corresponding static strategy along
// with the probability chosen.
func StaticOptimal(cfg Config) (Strategy, float64, error) {
	opt, err := model.OptimalShipFraction(cfg.ModelInput(0), 0.01)
	if err != nil {
		return nil, 0, err
	}
	return routing.NewStatic(opt.PShip, cfg.Seed^0x5bd1e995), opt.PShip, nil
}

// MeasuredRT returns the §3.2.3 heuristic: ship when the last shipped
// transaction's measured response time beat the last local one's.
func MeasuredRT() Strategy { return routing.MeasuredRT{} }

// QueueLengthHeuristic returns the §3.2.4 heuristic: ship when the central
// CPU queue (as last seen) is shorter than the local one.
func QueueLengthHeuristic() Strategy { return routing.QueueLength{} }

// QueueThreshold returns the tuned heuristic of Figures 4.4/4.7: ship when
// the local utilization estimate exceeds the central one by more than theta
// (theta may be negative).
func QueueThreshold(theta float64) Strategy { return routing.QueueThreshold{Theta: theta} }

// MinIncomingByQueue minimizes the incoming transaction's estimated response
// time with utilizations from CPU queue lengths (§3.2.1a, curve C).
func MinIncomingByQueue(cfg Config) Strategy {
	return routing.MinIncoming{Params: cfg.ModelParams(), Estimator: routing.FromQueueLength}
}

// MinIncomingByCount minimizes the incoming transaction's estimated response
// time with utilizations from transactions-in-system counts (§3.2.1b,
// curve D).
func MinIncomingByCount(cfg Config) Strategy {
	return routing.MinIncoming{Params: cfg.ModelParams(), Estimator: routing.FromInSystem}
}

// MinAverageByQueue minimizes the estimated average response time of all
// running transactions, queue-length variant (§3.2.2, curve E).
func MinAverageByQueue(cfg Config) Strategy {
	return routing.MinAverage{Params: cfg.ModelParams(), Estimator: routing.FromQueueLength}
}

// MinAverageByCount minimizes the estimated average response time of all
// running transactions, transactions-in-system variant (§3.2.2, curve F) —
// the paper's best strategy.
func MinAverageByCount(cfg Config) Strategy {
	return routing.MinAverage{Params: cfg.ModelParams(), Estimator: routing.FromInSystem}
}

// Best returns the strategy the paper found best overall: MinAverageByCount.
func Best(cfg Config) Strategy { return MinAverageByCount(cfg) }

// ---- Analytical model.

// Analyze solves the §3.1 steady-state model for the configuration and a
// given static ship probability.
func Analyze(cfg Config, pShip float64) (ModelResult, error) {
	return model.Solve(cfg.ModelInput(pShip))
}

// OptimalShipFraction returns the ship probability minimizing the modeled
// average response time, with the model solution at that point.
func OptimalShipFraction(cfg Config) (float64, ModelResult, error) {
	opt, err := model.OptimalShipFraction(cfg.ModelInput(0), 0.01)
	if err != nil {
		return 0, ModelResult{}, err
	}
	return opt.PShip, opt.Result, nil
}
