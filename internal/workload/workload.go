// Package workload generates the transaction load of §4.1: Poisson arrivals
// at every local site, a class A/class B mix, and per-transaction lock
// reference strings. Class A transactions reference only their home site's
// database partition; class B transactions reference the whole lockspace
// uniformly (they "usually require non-local data", §2).
package workload

import (
	"fmt"

	"hybriddb/internal/lock"
	"hybriddb/internal/rng"
)

// Class distinguishes the two transaction classes of the paper.
type Class uint8

// Transaction classes.
const (
	// ClassA transactions reference only local data and may run either at
	// the home site or at the central site.
	ClassA Class = iota + 1
	// ClassB transactions reference non-local data and always run at the
	// central site.
	ClassB
)

// String returns "A" or "B".
func (c Class) String() string {
	switch c {
	case ClassA:
		return "A"
	case ClassB:
		return "B"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Txn is one generated transaction: its class, origin, and the ordered lock
// reference string its database calls will issue.
type Txn struct {
	ID       int64
	Class    Class
	HomeSite int
	// Elements lists the lockspace elements referenced, one per database
	// call, in request order. They are distinct within a transaction.
	Elements []uint32
	// Modes holds the requested lock mode for each element.
	Modes []lock.Mode
}

// Config parameterises the generator.
type Config struct {
	Sites       int     // number of local sites (N)
	Lockspace   uint32  // total lock elements, partitioned equally by site
	CallsPerTxn int     // database calls (= locks) per transaction, N_l
	PLocal      float64 // probability a transaction is class A
	PWrite      float64 // probability a lock request is exclusive
	// SkewTheta is the Zipf exponent of the lock-reference distribution,
	// in [0, 1). Zero — the default, and the paper's assumption — keeps
	// references uniform. A positive theta draws hot-spot references with
	// per-site affinity: class A ranks map onto the home partition hottest
	// first, and class B ranks rotate by the home site's partition base, so
	// each site's hottest non-local references land in its own partition
	// (a site is the natural cache of its own hot fragment). See zipf.go
	// and DESIGN.md §16.
	SkewTheta float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Sites <= 0:
		return fmt.Errorf("workload: sites = %d, need > 0", c.Sites)
	case c.Lockspace == 0:
		return fmt.Errorf("workload: lockspace is zero")
	case uint32(c.Sites) > c.Lockspace:
		return fmt.Errorf("workload: more sites (%d) than lock elements (%d)", c.Sites, c.Lockspace)
	case c.CallsPerTxn <= 0:
		return fmt.Errorf("workload: calls per txn = %d, need > 0", c.CallsPerTxn)
	case uint32(c.CallsPerTxn) > c.Lockspace/uint32(c.Sites):
		return fmt.Errorf("workload: %d calls exceed partition size %d", c.CallsPerTxn, c.Lockspace/uint32(c.Sites))
	case c.PLocal < 0 || c.PLocal > 1:
		return fmt.Errorf("workload: PLocal = %v out of [0,1]", c.PLocal)
	case c.PWrite < 0 || c.PWrite > 1:
		return fmt.Errorf("workload: PWrite = %v out of [0,1]", c.PWrite)
	// Negated-range form so NaN (which compares false against everything)
	// is rejected rather than slipping through — the FuzzConfig lesson.
	case !(c.SkewTheta >= 0 && c.SkewTheta < 1):
		return fmt.Errorf("workload: SkewTheta = %v out of [0,1)", c.SkewTheta)
	}
	return nil
}

// PartitionSize returns the number of elements in each site's partition.
func (c Config) PartitionSize() uint32 { return c.Lockspace / uint32(c.Sites) }

// Generator produces transactions deterministically from a seed. Every site
// draws from its own class/element/mode streams and numbers its transactions
// in its own ID block, so the content of site i's k-th transaction is a pure
// function of (seed, i, k) — independent of how arrivals at different sites
// interleave in time. The sharded engine depends on this: each shard calls
// Next for its own sites concurrently, and the sequential oracle must
// generate the identical transactions in whatever global order its single
// event loop visits the sites.
type Generator struct {
	cfg   Config
	sites []siteStream
	// Zipf rank samplers, shared by every site (they hold only precomputed
	// constants, no stream state); nil when SkewTheta == 0. zipfA ranks over
	// one partition, zipfB over the whole lockspace.
	zipfA *zipfGen
	zipfB *zipfGen
}

// siteStream is one site's private generator state.
type siteStream struct {
	nextID int64
	class  *rng.Source
	elems  *rng.Source
	modes  *rng.Source
	sample []int // scratch for the element draws
	perm   []int // scratch for the sampler's shuffle path
}

// NewGenerator returns a generator for the given configuration. It panics if
// the configuration is invalid (construct-time programming error).
func NewGenerator(cfg Config, seed uint64) *Generator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	root := rng.New(seed)
	g := &Generator{cfg: cfg, sites: make([]siteStream, cfg.Sites)}
	for i := range g.sites {
		g.sites[i] = siteStream{
			class: root.Split(),
			elems: root.Split(),
			modes: root.Split(),
		}
	}
	if cfg.SkewTheta > 0 {
		// Pure precomputation — consumes no randomness, so seed derivation
		// is identical with and without skew.
		g.zipfA = newZipfGen(int(cfg.PartitionSize()), cfg.SkewTheta)
		g.zipfB = newZipfGen(int(cfg.Lockspace), cfg.SkewTheta)
	}
	return g
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Next generates the next transaction originating at the given site.
// Concurrent calls for distinct sites are safe (disjoint state); concurrent
// calls for one site are not.
func (g *Generator) Next(site int) *Txn { return g.NextInto(site, nil) }

// NextInto is Next with spec recycling: when t is non-nil its slices are
// reused in place, so a steady-state caller that pools completed specs
// generates without allocating. The variate streams are consumed identically
// either way — a pooled run and an allocating run produce the same
// transactions.
func (g *Generator) NextInto(site int, t *Txn) *Txn {
	if site < 0 || site >= g.cfg.Sites {
		panic(fmt.Sprintf("workload: site %d out of range [0,%d)", site, g.cfg.Sites))
	}
	st := &g.sites[site]
	st.nextID++
	if t == nil {
		t = &Txn{}
	}
	// Per-site ID blocks: site in the high bits, per-site counter in the low
	// 32. IDs stay positive and unique for < 2^32 transactions per site.
	t.ID = int64(site)<<32 | st.nextID
	t.HomeSite = site
	t.Class = ClassB
	if st.class.Bool(g.cfg.PLocal) {
		t.Class = ClassA
	}

	part := g.cfg.PartitionSize()
	n := g.cfg.CallsPerTxn
	if cap(t.Elements) < n {
		t.Elements = make([]uint32, n)
	} else {
		t.Elements = t.Elements[:n]
	}
	if cap(t.Modes) < n {
		t.Modes = make([]lock.Mode, n)
	} else {
		t.Modes = t.Modes[:n]
	}
	if cap(st.sample) < n {
		st.sample = make([]int, n)
	} else {
		st.sample = st.sample[:n]
	}

	switch {
	case g.zipfA != nil && t.Class == ClassA:
		// Zipfian, distinct references within the home partition: rank r
		// maps to the r-th element of the partition, so every site's hot
		// spot is the head of its own partition.
		base := uint32(site) * part
		st.sampleZipfRanksInto(g.zipfA, n)
		for i, r := range st.sample {
			t.Elements[i] = base + uint32(r)
		}
	case g.zipfB != nil:
		// Zipfian, distinct references over the whole lockspace, rotated by
		// the home partition's base: rank r maps to (site*part + r) mod L,
		// so each site's hottest non-local references land in its own
		// partition (per-site key affinity) while the tail spans every
		// other partition.
		base := uint64(uint32(site) * part)
		st.sampleZipfRanksInto(g.zipfB, n)
		for i, r := range st.sample {
			// 64-bit sum: base + r can exceed uint32 before the wrap.
			t.Elements[i] = uint32((base + uint64(r)) % uint64(g.cfg.Lockspace))
		}
	case t.Class == ClassA:
		// Uniform, distinct references within the home partition.
		base := uint32(site) * part
		st.elems.SampleWithoutReplacementInto(int(part), st.sample, &st.perm)
		for i, off := range st.sample {
			t.Elements[i] = base + uint32(off)
		}
	default:
		// Uniform, distinct references over the entire lockspace.
		st.elems.SampleWithoutReplacementInto(int(g.cfg.Lockspace), st.sample, &st.perm)
		for i, off := range st.sample {
			t.Elements[i] = uint32(off)
		}
	}
	for i := range t.Modes {
		if st.modes.Bool(g.cfg.PWrite) {
			t.Modes[i] = lock.Exclusive
		} else {
			t.Modes[i] = lock.Share
		}
	}
	return t
}

// PartitionOf returns the home site of a lockspace element.
func (c Config) PartitionOf(elem uint32) int {
	site := int(elem / c.PartitionSize())
	if site >= c.Sites { // remainder elements of an uneven split
		site = c.Sites - 1
	}
	return site
}

// Updates returns the elements the transaction locks exclusively — the set
// whose new values must be propagated through the coherence protocol.
func (t *Txn) Updates() []uint32 { return t.AppendUpdates(nil) }

// AppendUpdates appends the transaction's exclusively locked elements to dst
// and returns it, allocating only when dst lacks capacity.
func (t *Txn) AppendUpdates(dst []uint32) []uint32 {
	for i, m := range t.Modes {
		if m == lock.Exclusive {
			dst = append(dst, t.Elements[i])
		}
	}
	return dst
}

// SitesTouched returns the distinct master sites of the transaction's
// elements — the sites involved in a central commit's authentication phase.
func (t *Txn) SitesTouched(cfg Config) []int {
	return t.AppendSitesTouched(cfg, nil)
}

// AppendSitesTouched appends the distinct master sites of the transaction's
// elements to dst (which must come in empty) in first-touch order. The
// distinctness scan is linear over dst — a transaction touches at most
// CallsPerTxn sites, and typically one or two.
func (t *Txn) AppendSitesTouched(cfg Config, dst []int) []int {
	for _, e := range t.Elements {
		s := cfg.PartitionOf(e)
		dup := false
		for _, prev := range dst {
			if prev == s {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, s)
		}
	}
	return dst
}

// Arrivals draws successive exponential interarrival times with the given
// per-site rate. It is kept separate from transaction content so arrival
// pattern and reference strings come from independent streams.
type Arrivals struct {
	rate float64
	src  *rng.Source
}

// NewArrivals returns a Poisson arrival process of the given rate
// (transactions per second). Rate must be positive.
func NewArrivals(rate float64, seed uint64) *Arrivals {
	if rate <= 0 {
		panic(fmt.Sprintf("workload: non-positive arrival rate %v", rate))
	}
	return &Arrivals{rate: rate, src: rng.New(seed)}
}

// Next returns the time until the next arrival.
func (a *Arrivals) Next() float64 { return a.src.Exp(1 / a.rate) }

// Rate returns the arrival rate.
func (a *Arrivals) Rate() float64 { return a.rate }
