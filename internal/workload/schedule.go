package workload

import (
	"fmt"

	"hybriddb/internal/rng"
)

// The paper's introduction motivates the hybrid architecture with "regional
// locality and load fluctuations". A Schedule describes fluctuating load: a
// cyclic piecewise-constant arrival rate, such as a diurnal pattern where a
// region peaks during its business hours. NHPPArrivals samples a
// non-homogeneous Poisson process with that rate function by thinning.

// RateStep is one segment of a rate schedule.
type RateStep struct {
	Duration float64 // seconds the segment lasts
	Rate     float64 // arrivals per second during the segment
}

// Schedule is a cyclic sequence of rate segments: after the last segment the
// schedule wraps to the first.
type Schedule []RateStep

// Validate reports whether the schedule is usable.
func (s Schedule) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("workload: empty rate schedule")
	}
	for i, step := range s {
		if step.Duration <= 0 {
			return fmt.Errorf("workload: schedule step %d duration %v", i, step.Duration)
		}
		if step.Rate < 0 {
			return fmt.Errorf("workload: schedule step %d rate %v", i, step.Rate)
		}
	}
	if s.MaxRate() <= 0 {
		return fmt.Errorf("workload: schedule has zero rate everywhere")
	}
	return nil
}

// Period returns the cycle length.
func (s Schedule) Period() float64 {
	var total float64
	for _, step := range s {
		total += step.Duration
	}
	return total
}

// MaxRate returns the largest segment rate (the thinning envelope).
func (s Schedule) MaxRate() float64 {
	var m float64
	for _, step := range s {
		if step.Rate > m {
			m = step.Rate
		}
	}
	return m
}

// MeanRate returns the time-averaged rate over one cycle.
func (s Schedule) MeanRate() float64 {
	p := s.Period()
	if p == 0 {
		return 0
	}
	var area float64
	for _, step := range s {
		area += step.Rate * step.Duration
	}
	return area / p
}

// RateAt returns the rate in effect at absolute time t (cyclic).
func (s Schedule) RateAt(t float64) float64 {
	p := s.Period()
	if p <= 0 {
		return 0
	}
	phase := t - float64(int(t/p))*p
	if phase < 0 {
		phase += p
	}
	for _, step := range s {
		if phase < step.Duration {
			return step.Rate
		}
		phase -= step.Duration
	}
	return s[len(s)-1].Rate
}

// Constant returns a single-step schedule of the given rate (period 1 s).
func Constant(rate float64) Schedule {
	return Schedule{{Duration: 1, Rate: rate}}
}

// NHPPArrivals samples a non-homogeneous Poisson process whose intensity
// follows a Schedule, by Lewis–Shedler thinning: candidate arrivals are
// drawn at the envelope rate and accepted with probability rate(t)/maxRate.
type NHPPArrivals struct {
	schedule Schedule
	maxRate  float64
	src      *rng.Source
}

// NewNHPPArrivals returns an arrival process for the schedule. It panics on
// an invalid schedule (construction-time programming error).
func NewNHPPArrivals(s Schedule, seed uint64) *NHPPArrivals {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return &NHPPArrivals{schedule: s, maxRate: s.MaxRate(), src: rng.New(seed)}
}

// Next returns the time from now until the next arrival.
func (a *NHPPArrivals) Next(now float64) float64 {
	t := now
	for {
		t += a.src.Exp(1 / a.maxRate)
		if a.src.Float64() < a.schedule.RateAt(t)/a.maxRate {
			return t - now
		}
	}
}

// Shift returns the schedule rotated by offset seconds: the returned
// schedule's rate at time t equals the receiver's rate at time t+offset.
// Staggering copies of one regional "day" across sites models time zones.
func (s Schedule) Shift(offset float64) Schedule {
	period := s.Period()
	if period <= 0 || len(s) == 0 {
		return s
	}
	offset -= float64(int(offset/period)) * period
	if offset < 0 {
		offset += period
	}
	if offset == 0 {
		out := make(Schedule, len(s))
		copy(out, s)
		return out
	}
	// Find the segment containing the offset and rebuild from there.
	rest := offset
	idx := 0
	for rest >= s[idx].Duration {
		rest -= s[idx].Duration
		idx++
	}
	out := make(Schedule, 0, len(s)+1)
	out = append(out, RateStep{Duration: s[idx].Duration - rest, Rate: s[idx].Rate})
	out = append(out, s[idx+1:]...)
	out = append(out, s[:idx]...)
	if rest > 0 {
		out = append(out, RateStep{Duration: rest, Rate: s[idx].Rate})
	}
	return out
}
