package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"hybriddb/internal/lock"
)

// The paper's parameters come from a trace-driven study ([YU87]); this file
// provides the equivalent machinery for this library: a transaction stream
// can be recorded to a portable JSON-lines file and replayed later, so a
// workload — synthetic or captured — can be rerun bit-identically across
// machines, strategies, and code versions.

// Record is the serialized form of one generated transaction, paired with
// its interarrival gap so the full timing of the stream is preserved.
type Record struct {
	ID       int64    `json:"id"`
	Class    uint8    `json:"class"`
	HomeSite int      `json:"homeSite"`
	GapSecs  float64  `json:"gapSecs"` // interarrival gap at the home site
	Elements []uint32 `json:"elements"`
	Writes   []bool   `json:"writes"` // true = exclusive mode
}

// toRecord converts a transaction and its gap into the wire form.
func toRecord(t *Txn, gap float64) Record {
	r := Record{
		ID:       t.ID,
		Class:    uint8(t.Class),
		HomeSite: t.HomeSite,
		GapSecs:  gap,
		Elements: append([]uint32(nil), t.Elements...),
		Writes:   make([]bool, len(t.Modes)),
	}
	for i, m := range t.Modes {
		r.Writes[i] = m == lock.Exclusive
	}
	return r
}

// toTxn converts a wire record back to a transaction.
func (r Record) toTxn() (*Txn, error) {
	if len(r.Elements) != len(r.Writes) {
		return nil, fmt.Errorf("workload: record %d has %d elements but %d modes",
			r.ID, len(r.Elements), len(r.Writes))
	}
	cls := Class(r.Class)
	if cls != ClassA && cls != ClassB {
		return nil, fmt.Errorf("workload: record %d has invalid class %d", r.ID, r.Class)
	}
	t := &Txn{
		ID:       r.ID,
		Class:    cls,
		HomeSite: r.HomeSite,
		Elements: append([]uint32(nil), r.Elements...),
		Modes:    make([]lock.Mode, len(r.Writes)),
	}
	for i, w := range r.Writes {
		if w {
			t.Modes[i] = lock.Exclusive
		} else {
			t.Modes[i] = lock.Share
		}
	}
	return t, nil
}

// Recorder writes a transaction stream as JSON lines.
type Recorder struct {
	w   *bufio.Writer
	enc *json.Encoder
	n   uint64
}

// NewRecorder returns a recorder writing to w.
func NewRecorder(w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	return &Recorder{w: bw, enc: json.NewEncoder(bw)}
}

// Record appends one transaction and its interarrival gap.
func (r *Recorder) Record(t *Txn, gap float64) error {
	if t == nil {
		return fmt.Errorf("workload: nil transaction")
	}
	if gap < 0 {
		return fmt.Errorf("workload: negative gap %v", gap)
	}
	r.n++
	return r.enc.Encode(toRecord(t, gap))
}

// Count returns the number of transactions recorded.
func (r *Recorder) Count() uint64 { return r.n }

// Flush writes buffered records through to the underlying writer.
func (r *Recorder) Flush() error { return r.w.Flush() }

// Capture generates and records n transactions per the generator and arrival
// processes (one process per site), producing a self-contained trace file.
func Capture(w io.Writer, cfg Config, seed uint64, ratePerSite float64, n int) error {
	if n <= 0 {
		return fmt.Errorf("workload: capture of %d transactions", n)
	}
	gen := NewGenerator(cfg, seed)
	arrivals := make([]*Arrivals, cfg.Sites)
	for i := range arrivals {
		arrivals[i] = NewArrivals(ratePerSite, seed+uint64(i)+1)
	}
	rec := NewRecorder(w)
	for i := 0; i < n; i++ {
		site := i % cfg.Sites
		t := gen.Next(site)
		if err := rec.Record(t, arrivals[site].Next()); err != nil {
			return err
		}
	}
	return rec.Flush()
}

// Replayer reads a recorded transaction stream.
type Replayer struct {
	dec  *json.Decoder
	next *Txn
	gap  float64
	err  error
}

// NewReplayer returns a replayer reading JSON-line records from r.
func NewReplayer(r io.Reader) *Replayer {
	rp := &Replayer{dec: json.NewDecoder(bufio.NewReader(r))}
	rp.advance()
	return rp
}

func (rp *Replayer) advance() {
	var rec Record
	if err := rp.dec.Decode(&rec); err != nil {
		rp.next = nil
		if err != io.EOF {
			rp.err = err
		}
		return
	}
	t, err := rec.toTxn()
	if err != nil {
		rp.next, rp.err = nil, err
		return
	}
	rp.next, rp.gap = t, rec.GapSecs
}

// More reports whether another transaction is available.
func (rp *Replayer) More() bool { return rp.next != nil }

// Next returns the next transaction and its interarrival gap. It panics if
// called with More() false.
func (rp *Replayer) Next() (*Txn, float64) {
	if rp.next == nil {
		panic("workload: Next past end of trace")
	}
	t, gap := rp.next, rp.gap
	rp.advance()
	return t, gap
}

// Err returns the first decode error encountered, if any (EOF is not an
// error).
func (rp *Replayer) Err() error { return rp.err }

// ReadAll replays an entire trace into memory.
func ReadAll(r io.Reader) ([]*Txn, []float64, error) {
	rp := NewReplayer(r)
	var txns []*Txn
	var gaps []float64
	for rp.More() {
		t, gap := rp.Next()
		txns = append(txns, t)
		gaps = append(gaps, gap)
	}
	return txns, gaps, rp.Err()
}
