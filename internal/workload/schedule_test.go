package workload

import (
	"math"
	"testing"
)

func diurnal() Schedule {
	return Schedule{
		{Duration: 100, Rate: 0.5},
		{Duration: 100, Rate: 3.0},
		{Duration: 100, Rate: 1.0},
	}
}

func TestScheduleValidate(t *testing.T) {
	if err := diurnal().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schedule{
		nil,
		{},
		{{Duration: 0, Rate: 1}},
		{{Duration: 10, Rate: -1}},
		{{Duration: 10, Rate: 0}}, // zero everywhere
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
	// Zero-rate segments are fine as long as some segment is positive.
	mixed := Schedule{{Duration: 10, Rate: 0}, {Duration: 10, Rate: 2}}
	if err := mixed.Validate(); err != nil {
		t.Errorf("mixed schedule rejected: %v", err)
	}
}

func TestScheduleAggregates(t *testing.T) {
	s := diurnal()
	if got := s.Period(); got != 300 {
		t.Errorf("period = %v", got)
	}
	if got := s.MaxRate(); got != 3.0 {
		t.Errorf("max rate = %v", got)
	}
	if got := s.MeanRate(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("mean rate = %v, want 1.5", got)
	}
}

func TestScheduleRateAtCyclic(t *testing.T) {
	s := diurnal()
	tests := []struct {
		t    float64
		want float64
	}{
		{0, 0.5}, {99, 0.5}, {100, 3.0}, {199, 3.0}, {200, 1.0},
		{299, 1.0}, {300, 0.5}, {450, 3.0}, {800, 1.0},
	}
	for _, tt := range tests {
		if got := s.RateAt(tt.t); got != tt.want {
			t.Errorf("RateAt(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestConstantSchedule(t *testing.T) {
	s := Constant(2.5)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, at := range []float64{0, 0.5, 10, 1234.5} {
		if got := s.RateAt(at); got != 2.5 {
			t.Errorf("RateAt(%v) = %v", at, got)
		}
	}
}

func TestNHPPArrivalsMatchesRateSegments(t *testing.T) {
	s := diurnal()
	arr := NewNHPPArrivals(s, 7)
	counts := make([]int, 3) // arrivals per segment across cycles
	now := 0.0
	const horizon = 60_000.0
	for now < horizon {
		now += arr.Next(now)
		if now >= horizon {
			break
		}
		phase := math.Mod(now, 300)
		counts[int(phase/100)]++
	}
	cycles := horizon / 300
	// Expected arrivals per segment per cycle: rate * 100.
	for i, want := range []float64{50, 300, 100} {
		got := float64(counts[i]) / cycles
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("segment %d: %.1f arrivals/cycle, want ~%.0f", i, got, want)
		}
	}
}

func TestNHPPArrivalsDeterministic(t *testing.T) {
	a := NewNHPPArrivals(diurnal(), 9)
	b := NewNHPPArrivals(diurnal(), 9)
	now := 0.0
	for i := 0; i < 100; i++ {
		ga, gb := a.Next(now), b.Next(now)
		if ga != gb {
			t.Fatalf("draw %d differs: %v vs %v", i, ga, gb)
		}
		now += ga
	}
}

func TestNHPPInvalidSchedulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid schedule did not panic")
		}
	}()
	NewNHPPArrivals(Schedule{}, 1)
}

func TestScheduleShift(t *testing.T) {
	s := diurnal() // 100@0.5, 100@3.0, 100@1.0
	shifted := s.Shift(150)
	if err := shifted.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := shifted.Period(); math.Abs(got-300) > 1e-9 {
		t.Fatalf("shifted period = %v", got)
	}
	// shifted.RateAt(t) must equal s.RateAt(t+150).
	for _, at := range []float64{0, 25, 49.9, 50, 120, 149.9, 150, 250, 299, 500} {
		if got, want := shifted.RateAt(at), s.RateAt(at+150); got != want {
			t.Errorf("shifted.RateAt(%v) = %v, want %v", at, got, want)
		}
	}
}

func TestScheduleShiftZeroAndFullPeriod(t *testing.T) {
	s := diurnal()
	for _, off := range []float64{0, 300, 600} {
		shifted := s.Shift(off)
		for _, at := range []float64{0, 99, 100, 250} {
			if got, want := shifted.RateAt(at), s.RateAt(at); got != want {
				t.Errorf("Shift(%v).RateAt(%v) = %v, want %v", off, at, got, want)
			}
		}
	}
}

func TestScheduleShiftDoesNotAliasReceiver(t *testing.T) {
	s := diurnal()
	shifted := s.Shift(0)
	shifted[0].Rate = 99
	if s[0].Rate == 99 {
		t.Fatal("Shift(0) aliased the receiver")
	}
}

func TestScheduleShiftMeanRatePreserved(t *testing.T) {
	s := diurnal()
	for _, off := range []float64{10, 150, 299.5} {
		if got := s.Shift(off).MeanRate(); math.Abs(got-s.MeanRate()) > 1e-9 {
			t.Errorf("Shift(%v) changed mean rate: %v", off, got)
		}
	}
}
