package workload

// Zipfian/hot-spot lock-reference sampling (DESIGN.md §16). Ranks are drawn
// with the analytic approximation of Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases" (SIGMOD '94): one uniform variate per
// draw, inverted through a three-piece closed form instead of a CDF walk.
// All the heavy terms (the harmonic-like sum zeta(n, theta), the exponent
// alpha, the correction eta) are pure functions of (n, theta), so they are
// precomputed once per generator and the draw itself consumes exactly one
// Float64 — which is what keeps the skewed path as deterministic and
// stream-partitioned as the uniform one.

import "math"

// zipfGen draws ranks in [0, n) with P(rank = r) ∝ 1/(r+1)^theta, using the
// Gray et al. approximation. theta must be in [0, 1); n must be positive.
// The zero rank is the hottest.
type zipfGen struct {
	n     int
	theta float64
	zetan float64 // zeta(n, theta)
	alpha float64 // 1/(1-theta)
	eta   float64
	half  float64 // 0.5^theta
}

// zetaSum returns zeta(n, theta) = sum_{i=1..n} 1/i^theta by direct
// summation. O(n) with a Pow per term — construction-time only.
func zetaSum(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// newZipfGen precomputes the draw constants for (n, theta).
func newZipfGen(n int, theta float64) *zipfGen {
	z := &zipfGen{
		n:     n,
		theta: theta,
		zetan: zetaSum(n, theta),
		alpha: 1 / (1 - theta),
		half:  math.Pow(0.5, theta),
	}
	// eta's denominator is 1 - zeta(2,theta)/zeta(n,theta), which is zero (or
	// negative) for n <= 2 — but those n are fully covered by the first two
	// branches of rank, so the third-piece constant is never consulted.
	if n > 2 {
		zeta2 := 1 + z.half
		z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	}
	return z
}

// rank inverts one uniform variate u ∈ [0,1) into a Zipf rank.
func (z *zipfGen) rank(u float64) int {
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	r := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	if r < 0 { // defensive: cannot happen for u ∈ [0,1), cheap to pin
		r = 0
	}
	return r
}

// naiveZipfRank is the reference implementation for the property tests: the
// same Gray et al. formula transcribed directly from the paper with every
// constant recomputed per draw and no shortcuts. The optimized sampler must
// match it bit for bit on every variate — the precomputation and branch
// ordering above are pure refactorings of this function.
func naiveZipfRank(n int, theta float64, u float64) int {
	zetan := 0.0
	for i := 1; i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}
	uz := u * zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, theta) {
		return 1
	}
	zeta2 := 1 + math.Pow(0.5, theta)
	eta := (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan)
	alpha := 1 / (1 - theta)
	r := int(float64(n) * math.Pow(eta*u-eta+1, alpha))
	if r >= n {
		r = n - 1
	}
	if r < 0 {
		r = 0
	}
	return r
}

// sampleZipfRanksInto fills st.sample[:k] with k distinct Zipf ranks from z,
// drawing variates from st.elems. Distinctness uses rejection: a duplicate
// rank is redrawn (consuming one more variate), and the duplicate test itself
// consumes no randomness — the same contract rng.SampleWithoutReplacementInto
// gives the uniform path, so a pooled and an allocating caller see identical
// streams. Termination needs k <= z.n, which Config.Validate guarantees
// (CallsPerTxn <= partition size <= lockspace).
func (st *siteStream) sampleZipfRanksInto(z *zipfGen, k int) {
	for i := 0; i < k; i++ {
		for {
			r := z.rank(st.elems.Float64())
			dup := false
			for j := 0; j < i; j++ {
				if st.sample[j] == r {
					dup = true
					break
				}
			}
			if !dup {
				st.sample[i] = r
				break
			}
		}
	}
}
