package workload

import (
	"math"
	"testing"

	"hybriddb/internal/rng"
)

func skewConfig(theta float64) Config {
	c := validConfig()
	c.SkewTheta = theta
	return c
}

func TestSkewThetaValidation(t *testing.T) {
	tests := []struct {
		name   string
		theta  float64
		wantOK bool
	}{
		{"zero", 0, true},
		{"moderate", 0.5, true},
		{"near one", 0.99, true},
		{"one", 1, false},
		{"above one", 1.5, false},
		{"negative", -0.1, false},
		{"NaN", math.NaN(), false},
		{"+Inf", math.Inf(1), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := skewConfig(tt.theta)
			if err := c.Validate(); (err == nil) != tt.wantOK {
				t.Errorf("Validate(theta=%v) = %v, want ok=%v", tt.theta, err, tt.wantOK)
			}
		})
	}
}

// TestZipfMatchesNaiveReference is the draw-for-draw property: across sizes,
// exponents, and seeds, the precomputed sampler must invert every uniform
// variate to exactly the rank the direct per-draw transcription of the Gray
// et al. formula produces. Any drift in the precomputation, branch order, or
// clamping is a bit-loud failure here.
func TestZipfMatchesNaiveReference(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 100, 3276} {
		for _, theta := range []float64{0, 0.2, 0.5, 0.8, 0.99} {
			z := newZipfGen(n, theta)
			for seed := uint64(1); seed <= 3; seed++ {
				src := rng.New(seed)
				for i := 0; i < 2000; i++ {
					u := src.Float64()
					got, want := z.rank(u), naiveZipfRank(n, theta, u)
					if got != want {
						t.Fatalf("n=%d theta=%v seed=%d u=%v: rank %d, naive reference %d",
							n, theta, seed, u, got, want)
					}
					if got < 0 || got >= n {
						t.Fatalf("n=%d theta=%v: rank %d out of range", n, theta, got)
					}
				}
			}
		}
	}
}

// TestZipfHotSpotConcentration checks the distribution is actually skewed:
// rank 0's empirical frequency matches its analytic mass 1/zeta(n, theta)
// and the head dominates the tail.
func TestZipfHotSpotConcentration(t *testing.T) {
	const n = 1000
	const theta = 0.8
	z := newZipfGen(n, theta)
	src := rng.New(7)
	const draws = 200000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.rank(src.Float64())]++
	}
	wantTop := 1 / z.zetan
	gotTop := float64(counts[0]) / draws
	if math.Abs(gotTop-wantTop) > 0.01 {
		t.Errorf("rank-0 frequency %v, want ~%v", gotTop, wantTop)
	}
	// The hottest 10% of ranks must hold well over half the mass at theta=0.8
	// (analytically ~63%); uniform would give exactly 10%.
	head := 0
	for _, c := range counts[:n/10] {
		head += c
	}
	if frac := float64(head) / draws; frac < 0.5 {
		t.Errorf("hottest 10%% of ranks hold only %.1f%% of draws", 100*frac)
	}
}

// TestSkewedNextIntoMatchesAllocating mirrors the uniform path's guarantee:
// a pooled NextInto caller and an allocating Next caller consume the variate
// streams identically, so the generated transactions match field for field.
func TestSkewedNextIntoMatchesAllocating(t *testing.T) {
	cfg := skewConfig(0.7)
	gAlloc := NewGenerator(cfg, 4242)
	gPool := NewGenerator(cfg, 4242)
	pooled := make([]*Txn, cfg.Sites)
	for i := 0; i < 600; i++ {
		site := i % cfg.Sites
		a := gAlloc.Next(site)
		pooled[site] = gPool.NextInto(site, pooled[site])
		b := pooled[site]
		if a.ID != b.ID || a.Class != b.Class || a.HomeSite != b.HomeSite {
			t.Fatalf("txn %d: headers diverged: %+v vs %+v", i, a, b)
		}
		for j := range a.Elements {
			if a.Elements[j] != b.Elements[j] || a.Modes[j] != b.Modes[j] {
				t.Fatalf("txn %d call %d: %d/%v vs %d/%v", i, j,
					a.Elements[j], a.Modes[j], b.Elements[j], b.Modes[j])
			}
		}
	}
}

// TestSkewedNextIntoAllocationFree guards the skewed hot path: once a spec is
// recycled, generating skewed transactions allocates nothing.
func TestSkewedNextIntoAllocationFree(t *testing.T) {
	cfg := skewConfig(0.8)
	g := NewGenerator(cfg, 99)
	spec := g.NextInto(0, nil) // warm the scratch and slices
	if got := testing.AllocsPerRun(1000, func() {
		spec = g.NextInto(0, spec)
	}); got != 0 {
		t.Fatalf("skewed NextInto allocated %v per run, want 0", got)
	}
}

// TestSkewedClassAInHomePartition: the affinity mapping keeps skewed class A
// references inside the home partition, hottest-first from its base.
func TestSkewedClassAInHomePartition(t *testing.T) {
	cfg := skewConfig(0.9)
	cfg.PLocal = 1
	g := NewGenerator(cfg, 13)
	part := cfg.PartitionSize()
	headHits, total := 0, 0
	for i := 0; i < 500; i++ {
		for site := 0; site < cfg.Sites; site++ {
			txn := g.Next(site)
			lo, hi := uint32(site)*part, uint32(site+1)*part
			for _, e := range txn.Elements {
				if e < lo || e >= hi {
					t.Fatalf("skewed class A at site %d referenced %d outside [%d,%d)", site, e, lo, hi)
				}
				total++
				if e-lo < part/10 {
					headHits++
				}
			}
		}
	}
	// At theta=0.9 the first 10% of the partition holds the bulk of the mass.
	if frac := float64(headHits) / float64(total); frac < 0.5 {
		t.Errorf("partition head got only %.1f%% of skewed class A references", 100*frac)
	}
}

// TestSkewedClassBAffinity: class B ranks rotate by the home partition base,
// so each site's class B references concentrate in its own partition while
// still spanning the lockspace.
func TestSkewedClassBAffinity(t *testing.T) {
	cfg := skewConfig(0.9)
	cfg.PLocal = 0 // all class B
	g := NewGenerator(cfg, 21)
	for _, site := range []int{0, 3, 9} {
		ownHits, total := 0, 0
		partitions := make(map[int]bool)
		for i := 0; i < 400; i++ {
			txn := g.Next(site)
			for _, e := range txn.Elements {
				if e >= cfg.Lockspace {
					t.Fatalf("element %d beyond lockspace", e)
				}
				p := cfg.PartitionOf(e)
				partitions[p] = true
				total++
				if p == site {
					ownHits++
				}
			}
		}
		// Uniform would put 1/Sites = 10% at home; the rotated Zipf head
		// concentrates far more.
		if frac := float64(ownHits) / float64(total); frac < 0.3 {
			t.Errorf("site %d: only %.1f%% of skewed class B references at home", site, 100*frac)
		}
		if len(partitions) < 3 {
			t.Errorf("site %d: skewed class B hit only %d partitions", site, len(partitions))
		}
	}
}

// TestSkewedElementsDistinct: the rejection loop preserves within-transaction
// distinctness under heavy skew, where duplicates are actually likely.
func TestSkewedElementsDistinct(t *testing.T) {
	cfg := skewConfig(0.99)
	g := NewGenerator(cfg, 31)
	for i := 0; i < 1000; i++ {
		txn := g.Next(i % cfg.Sites)
		seen := make(map[uint32]bool, len(txn.Elements))
		for _, e := range txn.Elements {
			if seen[e] {
				t.Fatalf("duplicate element %d in skewed txn %d", e, txn.ID)
			}
			seen[e] = true
		}
	}
}

// TestSkewZeroIsUniformPath: at theta=0 the generator must take exactly the
// uniform code path — the transactions match a no-skew generator draw for
// draw, which is the workload half of the simtest degeneracy relation.
func TestSkewZeroIsUniformPath(t *testing.T) {
	gU := NewGenerator(validConfig(), 77)
	gS := NewGenerator(skewConfig(0), 77)
	for i := 0; i < 300; i++ {
		site := i % 10
		a, b := gU.Next(site), gS.Next(site)
		if a.ID != b.ID || a.Class != b.Class {
			t.Fatalf("txn %d: theta=0 diverged from uniform", i)
		}
		for j := range a.Elements {
			if a.Elements[j] != b.Elements[j] || a.Modes[j] != b.Modes[j] {
				t.Fatalf("txn %d call %d: theta=0 diverged from uniform", i, j)
			}
		}
	}
}
