package workload

import (
	"bytes"
	"strings"
	"testing"

	"hybriddb/internal/lock"
)

func TestRecordReplayRoundTrip(t *testing.T) {
	cfg := validConfig()
	gen := NewGenerator(cfg, 42)
	var buf bytes.Buffer
	rec := NewRecorder(&buf)

	var originals []*Txn
	var gaps []float64
	for i := 0; i < 50; i++ {
		txn := gen.Next(i % cfg.Sites)
		gap := float64(i) * 0.01
		originals = append(originals, txn)
		gaps = append(gaps, gap)
		if err := rec.Record(txn, gap); err != nil {
			t.Fatal(err)
		}
	}
	if rec.Count() != 50 {
		t.Fatalf("recorded %d, want 50", rec.Count())
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	txns, readGaps, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 50 {
		t.Fatalf("replayed %d transactions", len(txns))
	}
	for i, got := range txns {
		want := originals[i]
		if got.ID != want.ID || got.Class != want.Class || got.HomeSite != want.HomeSite {
			t.Fatalf("txn %d header mismatch: %+v vs %+v", i, got, want)
		}
		if readGaps[i] != gaps[i] {
			t.Fatalf("txn %d gap %v, want %v", i, readGaps[i], gaps[i])
		}
		for j := range want.Elements {
			if got.Elements[j] != want.Elements[j] || got.Modes[j] != want.Modes[j] {
				t.Fatalf("txn %d call %d mismatch", i, j)
			}
		}
	}
}

func TestReplayerStreaming(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	txn := &Txn{ID: 1, Class: ClassA, Elements: []uint32{5}, Modes: []lock.Mode{lock.Exclusive}}
	rec.Record(txn, 0.5)
	rec.Flush()

	rp := NewReplayer(&buf)
	if !rp.More() {
		t.Fatal("More false with one record")
	}
	got, gap := rp.Next()
	if got.ID != 1 || gap != 0.5 {
		t.Fatalf("got %+v gap %v", got, gap)
	}
	if rp.More() {
		t.Fatal("More true past end")
	}
	if rp.Err() != nil {
		t.Fatalf("unexpected error: %v", rp.Err())
	}
}

func TestReplayerNextPastEndPanics(t *testing.T) {
	rp := NewReplayer(strings.NewReader(""))
	defer func() {
		if recover() == nil {
			t.Fatal("Next past end did not panic")
		}
	}()
	rp.Next()
}

func TestReplayerRejectsCorruptInput(t *testing.T) {
	_, _, err := ReadAll(strings.NewReader(`{"id":1,"class":9,"elements":[1],"writes":[true]}`))
	if err == nil {
		t.Fatal("invalid class accepted")
	}
	_, _, err = ReadAll(strings.NewReader(`{"id":1,"class":1,"elements":[1,2],"writes":[true]}`))
	if err == nil {
		t.Fatal("mismatched elements/writes accepted")
	}
	_, _, err = ReadAll(strings.NewReader(`not json at all`))
	if err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRecorderValidation(t *testing.T) {
	rec := NewRecorder(&bytes.Buffer{})
	if err := rec.Record(nil, 0); err == nil {
		t.Error("nil transaction accepted")
	}
	txn := &Txn{ID: 1, Class: ClassA}
	if err := rec.Record(txn, -1); err == nil {
		t.Error("negative gap accepted")
	}
}

func TestCaptureProducesReplayableTrace(t *testing.T) {
	var buf bytes.Buffer
	cfg := validConfig()
	if err := Capture(&buf, cfg, 7, 2.0, 30); err != nil {
		t.Fatal(err)
	}
	txns, gaps, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 30 || len(gaps) != 30 {
		t.Fatalf("captured %d/%d", len(txns), len(gaps))
	}
	for _, g := range gaps {
		if g < 0 {
			t.Fatal("negative gap in capture")
		}
	}
	// Round-robin site assignment in Capture.
	if txns[0].HomeSite != 0 || txns[1].HomeSite != 1 {
		t.Errorf("sites %d,%d, want 0,1", txns[0].HomeSite, txns[1].HomeSite)
	}
}

func TestCaptureRejectsBadCount(t *testing.T) {
	if err := Capture(&bytes.Buffer{}, validConfig(), 1, 1.0, 0); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestCaptureDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	cfg := validConfig()
	if err := Capture(&a, cfg, 9, 1.5, 20); err != nil {
		t.Fatal(err)
	}
	if err := Capture(&b, cfg, 9, 1.5, 20); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("captures with equal seeds differ")
	}
}
