package workload

import (
	"math"
	"testing"
	"testing/quick"

	"hybriddb/internal/lock"
)

func validConfig() Config {
	return Config{Sites: 10, Lockspace: 32768, CallsPerTxn: 10, PLocal: 0.75, PWrite: 0.25}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		wantOK bool
	}{
		{"default", func(c *Config) {}, true},
		{"zero sites", func(c *Config) { c.Sites = 0 }, false},
		{"zero lockspace", func(c *Config) { c.Lockspace = 0 }, false},
		{"more sites than elements", func(c *Config) { c.Sites = 100; c.Lockspace = 50 }, false},
		{"zero calls", func(c *Config) { c.CallsPerTxn = 0 }, false},
		{"calls exceed partition", func(c *Config) { c.CallsPerTxn = 4000 }, false},
		{"plocal negative", func(c *Config) { c.PLocal = -0.1 }, false},
		{"plocal above one", func(c *Config) { c.PLocal = 1.1 }, false},
		{"pwrite above one", func(c *Config) { c.PWrite = 2 }, false},
		{"all reads", func(c *Config) { c.PWrite = 0 }, true},
		{"all class B", func(c *Config) { c.PLocal = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := validConfig()
			tt.mutate(&c)
			err := c.Validate()
			if (err == nil) != tt.wantOK {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.wantOK)
			}
		})
	}
}

func TestPartitionSize(t *testing.T) {
	c := validConfig()
	if got := c.PartitionSize(); got != 3276 {
		t.Fatalf("PartitionSize = %d, want 3276", got)
	}
}

func TestPartitionOf(t *testing.T) {
	c := validConfig()
	if c.PartitionOf(0) != 0 {
		t.Error("element 0 not in partition 0")
	}
	if c.PartitionOf(3275) != 0 {
		t.Error("element 3275 not in partition 0")
	}
	if c.PartitionOf(3276) != 1 {
		t.Error("element 3276 not in partition 1")
	}
	// Remainder elements (32760..32767) attach to the last site.
	if c.PartitionOf(32767) != 9 {
		t.Errorf("element 32767 in partition %d, want 9", c.PartitionOf(32767))
	}
}

func TestClassAReferencesStayInHomePartition(t *testing.T) {
	g := NewGenerator(validConfig(), 1)
	part := g.Config().PartitionSize()
	for i := 0; i < 500; i++ {
		for site := 0; site < 10; site++ {
			txn := g.Next(site)
			if txn.Class != ClassA {
				continue
			}
			lo, hi := uint32(site)*part, uint32(site+1)*part
			for _, e := range txn.Elements {
				if e < lo || e >= hi {
					t.Fatalf("class A txn at site %d referenced element %d outside [%d,%d)", site, e, lo, hi)
				}
			}
		}
	}
}

func TestClassBReferencesSpanLockspace(t *testing.T) {
	cfg := validConfig()
	cfg.PLocal = 0 // all class B
	g := NewGenerator(cfg, 2)
	partitions := make(map[int]bool)
	for i := 0; i < 200; i++ {
		txn := g.Next(0)
		for _, e := range txn.Elements {
			if e >= cfg.Lockspace {
				t.Fatalf("element %d beyond lockspace", e)
			}
			partitions[cfg.PartitionOf(e)] = true
		}
	}
	if len(partitions) < 8 {
		t.Errorf("class B references hit only %d partitions", len(partitions))
	}
}

func TestElementsDistinctWithinTxn(t *testing.T) {
	g := NewGenerator(validConfig(), 3)
	for i := 0; i < 1000; i++ {
		txn := g.Next(i % 10)
		seen := make(map[uint32]bool, len(txn.Elements))
		for _, e := range txn.Elements {
			if seen[e] {
				t.Fatalf("duplicate element %d in txn %d", e, txn.ID)
			}
			seen[e] = true
		}
		if len(txn.Elements) != 10 || len(txn.Modes) != 10 {
			t.Fatalf("txn has %d elements, %d modes", len(txn.Elements), len(txn.Modes))
		}
	}
}

func TestClassMix(t *testing.T) {
	g := NewGenerator(validConfig(), 4)
	const n = 20000
	classA := 0
	for i := 0; i < n; i++ {
		if g.Next(0).Class == ClassA {
			classA++
		}
	}
	got := float64(classA) / n
	if math.Abs(got-0.75) > 0.01 {
		t.Errorf("class A fraction = %v, want ~0.75", got)
	}
}

func TestWriteMix(t *testing.T) {
	g := NewGenerator(validConfig(), 5)
	const n = 5000
	writes, total := 0, 0
	for i := 0; i < n; i++ {
		txn := g.Next(0)
		for _, m := range txn.Modes {
			total++
			if m == lock.Exclusive {
				writes++
			}
		}
	}
	got := float64(writes) / float64(total)
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("write fraction = %v, want ~0.25", got)
	}
}

func TestDeterminism(t *testing.T) {
	g1 := NewGenerator(validConfig(), 99)
	g2 := NewGenerator(validConfig(), 99)
	for i := 0; i < 100; i++ {
		a, b := g1.Next(i%10), g2.Next(i%10)
		if a.Class != b.Class || a.ID != b.ID {
			t.Fatalf("generators diverged at txn %d", i)
		}
		for j := range a.Elements {
			if a.Elements[j] != b.Elements[j] || a.Modes[j] != b.Modes[j] {
				t.Fatalf("reference strings diverged at txn %d call %d", i, j)
			}
		}
	}
}

func TestIDsUnique(t *testing.T) {
	g := NewGenerator(validConfig(), 6)
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		id := g.Next(0).ID
		if seen[id] {
			t.Fatalf("duplicate txn ID %d", id)
		}
		seen[id] = true
	}
}

func TestUpdates(t *testing.T) {
	txn := &Txn{
		Elements: []uint32{1, 2, 3},
		Modes:    []lock.Mode{lock.Share, lock.Exclusive, lock.Exclusive},
	}
	u := txn.Updates()
	if len(u) != 2 || u[0] != 2 || u[1] != 3 {
		t.Fatalf("Updates = %v, want [2 3]", u)
	}
}

func TestUpdatesReadOnly(t *testing.T) {
	txn := &Txn{Elements: []uint32{1}, Modes: []lock.Mode{lock.Share}}
	if u := txn.Updates(); u != nil {
		t.Fatalf("read-only Updates = %v, want nil", u)
	}
}

func TestSitesTouched(t *testing.T) {
	cfg := validConfig()
	part := cfg.PartitionSize()
	txn := &Txn{Elements: []uint32{0, 1, part, 2 * part, part + 5}}
	sites := txn.SitesTouched(cfg)
	if len(sites) != 3 {
		t.Fatalf("SitesTouched = %v, want 3 distinct", sites)
	}
	want := map[int]bool{0: true, 1: true, 2: true}
	for _, s := range sites {
		if !want[s] {
			t.Fatalf("unexpected site %d", s)
		}
	}
}

func TestNextPanicsOnBadSite(t *testing.T) {
	g := NewGenerator(validConfig(), 7)
	defer func() {
		if recover() == nil {
			t.Fatal("bad site did not panic")
		}
	}()
	g.Next(10)
}

func TestArrivalsMeanRate(t *testing.T) {
	a := NewArrivals(2.0, 11) // 2 tps -> mean gap 0.5 s
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		gap := a.Next()
		if gap < 0 {
			t.Fatal("negative interarrival time")
		}
		sum += gap
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean interarrival = %v, want ~0.5", mean)
	}
}

func TestArrivalsInvalidRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate did not panic")
		}
	}()
	NewArrivals(0, 1)
}

func TestQuickClassAInPartition(t *testing.T) {
	cfg := validConfig()
	cfg.PLocal = 1
	g := NewGenerator(cfg, 12)
	part := cfg.PartitionSize()
	f := func(s uint8) bool {
		site := int(s) % cfg.Sites
		txn := g.Next(site)
		for _, e := range txn.Elements {
			if cfg.PartitionOf(e) != site {
				return false
			}
			if e/part != uint32(site) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
