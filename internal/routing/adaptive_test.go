package routing

import (
	"testing"
)

func TestAdaptiveStaticConstruction(t *testing.T) {
	p := params()
	if _, err := NewAdaptiveStatic(p, 0.75, 30, 1); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		pLocal, window float64
	}{
		{0, 30}, {1.5, 30}, {0.75, 0}, {0.75, -1},
	}
	for _, tt := range bad {
		if _, err := NewAdaptiveStatic(p, tt.pLocal, tt.window, 1); err == nil {
			t.Errorf("pLocal=%v window=%v accepted", tt.pLocal, tt.window)
		}
	}
	if _, err := NewAdaptiveStatic((params()), 0.75, 30, 1); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveStaticStartsConservative(t *testing.T) {
	a, err := NewAdaptiveStatic(params(), 0.75, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Before the first window completes, the ship probability is 0: every
	// decision is local.
	for i := 0; i < 100; i++ {
		if a.Decide(State{Now: float64(i) * 0.1}) != RunLocal {
			t.Fatal("shipped before first re-optimization")
		}
	}
	if a.ShipProbability() != 0 {
		t.Errorf("pShip = %v before first window", a.ShipProbability())
	}
}

func TestAdaptiveStaticLearnsHighLoad(t *testing.T) {
	a, err := NewAdaptiveStatic(params(), 0.75, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Feed a decision stream corresponding to ~2.5 class A arrivals per
	// second per site across 10 sites: 18.75 decisions/s for 10 seconds.
	now := 0.0
	for i := 0; i < 190; i++ {
		a.Decide(State{Now: now})
		now += 1.0 / 19.0
	}
	// Cross the window boundary to trigger re-optimization.
	a.Decide(State{Now: 10.5})
	if p := a.ShipProbability(); p < 0.3 {
		t.Errorf("learned pShip = %v at 25 tps, want substantial", p)
	}
}

func TestAdaptiveStaticLearnsLowLoad(t *testing.T) {
	a, err := NewAdaptiveStatic(params(), 0.75, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	// ~0.3 tps/site: the optimum is to ship nothing.
	now := 0.0
	for i := 0; i < 22; i++ {
		a.Decide(State{Now: now})
		now += 0.45
	}
	a.Decide(State{Now: 10.2})
	if p := a.ShipProbability(); p > 0.05 {
		t.Errorf("learned pShip = %v at 3 tps, want ~0", p)
	}
}

func TestAdaptiveStaticName(t *testing.T) {
	a, _ := NewAdaptiveStatic(params(), 0.75, 30, 1)
	if a.Name() != "adaptive-static" {
		t.Errorf("name = %q", a.Name())
	}
}
