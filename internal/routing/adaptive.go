package routing

import (
	"fmt"

	"hybriddb/internal/model"
	"hybriddb/internal/rng"
)

// AdaptiveStatic bridges the paper's static and dynamic families: it ships
// probabilistically like the static policy, but re-estimates the arrival
// rate from the decisions it observes and re-runs the §3.1 optimization at
// the end of every measurement window. It removes the static policy's
// assumption that arrival rates are known a priori while keeping its
// per-decision cost at a single random draw.
type AdaptiveStatic struct {
	params model.Params
	pLocal float64
	window float64
	src    *rng.Source

	// perSite marks a ForSite fork: it observes one site's decisions, so
	// the rate estimate divides by one site instead of all of them.
	perSite bool

	windowStart float64
	decisions   int
	pShip       float64
}

// NewAdaptiveStatic returns an adaptive static strategy re-optimizing every
// window seconds. pLocal is the class A fraction (used to convert observed
// class A decisions into a total arrival-rate estimate).
func NewAdaptiveStatic(params model.Params, pLocal, window float64, seed uint64) (*AdaptiveStatic, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if pLocal <= 0 || pLocal > 1 {
		return nil, fmt.Errorf("routing: adaptive pLocal %v out of (0,1]", pLocal)
	}
	if window <= 0 {
		return nil, fmt.Errorf("routing: adaptive window %v must be positive", window)
	}
	return &AdaptiveStatic{
		params: params,
		pLocal: pLocal,
		window: window,
		src:    rng.New(seed),
	}, nil
}

// Name implements Strategy.
func (a *AdaptiveStatic) Name() string { return "adaptive-static" }

// ShipProbability returns the currently active ship probability.
func (a *AdaptiveStatic) ShipProbability() float64 { return a.pShip }

// ForSite implements SiteLocal: the fork estimates the arrival rate from
// its own site's decision stream (scaled accordingly in reoptimize) and
// draws from its own source. Each site adapts independently, which is also
// the natural deployment: a real site only observes its own arrivals.
func (a *AdaptiveStatic) ForSite(site int, seed uint64) Strategy {
	return &AdaptiveStatic{
		params:  a.params,
		pLocal:  a.pLocal,
		window:  a.window,
		src:     rng.New(seed),
		perSite: true,
	}
}

// Decide implements Strategy. An unforked instance serves every site, so
// the decisions it sees are the system-wide class A arrival stream; a
// ForSite fork sees one site's stream.
func (a *AdaptiveStatic) Decide(st State) Decision {
	if st.Now-a.windowStart >= a.window {
		a.reoptimize(st.Now)
	}
	a.decisions++
	if a.src.Bool(a.pShip) {
		return Ship
	}
	return RunLocal
}

func (a *AdaptiveStatic) reoptimize(now float64) {
	elapsed := now - a.windowStart
	if elapsed > 0 && a.decisions > 0 {
		// decisions = class A arrivals in the window: across all sites for
		// a shared instance, at one site for a ForSite fork.
		scope := float64(a.params.Sites)
		if a.perSite {
			scope = 1
		}
		perSite := float64(a.decisions) / elapsed / a.pLocal / scope
		in := model.Input{
			Params:             a.params,
			ArrivalRatePerSite: perSite,
			PLocal:             a.pLocal,
		}
		if opt, err := model.OptimalShipFraction(in, 0.02); err == nil {
			a.pShip = opt.PShip
		}
	}
	a.windowStart = now
	a.decisions = 0
}
