package routing

import (
	"math"
	"testing"

	"hybriddb/internal/model"
)

func params() model.Params {
	return model.Params{
		Sites:         10,
		LocalMIPS:     1,
		CentralMIPS:   15,
		CommDelay:     0.2,
		CallsPerTxn:   10,
		InstrPerCall:  30_000,
		InstrOverhead: 150_000,
		IOTimePerCall: 0.025,
		SetupIOTime:   0.035,
		Lockspace:     32_768,
		PWrite:        0.25,
	}
}

func TestDecisionString(t *testing.T) {
	if RunLocal.String() != "local" || Ship.String() != "ship" {
		t.Fatal("decision strings wrong")
	}
	if got := Decision(9).String(); got != "Decision(9)" {
		t.Fatalf("unknown decision = %q, want %q", got, "Decision(9)")
	}
	if got := Decision(0).String(); got != "Decision(0)" {
		t.Fatalf("zero decision = %q, want %q", got, "Decision(0)")
	}
}

func TestAlwaysLocal(t *testing.T) {
	var s AlwaysLocal
	if s.Name() != "none" {
		t.Errorf("name = %q", s.Name())
	}
	for i := 0; i < 10; i++ {
		if s.Decide(State{LocalQueue: 100, CentralQueue: 0}) != RunLocal {
			t.Fatal("AlwaysLocal shipped")
		}
	}
}

func TestStaticProbability(t *testing.T) {
	s := NewStatic(0.3, 42)
	const n = 20000
	ships := 0
	for i := 0; i < n; i++ {
		if s.Decide(State{}) == Ship {
			ships++
		}
	}
	got := float64(ships) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("ship fraction = %v, want ~0.3", got)
	}
}

func TestStaticEndpoints(t *testing.T) {
	never := NewStatic(0, 1)
	always := NewStatic(1, 1)
	for i := 0; i < 100; i++ {
		if never.Decide(State{}) != RunLocal {
			t.Fatal("static(0) shipped")
		}
		if always.Decide(State{}) != Ship {
			t.Fatal("static(1) ran local")
		}
	}
}

func TestStaticInvalidProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid probability did not panic")
		}
	}()
	NewStatic(1.5, 1)
}

func TestMeasuredRTBootstrap(t *testing.T) {
	var s MeasuredRT
	// No observations: run local first.
	if s.Decide(State{}) != RunLocal {
		t.Error("no observations should run local")
	}
	// Local observed, shipped not: explore shipping.
	if s.Decide(State{LastLocalRT: 1}) != Ship {
		t.Error("unobserved shipping not explored")
	}
}

func TestMeasuredRTPrefersFaster(t *testing.T) {
	var s MeasuredRT
	if s.Decide(State{LastLocalRT: 2, LastShippedRT: 1}) != Ship {
		t.Error("faster shipping not chosen")
	}
	if s.Decide(State{LastLocalRT: 1, LastShippedRT: 2}) != RunLocal {
		t.Error("faster local not chosen")
	}
	// Tie retains local.
	if s.Decide(State{LastLocalRT: 1, LastShippedRT: 1}) != RunLocal {
		t.Error("tie should retain local")
	}
}

func TestQueueLengthHeuristic(t *testing.T) {
	var s QueueLength
	if s.Decide(State{LocalQueue: 5, CentralQueue: 2}) != Ship {
		t.Error("shorter central queue should ship")
	}
	if s.Decide(State{LocalQueue: 2, CentralQueue: 5}) != RunLocal {
		t.Error("longer central queue should retain")
	}
	if s.Decide(State{LocalQueue: 3, CentralQueue: 3}) != RunLocal {
		t.Error("equal queues should retain")
	}
}

func TestQueueThresholdZeroMatchesUtilComparison(t *testing.T) {
	s := QueueThreshold{Theta: 0}
	// q=4 -> rho 0.8; q=1 -> rho 0.5: ship.
	if s.Decide(State{LocalQueue: 4, CentralQueue: 1}) != Ship {
		t.Error("higher local utilization should ship at theta 0")
	}
	if s.Decide(State{LocalQueue: 1, CentralQueue: 4}) != RunLocal {
		t.Error("higher central utilization should retain at theta 0")
	}
}

func TestQueueThresholdNegativeShipsEarlier(t *testing.T) {
	// Equal queues: rho difference is 0. Theta=-0.2 ships, theta=0 retains.
	st := State{LocalQueue: 2, CentralQueue: 2}
	if (QueueThreshold{Theta: -0.2}).Decide(st) != Ship {
		t.Error("negative threshold should ship on equal utilization")
	}
	if (QueueThreshold{Theta: 0}).Decide(st) != RunLocal {
		t.Error("zero threshold should retain on equal utilization")
	}
}

func TestQueueThresholdPositiveShipsLater(t *testing.T) {
	// rho_l - rho_c = 0.8 - 0.5 = 0.3.
	st := State{LocalQueue: 4, CentralQueue: 1}
	if (QueueThreshold{Theta: 0.2}).Decide(st) != Ship {
		t.Error("0.3 > 0.2 should ship")
	}
	if (QueueThreshold{Theta: 0.4}).Decide(st) != RunLocal {
		t.Error("0.3 < 0.4 should retain")
	}
}

func TestMinIncomingIdleSystemRunsLocal(t *testing.T) {
	// An idle system: local run avoids 4 comm delays, so local must win.
	for _, e := range []Estimator{FromQueueLength, FromInSystem} {
		s := MinIncoming{Params: params(), Estimator: e}
		if s.Decide(State{}) != RunLocal {
			t.Errorf("%v: idle system should run local", e)
		}
	}
}

func TestMinIncomingOverloadedLocalShips(t *testing.T) {
	st := State{LocalQueue: 30, LocalInSystem: 40, CentralQueue: 0, CentralInSystem: 0}
	for _, e := range []Estimator{FromQueueLength, FromInSystem} {
		s := MinIncoming{Params: params(), Estimator: e}
		if s.Decide(st) != Ship {
			t.Errorf("%v: overloaded local should ship", e)
		}
	}
}

func TestMinIncomingOverloadedCentralRetains(t *testing.T) {
	st := State{LocalQueue: 1, LocalInSystem: 1, CentralQueue: 200, CentralInSystem: 400}
	for _, e := range []Estimator{FromQueueLength, FromInSystem} {
		s := MinIncoming{Params: params(), Estimator: e}
		if s.Decide(st) != RunLocal {
			t.Errorf("%v: overloaded central should retain", e)
		}
	}
}

func TestMinAverageIdleSystemRunsLocal(t *testing.T) {
	for _, e := range []Estimator{FromQueueLength, FromInSystem} {
		s := MinAverage{Params: params(), Estimator: e}
		if s.Decide(State{}) != RunLocal {
			t.Errorf("%v: idle system should run local", e)
		}
	}
}

func TestMinAverageOverloadedLocalShips(t *testing.T) {
	st := State{LocalQueue: 30, LocalInSystem: 40, CentralQueue: 0, CentralInSystem: 5}
	for _, e := range []Estimator{FromQueueLength, FromInSystem} {
		s := MinAverage{Params: params(), Estimator: e}
		if s.Decide(st) != Ship {
			t.Errorf("%v: overloaded local should ship", e)
		}
	}
}

func TestMinAverageWeighsRunningPopulation(t *testing.T) {
	// Local moderately loaded; central lightly loaded but with a large
	// population whose response times the routing decision perturbs. The
	// min-average scheme should be more reluctant to ship than
	// min-incoming in a state where shipping marginally helps the incoming
	// transaction but the central population is big.
	p := params()
	st := State{
		LocalQueue: 3, LocalInSystem: 4,
		CentralQueue: 2, CentralInSystem: 60,
		LocalLocks: 20, CentralLocks: 500,
	}
	inc := MinIncoming{Params: p, Estimator: FromQueueLength}.Decide(st)
	avg := MinAverage{Params: p, Estimator: FromQueueLength}.Decide(st)
	// Not asserting specific outcomes for both (model-dependent), but the
	// two schemes must be evaluable and min-average must not crash with a
	// large population; sanity: decisions are valid values.
	for _, d := range []Decision{inc, avg} {
		if d != RunLocal && d != Ship {
			t.Fatalf("invalid decision %v", d)
		}
	}
}

func TestNames(t *testing.T) {
	p := params()
	tests := []struct {
		s    Strategy
		want string
	}{
		{AlwaysLocal{}, "none"},
		{NewStatic(0.25, 1), "static(0.250)"},
		{MeasuredRT{}, "measured-rt"},
		{QueueLength{}, "queue-length"},
		{QueueThreshold{Theta: -0.2}, "queue-threshold(-0.20)"},
		{MinIncoming{Params: p, Estimator: FromQueueLength}, "min-incoming/ql"},
		{MinIncoming{Params: p, Estimator: FromInSystem}, "min-incoming/nis"},
		{MinAverage{Params: p, Estimator: FromQueueLength}, "min-average/ql"},
		{MinAverage{Params: p, Estimator: FromInSystem}, "min-average/nis"},
	}
	for _, tt := range tests {
		if got := tt.s.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestUnknownEstimatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown estimator did not panic")
		}
	}()
	MinIncoming{Params: params(), Estimator: Estimator(99)}.Decide(State{})
}
