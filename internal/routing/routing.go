// Package routing implements the load-sharing strategies of §3 of the
// paper. Each strategy decides, for an incoming class A transaction, whether
// to run it at its home site or ship it to the central site. Class B
// transactions never reach a strategy — the engine ships them
// unconditionally.
//
// Strategies see a State snapshot assembled by the engine. The local-site
// fields are current; the central-site fields are the site's possibly stale
// view, updated only when a message from the central site arrives (§4.2:
// "the information of the queue length at the central site is delayed").
package routing

import (
	"fmt"

	"hybriddb/internal/model"
	"hybriddb/internal/rng"
)

// Decision is a routing outcome.
type Decision uint8

// Routing outcomes.
const (
	// RunLocal executes the transaction at its home site.
	RunLocal Decision = iota + 1
	// Ship sends the transaction to the central site.
	Ship
)

// String returns "local" or "ship".
func (d Decision) String() string {
	switch d {
	case RunLocal:
		return "local"
	case Ship:
		return "ship"
	default:
		return fmt.Sprintf("Decision(%d)", uint8(d))
	}
}

// State is the information available to a strategy at decision time.
type State struct {
	Now  float64 // simulated time of the decision
	Site int     // arrival site index

	// Local site, observed directly.
	LocalQueue    int // CPU queue length including the job in service (q_i)
	LocalInSystem int // transactions at the site in any phase (n_i)
	LocalLocks    int // locks held at the site

	// Central site, from the site's last received snapshot.
	CentralQueue    int     // q_c at snapshot time
	CentralInSystem int     // n_c at snapshot time
	CentralLocks    int     // locks held at central at snapshot time
	ViewAge         float64 // Now minus snapshot time; 0 under ideal information

	// Most recent measured response times of each kind completed from this
	// site; 0 until first observation.
	LastLocalRT   float64
	LastShippedRT float64
}

// Strategy routes incoming class A transactions.
type Strategy interface {
	// Name identifies the strategy in reports (e.g. "min-average/nis").
	Name() string
	// Decide routes one incoming class A transaction.
	Decide(st State) Decision
}

// SiteLocal marks a stateful strategy that can fork one independent instance
// per site. The engine forks every stateful strategy at construction so each
// site's decisions are a pure function of that site's arrival sequence —
// required for the sharded engine (sites decide concurrently) and matched by
// the sequential oracle so both modes draw identical decision streams.
// Stateless strategies are shared across sites unchanged.
type SiteLocal interface {
	Strategy
	// ForSite returns this site's independent instance, seeded from the
	// engine's per-site strategy stream.
	ForSite(site int, seed uint64) Strategy
}

// ---- No load sharing.

// AlwaysLocal is the no-load-sharing baseline: every class A transaction
// runs at its home site.
type AlwaysLocal struct{}

// Name implements Strategy.
func (AlwaysLocal) Name() string { return "none" }

// Decide implements Strategy.
func (AlwaysLocal) Decide(State) Decision { return RunLocal }

// ---- Static probabilistic sharing.

// Static ships each class A transaction independently with fixed
// probability, the paper's static (probabilistic) load sharing. The optimal
// probability comes from model.OptimalShipFraction.
type Static struct {
	p   float64
	src *rng.Source
}

// NewStatic returns a static strategy shipping with probability p.
func NewStatic(p float64, seed uint64) *Static {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("routing: ship probability %v out of [0,1]", p))
	}
	return &Static{p: p, src: rng.New(seed)}
}

// ShipProbability returns the configured probability.
func (s *Static) ShipProbability() float64 { return s.p }

// Name implements Strategy.
func (s *Static) Name() string { return fmt.Sprintf("static(%.3f)", s.p) }

// Decide implements Strategy.
func (s *Static) Decide(State) Decision {
	if s.src.Bool(s.p) {
		return Ship
	}
	return RunLocal
}

// ForSite implements SiteLocal: each site ships independently with the same
// probability from its own stream.
func (s *Static) ForSite(site int, seed uint64) Strategy {
	return NewStatic(s.p, seed)
}

// ---- Heuristic on measured response time (§3.2.3).

// MeasuredRT ships the next transaction if the last shipped transaction's
// measured response time was below the last locally run one's, attempting to
// keep the two comparable. Until both kinds have been observed it explores
// the unobserved option.
type MeasuredRT struct{}

// Name implements Strategy.
func (MeasuredRT) Name() string { return "measured-rt" }

// Decide implements Strategy.
func (MeasuredRT) Decide(st State) Decision {
	switch {
	case st.LastLocalRT == 0:
		return RunLocal
	case st.LastShippedRT == 0:
		return Ship
	case st.LastShippedRT < st.LastLocalRT:
		return Ship
	default:
		return RunLocal
	}
}

// ---- Heuristic on queue length (§3.2.4).

// QueueLength ships when the (last seen) central CPU queue is shorter than
// the local one — the basic send-to-shorter-queue heuristic.
type QueueLength struct{}

// Name implements Strategy.
func (QueueLength) Name() string { return "queue-length" }

// Decide implements Strategy.
func (QueueLength) Decide(st State) Decision {
	if st.CentralQueue < st.LocalQueue {
		return Ship
	}
	return RunLocal
}

// QueueThreshold is the tuned extension of §3.2.4 / Fig 4.4: utilizations
// are estimated from the queue lengths and the transaction is shipped when
// the local utilization exceeds the central utilization by more than the
// threshold. Negative thresholds ship even when the local site is the less
// utilized one (profitable when the central CPU is much faster).
type QueueThreshold struct {
	// Theta is the shipping threshold on (ρ_local − ρ_central).
	Theta float64
}

// Name implements Strategy.
func (q QueueThreshold) Name() string { return fmt.Sprintf("queue-threshold(%+.2f)", q.Theta) }

// Decide implements Strategy.
func (q QueueThreshold) Decide(st State) Decision {
	rhoL := model.UtilizationFromQueue(st.LocalQueue, 0)
	rhoC := model.UtilizationFromQueue(st.CentralQueue, 0)
	if rhoL-rhoC > q.Theta {
		return Ship
	}
	return RunLocal
}

// ---- Model-based strategies (§3.2.1, §3.2.2).

// Estimator selects how the model-based strategies estimate utilization.
type Estimator uint8

// Utilization estimators.
const (
	// FromQueueLength uses the CPU queue length (§3.2.1a).
	FromQueueLength Estimator = iota + 1
	// FromInSystem uses the number of transactions in the system,
	// capturing also transactions in I/O and lock wait (§3.2.1b).
	FromInSystem
)

func (e Estimator) String() string {
	switch e {
	case FromQueueLength:
		return "ql"
	case FromInSystem:
		return "nis"
	default:
		return fmt.Sprintf("Estimator(%d)", uint8(e))
	}
}

// routedCorrection is the correction term a of §3.2.1 accounting for the
// utilization the routed transaction adds to its destination. The paper's
// printed α expression is OCR-garbled; a full extra job (a=1) double-counts
// the transaction's own service time (already in the response-time service
// terms) and makes shipping win even on an idle system, which contradicts
// Fig 4.3's near-zero dynamic ship fractions at low rates. Half a job keeps
// the bias against the destination without that artifact. DESIGN.md §4.
const routedCorrection = 0.5

// caseEstimates evaluates the model for the two candidate routings.
// Case 1 runs the incoming transaction locally (correction term on the local
// estimator), case 2 ships it (correction on the central estimator).
func caseEstimates(p model.Params, e Estimator, st State) (case1, case2 model.StateEstimate) {
	var rhoL1, rhoC1, rhoL2, rhoC2 float64
	switch e {
	case FromQueueLength:
		rhoL1 = model.UtilizationFromQueue(st.LocalQueue, routedCorrection)
		rhoC1 = model.UtilizationFromQueue(st.CentralQueue, 0)
		rhoL2 = model.UtilizationFromQueue(st.LocalQueue, 0)
		rhoC2 = model.UtilizationFromQueue(st.CentralQueue, routedCorrection)
	case FromInSystem:
		rhoL1 = p.UtilizationFromCount(p.LocalMIPS, st.LocalInSystem, routedCorrection)
		rhoC1 = p.UtilizationFromCount(p.CentralMIPS, st.CentralInSystem, 0)
		rhoL2 = p.UtilizationFromCount(p.LocalMIPS, st.LocalInSystem, 0)
		rhoC2 = p.UtilizationFromCount(p.CentralMIPS, st.CentralInSystem, routedCorrection)
	default:
		panic(fmt.Sprintf("routing: unknown estimator %d", e))
	}
	case1 = model.EstimateFromState(p, rhoL1, rhoC1, st.LocalLocks, st.CentralLocks)
	case2 = model.EstimateFromState(p, rhoL2, rhoC2, st.LocalLocks, st.CentralLocks)
	return case1, case2
}

// MinIncoming minimizes the estimated response time of the incoming
// transaction alone (§3.2.1), the classic approach in the load-balancing
// literature.
type MinIncoming struct {
	Params    model.Params
	Estimator Estimator
}

// Name implements Strategy.
func (m MinIncoming) Name() string { return "min-incoming/" + m.Estimator.String() }

// Decide implements Strategy.
func (m MinIncoming) Decide(st State) Decision {
	case1, case2 := caseEstimates(m.Params, m.Estimator, st)
	if case2.RCentral < case1.RLocal {
		return Ship
	}
	return RunLocal
}

// MinAverage minimizes the estimated average response time of all
// transactions currently in the system, not just the incoming one (§3.2.2).
// The paper finds the FromInSystem variant to be the best strategy overall.
type MinAverage struct {
	Params    model.Params
	Estimator Estimator
}

// Name implements Strategy.
func (m MinAverage) Name() string { return "min-average/" + m.Estimator.String() }

// Decide implements Strategy.
func (m MinAverage) Decide(st State) Decision {
	case1, case2 := caseEstimates(m.Params, m.Estimator, st)
	nL := float64(st.LocalInSystem)
	nC := float64(st.CentralInSystem)
	total := nL + nC + 1
	avg1 := ((nL+1)*case1.RLocal + nC*case1.RCentral) / total
	avg2 := ((nC+1)*case2.RCentral + nL*case2.RLocal) / total
	if avg2 < avg1 {
		return Ship
	}
	return RunLocal
}
