package comm

import (
	"testing"
	"testing/quick"

	"hybriddb/internal/sim"
)

func TestDeliveryDelay(t *testing.T) {
	s := sim.New()
	l := NewLink(s, 0.2)
	var at float64 = -1
	s.Schedule(1, func() { l.Send(func() { at = s.Now() }) })
	s.Run()
	if at != 1.2 {
		t.Fatalf("delivered at %v, want 1.2", at)
	}
}

func TestFIFOOrdering(t *testing.T) {
	s := sim.New()
	l := NewLink(s, 0.5)
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		l.Send(func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("out-of-order delivery: %v", order)
		}
	}
}

func TestFIFOAcrossSendTimes(t *testing.T) {
	s := sim.New()
	l := NewLink(s, 0.5)
	var order []int
	s.Schedule(0, func() { l.Send(func() { order = append(order, 1) }) })
	s.Schedule(0.1, func() { l.Send(func() { order = append(order, 2) }) })
	s.Schedule(0.2, func() { l.Send(func() { order = append(order, 3) }) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestCounters(t *testing.T) {
	s := sim.New()
	l := NewLink(s, 1)
	l.Send(func() {})
	l.Send(func() {})
	if l.Sent() != 2 || l.Delivered() != 0 || l.InFlight() != 2 {
		t.Fatalf("counters: sent=%d delivered=%d inflight=%d", l.Sent(), l.Delivered(), l.InFlight())
	}
	s.Run()
	if l.Delivered() != 2 || l.InFlight() != 0 {
		t.Fatalf("after run: delivered=%d inflight=%d", l.Delivered(), l.InFlight())
	}
}

func TestZeroDelayLink(t *testing.T) {
	s := sim.New()
	l := NewLink(s, 0)
	ran := false
	l.Send(func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("zero-delay message not delivered")
	}
}

func TestInvalidLink(t *testing.T) {
	for _, f := range []func(){
		func() { NewLink(nil, 1) },
		func() { NewLink(sim.New(), -1) },
		func() { NewLink(sim.New(), 1).Send(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid use did not panic")
				}
			}()
			f()
		}()
	}
}

func TestNetworkTopology(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s, 3, 0.2)
	if n.Sites() != 3 {
		t.Fatalf("sites = %d", n.Sites())
	}
	if n.Delay() != 0.2 {
		t.Fatalf("delay = %v", n.Delay())
	}
	var got []string
	n.ToCentral(0, func() { got = append(got, "up0") })
	n.ToSite(2, func() { got = append(got, "down2") })
	s.Run()
	if len(got) != 2 {
		t.Fatalf("deliveries = %v", got)
	}
	if n.MessagesSent() != 2 || n.MessagesInFlight() != 0 {
		t.Fatalf("sent=%d inflight=%d", n.MessagesSent(), n.MessagesInFlight())
	}
}

func TestNetworkInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-site network did not panic")
		}
	}()
	NewNetwork(sim.New(), 0, 0.2)
}

// TestQuickFIFO sends messages at arbitrary nondecreasing times and verifies
// per-link FIFO delivery regardless of the send schedule.
func TestQuickFIFO(t *testing.T) {
	f := func(gaps []uint8) bool {
		s := sim.New()
		l := NewLink(s, 0.3)
		var order []int
		at := 0.0
		for i, g := range gaps {
			at += float64(g) / 100
			i := i
			s.ScheduleAt(at, func() { l.Send(func() { order = append(order, i) }) })
		}
		s.Run()
		if len(order) != len(gaps) {
			return false
		}
		for i, v := range order {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
