package comm

import (
	"testing"
	"testing/quick"

	"hybriddb/internal/sim"
)

func TestDeliveryDelay(t *testing.T) {
	s := sim.New()
	l := NewLink(s, 0.2)
	var at float64 = -1
	s.Schedule(1, func() { l.Send(func() { at = s.Now() }) })
	s.Run()
	if at != 1.2 {
		t.Fatalf("delivered at %v, want 1.2", at)
	}
}

func TestFIFOOrdering(t *testing.T) {
	s := sim.New()
	l := NewLink(s, 0.5)
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		l.Send(func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("out-of-order delivery: %v", order)
		}
	}
}

func TestFIFOAcrossSendTimes(t *testing.T) {
	s := sim.New()
	l := NewLink(s, 0.5)
	var order []int
	s.Schedule(0, func() { l.Send(func() { order = append(order, 1) }) })
	s.Schedule(0.1, func() { l.Send(func() { order = append(order, 2) }) })
	s.Schedule(0.2, func() { l.Send(func() { order = append(order, 3) }) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestCounters(t *testing.T) {
	s := sim.New()
	l := NewLink(s, 1)
	l.Send(func() {})
	l.Send(func() {})
	if l.Sent() != 2 || l.Delivered() != 0 || l.InFlight() != 2 {
		t.Fatalf("counters: sent=%d delivered=%d inflight=%d", l.Sent(), l.Delivered(), l.InFlight())
	}
	s.Run()
	if l.Delivered() != 2 || l.InFlight() != 0 {
		t.Fatalf("after run: delivered=%d inflight=%d", l.Delivered(), l.InFlight())
	}
}

func TestZeroDelayLink(t *testing.T) {
	s := sim.New()
	l := NewLink(s, 0)
	ran := false
	l.Send(func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("zero-delay message not delivered")
	}
}

func TestInvalidLink(t *testing.T) {
	for _, f := range []func(){
		func() { NewLink(nil, 1) },
		func() { NewLink(sim.New(), -1) },
		func() { NewLink(sim.New(), 1).Send(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid use did not panic")
				}
			}()
			f()
		}()
	}
}

func TestNetworkTopology(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s, 3, 0.2)
	if n.Sites() != 3 {
		t.Fatalf("sites = %d", n.Sites())
	}
	if n.Delay() != 0.2 {
		t.Fatalf("delay = %v", n.Delay())
	}
	var got []string
	n.ToCentral(0, func() { got = append(got, "up0") })
	n.ToSite(2, func() { got = append(got, "down2") })
	s.Run()
	if len(got) != 2 {
		t.Fatalf("deliveries = %v", got)
	}
	if n.MessagesSent() != 2 || n.MessagesInFlight() != 0 {
		t.Fatalf("sent=%d inflight=%d", n.MessagesSent(), n.MessagesInFlight())
	}
}

func TestNetworkInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-site network did not panic")
		}
	}()
	NewNetwork(sim.New(), 0, 0.2)
}

// TestQuickFIFO sends messages at arbitrary nondecreasing times and verifies
// per-link FIFO delivery regardless of the send schedule.
func TestQuickFIFO(t *testing.T) {
	f := func(gaps []uint8) bool {
		s := sim.New()
		l := NewLink(s, 0.3)
		var order []int
		at := 0.0
		for i, g := range gaps {
			at += float64(g) / 100
			i := i
			s.ScheduleAt(at, func() { l.Send(func() { order = append(order, i) }) })
		}
		s.Run()
		if len(order) != len(gaps) {
			return false
		}
		for i, v := range order {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSendInsideDelivery exercises the reentrant pattern every protocol leg
// uses: a delivery callback sending the next message on another link. The
// reply must arrive exactly one delay after the request's delivery.
func TestSendInsideDelivery(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s, 1, 0.2)
	var replyAt float64 = -1
	s.Schedule(1, func() {
		n.ToCentral(0, func() {
			// At the central site, 1.2: answer immediately.
			n.ToSite(0, func() { replyAt = s.Now() })
		})
	})
	s.Run()
	if replyAt != 1.4 {
		t.Fatalf("round trip delivered at %v, want 1.4 (two one-way delays after send)", replyAt)
	}
}

// TestPerLinkFIFOIndependence checks that FIFO holds per link, not
// globally: a later send on a faster link overtakes an earlier send on a
// slower one, while each link's own order is preserved.
func TestPerLinkFIFOIndependence(t *testing.T) {
	s := sim.New()
	slow := NewLink(s, 1.0)
	fast := NewLink(s, 0.1)
	var order []string
	slow.Send(func() { order = append(order, "slow1") })
	slow.Send(func() { order = append(order, "slow2") })
	fast.Send(func() { order = append(order, "fast1") })
	fast.Send(func() { order = append(order, "fast2") })
	s.Run()
	want := []string{"fast1", "fast2", "slow1", "slow2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (per-link FIFO, cross-link overtaking)", order, want)
		}
	}
}

// TestSameInstantDeliveriesKeepScheduleOrder pins the tie-break the package
// comment relies on: messages sent at the same instant on different links
// with equal delay are delivered in scheduling (send) order.
func TestSameInstantDeliveriesKeepScheduleOrder(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s, 3, 0.5)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		n.ToCentral(i, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant deliveries reordered: %v", order)
		}
	}
}

// TestNetworkInFlightDuringExchange tracks the in-flight gauge through a
// request/reply exchange, the quantity the engine samples for its
// message-level observability.
func TestNetworkInFlightDuringExchange(t *testing.T) {
	s := sim.New()
	n := NewNetwork(s, 2, 0.3)
	n.ToCentral(0, func() {
		if got := n.MessagesInFlight(); got != 0 {
			t.Errorf("in flight at delivery = %d, want 0", got)
		}
		n.ToSite(0, func() {})
		n.ToSite(1, func() {})
		if got := n.MessagesInFlight(); got != 2 {
			t.Errorf("in flight after fan-out = %d, want 2", got)
		}
	})
	if got := n.MessagesInFlight(); got != 1 {
		t.Fatalf("in flight before run = %d, want 1", got)
	}
	s.Run()
	if n.MessagesSent() != 3 || n.MessagesInFlight() != 0 {
		t.Fatalf("after run: sent=%d inflight=%d, want 3/0", n.MessagesSent(), n.MessagesInFlight())
	}
}

// TestZeroDelaySendInsideDeliveryRunsSameInstant checks a zero-delay link
// delivers a message sent from inside a delivery at the same simulated
// instant, after the events already scheduled for that instant (the
// kernel's same-time tie-break is scheduling order).
func TestZeroDelaySendInsideDeliveryRunsSameInstant(t *testing.T) {
	s := sim.New()
	l := NewLink(s, 0)
	var order []string
	s.Schedule(1, func() {
		l.Send(func() {
			order = append(order, "chained")
			if s.Now() != 1 {
				t.Errorf("chained delivery at %v, want 1", s.Now())
			}
		})
		order = append(order, "sender")
	})
	s.Schedule(1, func() { order = append(order, "peer") })
	s.Run()
	want := []string{"sender", "peer", "chained"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}
