// Package comm models the long-haul communications network between the
// distributed sites and the central complex: point-to-point links with a
// fixed one-way delay. Deliveries on a link are FIFO — the protocol of §2
// requires that the asynchronous update messages from a local site are
// processed at the central site in the order they were originated, and a
// fixed-delay link preserves order by construction (the kernel breaks
// same-instant ties in scheduling order).
package comm

import (
	"fmt"

	"hybriddb/internal/sim"
)

// Link is a unidirectional channel with fixed propagation delay.
type Link struct {
	simulator *sim.Simulator
	delay     float64

	sent      uint64
	delivered uint64

	// pending is a FIFO ring of in-flight delivery callbacks: Send pushes the
	// callback and schedules deliverFn (bound once at construction), which
	// pops the front. Matching pops to callbacks needs no per-message wrapper
	// closure because the pairing is positional — every delivery event sits
	// exactly delay ahead of its send and the kernel breaks same-instant ties
	// in scheduling order, so delivery events fire in send order.
	pending   []func()
	head      int
	deliverFn func()
}

// NewLink returns a link with the given one-way delay in seconds.
func NewLink(s *sim.Simulator, delay float64) *Link {
	if s == nil {
		panic("comm: nil simulator")
	}
	if delay < 0 {
		panic(fmt.Sprintf("comm: negative delay %v", delay))
	}
	l := &Link{simulator: s, delay: delay}
	l.deliverFn = l.deliverNext
	return l
}

// Delay returns the link's one-way delay.
func (l *Link) Delay() float64 { return l.delay }

// Send delivers by invoking deliver one propagation delay from now.
// Successive sends are delivered in send order.
func (l *Link) Send(deliver func()) {
	if deliver == nil {
		panic("comm: nil delivery callback")
	}
	l.sent++
	l.pending = append(l.pending, deliver)
	l.simulator.Schedule(l.delay, l.deliverFn)
}

// deliverNext pops and runs the oldest in-flight callback.
func (l *Link) deliverNext() {
	deliver := l.pending[l.head]
	l.pending[l.head] = nil
	l.head++
	if l.head == len(l.pending) {
		l.pending = l.pending[:0]
		l.head = 0
	} else if l.head >= 64 && l.head*2 >= len(l.pending) {
		// A link that is never fully drained would otherwise grow the ring
		// without bound; fold the live tail back to the front occasionally.
		n := copy(l.pending, l.pending[l.head:])
		for i := n; i < len(l.pending); i++ {
			l.pending[i] = nil
		}
		l.pending = l.pending[:n]
		l.head = 0
	}
	l.delivered++
	deliver()
}

// Sent returns the number of messages sent on the link.
func (l *Link) Sent() uint64 { return l.sent }

// Delivered returns the number of messages delivered.
func (l *Link) Delivered() uint64 { return l.delivered }

// InFlight returns the number of messages sent but not yet delivered.
func (l *Link) InFlight() uint64 { return l.sent - l.delivered }

// Network is the star topology of the hybrid architecture: every local site
// has an uplink to and a downlink from the central site, all with the same
// one-way delay D.
type Network struct {
	up   []*Link
	down []*Link
}

// NewNetwork builds a star network for n local sites with one-way delay d.
func NewNetwork(s *sim.Simulator, n int, d float64) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("comm: non-positive site count %d", n))
	}
	net := &Network{
		up:   make([]*Link, n),
		down: make([]*Link, n),
	}
	for i := 0; i < n; i++ {
		net.up[i] = NewLink(s, d)
		net.down[i] = NewLink(s, d)
	}
	return net
}

// Sites returns the number of local sites.
func (n *Network) Sites() int { return len(n.up) }

// Delay returns the one-way delay of every link.
func (n *Network) Delay() float64 { return n.up[0].Delay() }

// ToCentral sends a message from local site i to the central site.
func (n *Network) ToCentral(site int, deliver func()) {
	n.up[site].Send(deliver)
}

// ToSite sends a message from the central site to local site i.
func (n *Network) ToSite(site int, deliver func()) {
	n.down[site].Send(deliver)
}

// MessagesSent returns the total number of messages sent on all links.
func (n *Network) MessagesSent() uint64 {
	var total uint64
	for i := range n.up {
		total += n.up[i].Sent() + n.down[i].Sent()
	}
	return total
}

// MessagesInFlight returns the total number of undelivered messages.
func (n *Network) MessagesInFlight() uint64 {
	var total uint64
	for i := range n.up {
		total += n.up[i].InFlight() + n.down[i].InFlight()
	}
	return total
}
