package simtest

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"

	"hybriddb/internal/experiments"
)

// tolerances is the versioned shape of testdata/tolerances.json: the pinned
// model↔simulation comparison grid and the bands every point must satisfy.
// The file is the single source of truth — loosening a band is a reviewed,
// versioned change, not an edit to a test constant.
type tolerances struct {
	RhoMax        float64          `json:"rho_max"`
	RTRelErrMax   float64          `json:"rt_rel_err_max"`
	UtilAbsErrMax float64          `json:"util_abs_err_max"`
	Grid          []toleranceEntry `json:"grid"`
}

// toleranceEntry is one pinned operating point family of the grid. The
// workload-shape fields overlay the base configuration when nonzero (zero
// keeps the uniform full-replication default), and the band overrides, when
// nonzero, replace the file-level bands — the skewed entries carry wider RT
// bands calibrated against the coarser heterogeneous-access model (§16).
type toleranceEntry struct {
	PShip              float64   `json:"p_ship"`
	SkewTheta          float64   `json:"skew_theta"`
	CentralHotFraction float64   `json:"central_hot_fraction"`
	ColdFetchDelay     float64   `json:"cold_fetch_delay"`
	RTRelErrMax        float64   `json:"rt_rel_err_max"`
	UtilAbsErrMax      float64   `json:"util_abs_err_max"`
	RatesPerSite       []float64 `json:"rates_per_site"`
}

func loadTolerances(t *testing.T) tolerances {
	t.Helper()
	raw, err := os.ReadFile("testdata/tolerances.json")
	if err != nil {
		t.Fatal(err)
	}
	var tol tolerances
	if err := json.Unmarshal(raw, &tol); err != nil {
		t.Fatalf("testdata/tolerances.json: %v", err)
	}
	if tol.RhoMax <= 0 || tol.RTRelErrMax <= 0 || tol.UtilAbsErrMax <= 0 || len(tol.Grid) == 0 {
		t.Fatalf("testdata/tolerances.json: incomplete bands: %+v", tol)
	}
	return tol
}

// TestModelSimDifferential is the enforced model↔simulation gate: across the
// pinned grid, the fixed-point solution and the simulation must agree on
// mean response time within rt_rel_err_max and on both utilizations within
// util_abs_err_max. The grid lives inside the model's validity region
// (ρ < rho_max at every point) — near saturation the M/M/1-style expansions
// are legitimately crude and the comparison belongs in the printed
// ModelValidation table, not in a gate.
//
// A failure means model and simulation have drifted apart: either a solver
// term changed, or the simulator's service/lock/network behavior did. The
// golden regression test will usually say which side moved.
func TestModelSimDifferential(t *testing.T) {
	tol := loadTolerances(t)
	base := baseConfig()

	for _, g := range tol.Grid {
		g := g
		name := fmt.Sprintf("pship=%.2f", g.PShip)
		if g.SkewTheta > 0 || g.CentralHotFraction > 0 {
			name = fmt.Sprintf("pship=%.2f_skew=%.2f_hot=%.2f", g.PShip, g.SkewTheta, g.CentralHotFraction)
		}
		entryBase := base
		entryBase.SkewTheta = g.SkewTheta
		if g.CentralHotFraction > 0 {
			entryBase.CentralHotFraction = g.CentralHotFraction
		}
		entryBase.ColdFetchDelay = g.ColdFetchDelay
		rtBand, utilBand := tol.RTRelErrMax, tol.UtilAbsErrMax
		if g.RTRelErrMax > 0 {
			rtBand = g.RTRelErrMax
		}
		if g.UtilAbsErrMax > 0 {
			utilBand = g.UtilAbsErrMax
		}
		t.Run(name, func(t *testing.T) {
			rows, err := experiments.ModelValidation(
				experiments.Options{Base: entryBase, RatesPerSite: g.RatesPerSite}, g.PShip)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				cfg := entryBase
				cfg.ArrivalRatePerSite = r.RatePerSite
				line := repro(fmt.Sprintf("static(%.2f)", g.PShip), cfg)

				// The grid must stay inside the validity region; a point
				// drifting past rho_max (e.g. after a service-time change)
				// should move to the printed table, not silently weaken
				// the gate.
				if r.ModelUtilL >= tol.RhoMax || r.ModelUtilC >= tol.RhoMax {
					t.Errorf("rate %v: grid point outside validity region (util L %.3f, C %.3f, rho_max %.2f)\n%s",
						r.RatePerSite, r.ModelUtilL, r.ModelUtilC, tol.RhoMax, line)
					continue
				}
				if r.Status != experiments.ValidationOK {
					t.Errorf("rate %v: validation status %v inside the validity region\n%s",
						r.RatePerSite, r.Status, line)
					continue
				}
				if r.RelErr > rtBand {
					t.Errorf("rate %v: model RT %.4f vs sim RT %.4f — rel err %.1f%% exceeds band %.1f%%\n%s",
						r.RatePerSite, r.ModelRT, r.SimRT, 100*r.RelErr, 100*rtBand, line)
				}
				if d := math.Abs(r.ModelUtilL - r.SimUtilL); d > utilBand {
					t.Errorf("rate %v: local util model %.4f vs sim %.4f — abs err %.4f exceeds band %.3f\n%s",
						r.RatePerSite, r.ModelUtilL, r.SimUtilL, d, utilBand, line)
				}
				if d := math.Abs(r.ModelUtilC - r.SimUtilC); d > utilBand {
					t.Errorf("rate %v: central util model %.4f vs sim %.4f — abs err %.4f exceeds band %.3f\n%s",
						r.RatePerSite, r.ModelUtilC, r.SimUtilC, d, utilBand, line)
				}
			}
		})
	}
}
