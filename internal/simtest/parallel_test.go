package simtest

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
)

// parallelCase is one randomized configuration of the sequential↔parallel
// differential gate, drawn by drawParallelCase as a pure function of the
// trial index.
type parallelCase struct {
	sc     strategyCase
	cfg    hybrid.Config
	shards int
}

// drawParallelCase randomizes everything the sharded core touches: topology
// size, shard count (below, at, and above the partition count), both
// shardable feedback modes, communication delay (= lookahead), update
// batching and central update pathlength, disk banks, the time-series and
// histogram capture paths, and the periodic invariant auditor. Durations are
// kept short — the gate's power comes from breadth, and any mismatch is bit
// loud, not statistical.
func drawParallelCase(trial int) parallelCase {
	rng := rand.New(rand.NewSource(int64(0x9e3779b9 + trial)))
	cases := []strategyCase{
		caseNone(),
		caseStatic(0.25 + 0.5*rng.Float64()),
		caseQueueLength(),
		caseThreshold(rng.Float64() - 0.5),
		caseMinAverage(),
	}
	sc := cases[trial%len(cases)]

	cfg := hybrid.DefaultConfig()
	cfg.Seed = uint64(50000 + trial)
	cfg.Sites = 2 + rng.Intn(15) // 2..16
	cfg.Warmup = 10
	cfg.Duration = 40
	cfg.ArrivalRatePerSite = 1.0 + 2.0*rng.Float64()
	cfg.CommDelay = []float64{0.01, 0.05, 0.1}[rng.Intn(3)]
	cfg.Feedback = []hybrid.Feedback{hybrid.FeedbackAuthOnly, hybrid.FeedbackAllMessages}[rng.Intn(2)]
	if rng.Intn(3) == 0 {
		cfg.UpdateBatchWindow = 0.25
	}
	if rng.Intn(3) == 0 {
		cfg.UpdateProcInstr = 20000
	}
	if rng.Intn(4) == 0 {
		cfg.DisksPerSite = 2
		cfg.DisksCentral = 4
	}
	if rng.Intn(3) == 0 {
		cfg.SeriesBucket = 5
	}
	if rng.Intn(4) == 0 {
		cfg.SelfCheck = true
	}
	cfg.CaptureHistograms = true

	// 2 .. Sites+2 covers under-, exactly-, and over-provisioned shards
	// (the engine caps the effective count at Sites+1 partitions).
	return parallelCase{sc: sc, cfg: cfg, shards: 2 + rng.Intn(cfg.Sites+1)}
}

// runParallelCase executes one case in both modes and returns the results.
func runParallelCase(t *testing.T, pc parallelCase) (seq, par hybrid.Result) {
	t.Helper()
	run := func(shards int) hybrid.Result {
		cfg := pc.cfg
		cfg.Shards = shards
		s, err := pc.sc.make(cfg)
		if err != nil {
			t.Fatalf("%s: %v", pc.sc.label, err)
		}
		e, err := hybrid.New(cfg, s)
		if err != nil {
			t.Fatalf("%s: %v", pc.sc.label, err)
		}
		r := e.Run()
		if shards > 1 && !e.Parallel() {
			t.Fatalf("shards=%d did not engage the parallel core\n%s",
				shards, repro(pc.sc.label, cfg))
		}
		return r
	}
	return run(0), run(pc.shards)
}

// TestParallelSequentialDifferential is the sequential↔parallel gate of the
// sharded core (DESIGN.md §12): across a randomized matrix of ≥50
// configurations, the parallel run must reproduce the sequential Result bit
// for bit — every counter, every float64 moment, every histogram bucket,
// every series entry. There are no tolerance bands here on purpose: the
// conservative synchronizer is designed to make parallelism unobservable,
// so the only acceptable difference is none.
func TestParallelSequentialDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is a long test")
	}
	const trials = 56
	for trial := 0; trial < trials; trial++ {
		trial := trial
		pc := drawParallelCase(trial)
		t.Run(fmt.Sprintf("trial%02d_%s_shards%d", trial, pc.sc.label, pc.shards), func(t *testing.T) {
			seq, par := runParallelCase(t, pc)
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("parallel (shards=%d) diverged from sequential\n%s\nseq: %+v\npar: %+v",
					pc.shards, repro(pc.sc.label, pc.cfg), seq, par)
			}
		})
	}
}

// TestParallelSequential1000Sites pins the differential gate at the
// scale-out operating point: 1000 sites on a handful of shards — the
// contiguous-block placement with many sites per shard, which the randomized
// matrix above (2..16 sites) never reaches — with the shared hardware scaled
// in proportion as in the cmd/hybridsim scale1000 preset. The horizon is
// deliberately tiny; at this width the run still crosses every code path
// (shipping, authentication, update propagation) thousands of times.
func TestParallelSequential1000Sites(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-site differential is a long test")
	}
	cfg := hybrid.DefaultConfig()
	cfg.Seed = 1000_1000
	cfg.Sites = 1000
	cfg.CentralMIPS = 1500
	cfg.Lockspace = 3_276_800
	cfg.Warmup = 1
	cfg.Duration = 4
	cfg.CaptureHistograms = true
	pc := parallelCase{sc: caseMinAverage(), cfg: cfg, shards: 4}
	seq, par := runParallelCase(t, pc)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel (shards=%d) diverged from sequential at 1000 sites\n%s",
			pc.shards, repro(pc.sc.label, pc.cfg))
	}
	if seq.Completed == 0 {
		t.Fatal("1000-site differential completed nothing")
	}
}

// TestParallelRaceStress is the race-detector workout: a saturated 64-site
// run through the parallel core with the invariant auditor on, sized so the
// shard workers genuinely interleave. The Group's deadlock watchdog (10s
// wall) turns any synchronization hang into a loud panic instead of a CI
// timeout. The dedicated CI job runs this package under -race.
func TestParallelRaceStress(t *testing.T) {
	cfg := hybrid.DefaultConfig()
	cfg.Seed = 64064
	cfg.Sites = 64
	cfg.Shards = 8
	cfg.Warmup = 5
	cfg.Duration = 40
	cfg.ArrivalRatePerSite = 3.0 // near the central complex's saturation
	cfg.SelfCheck = true
	cfg.SeriesBucket = 5
	cfg.CaptureHistograms = true

	s, err := routing.NewAdaptiveStatic(cfg.ModelParams(), cfg.PLocal, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	e, err := hybrid.New(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	r := e.Run()
	if !e.Parallel() {
		t.Fatal("stress config did not engage the parallel core")
	}
	if r.Completed == 0 {
		t.Fatalf("saturated run completed nothing\n%s", repro("adaptive-static", cfg))
	}
}
