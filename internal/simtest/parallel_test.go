package simtest

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
)

// parallelCase is one randomized configuration of the sequential↔parallel
// differential gate, drawn by drawParallelCase as a pure function of the
// trial index.
type parallelCase struct {
	sc     strategyCase
	cfg    hybrid.Config
	shards int
}

// drawParallelCase randomizes everything the sharded core touches: topology
// size, shard count (below, at, and above the partition count), both
// shardable feedback modes, communication delay (= lookahead), update
// batching and central update pathlength, disk banks, the time-series and
// histogram capture paths, and the periodic invariant auditor. Durations are
// kept short — the gate's power comes from breadth, and any mismatch is bit
// loud, not statistical.
func drawParallelCase(trial int) parallelCase {
	rng := rand.New(rand.NewSource(int64(0x9e3779b9 + trial)))
	cases := []strategyCase{
		caseNone(),
		caseStatic(0.25 + 0.5*rng.Float64()),
		caseQueueLength(),
		caseThreshold(rng.Float64() - 0.5),
		caseMinAverage(),
	}
	sc := cases[trial%len(cases)]

	cfg := hybrid.DefaultConfig()
	cfg.Seed = uint64(50000 + trial)
	cfg.Sites = 2 + rng.Intn(15) // 2..16
	cfg.Warmup = 10
	cfg.Duration = 40
	cfg.ArrivalRatePerSite = 1.0 + 2.0*rng.Float64()
	cfg.CommDelay = []float64{0.01, 0.05, 0.1}[rng.Intn(3)]
	cfg.Feedback = []hybrid.Feedback{hybrid.FeedbackAuthOnly, hybrid.FeedbackAllMessages}[rng.Intn(2)]
	if rng.Intn(3) == 0 {
		cfg.UpdateBatchWindow = 0.25
	}
	if rng.Intn(3) == 0 {
		cfg.UpdateProcInstr = 20000
	}
	if rng.Intn(4) == 0 {
		cfg.DisksPerSite = 2
		cfg.DisksCentral = 4
	}
	if rng.Intn(3) == 0 {
		cfg.SeriesBucket = 5
	}
	if rng.Intn(4) == 0 {
		cfg.SelfCheck = true
	}
	cfg.CaptureHistograms = true

	// 2 .. Sites+2 covers under-, exactly-, and over-provisioned shards
	// (the engine caps the effective count at Sites+1 partitions).
	shards := 2 + rng.Intn(cfg.Sites+1)

	// The PR-10 workload-shape knobs overlay the base matrix from a second
	// stream, drawn after every base draw so the base configurations stay
	// bit-identical to the pre-overlay matrix. The cold-fetch delay is kept
	// OFF the 1 ms lattice every other service offset lives on (CPU bursts,
	// I/O times, comm delays are all multiples of 0.001): a delay expressible
	// as a difference of two offset sums can land two unrelated event chains
	// on the exact same float64 instant, and same-instant cross-partition
	// ties are the one event class the sharded core does not order like the
	// sequential queue (see hybrid/parallel.go; the base matrix avoids such
	// ties the same way, by construction of its value sets).
	wrng := rand.New(rand.NewSource(int64(0x51ef1234 + trial)))
	if wrng.Intn(3) == 0 {
		cfg.SkewTheta = 0.3 + 0.65*wrng.Float64()
	}
	if wrng.Intn(3) == 0 {
		cfg.CentralHotFraction = 0.25 + 0.7*wrng.Float64()
		if wrng.Intn(2) == 0 {
			cfg.ColdFetchDelay = []float64{0.0137, 0.0519}[wrng.Intn(2)]
		}
	}
	// Epoch-batched propagation is mutually exclusive with the batch window.
	if cfg.UpdateBatchWindow == 0 && wrng.Intn(3) == 0 {
		cfg.EpochLength = []float64{0.1, 0.5, 2}[wrng.Intn(3)]
	}

	return parallelCase{sc: sc, cfg: cfg, shards: shards}
}

// runParallelCase executes one case in both modes and returns the results.
func runParallelCase(t *testing.T, pc parallelCase) (seq, par hybrid.Result) {
	t.Helper()
	run := func(shards int) hybrid.Result {
		cfg := pc.cfg
		cfg.Shards = shards
		s, err := pc.sc.make(cfg)
		if err != nil {
			t.Fatalf("%s: %v", pc.sc.label, err)
		}
		e, err := hybrid.New(cfg, s)
		if err != nil {
			t.Fatalf("%s: %v", pc.sc.label, err)
		}
		r := e.Run()
		if shards > 1 && !e.Parallel() {
			t.Fatalf("shards=%d did not engage the parallel core\n%s",
				shards, repro(pc.sc.label, cfg))
		}
		return r
	}
	return run(0), run(pc.shards)
}

// TestParallelSequentialDifferential is the sequential↔parallel gate of the
// sharded core (DESIGN.md §12): across a randomized matrix of ≥50
// configurations, the parallel run must reproduce the sequential Result bit
// for bit — every counter, every float64 moment, every histogram bucket,
// every series entry. There are no tolerance bands here on purpose: the
// conservative synchronizer is designed to make parallelism unobservable,
// so the only acceptable difference is none.
func TestParallelSequentialDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is a long test")
	}
	const trials = 56
	for trial := 0; trial < trials; trial++ {
		trial := trial
		pc := drawParallelCase(trial)
		t.Run(fmt.Sprintf("trial%02d_%s_shards%d", trial, pc.sc.label, pc.shards), func(t *testing.T) {
			seq, par := runParallelCase(t, pc)
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("parallel (shards=%d) diverged from sequential\n%s\nseq: %+v\npar: %+v",
					pc.shards, repro(pc.sc.label, pc.cfg), seq, par)
			}
		})
	}
}

// TestParallelSkewedPartialReplication pins the differential gate at the
// PR-10 operating point the randomized matrix only hits piecemeal: strong
// Zipf affinity, half the partition centrally resident with a real fetch
// delay, and epoch-batched propagation, all at once. Cold-fetch
// continuations and epoch flushes are scheduled on per-site shard clocks, so
// any drift between the sequential and sharded cores shows up here bit-loud.
func TestParallelSkewedPartialReplication(t *testing.T) {
	cfg := hybrid.DefaultConfig()
	cfg.Seed = 80085
	cfg.Warmup = 10
	cfg.Duration = 40
	cfg.ArrivalRatePerSite = 2.0
	cfg.SkewTheta = 0.8
	cfg.CentralHotFraction = 0.5
	cfg.ColdFetchDelay = 0.0137
	cfg.EpochLength = 0.25
	cfg.CaptureHistograms = true
	cfg.SelfCheck = true
	pc := parallelCase{sc: caseStatic(0.3), cfg: cfg, shards: 4}
	seq, par := runParallelCase(t, pc)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel (shards=%d) diverged from sequential on the skewed partial-replication config\n%s\nseq: %+v\npar: %+v",
			pc.shards, repro(pc.sc.label, pc.cfg), seq, par)
	}
	if seq.ColdFetches == 0 || seq.Completed == 0 {
		t.Fatalf("skewed differential is vacuous: coldFetches=%d completed=%d\n%s",
			seq.ColdFetches, seq.Completed, repro(pc.sc.label, pc.cfg))
	}
}

// TestParallelSequential1000Sites pins the differential gate at the
// scale-out operating point: 1000 sites on a handful of shards — the
// contiguous-block placement with many sites per shard, which the randomized
// matrix above (2..16 sites) never reaches — with the shared hardware scaled
// in proportion as in the cmd/hybridsim scale1000 preset. The horizon is
// deliberately tiny; at this width the run still crosses every code path
// (shipping, authentication, update propagation) thousands of times.
func TestParallelSequential1000Sites(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-site differential is a long test")
	}
	cfg := hybrid.DefaultConfig()
	cfg.Seed = 1000_1000
	cfg.Sites = 1000
	cfg.CentralMIPS = 1500
	cfg.Lockspace = 3_276_800
	cfg.Warmup = 1
	cfg.Duration = 4
	cfg.CaptureHistograms = true
	pc := parallelCase{sc: caseMinAverage(), cfg: cfg, shards: 4}
	seq, par := runParallelCase(t, pc)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel (shards=%d) diverged from sequential at 1000 sites\n%s",
			pc.shards, repro(pc.sc.label, pc.cfg))
	}
	if seq.Completed == 0 {
		t.Fatal("1000-site differential completed nothing")
	}
}

// TestParallelRaceStress is the race-detector workout: a saturated 64-site
// run through the parallel core with the invariant auditor on, sized so the
// shard workers genuinely interleave. The Group's deadlock watchdog (10s
// wall) turns any synchronization hang into a loud panic instead of a CI
// timeout. The dedicated CI job runs this package under -race.
func TestParallelRaceStress(t *testing.T) {
	cfg := hybrid.DefaultConfig()
	cfg.Seed = 64064
	cfg.Sites = 64
	cfg.Shards = 8
	cfg.Warmup = 5
	cfg.Duration = 40
	cfg.ArrivalRatePerSite = 3.0 // near the central complex's saturation
	cfg.SelfCheck = true
	cfg.SeriesBucket = 5
	cfg.CaptureHistograms = true

	s, err := routing.NewAdaptiveStatic(cfg.ModelParams(), cfg.PLocal, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	e, err := hybrid.New(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	r := e.Run()
	if !e.Parallel() {
		t.Fatal("stress config did not engage the parallel core")
	}
	if r.Completed == 0 {
		t.Fatalf("saturated run completed nothing\n%s", repro("adaptive-static", cfg))
	}
}
