package simtest

import (
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
)

// FuzzConfig throws arbitrary configurations at the full engine: every
// input must either be rejected by Validate with an error or run to the
// horizon with the engine's self-checks enabled and the conservation
// identity intact. No input may panic or hang.
//
// The only narrowing applied is magnitude, not shape: horizons, rates, and
// per-transaction work are folded into small ranges so each accepted case
// simulates in milliseconds. Sign, NaN, ±Inf, zero values, and enum garbage
// all pass through untouched — rejecting those is Validate's job, and the
// NaN gate there exists because this fuzzer found the hole.
func FuzzConfig(f *testing.F) {
	d := hybrid.DefaultConfig()
	f.Add(int(d.Sites), d.LocalMIPS, d.CentralMIPS, d.CommDelay, 1.0,
		d.PLocal, d.PWrite, int(d.CallsPerTxn), uint32(d.Lockspace),
		0.0, uint8(d.Feedback), 0.0, uint64(1), uint8(0))
	f.Add(3, 1.0, 15.0, 0.0, 2.5, 1.0, 0.5, 4, uint32(64),
		0.1, uint8(3), 0.5, uint64(7), uint8(2))
	f.Add(1, 0.5, 1.0, 1.5, 0.25, 0.0, 1.0, 1, uint32(1),
		0.0, uint8(2), 0.0, uint64(42), uint8(4))

	f.Fuzz(func(t *testing.T, sites int, localMIPS, centralMIPS, commDelay, rate,
		pLocal, pWrite float64, calls int, lockspace uint32,
		restartDelay float64, feedback uint8, batchWindow float64,
		seed uint64, strategyPick uint8) {

		cfg := hybrid.DefaultConfig()
		cfg.Sites = sites % 16
		cfg.LocalMIPS = localMIPS
		cfg.CentralMIPS = centralMIPS
		cfg.CommDelay = commDelay
		cfg.ArrivalRatePerSite = rate
		cfg.PLocal = pLocal
		cfg.PWrite = pWrite
		cfg.CallsPerTxn = calls % 32
		cfg.Lockspace = lockspace % 4096
		cfg.RestartDelay = restartDelay
		cfg.Feedback = hybrid.Feedback(feedback)
		cfg.UpdateBatchWindow = batchWindow
		cfg.Seed = seed
		cfg.Warmup = 2
		cfg.Duration = 10
		cfg.SelfCheck = true

		// Magnitude folding only where unbounded values mean unbounded
		// work, never where they mean invalid shape.
		if cfg.ArrivalRatePerSite > 50 {
			cfg.ArrivalRatePerSite = 50
		}
		if cfg.CommDelay > 100 {
			cfg.CommDelay = 100
		}
		if cfg.RestartDelay > 100 {
			cfg.RestartDelay = 100
		}
		if cfg.UpdateBatchWindow > 100 {
			cfg.UpdateBatchWindow = 100
		}

		var strat routing.Strategy
		switch strategyPick % 4 {
		case 0:
			strat = routing.AlwaysLocal{}
		case 1:
			strat = routing.NewStatic(0.5, seed)
		case 2:
			strat = routing.QueueLength{}
		case 3:
			strat = routing.QueueThreshold{Theta: 0.25}
		}

		e, err := hybrid.New(cfg, strat)
		if err != nil {
			return // rejected cleanly — fine
		}
		r := e.Run()

		if got := r.Completed + r.InSystemAtEnd + r.InFlightShip + r.InFlightReply; got != r.Generated {
			t.Errorf("conservation violated: generated %d, accounted %d\n%s",
				r.Generated, got, repro("fuzz", cfg))
		}
	})
}

// FuzzWorkloadConfig fuzzes the PR-10 workload-shape knobs — skew exponent,
// central fragment fraction, cold-fetch delay, epoch length — against the
// full engine, together with the propagation-mode interaction (epoch vs.
// batch window are mutually exclusive; Validate must reject the pair, never
// a run). As with FuzzConfig: NaN, ±Inf, negatives, and out-of-range values
// all pass through untouched so the negated-range guards in Validate stay
// honest, and only magnitudes that mean unbounded work are folded.
func FuzzWorkloadConfig(f *testing.F) {
	d := hybrid.DefaultConfig()
	f.Add(0.0, d.CentralHotFraction, 0.0, 0.0, 0.0, 2.0, uint64(1), uint8(0))
	f.Add(0.8, 0.5, 0.05, 0.25, 0.0, 2.0, uint64(7), uint8(1))
	f.Add(0.99, 0.0, 1.0, 0.0, 0.5, 1.0, uint64(42), uint8(2))
	f.Add(0.5, 1.0, 0.0, 0.1, 0.1, 1.5, uint64(3), uint8(3)) // both modes set: must be rejected

	f.Fuzz(func(t *testing.T, skewTheta, hotFraction, coldFetchDelay,
		epochLength, batchWindow, rate float64, seed uint64, strategyPick uint8) {

		cfg := hybrid.DefaultConfig()
		cfg.SkewTheta = skewTheta
		cfg.CentralHotFraction = hotFraction
		cfg.ColdFetchDelay = coldFetchDelay
		cfg.EpochLength = epochLength
		cfg.UpdateBatchWindow = batchWindow
		cfg.ArrivalRatePerSite = rate
		cfg.Seed = seed
		cfg.Warmup = 2
		cfg.Duration = 10
		cfg.SelfCheck = true

		// Magnitude folding only where unbounded values mean unbounded work:
		// a huge fetch delay or epoch just parks events far in the future.
		if cfg.ArrivalRatePerSite > 50 {
			cfg.ArrivalRatePerSite = 50
		}
		if cfg.ColdFetchDelay > 100 {
			cfg.ColdFetchDelay = 100
		}
		if cfg.EpochLength > 100 {
			cfg.EpochLength = 100
		}
		if cfg.UpdateBatchWindow > 100 {
			cfg.UpdateBatchWindow = 100
		}

		var strat routing.Strategy
		switch strategyPick % 4 {
		case 0:
			strat = routing.AlwaysLocal{}
		case 1:
			strat = routing.NewStatic(0.5, seed)
		case 2:
			strat = routing.QueueLength{}
		case 3:
			strat = routing.QueueThreshold{Theta: 0.25}
		}

		e, err := hybrid.New(cfg, strat)
		if err != nil {
			return // rejected cleanly — fine
		}
		if cfg.EpochLength > 0 && cfg.UpdateBatchWindow > 0 {
			t.Errorf("mutually exclusive propagation modes accepted (epoch %g, window %g)\n%s",
				cfg.EpochLength, cfg.UpdateBatchWindow, repro("fuzz-workload", cfg))
		}
		r := e.Run()

		if got := r.Completed + r.InSystemAtEnd + r.InFlightShip + r.InFlightReply; got != r.Generated {
			t.Errorf("conservation violated: generated %d, accounted %d\n%s",
				r.Generated, got, repro("fuzz-workload", cfg))
		}
	})
}
