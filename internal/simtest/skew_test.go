package simtest

import (
	"reflect"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/runner"
)

// skewedConfig is the standard skewed + partial-replication operating point
// of this suite: strong per-site affinity, half the partition centrally
// resident, a visible fetch delay, and epoch-batched propagation — every new
// mechanism of DESIGN.md §16 exercised at once.
func skewedConfig() hybrid.Config {
	cfg := baseConfig()
	cfg.SkewTheta = 0.8
	cfg.CentralHotFraction = 0.5
	cfg.ColdFetchDelay = 0.05
	cfg.EpochLength = 0.25
	return cfg
}

// TestSkewReplicationDegeneracies pins the degenerate settings of the skew,
// replication, and epoch knobs against the plain engine, bit for bit. The
// relations (ISSUE/DESIGN.md §16):
//
//   - SkewTheta = 0 with full replication must reproduce the uniform engine
//     exactly, whatever the (then-unreachable) fetch delay is set to. The
//     draw-level half of this relation — the θ=0 generator emitting the
//     uniform generator's exact sequence — is pinned in internal/workload;
//     this is the run-level half over genuinely different configurations.
//   - ColdFetchDelay = 0 under partial replication must leave every timing
//     and every counter untouched except the ColdFetches count itself: the
//     zero-delay fetch proceeds inline, so no event order can shift.
//   - EpochLength > 0 with nothing to propagate must be indistinguishable
//     from the immediate path (EpochLength = 0): the epoch machinery may not
//     emit spurious flush messages or consume randomness.
//
// Equal sample paths mean every field of the Result matches exactly, not
// within a tolerance.
func TestSkewReplicationDegeneracies(t *testing.T) {
	base := baseConfig()
	base.ArrivalRatePerSite = 2.0

	pairs := []struct {
		name                 string
		degenerate           func(*hybrid.Config)
		canonical            func(*hybrid.Config)
		ignoreColdFetches    bool
		wantColdFetchesInDeg bool
	}{
		{
			name: "skew zero, full replication is the uniform engine",
			degenerate: func(c *hybrid.Config) {
				c.SkewTheta = 0
				c.CentralHotFraction = 1
				c.ColdFetchDelay = 0.75 // unreachable: no element is cold
				c.EpochLength = 0
			},
			canonical: func(c *hybrid.Config) {},
		},
		{
			name: "zero-delay cold fetch changes only the counter",
			degenerate: func(c *hybrid.Config) {
				c.CentralHotFraction = 0.25
				c.ColdFetchDelay = 0
			},
			canonical:            func(c *hybrid.Config) {},
			ignoreColdFetches:    true,
			wantColdFetchesInDeg: true,
		},
		{
			name: "epoch flush is inert without updates",
			degenerate: func(c *hybrid.Config) {
				c.PWrite = 0
				c.EpochLength = 2.5
			},
			canonical: func(c *hybrid.Config) {
				c.PWrite = 0
				c.EpochLength = 0
			},
		},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			sc := caseStatic(0.3) // partial shipping keeps the central path busy
			cfgA, cfgB := base, base
			p.degenerate(&cfgA)
			p.canonical(&cfgB)
			a := sweepResults(t, sc, cfgA, []float64{cfgA.ArrivalRatePerSite}, 1)[0][0]
			b := sweepResults(t, sc, cfgB, []float64{cfgB.ArrivalRatePerSite}, 1)[0][0]
			if p.wantColdFetchesInDeg && a.ColdFetches == 0 {
				t.Errorf("no cold fetches under partial replication — degeneracy check is vacuous\n%s",
					repro(sc.label, cfgA))
			}
			if p.ignoreColdFetches {
				a.ColdFetches, b.ColdFetches = 0, 0
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s: results differ\n degenerate: %+v\n canonical:  %+v\n%s",
					p.name, a, b, repro(sc.label, cfgA))
			}
		})
	}
}

// TestSkewedConservationAndLittle re-runs the two global accounting laws at
// the high-skew operating point: transaction conservation at the horizon and
// Little's law on every scope must survive hot-spot contention, cold-fetch
// stalls in the central holding phase, and epoch-deferred propagation — none
// of those mechanisms creates or destroys transactions, and the fetch delay
// is inside the residence time both N and λR measure.
func TestSkewedConservationAndLittle(t *testing.T) {
	cfg := skewedConfig()
	cfg.ArrivalRatePerSite = 2.0
	cfg.Seed = runner.DeriveSeed(cfg.Seed, "skew/conservation", 0, 0)
	sc := caseStatic(0.3)

	var o *littleObserver
	tasks := []runner.Task{{
		Label: "skewed conservation",
		Cfg:   cfg,
		Make:  sc.make,
		Prepare: func(e *hybrid.Engine) {
			o = newLittleObserver(cfg.Sites)
			e.Subscribe(o)
		},
	}}
	results, err := runner.Run(tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]

	if got := r.Completed + r.InSystemAtEnd + r.InFlightShip + r.InFlightReply; got != r.Generated {
		t.Errorf("conservation violated under skew: generated %d, accounted %d\n%s",
			r.Generated, got, repro(sc.label, cfg))
	}
	if r.Generated == 0 || r.Completed == 0 {
		t.Errorf("vacuous skewed run: generated %d completed %d\n%s",
			r.Generated, r.Completed, repro(sc.label, cfg))
	}
	if r.ColdFetches == 0 {
		t.Errorf("no cold fetches at hot fraction %g — partial replication inactive\n%s",
			cfg.CentralHotFraction, repro(sc.label, cfg))
	}

	for _, chk := range o.checks(cfg.Warmup + cfg.Duration) {
		if chk.N < littleMinN && chk.LambdaR < littleMinN {
			continue
		}
		if gap := chk.relGap(); gap > littleTolerance {
			t.Errorf("scope %s: N=%.4f λR=%.4f (gap %.1f%%)\n%s",
				chk.Scope, chk.N, chk.LambdaR, 100*gap, repro(sc.label, cfg))
		}
	}
}

// TestSkewRaisesHomeContention is the qualitative signature the Zipf
// generator exists to produce: with references piled on each site's
// partition head, local lock conflicts (and hence local deadlock aborts)
// must be far more frequent than under uniform access at the same load.
func TestSkewRaisesHomeContention(t *testing.T) {
	cfg := baseConfig()
	cfg.ArrivalRatePerSite = 2.0
	cfg.PWrite = 0.4
	sc := caseNone()

	uniform := sweepResults(t, sc, cfg, []float64{cfg.ArrivalRatePerSite}, 1)[0][0]
	cfgS := cfg
	cfgS.SkewTheta = 0.9
	skewed := sweepResults(t, sc, cfgS, []float64{cfgS.ArrivalRatePerSite}, 1)[0][0]

	if skewed.AbortsDeadlockLocal <= uniform.AbortsDeadlockLocal {
		t.Errorf("skew θ=%g did not raise local deadlocks: %d vs uniform %d\n%s",
			cfgS.SkewTheta, skewed.AbortsDeadlockLocal, uniform.AbortsDeadlockLocal,
			repro(sc.label, cfgS))
	}
	if skewed.MeanRT <= uniform.MeanRT {
		t.Errorf("skew θ=%g did not raise mean RT: %.4f vs uniform %.4f\n%s",
			cfgS.SkewTheta, skewed.MeanRT, uniform.MeanRT, repro(sc.label, cfgS))
	}
}
