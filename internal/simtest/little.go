package simtest

import (
	"fmt"

	"hybriddb/internal/hybrid/obs"
)

// flowAcc integrates one scope's occupancy over the measurement window and
// tallies its arrival and completion flows: everything Little's law needs.
// Occupancy is tracked from time zero (warmup arrivals are residents too);
// the time integral, arrival counts, and response-time sums accumulate only
// inside the window.
type flowAcc struct {
	n      int     // current occupancy
	lastAt float64 // last time the area integral was advanced
	area   float64 // ∫ n dt over the window so far

	arrivals uint64  // in-window arrivals to the scope
	rtSum    float64 // sum of residence times of in-window departures
	rtCount  uint64  // in-window departures
}

func (a *flowAcc) advance(at float64) {
	a.area += float64(a.n) * (at - a.lastAt)
	a.lastAt = at
}

// littleObserver measures N, λ, and R per scope over a run, subscribed on
// the engine's observer bus. Scopes:
//
//   - system: every transaction from admission to completion notification;
//   - one per local site: class A transactions routed locally, admission to
//     local commit;
//   - central: shipped class A and class B transactions, admission to reply
//     delivery at the origin — the central complex plus its network legs,
//     which is exactly the subsystem whose response time the paper's
//     R_central measures.
//
// Little's law (N = λ·R) must hold on each scope over a stationary window;
// the checks method evaluates it.
type littleObserver struct {
	started  bool
	winStart float64

	sys     flowAcc
	central flowAcc
	sites   []flowAcc
}

func newLittleObserver(sites int) *littleObserver {
	return &littleObserver{sites: make([]flowAcc, sites)}
}

func (o *littleObserver) enter(a *flowAcc, at float64) {
	if o.started {
		a.advance(at)
		a.arrivals++
	}
	a.n++
}

func (o *littleObserver) leave(a *flowAcc, at, rt float64) {
	if o.started {
		a.advance(at)
		a.rtSum += rt
		a.rtCount++
	}
	a.n--
}

// OnEvent implements obs.Observer.
func (o *littleObserver) OnEvent(ev obs.Event) {
	switch ev.Kind {
	case obs.MeasureStart:
		o.started = true
		o.winStart = ev.At
		o.sys.lastAt = ev.At
		o.central.lastAt = ev.At
		for i := range o.sites {
			o.sites[i].lastAt = ev.At
		}
	case obs.TxnArrive:
		o.enter(&o.sys, ev.At)
		if ev.Shipped {
			o.enter(&o.central, ev.At)
		} else {
			o.enter(&o.sites[ev.Site], ev.At)
		}
	case obs.TxnLocalCommit:
		o.leave(&o.sys, ev.At, ev.Value)
		o.leave(&o.sites[ev.Site], ev.At, ev.Value)
	case obs.TxnReply:
		o.leave(&o.sys, ev.At, ev.Value)
		o.leave(&o.central, ev.At, ev.Value)
	}
}

// littleCheck is one scope's evaluated law: N̄ from the occupancy integral
// against λ·R̄ from the measured flows.
type littleCheck struct {
	Scope       string
	N           float64 // time-averaged occupancy over the window
	LambdaR     float64 // (arrivals/window) · mean residence time
	Arrivals    uint64
	Completions uint64
}

// relGap returns |N − λR| / max(N, λR), or 0 when both sides are ~0.
func (c littleCheck) relGap() float64 {
	hi := c.N
	if c.LambdaR > hi {
		hi = c.LambdaR
	}
	if hi < 1e-9 {
		return 0
	}
	d := c.N - c.LambdaR
	if d < 0 {
		d = -d
	}
	return d / hi
}

// checks closes every scope's integral at the horizon and evaluates
// Little's law on each. Call after the run completes.
func (o *littleObserver) checks(horizon float64) []littleCheck {
	window := horizon - o.winStart
	if !o.started || window <= 0 {
		return nil
	}
	eval := func(scope string, a *flowAcc) littleCheck {
		a.advance(horizon)
		c := littleCheck{
			Scope:       scope,
			N:           a.area / window,
			Arrivals:    a.arrivals,
			Completions: a.rtCount,
		}
		if a.rtCount > 0 {
			lambda := float64(a.arrivals) / window
			c.LambdaR = lambda * (a.rtSum / float64(a.rtCount))
		}
		return c
	}
	out := []littleCheck{eval("system", &o.sys), eval("central", &o.central)}
	for i := range o.sites {
		out = append(out, eval(siteScope(i), &o.sites[i]))
	}
	return out
}

func siteScope(i int) string { return fmt.Sprintf("site-%02d", i) }
