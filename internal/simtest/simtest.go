// Package simtest is the standing correctness harness of the reproduction:
// machine-checked invariants over full simulation runs, a model↔simulation
// differential gate with versioned tolerance bands, and native fuzz targets.
// It exists so the queueing-theoretic properties the paper argues informally
// ("simulation estimates are shown to support this methodology", §3.1) are
// enforced on every change — a refactor of the event kernel, the lock
// manager, a routing policy, or the fixed-point solver that silently bends
// any of them fails a test here with a one-line deterministic repro.
//
// Three pillars (DESIGN.md §11 catalogs every relation):
//
//   - Metamorphic/property suite: Little's law at every site scope,
//     response-time monotonicity in arrival rate, policy-dominance relations
//     from the paper, conservation laws at the horizon, abort-cause/topology
//     consistency. All runs go through internal/runner with seeds that are a
//     pure function of the test inputs.
//   - Differential gate: the ModelValidation table promoted to an enforced
//     test — model vs. simulation response times and utilizations must agree
//     within the bands pinned in testdata/tolerances.json at every grid
//     point with ρ < 0.7.
//   - Native fuzzing: FuzzConfig here, FuzzHeap in internal/sim, FuzzLock in
//     internal/lock; each runs for 10s per CI pass (make fuzz-smoke).
package simtest

import (
	"fmt"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
	"hybriddb/internal/runner"
)

// repro renders the one-line deterministic reproduction of a run: the seed
// plus every configuration field a failure could depend on. Every invariant
// failure in this package prints one, so a red CI line can be replayed
// locally with a two-line main().
func repro(strategy string, cfg hybrid.Config) string {
	return fmt.Sprintf(
		"repro: strategy=%s seed=%d rate/site=%g sites=%d warmup=%g duration=%g commDelay=%g pLocal=%g pWrite=%g calls=%d lockspace=%d feedback=%s skew=%g hotFrac=%g coldFetch=%g epoch=%g",
		strategy, cfg.Seed, cfg.ArrivalRatePerSite, cfg.Sites, cfg.Warmup,
		cfg.Duration, cfg.CommDelay, cfg.PLocal, cfg.PWrite, cfg.CallsPerTxn,
		cfg.Lockspace, cfg.Feedback, cfg.SkewTheta, cfg.CentralHotFraction,
		cfg.ColdFetchDelay, cfg.EpochLength)
}

// baseConfig is the harness's standard operating configuration: the paper's
// §4.1 parameters with a measurement window long enough (500 simulated
// seconds) that boundary effects sit far below every tolerance used here.
func baseConfig() hybrid.Config {
	cfg := hybrid.DefaultConfig()
	cfg.Warmup = 100
	cfg.Duration = 500
	return cfg
}

// strategyCase names a policy under test together with its constructor.
type strategyCase struct {
	label string
	make  func(cfg hybrid.Config) (routing.Strategy, error)
}

// caseNone is the no-load-sharing baseline.
func caseNone() strategyCase {
	return strategyCase{label: "none", make: func(hybrid.Config) (routing.Strategy, error) {
		return routing.AlwaysLocal{}, nil
	}}
}

// caseStatic ships with fixed probability p.
func caseStatic(p float64) strategyCase {
	return strategyCase{
		label: fmt.Sprintf("static(%.2f)", p),
		make: func(cfg hybrid.Config) (routing.Strategy, error) {
			return routing.NewStatic(p, cfg.Seed^0x1234abcd), nil
		},
	}
}

// caseQueueLength is the send-to-shorter-queue heuristic of §3.2.4.
func caseQueueLength() strategyCase {
	return strategyCase{label: "queue-length", make: func(hybrid.Config) (routing.Strategy, error) {
		return routing.QueueLength{}, nil
	}}
}

// caseThreshold is the tuned queue-length heuristic with threshold theta.
func caseThreshold(theta float64) strategyCase {
	return strategyCase{
		label: fmt.Sprintf("queue-threshold(%+.2f)", theta),
		make: func(hybrid.Config) (routing.Strategy, error) {
			return routing.QueueThreshold{Theta: theta}, nil
		},
	}
}

// caseMinAverage is the paper's best dynamic strategy (§3.2.2, n-in-system
// estimator).
func caseMinAverage() strategyCase {
	return strategyCase{label: "min-average/nis", make: func(cfg hybrid.Config) (routing.Strategy, error) {
		return routing.MinAverage{Params: cfg.ModelParams(), Estimator: routing.FromInSystem}, nil
	}}
}

// sweepResults fans one strategy across the given rates × replications
// through the worker pool and returns results indexed [rate][rep]. Seeds
// follow runner.RunSeed, so every run is a pure function of (base seed,
// label, rate index, replication index) — bit-identical at any parallelism.
func sweepResults(t *testing.T, sc strategyCase, base hybrid.Config, rates []float64, reps int) [][]hybrid.Result {
	t.Helper()
	if reps < 1 {
		reps = 1
	}
	tasks := make([]runner.Task, 0, len(rates)*reps)
	for ri, rate := range rates {
		for rep := 0; rep < reps; rep++ {
			cfg := base
			cfg.ArrivalRatePerSite = rate
			cfg.Seed = runner.RunSeed(base.Seed, sc.label, ri, rep)
			tasks = append(tasks, runner.Task{
				Label: fmt.Sprintf("%s at rate %v rep %d", sc.label, rate, rep),
				Cfg:   cfg,
				Make:  sc.make,
			})
		}
	}
	results, err := runner.Run(tasks, 0)
	if err != nil {
		t.Fatalf("sweep %s: %v", sc.label, err)
	}
	out := make([][]hybrid.Result, len(rates))
	for ri := range rates {
		out[ri] = results[ri*reps : (ri+1)*reps]
	}
	return out
}

// meanOver averages a metric across one point's replications.
func meanOver(runs []hybrid.Result, metric func(hybrid.Result) float64) float64 {
	sum := 0.0
	for _, r := range runs {
		sum += metric(r)
	}
	return sum / float64(len(runs))
}
