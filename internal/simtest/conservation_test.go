package simtest

import (
	"fmt"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/runner"
)

// TestTransactionConservation checks that no transaction is ever lost or
// double-counted: at the horizon, every generated transaction is accounted
// for as completed, still resident at a site or the central complex, or in
// flight on one of the two network legs. The identity must hold exactly —
// for every policy, at light load, past the saturation knee, and for
// multiple seeds — because each transaction moves through the lifecycle
// exactly once regardless of congestion.
func TestTransactionConservation(t *testing.T) {
	cases := []strategyCase{caseNone(), caseStatic(0.5), caseQueueLength(), caseMinAverage()}
	rates := []float64{1.0, 2.5, 3.2} // light, moderate, past the no-sharing knee
	seeds := []uint64{1, 7}

	base := baseConfig()
	var tasks []runner.Task
	var cfgs []hybrid.Config
	var labels []string
	for _, sc := range cases {
		for ri, rate := range rates {
			for _, seed := range seeds {
				cfg := base
				cfg.ArrivalRatePerSite = rate
				cfg.Seed = runner.DeriveSeed(seed, "conservation/"+sc.label, ri, 0)
				tasks = append(tasks, runner.Task{
					Label: fmt.Sprintf("%s at rate %v seed %d", sc.label, rate, seed),
					Cfg:   cfg,
					Make:  sc.make,
				})
				cfgs = append(cfgs, cfg)
				labels = append(labels, sc.label)
			}
		}
	}
	results, err := runner.Run(tasks, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		accounted := r.Completed + r.InSystemAtEnd + r.InFlightShip + r.InFlightReply
		if r.Generated != accounted {
			t.Errorf("%s: generated %d != completed %d + resident %d + shipping %d + replying %d\n%s",
				tasks[i].Label, r.Generated, r.Completed, r.InSystemAtEnd,
				r.InFlightShip, r.InFlightReply, repro(labels[i], cfgs[i]))
		}
		if r.Generated == 0 {
			t.Errorf("%s: no transactions generated — vacuous run\n%s",
				tasks[i].Label, repro(labels[i], cfgs[i]))
		}
	}
}

// contendedConfig shrinks the lockspace and raises the write fraction so
// that deadlocks actually occur within the window — a run with zero aborts
// would make the topology assertions below vacuous.
func contendedConfig() hybrid.Config {
	cfg := baseConfig()
	cfg.ArrivalRatePerSite = 2.0
	cfg.PLocal = 1.0 // pure class A: routing alone decides where work runs
	cfg.Lockspace = 200
	cfg.PWrite = 0.4
	return cfg
}

// TestAbortTopologyNoSharing checks the abort-cause/topology consistency of
// the no-sharing extreme: with PLocal=1 and every transaction executing at
// its home site, the only possible abort cause is a local deadlock. Seize
// aborts, authentication NACKs, invalidation aborts, and central deadlocks
// all require central execution or cross-site authentication; none can
// fire. The network is NOT silent, though: committed local writes still
// propagate asynchronously to the central copy — that flow exists in the
// hybrid architecture regardless of routing.
func TestAbortTopologyNoSharing(t *testing.T) {
	cfg := contendedConfig()
	cfg.Seed = runner.DeriveSeed(cfg.Seed, "topology/none", 0, 0)
	sc := caseNone()
	r := sweepResults(t, sc, cfg, []float64{cfg.ArrivalRatePerSite}, 1)[0][0]

	if r.AbortsDeadlockLocal == 0 {
		t.Errorf("no local deadlocks under contention — topology assertions are vacuous; retune contendedConfig\n%s",
			repro(sc.label, cfg))
	}
	zeros := []struct {
		name string
		v    uint64
	}{
		{"AbortsDeadlockCentral", r.AbortsDeadlockCentral},
		{"AbortsLocalSeized", r.AbortsLocalSeized},
		{"AbortsCentralNACK", r.AbortsCentralNACK},
		{"AbortsCentralInval", r.AbortsCentralInval},
		{"CompletedShippedA", r.CompletedShippedA},
		{"CompletedClassB", r.CompletedClassB},
		{"AuthRounds", r.AuthRounds},
	}
	for _, z := range zeros {
		if z.v != 0 {
			t.Errorf("%s = %d under pure-local execution, want 0\n%s",
				z.name, z.v, repro(sc.label, cfg))
		}
	}
	if r.MessagesSent == 0 {
		t.Errorf("no update-propagation messages from committed local writes\n%s",
			repro(sc.label, cfg))
	}
}

// TestAbortTopologyAllShipped checks the opposite extreme: static(1.0) ships
// every class A transaction, so nothing executes at a local site — local
// deadlocks, seize aborts, authentication NACKs, and invalidations are all
// impossible, and the only possible abort cause is a central deadlock.
func TestAbortTopologyAllShipped(t *testing.T) {
	cfg := contendedConfig()
	// Shipping every site's full load into one complex multiplies the
	// central arrival rate by the site count; 2.0/site would saturate it and
	// leave the window without a single completion. 0.8/site keeps the
	// complex busy (enough for deadlocks against the shrunken lockspace)
	// but stable.
	cfg.ArrivalRatePerSite = 0.8
	cfg.Seed = runner.DeriveSeed(cfg.Seed, "topology/ship-all", 0, 0)
	sc := caseStatic(1.0)
	r := sweepResults(t, sc, cfg, []float64{cfg.ArrivalRatePerSite}, 1)[0][0]

	if r.AbortsDeadlockCentral == 0 {
		t.Errorf("no central deadlocks with all load shipped into one complex — topology assertions are vacuous; retune contendedConfig\n%s",
			repro(sc.label, cfg))
	}
	zeros := []struct {
		name string
		v    uint64
	}{
		{"AbortsDeadlockLocal", r.AbortsDeadlockLocal},
		{"AbortsLocalSeized", r.AbortsLocalSeized},
		{"AbortsCentralNACK", r.AbortsCentralNACK},
		{"AbortsCentralInval", r.AbortsCentralInval},
		{"CompletedLocalA", r.CompletedLocalA},
	}
	for _, z := range zeros {
		if z.v != 0 {
			t.Errorf("%s = %d with every transaction shipped, want 0\n%s",
				z.name, z.v, repro(sc.label, cfg))
		}
	}
	if r.CompletedShippedA == 0 {
		t.Errorf("no shipped completions — run is vacuous\n%s", repro(sc.label, cfg))
	}
}
