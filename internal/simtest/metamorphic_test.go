package simtest

import (
	"fmt"
	"reflect"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/model"
	"hybriddb/internal/routing"
)

// monotoneSlack is the permitted downward wiggle when checking that mean
// response time is non-decreasing in arrival rate: successive points may
// undercut the running maximum by at most this relative fraction. With three
// replications per point the simulation noise on mean RT sits around 1–2%,
// so 5% passes honest runs and still catches any sign error in the load
// dependence.
const monotoneSlack = 0.05

// dominanceSlack is the permitted relative excess of the dominating policy:
// static* (the analytically optimized static policy) may exceed the
// no-sharing baseline's mean RT by at most this fraction at any sweep point.
// At low load the optimizer picks p_ship=0 and the two policies share the
// sample path exactly; at high load static* wins by integer factors, so the
// slack only absorbs replication noise in the crossover region.
const dominanceSlack = 0.05

// caseStaticOptimal ships with the §3.1 analytically optimal probability for
// the configured arrival rate.
func caseStaticOptimal() strategyCase {
	return strategyCase{label: "static*", make: func(cfg hybrid.Config) (routing.Strategy, error) {
		opt, err := model.OptimalShipFraction(cfg.ModelInput(0), 0.01)
		if err != nil {
			return nil, fmt.Errorf("static optimization: %w", err)
		}
		return routing.NewStatic(opt.PShip, cfg.Seed^0x5bd1e995), nil
	}}
}

func meanRT(r hybrid.Result) float64 { return r.MeanRT }

// TestResponseTimeMonotoneInRate checks the most basic metamorphic relation
// of the queueing system: for policies whose routing decision does not adapt
// to congestion (no sharing, fixed-probability sharing), pushing the arrival
// rate up cannot make the mean response time go down.
func TestResponseTimeMonotoneInRate(t *testing.T) {
	const reps = 3
	base := baseConfig()
	for _, sc := range []struct {
		strategyCase
		rates []float64
	}{
		// Rates stop short of each policy's saturation knee: past it the
		// measurement window truncates the longest sojourns and the sampled
		// mean is no longer a faithful estimate of the (still monotone)
		// steady-state mean.
		{caseNone(), []float64{0.5, 1.25, 2.0, 2.6}},
		{caseStatic(0.3), []float64{0.5, 1.25, 2.0, 2.75}},
	} {
		results := sweepResults(t, sc.strategyCase, base, sc.rates, reps)
		highWater := 0.0
		for ri, rate := range sc.rates {
			rt := meanOver(results[ri], meanRT)
			if rt < highWater*(1-monotoneSlack) {
				cfg := base
				cfg.ArrivalRatePerSite = rate
				t.Errorf("%s: mean RT %.4f at rate %v undercuts %.4f at a lower rate\n%s",
					sc.label, rt, rate, highWater, repro(sc.label, cfg))
			}
			if rt > highWater {
				highWater = rt
			}
		}
	}
}

// TestOptimalStaticDominatesNone checks the paper's §3.1 claim that the
// analytically tuned static policy never loses to doing nothing: at every
// sweep point, static*'s mean response time is at most the no-sharing
// baseline's (within replication noise).
func TestOptimalStaticDominatesNone(t *testing.T) {
	const reps = 3
	rates := []float64{0.5, 1.0, 1.5, 2.0, 2.5, 2.8}
	base := baseConfig()

	none := sweepResults(t, caseNone(), base, rates, reps)
	star := sweepResults(t, caseStaticOptimal(), base, rates, reps)

	for ri, rate := range rates {
		rtNone := meanOver(none[ri], meanRT)
		rtStar := meanOver(star[ri], meanRT)
		if rtStar > rtNone*(1+dominanceSlack) {
			cfg := base
			cfg.ArrivalRatePerSite = rate
			t.Errorf("rate %v: static* mean RT %.4f exceeds none %.4f\n%s",
				rate, rtStar, rtNone, repro("static*", cfg))
		}
	}
}

// TestQueueThresholdDegeneracies pins the queue-threshold policy's two exact
// degeneracies against its neighbors, bit for bit. The policy ships when
// ρ_local − ρ_central > θ with ρ = q/(q+1), so:
//
//   - θ = 0 ships iff the local queue is strictly longer — precisely the
//     plain queue-length heuristic. (ISSUE.md says θ=1 degenerates to
//     queue-length; that is off by the ρ transform — ρ ∈ [0,1) means θ=1 can
//     never be exceeded. The correct degeneracy points are pinned here.)
//   - θ ≥ 1 never ships — precisely the no-sharing baseline.
//
// Equal configurations and seeds must therefore yield identical sample
// paths, so every counter in the Result matches exactly, not within a
// tolerance.
func TestQueueThresholdDegeneracies(t *testing.T) {
	base := baseConfig()
	pairs := []struct {
		name        string
		degenerate  strategyCase
		canonical   strategyCase
		ratePerSite float64
	}{
		{"theta=0 is queue-length", caseThreshold(0), caseQueueLength(), 2.0},
		{"theta=1 is none", caseThreshold(1), caseNone(), 2.0},
		{"theta=5 is none", caseThreshold(5), caseNone(), 1.0},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			cfg := base
			cfg.ArrivalRatePerSite = p.ratePerSite
			a := sweepResults(t, p.degenerate, cfg, []float64{p.ratePerSite}, 1)[0][0]
			b := sweepResults(t, p.canonical, cfg, []float64{p.ratePerSite}, 1)[0][0]
			// The strategy name is the one field allowed to differ.
			a.Strategy, b.Strategy = "", ""
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s: results differ\n degenerate: %+v\n canonical:  %+v\n%s",
					p.name, a, b, repro(p.degenerate.label, cfg))
			}
		})
	}
}
