package simtest

import (
	"fmt"
	"sync"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/runner"
)

// littleTolerance bounds the relative gap |N − λR| / max(N, λR) per scope.
// Over a 500 s stationary window the only sources of gap are boundary
// effects (transactions straddling the window edges), a few parts per
// thousand here; 10% leaves room for the noisier per-site scopes while still
// catching any real accounting bug (a leaked transaction, a double-counted
// completion, a clock skew between arrival and completion stamps).
const littleTolerance = 0.10

// littleMinN skips scopes with almost no occupancy: a site that averaged
// 0.02 resident transactions has too few samples for a relative bound to be
// meaningful, and the system/central scopes already cover its flows.
const littleMinN = 0.05

// TestLittlesLaw drives representative policies at low and moderate load and
// enforces N = λ·R on every scope: the whole system, the central subsystem,
// and each of the ten local sites. The observer integrates occupancy
// directly from bus events, so the check is independent of the metrics
// observer's accounting — the two would not agree if either lied.
func TestLittlesLaw(t *testing.T) {
	cases := []struct {
		sc   strategyCase
		rate float64
	}{
		{caseNone(), 1.0},
		{caseNone(), 2.0},
		{caseStatic(0.5), 2.0},
		{caseQueueLength(), 1.5},
		{caseMinAverage(), 2.5},
	}

	base := baseConfig()
	obsv := make([]*littleObserver, len(cases))
	tasks := make([]runner.Task, len(cases))
	var mu sync.Mutex
	for i, c := range cases {
		cfg := base
		cfg.ArrivalRatePerSite = c.rate
		cfg.Seed = runner.DeriveSeed(base.Seed, "little/"+c.sc.label, i, 0)
		i := i
		tasks[i] = runner.Task{
			Label: fmt.Sprintf("%s at rate %v", c.sc.label, c.rate),
			Cfg:   cfg,
			Make:  c.sc.make,
			Prepare: func(e *hybrid.Engine) {
				o := newLittleObserver(cfg.Sites)
				e.Subscribe(o)
				mu.Lock()
				obsv[i] = o
				mu.Unlock()
			},
		}
	}
	if _, err := runner.Run(tasks, 0); err != nil {
		t.Fatal(err)
	}

	for i, c := range cases {
		cfg := tasks[i].Cfg
		horizon := cfg.Warmup + cfg.Duration
		for _, chk := range obsv[i].checks(horizon) {
			if chk.N < littleMinN && chk.LambdaR < littleMinN {
				continue
			}
			if gap := chk.relGap(); gap > littleTolerance {
				t.Errorf("%s at rate %v, scope %s: N=%.4f λR=%.4f (gap %.1f%%, %d arrivals, %d completions)\n%s",
					c.sc.label, c.rate, chk.Scope, chk.N, chk.LambdaR, 100*gap,
					chk.Arrivals, chk.Completions, repro(c.sc.label, cfg))
			}
		}
	}
}

// TestLittlesLawAgreesWithMetrics cross-checks the observer's system-scope
// occupancy flows against the Result the metrics observer assembled from the
// same bus events: in-window completion counts must match exactly, since
// both fold the identical TxnLocalCommit/TxnReply stream.
func TestLittlesLawAgreesWithMetrics(t *testing.T) {
	cfg := baseConfig()
	cfg.ArrivalRatePerSite = 2.0
	cfg.Seed = runner.DeriveSeed(cfg.Seed, "little/metrics-cross", 0, 0)

	var o *littleObserver
	sc := caseStatic(0.5)
	tasks := []runner.Task{{
		Label: "metrics cross-check",
		Cfg:   cfg,
		Make:  sc.make,
		Prepare: func(e *hybrid.Engine) {
			o = newLittleObserver(cfg.Sites)
			e.Subscribe(o)
		},
	}}
	results, err := runner.Run(tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]

	chks := o.checks(cfg.Warmup + cfg.Duration)
	sys := chks[0]
	wantCompletions := r.CompletedLocalA + r.CompletedShippedA + r.CompletedClassB
	if sys.Completions != wantCompletions {
		t.Errorf("system completions %d != metrics window completions %d\n%s",
			sys.Completions, wantCompletions, repro(sc.label, cfg))
	}
	central := chks[1]
	if central.Completions != r.CompletedShippedA+r.CompletedClassB {
		t.Errorf("central completions %d != shipped+classB %d\n%s",
			central.Completions, r.CompletedShippedA+r.CompletedClassB, repro(sc.label, cfg))
	}
	var siteCompletions uint64
	for _, chk := range chks[2:] {
		siteCompletions += chk.Completions
	}
	if siteCompletions != r.CompletedLocalA {
		t.Errorf("summed site completions %d != CompletedLocalA %d\n%s",
			siteCompletions, r.CompletedLocalA, repro(sc.label, cfg))
	}
}
