package queueing

import (
	"math"
	"testing"

	"hybriddb/internal/cpu"
	"hybriddb/internal/exec"
	"hybriddb/internal/rng"
	"hybriddb/internal/sim"
	"hybriddb/internal/stats"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMM1KnownValues(t *testing.T) {
	// lambda=0.5, mu=1: W = 2, L = 1.
	if w := MM1ResponseTime(0.5, 1); !almost(w, 2, 1e-12) {
		t.Errorf("W = %v, want 2", w)
	}
	if l := MM1QueueLength(0.5, 1); !almost(l, 1, 1e-12) {
		t.Errorf("L = %v, want 1", l)
	}
}

func TestMM1Saturation(t *testing.T) {
	if !math.IsInf(MM1ResponseTime(1, 1), 1) {
		t.Error("saturated M/M/1 response not Inf")
	}
	if !math.IsInf(MM1QueueLength(2, 1), 1) {
		t.Error("saturated M/M/1 length not Inf")
	}
}

func TestMD1HalfTheWait(t *testing.T) {
	// Deterministic service halves the queueing delay of M/M/1:
	// Wq(M/D/1) = Wq(M/M/1)/2 at equal rates.
	lambda, mu := 0.8, 1.0
	wqMM1 := MM1ResponseTime(lambda, mu) - 1/mu
	wqMD1 := MD1ResponseTime(lambda, mu) - 1/mu
	if !almost(wqMD1, wqMM1/2, 1e-12) {
		t.Errorf("M/D/1 wait %v, want half of M/M/1 %v", wqMD1, wqMM1)
	}
}

func TestMG1Envelope(t *testing.T) {
	// cs2=0 reproduces M/D/1; cs2=1 reproduces M/M/1.
	lambda, mu := 0.7, 1.0
	if w := MG1ResponseTime(lambda, 1/mu, 0); !almost(w, MD1ResponseTime(lambda, mu), 1e-12) {
		t.Errorf("M/G/1 cs2=0: %v vs M/D/1 %v", w, MD1ResponseTime(lambda, mu))
	}
	if w := MG1ResponseTime(lambda, 1/mu, 1); !almost(w, MM1ResponseTime(lambda, mu), 1e-12) {
		t.Errorf("M/G/1 cs2=1: %v vs M/M/1 %v", w, MM1ResponseTime(lambda, mu))
	}
}

func TestErlangCBounds(t *testing.T) {
	for _, tt := range []struct {
		lambda float64
		c      int
	}{{0.1, 1}, {0.5, 1}, {1.5, 2}, {7, 10}} {
		p := ErlangC(tt.lambda, 1, tt.c)
		if p < 0 || p > 1 {
			t.Errorf("ErlangC(%v,1,%d) = %v out of [0,1]", tt.lambda, tt.c, p)
		}
	}
	// Single server: Erlang C reduces to rho.
	if p := ErlangC(0.6, 1, 1); !almost(p, 0.6, 1e-12) {
		t.Errorf("single-server Erlang C = %v, want 0.6", p)
	}
	// Overloaded: waits with certainty.
	if p := ErlangC(3, 1, 2); p != 1 {
		t.Errorf("overloaded Erlang C = %v, want 1", p)
	}
}

func TestMMcFasterThanMM1AtSameUtilization(t *testing.T) {
	// Two servers at rho=0.8 each beat one server at rho=0.8 with double
	// speed? No — the comparison that must hold: M/M/2 with lambda=1.6,
	// mu=1 beats M/M/1 with lambda=1.6, mu=2 on queueing wait ratios is
	// subtle; assert instead the basic sanity: more servers, less waiting.
	w1 := MMcResponseTime(0.8, 1, 1)
	w2 := MMcResponseTime(0.8, 1, 2)
	if w2 >= w1 {
		t.Errorf("M/M/2 (%v) not faster than M/M/1 (%v) at equal load", w2, w1)
	}
}

func TestInvalidParametersPanic(t *testing.T) {
	cases := []func(){
		func() { MM1ResponseTime(-1, 1) },
		func() { MM1ResponseTime(1, 0) },
		func() { MG1ResponseTime(1, 0, 0) },
		func() { ErlangC(1, 1, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// TestCPUServerMatchesMD1 validates the simulator's CPU substrate against
// theory: Poisson arrivals of fixed-length bursts form an M/D/1 queue, so
// the simulated mean sojourn time must match Pollaczek–Khinchine.
func TestCPUServerMatchesMD1(t *testing.T) {
	const (
		mips         = 1.0
		instructions = 100_000 // 0.1 s deterministic service
		lambda       = 7.0     // rho = 0.7
		horizon      = 20_000.0
	)
	s := sim.New()
	server := cpu.NewServer(exec.Sim(s), mips)
	src := rng.New(99)
	var sojourn stats.Welford

	var arrive func()
	arrive = func() {
		gap := src.Exp(1 / lambda)
		if s.Now()+gap > horizon {
			return
		}
		s.Schedule(gap, func() {
			start := s.Now()
			server.Submit(instructions, func() {
				sojourn.Add(s.Now() - start)
			})
			arrive()
		})
	}
	arrive()
	s.Run()

	mu := 1 / server.ServiceTime(instructions) // 10 per second
	want := MD1ResponseTime(lambda, mu)
	got := sojourn.Mean()
	if sojourn.Count() < 100_000 {
		t.Fatalf("only %d samples", sojourn.Count())
	}
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("simulated M/D/1 sojourn %v, theory %v (rel err %.3f)",
			got, want, math.Abs(got-want)/want)
	}
}

// TestCPUServerUtilizationMatchesOfferedLoad cross-checks the server's busy
// time accounting against rho = lambda/mu.
func TestCPUServerUtilizationMatchesOfferedLoad(t *testing.T) {
	s := sim.New()
	server := cpu.NewServer(exec.Sim(s), 1)
	src := rng.New(7)
	const lambda, instructions, horizon = 4.0, 100_000, 5_000.0

	var arrive func()
	arrive = func() {
		gap := src.Exp(1 / lambda)
		if s.Now()+gap > horizon {
			return
		}
		s.Schedule(gap, func() {
			server.Submit(instructions, func() {})
			arrive()
		})
	}
	arrive()
	s.RunUntil(horizon)
	if got := server.Utilization(); math.Abs(got-0.4) > 0.02 {
		t.Errorf("utilization = %v, want ~0.4", got)
	}
}

func TestMD1QueueLengthLittlesLaw(t *testing.T) {
	lambda, mu := 0.6, 1.0
	l := MD1QueueLength(lambda, mu)
	w := MD1ResponseTime(lambda, mu)
	if !almost(l, lambda*w, 1e-12) {
		t.Errorf("L = %v, lambda*W = %v", l, lambda*w)
	}
	if !math.IsInf(MD1QueueLength(1.5, 1), 1) {
		t.Error("saturated M/D/1 length not Inf")
	}
}

func TestMD1Saturation(t *testing.T) {
	if !math.IsInf(MD1ResponseTime(2, 1), 1) {
		t.Error("saturated M/D/1 response not Inf")
	}
}

func TestMG1Saturation(t *testing.T) {
	if !math.IsInf(MG1ResponseTime(2, 1, 0.5), 1) {
		t.Error("saturated M/G/1 response not Inf")
	}
}

func TestMMcSaturation(t *testing.T) {
	if !math.IsInf(MMcResponseTime(2.5, 1, 2), 1) {
		t.Error("saturated M/M/c response not Inf")
	}
}

func TestMM1QueueLengthSaturated(t *testing.T) {
	if !math.IsInf(MM1QueueLength(1, 1), 1) {
		t.Error("rho=1 queue length not Inf")
	}
}

func TestMMcMatchesMM1WithOneServer(t *testing.T) {
	for _, lambda := range []float64{0.2, 0.5, 0.8} {
		if got, want := MMcResponseTime(lambda, 1, 1), MM1ResponseTime(lambda, 1); !almost(got, want, 1e-9) {
			t.Errorf("M/M/1-as-M/M/c: %v vs %v at lambda %v", got, want, lambda)
		}
	}
}
