// Package queueing provides the classical queueing formulas the analytical
// model builds on (M/M/1, M/D/1, M/M/c) — and, through its tests, validates
// the simulator's CPU server against them: the server's deterministic
// service times under Poisson arrivals form an M/D/1 queue, whose
// Pollaczek–Khinchine waiting time the simulation must match.
package queueing

import (
	"fmt"
	"math"
)

// MM1ResponseTime returns the mean sojourn time of an M/M/1 queue with
// arrival rate lambda and service rate mu. It returns +Inf at or beyond
// saturation.
func MM1ResponseTime(lambda, mu float64) float64 {
	if err := check(lambda, mu); err != nil {
		panic(err)
	}
	if lambda >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - lambda)
}

// MM1QueueLength returns the mean number in system of an M/M/1 queue,
// rho/(1-rho).
func MM1QueueLength(lambda, mu float64) float64 {
	if err := check(lambda, mu); err != nil {
		panic(err)
	}
	rho := lambda / mu
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (1 - rho)
}

// MD1ResponseTime returns the mean sojourn time of an M/D/1 queue
// (deterministic service of duration 1/mu) by Pollaczek–Khinchine:
// W = 1/mu + rho/(2*mu*(1-rho)).
func MD1ResponseTime(lambda, mu float64) float64 {
	if err := check(lambda, mu); err != nil {
		panic(err)
	}
	rho := lambda / mu
	if rho >= 1 {
		return math.Inf(1)
	}
	return 1/mu + rho/(2*mu*(1-rho))
}

// MD1QueueLength returns the mean number in system of an M/D/1 queue by
// Little's law.
func MD1QueueLength(lambda, mu float64) float64 {
	w := MD1ResponseTime(lambda, mu)
	if math.IsInf(w, 1) {
		return math.Inf(1)
	}
	return lambda * w
}

// MG1ResponseTime returns the mean sojourn time of an M/G/1 queue with the
// given service-time mean and squared coefficient of variation cs2
// (cs2 = 0 gives M/D/1, cs2 = 1 gives M/M/1).
func MG1ResponseTime(lambda, meanService, cs2 float64) float64 {
	if lambda < 0 || meanService <= 0 || cs2 < 0 {
		panic(fmt.Sprintf("queueing: invalid M/G/1 parameters (%v, %v, %v)", lambda, meanService, cs2))
	}
	rho := lambda * meanService
	if rho >= 1 {
		return math.Inf(1)
	}
	wq := lambda * meanService * meanService * (1 + cs2) / (2 * (1 - rho))
	return meanService + wq
}

// ErlangC returns the probability an arrival to an M/M/c queue must wait.
func ErlangC(lambda, mu float64, servers int) float64 {
	if err := check(lambda, mu); err != nil {
		panic(err)
	}
	if servers <= 0 {
		panic(fmt.Sprintf("queueing: %d servers", servers))
	}
	a := lambda / mu // offered load in Erlangs
	c := float64(servers)
	if a >= c {
		return 1
	}
	// Sum a^k/k! for k < c, iteratively to avoid overflow.
	sum := 0.0
	term := 1.0
	for k := 0; k < servers; k++ {
		if k > 0 {
			term *= a / float64(k)
		}
		sum += term
	}
	top := term * a / c / (1 - a/c)
	return top / (sum + top)
}

// MMcResponseTime returns the mean sojourn time of an M/M/c queue.
func MMcResponseTime(lambda, mu float64, servers int) float64 {
	pw := ErlangC(lambda, mu, servers)
	c := float64(servers)
	if lambda >= c*mu {
		return math.Inf(1)
	}
	return 1/mu + pw/(c*mu-lambda)
}

func check(lambda, mu float64) error {
	if lambda < 0 || mu <= 0 {
		return fmt.Errorf("queueing: invalid rates lambda=%v mu=%v", lambda, mu)
	}
	return nil
}
