package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// refQueue is a naive sorted-slice reference implementation of the event
// queue: an ordering oracle for the 4-ary heap. Operations are O(n) but
// trivially correct — entries are kept sorted by (at, seq) at all times.
type refQueue struct {
	entries []refEntry
}

type refEntry struct {
	at  float64
	seq uint64
	id  int // test-assigned identity
}

func (q *refQueue) push(at float64, seq uint64, id int) {
	i := sort.Search(len(q.entries), func(i int) bool {
		e := q.entries[i]
		return e.at > at || (e.at == at && e.seq > seq)
	})
	q.entries = append(q.entries, refEntry{})
	copy(q.entries[i+1:], q.entries[i:])
	q.entries[i] = refEntry{at: at, seq: seq, id: id}
}

func (q *refQueue) pop() (refEntry, bool) {
	if len(q.entries) == 0 {
		return refEntry{}, false
	}
	e := q.entries[0]
	q.entries = q.entries[1:]
	return e, true
}

func (q *refQueue) remove(id int) bool {
	for i, e := range q.entries {
		if e.id == id {
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			return true
		}
	}
	return false
}

// TestHeapMatchesReferenceQueue drives long random interleavings of
// Schedule, Cancel, and Step against the reference queue and demands exact
// agreement at every step: same Pending count, same fired identity, same
// fired time, same Cancel outcome. This is the ordering oracle for the
// indexed 4-ary heap and its slot recycling — any divergence in sift logic,
// index maintenance, or generation handling shows up as a mismatch.
func TestHeapMatchesReferenceQueue(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		s := New()
		ref := &refQueue{}

		nextID := 0
		live := make(map[int]Event) // pending events by test identity
		firedID := -1
		makeAction := func(id int) func() { return func() { firedID = id } }

		for op := 0; op < 2000; op++ {
			switch r := rng.Intn(10); {
			case r < 5: // schedule
				delay := float64(rng.Intn(50)) * 0.25
				id := nextID
				nextID++
				ev := s.Schedule(delay, makeAction(id))
				// op is strictly increasing across schedule calls, so it
				// mirrors the simulator's FIFO sequence numbers exactly.
				ref.push(ev.At(), uint64(op)+1, id)
				live[id] = ev
			case r < 7: // cancel a random live event (or a stale handle)
				if len(live) == 0 {
					continue
				}
				ids := make([]int, 0, len(live))
				for id := range live {
					ids = append(ids, id)
				}
				sort.Ints(ids)
				id := ids[rng.Intn(len(ids))]
				got := s.Cancel(live[id])
				want := ref.remove(id)
				if got != want {
					t.Fatalf("trial %d op %d: Cancel(%d) = %v, reference = %v", trial, op, id, got, want)
				}
				delete(live, id)
			default: // step
				firedID = -1
				stepped := s.Step()
				want, ok := ref.pop()
				if stepped != ok {
					t.Fatalf("trial %d op %d: Step = %v, reference nonempty = %v", trial, op, stepped, ok)
				}
				if !stepped {
					continue
				}
				if firedID != want.id {
					t.Fatalf("trial %d op %d: fired event %d, reference says %d", trial, op, firedID, want.id)
				}
				if s.Now() != want.at {
					t.Fatalf("trial %d op %d: clock %v, reference time %v", trial, op, s.Now(), want.at)
				}
				delete(live, want.id)
			}
			if s.Pending() != len(ref.entries) {
				t.Fatalf("trial %d op %d: Pending = %d, reference holds %d", trial, op, s.Pending(), len(ref.entries))
			}
		}

		// Drain: the survivors must come out in exact reference order.
		for {
			firedID = -1
			stepped := s.Step()
			want, ok := ref.pop()
			if stepped != ok {
				t.Fatalf("trial %d drain: Step = %v, reference nonempty = %v", trial, stepped, ok)
			}
			if !stepped {
				break
			}
			if firedID != want.id {
				t.Fatalf("trial %d drain: fired %d, reference says %d", trial, firedID, want.id)
			}
		}
		if s.Pending() != 0 {
			t.Fatalf("trial %d: %d events pending after drain", trial, s.Pending())
		}
	}
}

// TestStaleHandleDetected pins the generation-counter contract: once an
// event fires and its slot is recycled by a newer event, cancelling the old
// handle reports false and leaves the new event untouched.
func TestStaleHandleDetected(t *testing.T) {
	s := New()
	aRan, bRan := false, false
	stale := s.Schedule(1, func() { aRan = true })
	s.RunUntil(1)
	if !aRan {
		t.Fatal("first event did not fire")
	}
	// The freed slot is recycled LIFO, so this reuses A's storage.
	fresh := s.Schedule(1, func() { bRan = true })
	if s.Cancel(stale) {
		t.Fatal("Cancel of a stale handle returned true")
	}
	if s.Pending() != 1 {
		t.Fatalf("stale Cancel disturbed the queue: Pending = %d", s.Pending())
	}
	s.Run()
	if !bRan {
		t.Fatal("recycled-slot event did not fire")
	}
	if s.Cancel(fresh) {
		t.Fatal("Cancel of a fired event returned true")
	}
}

// TestCancelHandleSurvivesRecycleChain checks staleness across several
// recycle generations of the same slot.
func TestCancelHandleSurvivesRecycleChain(t *testing.T) {
	s := New()
	var handles []Event
	for i := 0; i < 5; i++ {
		h := s.Schedule(0, func() {})
		handles = append(handles, h)
		s.Run() // fire it; the slot goes back on the free list
	}
	for i, h := range handles {
		if s.Cancel(h) {
			t.Fatalf("handle %d from a recycled slot cancelled something", i)
		}
	}
}

// TestSteadyStateZeroAllocs pins the headline property: once the slab, free
// list, and heap have grown to the working-set size, Schedule/Step churn
// performs no heap allocations.
func TestSteadyStateZeroAllocs(t *testing.T) {
	s := New()
	action := func() {}
	// Warm the pools past the working set.
	for i := 0; i < 64; i++ {
		s.Schedule(float64(i%7), action)
	}
	s.Run()
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			s.Schedule(float64(i%5), action)
		}
		s.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state Schedule/Run allocated %.1f times per round, want 0", avg)
	}
}

// TestCancelSteadyStateZeroAllocs extends the zero-alloc pin to the
// Schedule/Cancel path.
func TestCancelSteadyStateZeroAllocs(t *testing.T) {
	s := New()
	action := func() {}
	events := make([]Event, 32)
	for i := range events {
		events[i] = s.Schedule(float64(i), action)
	}
	for _, e := range events {
		s.Cancel(e)
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := range events {
			events[i] = s.Schedule(float64(i%9), action)
		}
		for _, e := range events {
			if !s.Cancel(e) {
				t.Fatal("pending event failed to cancel")
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Schedule/Cancel allocated %.1f times per round, want 0", avg)
	}
}
