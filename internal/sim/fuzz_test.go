package sim

import (
	"testing"
)

// FuzzHeap drives the indexed 4-ary heap against the sorted-slice reference
// queue with an operation stream decoded from fuzz data. Each byte is one
// operation: schedule with a delay derived from the byte, cancel a live
// event selected by the byte, or step. The two implementations must agree
// on every observable at every step — fired identity, clock, Cancel
// outcome, pending count — exactly as in TestHeapMatchesReferenceQueue,
// but with the interleaving chosen by the fuzzer instead of a fixed RNG.
func FuzzHeap(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x40, 0x80, 0xc0, 0xff})
	// Schedule a burst at colliding times, then drain: exercises FIFO
	// sequence ordering among equal timestamps.
	f.Add([]byte{0x10, 0x10, 0x10, 0x10, 0xf0, 0xf0, 0xf0, 0xf0})
	// Interleave schedules and cancels.
	f.Add([]byte{0x05, 0x15, 0x85, 0x25, 0x95, 0xf1, 0x35, 0x8f})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := New()
		ref := &refQueue{}
		nextID := 0
		seq := uint64(0)
		live := make(map[int]Event)
		firedID := -1

		step := func(op int) {
			firedID = -1
			stepped := s.Step()
			want, ok := ref.pop()
			if stepped != ok {
				t.Fatalf("op %d: Step = %v, reference nonempty = %v", op, stepped, ok)
			}
			if !stepped {
				return
			}
			if firedID != want.id {
				t.Fatalf("op %d: fired event %d, reference says %d", op, firedID, want.id)
			}
			if s.Now() != want.at {
				t.Fatalf("op %d: clock %v, reference time %v", op, s.Now(), want.at)
			}
			delete(live, want.id)
		}

		for op, b := range data {
			switch {
			case b < 0x80: // schedule; low 7 bits pick the delay
				delay := float64(b&0x7f) * 0.25
				id := nextID
				nextID++
				fid := id
				ev := s.Schedule(delay, func() { firedID = fid })
				seq++
				ref.push(ev.At(), seq, id)
				live[id] = ev
			case b < 0xc0: // cancel the live event whose id ≡ b (mod live size)
				if len(live) == 0 {
					continue
				}
				// Deterministic pick without sorting allocations: scan up
				// from b's residue until a live id is found.
				id := int(b) % nextID
				for !liveHas(live, id) {
					id = (id + 1) % nextID
				}
				got := s.Cancel(live[id])
				want := ref.remove(id)
				if got != want {
					t.Fatalf("op %d: Cancel(%d) = %v, reference = %v", op, id, got, want)
				}
				delete(live, id)
			default:
				step(op)
			}
			if s.Pending() != len(ref.entries) {
				t.Fatalf("op %d: Pending = %d, reference holds %d", op, s.Pending(), len(ref.entries))
			}
		}

		// Drain both queues to the end: survivors must agree too.
		for s.Pending() > 0 || len(ref.entries) > 0 {
			step(len(data))
		}
	})
}

func liveHas(live map[int]Event, id int) bool {
	_, ok := live[id]
	return ok
}
