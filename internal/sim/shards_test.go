package sim

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

// The shard-sync oracle machinery: a workload of message chains is executed
// twice — on a K-shard Group and on a single Simulator standing in for all
// K shards — and the per-shard execution logs must match exactly. Event
// times are built from dyadic rationals (multiples of 1/1024 plus a unique
// per-chain jitter of id/2^30), so float arithmetic is exact, every event
// time is globally unique by construction, and any ordering difference
// between the two executions is a synchronization bug, never a float tie.

// chainGrid is the time quantum of chain specs.
const chainGrid = 1.0 / 1024

// chainHop is one step of a chain: the next event executes on shard, gap
// grid steps after the minimum separation (zero for a same-shard hop, the
// group's lookahead for a cross-shard one).
type chainHop struct {
	shard int
	gap   int
}

// chainSpec is one chain: an initial event on shard start at grid time at,
// followed by the hops.
type chainSpec struct {
	start int
	at    int
	hops  []chainHop
}

// chainLog is one executed event, as recorded by the shard it ran on.
type chainLog struct {
	at  float64
	id  int32
	hop int32
}

// buildChains schedules every chain's initial event and wires the follow-on
// hops through simOf (same-shard scheduling) and post (cross-shard sends).
// It returns the per-shard logs (filled during the run) and a horizon past
// every event.
func buildChains(k int, lookahead float64, chains []chainSpec,
	simOf func(shard int) *Simulator,
	post func(from, to int, at Time, fn func())) (logs [][]chainLog, horizon Time) {
	logs = make([][]chainLog, k)
	var maxT Time
	for id, c := range chains {
		id, c := id, c
		t0 := Time(c.at)*chainGrid + Time(id)/(1<<30)
		end := t0
		for _, h := range c.hops {
			end += lookahead + Time(h.gap)*chainGrid
		}
		if end > maxT {
			maxT = end
		}
		var fire func(h, shard int) func()
		fire = func(h, shard int) func() {
			return func() {
				now := simOf(shard).Now()
				logs[shard] = append(logs[shard], chainLog{at: now, id: int32(id), hop: int32(h)})
				if h == len(c.hops) {
					return
				}
				next := c.hops[h]
				if next.shard == shard {
					simOf(shard).ScheduleAt(now+Time(next.gap)*chainGrid, fire(h+1, shard))
				} else {
					post(shard, next.shard, now+lookahead+Time(next.gap)*chainGrid, fire(h+1, next.shard))
				}
			}
		}
		simOf(c.start).ScheduleAt(t0, fire(0, c.start))
	}
	return logs, maxT + 1
}

// runChainsSharded executes the chains on a real K-shard Group.
func runChainsSharded(k, lookaheadSteps int, chains []chainSpec) [][]chainLog {
	sims := make([]*Simulator, k)
	for i := range sims {
		sims[i] = New()
	}
	lookahead := Time(lookaheadSteps) * chainGrid
	g := NewGroup(sims, k*k, lookahead)
	logs, horizon := buildChains(k, lookahead, chains,
		func(shard int) *Simulator { return sims[shard] },
		func(from, to int, at Time, fn func()) {
			g.Post(from, to, from*k+to, at, fn)
		})
	g.Run(horizon)
	return logs
}

// runChainsOracle executes the same chains on one Simulator playing all K
// shards: cross-shard sends become plain ScheduleAt calls at the same
// arrival times, so the oracle is trivially correct single-queue DES.
func runChainsOracle(k, lookaheadSteps int, chains []chainSpec) [][]chainLog {
	s := New()
	lookahead := Time(lookaheadSteps) * chainGrid
	logs, horizon := buildChains(k, lookahead, chains,
		func(int) *Simulator { return s },
		func(from, to int, at Time, fn func()) { s.ScheduleAt(at, fn) })
	s.RunUntil(horizon)
	return logs
}

// compareChainLogs demands per-shard identity between a Group execution and
// the single-queue oracle: same events, same order, same timestamps. This
// is exactly the conservative-synchronization guarantee — no event executes
// out of timestamp order within a shard, and cross-shard messages land at
// the same instants the oracle computes.
func compareChainLogs(t *testing.T, got, want [][]chainLog, ctx string) {
	t.Helper()
	for shard := range want {
		g, w := got[shard], want[shard]
		if len(g) != len(w) {
			t.Fatalf("%s: shard %d executed %d events, oracle %d", ctx, shard, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: shard %d event %d = %+v, oracle %+v", ctx, shard, i, g[i], w[i])
			}
		}
	}
}

// TestGroupMatchesSequentialOracle is the lookahead-logic property test:
// random chain workloads over random shard counts and lookahead windows,
// executed on the Group and on the single-queue oracle, must produce
// identical per-shard event sequences.
func TestGroupMatchesSequentialOracle(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		k := 2 + rng.Intn(4)
		lookaheadSteps := 1 + rng.Intn(16)
		chains := make([]chainSpec, 10+rng.Intn(80))
		for i := range chains {
			c := chainSpec{start: rng.Intn(k), at: rng.Intn(256)}
			for h := rng.Intn(9); h > 0; h-- {
				c.hops = append(c.hops, chainHop{shard: rng.Intn(k), gap: rng.Intn(24)})
			}
			chains[i] = c
		}
		got := runChainsSharded(k, lookaheadSteps, chains)
		want := runChainsOracle(k, lookaheadSteps, chains)
		compareChainLogs(t, got, want, "trial")
	}
}

// TestGroupTimestampOrderPerShard re-checks the core conservative property
// directly on the Group logs, independent of the oracle: within every
// shard, executed timestamps never decrease.
func TestGroupTimestampOrderPerShard(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	chains := make([]chainSpec, 60)
	for i := range chains {
		c := chainSpec{start: rng.Intn(3), at: rng.Intn(128)}
		for h := rng.Intn(7); h > 0; h-- {
			c.hops = append(c.hops, chainHop{shard: rng.Intn(3), gap: rng.Intn(10)})
		}
		chains[i] = c
	}
	logs := runChainsSharded(3, 4, chains)
	total := 0
	for shard, log := range logs {
		for i := 1; i < len(log); i++ {
			if log[i].at < log[i-1].at {
				t.Fatalf("shard %d executed %v after %v", shard, log[i].at, log[i-1].at)
			}
		}
		total += len(log)
	}
	if total == 0 {
		t.Fatal("no events executed")
	}
}

// TestGroupGlobalBarrierOrdering: globals at one instant run in (prio,
// FIFO) order, with every shard clock aligned on the instant, interleaved
// correctly with shard work.
func TestGroupGlobalBarrierOrdering(t *testing.T) {
	sims := []*Simulator{New(), New()}
	g := NewGroup(sims, 0, 0.5)

	var order []string
	rec := func(tag string) func() {
		return func() {
			for i, s := range sims {
				if s.Now() != 2.0 && (tag == "a" || tag == "b" || tag == "c") {
					t.Errorf("global %s: shard %d clock %v, want 2.0", tag, i, s.Now())
				}
			}
			order = append(order, tag)
		}
	}
	// Same instant, priorities out of insertion order.
	g.ScheduleGlobalAt(2.0, 1, rec("b"))
	g.ScheduleGlobalAt(2.0, 0, rec("a"))
	g.ScheduleGlobalAt(2.0, 2, rec("c"))
	g.ScheduleGlobalAt(3.0, 0, rec("d"))

	// Shard work straddling the barrier instant.
	sims[0].ScheduleAt(1.0, func() { order = append(order, "s0@1") })
	sims[1].ScheduleAt(2.5, func() { order = append(order, "s1@2.5") })

	g.Run(4.0)
	want := []string{"s0@1", "a", "b", "c", "s1@2.5", "d"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	for i, s := range sims {
		if s.Now() != 4.0 {
			t.Errorf("shard %d ended at %v, want horizon 4.0", i, s.Now())
		}
	}
}

// TestGroupHorizonSemantics: events exactly at the horizon execute, clocks
// end on the horizon, and a message posted at the horizon stays pending
// (counted as sent, never delivered) — matching RunUntil on one queue.
func TestGroupHorizonSemantics(t *testing.T) {
	sims := []*Simulator{New(), New()}
	g := NewGroup(sims, 1, 0.25)
	ranAtHorizon := false
	delivered := false
	sims[0].ScheduleAt(2.0, func() {
		ranAtHorizon = true
		g.Post(0, 1, 0, sims[0].Now()+0.25, func() { delivered = true })
	})
	g.Run(2.0)
	if !ranAtHorizon {
		t.Error("event at the horizon did not run")
	}
	if delivered {
		t.Error("post beyond the horizon was delivered")
	}
	if sims[0].Now() != 2.0 || sims[1].Now() != 2.0 {
		t.Errorf("clocks %v/%v, want 2.0", sims[0].Now(), sims[1].Now())
	}
}

// TestGroupConstructionPanics pins the misuse guards.
func TestGroupConstructionPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("one shard", func() { NewGroup([]*Simulator{New()}, 0, 1) })
	mustPanic("zero lookahead", func() { NewGroup([]*Simulator{New(), New()}, 0, 0) })
	mustPanic("negative edges", func() { NewGroup([]*Simulator{New(), New()}, -1, 1) })
	mustPanic("lookahead violation", func() {
		g := NewGroup([]*Simulator{New(), New()}, 1, 1.0)
		g.Post(0, 1, 0, 0.5, func() {})
	})
	mustPanic("nil post", func() {
		g := NewGroup([]*Simulator{New(), New()}, 1, 1.0)
		g.Post(0, 1, 0, 2.0, nil)
	})
	mustPanic("hub out of range", func() {
		g := NewGroup([]*Simulator{New(), New()}, 1, 1.0)
		g.SetHub(2)
	})
}

// TestGroupWatchdogStallDump exercises the deadlock watchdog end to end
// without killing the process: one shard's event blocks mid-round, the
// watchdog trips after its budget, and the installed stall handler receives
// a dump naming the round state of every shard. The handler then releases
// the stuck event so the run completes normally — proving the handler path
// (unlike the default panic) leaves the Group able to finish.
func TestGroupWatchdogStallDump(t *testing.T) {
	shards := []*Simulator{New(), New()}
	g := NewGroup(shards, 0, 1.0)
	g.SetWatchdog(200 * time.Millisecond)

	release := make(chan struct{})
	dumps := make(chan string, 1)
	g.SetStallHandler(func(dump string) {
		dumps <- dump
		close(release) // un-stick the shard so Run can return
	})

	var ran bool
	shards[0].ScheduleAt(0.5, func() {})
	shards[1].ScheduleAt(0.5, func() {
		<-release // a synchronization bug stand-in: the round never ends
		ran = true
	})
	done := make(chan struct{})
	go func() {
		g.Run(10)
		close(done)
	}()

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stalled run did not complete after the handler released it")
	}
	if !ran {
		t.Fatal("blocked event never resumed")
	}
	var dump string
	select {
	case dump = <-dumps:
	default:
		t.Fatal("watchdog fired no stall report")
	}
	for _, want := range []string{"stalled", "shard 0", "shard 1", "round="} {
		if !strings.Contains(dump, want) {
			t.Errorf("stall dump missing %q:\n%s", want, dump)
		}
	}
}

// TestGroupWatchdogQuietOnProgress pins that a healthy run under a tight
// watchdog budget completes without the stall handler ever firing.
func TestGroupWatchdogQuietOnProgress(t *testing.T) {
	shards := []*Simulator{New(), New()}
	g := NewGroup(shards, 2, 1.0)
	g.SetWatchdog(5 * time.Second)
	fired := make(chan string, 1)
	g.SetStallHandler(func(dump string) { fired <- dump })

	// A ping-pong load: each delivery schedules the next, so every round
	// makes progress until the horizon.
	var count int
	var ping func()
	ping = func() {
		count++
		from, to, edge := 0, 1, 0
		if count%2 == 1 {
			from, to, edge = 1, 0, 1
		}
		at := g.Shard(from).Now() + 1.5
		if at < 50 {
			g.Post(from, to, edge, at, ping)
		}
	}
	shards[0].ScheduleAt(0.25, func() { g.Post(0, 1, 0, 1.75, ping) })
	g.Run(50)
	select {
	case dump := <-fired:
		t.Fatalf("watchdog fired on a healthy run:\n%s", dump)
	default:
	}
	if count == 0 {
		t.Fatal("ping-pong load never ran")
	}
}
