// A dynamic calendar queue (Brown, CACM 1988): the classic O(1)-amortized
// pending-event set the simulation literature recommends at high event
// density. It exists here as the measured alternative to the slab/4-ary-heap
// kernel — BenchmarkHold* in bench_test.go races the two under the standard
// hold model and BENCH_pr6.json records the verdict. It is deliberately not
// wired into Simulator: the heap's strict (at, seq) total order is what the
// deterministic FIFO tie-break and the parallel differential gate rely on,
// so the calendar would have to carry the same sequence numbers anyway (and
// does, for an apples-to-apples comparison).
//
// Storage is a slab of slots threaded into per-bucket sorted intrusive
// singly-linked lists: Push splices into place and PopMin unlinks the head,
// so steady-state operation moves no event payloads and — with the free
// list's capacity grown in lock-step with the slab — allocates nothing.
// Bucket arrays are only reallocated when a resize grows past every
// previous capacity.
package sim

// calSlot is one pooled calendar entry: timestamp plus the tie-breaking
// sequence number the kernel's determinism contract requires, and the link
// to the next entry of its bucket (-1 terminates the chain).
type calSlot struct {
	at     Time
	seq    uint64
	action func()
	next   int32
}

// CalendarQueue is a priority queue of timed events with O(1) amortized
// enqueue/dequeue when its bucket width tracks the event-time density. It
// resizes (doubling/halving the day count, re-sampling the width) as the
// population crosses the standard 2·buckets / buckets/2 thresholds.
type CalendarQueue struct {
	slots   []calSlot
	free    []int32 // recycled slot indices, LIFO
	buckets []int32 // head slot index per bucket, -1 when empty
	width   Time    // bucket width in simulated seconds
	lastAt  Time    // dequeue cursor: priority of the last event removed
	lastIdx int     // bucket the cursor is in
	lastDay int     // absolute day number of the cursor: int(lastAt/width)
	count   int
	seq     uint64
}

// NewCalendarQueue returns an empty calendar with an initial guess of the
// event-time density (startWidth must be positive).
func NewCalendarQueue(startWidth Time) *CalendarQueue {
	if startWidth <= 0 {
		panic("sim: calendar queue needs positive start width")
	}
	q := &CalendarQueue{}
	q.resize(2, startWidth, 0)
	return q
}

// Len returns the number of pending events.
func (q *CalendarQueue) Len() int { return q.count }

// Push schedules an event. Events with equal timestamps dequeue in push
// order, matching the kernel's FIFO tie-break.
func (q *CalendarQueue) Push(at Time, action func()) {
	q.seq++
	idx := q.alloc()
	sl := &q.slots[idx]
	sl.at, sl.seq, sl.action = at, q.seq, action
	q.insertSlot(idx)
	q.count++
	if q.count > 2*len(q.buckets) {
		q.resize(2*len(q.buckets), q.sampleWidth(), q.lastAt)
	}
}

// alloc takes a slot off the free list, growing the slab (and the free
// list's capacity in lock-step, so release never allocates) when empty.
func (q *CalendarQueue) alloc() int32 {
	if n := len(q.free); n > 0 {
		idx := q.free[n-1]
		q.free = q.free[:n-1]
		return idx
	}
	q.slots = append(q.slots, calSlot{})
	idx := int32(len(q.slots) - 1)
	if cap(q.free) < cap(q.slots) {
		free := make([]int32, len(q.free), cap(q.slots))
		copy(free, q.free)
		q.free = free
	}
	return idx
}

func (q *CalendarQueue) release(idx int32) {
	q.slots[idx].action = nil
	q.free = append(q.free, idx)
}

// before orders two slots by the deterministic (at, seq) key.
func (q *CalendarQueue) before(a, b int32) bool {
	x, y := &q.slots[a], &q.slots[b]
	return x.at < y.at || (x.at == y.at && x.seq < y.seq)
}

// insertSlot splices an already-filled slot into its bucket's sorted chain.
// Events within one bucket are few when the width is well tuned, so the
// linear walk wins over any per-bucket structure.
func (q *CalendarQueue) insertSlot(idx int32) {
	sl := &q.slots[idx]
	b := int(sl.at/q.width) % len(q.buckets)
	cur := q.buckets[b]
	if cur < 0 || q.before(idx, cur) {
		sl.next = cur
		q.buckets[b] = idx
		return
	}
	for {
		next := q.slots[cur].next
		if next < 0 || q.before(idx, next) {
			q.slots[idx].next = next
			q.slots[cur].next = idx
			return
		}
		cur = next
	}
}

// PopMin removes and returns the earliest event.
func (q *CalendarQueue) PopMin() (Time, func(), bool) {
	if q.count == 0 {
		return 0, nil, false
	}
	h := q.popMinSlot()
	at, action := q.slots[h].at, q.slots[h].action
	q.release(h)
	if q.count < len(q.buckets)/2 && len(q.buckets) > 2 {
		q.resize(len(q.buckets)/2, q.sampleWidth(), q.lastAt)
	}
	return at, action, true
}

// popMinSlot unlinks and returns the earliest pending slot, leaving the
// cursor on it. It does not release the slot or touch the resize
// thresholds; sampleWidth uses it for destructive sampling (and restores
// the cursor afterwards). The caller must ensure count > 0.
//
// The scan identifies a hit by the event's day number int(at/width) — the
// exact expression insertSlot buckets by — never by comparing at against an
// accumulated window top: an event whose at/width lands a float ulp below
// an integer maps into the earlier bucket while sitting numerically past
// that bucket's multiplied-out top, and a top-comparison scan would starve
// it for a whole year and pop later events first.
func (q *CalendarQueue) popMinSlot() int32 {
	n := len(q.buckets)
	idx, day := q.lastIdx, q.lastDay
	for scanned := 0; scanned < n; scanned++ {
		if h := q.buckets[idx]; h >= 0 && int(q.slots[h].at/q.width) == day {
			q.buckets[idx] = q.slots[h].next
			q.count--
			q.lastAt, q.lastIdx, q.lastDay = q.slots[h].at, idx, day
			return h
		}
		idx++
		if idx == n {
			idx = 0
		}
		day++
	}
	// A full year passed without a hit: the next event is far in the
	// future. Fall back to a direct minimum scan, then realign the cursor.
	best, bestB := int32(-1), -1
	for i, h := range q.buckets {
		if h < 0 {
			continue
		}
		if best < 0 || q.before(h, best) {
			best, bestB = h, i
		}
	}
	q.buckets[bestB] = q.slots[best].next
	q.count--
	at := q.slots[best].at
	q.lastAt, q.lastIdx, q.lastDay = at, bestB, int(at/q.width)
	return best
}

// sampleWidth estimates a bucket width from the next events in true time
// order, per Brown's published algorithm: dequeue up to 25 upcoming events
// (then put them back exactly as they were, cursor included), average their
// separation with a second pass that drops gaps more than twice the first
// average (so one far-future outlier cannot blow the width up), and take
// three times the refined mean gap. Sampling in dequeue order matters: the
// naive walk in bucket order mixes events from different years of a
// mistuned calendar and makes the width estimate oscillate by orders of
// magnitude instead of converging.
func (q *CalendarQueue) sampleWidth() Time {
	const want = 25
	var taken [want]int32
	var times [want]Time
	savedAt, savedIdx, savedDay := q.lastAt, q.lastIdx, q.lastDay
	cnt := 0
	for cnt < want && q.count > 0 {
		h := q.popMinSlot()
		taken[cnt] = h
		times[cnt] = q.slots[h].at
		cnt++
	}
	// Reinsert under the unchanged width/day layout: each slot rejoins the
	// bucket and chain position it came from, and the saved cursor makes
	// the whole probe invisible.
	for i := 0; i < cnt; i++ {
		q.insertSlot(taken[i])
	}
	q.count += cnt
	q.lastAt, q.lastIdx, q.lastDay = savedAt, savedIdx, savedDay
	if cnt < 2 {
		return q.width
	}
	avg := (times[cnt-1] - times[0]) / Time(cnt-1)
	if avg <= 0 {
		return q.width
	}
	var sum Time
	kept := 0
	for i := 1; i < cnt; i++ {
		if gap := times[i] - times[i-1]; gap <= 2*avg {
			sum += gap
			kept++
		}
	}
	if kept == 0 {
		return 3 * avg
	}
	w := 3 * sum / Time(kept)
	if w <= 0 {
		return q.width
	}
	return w
}

// resize rebuilds the bucket array with the given day count and width,
// re-threading every pending slot (no event payload moves) and realigning
// the cursor at cursorAt. The bucket array is reused in place when it has
// the capacity, so halving never allocates and doubling is amortized.
func (q *CalendarQueue) resize(days int, width Time, cursorAt Time) {
	all := int32(-1) // unthread every chain into one temporary list
	for _, h := range q.buckets {
		for h >= 0 {
			next := q.slots[h].next
			q.slots[h].next = all
			all = h
			h = next
		}
	}
	if cap(q.buckets) >= days {
		q.buckets = q.buckets[:days]
	} else {
		q.buckets = make([]int32, days)
	}
	for i := range q.buckets {
		q.buckets[i] = -1
	}
	q.width = width
	q.lastAt = cursorAt
	q.lastDay = int(cursorAt / width)
	q.lastIdx = q.lastDay % days
	for all >= 0 {
		next := q.slots[all].next
		q.insertSlot(all)
		all = next
	}
}
