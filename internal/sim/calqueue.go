// A dynamic calendar queue (Brown, CACM 1988): the classic O(1)-amortized
// pending-event set the simulation literature recommends at high event
// density. It exists here as the measured alternative to the slab/4-ary-heap
// kernel — BenchmarkHold* in bench_test.go races the two under the standard
// hold model and BENCH_pr6.json records the verdict. It is deliberately not
// wired into Simulator: the heap's strict (at, seq) total order is what the
// deterministic FIFO tie-break and the parallel differential gate rely on,
// so the calendar would have to carry the same sequence numbers anyway (and
// does, for an apples-to-apples comparison).
package sim

// calEvent is one calendar entry: timestamp plus the tie-breaking sequence
// number the kernel's determinism contract requires.
type calEvent struct {
	at     Time
	seq    uint64
	action func()
}

// CalendarQueue is a priority queue of timed events with O(1) amortized
// enqueue/dequeue when its bucket width tracks the event-time density. It
// resizes (doubling/halving the day count, re-sampling the width) as the
// population crosses the standard 2·buckets / buckets/2 thresholds.
type CalendarQueue struct {
	buckets   [][]calEvent
	width     Time // bucket width in simulated seconds
	lastAt    Time // dequeue cursor: priority of the last event removed
	lastIdx   int  // bucket the cursor is in
	bucketTop Time // end of the cursor bucket's current year window
	count     int
	seq       uint64
}

// NewCalendarQueue returns an empty calendar with an initial guess of the
// event-time density (startWidth must be positive).
func NewCalendarQueue(startWidth Time) *CalendarQueue {
	if startWidth <= 0 {
		panic("sim: calendar queue needs positive start width")
	}
	q := &CalendarQueue{}
	q.resize(2, startWidth, 0)
	return q
}

// Len returns the number of pending events.
func (q *CalendarQueue) Len() int { return q.count }

// Push schedules an event. Events with equal timestamps dequeue in push
// order, matching the kernel's FIFO tie-break.
func (q *CalendarQueue) Push(at Time, action func()) {
	q.seq++
	q.insert(calEvent{at: at, seq: q.seq, action: action})
	if q.count > 2*len(q.buckets) {
		q.resize(2*len(q.buckets), q.sampleWidth(), q.lastAt)
	}
}

func (q *CalendarQueue) insert(ev calEvent) {
	n := len(q.buckets)
	i := int(ev.at/q.width) % n
	b := q.buckets[i]
	// Buckets are kept sorted by (at, seq); events within one bucket are
	// few when the width is well tuned, so insertion sort wins over any
	// per-bucket structure.
	j := len(b)
	b = append(b, ev)
	for j > 0 && (b[j-1].at > ev.at || (b[j-1].at == ev.at && b[j-1].seq > ev.seq)) {
		b[j] = b[j-1]
		j--
	}
	b[j] = ev
	q.buckets[i] = b
	q.count++
}

// PopMin removes and returns the earliest event.
func (q *CalendarQueue) PopMin() (Time, func(), bool) {
	if q.count == 0 {
		return 0, nil, false
	}
	n := len(q.buckets)
	idx, top := q.lastIdx, q.bucketTop
	for scanned := 0; scanned < n; scanned++ {
		b := q.buckets[idx]
		if len(b) > 0 && b[0].at < top {
			ev := b[0]
			copy(b, b[1:])
			q.buckets[idx] = b[:len(b)-1]
			q.count--
			q.lastAt, q.lastIdx, q.bucketTop = ev.at, idx, top
			if q.count < len(q.buckets)/2 && len(q.buckets) > 2 {
				q.resize(len(q.buckets)/2, q.sampleWidth(), q.lastAt)
			}
			return ev.at, ev.action, true
		}
		idx = (idx + 1) % n
		top += q.width
	}
	// A full year passed without a hit: the next event is far in the
	// future. Fall back to a direct minimum scan, then realign the cursor.
	best := -1
	for i, b := range q.buckets {
		if len(b) == 0 {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		o := q.buckets[best][0]
		if b[0].at < o.at || (b[0].at == o.at && b[0].seq < o.seq) {
			best = i
		}
	}
	b := q.buckets[best]
	ev := b[0]
	copy(b, b[1:])
	q.buckets[best] = b[:len(b)-1]
	q.count--
	q.lastAt, q.lastIdx = ev.at, best
	q.bucketTop = (Time(int(ev.at/q.width)) + 1) * q.width
	return ev.at, ev.action, true
}

// sampleWidth estimates a bucket width from the events nearest the cursor:
// the mean gap between up to 25 upcoming events, times three (Brown's
// recommendation), bounded away from zero.
func (q *CalendarQueue) sampleWidth() Time {
	const want = 25
	var times []Time
	n := len(q.buckets)
	for off := 0; off < n && len(times) < want; off++ {
		for _, ev := range q.buckets[(q.lastIdx+off)%n] {
			times = append(times, ev.at)
			if len(times) >= want {
				break
			}
		}
	}
	if len(times) < 2 {
		return q.width
	}
	lo, hi := times[0], times[0]
	for _, t := range times[1:] {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	w := 3 * (hi - lo) / Time(len(times)-1)
	if w <= 0 {
		return q.width
	}
	return w
}

// resize rebuilds the calendar with the given day count and width, keeping
// every pending event and realigning the cursor at cursorAt.
func (q *CalendarQueue) resize(days int, width Time, cursorAt Time) {
	old := q.buckets
	q.buckets = make([][]calEvent, days)
	q.width = width
	q.count = 0
	q.lastAt = cursorAt
	q.lastIdx = int(cursorAt/width) % days
	q.bucketTop = (Time(int(cursorAt/width)) + 1) * width
	for _, b := range old {
		for _, ev := range b {
			q.insert(ev)
		}
	}
}
