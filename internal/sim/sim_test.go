package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		s.Schedule(d, func() { order = append(order, d) })
	}
	s.Run()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("executed %d events, want 5", len(order))
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1.0, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	var seen []float64
	s.Schedule(2, func() { seen = append(seen, s.Now()) })
	s.Schedule(7, func() { seen = append(seen, s.Now()) })
	s.Run()
	if len(seen) != 2 || seen[0] != 2 || seen[1] != 7 {
		t.Fatalf("clock values %v, want [2 7]", seen)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var at float64
	s.Schedule(1, func() {
		s.Schedule(2, func() { at = s.Now() })
	})
	s.Run()
	if at != 3 {
		t.Fatalf("nested event fired at %v, want 3", at)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New()
	fired := make(map[float64]bool)
	for _, d := range []float64{1, 2, 3, 4, 5} {
		d := d
		s.Schedule(d, func() { fired[d] = true })
	}
	s.RunUntil(3)
	if !fired[1] || !fired[2] || !fired[3] {
		t.Errorf("events at or before horizon did not fire: %v", fired)
	}
	if fired[4] || fired[5] {
		t.Errorf("events after horizon fired: %v", fired)
	}
	if s.Now() != 3 {
		t.Errorf("clock = %v after RunUntil(3)", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
}

func TestRunUntilAdvancesClockWithNoEvents(t *testing.T) {
	s := New()
	s.RunUntil(10)
	if s.Now() != 10 {
		t.Fatalf("clock = %v, want 10", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	e := s.Schedule(1, func() { ran = true })
	if !s.Cancel(e) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(e) {
		t.Fatal("second Cancel returned true")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelZeroEvent(t *testing.T) {
	s := New()
	if s.Cancel(Event{}) {
		t.Fatal("Cancel of the zero Event returned true")
	}
}

func TestCancelMiddleOfQueue(t *testing.T) {
	s := New()
	var order []int
	var events []Event
	for i := 0; i < 5; i++ {
		i := i
		events = append(events, s.Schedule(float64(i+1), func() { order = append(order, i) }))
	}
	s.Cancel(events[2])
	s.Run()
	want := []int{0, 1, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestHalt(t *testing.T) {
	s := New()
	count := 0
	for i := 0; i < 10; i++ {
		s.Schedule(float64(i), func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("executed %d events after Halt, want 3", count)
	}
	// Run again resumes.
	s.Run()
	if count != 10 {
		t.Fatalf("executed %d events total, want 10", count)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	s := New()
	s.Schedule(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in the past did not panic")
		}
	}()
	s.ScheduleAt(1, func() {})
}

func TestNilActionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil action did not panic")
		}
	}()
	New().Schedule(1, nil)
}

func TestExecutedCount(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.Schedule(float64(i), func() {})
	}
	s.Run()
	if s.Executed() != 7 {
		t.Fatalf("Executed = %d, want 7", s.Executed())
	}
}

// TestQuickHeapOrdering checks, against a reference sort, that an arbitrary
// batch of delays always fires in nondecreasing time order with stable
// FIFO tie-breaking.
func TestQuickHeapOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		type fireRec struct {
			at  float64
			seq int
		}
		var fired []fireRec
		for i, r := range raw {
			d := float64(r % 100)
			i := i
			d2 := d
			s.Schedule(d2, func() { fired = append(fired, fireRec{at: d2, seq: i}) })
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		s.Schedule(float64(i%97), func() {})
	}
	b.ResetTimer()
	s.Run()
}

// TestCancelFiredEvent checks that cancelling an event that already fired
// reports false and does not disturb the queue.
func TestCancelFiredEvent(t *testing.T) {
	s := New()
	ran := false
	e := s.Schedule(1, func() { ran = true })
	later := false
	s.Schedule(2, func() { later = true })
	s.RunUntil(1)
	if !ran {
		t.Fatal("event did not fire")
	}
	if s.Cancel(e) {
		t.Fatal("Cancel of a fired event returned true")
	}
	s.Run()
	if !later {
		t.Fatal("cancelling a fired event disturbed a pending one")
	}
}

// TestHaltStopsRunUntil checks Halt ends RunUntil after the current event,
// leaving later pre-horizon events pending and the clock at the halt point.
func TestHaltStopsRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := 0; i < 10; i++ {
		s.Schedule(float64(i+1), func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.RunUntil(100)
	if count != 3 {
		t.Fatalf("executed %d events after Halt, want 3", count)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v after halt at t=3", s.Now())
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", s.Pending())
	}
	// A later RunUntil resumes where the halt left off.
	s.RunUntil(100)
	if count != 10 {
		t.Fatalf("executed %d events total, want 10", count)
	}
}

// TestQuickCancelProperties drives random schedule/cancel interleavings:
// a pending event cancels exactly once, cancelled events never fire, and
// surviving events still fire in nondecreasing (time, seq) order.
func TestQuickCancelProperties(t *testing.T) {
	f := func(raw []uint16, mask uint32) bool {
		s := New()
		type rec struct {
			at  float64
			seq int
		}
		var fired []rec
		events := make([]Event, len(raw))
		for i, r := range raw {
			d := float64(r % 50)
			i, d := i, d
			events[i] = s.Schedule(d, func() { fired = append(fired, rec{at: d, seq: i}) })
		}
		cancelled := make(map[int]bool)
		for i := range events {
			if mask&(1<<(uint(i)%32)) != 0 && i%3 == 0 {
				if !s.Cancel(events[i]) {
					return false // pending event must cancel
				}
				if s.Cancel(events[i]) {
					return false // double cancel must report false
				}
				cancelled[i] = true
			}
		}
		s.Run()
		if len(fired)+len(cancelled) != len(raw) {
			return false
		}
		for _, f := range fired {
			if cancelled[f.seq] {
				return false // cancelled event fired
			}
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
