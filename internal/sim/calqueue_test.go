package sim

import (
	"math/rand"
	"testing"
)

// TestCalendarMatchesReferenceQueue drives random Push/PopMin interleavings
// against the sorted-slice oracle and demands exact agreement: same count,
// same popped time, same popped identity (which pins the FIFO tie-break
// across resizes, cursor wrap, and the far-future fallback scan).
func TestCalendarMatchesReferenceQueue(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		q := NewCalendarQueue(0.5)
		ref := &refQueue{}

		nextID := 0
		var seq uint64
		poppedID := -1
		var clock Time
		push := func(at Time) {
			id := nextID
			nextID++
			seq++
			q.Push(at, func() { poppedID = id })
			ref.push(float64(at), seq, id)
		}

		for op := 0; op < 3000; op++ {
			switch r := rng.Intn(10); {
			case r < 5:
				// Mostly near-future events; occasionally a far-future one to
				// exercise the full-year fallback scan, and exact ties to
				// exercise the FIFO order.
				var at Time
				switch rng.Intn(8) {
				case 0:
					at = clock + Time(rng.Intn(4000))
				case 1:
					at = clock // exact tie with the cursor
				default:
					at = clock + Time(rng.Intn(80))*0.25
				}
				push(at)
			default:
				poppedID = -1
				at, action, ok := q.PopMin()
				want, refOK := ref.pop()
				if ok != refOK {
					t.Fatalf("trial %d op %d: PopMin ok=%v, reference %v", trial, op, ok, refOK)
				}
				if !ok {
					continue
				}
				action()
				if poppedID != want.id {
					t.Fatalf("trial %d op %d: popped id %d, reference %d (at=%v)", trial, op, poppedID, want.id, at)
				}
				if float64(at) != want.at {
					t.Fatalf("trial %d op %d: popped at %v, reference %v", trial, op, at, want.at)
				}
				if at < clock {
					t.Fatalf("trial %d op %d: time went backwards %v -> %v", trial, op, clock, at)
				}
				clock = at
			}
			if q.Len() != len(ref.entries) {
				t.Fatalf("trial %d op %d: Len = %d, reference %d", trial, op, q.Len(), len(ref.entries))
			}
		}

		// Drain in exact reference order.
		for {
			poppedID = -1
			_, action, ok := q.PopMin()
			want, refOK := ref.pop()
			if ok != refOK {
				t.Fatalf("trial %d drain: PopMin ok=%v, reference %v", trial, ok, refOK)
			}
			if !ok {
				break
			}
			action()
			if poppedID != want.id {
				t.Fatalf("trial %d drain: popped %d, reference %d", trial, poppedID, want.id)
			}
		}
	}
}

// TestCalendarStartWidthPanics pins the constructor guard.
func TestCalendarStartWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive start width did not panic")
		}
	}()
	NewCalendarQueue(0)
}
