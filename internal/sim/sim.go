// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is a float64 number of seconds. Events scheduled for the same instant
// fire in the order they were scheduled (FIFO tie-break), which keeps
// simulations reproducible.
//
// The kernel is allocation-free in steady state: event storage lives in a
// slab of slots recycled through a free list whose capacity is grown in
// lock-step with the slab (so pops never re-grow it mid-run), and the
// pending set is an indexed 4-ary min-heap with hand-inlined
// sift-up/sift-down (no container/heap, no interface boxing). Each heap
// entry carries its (at, seq) ordering key inline, so sift compares walk
// the contiguous heap array without chasing slot indices into the slab —
// the children of a 4-ary node share a cache line. Event handles carry a
// generation counter so a stale handle whose slot has been recycled is
// detected by Cancel rather than corrupting the queue.
package sim

import (
	"fmt"
)

// Time is a simulated instant, in seconds since the start of the run.
type Time = float64

// Event is a compact handle to a scheduled callback, returned by the
// scheduling methods so callers can cancel it. It is a value (slot index +
// generation), not a pointer: the kernel recycles slot storage across
// events, and the generation lets Cancel tell a live event from a stale
// handle whose slot now belongs to a different event. The zero Event is
// invalid and never matches a live event.
type Event struct {
	slot int32
	gen  uint32
	at   Time
}

// At reports the instant this event fires (or fired).
func (e Event) At() Time { return e.at }

// slot is the pooled storage for one scheduled event. pos is the slot's
// index in the heap, -1 while the slot is free. gen starts at 1 and is
// incremented every time the slot is released, invalidating outstanding
// handles. The (at, seq) ordering key lives in the heap entry, not here:
// sifts only read the heap array.
type slot struct {
	action func()
	gen    uint32
	pos    int32
}

// heapEnt is one pending event in the 4-ary min-heap, ordered by (at, seq).
// seq is unique, giving a strict total order and exact FIFO tie-breaking.
type heapEnt struct {
	at   Time
	seq  uint64
	slot int32
}

// Simulator owns the event list and the simulated clock.
type Simulator struct {
	now    Time
	seq    uint64
	slots  []slot
	free   []int32   // recycled slot indices, LIFO
	heap   []heapEnt // 4-ary min-heap ordered by (at, seq)
	count  uint64    // events executed
	halted bool
}

// New returns a Simulator with the clock at zero and an empty event list.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.count }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return len(s.heap) }

// Schedule runs action after delay seconds of simulated time. A negative
// delay panics: it would mean travelling into the past, which is always a
// logic error in the caller.
func (s *Simulator) Schedule(delay Time, action func()) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.ScheduleAt(s.now+delay, action)
}

// ScheduleAt runs action at absolute time at. Scheduling before the current
// time panics.
func (s *Simulator) ScheduleAt(at Time, action func()) Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if action == nil {
		panic("sim: nil action")
	}
	s.seq++
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.slots = append(s.slots, slot{gen: 1, pos: -1})
		idx = int32(len(s.slots) - 1)
		// Grow the free list's capacity in lock-step with the slab: release
		// pushes at most one index per slot, so matching capacities here
		// means release never allocates — the pop path stays 0 B/op even
		// when the free list fills while a long Run drains the heap.
		if cap(s.free) < cap(s.slots) {
			free := make([]int32, len(s.free), cap(s.slots))
			copy(free, s.free)
			s.free = free
		}
	}
	sl := &s.slots[idx]
	sl.action = action
	s.heap = append(s.heap, heapEnt{at: at, seq: s.seq, slot: idx})
	s.siftUp(len(s.heap) - 1)
	return Event{slot: idx, gen: sl.gen, at: at}
}

// Cancel removes a pending event. Cancelling an event that already fired,
// was already cancelled, or whose slot has since been recycled for a newer
// event (stale handle: generation mismatch) is a no-op and returns false.
func (s *Simulator) Cancel(e Event) bool {
	if e.gen == 0 || int(e.slot) >= len(s.slots) {
		return false
	}
	sl := &s.slots[e.slot]
	if sl.gen != e.gen || sl.pos < 0 {
		return false
	}
	s.removeAt(int(sl.pos))
	return true
}

// Step executes the single next event, if any, and reports whether one ran.
func (s *Simulator) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	top := s.heap[0]
	s.now = top.at
	s.count++
	action := s.slots[top.slot].action
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap = s.heap[:n]
	if n > 0 {
		s.heap[0] = last
		s.slots[last.slot].pos = 0
		s.siftDown(0)
	}
	s.release(top.slot)
	action()
	return true
}

// RunUntil executes events in time order until the clock would pass horizon
// or the event list empties or Halt is called. The clock is left at
// min(horizon, time of last executed event); events at exactly horizon run.
func (s *Simulator) RunUntil(horizon Time) {
	s.halted = false
	for !s.halted && len(s.heap) > 0 && s.heap[0].at <= horizon {
		s.Step()
	}
	if s.now < horizon && !s.halted {
		s.now = horizon
	}
}

// Peek returns the time of the earliest pending event, or false when the
// event list is empty. The sharded synchronizer (Group) uses it to compute
// the conservative execution bound of each round.
func (s *Simulator) Peek() (Time, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].at, true
}

// RunBefore executes events strictly earlier than bound, in time order,
// until none remain below it or Halt is called. Unlike RunUntil the clock is
// not advanced to the bound: it stays at the last executed event, so a
// subsequent AdvanceTo or RunBefore with a larger bound continues cleanly.
// This is the per-round shard execution primitive of the Group synchronizer.
func (s *Simulator) RunBefore(bound Time) {
	s.halted = false
	for !s.halted && len(s.heap) > 0 && s.heap[0].at < bound {
		s.Step()
	}
}

// AdvanceTo moves the clock forward to t without executing anything. It
// panics if t is in the past or an event earlier than t is still pending —
// advancing over a pending event would execute it at the wrong time later.
// The Group synchronizer uses it to align every shard's clock on a barrier
// instant so that clock-dependent observations (CPU busy-time integrals,
// queue samples) read identically to a single-queue run.
func (s *Simulator) AdvanceTo(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: advance to %v before now %v", t, s.now))
	}
	if len(s.heap) > 0 && s.heap[0].at < t {
		panic(fmt.Sprintf("sim: advance to %v over pending event at %v", t, s.heap[0].at))
	}
	s.now = t
}

// Run executes events until none remain or Halt is called.
func (s *Simulator) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// Halt stops the innermost Run/RunUntil after the current event returns.
func (s *Simulator) Halt() { s.halted = true }

// release returns a slot to the free list, bumping its generation so
// outstanding handles to the old event go stale.
func (s *Simulator) release(idx int32) {
	sl := &s.slots[idx]
	sl.action = nil
	sl.pos = -1
	sl.gen++
	s.free = append(s.free, idx)
}

// removeAt deletes the heap element at position i and releases its slot.
func (s *Simulator) removeAt(i int) {
	h := s.heap
	n := len(h) - 1
	ent := h[i]
	last := h[n]
	s.heap = h[:n]
	if i < n {
		h[i] = last
		s.slots[last.slot].pos = int32(i)
		s.siftDown(i)
		if s.slots[last.slot].pos == int32(i) {
			s.siftUp(i)
		}
	}
	s.release(ent.slot)
}

// siftUp restores heap order upward from position i. The element is lifted
// as a hole while ancestors shift down, so each level costs one compare and
// at most one move. Order is (at, seq): seq is unique, giving a strict total
// order and therefore exact FIFO tie-breaking regardless of heap shape.
func (s *Simulator) siftUp(i int) {
	h := s.heap
	e := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		pe := h[p]
		if pe.at < e.at || (pe.at == e.at && pe.seq < e.seq) {
			break
		}
		h[i] = pe
		s.slots[pe.slot].pos = int32(i)
		i = p
	}
	h[i] = e
	s.slots[e.slot].pos = int32(i)
}

// siftDown restores heap order downward from position i, picking the least
// of up to four children per level. A 4-ary heap halves the tree depth of a
// binary heap, and with the ordering keys inline in the entries the four
// children sit in adjacent array words — every level is one or two cache
// lines of the heap itself, with no dependent loads into the slot slab.
func (s *Simulator) siftDown(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		c := (i << 2) + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		me := h[c]
		for k := c + 1; k < end; k++ {
			ke := h[k]
			if ke.at < me.at || (ke.at == me.at && ke.seq < me.seq) {
				m, me = k, ke
			}
		}
		if e.at < me.at || (e.at == me.at && e.seq < me.seq) {
			break
		}
		h[i] = me
		s.slots[me.slot].pos = int32(i)
		i = m
	}
	h[i] = e
	s.slots[e.slot].pos = int32(i)
}
