// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is a float64 number of seconds. Events scheduled for the same instant
// fire in the order they were scheduled (FIFO tie-break), which keeps
// simulations reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated instant, in seconds since the start of the run.
type Time = float64

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it.
type Event struct {
	at     Time
	seq    uint64
	index  int // position in the heap, -1 when not queued
	action func()
}

// At reports the instant this event fires (or fired).
func (e *Event) At() Time { return e.at }

// Simulator owns the event list and the simulated clock.
type Simulator struct {
	now    Time
	seq    uint64
	queue  eventQueue
	count  uint64 // events executed
	halted bool
}

// New returns a Simulator with the clock at zero and an empty event list.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.count }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule runs action after delay seconds of simulated time. A negative
// delay panics: it would mean travelling into the past, which is always a
// logic error in the caller.
func (s *Simulator) Schedule(delay Time, action func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.ScheduleAt(s.now+delay, action)
}

// ScheduleAt runs action at absolute time at. Scheduling before the current
// time panics.
func (s *Simulator) ScheduleAt(at Time, action func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if action == nil {
		panic("sim: nil action")
	}
	s.seq++
	e := &Event{at: at, seq: s.seq, action: action}
	heap.Push(&s.queue, e)
	return e
}

// Cancel removes a pending event. Cancelling an event that already fired or
// was already cancelled is a no-op and returns false.
func (s *Simulator) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&s.queue, e.index)
	e.index = -1
	e.action = nil
	return true
}

// Step executes the single next event, if any, and reports whether one ran.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.at
	s.count++
	action := e.action
	e.action = nil
	action()
	return true
}

// RunUntil executes events in time order until the clock would pass horizon
// or the event list empties or Halt is called. The clock is left at
// min(horizon, time of last executed event); events at exactly horizon run.
func (s *Simulator) RunUntil(horizon Time) {
	s.halted = false
	for !s.halted && len(s.queue) > 0 && s.queue[0].at <= horizon {
		s.Step()
	}
	if s.now < horizon && !s.halted {
		s.now = horizon
	}
}

// Run executes events until none remain or Halt is called.
func (s *Simulator) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// Halt stops the innermost Run/RunUntil after the current event returns.
func (s *Simulator) Halt() { s.halted = true }

// eventQueue is a binary min-heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
