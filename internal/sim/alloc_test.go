package sim

import (
	"math/rand"
	"testing"
)

// TestScheduleRunAllocFree guards the kernel's steady-state allocation
// contract: once the slot slab has reached the high-water population, a full
// schedule-then-drain cycle performs zero allocations. This pins the 0 B/op
// of BenchmarkScheduleRun (which regressed to 21–24 B/op when the free list
// was allowed to grow lazily during Run) so it cannot creep back silently.
func TestScheduleRunAllocFree(t *testing.T) {
	const events = 2048
	s := New()
	action := func() {}
	cycle := func() {
		for i := 0; i < events; i++ {
			s.Schedule(float64(i%97)+1, action)
		}
		s.Run()
	}
	cycle() // warm the slab, the heap, and the free list to capacity
	if got := testing.AllocsPerRun(10, cycle); got != 0 {
		t.Errorf("schedule+run cycle allocates %v times per run, want 0", got)
	}
}

// TestScheduleStepAllocFree guards the rolling-window churn path (one
// Schedule + one Step per iteration), the engine's hot shape.
func TestScheduleStepAllocFree(t *testing.T) {
	s := New()
	action := func() {}
	for i := 0; i < 256; i++ {
		s.Schedule(float64(i%97)+1, action)
	}
	i := 0
	if got := testing.AllocsPerRun(1000, func() {
		s.Schedule(float64(i%97)+1, action)
		s.Step()
		i++
	}); got != 0 {
		t.Errorf("schedule+step allocates %v times per run, want 0", got)
	}
}

// TestHoldCalendarAllocFree guards the calendar queue's steady-state hold
// model at the population where BenchmarkHoldCalendar/n65536 used to report
// 90–99 B/op: with the slab threaded into intrusive chains and the free
// list's capacity paired to it, pop+push must allocate nothing.
func TestHoldCalendarAllocFree(t *testing.T) {
	const n = 65536
	rng := rand.New(rand.NewSource(12345))
	incs := make([]Time, n)
	for i := range incs {
		incs[i] = Time(rng.ExpFloat64())
	}
	q := NewCalendarQueue(1.0 / Time(n))
	action := func() {}
	for i := 0; i < n; i++ {
		q.Push(incs[i], action)
	}
	var clock Time
	i := 0
	if got := testing.AllocsPerRun(5000, func() {
		at, _, ok := q.PopMin()
		if !ok {
			t.Fatal("calendar drained")
		}
		clock = at
		q.Push(clock+incs[i%n], action)
		i++
	}); got != 0 {
		t.Errorf("hold cycle allocates %v times per run, want 0", got)
	}
}

// TestCalendarSampleWidthInvisible pins the Brown-style width probe: the
// destructive dequeue of up to 25 events inside sampleWidth must leave the
// calendar — chains, cursor, and count — exactly as it found it.
func TestCalendarSampleWidthInvisible(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		q := NewCalendarQueue(0.5)
		var clock Time
		for i := 0; i < 200; i++ {
			if rng.Intn(10) < 6 || q.count == 0 {
				q.Push(clock+Time(rng.Intn(4000))*0.25, func() {})
			} else {
				at, _, _ := q.PopMin()
				clock = at
			}
		}
		snapB := append([]int32(nil), q.buckets...)
		type slotKey struct {
			at   Time
			seq  uint64
			next int32
		}
		snapS := make([]slotKey, len(q.slots))
		for i, s := range q.slots {
			snapS[i] = slotKey{s.at, s.seq, s.next}
		}
		la, li, ld, c := q.lastAt, q.lastIdx, q.lastDay, q.count
		q.sampleWidth()
		if q.lastAt != la || q.lastIdx != li || q.lastDay != ld || q.count != c {
			t.Fatalf("trial %d: cursor/count changed", trial)
		}
		for i := range snapB {
			if q.buckets[i] != snapB[i] {
				t.Fatalf("trial %d: bucket %d head %d -> %d", trial, i, snapB[i], q.buckets[i])
			}
		}
		for i := range snapS {
			s := q.slots[i]
			if s.next != snapS[i].next || s.at != snapS[i].at || s.seq != snapS[i].seq {
				t.Fatalf("trial %d: slot %d changed", trial, i)
			}
		}
	}
}
