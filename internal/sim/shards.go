// Sharded conservative synchronization: a Group runs several Simulators
// ("shards") in parallel under a Chandy–Misra-style windowed protocol. The
// fixed communication delay between shards is the conservative lookahead: a
// message sent at time t arrives no earlier than t+lookahead, so shard j may
// safely execute all events below
//
//	bound_j = min over shards i that can send to j of (next event of i) + lookahead
//
// without ever receiving a message that lands inside a window it already
// executed. Rounds are synchronous: the coordinator computes every shard's
// bound, the workers with events below their bound drain their queues
// strictly below it in parallel, and the messages posted during the round
// are merged between rounds in a deterministic order. Per-shard bounds are
// what makes large windows cheap — a shard far ahead of its only sender
// advances many lookahead windows in a single fan-out, and shards with no
// events below their bound are skipped entirely.
//
// By default every shard is assumed able to send to every other, so bound_j
// is min-except-self + lookahead. SetHub declares a star topology (spokes
// talk only to the hub): spokes are then bounded only by the hub's next
// event and the hub only by the earliest spoke.
//
// Message merging needs no global sort: messages are collected in pooled
// per-edge outbox buffers (each edge is written by exactly one shard), and
// between rounds the touched edges are drained in ascending edge index into
// the destination queues. A destination calendar orders events by (time,
// insertion sequence), and insertion order only matters for same-instant
// events, so draining the per-edge streams in edge order reproduces exactly
// the total (arrival time, edge, per-edge sequence) order a global sort
// would produce.
//
// Globally synchronized events (measurement start, periodic samples,
// invariant audits) do not belong to any shard: they are scheduled on the
// Group with an explicit priority and executed at a barrier, after every
// shard has drained below their instant and been advanced to it, so that
// clock-dependent reads (busy-time integrals, queue lengths) observe the
// same state a single-queue run would.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// groupMsg is one cross-shard message awaiting delivery; its edge and
// destination are implied by the outbox holding it.
type groupMsg struct {
	at Time
	fn func()
}

// globalEvent is one barrier-executed event, ordered by (at, prio, seq).
type globalEvent struct {
	at   Time
	prio int32
	seq  uint64
	fn   func()
}

// Group synchronizes a set of shard Simulators conservatively. Construct
// with NewGroup, schedule initial work on the shards and global events on
// the Group, then call Run once. A Group is not reusable across runs.
type Group struct {
	shards    []*Simulator
	lookahead Time

	// Per-edge outboxes: each edge is written only by its sending shard's
	// worker during a round and drained by the coordinator between rounds
	// (the WaitGroup barrier orders the accesses). Buffers are pooled —
	// drained to length zero, capacity retained.
	edgeBox [][]groupMsg
	// edgeTo pins each edge's destination shard (-1 until first use); an
	// edge is a point-to-point FIFO channel, not a bus.
	edgeTo []int32
	// touched collects, per sending shard, the edges it posted to this
	// round (owner-written, coordinator-drained).
	touched [][]int32

	// hub >= 0 declares a star topology: shard hub exchanges messages with
	// every other shard, and the non-hub shards never message each other.
	hub int

	// Barrier-executed global events, a sorted pending list (removals pop
	// from the front; the event count is small: measurement chains, not
	// workload).
	globals   []globalEvent
	globalSeq uint64

	// Coordinator scratch, reused across rounds.
	times   []Time  // next event time per shard (valid where haveT)
	haveT   []bool  // shard has a pending event
	bounds  []Time  // per-shard conservative bound for the current round
	drained []int32 // touched-edge gather buffer

	// Worker machinery: one persistent goroutine per shard, fed rounds over
	// its own channel; the WaitGroup is the round barrier (and the
	// happens-before edge the race detector sees).
	cmds    []chan workerCmd
	wg      sync.WaitGroup
	started bool

	// Deadlock watchdog: progress bumps on every round and barrier; a
	// background goroutine reports when it stops moving for watchdog wall
	// time (0 disables). Guards against synchronization bugs that would
	// otherwise hang a test silently. The stall snapshot is written by the
	// coordinator each round under the mutex, so the report is race-free.
	watchdog time.Duration
	progress atomic.Uint64
	stopDog  chan struct{}
	onStall  func(dump string)
	stallMu  sync.Mutex
	stall    stallInfo
}

// stallInfo is the coordinator's last-round snapshot for the watchdog dump.
type stallInfo struct {
	round      uint64
	times      []Time
	haveT      []bool
	bounds     []Time
	dispatched int
}

type workerCmd struct {
	bound Time
	// until selects RunUntil (inclusive horizon semantics, clock advanced
	// to bound) for the final round instead of RunBefore.
	until bool
}

// DefaultWatchdog is the wall-clock stall budget after which a Group run
// panics: no shard advancing for this long means the synchronizer (not the
// workload) is stuck.
const DefaultWatchdog = 10 * time.Second

// NewGroup builds a synchronizer over the given shards. edges is the number
// of distinct FIFO message edges (each used by one sending shard only);
// lookahead is the minimum cross-shard message latency and must be positive
// — with zero lookahead no shard could ever safely lead, and the caller
// should run single-queue instead.
func NewGroup(shards []*Simulator, edges int, lookahead Time) *Group {
	if len(shards) < 2 {
		panic(fmt.Sprintf("sim: group needs >= 2 shards, got %d", len(shards)))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v", lookahead))
	}
	if edges < 0 {
		panic(fmt.Sprintf("sim: negative edge count %d", edges))
	}
	g := &Group{
		shards:    shards,
		lookahead: lookahead,
		edgeBox:   make([][]groupMsg, edges),
		edgeTo:    make([]int32, edges),
		touched:   make([][]int32, len(shards)),
		hub:       -1,
		times:     make([]Time, len(shards)),
		haveT:     make([]bool, len(shards)),
		bounds:    make([]Time, len(shards)),
		cmds:      make([]chan workerCmd, len(shards)),
		watchdog:  DefaultWatchdog,
	}
	for i := range g.edgeTo {
		g.edgeTo[i] = -1
	}
	return g
}

// SetWatchdog overrides the stall budget; d <= 0 disables the watchdog.
func (g *Group) SetWatchdog(d time.Duration) { g.watchdog = d }

// SetStallHandler overrides the watchdog's stall action (default: panic
// with the dump). Intended for tests that must observe the stall report
// without killing the process. Call before Run.
func (g *Group) SetStallHandler(fn func(dump string)) { g.onStall = fn }

// SetHub declares a star topology with the given shard as the hub: every
// non-hub shard exchanges messages only with the hub. The coordinator then
// bounds each spoke by the hub's next event alone (and the hub by the
// earliest spoke), letting a spoke far ahead of the hub advance many
// lookahead windows in one round. Call before Run.
func (g *Group) SetHub(hub int) {
	if hub < 0 || hub >= len(g.shards) {
		panic(fmt.Sprintf("sim: hub %d out of range [0,%d)", hub, len(g.shards)))
	}
	g.hub = hub
}

// Shards returns the number of shards.
func (g *Group) Shards() int { return len(g.shards) }

// Shard returns the i-th shard simulator.
func (g *Group) Shard(i int) *Simulator { return g.shards[i] }

// Post sends a cross-shard message: fn executes on shard to at time at.
// It must be called from within an event executing on shard from (during a
// round), and at must respect the lookahead: at >= from.Now() + lookahead.
// An edge is a point-to-point channel: all its posts come from one shard and
// go to one shard. Deliveries execute in arrival-time order; same-instant
// ties break by (edge index, post order), so an edge whose arrival times
// never decrease — every fixed-delay link — behaves as a FIFO channel.
func (g *Group) Post(from, to, edge int, at Time, fn func()) {
	src := g.shards[from]
	if at < src.now+g.lookahead {
		panic(fmt.Sprintf("sim: post at %v violates lookahead (now %v + %v)",
			at, src.now, g.lookahead))
	}
	if fn == nil {
		panic("sim: nil post action")
	}
	switch g.edgeTo[edge] {
	case int32(to):
	case -1:
		g.edgeTo[edge] = int32(to)
	default:
		panic(fmt.Sprintf("sim: edge %d rebound from shard %d to %d", edge, g.edgeTo[edge], to))
	}
	if len(g.edgeBox[edge]) == 0 {
		g.touched[from] = append(g.touched[from], int32(edge))
	}
	g.edgeBox[edge] = append(g.edgeBox[edge], groupMsg{at: at, fn: fn})
}

// ScheduleGlobalAt schedules a barrier-executed event at absolute time at.
// When several global events share an instant they execute in (prio, FIFO)
// order. Call before Run or from a global event's handler (the coordinator
// context); never from shard events.
func (g *Group) ScheduleGlobalAt(at Time, prio int, fn func()) {
	if fn == nil {
		panic("sim: nil global action")
	}
	g.globalSeq++
	ev := globalEvent{at: at, prio: int32(prio), seq: g.globalSeq, fn: fn}
	i := sort.Search(len(g.globals), func(i int) bool {
		o := g.globals[i]
		if o.at != ev.at {
			return o.at > ev.at
		}
		if o.prio != ev.prio {
			return o.prio > ev.prio
		}
		return o.seq > ev.seq
	})
	g.globals = append(g.globals, globalEvent{})
	copy(g.globals[i+1:], g.globals[i:])
	g.globals[i] = ev
}

// peekAll refreshes the per-shard next-event snapshot and returns the
// global minimum (ok reports whether any shard has work).
func (g *Group) peekAll() (Time, bool) {
	var best Time
	found := false
	for i, sh := range g.shards {
		at, ok := sh.Peek()
		g.haveT[i], g.times[i] = ok, at
		if ok && (!found || at < best) {
			best, found = at, true
		}
	}
	return best, found
}

// computeBounds fills g.bounds with each shard's conservative execution
// bound, capped at capAt. The bound on shard j is the classic lookahead-
// distance formula: min over every shard i with pending events of t_i +
// d(i, j), where d(i, j) is the smallest total lookahead along any message
// path from i to j — one hop for a direct sender, two hops for influence
// relayed through a third shard (including a shard with an empty queue,
// which can be reanimated by a message and forward it, and j itself, whose
// own events can round-trip back through a peer). This is a promise valid
// beyond the current round: future events on shard i never precede t_i, so
// no message can ever arrive at j below the bound — which is what lets a
// shard far ahead of its senders advance many lookahead windows in one
// round while the others catch up.
func (g *Group) computeBounds(capAt Time) {
	if g.hub >= 0 {
		// Star topology: the hub is one hop from every spoke; spokes are
		// two hops from each other (and from themselves, via the hub).
		hubT, hubHas := g.times[g.hub], g.haveT[g.hub]
		var minSpoke Time
		spokeHas := false
		for i := range g.shards {
			if i == g.hub || !g.haveT[i] {
				continue
			}
			if !spokeHas || g.times[i] < minSpoke {
				minSpoke, spokeHas = g.times[i], true
			}
		}
		for i := range g.bounds {
			b := capAt
			if i == g.hub {
				if spokeHas && minSpoke+g.lookahead < b {
					b = minSpoke + g.lookahead
				}
				if hubHas && hubT+2*g.lookahead < b {
					b = hubT + 2*g.lookahead
				}
			} else {
				if hubHas && hubT+g.lookahead < b {
					b = hubT + g.lookahead
				}
				if spokeHas && minSpoke+2*g.lookahead < b {
					b = minSpoke + 2*g.lookahead
				}
			}
			g.bounds[i] = b
		}
		return
	}
	// Fully connected topology: every other shard is one hop away, and a
	// shard's own events can return in two (out and back through any peer).
	// Min and second-min give min-except-self in one pass.
	const none = -1
	min1, min2 := Time(0), Time(0)
	arg1 := none
	has2 := false
	for i := range g.shards {
		if !g.haveT[i] {
			continue
		}
		t := g.times[i]
		switch {
		case arg1 == none:
			min1, arg1 = t, i
		case t < min1:
			min2, has2 = min1, true
			min1, arg1 = t, i
		case !has2 || t < min2:
			min2, has2 = t, true
		}
	}
	for i := range g.bounds {
		b := capAt
		other, ok := min1, arg1 != none
		if i == arg1 {
			other, ok = min2, has2
		}
		if ok && other+g.lookahead < b {
			b = other + g.lookahead
		}
		if g.haveT[i] && g.times[i]+2*g.lookahead < b {
			b = g.times[i] + 2*g.lookahead
		}
		g.bounds[i] = b
	}
}

// Run executes the sharded simulation up to and including horizon. On
// return every shard's clock sits exactly at horizon and all events with
// at <= horizon have executed — the same contract as Simulator.RunUntil on
// a single queue. Run may be called once per Group.
func (g *Group) Run(horizon Time) {
	g.startWorkers()
	defer g.stopWorkers()
	g.startWatchdog()
	defer g.stopWatchdog()

	for {
		minNext, hasWork := g.peekAll()
		hasG := len(g.globals) > 0 && g.globals[0].at <= horizon
		if hasG {
			nextG := g.globals[0].at
			if !hasWork || minNext >= nextG {
				// All shards have drained below nextG and undelivered
				// messages arrive at >= nextG (they were posted before this
				// barrier became due, under bounds capped at nextG): align
				// the clocks and execute the due globals in (prio, FIFO)
				// order. Shard events at exactly nextG run in later rounds,
				// after the barrier — as in a single queue, where the
				// barrier chains were scheduled first.
				for _, sh := range g.shards {
					sh.AdvanceTo(nextG)
				}
				for len(g.globals) > 0 && g.globals[0].at == nextG {
					ev := g.globals[0]
					g.globals = g.globals[1:]
					ev.fn()
				}
				// Globals may post cross-shard messages (with every clock on
				// nextG, an arrival at nextG+lookahead meets Post's bound with
				// equality). Merge them now: the bound formula only covers
				// messages future shard events will post, not ones already
				// sitting in an edge box.
				g.deliver()
				g.progress.Add(1)
				continue
			}
		}
		// Events at exactly the horizon belong to the final round below
		// (after any same-instant barrier globals), so only work strictly
		// below the horizon keeps the windowed loop going.
		if !hasWork || minNext >= horizon {
			break
		}
		capAt := horizon
		if hasG && g.globals[0].at < capAt {
			capAt = g.globals[0].at
		}
		g.computeBounds(capAt)
		g.round(0, false)
		g.progress.Add(1)
	}

	// Final round: events at exactly the horizon execute (RunUntil
	// semantics), their posted messages count as sent but — arriving at
	// > horizon thanks to the positive lookahead — stay pending, exactly
	// like a single queue's in-flight messages at the horizon. RunUntil
	// also leaves every clock at the horizon.
	g.round(horizon, true)
	g.progress.Add(1)
}

// round fans the current execution window out to the shard workers — only
// those with events below their bound — and merges the cross-shard messages
// they posted back into the destination queues.
func (g *Group) round(horizon Time, until bool) {
	dispatched := 0
	for i := range g.shards {
		if until {
			// The final round must run on every shard: RunUntil also
			// advances drained shards' clocks to the horizon.
			g.bounds[i] = horizon
		} else if !g.haveT[i] || g.times[i] >= g.bounds[i] {
			continue // idle this round: nothing below the bound
		}
		g.wg.Add(1)
		g.cmds[i] <- workerCmd{bound: g.bounds[i], until: until}
		dispatched++
	}
	g.snapshotStall(dispatched)
	if dispatched > 0 {
		g.wg.Wait()
	}
	g.deliver()
}

// deliver drains every edge touched this round into its destination shard,
// in ascending edge index. Each edge's buffer is already in arrival order
// (the FIFO-edge contract), and a destination queue breaks equal-time ties
// by insertion order, so this reproduces the deterministic total order
// (arrival time, edge, per-edge sequence) independent of how the OS
// interleaved the workers.
func (g *Group) deliver() {
	g.drained = g.drained[:0]
	for i := range g.touched {
		g.drained = append(g.drained, g.touched[i]...)
		g.touched[i] = g.touched[i][:0]
	}
	if len(g.drained) == 0 {
		return
	}
	sort.Slice(g.drained, func(a, b int) bool { return g.drained[a] < g.drained[b] })
	for _, edge := range g.drained {
		box := g.edgeBox[edge]
		dst := g.shards[g.edgeTo[edge]]
		for i := range box {
			dst.ScheduleAt(box[i].at, box[i].fn)
			box[i].fn = nil
		}
		g.edgeBox[edge] = box[:0]
	}
}

func (g *Group) startWorkers() {
	if g.started {
		panic("sim: group run re-entered")
	}
	g.started = true
	for i := range g.shards {
		ch := make(chan workerCmd)
		g.cmds[i] = ch
		sh := g.shards[i]
		go func() {
			for cmd := range ch {
				if cmd.until {
					sh.RunUntil(cmd.bound)
				} else {
					sh.RunBefore(cmd.bound)
				}
				g.wg.Done()
			}
		}()
	}
}

func (g *Group) stopWorkers() {
	for _, ch := range g.cmds {
		close(ch)
	}
}

// snapshotStall records the coordinator's view of the round for the
// watchdog dump. The mutex keeps the watchdog's read race-free.
func (g *Group) snapshotStall(dispatched int) {
	g.stallMu.Lock()
	g.stall.round++
	g.stall.times = append(g.stall.times[:0], g.times...)
	g.stall.haveT = append(g.stall.haveT[:0], g.haveT...)
	g.stall.bounds = append(g.stall.bounds[:0], g.bounds...)
	g.stall.dispatched = dispatched
	g.stallMu.Unlock()
}

// stallDump formats the last-round snapshot for the stall report.
func (g *Group) stallDump(budget time.Duration, progress uint64) string {
	g.stallMu.Lock()
	defer g.stallMu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "sim: shard group stalled for %v (no round completed); progress=%d round=%d dispatched=%d",
		budget, progress, g.stall.round, g.stall.dispatched)
	for i := range g.stall.times {
		next := "drained"
		if i < len(g.stall.haveT) && g.stall.haveT[i] {
			next = fmt.Sprintf("%v", g.stall.times[i])
		}
		var bound any = "-"
		if i < len(g.stall.bounds) {
			bound = g.stall.bounds[i]
		}
		fmt.Fprintf(&b, "\n  shard %d: next=%s bound=%v", i, next, bound)
	}
	return b.String()
}

func (g *Group) startWatchdog() {
	if g.watchdog <= 0 {
		return
	}
	stop := make(chan struct{})
	g.stopDog = stop
	budget := g.watchdog
	onStall := g.onStall
	go func() {
		last := g.progress.Load()
		stalled := time.Duration(0)
		tick := budget / 10
		if tick <= 0 {
			tick = time.Millisecond
		}
		for {
			select {
			case <-stop:
				return
			case <-time.After(tick):
			}
			cur := g.progress.Load()
			if cur != last {
				last, stalled = cur, 0
				continue
			}
			stalled += tick
			if stalled >= budget {
				dump := g.stallDump(budget, cur)
				if onStall != nil {
					onStall(dump)
					return
				}
				panic(dump)
			}
		}
	}()
}

func (g *Group) stopWatchdog() {
	if g.stopDog != nil {
		close(g.stopDog)
		g.stopDog = nil
	}
}
