// Sharded conservative synchronization: a Group runs several Simulators
// ("shards") in parallel under a Chandy–Misra-style windowed protocol. The
// fixed communication delay between shards is the conservative lookahead: a
// message sent at time t arrives no earlier than t+lookahead, so every shard
// may safely execute all events below
//
//	bound = min(earliest pending event across shards) + lookahead
//
// without ever receiving a message from the current round that lands inside
// the window already executed. Rounds are synchronous: the coordinator
// computes the bound, the shard workers drain their queues strictly below it
// in parallel, and the messages posted during the round are merged between
// rounds in a deterministic order — sorted by (arrival time, edge, per-edge
// sequence) — so a Group run schedules cross-shard deliveries in exactly one
// order regardless of how the OS interleaved the workers.
//
// Globally synchronized events (measurement start, periodic samples,
// invariant audits) do not belong to any shard: they are scheduled on the
// Group with an explicit priority and executed at a barrier, after every
// shard has drained below their instant and been advanced to it, so that
// clock-dependent reads (busy-time integrals, queue lengths) observe the
// same state a single-queue run would.
package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// groupMsg is one cross-shard message awaiting delivery.
type groupMsg struct {
	at   Time
	edge int32
	seq  uint64
	to   int32
	fn   func()
}

// globalEvent is one barrier-executed event, ordered by (at, prio, seq).
type globalEvent struct {
	at   Time
	prio int32
	seq  uint64
	fn   func()
}

// Group synchronizes a set of shard Simulators conservatively. Construct
// with NewGroup, schedule initial work on the shards and global events on
// the Group, then call Run once. A Group is not reusable across runs.
type Group struct {
	shards    []*Simulator
	lookahead Time

	// Per-shard outboxes: written only by the owning shard's worker during
	// a round, drained by the coordinator between rounds (the WaitGroup
	// barrier orders the accesses).
	outboxes [][]groupMsg

	// edgeSeq numbers the messages of each FIFO edge. Each edge must be
	// used from exactly one sending shard, so the counter is written by one
	// worker only.
	edgeSeq []uint64

	// Barrier-executed global events, a sorted pending list (removals pop
	// from the front; the event count is small: measurement chains, not
	// workload).
	globals   []globalEvent
	globalSeq uint64

	// merged is the coordinator's reusable merge buffer.
	merged []groupMsg

	// Worker machinery: one persistent goroutine per shard, fed rounds over
	// its own channel; the WaitGroup is the round barrier (and the
	// happens-before edge the race detector sees).
	cmds    []chan workerCmd
	wg      sync.WaitGroup
	started bool

	// Deadlock watchdog: progress bumps on every round and barrier; a
	// background goroutine panics when it stops moving for watchdog wall
	// time (0 disables). Guards against synchronization bugs that would
	// otherwise hang a test silently.
	watchdog time.Duration
	progress atomic.Uint64
	stopDog  chan struct{}
}

type workerCmd struct {
	bound Time
	// until selects RunUntil (inclusive horizon semantics, clock advanced
	// to bound) for the final round instead of RunBefore.
	until bool
}

// DefaultWatchdog is the wall-clock stall budget after which a Group run
// panics: no shard advancing for this long means the synchronizer (not the
// workload) is stuck.
const DefaultWatchdog = 10 * time.Second

// NewGroup builds a synchronizer over the given shards. edges is the number
// of distinct FIFO message edges (each used by one sending shard only);
// lookahead is the minimum cross-shard message latency and must be positive
// — with zero lookahead no shard could ever safely lead, and the caller
// should run single-queue instead.
func NewGroup(shards []*Simulator, edges int, lookahead Time) *Group {
	if len(shards) < 2 {
		panic(fmt.Sprintf("sim: group needs >= 2 shards, got %d", len(shards)))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v", lookahead))
	}
	if edges < 0 {
		panic(fmt.Sprintf("sim: negative edge count %d", edges))
	}
	return &Group{
		shards:    shards,
		lookahead: lookahead,
		outboxes:  make([][]groupMsg, len(shards)),
		edgeSeq:   make([]uint64, edges),
		cmds:      make([]chan workerCmd, len(shards)),
		watchdog:  DefaultWatchdog,
	}
}

// SetWatchdog overrides the stall budget; d <= 0 disables the watchdog.
func (g *Group) SetWatchdog(d time.Duration) { g.watchdog = d }

// Shards returns the number of shards.
func (g *Group) Shards() int { return len(g.shards) }

// Shard returns the i-th shard simulator.
func (g *Group) Shard(i int) *Simulator { return g.shards[i] }

// Post sends a cross-shard message: fn executes on shard to at time at.
// It must be called from within an event executing on shard from (during a
// round), and at must respect the lookahead: at >= from.Now() + lookahead.
// Messages on one edge are delivered in post order (FIFO); distinct edges
// with equal arrival times are ordered by edge index.
func (g *Group) Post(from, to, edge int, at Time, fn func()) {
	src := g.shards[from]
	if at < src.now+g.lookahead {
		panic(fmt.Sprintf("sim: post at %v violates lookahead (now %v + %v)",
			at, src.now, g.lookahead))
	}
	if fn == nil {
		panic("sim: nil post action")
	}
	g.edgeSeq[edge]++
	g.outboxes[from] = append(g.outboxes[from], groupMsg{
		at: at, edge: int32(edge), seq: g.edgeSeq[edge], to: int32(to), fn: fn,
	})
}

// ScheduleGlobalAt schedules a barrier-executed event at absolute time at.
// When several global events share an instant they execute in (prio, FIFO)
// order. Call before Run or from a global event's handler (the coordinator
// context); never from shard events.
func (g *Group) ScheduleGlobalAt(at Time, prio int, fn func()) {
	if fn == nil {
		panic("sim: nil global action")
	}
	g.globalSeq++
	ev := globalEvent{at: at, prio: int32(prio), seq: g.globalSeq, fn: fn}
	i := sort.Search(len(g.globals), func(i int) bool {
		o := g.globals[i]
		if o.at != ev.at {
			return o.at > ev.at
		}
		if o.prio != ev.prio {
			return o.prio > ev.prio
		}
		return o.seq > ev.seq
	})
	g.globals = append(g.globals, globalEvent{})
	copy(g.globals[i+1:], g.globals[i:])
	g.globals[i] = ev
}

// minNext returns the earliest pending event time across all shards, or
// false when every shard is drained.
func (g *Group) minNext() (Time, bool) {
	var best Time
	found := false
	for _, sh := range g.shards {
		if at, ok := sh.Peek(); ok && (!found || at < best) {
			best, found = at, true
		}
	}
	return best, found
}

// Run executes the sharded simulation up to and including horizon. On
// return every shard's clock sits exactly at horizon and all events with
// at <= horizon have executed — the same contract as Simulator.RunUntil on
// a single queue. Run may be called once per Group.
func (g *Group) Run(horizon Time) {
	g.startWorkers()
	defer g.stopWorkers()
	g.startWatchdog()
	defer g.stopWatchdog()

	for {
		minNext, hasWork := g.minNext()
		var nextG Time
		hasG := len(g.globals) > 0 && g.globals[0].at <= horizon
		if hasG {
			nextG = g.globals[0].at
		}
		// Events at exactly the horizon belong to the final round below
		// (after any same-instant barrier globals), so only work strictly
		// below the horizon keeps the windowed loop going.
		if (!hasWork || minNext >= horizon) && !hasG {
			break
		}
		// Conservative bound: every message posted this round arrives at
		// >= minNext + lookahead >= bound, so nothing lands inside the
		// window being executed.
		barrier := false
		var bound Time
		if hasWork {
			bound = minNext + g.lookahead
			if hasG && nextG <= bound {
				bound = nextG
				barrier = true
			}
			if bound > horizon {
				bound = horizon
				barrier = hasG && nextG == horizon
			}
		} else {
			bound = nextG
			barrier = true
		}
		if hasWork && minNext < bound {
			g.round(bound, false)
		}
		if barrier {
			// All shards have drained below nextG and round messages
			// arrive at >= bound = nextG: align the clocks and execute
			// the due globals in (prio, FIFO) order.
			for _, sh := range g.shards {
				sh.AdvanceTo(nextG)
			}
			for len(g.globals) > 0 && g.globals[0].at == nextG {
				ev := g.globals[0]
				g.globals = g.globals[1:]
				ev.fn()
			}
		}
		g.progress.Add(1)
	}

	// Final round: events at exactly the horizon execute (RunUntil
	// semantics), their posted messages count as sent but — arriving at
	// > horizon thanks to the positive lookahead — stay pending, exactly
	// like a single queue's in-flight messages at the horizon. RunUntil
	// also leaves every clock at the horizon.
	g.round(horizon, true)
	g.progress.Add(1)
}

// round fans one execution window out to the shard workers and merges the
// cross-shard messages they posted back into the destination queues in the
// deterministic (at, edge, seq) order.
func (g *Group) round(bound Time, until bool) {
	dispatched := 0
	for i, sh := range g.shards {
		at, ok := sh.Peek()
		if until {
			// The final round must run on every shard: RunUntil also
			// advances drained shards' clocks to the horizon.
			ok, at = true, bound
		}
		if ok && (at < bound || (until && at <= bound)) {
			g.wg.Add(1)
			g.cmds[i] <- workerCmd{bound: bound, until: until}
			dispatched++
		}
	}
	if dispatched > 0 {
		g.wg.Wait()
	}
	g.deliver()
}

// deliver merges all outboxes into the destination shards. Sort order is
// (arrival time, edge, per-edge sequence): a strict total order over all
// messages of a round — per-edge sequences are unique within an edge — so
// insertion order (and therefore the destination's same-instant FIFO
// tie-break) is independent of worker scheduling.
func (g *Group) deliver() {
	g.merged = g.merged[:0]
	for i := range g.outboxes {
		g.merged = append(g.merged, g.outboxes[i]...)
		g.outboxes[i] = g.outboxes[i][:0]
	}
	if len(g.merged) == 0 {
		return
	}
	sort.Slice(g.merged, func(a, b int) bool {
		x, y := &g.merged[a], &g.merged[b]
		if x.at != y.at {
			return x.at < y.at
		}
		if x.edge != y.edge {
			return x.edge < y.edge
		}
		return x.seq < y.seq
	})
	for i := range g.merged {
		m := &g.merged[i]
		g.shards[m.to].ScheduleAt(m.at, m.fn)
		m.fn = nil
	}
}

func (g *Group) startWorkers() {
	if g.started {
		panic("sim: group run re-entered")
	}
	g.started = true
	for i := range g.shards {
		ch := make(chan workerCmd)
		g.cmds[i] = ch
		sh := g.shards[i]
		go func() {
			for cmd := range ch {
				if cmd.until {
					sh.RunUntil(cmd.bound)
				} else {
					sh.RunBefore(cmd.bound)
				}
				g.wg.Done()
			}
		}()
	}
}

func (g *Group) stopWorkers() {
	for _, ch := range g.cmds {
		close(ch)
	}
}

func (g *Group) startWatchdog() {
	if g.watchdog <= 0 {
		return
	}
	stop := make(chan struct{})
	g.stopDog = stop
	budget := g.watchdog
	go func() {
		last := g.progress.Load()
		stalled := time.Duration(0)
		tick := budget / 10
		if tick <= 0 {
			tick = time.Millisecond
		}
		for {
			select {
			case <-stop:
				return
			case <-time.After(tick):
			}
			cur := g.progress.Load()
			if cur != last {
				last, stalled = cur, 0
				continue
			}
			stalled += tick
			if stalled >= budget {
				panic(fmt.Sprintf(
					"sim: shard group stalled for %v (no round completed); progress=%d",
					budget, cur))
			}
		}
	}()
}

func (g *Group) stopWatchdog() {
	if g.stopDog != nil {
		close(g.stopDog)
		g.stopDog = nil
	}
}
