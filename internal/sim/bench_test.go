package sim

import (
	"math/rand"
	"testing"
)

// BenchmarkScheduleStep measures steady-state churn: a rolling window of
// pending events with one Schedule and one Step per iteration. This is the
// kernel's hot path in the hybrid engine, where every CPU burst, I/O, and
// message completion schedules a successor.
func BenchmarkScheduleStep(b *testing.B) {
	s := New()
	action := func() {}
	const window = 256
	for i := 0; i < window; i++ {
		s.Schedule(float64(i%97)+1, action)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(float64(i%97)+1, action)
		s.Step()
	}
}

// BenchmarkScheduleCancel measures the cancellation path: every scheduled
// event is removed from the middle of a standing window.
func BenchmarkScheduleCancel(b *testing.B) {
	s := New()
	action := func() {}
	const window = 256
	for i := 0; i < window; i++ {
		s.Schedule(float64(i%97)+1, action)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := s.Schedule(float64(i%89)+1, action)
		if !s.Cancel(e) {
			b.Fatal("pending event failed to cancel")
		}
	}
}

// holdSizes are the standing populations for the classic hold-model race
// between the kernel's 4-ary heap and the calendar queue. The hybrid engine
// keeps roughly one pending event per busy resource, so the small sizes are
// the realistic regime and the large one is the high-density stress the
// calendar-queue literature targets.
var holdSizes = []struct {
	name string
	n    int
}{
	{"n256", 256},
	{"n4096", 4096},
	{"n65536", 65536},
}

// holdIncrements precomputes an exponential(1) increment stream so the RNG
// cost is identical (and out of the timed loop shape) for both contenders.
func holdIncrements(n int) []Time {
	rng := rand.New(rand.NewSource(12345))
	incs := make([]Time, n)
	for i := range incs {
		incs[i] = Time(rng.ExpFloat64())
	}
	return incs
}

// BenchmarkHoldHeap runs the hold model on the Simulator's slab/4-ary-heap
// kernel: pop the minimum, reschedule at popped-time + exp(1).
func BenchmarkHoldHeap(b *testing.B) {
	incs := holdIncrements(1 << 16)
	for _, size := range holdSizes {
		b.Run(size.name, func(b *testing.B) {
			s := New()
			action := func() {}
			for i := 0; i < size.n; i++ {
				s.Schedule(incs[i%len(incs)], action)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
				s.Schedule(incs[i%len(incs)], action)
			}
		})
	}
}

// BenchmarkHoldCalendar runs the identical hold model on the calendar queue.
func BenchmarkHoldCalendar(b *testing.B) {
	incs := holdIncrements(1 << 16)
	for _, size := range holdSizes {
		b.Run(size.name, func(b *testing.B) {
			q := NewCalendarQueue(1.0 / Time(size.n))
			action := func() {}
			var clock Time
			for i := 0; i < size.n; i++ {
				q.Push(incs[i%len(incs)], action)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at, _, ok := q.PopMin()
				if !ok {
					b.Fatal("calendar drained")
				}
				clock = at
				q.Push(clock+incs[i%len(incs)], action)
			}
		})
	}
}
