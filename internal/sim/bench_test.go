package sim

import "testing"

// BenchmarkScheduleStep measures steady-state churn: a rolling window of
// pending events with one Schedule and one Step per iteration. This is the
// kernel's hot path in the hybrid engine, where every CPU burst, I/O, and
// message completion schedules a successor.
func BenchmarkScheduleStep(b *testing.B) {
	s := New()
	action := func() {}
	const window = 256
	for i := 0; i < window; i++ {
		s.Schedule(float64(i%97)+1, action)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(float64(i%97)+1, action)
		s.Step()
	}
}

// BenchmarkScheduleCancel measures the cancellation path: every scheduled
// event is removed from the middle of a standing window.
func BenchmarkScheduleCancel(b *testing.B) {
	s := New()
	action := func() {}
	const window = 256
	for i := 0; i < window; i++ {
		s.Schedule(float64(i%97)+1, action)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := s.Schedule(float64(i%89)+1, action)
		if !s.Cancel(e) {
			b.Fatal("pending event failed to cancel")
		}
	}
}
