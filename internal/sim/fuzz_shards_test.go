package sim

import "testing"

// decodeChains interprets a fuzz byte string as a chain workload over k
// shards: per chain one byte each for the start shard, the start time (grid
// steps), and the hop count, then (shard, gap) byte pairs per hop. The
// decoder never fails — truncated records just end the workload — so every
// input the fuzzer mutates into existence is a valid differential case.
func decodeChains(data []byte, k int) []chainSpec {
	var chains []chainSpec
	for len(data) >= 3 && len(chains) < 64 {
		c := chainSpec{start: int(data[0]) % k, at: int(data[1])}
		nhops := int(data[2]) % 6
		data = data[3:]
		for h := 0; h < nhops && len(data) >= 2; h++ {
			c.hops = append(c.hops, chainHop{shard: int(data[0]) % k, gap: int(data[1]) % 32})
			data = data[2:]
		}
		chains = append(chains, c)
	}
	return chains
}

// FuzzShardSync fuzzes the conservative synchronizer against the
// single-queue oracle: any byte string decodes to a chain workload, which
// must execute identically (same per-shard event sequences, same exact
// timestamps) on a Group and on one Simulator. Seed corpus lives in
// testdata/fuzz/FuzzShardSync.
func FuzzShardSync(f *testing.F) {
	f.Add([]byte{0, 8, 0, 0, 3, 1, 1, 0, 1, 5, 2, 1, 12, 1, 9})
	f.Add([]byte{2, 3, 0, 100, 2, 0, 0, 1, 31, 1, 0, 5, 2, 2, 7, 0, 3})
	f.Add([]byte{5, 255, 1, 0, 5, 0, 0, 1, 1, 2, 2, 0, 3, 1, 4, 2, 0, 0, 5, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		k := 2 + int(data[0])%3
		lookaheadSteps := 1 + int(data[1])%8
		chains := decodeChains(data[2:], k)
		if len(chains) == 0 {
			return
		}
		got := runChainsSharded(k, lookaheadSteps, chains)
		want := runChainsOracle(k, lookaheadSteps, chains)
		compareChainLogs(t, got, want, "fuzz")
	})
}
