// Package flatmap provides an open-addressed hash map for integer keys,
// used on the simulation's hottest state paths (the lock manager's element
// and transaction tables, the sites' resident-transaction tables) in place
// of Go's built-in map. The difference that matters at N=1000 sites is not
// asymptotic: linear probing over two flat arrays keeps a lookup inside one
// or two cache lines, inserts after warm-up reuse the arrays with no bucket
// allocation, and deletes shift displaced neighbors backward instead of
// leaving tombstones, so the table never degrades with churn.
//
// The map is deliberately minimal: Get/Put/Delete/Len plus an unordered
// Range for integrity checks. Nothing in the simulation may depend on
// iteration order (the determinism contract); Range exists only for
// self-check walks whose outcome is order-independent.
package flatmap

// Key is any integer key type.
type Key interface {
	~int | ~int32 | ~int64 | ~uint32 | ~uint64
}

// Map is an open-addressed hash table with linear probing and
// backward-shift deletion. The zero value is not ready to use; call New.
type Map[K Key, V any] struct {
	keys  []K
	vals  []V
	used  []bool
	n     int
	shift uint // 64 - log2(len(keys)), for fibonacci hashing
}

// New returns a map pre-sized to hold hint entries without growing.
func New[K Key, V any](hint int) *Map[K, V] {
	capacity := 8
	for capacity*3/4 < hint {
		capacity *= 2
	}
	m := &Map[K, V]{}
	m.init(capacity)
	return m
}

func (m *Map[K, V]) init(capacity int) {
	m.keys = make([]K, capacity)
	m.vals = make([]V, capacity)
	m.used = make([]bool, capacity)
	m.shift = 64
	for c := capacity; c > 1; c >>= 1 {
		m.shift--
	}
}

// home returns the key's preferred slot: fibonacci hashing spreads the
// sequential IDs the simulation generates (element numbers, transaction
// counters) across the table's top bits, where clustering would otherwise
// make linear probing quadratic.
func (m *Map[K, V]) home(k K) int {
	return int((uint64(k) * 0x9E3779B97F4A7C15) >> m.shift)
}

// Len returns the number of entries.
func (m *Map[K, V]) Len() int { return m.n }

// Get returns the value stored under k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	mask := len(m.keys) - 1
	for i := m.home(k); ; i = (i + 1) & mask {
		if !m.used[i] {
			var zero V
			return zero, false
		}
		if m.keys[i] == k {
			return m.vals[i], true
		}
	}
}

// Put stores v under k, replacing any existing value.
func (m *Map[K, V]) Put(k K, v V) {
	if (m.n+1)*4 > len(m.keys)*3 {
		m.grow()
	}
	mask := len(m.keys) - 1
	for i := m.home(k); ; i = (i + 1) & mask {
		if !m.used[i] {
			m.keys[i], m.vals[i], m.used[i] = k, v, true
			m.n++
			return
		}
		if m.keys[i] == k {
			m.vals[i] = v
			return
		}
	}
}

// Delete removes k's entry, reporting whether one existed. Displaced
// neighbors of the probe chain are shifted back over the hole, so the table
// carries no tombstones and probe chains never outlive their entries.
func (m *Map[K, V]) Delete(k K) bool {
	mask := len(m.keys) - 1
	i := m.home(k)
	for {
		if !m.used[i] {
			return false
		}
		if m.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	for j := i; ; {
		j = (j + 1) & mask
		if !m.used[j] {
			break
		}
		// The entry at j may move into the hole at i only if its home does
		// not lie in the cyclic interval (i, j] — otherwise the move would
		// put it before its home and lookups would miss it.
		if (j-m.home(m.keys[j]))&mask >= (j-i)&mask {
			m.keys[i], m.vals[i] = m.keys[j], m.vals[j]
			i = j
		}
	}
	var zero V
	m.vals[i] = zero // drop any pointer so the value can be collected
	m.used[i] = false
	m.n--
	return true
}

// Range calls f for every entry in unspecified order until f returns false.
// Callers must not depend on the order (and must not mutate the map during
// the walk); it exists for integrity checks, not for simulation logic.
func (m *Map[K, V]) Range(f func(K, V) bool) {
	for i, u := range m.used {
		if u && !f(m.keys[i], m.vals[i]) {
			return
		}
	}
}

func (m *Map[K, V]) grow() {
	keys, vals, used := m.keys, m.vals, m.used
	m.init(2 * len(keys))
	m.n = 0
	for i, u := range used {
		if u {
			m.Put(keys[i], vals[i])
		}
	}
}
