package flatmap

import (
	"math/rand"
	"testing"
)

// TestDifferentialAgainstBuiltin drives the flat map and a builtin map with
// the same random operation stream — inserts, overwrites, deletes of absent
// and present keys, lookups — and requires exact agreement after every step.
// The key range is kept small relative to the operation count so probe
// chains collide, break, and shift constantly; backward-shift deletion bugs
// show up here as lookups missing displaced entries.
func TestDifferentialAgainstBuiltin(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(7100 + trial)))
		m := New[uint32, int](0)
		ref := make(map[uint32]int)
		for op := 0; op < 5000; op++ {
			k := uint32(rng.Intn(300))
			switch rng.Intn(3) {
			case 0:
				v := rng.Int()
				m.Put(k, v)
				ref[k] = v
			case 1:
				got := m.Delete(k)
				_, want := ref[k]
				if got != want {
					t.Fatalf("trial %d op %d: Delete(%d)=%v, want %v", trial, op, k, got, want)
				}
				delete(ref, k)
			case 2:
				got, ok := m.Get(k)
				want, wok := ref[k]
				if ok != wok || got != want {
					t.Fatalf("trial %d op %d: Get(%d)=(%d,%v), want (%d,%v)", trial, op, k, got, ok, want, wok)
				}
			}
			if m.Len() != len(ref) {
				t.Fatalf("trial %d op %d: Len=%d, want %d", trial, op, m.Len(), len(ref))
			}
		}
		// Full sweep: every reference entry must be reachable, and Range
		// must visit exactly the reference set.
		for k, want := range ref {
			if got, ok := m.Get(k); !ok || got != want {
				t.Fatalf("trial %d final: Get(%d)=(%d,%v), want (%d,true)", trial, k, got, ok, want)
			}
		}
		seen := make(map[uint32]int)
		m.Range(func(k uint32, v int) bool {
			seen[k] = v
			return true
		})
		if len(seen) != len(ref) {
			t.Fatalf("trial %d: Range visited %d entries, want %d", trial, len(seen), len(ref))
		}
	}
}

// TestNegativeKeys pins the hash on signed keys: negative int64 keys must
// round-trip (the conversion to uint64 is well-defined two's complement).
func TestNegativeKeys(t *testing.T) {
	m := New[int64, string](4)
	m.Put(-1, "a")
	m.Put(-(1 << 40), "b")
	m.Put(7, "c")
	for k, want := range map[int64]string{-1: "a", -(1 << 40): "b", 7: "c"} {
		if got, ok := m.Get(k); !ok || got != want {
			t.Fatalf("Get(%d)=(%q,%v), want (%q,true)", k, got, ok, want)
		}
	}
}

// TestSteadyStateAllocFree: once grown to its high-water population, a
// delete+insert churn cycle allocates nothing — the property the lock
// manager's per-transaction tables rely on.
func TestSteadyStateAllocFree(t *testing.T) {
	m := New[int64, int](0)
	for i := int64(0); i < 1000; i++ {
		m.Put(i, int(i))
	}
	i := int64(0)
	if got := testing.AllocsPerRun(2000, func() {
		m.Delete(i)
		m.Put(i+1000, int(i))
		i++
	}); got != 0 {
		t.Errorf("churn cycle allocates %v times per run, want 0", got)
	}
}
