// Package runner executes independent simulation runs across a bounded
// worker pool. Sequential engines share no mutable state, so independent
// (strategy × rate × replication) runs parallelize perfectly; sharded engines
// (Config.Shards > 1) bring their own internal worker goroutines, so the pool
// co-schedules them by weight — a task occupies as many pool slots as the
// threads it will actually run — keeping a replication sweep of sharded runs
// from oversubscribing the host. Results stay bit-identical to a serial
// execution for any pool size: they are stored by task index and every run's
// RNG seed is a pure function of (base seed, strategy label, rate index,
// replication index), never of worker identity or scheduling order.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
)

// Task is one independent simulation run: a complete configuration (seed
// included) plus a constructor for a fresh strategy instance. The strategy is
// built inside the worker so stateful strategies are never shared between
// goroutines.
type Task struct {
	// Label identifies the task in error messages, e.g. "static* at rate 2.5".
	Label string
	Cfg   hybrid.Config
	Make  func(hybrid.Config) (routing.Strategy, error)
	// Prepare, when non-nil, runs on the freshly built engine before it
	// starts — the hook the correctness harness uses to subscribe observers.
	// It runs inside the worker, so anything it wires up must be private to
	// this task.
	Prepare func(*hybrid.Engine)
}

// Parallelism resolves a requested worker count: any positive value is used
// as given, anything else selects GOMAXPROCS.
func Parallelism(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// TaskWeight is the number of pool slots a task occupies: the count of OS
// threads its engine keeps busy. A sequential run weighs 1. A sharded run
// (Config.Shards > 1 with the preconditions the engine itself checks — a
// positive CommDelay lookahead and non-ideal feedback) weighs its effective
// shard count, Shards capped at Sites+1, because the engine spawns that many
// internal workers. The weight mirrors the engine's own sequential-fallback
// decision so a config that will silently run sequentially is not budgeted as
// if it were parallel; a task whose Prepare hook subscribes external
// observers (forcing the sequential core) is over-budgeted, which only
// under-fills the pool, never oversubscribes it.
func TaskWeight(cfg hybrid.Config) int {
	if cfg.Shards <= 1 || cfg.CommDelay <= 0 || cfg.Feedback == hybrid.FeedbackIdeal {
		return 1
	}
	w := cfg.Shards
	if w > cfg.Sites+1 {
		w = cfg.Sites + 1
	}
	return w
}

// ProgressEvent reports the pool's state after one task finishes. Events are
// delivered serially (never concurrently), in completion order — which under
// parallelism is not task order.
type ProgressEvent struct {
	Done  int    // tasks finished so far, including this one
	Total int    // total tasks in this Run
	Label string // label of the task that just finished
	// Elapsed is the wall time since Run started.
	Elapsed time.Duration
	// ETA estimates the remaining wall time by extrapolating the pool's
	// observed completion throughput over the outstanding tasks. It is 0
	// when nothing remains.
	ETA time.Duration
}

// Options configures a RunOpts pool.
type Options struct {
	// Parallelism bounds the worker pool; 0 or negative selects GOMAXPROCS.
	// The value changes only wall-clock time, never results.
	Parallelism int
	// Progress, when non-nil, is called after each task completes. Calls are
	// serialized, so the callback needs no locking of its own. The callback
	// observes wall-clock completion order and timing only — simulation
	// results are unaffected by its presence.
	Progress func(ProgressEvent)
	// Context, when non-nil, cancels the pool: no new task starts after it
	// is done, in-flight tasks finish (the engines have no preemption
	// point), and RunOpts returns the partial results alongside ctx.Err().
	// A never-started task leaves its zero Result in place — detectable by
	// Result.Window == 0, since every completed run measures a positive
	// window.
	Context context.Context
}

// Run executes every task, at most parallelism at once (0 or negative means
// GOMAXPROCS), and returns the results in task order. The worker count
// affects only wall-clock time: each task carries its own seed, so the
// returned slice is identical for any parallelism. On error the first failing
// task (in task order, not completion order) is reported.
func Run(tasks []Task, parallelism int) ([]hybrid.Result, error) {
	return RunOpts(tasks, Options{Parallelism: parallelism})
}

// RunOpts is Run with pool options. Results are identical to Run's for any
// Options — progress reporting is observation only, and cancellation only
// truncates which tasks ran, never what a completed task measured. On
// cancellation the partial results are returned (full-length, task order;
// never-started tasks are zero) together with the context's error.
//
// Admission is weight-based: each task occupies TaskWeight(task.Cfg) pool
// slots for its whole run, so a sweep mixing sharded and sequential runs
// keeps total engine threads at or below the pool size instead of counting a
// Shards=8 engine as one unit of work. Tasks are admitted in task order; a
// task heavier than the whole pool is clamped to the pool size so it still
// runs (alone).
func RunOpts(tasks []Task, opt Options) ([]hybrid.Result, error) {
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]hybrid.Result, len(tasks))
	errs := make([]error, len(tasks))
	workers := Parallelism(opt.Parallelism)
	prog := newProgress(opt.Progress, len(tasks))
	if workers <= 1 || len(tasks) <= 1 {
		for i := range tasks {
			if ctx.Err() != nil {
				return results, ctx.Err()
			}
			if err := runTask(&tasks[i], &results[i]); err != nil {
				return nil, err
			}
			prog.done(tasks[i].Label)
		}
		return results, nil
	}

	// Weighted admission: sem holds one token per occupied pool slot. The
	// dispatch loop below is the only acquirer, so taking a task's tokens one
	// at a time cannot deadlock against another admission — it just waits for
	// completions to drain tokens.
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
dispatch:
	for i := range tasks {
		w := TaskWeight(tasks[i].Cfg)
		if w > workers {
			w = workers // heavier than the pool: run alone rather than never
		}
		for taken := 0; taken < w; taken++ {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				// Partially acquired tokens are abandoned: admission stops
				// here, and stray tokens only ever understate free capacity.
				break dispatch
			}
		}
		wg.Add(1)
		go func(i, w int) {
			defer wg.Done()
			errs[i] = runTask(&tasks[i], &results[i])
			prog.done(tasks[i].Label)
			for released := 0; released < w; released++ {
				<-sem
			}
		}(i, w)
	}
	wg.Wait()
	if ctx.Err() != nil {
		return results, ctx.Err()
	}

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// progress serializes completion callbacks and derives the ETA.
type progress struct {
	mu    sync.Mutex
	cb    func(ProgressEvent)
	total int
	count int
	start time.Time
}

func newProgress(cb func(ProgressEvent), total int) *progress {
	if cb == nil {
		return nil
	}
	return &progress{cb: cb, total: total, start: time.Now()}
}

func (p *progress) done(label string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.count++
	elapsed := time.Since(p.start)
	ev := ProgressEvent{Done: p.count, Total: p.total, Label: label, Elapsed: elapsed}
	if left := p.total - p.count; left > 0 && p.count > 0 {
		// elapsed/count is the pool's observed wall-clock throughput, so it
		// already reflects the worker width.
		ev.ETA = elapsed / time.Duration(p.count) * time.Duration(left)
	}
	p.cb(ev)
}

func runTask(t *Task, out *hybrid.Result) error {
	if t.Make == nil {
		return fmt.Errorf("runner: %s: nil strategy maker", t.Label)
	}
	strat, err := t.Make(t.Cfg)
	if err != nil {
		return fmt.Errorf("runner: %s: %w", t.Label, err)
	}
	engine, err := hybrid.New(t.Cfg, strat)
	if err != nil {
		return fmt.Errorf("runner: %s: %w", t.Label, err)
	}
	if t.Prepare != nil {
		t.Prepare(engine)
	}
	*out = engine.Run()
	return nil
}

// DeriveSeed maps a (base seed, strategy label, rate index, replication
// index) tuple to a run seed through splitmix64-style finalizer rounds over
// an FNV-1a hash of the label. The derivation is a pure function — stable
// across calls, processes, and Go releases — and scrambles every input bit,
// so distinct tuples yield distinct, well-separated seed streams and changing
// only the base seed reseeds every derived run.
func DeriveSeed(base uint64, label string, rateIdx, rep int) uint64 {
	const golden = 0x9e3779b97f4a7c15
	h := mix64(base + golden)
	h = mix64(h ^ fnv1a(label))
	h = mix64(h ^ (uint64(uint32(rateIdx))+1)*golden)
	h = mix64(h ^ (uint64(uint32(rep))+1)*golden)
	return h
}

// RunSeed is the seed schedule of the replicated experiment sweeps:
// replication 0 keeps the base seed, so a single-replication sweep is
// bit-identical to the historical single-run path and all strategies face
// common random numbers (a variance-reduction choice for paired
// comparisons); additional replications draw fresh streams from DeriveSeed.
func RunSeed(base uint64, label string, rateIdx, rep int) uint64 {
	if rep == 0 {
		return base
	}
	return DeriveSeed(base, label, rateIdx, rep)
}

// mix64 is the splitmix64 output finalizer (Steele, Lea & Flood): a bijective
// avalanche over 64 bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fnv1a hashes a label with 64-bit FNV-1a.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
