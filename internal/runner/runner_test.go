package runner

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
)

func makeQueueLength(hybrid.Config) (routing.Strategy, error) {
	return routing.QueueLength{}, nil
}

func testCfg(seed uint64) hybrid.Config {
	cfg := hybrid.DefaultConfig()
	cfg.Sites = 4
	cfg.Warmup = 5
	cfg.Duration = 20
	cfg.ArrivalRatePerSite = 1.5
	cfg.Seed = seed
	return cfg
}

// TestDeriveSeedDistinct checks that distinct (label, rate, rep) tuples yield
// distinct seeds under one base seed.
func TestDeriveSeedDistinct(t *testing.T) {
	labels := []string{"none", "static*", "queue-length", "min-average/nis", ""}
	seen := make(map[uint64]string)
	for _, label := range labels {
		for rate := 0; rate < 10; rate++ {
			for rep := 0; rep < 10; rep++ {
				s := DeriveSeed(42, label, rate, rep)
				key := fmt.Sprintf("%s/%d/%d", label, rate, rep)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s both derive %#x", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
}

// TestDeriveSeedStable checks the derivation is a pure function of its
// arguments, with pinned values so accidental reformulation (which would
// silently invalidate recorded experiment outputs) fails loudly.
func TestDeriveSeedStable(t *testing.T) {
	for i := 0; i < 3; i++ {
		if a, b := DeriveSeed(1, "x", 2, 3), DeriveSeed(1, "x", 2, 3); a != b {
			t.Fatalf("derivation not stable: %#x vs %#x", a, b)
		}
	}
	if a, b := DeriveSeed(7, "none", 0, 1), DeriveSeed(7, "none", 1, 0); a == b {
		t.Fatal("swapping rate and rep indexes did not change the seed")
	}
}

// TestDeriveSeedBaseChangesEverything checks that changing only the base
// seed changes every derived seed.
func TestDeriveSeedBaseChangesEverything(t *testing.T) {
	for _, label := range []string{"none", "queue-length"} {
		for rate := 0; rate < 8; rate++ {
			for rep := 0; rep < 8; rep++ {
				if DeriveSeed(1, label, rate, rep) == DeriveSeed(2, label, rate, rep) {
					t.Fatalf("base seed change left (%s,%d,%d) unchanged", label, rate, rep)
				}
			}
		}
	}
}

// TestRunSeedReplicationZero checks the backward-compatibility contract: the
// first replication runs on the unmodified base seed.
func TestRunSeedReplicationZero(t *testing.T) {
	if got := RunSeed(99, "anything", 5, 0); got != 99 {
		t.Fatalf("RunSeed rep 0 = %#x, want base 99", got)
	}
	if got := RunSeed(99, "anything", 5, 1); got == 99 {
		t.Fatal("RunSeed rep 1 returned the base seed")
	}
	if RunSeed(99, "a", 0, 1) != DeriveSeed(99, "a", 0, 1) {
		t.Fatal("RunSeed rep >= 1 disagrees with DeriveSeed")
	}
}

// TestRunOrderIndependentOfParallelism checks the pool's core guarantee:
// results arrive in task order and are bit-identical for any worker count.
func TestRunOrderIndependentOfParallelism(t *testing.T) {
	var tasks []Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, Task{
			Label: fmt.Sprintf("task %d", i),
			Cfg:   testCfg(uint64(i + 1)),
			Make:  makeQueueLength,
		})
	}
	serial, err := Run(tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		parallel, err := Run(tasks, workers)
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("parallelism %d results differ from serial", workers)
		}
	}
}

// TestRunReportsFirstErrorInTaskOrder checks error selection is deterministic
// even when a later-indexed task fails first on the wall clock.
func TestRunReportsFirstErrorInTaskOrder(t *testing.T) {
	fail := func(i int) func(hybrid.Config) (routing.Strategy, error) {
		return func(hybrid.Config) (routing.Strategy, error) {
			return nil, fmt.Errorf("boom %d", i)
		}
	}
	tasks := []Task{
		{Label: "ok", Cfg: testCfg(1), Make: makeQueueLength},
		{Label: "bad 1", Cfg: testCfg(2), Make: fail(1)},
		{Label: "bad 2", Cfg: testCfg(3), Make: fail(2)},
	}
	for _, workers := range []int{1, 4} {
		_, err := Run(tasks, workers)
		if err == nil {
			t.Fatalf("parallelism %d: failing task accepted", workers)
		}
		if want := "runner: bad 1: boom 1"; err.Error() != want {
			t.Fatalf("parallelism %d: err = %v, want first failing task %q", workers, err, want)
		}
	}
}

// TestRunRejectsInvalidConfig checks engine construction errors propagate.
func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := testCfg(1)
	cfg.Duration = -1
	if _, err := Run([]Task{{Label: "bad cfg", Cfg: cfg, Make: makeQueueLength}}, 4); err == nil {
		t.Fatal("invalid configuration accepted")
	}
}

// TestRunNilMaker checks a missing constructor is a task error, not a panic.
func TestRunNilMaker(t *testing.T) {
	if _, err := Run([]Task{{Label: "nil maker", Cfg: testCfg(1)}}, 1); err == nil {
		t.Fatal("nil maker accepted")
	}
}

// TestRunEmpty checks the degenerate fan-out.
func TestRunEmpty(t *testing.T) {
	res, err := Run(nil, 8)
	if err != nil || len(res) != 0 {
		t.Fatalf("Run(nil) = %v, %v", res, err)
	}
}

// TestParallelismResolution checks the GOMAXPROCS default.
func TestParallelismResolution(t *testing.T) {
	if got := Parallelism(3); got != 3 {
		t.Fatalf("Parallelism(3) = %d", got)
	}
	if got := Parallelism(0); got < 1 {
		t.Fatalf("Parallelism(0) = %d", got)
	}
	if Parallelism(-5) != Parallelism(0) {
		t.Fatal("negative parallelism not defaulted")
	}
}

// TestRunOptsProgressCounts: the callback fires exactly once per task with a
// monotonically increasing Done, the right Total, and a task label; ETA is
// positive until the final event.
func TestRunOptsProgressCounts(t *testing.T) {
	const n = 6
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Label: fmt.Sprintf("task %d", i), Cfg: testCfg(uint64(i + 1)), Make: makeQueueLength}
	}
	var events []ProgressEvent
	_, err := RunOpts(tasks, Options{Parallelism: 3, Progress: func(ev ProgressEvent) {
		events = append(events, ev) // callbacks are serialized, no lock needed
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != n {
		t.Fatalf("%d progress events, want %d", len(events), n)
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != n {
			t.Errorf("event %d: Done=%d Total=%d, want %d/%d", i, ev.Done, ev.Total, i+1, n)
		}
		if ev.Label == "" {
			t.Errorf("event %d has no label", i)
		}
		if i < n-1 && ev.ETA <= 0 {
			t.Errorf("event %d: ETA %v, want > 0 with tasks outstanding", i, ev.ETA)
		}
	}
	if last := events[n-1]; last.ETA != 0 {
		t.Errorf("final event has ETA %v, want 0", last.ETA)
	}
}

// TestRunOptsProgressDoesNotChangeResults: attaching a progress callback is
// observation only.
func TestRunOptsProgressDoesNotChangeResults(t *testing.T) {
	tasks := func() []Task {
		out := make([]Task, 4)
		for i := range out {
			out[i] = Task{Label: fmt.Sprintf("t%d", i), Cfg: testCfg(uint64(i + 10)), Make: makeQueueLength}
		}
		return out
	}
	plain, err := Run(tasks(), 2)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := RunOpts(tasks(), Options{Parallelism: 2, Progress: func(ProgressEvent) {}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Fatal("progress callback changed the results")
	}
}

// TestRunOptsCancelledMidPool checks the cancellation contract: no new task
// starts after the context is done, in-flight tasks finish, and the partial
// results come back (full length, completed entries detectable by a
// positive Window) together with the context's error.
func TestRunOptsCancelledMidPool(t *testing.T) {
	const n = 24
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Label: fmt.Sprintf("task %d", i), Cfg: testCfg(uint64(i + 1)), Make: makeQueueLength}
	}
	ctx, cancel := context.WithCancel(context.Background())
	results, err := RunOpts(tasks, Options{
		Parallelism: 2,
		Context:     ctx,
		Progress:    func(ProgressEvent) { cancel() }, // cancel at the first completion
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != n {
		t.Fatalf("partial results length %d, want %d (task order with zero holes)", len(results), n)
	}
	var done int
	for _, r := range results {
		if r.Window > 0 {
			done++
		}
	}
	if done == 0 {
		t.Error("cancellation discarded the completed task")
	}
	if done == n {
		t.Error("cancellation after the first completion still ran every task")
	}
}

// TestRunOptsCancelledBeforeStart checks the serial path refuses to start
// tasks under an already-cancelled context.
func TestRunOptsCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tasks := []Task{{Label: "t", Cfg: testCfg(1), Make: makeQueueLength}}
	results, err := RunOpts(tasks, Options{Parallelism: 1, Context: ctx})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != 1 || results[0].Window != 0 {
		t.Fatalf("pre-cancelled run still produced a result: %+v", results)
	}
}

// TestTaskWeight pins the slot cost of a task: 1 whenever the engine would
// fall back to the sequential core, the effective shard count otherwise.
func TestTaskWeight(t *testing.T) {
	base := testCfg(1) // Sites = 4, CommDelay > 0, non-ideal feedback
	cases := []struct {
		name   string
		mutate func(*hybrid.Config)
		want   int
	}{
		{"sequential default", func(*hybrid.Config) {}, 1},
		{"sharded", func(c *hybrid.Config) { c.Shards = 3 }, 3},
		{"one shard is sequential", func(c *hybrid.Config) { c.Shards = 1 }, 1},
		{"shards capped at sites+1", func(c *hybrid.Config) { c.Shards = 100 }, 5},
		{"zero comm delay falls back", func(c *hybrid.Config) { c.Shards = 3; c.CommDelay = 0 }, 1},
		{"ideal feedback falls back", func(c *hybrid.Config) { c.Shards = 3; c.Feedback = hybrid.FeedbackIdeal }, 1},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if got := TaskWeight(cfg); got != tc.want {
			t.Errorf("%s: TaskWeight = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestRunWeightedAdmissionBounds checks the co-scheduling invariant: the
// summed weight of in-flight tasks never exceeds the pool size. The counter
// is raised inside Make (after admission) and lowered at the completion
// callback, so the measured peak is a lower bound on the slots actually held
// — it must still stay within the pool.
func TestRunWeightedAdmissionBounds(t *testing.T) {
	const pool = 4
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	weightOf := make(map[string]int64)

	var tasks []Task
	for i := 0; i < 10; i++ {
		cfg := testCfg(uint64(i + 1))
		if i%2 == 0 {
			cfg.Shards = 3 // weight 3; odd tasks weigh 1
		}
		label := fmt.Sprintf("task %d", i)
		mu.Lock()
		weightOf[label] = int64(TaskWeight(cfg))
		mu.Unlock()
		tasks = append(tasks, Task{
			Label: label,
			Cfg:   cfg,
			Make: func(c hybrid.Config) (routing.Strategy, error) {
				now := inFlight.Add(int64(TaskWeight(c)))
				for {
					p := peak.Load()
					if now <= p || peak.CompareAndSwap(p, now) {
						break
					}
				}
				return routing.QueueLength{}, nil
			},
		})
	}
	_, err := RunOpts(tasks, Options{Parallelism: pool, Progress: func(ev ProgressEvent) {
		mu.Lock()
		w := weightOf[ev.Label]
		mu.Unlock()
		inFlight.Add(-w)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > pool {
		t.Fatalf("in-flight weight peaked at %d, want <= pool size %d", got, pool)
	}
	if left := inFlight.Load(); left != 0 {
		t.Fatalf("in-flight weight %d after the pool drained, want 0", left)
	}
}

// TestRunTaskHeavierThanPool checks a task weighing more than the whole pool
// is clamped and still runs rather than deadlocking admission.
func TestRunTaskHeavierThanPool(t *testing.T) {
	cfg := testCfg(1)
	cfg.Shards = 5 // weight 5 against a pool of 2
	tasks := []Task{
		{Label: "heavy", Cfg: cfg, Make: makeQueueLength},
		{Label: "light", Cfg: testCfg(2), Make: makeQueueLength},
	}
	results, err := RunOpts(tasks, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Window <= 0 {
			t.Errorf("task %d did not run", i)
		}
	}
}

// TestRunShardedMatchesSequentialEngine checks the weighted pool preserves
// the engine-level bit-exactness contract: a sharded task returns the same
// result as the identical config run sequentially, whether admitted alone or
// co-scheduled with other work.
func TestRunShardedMatchesSequentialEngine(t *testing.T) {
	seqCfg := testCfg(7)
	shCfg := seqCfg
	shCfg.Shards = 3
	tasks := []Task{
		{Label: "sequential", Cfg: seqCfg, Make: makeQueueLength},
		{Label: "sharded", Cfg: shCfg, Make: makeQueueLength},
		{Label: "filler", Cfg: testCfg(8), Make: makeQueueLength},
	}
	for _, pool := range []int{1, 4} {
		results, err := Run(tasks, pool)
		if err != nil {
			t.Fatalf("pool %d: %v", pool, err)
		}
		if !reflect.DeepEqual(results[0], results[1]) {
			t.Fatalf("pool %d: sharded result differs from sequential result", pool)
		}
	}
}

// TestRunOptsNilContextUnchanged pins that omitting the context keeps the
// historical contract: everything runs, no error.
func TestRunOptsNilContextUnchanged(t *testing.T) {
	tasks := []Task{
		{Label: "a", Cfg: testCfg(1), Make: makeQueueLength},
		{Label: "b", Cfg: testCfg(2), Make: makeQueueLength},
	}
	results, err := RunOpts(tasks, Options{Parallelism: 2})
	if err != nil {
		t.Fatalf("RunOpts: %v", err)
	}
	for i, r := range results {
		if r.Window <= 0 {
			t.Errorf("task %d did not run", i)
		}
	}
}
