package netx

// Connection plumbing: a framed connection with a per-connection write pump
// and request-id correlation, and a reconnecting client with exponential
// backoff for the long-lived uplinks of the cluster.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed connection or client.
var ErrClosed = errors.New("netx: connection closed")

// ErrNotConnected is returned by a Client while its link is down.
var ErrNotConnected = errors.New("netx: not connected")

// ErrSendQueueFull is wrapped in the close reason of a connection killed by
// write backpressure.
var ErrSendQueueFull = errors.New("netx: send queue full")

// Handler consumes inbound frames that are not Call responses. It runs on
// the connection's read goroutine: the frame's Payload aliases the read
// buffer, so the handler must decode (or copy) it before returning —
// decoded messages own their memory and may cross goroutines freely.
type Handler func(c *Conn, f Frame)

// Options tunes a connection.
type Options struct {
	// ReadTimeout arms a deadline on every frame read; a link silent for
	// longer is dropped. Zero leaves reads undeadlined, for idle-tolerant
	// inner links.
	ReadTimeout time.Duration
	// SendQueue is the write pump's frame capacity (default 1024). A peer
	// slow enough to fill it gets disconnected rather than blocking the
	// sender — the cluster's event loops must never stall on a socket.
	SendQueue int
	// Stats, when non-nil, receives transport tallies (frames, bytes,
	// queue depth, deadline hits) from every connection using these
	// options.
	Stats *Stats
}

func (o Options) sendQueue() int {
	if o.SendQueue <= 0 {
		return 1024
	}
	return o.SendQueue
}

// Conn is a framed connection. Sends are asynchronous: frames queue to a
// per-connection write pump goroutine, so senders (the cluster's event
// loops) never block on the socket. Inbound frames are read by Serve, which
// completes pending Calls by request id and hands everything else to the
// handler.
type Conn struct {
	nc   net.Conn
	opts Options

	sendCh chan []byte

	mu      sync.Mutex
	pending map[uint64]chan Frame
	nextReq uint64
	closed  bool
	reason  error

	writerDone chan struct{}
}

// NewConn wraps an established net.Conn and starts its write pump. The
// caller must run Serve (usually on its own goroutine) to read.
func NewConn(nc net.Conn, opts Options) *Conn {
	c := &Conn{
		nc:         nc,
		opts:       opts,
		sendCh:     make(chan []byte, opts.sendQueue()),
		pending:    make(map[uint64]chan Frame),
		writerDone: make(chan struct{}),
	}
	go c.writePump()
	return c
}

func (c *Conn) writePump() {
	defer close(c.writerDone)
	for buf := range c.sendCh {
		_, err := c.nc.Write(buf)
		if st := c.opts.Stats; st != nil {
			st.SendQueueDepth.Add(-1)
		}
		if err != nil {
			c.closeWith(fmt.Errorf("netx: write: %w", err))
			// Drain until Close closes the channel so senders never block.
			for range c.sendCh {
				if st := c.opts.Stats; st != nil {
					st.SendQueueDepth.Add(-1)
				}
			}
			return
		}
	}
}

// Send queues one frame on the write pump. It never blocks: a full queue
// kills the connection (slow-peer protection) and returns the close reason.
func (c *Conn) Send(msgType byte, reqID uint64, payload []byte) error {
	buf, err := AppendFrame(make([]byte, 0, 4+headerLen+len(payload)), Frame{Type: msgType, ReqID: reqID, Payload: payload})
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		err := c.reason
		c.mu.Unlock()
		return err
	}
	select {
	case c.sendCh <- buf:
		if st := c.opts.Stats; st != nil {
			st.FramesOut.Add(1)
			st.BytesOut.Add(uint64(len(buf)))
			st.SendQueueDepth.Add(1)
		}
		c.mu.Unlock()
		return nil
	default:
		c.mu.Unlock()
		if st := c.opts.Stats; st != nil {
			st.QueueFullKills.Add(1)
		}
		c.closeWith(fmt.Errorf("%w (%d frames)", ErrSendQueueFull, c.opts.sendQueue()))
		return c.closeReason()
	}
}

// Call sends a frame with a fresh request id and blocks until a response
// frame carrying that id arrives, the context ends, or the connection dies.
// The response payload is copied and safe to retain.
func (c *Conn) Call(ctx context.Context, msgType byte, payload []byte) (Frame, error) {
	ch := make(chan Frame, 1)
	c.mu.Lock()
	if c.closed {
		err := c.reason
		c.mu.Unlock()
		return Frame{}, err
	}
	c.nextReq++
	id := c.nextReq
	c.pending[id] = ch
	c.mu.Unlock()

	forget := func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
	}
	if err := c.Send(msgType, id, payload); err != nil {
		forget()
		return Frame{}, err
	}
	select {
	case f, ok := <-ch:
		if !ok {
			return Frame{}, c.closeReason()
		}
		return f, nil
	case <-ctx.Done():
		forget()
		return Frame{}, ctx.Err()
	}
}

// Serve reads frames until the connection dies, dispatching Call responses
// by request id and everything else to handler. It returns the error that
// ended the read loop (io.EOF for a clean peer close). Serve must be called
// at most once.
func (c *Conn) Serve(handler Handler) error {
	var buf []byte
	for {
		if c.opts.ReadTimeout > 0 {
			if err := c.nc.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout)); err != nil {
				c.closeWith(fmt.Errorf("netx: set deadline: %w", err))
				return err
			}
		}
		var f Frame
		var err error
		f, buf, err = ReadFrame(c.nc, buf)
		if err != nil {
			if st := c.opts.Stats; st != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					st.ReadDeadlineHits.Add(1)
				}
			}
			c.closeWith(fmt.Errorf("netx: read: %w", err))
			return err
		}
		if st := c.opts.Stats; st != nil {
			st.FramesIn.Add(1)
			st.BytesIn.Add(uint64(4 + headerLen + len(f.Payload)))
		}
		if f.ReqID != 0 {
			c.mu.Lock()
			ch, ok := c.pending[f.ReqID]
			if ok {
				delete(c.pending, f.ReqID)
			}
			c.mu.Unlock()
			if ok {
				// The waiter outlives this read iteration; give it its own
				// copy of the payload.
				resp := f
				resp.Payload = append([]byte(nil), f.Payload...)
				ch <- resp
				continue
			}
			// Not one of ours: an inbound request carrying a correlation id
			// (e.g. MsgSubmit) — the handler echoes the id on its response.
		}
		if handler != nil {
			handler(c, f)
		}
	}
}

// closeWith closes the connection once, recording the first reason.
func (c *Conn) closeWith(reason error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.reason = reason
	pending := c.pending
	c.pending = nil
	close(c.sendCh)
	c.mu.Unlock()

	c.nc.Close()
	for _, ch := range pending {
		close(ch)
	}
}

// Close tears the connection down; pending Calls fail with ErrClosed.
func (c *Conn) Close() error {
	c.closeWith(ErrClosed)
	<-c.writerDone
	return nil
}

func (c *Conn) closeReason() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reason != nil {
		return c.reason
	}
	return ErrClosed
}

// RemoteAddr returns the peer's address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// ---- Reconnecting client.

// Reconnect backoff: exponential from 50ms, capped at 2s.
const (
	backoffMin = 50 * time.Millisecond
	backoffMax = 2 * time.Second
)

// Client maintains one logical link to a server, redialing with exponential
// backoff whenever the connection drops. Sends while the link is down fail
// fast with ErrNotConnected — the cluster's protocol tolerates a lost
// message the way a real distributed system must, and the e2e harness
// runs on a loopback link that does not drop.
type Client struct {
	addr    string
	opts    Options
	handler Handler
	// onConnect runs on every successful (re)dial before any Send is
	// admitted, e.g. to introduce the peer with a MsgHello.
	onConnect func(*Conn) error

	mu   sync.Mutex
	cond *sync.Cond
	cur  *Conn
	stop bool

	stopCh chan struct{} // closed by Close; unblocks backoff sleeps
	done   chan struct{} // closed when the dial loop exits
}

// DialLoop starts a client for addr. The handler and options apply to every
// underlying connection; onConnect (optional) runs on each established
// connection before it is published for Send/Call.
func DialLoop(addr string, handler Handler, onConnect func(*Conn) error, opts Options) *Client {
	cl := &Client{
		addr:      addr,
		opts:      opts,
		handler:   handler,
		onConnect: onConnect,
		stopCh:    make(chan struct{}),
		done:      make(chan struct{}),
	}
	cl.cond = sync.NewCond(&cl.mu)
	go cl.loop()
	return cl
}

func (cl *Client) loop() {
	defer close(cl.done)
	backoff := backoffMin
	for {
		if cl.stopped() {
			return
		}
		nc, err := net.DialTimeout("tcp", cl.addr, 2*time.Second)
		if err != nil {
			if !cl.sleep(backoff) {
				return
			}
			backoff *= 2
			if backoff > backoffMax {
				backoff = backoffMax
			}
			continue
		}
		conn := NewConn(nc, cl.opts)
		if cl.onConnect != nil {
			if err := cl.onConnect(conn); err != nil {
				conn.Close()
				continue
			}
		}
		cl.mu.Lock()
		if cl.stop {
			cl.mu.Unlock()
			conn.Close()
			return
		}
		cl.cur = conn
		cl.cond.Broadcast()
		cl.mu.Unlock()

		if st := cl.opts.Stats; st != nil {
			st.Connects.Add(1)
		}

		backoff = backoffMin
		conn.Serve(cl.handler) // blocks until the connection dies

		cl.mu.Lock()
		if cl.cur == conn {
			cl.cur = nil
		}
		cl.mu.Unlock()
	}
}

func (cl *Client) stopped() bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.stop
}

// sleep waits d or until Close, reporting whether the client is still live.
func (cl *Client) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return !cl.stopped()
	case <-cl.stopCh:
		return false
	}
}

// conn returns the live connection, or nil with ErrNotConnected.
func (cl *Client) conn() (*Conn, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.stop {
		return nil, ErrClosed
	}
	if cl.cur == nil {
		return nil, ErrNotConnected
	}
	return cl.cur, nil
}

// Send queues a frame on the current connection.
func (cl *Client) Send(msgType byte, reqID uint64, payload []byte) error {
	c, err := cl.conn()
	if err != nil {
		return err
	}
	return c.Send(msgType, reqID, payload)
}

// Call performs a request/response round trip on the current connection.
func (cl *Client) Call(ctx context.Context, msgType byte, payload []byte) (Frame, error) {
	c, err := cl.conn()
	if err != nil {
		return Frame{}, err
	}
	return c.Call(ctx, msgType, payload)
}

// WaitConnected blocks until the link is up, the context ends, or the
// client closes.
func (cl *Client) WaitConnected(ctx context.Context) error {
	doneCh := make(chan struct{})
	defer close(doneCh)
	go func() {
		select {
		case <-ctx.Done():
		case <-doneCh:
		}
		cl.cond.Broadcast()
	}()
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for cl.cur == nil && !cl.stop && ctx.Err() == nil {
		cl.cond.Wait()
	}
	if cl.cur != nil {
		return nil
	}
	if cl.stop {
		return ErrClosed
	}
	return ctx.Err()
}

// Close stops redialing and tears down the current connection.
func (cl *Client) Close() error {
	cl.mu.Lock()
	if cl.stop {
		cl.mu.Unlock()
		<-cl.done
		return nil
	}
	cl.stop = true
	close(cl.stopCh)
	cur := cl.cur
	cl.cur = nil
	cl.cond.Broadcast()
	cl.mu.Unlock()
	if cur != nil {
		cur.Close()
	}
	<-cl.done
	return nil
}
