package netx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: MsgHello, ReqID: 0, Payload: nil},
		{Type: MsgSubmit, ReqID: 1, Payload: []byte{1, 2, 3}},
		{Type: MsgReply, ReqID: 1<<64 - 1, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{Type: 0, ReqID: 42, Payload: []byte{}},
	}
	var wire bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&wire, f); err != nil {
			t.Fatalf("WriteFrame(%v): %v", f, err)
		}
	}
	var buf []byte
	for i, want := range frames {
		var got Frame
		var err error
		got, buf, err = ReadFrame(&wire, buf)
		if err != nil {
			t.Fatalf("ReadFrame #%d: %v", i, err)
		}
		if got.Type != want.Type || got.ReqID != want.ReqID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame #%d: got %v want %v", i, got, want)
		}
	}
	if _, _, err := ReadFrame(&wire, buf); err != io.EOF {
		t.Fatalf("read past end: got %v, want io.EOF", err)
	}
}

func TestReadFrameMalformedLength(t *testing.T) {
	// Length words below the 9-byte header are illegal, even with bytes
	// available behind them.
	for _, n := range []uint32{0, 1, 8} {
		var wire bytes.Buffer
		binary.Write(&wire, binary.BigEndian, n)
		wire.Write(bytes.Repeat([]byte{0}, 16))
		if _, _, err := ReadFrame(&wire, nil); !errors.Is(err, ErrMalformedFrame) {
			t.Fatalf("length %d: got %v, want ErrMalformedFrame", n, err)
		}
	}
}

func TestReadFrameOversized(t *testing.T) {
	var wire bytes.Buffer
	binary.Write(&wire, binary.BigEndian, uint32(MaxFrame+1))
	if _, _, err := ReadFrame(&wire, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	// The reader must reject before allocating or consuming the body.
	if wire.Len() != 0 {
		// Only the length word was written; nothing further to consume.
		t.Fatalf("reader consumed %d unexpected bytes", wire.Len())
	}
}

func TestWriteFrameOversized(t *testing.T) {
	f := Frame{Type: MsgSubmit, Payload: make([]byte, MaxFrame)}
	var wire bytes.Buffer
	if err := WriteFrame(&wire, f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if wire.Len() != 0 {
		t.Fatalf("oversized write leaked %d bytes onto the wire", wire.Len())
	}
	// Exactly at the limit is legal.
	f.Payload = make([]byte, MaxFrame-headerLen)
	if err := WriteFrame(&wire, f); err != nil {
		t.Fatalf("frame at MaxFrame rejected: %v", err)
	}
	got, _, err := ReadFrame(&wire, nil)
	if err != nil {
		t.Fatalf("reading frame at MaxFrame: %v", err)
	}
	if len(got.Payload) != MaxFrame-headerLen {
		t.Fatalf("payload length %d, want %d", len(got.Payload), MaxFrame-headerLen)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	full, err := AppendFrame(nil, Frame{Type: MsgShip, ReqID: 7, Payload: []byte("payload")})
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix (except the empty one, which is a clean EOF)
	// must surface as an unexpected EOF, never a zero-value frame.
	for cut := 1; cut < len(full); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(full[:cut]), nil)
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d/%d: got %v, want io.ErrUnexpectedEOF", cut, len(full), err)
		}
	}
	if _, _, err := ReadFrame(bytes.NewReader(nil), nil); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func TestReadFrameReusesBuffer(t *testing.T) {
	var wire bytes.Buffer
	WriteFrame(&wire, Frame{Type: MsgHello, Payload: make([]byte, 100)})
	WriteFrame(&wire, Frame{Type: MsgHello, Payload: make([]byte, 10)})
	_, buf, err := ReadFrame(&wire, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := &buf[0]
	_, buf2, err := ReadFrame(&wire, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &buf2[0] != first {
		t.Fatal("smaller second frame did not reuse the read buffer")
	}
}
