package netx

// The cluster's protocol messages and their binary payload codecs. Each
// message of the simulated lifecycle that crosses a tier boundary as a
// closure (ship, authenticate, ack/nack, release, update, acknowledge,
// reply) is reified here as a wire message, so the live engine in
// internal/cluster can run the same state machine across processes.
//
// Encodings are fixed-width big-endian, mirroring the frame header. List
// lengths are uint32 counts validated against the remaining payload before
// any allocation. Decoders allocate fresh slices — decoded messages never
// alias the connection's read buffer.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"hybriddb/internal/lock"
	"hybriddb/internal/workload"
)

// Message types. Directions: load generator <-> site, site <-> central.
const (
	// MsgHello registers the sender: a site announcing its index on its
	// uplink to central (payload: Hello).
	MsgHello byte = iota + 1
	// MsgSubmit asks a site to run one transaction (load -> site, payload:
	// Txn). The site answers with a MsgResult carrying the same request id.
	MsgSubmit
	// MsgResult completes a MsgSubmit (site -> load, payload: Result).
	MsgResult
	// MsgShip transfers a transaction's input to central for execution
	// (site -> central, payload: Txn).
	MsgShip
	// MsgAuthReq runs the commit-time authentication phase at a master site
	// (central -> site, payload: AuthReq).
	MsgAuthReq
	// MsgAuthReply answers an authentication request (site -> central,
	// payload: AuthReply).
	MsgAuthReply
	// MsgRelease releases a transaction's seized authentication locks at a
	// site (central -> site, payload: Release).
	MsgRelease
	// MsgUpdate carries a committed local transaction's updates to central
	// (site -> central, payload: Update).
	MsgUpdate
	// MsgUpdateAck acknowledges an update so the site can lower its
	// coherence counts (central -> site, payload: UpdateAck).
	MsgUpdateAck
	// MsgReply delivers a shipped transaction's completion to its home site
	// (central -> site, payload: Reply).
	MsgReply
	// MsgHelloAck answers a MsgHello with the central clock reading so the
	// site can estimate its clock offset NTP-style (central -> site,
	// payload: HelloAck).
	MsgHelloAck
)

// MsgName returns a short human-readable name for a message type.
func MsgName(t byte) string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgSubmit:
		return "submit"
	case MsgResult:
		return "result"
	case MsgShip:
		return "ship"
	case MsgAuthReq:
		return "auth-req"
	case MsgAuthReply:
		return "auth-reply"
	case MsgRelease:
		return "release"
	case MsgUpdate:
		return "update"
	case MsgUpdateAck:
		return "update-ack"
	case MsgReply:
		return "reply"
	case MsgHelloAck:
		return "hello-ack"
	default:
		return fmt.Sprintf("type(%d)", t)
	}
}

// ErrTruncated is wrapped by decoders when a payload ends before the
// message's fixed fields or declared list lengths.
var ErrTruncated = errors.New("netx: truncated payload")

// ErrTrailingBytes is wrapped by decoders when a payload continues past the
// end of the message.
var ErrTrailingBytes = errors.New("netx: trailing bytes after payload")

// Snapshot is the central state piggybacked on central->site messages, the
// feedback a site's routing strategy consumes (§4.2 of the paper). The
// snapshot instant is not on the wire: the receiver stamps it as its own
// receive time minus the configured one-way delay, which keeps the two
// processes' clocks out of the protocol.
type Snapshot struct {
	Queue    int32 // central CPU queue length, job in service included
	InSystem int32 // transactions at central in any phase
	Locks    int32 // locks held at central
}

// Hello registers a site on its central uplink. T0 is the sender's local
// loop clock (seconds) at send time; central echoes it in the HelloAck so
// the site can estimate the round trip without trusting either wall clock.
type Hello struct {
	Site uint32
	T0   float64
}

// HelloAck answers a Hello: T0 is echoed verbatim, TCentral is central's
// loop clock (seconds) when the ack was produced. With the site's receive
// time t1, the NTP-style offset estimate is TCentral - (T0+t1)/2 — the
// per-process correction spans.MergeFiles applies to fuse trace files into
// one timebase.
type HelloAck struct {
	T0       float64
	TCentral float64
}

// Result completes a submitted transaction back to the load generator.
type Result struct {
	Txn     int64
	Shipped bool // executed at central rather than the home site
	ClassB  bool
}

// AuthReq asks a master site to authenticate the listed elements for a
// committing central transaction: NACK if any has in-flight updates,
// otherwise seize the locks and ACK. Traced propagates the transaction's
// span context: when set, the receiving site records the authentication as
// part of the transaction's span tree.
type AuthReq struct {
	Txn      int64
	Elements []uint32
	Modes    []lock.Mode
	Snap     Snapshot
	Traced   bool
}

// AuthReply answers an AuthReq.
type AuthReply struct {
	Txn  int64
	Site uint32
	NACK bool
}

// Release frees a transaction's seized authentication locks at a site.
type Release struct {
	Txn  int64
	Snap Snapshot
}

// Update carries a committed local transaction's updated elements to
// central for invalidation and application. Txn identifies the committing
// transaction so a traced update joins its span tree at central.
type Update struct {
	Site     uint32
	Txn      int64
	Elements []uint32
	Traced   bool
}

// UpdateAck acknowledges an Update; the site lowers the elements' coherence
// counts.
type UpdateAck struct {
	Elements []uint32
	Snap     Snapshot
}

// Reply delivers a shipped transaction's completion to its home site.
// Traced echoes the ship's span context back so the home site closes the
// transaction's span.
type Reply struct {
	Txn    int64
	ClassB bool
	Snap   Snapshot
	Traced bool
}

// ---- Encoding.

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendF64(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendSnapshot(dst []byte, s Snapshot) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(s.Queue))
	dst = binary.BigEndian.AppendUint32(dst, uint32(s.InSystem))
	return binary.BigEndian.AppendUint32(dst, uint32(s.Locks))
}

func appendU32s(dst []byte, xs []uint32) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(xs)))
	for _, x := range xs {
		dst = binary.BigEndian.AppendUint32(dst, x)
	}
	return dst
}

// AppendTxn encodes a transaction's input — everything a remote executor
// needs to run it — as the payload of MsgSubmit / MsgShip.
func AppendTxn(dst []byte, t *workload.Txn) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(t.ID))
	dst = append(dst, byte(t.Class))
	dst = binary.BigEndian.AppendUint32(dst, uint32(t.HomeSite))
	dst = appendU32s(dst, t.Elements)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(t.Modes)))
	for _, m := range t.Modes {
		dst = append(dst, byte(m))
	}
	return dst
}

// AppendHello encodes a Hello payload.
func AppendHello(dst []byte, h Hello) []byte {
	dst = binary.BigEndian.AppendUint32(dst, h.Site)
	return appendF64(dst, h.T0)
}

// AppendHelloAck encodes a HelloAck payload.
func AppendHelloAck(dst []byte, h HelloAck) []byte {
	dst = appendF64(dst, h.T0)
	return appendF64(dst, h.TCentral)
}

// AppendShip encodes a MsgShip payload: the transaction's input plus its
// one-byte span context (traced flag).
func AppendShip(dst []byte, t *workload.Txn, traced bool) []byte {
	dst = AppendTxn(dst, t)
	return appendBool(dst, traced)
}

// AppendResult encodes a Result payload.
func AppendResult(dst []byte, r Result) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Txn))
	dst = appendBool(dst, r.Shipped)
	return appendBool(dst, r.ClassB)
}

// AppendAuthReq encodes an AuthReq payload.
func AppendAuthReq(dst []byte, a AuthReq) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(a.Txn))
	dst = appendU32s(dst, a.Elements)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(a.Modes)))
	for _, m := range a.Modes {
		dst = append(dst, byte(m))
	}
	dst = appendSnapshot(dst, a.Snap)
	return appendBool(dst, a.Traced)
}

// AppendAuthReply encodes an AuthReply payload.
func AppendAuthReply(dst []byte, a AuthReply) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(a.Txn))
	dst = binary.BigEndian.AppendUint32(dst, a.Site)
	return appendBool(dst, a.NACK)
}

// AppendRelease encodes a Release payload.
func AppendRelease(dst []byte, r Release) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Txn))
	return appendSnapshot(dst, r.Snap)
}

// AppendUpdate encodes an Update payload.
func AppendUpdate(dst []byte, u Update) []byte {
	dst = binary.BigEndian.AppendUint32(dst, u.Site)
	dst = binary.BigEndian.AppendUint64(dst, uint64(u.Txn))
	dst = appendU32s(dst, u.Elements)
	return appendBool(dst, u.Traced)
}

// AppendUpdateAck encodes an UpdateAck payload.
func AppendUpdateAck(dst []byte, u UpdateAck) []byte {
	dst = appendU32s(dst, u.Elements)
	return appendSnapshot(dst, u.Snap)
}

// AppendReply encodes a Reply payload.
func AppendReply(dst []byte, r Reply) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Txn))
	dst = appendBool(dst, r.ClassB)
	dst = appendSnapshot(dst, r.Snap)
	return appendBool(dst, r.Traced)
}

// ---- Decoding.

// dec is a cursor over a payload; the first failure sticks.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrTruncated, what)
	}
}

func (d *dec) u8(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail(what)
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u32(what string) uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 4 {
		d.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64(what string) uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) boolean(what string) bool { return d.u8(what) != 0 }

func (d *dec) f64(what string) float64 { return math.Float64frombits(d.u64(what)) }

// decodeMode reads and validates one lock mode.
func decodeMode(d *dec, what string) lock.Mode {
	m := lock.Mode(d.u8(what))
	if d.err == nil && m != lock.Share && m != lock.Exclusive {
		d.err = fmt.Errorf("netx: %s: invalid lock mode %d", what, byte(m))
	}
	return m
}

// count reads a list length and validates it against the bytes remaining
// (elemSize bytes per element), so a corrupt length cannot force a huge
// allocation.
func (d *dec) count(elemSize int, what string) int {
	n := d.u32(what)
	if d.err != nil {
		return 0
	}
	if uint64(n)*uint64(elemSize) > uint64(len(d.b)) {
		d.fail(fmt.Sprintf("%s: count %d exceeds remaining %d bytes", what, n, len(d.b)))
		return 0
	}
	return int(n)
}

func (d *dec) u32s(what string) []uint32 {
	n := d.count(4, what)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = d.u32(what)
	}
	return out
}

func (d *dec) snapshot() Snapshot {
	return Snapshot{
		Queue:    int32(d.u32("snapshot queue")),
		InSystem: int32(d.u32("snapshot in-system")),
		Locks:    int32(d.u32("snapshot locks")),
	}
}

func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailingBytes, len(d.b))
	}
	return nil
}

// decodeTxnBody reads a transaction's fields from the cursor without
// finishing it, shared by DecodeTxn (MsgSubmit) and DecodeShip (MsgShip,
// which carries a trailing span context).
func decodeTxnBody(d *dec) *workload.Txn {
	t := &workload.Txn{
		ID:       int64(d.u64("txn id")),
		Class:    workload.Class(d.u8("txn class")),
		HomeSite: int(int32(d.u32("txn home"))),
	}
	t.Elements = d.u32s("txn elements")
	n := d.count(1, "txn modes")
	if d.err == nil && n > 0 {
		t.Modes = make([]lock.Mode, n)
		for i := range t.Modes {
			t.Modes[i] = decodeMode(d, "txn mode")
		}
	}
	return t
}

func validateTxn(t *workload.Txn) error {
	if len(t.Elements) != len(t.Modes) {
		return fmt.Errorf("netx: txn %d has %d elements but %d modes", t.ID, len(t.Elements), len(t.Modes))
	}
	if t.Class != workload.ClassA && t.Class != workload.ClassB {
		return fmt.Errorf("netx: txn %d has invalid class %d", t.ID, byte(t.Class))
	}
	if t.HomeSite < 0 || t.HomeSite > math.MaxInt16 {
		return fmt.Errorf("netx: txn %d home site %d out of range", t.ID, t.HomeSite)
	}
	return nil
}

// DecodeTxn decodes a MsgSubmit payload. The returned transaction owns its
// slices.
func DecodeTxn(p []byte) (*workload.Txn, error) {
	d := &dec{b: p}
	t := decodeTxnBody(d)
	if err := d.finish(); err != nil {
		return nil, err
	}
	if err := validateTxn(t); err != nil {
		return nil, err
	}
	return t, nil
}

// DecodeShip decodes a MsgShip payload: the transaction plus its span
// context (traced flag).
func DecodeShip(p []byte) (*workload.Txn, bool, error) {
	d := &dec{b: p}
	t := decodeTxnBody(d)
	traced := d.boolean("ship traced")
	if err := d.finish(); err != nil {
		return nil, false, err
	}
	if err := validateTxn(t); err != nil {
		return nil, false, err
	}
	return t, traced, nil
}

// DecodeHello decodes a MsgHello payload.
func DecodeHello(p []byte) (Hello, error) {
	d := &dec{b: p}
	h := Hello{Site: d.u32("hello site"), T0: d.f64("hello t0")}
	return h, d.finish()
}

// DecodeHelloAck decodes a MsgHelloAck payload.
func DecodeHelloAck(p []byte) (HelloAck, error) {
	d := &dec{b: p}
	h := HelloAck{T0: d.f64("hello-ack t0"), TCentral: d.f64("hello-ack t-central")}
	return h, d.finish()
}

// DecodeResult decodes a MsgResult payload.
func DecodeResult(p []byte) (Result, error) {
	d := &dec{b: p}
	r := Result{
		Txn:     int64(d.u64("result txn")),
		Shipped: d.boolean("result shipped"),
		ClassB:  d.boolean("result class"),
	}
	return r, d.finish()
}

// DecodeAuthReq decodes a MsgAuthReq payload.
func DecodeAuthReq(p []byte) (AuthReq, error) {
	d := &dec{b: p}
	a := AuthReq{Txn: int64(d.u64("auth txn"))}
	a.Elements = d.u32s("auth elements")
	n := d.count(1, "auth modes")
	if d.err == nil && n > 0 {
		a.Modes = make([]lock.Mode, n)
		for i := range a.Modes {
			a.Modes[i] = decodeMode(d, "auth mode")
		}
	}
	a.Snap = d.snapshot()
	a.Traced = d.boolean("auth traced")
	if err := d.finish(); err != nil {
		return AuthReq{}, err
	}
	if len(a.Elements) != len(a.Modes) {
		return AuthReq{}, fmt.Errorf("netx: auth-req %d has %d elements but %d modes", a.Txn, len(a.Elements), len(a.Modes))
	}
	return a, nil
}

// DecodeAuthReply decodes a MsgAuthReply payload.
func DecodeAuthReply(p []byte) (AuthReply, error) {
	d := &dec{b: p}
	a := AuthReply{
		Txn:  int64(d.u64("auth-reply txn")),
		Site: d.u32("auth-reply site"),
		NACK: d.boolean("auth-reply nack"),
	}
	return a, d.finish()
}

// DecodeRelease decodes a MsgRelease payload.
func DecodeRelease(p []byte) (Release, error) {
	d := &dec{b: p}
	r := Release{Txn: int64(d.u64("release txn")), Snap: d.snapshot()}
	return r, d.finish()
}

// DecodeUpdate decodes a MsgUpdate payload.
func DecodeUpdate(p []byte) (Update, error) {
	d := &dec{b: p}
	u := Update{Site: d.u32("update site"), Txn: int64(d.u64("update txn"))}
	u.Elements = d.u32s("update elements")
	u.Traced = d.boolean("update traced")
	return u, d.finish()
}

// DecodeUpdateAck decodes a MsgUpdateAck payload.
func DecodeUpdateAck(p []byte) (UpdateAck, error) {
	d := &dec{b: p}
	u := UpdateAck{Elements: d.u32s("update-ack elements"), Snap: d.snapshot()}
	return u, d.finish()
}

// DecodeReply decodes a MsgReply payload.
func DecodeReply(p []byte) (Reply, error) {
	d := &dec{b: p}
	r := Reply{
		Txn:    int64(d.u64("reply txn")),
		ClassB: d.boolean("reply class"),
		Snap:   d.snapshot(),
		Traced: d.boolean("reply traced"),
	}
	return r, d.finish()
}
