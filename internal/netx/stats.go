package netx

import "sync/atomic"

// Stats aggregates transport-level tallies across every connection that
// shares it (wired in via Options.Stats). All fields are atomics: the read
// and write-pump goroutines update them inline, and an observer (the
// cluster's metrics registry, via GaugeFunc) reads them at scrape time
// without coordination. A nil Stats disables accounting at zero cost.
type Stats struct {
	FramesIn  atomic.Uint64 // frames read
	FramesOut atomic.Uint64 // frames queued to the write pump
	BytesIn   atomic.Uint64 // wire bytes read (length prefix + header + payload)
	BytesOut  atomic.Uint64 // wire bytes queued

	SendQueueDepth   atomic.Int64  // frames currently queued, all connections
	ReadDeadlineHits atomic.Uint64 // reads that died on the ReadTimeout deadline
	QueueFullKills   atomic.Uint64 // connections killed by write backpressure
	Connects         atomic.Uint64 // successful dials (Client); first connect included
}
