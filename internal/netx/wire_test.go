package netx

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"hybriddb/internal/lock"
	"hybriddb/internal/workload"
)

func TestTxnRoundTrip(t *testing.T) {
	specs := []*workload.Txn{
		{ID: 1<<40 | 7, Class: workload.ClassA, HomeSite: 3,
			Elements: []uint32{9, 4, 1023}, Modes: []lock.Mode{lock.Share, lock.Exclusive, lock.Share}},
		{ID: 1, Class: workload.ClassB, HomeSite: 0, Elements: nil, Modes: nil},
	}
	for _, want := range specs {
		got, err := DecodeTxn(AppendTxn(nil, want))
		if err != nil {
			t.Fatalf("DecodeTxn(%d): %v", want.ID, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("txn round trip:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestTxnDecodeRejectsGarbage(t *testing.T) {
	good := AppendTxn(nil, &workload.Txn{
		ID: 5, Class: workload.ClassA, HomeSite: 1,
		Elements: []uint32{1, 2}, Modes: []lock.Mode{lock.Share, lock.Exclusive},
	})

	// Truncation anywhere in the payload.
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeTxn(good[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(good))
		}
	}
	// Trailing bytes.
	if _, err := DecodeTxn(append(append([]byte(nil), good...), 0)); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("trailing byte: got %v, want ErrTrailingBytes", err)
	}
	// A huge element count must be rejected before allocation.
	bad := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(bad[13:], 1<<31)
	if _, err := DecodeTxn(bad); !errors.Is(err, ErrTruncated) {
		t.Fatalf("huge count: got %v, want ErrTruncated", err)
	}
	// Invalid lock mode.
	bad = append([]byte(nil), good...)
	bad[len(bad)-1] = 99
	if _, err := DecodeTxn(bad); err == nil {
		t.Fatal("invalid lock mode accepted")
	}
	// Invalid class.
	bad = append([]byte(nil), good...)
	bad[8] = 0
	if _, err := DecodeTxn(bad); err == nil {
		t.Fatal("invalid class accepted")
	}
	// Element/mode length mismatch.
	mismatch := AppendTxn(nil, &workload.Txn{
		ID: 5, Class: workload.ClassA, HomeSite: 1,
		Elements: []uint32{1, 2}, Modes: []lock.Mode{lock.Share, lock.Exclusive},
	})
	// Rewrite the mode count from 2 to 1 and drop the last mode byte.
	binary.BigEndian.PutUint32(mismatch[len(mismatch)-6:], 1)
	mismatch = mismatch[:len(mismatch)-1]
	if _, err := DecodeTxn(mismatch); err == nil {
		t.Fatal("element/mode count mismatch accepted")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	snap := Snapshot{Queue: 3, InSystem: 17, Locks: 240}

	hello, err := DecodeHello(AppendHello(nil, Hello{Site: 2, T0: 1.25}))
	if err != nil || hello != (Hello{Site: 2, T0: 1.25}) {
		t.Fatalf("hello: %+v, %v", hello, err)
	}

	hack, err := DecodeHelloAck(AppendHelloAck(nil, HelloAck{T0: 1.25, TCentral: -0.5}))
	if err != nil || hack != (HelloAck{T0: 1.25, TCentral: -0.5}) {
		t.Fatalf("hello-ack: %+v, %v", hack, err)
	}

	shipWant := &workload.Txn{ID: 77, Class: workload.ClassA, HomeSite: 2,
		Elements: []uint32{3, 4}, Modes: []lock.Mode{lock.Share, lock.Exclusive}}
	shipGot, traced, err := DecodeShip(AppendShip(nil, shipWant, true))
	if err != nil || !traced || !reflect.DeepEqual(shipGot, shipWant) {
		t.Fatalf("ship: %+v traced=%v, %v", shipGot, traced, err)
	}

	res, err := DecodeResult(AppendResult(nil, Result{Txn: 99, Shipped: true, ClassB: false}))
	if err != nil || res != (Result{Txn: 99, Shipped: true}) {
		t.Fatalf("result: %+v, %v", res, err)
	}

	areqWant := AuthReq{Txn: -8, Elements: []uint32{4, 5}, Modes: []lock.Mode{lock.Exclusive, lock.Share}, Snap: snap, Traced: true}
	areq, err := DecodeAuthReq(AppendAuthReq(nil, areqWant))
	if err != nil || !reflect.DeepEqual(areq, areqWant) {
		t.Fatalf("auth-req: %+v, %v", areq, err)
	}

	arep, err := DecodeAuthReply(AppendAuthReply(nil, AuthReply{Txn: 7, Site: 3, NACK: true}))
	if err != nil || arep != (AuthReply{Txn: 7, Site: 3, NACK: true}) {
		t.Fatalf("auth-reply: %+v, %v", arep, err)
	}

	rel, err := DecodeRelease(AppendRelease(nil, Release{Txn: 11, Snap: snap}))
	if err != nil || rel != (Release{Txn: 11, Snap: snap}) {
		t.Fatalf("release: %+v, %v", rel, err)
	}

	updWant := Update{Site: 1, Txn: 321, Elements: []uint32{8, 8, 9}, Traced: true}
	upd, err := DecodeUpdate(AppendUpdate(nil, updWant))
	if err != nil || !reflect.DeepEqual(upd, updWant) {
		t.Fatalf("update: %+v, %v", upd, err)
	}

	ackWant := UpdateAck{Elements: []uint32{8, 9}, Snap: snap}
	ack, err := DecodeUpdateAck(AppendUpdateAck(nil, ackWant))
	if err != nil || !reflect.DeepEqual(ack, ackWant) {
		t.Fatalf("update-ack: %+v, %v", ack, err)
	}

	rep, err := DecodeReply(AppendReply(nil, Reply{Txn: 12, ClassB: true, Snap: snap, Traced: true}))
	if err != nil || rep != (Reply{Txn: 12, ClassB: true, Snap: snap, Traced: true}) {
		t.Fatalf("reply: %+v, %v", rep, err)
	}
}

func TestMessageDecodersRejectTruncation(t *testing.T) {
	snap := Snapshot{Queue: 1, InSystem: 2, Locks: 3}
	payloads := map[string][]byte{
		"hello":      AppendHello(nil, Hello{Site: 1}),
		"hello-ack":  AppendHelloAck(nil, HelloAck{T0: 1, TCentral: 2}),
		"ship":       AppendShip(nil, &workload.Txn{ID: 1, Class: workload.ClassA, HomeSite: 0, Elements: []uint32{1}, Modes: []lock.Mode{lock.Share}}, true),
		"result":     AppendResult(nil, Result{Txn: 1}),
		"auth-req":   AppendAuthReq(nil, AuthReq{Txn: 1, Elements: []uint32{1}, Modes: []lock.Mode{lock.Share}, Snap: snap}),
		"auth-reply": AppendAuthReply(nil, AuthReply{Txn: 1, Site: 0}),
		"release":    AppendRelease(nil, Release{Txn: 1, Snap: snap}),
		"update":     AppendUpdate(nil, Update{Site: 0, Elements: []uint32{1}}),
		"update-ack": AppendUpdateAck(nil, UpdateAck{Elements: []uint32{1}, Snap: snap}),
		"reply":      AppendReply(nil, Reply{Txn: 1, Snap: snap}),
	}
	decoders := map[string]func([]byte) error{
		"hello":      func(p []byte) error { _, err := DecodeHello(p); return err },
		"hello-ack":  func(p []byte) error { _, err := DecodeHelloAck(p); return err },
		"ship":       func(p []byte) error { _, _, err := DecodeShip(p); return err },
		"result":     func(p []byte) error { _, err := DecodeResult(p); return err },
		"auth-req":   func(p []byte) error { _, err := DecodeAuthReq(p); return err },
		"auth-reply": func(p []byte) error { _, err := DecodeAuthReply(p); return err },
		"release":    func(p []byte) error { _, err := DecodeRelease(p); return err },
		"update":     func(p []byte) error { _, err := DecodeUpdate(p); return err },
		"update-ack": func(p []byte) error { _, err := DecodeUpdateAck(p); return err },
		"reply":      func(p []byte) error { _, err := DecodeReply(p); return err },
	}
	for name, full := range payloads {
		decode := decoders[name]
		if err := decode(full); err != nil {
			t.Fatalf("%s: full payload rejected: %v", name, err)
		}
		for cut := 0; cut < len(full); cut++ {
			if err := decode(full[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d/%d accepted", name, cut, len(full))
			}
		}
		if err := decode(append(append([]byte(nil), full...), 0xFF)); !errors.Is(err, ErrTrailingBytes) {
			t.Fatalf("%s: trailing byte: got %v, want ErrTrailingBytes", name, err)
		}
	}
}

func TestMsgNameCoversAllTypes(t *testing.T) {
	for b := MsgHello; b <= MsgHelloAck; b++ {
		if name := MsgName(b); name == "" || name[:4] == "type" {
			t.Fatalf("MsgName(%d) = %q", b, name)
		}
	}
	if MsgName(200) != "type(200)" {
		t.Fatalf("unknown type name: %q", MsgName(200))
	}
}
