package netx

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and answers every MsgSubmit frame with a
// MsgResult frame carrying the same request id and payload.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []*Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			conn := NewConn(nc, Options{})
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn.Serve(func(c *Conn, f Frame) {
					payload := append([]byte(nil), f.Payload...)
					c.Send(MsgResult, f.ReqID, payload)
				})
				conn.Close()
			}()
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
		wg.Wait()
	}
}

func TestConnCallRoundTrip(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(nc, Options{})
	defer conn.Close()
	go conn.Serve(nil)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 50; i++ {
		want := []byte{byte(i), byte(i >> 8), 0xCC}
		f, err := conn.Call(ctx, MsgSubmit, want)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if f.Type != MsgResult || string(f.Payload) != string(want) {
			t.Fatalf("call %d: got %v", i, f)
		}
	}
}

func TestConnConcurrentCallsCorrelate(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(nc, Options{})
	defer conn.Close()
	go conn.Serve(nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				want := []byte{byte(g), byte(i)}
				f, err := conn.Call(ctx, MsgSubmit, want)
				if err != nil {
					errs <- err
					return
				}
				if string(f.Payload) != string(want) {
					errs <- errors.New("response correlated to the wrong call")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConnCallFailsOnClose(t *testing.T) {
	client, server := net.Pipe()
	conn := NewConn(client, Options{})
	go conn.Serve(nil)
	done := make(chan error, 1)
	go func() {
		_, err := conn.Call(context.Background(), MsgSubmit, []byte("x"))
		done <- err
	}()
	// Swallow the request, then kill the link with the call pending.
	buf := make([]byte, 64)
	server.Read(buf)
	server.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call succeeded on a dead connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call not failed by connection death")
	}
	conn.Close()
}

func TestConnReadTimeoutDropsSilentLink(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err == nil {
			// Hold the connection open without ever writing.
			defer nc.Close()
			time.Sleep(3 * time.Second)
		}
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(nc, Options{ReadTimeout: 50 * time.Millisecond})
	defer conn.Close()
	served := make(chan error, 1)
	go func() { served <- conn.Serve(nil) }()
	select {
	case err := <-served:
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("serve ended with %v, want a timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read deadline never fired")
	}
}

func TestConnSendQueueBackpressureKills(t *testing.T) {
	// A peer that never reads: the kernel buffers fill, the pump blocks,
	// and the tiny send queue overflows — the connection must die rather
	// than block the sender.
	client, server := net.Pipe() // net.Pipe has no buffering at all
	defer server.Close()
	conn := NewConn(client, Options{SendQueue: 4})
	defer conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := conn.Send(MsgUpdate, 0, []byte("payload")); err != nil {
			if !errors.Is(err, ErrSendQueueFull) {
				t.Fatalf("got %v, want ErrSendQueueFull", err)
			}
			return
		}
	}
	t.Fatal("send queue never overflowed against a stalled peer")
}

func TestClientReconnects(t *testing.T) {
	addr, stop := echoServer(t)

	var mu sync.Mutex
	var hellos int
	cl := DialLoop(addr, nil, func(c *Conn) error {
		mu.Lock()
		hellos++
		mu.Unlock()
		return nil
	}, Options{})
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.WaitConnected(ctx); err != nil {
		t.Fatalf("first connect: %v", err)
	}
	if _, err := cl.Call(ctx, MsgSubmit, []byte("a")); err != nil {
		t.Fatalf("call on first connection: %v", err)
	}

	// Kill the server; the link drops and sends fail fast.
	stop()
	for {
		if err := cl.Send(MsgSubmit, 0, nil); err != nil {
			break
		}
		if ctx.Err() != nil {
			t.Fatal("link never observed the server death")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Restart a server on the same address; the client must redial.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			conn := NewConn(nc, Options{})
			go conn.Serve(func(c *Conn, f Frame) {
				c.Send(MsgResult, f.ReqID, append([]byte(nil), f.Payload...))
			})
		}
	}()
	if err := cl.WaitConnected(ctx); err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	if _, err := cl.Call(ctx, MsgSubmit, []byte("b")); err != nil {
		t.Fatalf("call after reconnect: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if hellos < 2 {
		t.Fatalf("onConnect ran %d times, want >= 2 (reconnect)", hellos)
	}
}

func TestClientCloseWhileBackingOff(t *testing.T) {
	// No listener: the client sits in its dial/backoff loop. Close must
	// return promptly anyway.
	cl := DialLoop("127.0.0.1:1", nil, nil, Options{})
	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() { cl.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung during backoff")
	}
	if err := cl.Send(MsgSubmit, 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}
