// Package netx is the wire layer of the live hybrid cluster: a
// length-prefixed binary framing over TCP (DESIGN.md §13), connections with
// per-connection write pumps and read deadlines, a reconnecting client, and
// the encoders/decoders for the cluster's protocol messages.
//
// Frame layout, in network byte order:
//
//	uint32  length   // bytes that follow: header (9) + payload
//	uint8   type     // message discriminator (Msg* constants in wire.go)
//	uint64  reqID    // request correlation id; 0 when unused
//	[]byte  payload  // length-9 bytes of message-specific encoding
//
// The length word counts the type byte, the request id, and the payload, so
// the minimum legal value is 9 (empty payload) and a reader can allocate
// exactly once per frame. Frames above MaxFrame are rejected on both sides
// before any allocation, bounding the damage of a corrupt or hostile peer.
package netx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// headerLen is the fixed frame header after the length word: one type byte
// plus the 8-byte request id.
const headerLen = 1 + 8

// MaxFrame is the largest accepted value of a frame's length word (header +
// payload). 1 MiB is orders of magnitude above any legal cluster message.
const MaxFrame = 1 << 20

// ErrFrameTooLarge is returned when a frame's length word exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("netx: frame exceeds MaxFrame")

// ErrMalformedFrame is returned when a frame's length word is shorter than
// the fixed header — no legal frame, not even an empty payload, encodes so.
var ErrMalformedFrame = errors.New("netx: frame length shorter than header")

// Frame is one decoded unit of the protocol. Payload aliases the read buffer
// it was decoded into and is only valid until the next read on that buffer.
type Frame struct {
	Type    byte
	ReqID   uint64
	Payload []byte
}

func (f Frame) String() string {
	return fmt.Sprintf("frame{type=%s req=%d payload=%dB}", MsgName(f.Type), f.ReqID, len(f.Payload))
}

// AppendFrame appends the encoded frame to dst and returns the extended
// slice. It errors (without appending) if the payload would exceed MaxFrame.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	n := headerLen + len(f.Payload)
	if n > MaxFrame {
		return dst, fmt.Errorf("%w: payload %d bytes", ErrFrameTooLarge, len(f.Payload))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, f.Type)
	dst = binary.BigEndian.AppendUint64(dst, f.ReqID)
	return append(dst, f.Payload...), nil
}

// WriteFrame encodes f and writes it to w in one Write call.
func WriteFrame(w io.Writer, f Frame) error {
	buf := make([]byte, 0, 4+headerLen+len(f.Payload))
	buf, err := AppendFrame(buf, f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame from r, reusing buf for the body when it is
// large enough, and returns the frame plus the (possibly grown) buffer. The
// frame's Payload aliases the returned buffer. A clean EOF before the first
// length byte returns io.EOF; a connection that dies mid-frame returns
// io.ErrUnexpectedEOF; an oversized or malformed length word returns
// ErrFrameTooLarge / ErrMalformedFrame before reading the body.
func ReadFrame(r io.Reader, buf []byte) (Frame, []byte, error) {
	var lenWord [4]byte
	if _, err := io.ReadFull(r, lenWord[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			// A torn length word is a mid-frame death, not a clean close.
			return Frame{}, buf, io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	n := binary.BigEndian.Uint32(lenWord[:])
	if n > MaxFrame {
		return Frame{}, buf, fmt.Errorf("%w: length word %d", ErrFrameTooLarge, n)
	}
	if n < headerLen {
		return Frame{}, buf, fmt.Errorf("%w: length word %d", ErrMalformedFrame, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	f := Frame{
		Type:    buf[0],
		ReqID:   binary.BigEndian.Uint64(buf[1:9]),
		Payload: buf[headerLen:],
	}
	return f, buf, nil
}
