// Package progress reports sweep liveness without touching simulation
// results: a stderr ticker fed by the runner's completion callback, expvar
// counters, and an optional debug HTTP server exposing expvar and pprof.
// Long figure regenerations stop looking hung, and a stuck or slow run can
// be profiled in place.
package progress

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"sync"
	"time"

	"hybriddb/internal/runner"
)

// Published expvar counters, updated by every Ticker. A process hosts many
// sweeps sequentially, so the vars are package-level and cumulative across
// sweeps except sim_tasks_total/sim_tasks_done, which describe the current
// sweep.
var (
	varDone    = expvar.NewInt("sim_tasks_done")
	varTotal   = expvar.NewInt("sim_tasks_total")
	varLast    = expvar.NewString("sim_last_task")
	varElapsed = expvar.NewFloat("sim_elapsed_seconds")
)

// Ticker renders runner progress to a writer (normally stderr), at most once
// per MinInterval except for the final task, which always prints. The zero
// MinInterval prints every completion.
type Ticker struct {
	W           io.Writer
	MinInterval time.Duration

	mu   sync.Mutex
	last time.Time
}

// NewTicker returns a ticker writing to w at most every interval.
func NewTicker(w io.Writer, interval time.Duration) *Ticker {
	return &Ticker{W: w, MinInterval: interval}
}

// Callback is the runner.Options.Progress hook.
func (t *Ticker) Callback(ev runner.ProgressEvent) {
	varDone.Set(int64(ev.Done))
	varTotal.Set(int64(ev.Total))
	varLast.Set(ev.Label)
	varElapsed.Set(ev.Elapsed.Seconds())

	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	final := ev.Done == ev.Total
	if !final && t.MinInterval > 0 && now.Sub(t.last) < t.MinInterval {
		return
	}
	t.last = now
	line := fmt.Sprintf("[%d/%d] %s (%.1fs elapsed", ev.Done, ev.Total, ev.Label, ev.Elapsed.Seconds())
	if ev.ETA > 0 {
		line += fmt.Sprintf(", ~%.0fs left", ev.ETA.Seconds())
	}
	line += ")\n"
	fmt.Fprint(t.W, line)
}

// StartDebugServer serves expvar (/debug/vars) and pprof (/debug/pprof) on
// addr in a background goroutine, returning the bound address (useful with a
// ":0" listener). The server lives until the process exits — simulation runs
// are batch jobs, so there is nothing to shut down gracefully.
func StartDebugServer(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debug server: %w", err)
	}
	go func() {
		// DefaultServeMux carries both expvar's and pprof's handlers.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
