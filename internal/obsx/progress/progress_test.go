package progress

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hybriddb/internal/runner"
)

// TestTickerRendersProgress: with no rate limit every event prints, carrying
// the counter, label, and ETA.
func TestTickerRendersProgress(t *testing.T) {
	var buf strings.Builder
	tick := NewTicker(&buf, 0)
	tick.Callback(runner.ProgressEvent{Done: 1, Total: 3, Label: "first", Elapsed: 2 * time.Second, ETA: 4 * time.Second})
	tick.Callback(runner.ProgressEvent{Done: 3, Total: 3, Label: "last", Elapsed: 6 * time.Second})
	out := buf.String()
	for _, want := range []string{"[1/3] first", "~4s left", "[3/3] last"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestTickerRateLimit: intermediate events inside the interval are swallowed,
// but the final event always prints.
func TestTickerRateLimit(t *testing.T) {
	var buf strings.Builder
	tick := NewTicker(&buf, time.Hour)
	for i := 1; i <= 5; i++ {
		tick.Callback(runner.ProgressEvent{Done: i, Total: 5, Label: fmt.Sprintf("t%d", i)})
	}
	out := buf.String()
	if !strings.Contains(out, "[1/5]") {
		t.Errorf("first event suppressed:\n%s", out)
	}
	if strings.Contains(out, "[3/5]") {
		t.Errorf("rate limit did not suppress intermediate event:\n%s", out)
	}
	if !strings.Contains(out, "[5/5]") {
		t.Errorf("final event suppressed:\n%s", out)
	}
}

// TestDebugServerServesExpvar boots the server on an ephemeral port and
// fetches /debug/vars: the sim_* counters published by the ticker must be
// present and current.
func TestDebugServerServesExpvar(t *testing.T) {
	NewTicker(io.Discard, 0).Callback(runner.ProgressEvent{Done: 2, Total: 9, Label: "probe"})

	addr, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if got := vars["sim_tasks_total"]; got != float64(9) {
		t.Errorf("sim_tasks_total = %v, want 9", got)
	}
	if got := vars["sim_last_task"]; got != "probe" {
		t.Errorf("sim_last_task = %v, want probe", got)
	}
}
