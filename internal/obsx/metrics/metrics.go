// Package metrics is the dependency-free telemetry registry of the live
// cluster (DESIGN.md §15): named counters, gauges, and fixed-width
// histograms with an atomic, zero-allocation hot path, exposed in
// Prometheus text format and as an expvar JSON blob from each process's
// debug listener.
//
// The registry deliberately supports only what the cluster needs — no
// dynamic label cardinality, no summaries, no push. A series is registered
// once (name plus a fixed label set) and returns a handle whose increment
// path is a single atomic add; exposition walks the registered series in
// sorted order so output is deterministic and diffable. Scrape hooks let a
// node mirror loop-confined state (queue depths, in-flight counts) into
// gauges under its event loop's consistency, which is what makes the
// conservation invariant (submitted == completed + in-flight) exactly
// checkable from a scrape rather than only approximately observable.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"hybriddb/internal/stats"
)

// Label is one fixed key/value pair of a series. Labels are part of the
// series identity and must be known at registration time.
type Label struct{ Name, Value string }

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing counter. The zero value is ready;
// Inc and Add are single atomic adds (no allocation, no locks).
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down. Set is an atomic
// store; Add is a CAS loop. The zero value reads 0.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-width histogram over [lo, hi) with underflow and
// overflow tallies, the atomic twin of stats.Histogram: identical bucket
// geometry and index arithmetic, so the two agree bucket for bucket on the
// same observations (property-tested). Observe is bucket index math plus
// three atomic adds — no allocation, safe from any goroutine.
type Histogram struct {
	lo, hi  float64
	width   float64
	buckets []atomic.Uint64
	under   atomic.Uint64
	over    atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("metrics: histogram requires n > 0 and hi > lo")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]atomic.Uint64, n)}
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	switch {
	case x < h.lo:
		h.under.Add(1)
	case x >= h.hi:
		h.over.Add(1)
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // guard against floating-point edge
			i = len(h.buckets) - 1
		}
		h.buckets[i].Add(1)
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Merge folds other into h bucket by bucket, mirroring
// stats.Histogram.Merge. Both histograms must share the same geometry.
func (h *Histogram) Merge(other *Histogram) {
	if h.lo != other.lo || h.hi != other.hi || len(h.buckets) != len(other.buckets) {
		panic("metrics: merging histograms with different shapes")
	}
	for i := range other.buckets {
		h.buckets[i].Add(other.buckets[i].Load())
	}
	h.under.Add(other.under.Load())
	h.over.Add(other.over.Load())
	h.count.Add(other.count.Load())
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + other.Sum())
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Dump snapshots the histogram in the stats package's machine-readable
// shape, so quantiles are computed by the same interpolation code the
// simulator's artifacts use (stats.HistogramDump.Quantile). The Mean is
// sum/count rather than a Welford accumulation, identical up to float
// rounding.
func (h *Histogram) Dump() stats.HistogramDump {
	n := len(h.buckets)
	counts := make([]uint64, n)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	for n > 0 && counts[n-1] == 0 {
		n--
	}
	count := h.count.Load()
	d := stats.HistogramDump{
		Lo:     h.lo,
		Hi:     h.hi,
		Width:  h.width,
		Counts: counts[:n:n],
		Under:  h.under.Load(),
		Over:   h.over.Load(),
		Count:  count,
	}
	if count > 0 {
		d.Mean = h.Sum() / float64(count)
	}
	return d
}

// Quantile estimates the q-quantile from the bucketed data (see
// stats.HistogramDump.Quantile).
func (h *Histogram) Quantile(q float64) float64 { return h.Dump().Quantile(q) }

// kind discriminates the series types for exposition.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered metric instance: a family name plus a rendered
// label set.
type series struct {
	labels  string // rendered {k="v",...} without braces, "" when unlabeled
	kind    kind
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series []*series // sorted by labels at registration
}

// Registry holds the registered series of one process (or one node).
// Registration takes the registry lock; the returned handles are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	hooks    []func()
	// hookMu serializes hook execution across concurrent scrapes: hooks
	// that mirror external state with read-modify-write (counter deltas)
	// must not interleave.
	hookMu sync.Mutex
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "=" + strconv.Quote(l.Value)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// register adds (or finds) the series for name+labels, enforcing one kind
// per family and one registration per series.
func (r *Registry) register(name, help string, k kind, labels []Label, build func() *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: k}
		r.families[name] = fam
	} else if fam.kind.String() != k.String() {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, fam.kind, k))
	}
	rendered := renderLabels(labels)
	for _, s := range fam.series {
		if s.labels == rendered {
			if s.kind != k {
				panic(fmt.Sprintf("metrics: %s{%s} re-registered with a different kind", name, rendered))
			}
			return s
		}
	}
	s := build()
	s.labels = rendered
	s.kind = k
	fam.series = append(fam.series, s)
	sort.Slice(fam.series, func(i, j int) bool { return fam.series[i].labels < fam.series[j].labels })
	return s
}

// Counter registers (or returns the existing) counter name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels, func() *series {
		return &series{counter: &Counter{}}
	})
	return s.counter
}

// Gauge registers (or returns the existing) gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels, func() *series {
		return &series{gauge: &Gauge{}}
	})
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read by fn at scrape time.
// fn must be safe to call from the scrape goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGaugeFunc, labels, func() *series {
		return &series{fn: fn}
	})
}

// Histogram registers (or returns the existing) fixed-width histogram
// name{labels} with n buckets spanning [lo, hi).
func (r *Registry) Histogram(name, help string, lo, hi float64, n int, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, labels, func() *series {
		return &series{hist: newHistogram(lo, hi, n)}
	})
	if s.hist.lo != lo || s.hist.hi != hi || len(s.hist.buckets) != n {
		panic(fmt.Sprintf("metrics: %s re-registered with different histogram geometry", name))
	}
	return s.hist
}

// OnScrape registers a hook run (serially, registration order) before every
// exposition pass. Nodes use it to mirror loop-confined state into gauges
// under the event loop's consistency.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// snapshotLocked returns the families sorted by name; callers hold r.mu.
func (r *Registry) sortedFamilies() []*family {
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// runHooks runs the scrape hooks outside the registry lock (a hook may
// register or read series), serialized across concurrent scrapes.
func (r *Registry) runHooks() {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	r.hookMu.Lock()
	defer r.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// Snapshot runs the scrape hooks and returns every series as a flat
// name{labels} -> value map. Histograms contribute _count and _sum entries
// plus p50/p95 quantile gauges, which is the scalar shape embedded in run
// manifests.
func (r *Registry) Snapshot() map[string]float64 {
	r.runHooks()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for _, fam := range r.sortedFamilies() {
		for _, s := range fam.series {
			full := fam.name
			if s.labels != "" {
				full += "{" + s.labels + "}"
			}
			switch s.kind {
			case kindCounter:
				out[full] = float64(s.counter.Value())
			case kindGauge:
				out[full] = s.gauge.Value()
			case kindGaugeFunc:
				out[full] = s.fn()
			case kindHistogram:
				d := s.hist.Dump()
				out[seriesName(fam.name+"_count", s.labels)] = float64(d.Count)
				out[seriesName(fam.name+"_sum", s.labels)] = s.hist.Sum()
				if d.Count > 0 {
					out[seriesName(fam.name+"_p50", s.labels)] = d.Quantile(0.50)
					out[seriesName(fam.name+"_p95", s.labels)] = d.Quantile(0.95)
				}
			}
		}
	}
	return out
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}
