package metrics

// Exposition: Prometheus text format (the scrape surface `make
// cluster-smoke` asserts conservation over), an expvar JSON view, the
// per-process debug HTTP server, and a small parser for the text format so
// tests and tooling can read a scrape back without a Prometheus
// dependency.

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus runs the scrape hooks and renders every series in
// Prometheus text exposition format, families and series in sorted order so
// the output is deterministic (golden-tested).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runHooks()
	r.mu.Lock()
	fams := r.sortedFamilies()
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, fam := range fams {
		if fam.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam.name, fam.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.name, fam.kind)
		for _, s := range fam.series {
			switch s.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s %d\n", seriesName(fam.name, s.labels), s.counter.Value())
			case kindGauge:
				fmt.Fprintf(bw, "%s %s\n", seriesName(fam.name, s.labels), formatFloat(s.gauge.Value()))
			case kindGaugeFunc:
				fmt.Fprintf(bw, "%s %s\n", seriesName(fam.name, s.labels), formatFloat(s.fn()))
			case kindHistogram:
				writePromHistogram(bw, fam.name, s)
			}
		}
	}
	return bw.Flush()
}

// writePromHistogram renders one histogram series with cumulative le
// buckets. Underflow mass (x < lo) is below every bucket bound and so is
// folded into each cumulative count; overflow appears only in +Inf, whose
// count equals _count.
func writePromHistogram(w io.Writer, name string, s *series) {
	h := s.hist
	cum := h.under.Load()
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := formatFloat(h.lo + float64(i+1)*h.width)
		fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", joinLabels(s.labels, `le=`+strconv.Quote(le))), cum)
	}
	fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", joinLabels(s.labels, `le="+Inf"`)), h.count.Load())
	fmt.Fprintf(w, "%s %s\n", seriesName(name+"_sum", s.labels), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", s.labels), h.count.Load())
}

func joinLabels(existing, extra string) string {
	if existing == "" {
		return extra
	}
	return existing + "," + extra
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format (the /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// String implements expvar.Var: the Snapshot as a JSON object with sorted
// keys, so `/debug/vars` carries the same numbers as `/metrics`.
func (r *Registry) String() string {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(k))
		b.WriteByte(':')
		b.WriteString(formatFloat(snap[k]))
	}
	b.WriteByte('}')
	return b.String()
}

var _ expvar.Var = (*Registry)(nil)

// StartDebugServer serves the registry's /metrics plus expvar (/debug/vars)
// and pprof (/debug/pprof) on addr in a background goroutine, returning the
// bound address (useful with ":0"). The listener lives until the process
// exits; cluster nodes are shut down by signal, and an in-flight scrape at
// that instant simply sees the final counters.
func StartDebugServer(addr string, reg *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("metrics: debug server: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}

// ParseText parses Prometheus text exposition into a flat name{labels} ->
// value map — the inverse of WritePrometheus, shared by the cluster-smoke
// conservation assertion and any tooling that reads a scrape back. Comment
// and blank lines are skipped; a malformed sample line is an error.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value starts after the last space outside the label braces;
		// label values are quoted and may not contain spaces in our output,
		// so the last space splits name from value.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("metrics: unparseable sample line %q", line)
		}
		name := strings.TrimSpace(line[:i])
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: bad value in %q: %w", line, err)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ScrapeHTTP fetches url (a /metrics endpoint) and parses it.
func ScrapeHTTP(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: scrape %s: status %s", url, resp.Status)
	}
	return ParseText(resp.Body)
}
