package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"

	"hybriddb/internal/rng"
	"hybriddb/internal/stats"
)

// TestPrometheusGolden pins the text exposition byte for byte: family and
// series ordering, label rendering, histogram cumulative buckets with
// underflow folded in and overflow only in +Inf.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wire_msgs_in_total", "inbound frames by type", L("type", "ship"))
	c.Add(7)
	r.Counter("wire_msgs_in_total", "inbound frames by type", L("type", "hello")).Inc()
	g := r.Gauge("central_queue_depth", "bursts queued at the central CPU")
	g.Set(3.5)
	r.GaugeFunc("up", "always one", func() float64 { return 1 })
	h := r.Histogram("rt_seconds", "response time", 0, 1, 4, L("route", "local"))
	h.Observe(-0.5) // underflow
	h.Observe(0.1)
	h.Observe(0.3)
	h.Observe(0.9)
	h.Observe(2.0) // overflow

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP central_queue_depth bursts queued at the central CPU
# TYPE central_queue_depth gauge
central_queue_depth 3.5
# HELP rt_seconds response time
# TYPE rt_seconds histogram
rt_seconds_bucket{route="local",le="0.25"} 2
rt_seconds_bucket{route="local",le="0.5"} 3
rt_seconds_bucket{route="local",le="0.75"} 3
rt_seconds_bucket{route="local",le="1"} 4
rt_seconds_bucket{route="local",le="+Inf"} 5
rt_seconds_sum{route="local"} 2.8
rt_seconds_count{route="local"} 5
# HELP up always one
# TYPE up gauge
up 1
# HELP wire_msgs_in_total inbound frames by type
# TYPE wire_msgs_in_total counter
wire_msgs_in_total{type="hello"} 1
wire_msgs_in_total{type="ship"} 7
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}

	// The parser inverts the exposition for scalar series and histogram
	// component samples.
	parsed, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	for name, want := range map[string]float64{
		"central_queue_depth":                        3.5,
		`wire_msgs_in_total{type="ship"}`:            7,
		`rt_seconds_count{route="local"}`:            5,
		`rt_seconds_bucket{route="local",le="+Inf"}`: 5,
	} {
		if got := parsed[name]; got != want {
			t.Errorf("parsed[%s] = %v, want %v", name, got, want)
		}
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines under
// the race detector: registration is idempotent and handle updates are
// atomic.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("ops_total", "ops", L("kind", "x"))
			g := r.Gauge("depth", "depth")
			h := r.Histogram("lat", "latency", 0, 1, 10)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) / 10)
				if i%1000 == 0 {
					var sink strings.Builder
					if err := r.WritePrometheus(&sink); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("ops_total", "ops", L("kind", "x")).Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("depth", "depth").Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat", "latency", 0, 1, 10).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramMatchesStats is the histogram-merge property test: the
// atomic metrics histogram and stats.Histogram share bucket geometry and
// index arithmetic, so the same observations land in the same buckets,
// merges agree tally for tally, and the dumped quantiles are identical.
func TestHistogramMatchesStats(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 50; trial++ {
		lo := r.Float64()*2 - 1
		hi := lo + 0.1 + r.Float64()*5
		n := 1 + int(r.Uint64n(64))
		ours := [2]*Histogram{newHistogram(lo, hi, n), newHistogram(lo, hi, n)}
		theirs := [2]*stats.Histogram{stats.NewHistogram(lo, hi, n), stats.NewHistogram(lo, hi, n)}
		for half := 0; half < 2; half++ {
			samples := int(r.Uint64n(400))
			for i := 0; i < samples; i++ {
				// Span well past the range so under/over tallies exercise.
				x := lo + (r.Float64()*1.5-0.25)*(hi-lo)
				ours[half].Observe(x)
				theirs[half].Add(x)
			}
		}
		ours[0].Merge(ours[1])
		theirs[0].Merge(theirs[1])
		gotD, wantD := ours[0].Dump(), theirs[0].Dump()
		if gotD.Count != wantD.Count || gotD.Under != wantD.Under || gotD.Over != wantD.Over {
			t.Fatalf("trial %d: tallies diverge: got %+v want %+v", trial, gotD, wantD)
		}
		if len(gotD.Counts) != len(wantD.Counts) {
			t.Fatalf("trial %d: bucket trim diverges: %d vs %d", trial, len(gotD.Counts), len(wantD.Counts))
		}
		for i := range gotD.Counts {
			if gotD.Counts[i] != wantD.Counts[i] {
				t.Fatalf("trial %d: bucket %d: got %d want %d", trial, i, gotD.Counts[i], wantD.Counts[i])
			}
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 1} {
			if g, w := gotD.Quantile(q), wantD.Quantile(q); g != w {
				t.Fatalf("trial %d: q%.2f: got %v want %v", trial, q, g, w)
			}
		}
		if math.Abs(gotD.Mean-wantD.Mean) > 1e-9*(1+math.Abs(wantD.Mean)) {
			t.Fatalf("trial %d: mean diverges beyond rounding: %v vs %v", trial, gotD.Mean, wantD.Mean)
		}
	}
}

// TestScrapeHooks pins that hooks run before every exposition and can
// mirror external state into gauges.
func TestScrapeHooks(t *testing.T) {
	r := NewRegistry()
	depth := 0
	g := r.Gauge("mirrored_depth", "loop-confined depth mirrored at scrape")
	r.OnScrape(func() { g.Set(float64(depth)) })
	depth = 17
	snap := r.Snapshot()
	if snap["mirrored_depth"] != 17 {
		t.Errorf("snapshot saw %v, want 17", snap["mirrored_depth"])
	}
	depth = 23
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "mirrored_depth 23") {
		t.Errorf("exposition did not re-run the hook:\n%s", b.String())
	}
}

// TestSnapshotShape pins the scalar snapshot embedded in manifests:
// histograms contribute _count/_sum/_p50/_p95.
func TestSnapshotShape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rt_seconds", "", 0, 10, 100, L("route", "shipped"))
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 10)
	}
	snap := r.Snapshot()
	for _, k := range []string{
		`rt_seconds_count{route="shipped"}`,
		`rt_seconds_sum{route="shipped"}`,
		`rt_seconds_p50{route="shipped"}`,
		`rt_seconds_p95{route="shipped"}`,
	} {
		if _, ok := snap[k]; !ok {
			t.Errorf("snapshot missing %s (have %v)", k, snap)
		}
	}
	if got := snap[`rt_seconds_count{route="shipped"}`]; got != 100 {
		t.Errorf("count %v, want 100", got)
	}
}

// TestKindMismatchPanics pins the registration error paths.
func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("re-registering a counter as a gauge did not panic")
			}
		}()
		r.Gauge("x_total", "")
	}()
	r.Histogram("h", "", 0, 1, 10)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("histogram geometry change did not panic")
			}
		}()
		r.Histogram("h", "", 0, 2, 10)
	}()
}
