package manifest

import (
	"path/filepath"
	"reflect"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
)

func simulate(t *testing.T) (hybrid.Config, hybrid.Result) {
	t.Helper()
	cfg := hybrid.DefaultConfig()
	cfg.Sites = 4
	cfg.Seed = 7
	cfg.Warmup, cfg.Duration = 10, 60
	cfg.SeriesBucket = 15
	cfg.CaptureHistograms = true
	e, err := hybrid.New(cfg, routing.QueueLength{})
	if err != nil {
		t.Fatal(err)
	}
	return cfg, e.Run()
}

// TestRoundTrip writes a manifest holding a real run and reads it back: the
// decoded run must reproduce the config and result exactly, histogram dumps
// and time series included — the artifact carries everything needed to
// re-plot without resimulating.
func TestRoundTrip(t *testing.T) {
	cfg, res := simulate(t)
	m := New("test", "round trip")
	m.Add("single", cfg, res)
	m.Finish(0)

	path := filepath.Join(t.TempDir(), "RUN_test.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.Tool != "test" || len(got.Runs) != 1 {
		t.Fatalf("header mangled: %+v", got)
	}
	run := got.Runs[0]
	if run.Seed != cfg.Seed {
		t.Errorf("seed %d, want %d", run.Seed, cfg.Seed)
	}
	if !reflect.DeepEqual(run.Config, cfg) {
		t.Errorf("config did not round-trip:\ngot  %+v\nwant %+v", run.Config, cfg)
	}
	if !reflect.DeepEqual(run.Result, res) {
		t.Error("result did not round-trip")
	}
	if run.Result.Histograms == nil {
		t.Fatal("histogram dumps lost in round trip")
	}
	if got, want := run.Result.Histograms.All.Quantile(0.95), res.P95RT; got != want {
		t.Errorf("recomputed p95 %v, want %v", got, want)
	}
	if len(run.Result.RTSeries) == 0 {
		t.Error("time series lost in round trip")
	}
}

// TestReadFileRejectsWrongSchema guards the version gate.
func TestReadFileRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	m := New("test", "")
	m.Schema = "something/else"
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestProvenanceStamped: New records the toolchain; Finish stamps a time.
func TestProvenanceStamped(t *testing.T) {
	m := New("test", "title")
	if m.GoVersion == "" {
		t.Error("no Go version recorded")
	}
	m.Finish(1500000000) // 1.5s in nanoseconds
	if m.WallSeconds != 1.5 {
		t.Errorf("WallSeconds = %v, want 1.5", m.WallSeconds)
	}
	if m.Created == "" {
		t.Error("no creation time stamped")
	}
}
