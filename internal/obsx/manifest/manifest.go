// Package manifest writes machine-readable run artifacts. A manifest is the
// full provenance of a simulation run or sweep — every configuration field,
// every seed, the code revision and Go version that produced it, wall time —
// together with the complete measurements, including per-policy histogram
// dumps with under/over clip counts, percentile sets, the abort breakdown by
// cause, and the queue-length time series when the run recorded one. A plot
// or table can then be regenerated, and percentiles recomputed, from the
// RUN_*.json file alone, without rerunning the simulation.
package manifest

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"hybriddb/internal/hybrid"
)

// Schema identifies the manifest format; readers reject other values.
const Schema = "hybriddb/run-manifest/v1"

// Run is one simulation run: the exact configuration (seed included, so the
// run is reproducible bit for bit) and its full measurement.
type Run struct {
	// Label names the run within the manifest, e.g. the policy label of a
	// sweep ("min-average/nis at rate 2.5 rep 0") or "single" for one-off
	// hybridsim runs.
	Label string `json:"label"`
	// Seed duplicates Config.Seed for grepability.
	Seed   uint64        `json:"seed"`
	Config hybrid.Config `json:"config"`
	Result hybrid.Result `json:"result"`
	// Metrics is the producing process's flat metrics snapshot at the end
	// of the run (live cluster runs only; see internal/obsx/metrics).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Manifest is the artifact written next to a run's human-readable output.
type Manifest struct {
	Schema string `json:"schema"`
	// Tool is the producing command ("hybridsim", "figures", ...).
	Tool string `json:"tool"`
	// Title describes the run or sweep, e.g. a figure title.
	Title string `json:"title,omitempty"`
	// GoVersion and GitRevision record the build that produced the numbers.
	// GitRevision is empty when the binary was built outside version control.
	GoVersion   string `json:"go_version"`
	GitRevision string `json:"git_revision,omitempty"`
	GitDirty    bool   `json:"git_dirty,omitempty"`
	// Created is the UTC completion time in RFC 3339 form.
	Created string `json:"created,omitempty"`
	// WallSeconds is the real time the runs took.
	WallSeconds float64 `json:"wall_seconds"`
	Runs        []Run   `json:"runs"`
}

// New starts a manifest for the named tool, stamping build provenance from
// the running binary's debug build info.
func New(tool, title string) *Manifest {
	m := &Manifest{
		Schema:    Schema,
		Tool:      tool,
		Title:     title,
		GoVersion: runtime.Version(),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitRevision = s.Value
			case "vcs.modified":
				m.GitDirty = s.Value == "true"
			}
		}
	}
	return m
}

// Add appends one run.
func (m *Manifest) Add(label string, cfg hybrid.Config, res hybrid.Result) {
	m.Runs = append(m.Runs, Run{Label: label, Seed: cfg.Seed, Config: cfg, Result: res})
}

// AttachMetrics adds a metrics snapshot to the most recently added run.
func (m *Manifest) AttachMetrics(snap map[string]float64) {
	if len(m.Runs) > 0 {
		m.Runs[len(m.Runs)-1].Metrics = snap
	}
}

// Finish stamps the completion time and wall duration.
func (m *Manifest) Finish(wall time.Duration) {
	m.Created = time.Now().UTC().Format(time.RFC3339)
	m.WallSeconds = wall.Seconds()
}

// WriteFile writes the manifest as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadFile loads and validates a manifest.
func ReadFile(path string) (*Manifest, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("manifest: %s: %w", path, err)
	}
	if m.Schema != Schema {
		return nil, fmt.Errorf("manifest: %s: schema %q, want %q", path, m.Schema, Schema)
	}
	return &m, nil
}
