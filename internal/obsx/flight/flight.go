// Package flight is the cluster's flight recorder: a fixed-size ring of
// recent wire events per process, cheap enough to leave always on. When a
// node misbehaves — a stuck transaction, a reconnect storm, an e2e test
// timing out — the last few hundred frames usually tell the story, and the
// ring can be dumped on SIGQUIT or on test failure without having run at
// debug log level the whole time.
package flight

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

// Dir marks an event's direction relative to the recording process.
type Dir uint8

const (
	// In is a frame received from a peer.
	In Dir = iota
	// Out is a frame sent (or attempted) to a peer.
	Out
	// Note is a local event that is neither (reconnect, drop, abort).
	Note
)

func (d Dir) String() string {
	switch d {
	case In:
		return "<-"
	case Out:
		return "->"
	default:
		return "--"
	}
}

// Event is one recorded wire event.
type Event struct {
	At   time.Time // wall clock at Record time
	Dir  Dir
	Type string // message type name ("ship", "reply") or event kind
	Note string // free-form detail (txn id, peer, error)
}

// Recorder is a fixed-capacity ring of Events. Record is mutex-guarded and
// allocation-free once the ring is warm; safe from any goroutine.
type Recorder struct {
	name string
	mu   sync.Mutex
	ring []Event
	next int
	n    uint64 // total recorded, for the dump header
}

// NewRecorder returns a recorder labeled name holding the last capacity
// events (minimum 1).
func NewRecorder(name string, capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{name: name, ring: make([]Event, 0, capacity)}
}

// Name returns the recorder's label.
func (r *Recorder) Name() string { return r.name }

// Record appends one event, evicting the oldest when full.
func (r *Recorder) Record(dir Dir, typ, note string) {
	ev := Event{At: time.Now(), Dir: dir, Type: typ, Note: note}
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ev)
	} else {
		r.ring[r.next] = ev
	}
	r.next = (r.next + 1) % cap(r.ring)
	r.n++
	r.mu.Unlock()
}

// Recordf is Record with a formatted note.
func (r *Recorder) Recordf(dir Dir, typ, format string, args ...any) {
	r.Record(dir, typ, fmt.Sprintf(format, args...))
}

// Events returns the recorded events oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) < cap(r.ring) {
		return append([]Event(nil), r.ring...)
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Total returns the number of events ever recorded (including evicted).
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dump writes the ring to w, oldest first, with a header naming the
// recorder and how much history survives.
func (r *Recorder) Dump(w io.Writer) {
	evs := r.Events()
	total := r.Total()
	fmt.Fprintf(w, "=== flight recorder [%s]: last %d of %d events ===\n", r.name, len(evs), total)
	for _, ev := range evs {
		fmt.Fprintf(w, "%s %s %-10s %s\n", ev.At.UTC().Format("15:04:05.000000"), ev.Dir, ev.Type, ev.Note)
	}
}

// InstallSigquit dumps the given recorders to w whenever the process
// receives SIGQUIT. The default kill-with-stack behaviour is suppressed, so
// an operator can poke a live cluster repeatedly; goroutine stacks remain
// available via the debug listener's pprof endpoint.
func InstallSigquit(w io.Writer, recs ...*Recorder) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		for range ch {
			for _, r := range recs {
				r.Dump(w)
			}
		}
	}()
}
