package flight

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRingEviction(t *testing.T) {
	r := NewRecorder("site 0", 4)
	for i := 0; i < 10; i++ {
		r.Record(In, "ship", fmt.Sprintf("txn %d", i))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		want := fmt.Sprintf("txn %d", 6+i)
		if ev.Note != want {
			t.Errorf("event %d note %q, want %q (oldest first)", i, ev.Note, want)
		}
	}
	if r.Total() != 10 {
		t.Errorf("total %d, want 10", r.Total())
	}
}

func TestPartialRing(t *testing.T) {
	r := NewRecorder("central", 8)
	r.Record(Out, "reply", "txn 1")
	r.Record(Note, "reconnect", "site 2")
	evs := r.Events()
	if len(evs) != 2 || evs[0].Type != "reply" || evs[1].Type != "reconnect" {
		t.Fatalf("partial ring wrong: %+v", evs)
	}
}

func TestDumpFormat(t *testing.T) {
	r := NewRecorder("site 3", 16)
	r.Record(In, "auth-req", "txn 42 from central")
	r.Record(Out, "auth-reply", "txn 42 ack")
	var b strings.Builder
	r.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "flight recorder [site 3]: last 2 of 2 events") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "<- auth-req") || !strings.Contains(out, "-> auth-reply") {
		t.Errorf("missing direction markers:\n%s", out)
	}
}

// TestConcurrentRecord holds under -race.
func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder("x", 32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Recordf(Out, "ship", "n=%d", i)
				if i%100 == 0 {
					_ = r.Events()
				}
			}
		}()
	}
	wg.Wait()
	if r.Total() != 4000 {
		t.Errorf("total %d, want 4000", r.Total())
	}
	if len(r.Events()) != 32 {
		t.Errorf("ring %d, want 32", len(r.Events()))
	}
}
