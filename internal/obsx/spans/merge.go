package spans

// MergeFiles fuses per-process trace files (written by Recorder.WriteFile,
// one per cluster process) into a single Chrome trace-event file. Each
// input's events are shifted by its recorded clock offset into the central
// timebase, process-name metadata is deduplicated per lane, and events are
// ordered by shifted timestamp — so a shipped transaction's spans, recorded
// independently at its home site and at central, line up as one tree under
// one tid across two process lanes in Perfetto.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// MergeInfo summarizes a merge.
type MergeInfo struct {
	Files            int // input files read
	Events           int // non-metadata events written
	Processes        int // distinct process lanes
	CrossProcessTxns int // transactions with events in >= 2 lanes
}

// jsonEvent mirrors the written trace-event shape for parsing.
type jsonEvent struct {
	Name string            `json:"name,omitempty"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type jsonTrace struct {
	OtherData   map[string]string `json:"otherData"`
	TraceEvents []jsonEvent       `json:"traceEvents"`
}

// MergeFiles reads the named trace files, shifts each into the central
// timebase using its embedded clockOffsetSeconds, and writes the fused
// trace to w.
func MergeFiles(w io.Writer, paths ...string) (MergeInfo, error) {
	if len(paths) == 0 {
		return MergeInfo{}, fmt.Errorf("spans: merge needs at least one input file")
	}
	var merged []event
	laneNames := map[int]string{} // pid -> process name, first file wins
	txnLanes := map[int64]map[int]bool{}
	info := MergeInfo{Files: len(paths)}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return MergeInfo{}, err
		}
		var tf jsonTrace
		if err := json.Unmarshal(data, &tf); err != nil {
			return MergeInfo{}, fmt.Errorf("spans: %s: %w", path, err)
		}
		var offsetUs float64 // clock offset in trace microseconds
		if s, ok := tf.OtherData["clockOffsetSeconds"]; ok {
			off, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return MergeInfo{}, fmt.Errorf("spans: %s: bad clockOffsetSeconds %q: %w", path, s, err)
			}
			offsetUs = off * 1e6
		}
		for _, je := range tf.TraceEvents {
			if je.Ph == "" {
				return MergeInfo{}, fmt.Errorf("spans: %s: event with no phase", path)
			}
			if je.Ph == "M" {
				if _, ok := laneNames[je.Pid]; !ok {
					laneNames[je.Pid] = je.Args["name"]
				}
				continue
			}
			// Internal events carry seconds; the file carries microseconds.
			e := event{
				name: je.Name,
				cat:  je.Cat,
				ph:   je.Ph[0],
				ts:   (je.Ts + offsetUs) / 1e6,
				pid:  je.Pid,
				tid:  je.Tid,
			}
			if len(je.Args) > 0 {
				keys := make([]string, 0, len(je.Args))
				for k := range je.Args {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					e.args = append(e.args, kv{k: k, v: je.Args[k]})
				}
			}
			merged = append(merged, e)
			lanes := txnLanes[e.tid]
			if lanes == nil {
				lanes = map[int]bool{}
				txnLanes[e.tid] = lanes
			}
			lanes[e.pid] = true
		}
	}
	// Order by shifted time; ties keep input order so B/E nesting recorded
	// within one process survives the merge.
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].ts < merged[j].ts })
	for _, lanes := range txnLanes {
		if len(lanes) >= 2 {
			info.CrossProcessTxns++
		}
	}
	info.Events = len(merged)
	info.Processes = len(laneNames)

	pids := make([]int, 0, len(laneNames))
	for pid := range laneNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"mergedFiles\":\"%d\"},\"traceEvents\":[\n", len(paths))
	first := true
	for _, pid := range pids {
		writeMeta(&buf, &first, pid, laneNames[pid])
	}
	for i := range merged {
		writeEvent(&buf, &first, &merged[i])
	}
	buf.WriteString("\n]}\n")
	_, err := buf.WriteTo(w)
	return info, err
}

// MergeToFile merges into a new file at outPath.
func MergeToFile(outPath string, paths ...string) (MergeInfo, error) {
	f, err := os.Create(outPath)
	if err != nil {
		return MergeInfo{}, err
	}
	info, err := MergeFiles(f, paths...)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return info, err
}
