package spans

import (
	"math"
	"testing"
)

// fakeClock is a skewed clock: reads local time t as offset + t.
type fakeClock struct{ offset, now float64 }

func (c *fakeClock) read() float64     { return c.offset + c.now }
func (c *fakeClock) advance(d float64) { c.now += d }

// TestEstimateClockOffsetSkewedClocks runs the handshake between two fake
// clocks with known skew: with symmetric legs the estimate recovers the
// skew exactly; with asymmetric legs the error is bounded by half the
// asymmetry.
func TestEstimateClockOffsetSkewedClocks(t *testing.T) {
	for _, tc := range []struct {
		name          string
		skew          float64 // central clock − site clock at the same instant
		legOut, legIn float64 // one-way delays site→central, central→site
	}{
		{"central ahead, symmetric", 42.5, 0.010, 0.010},
		{"central behind, symmetric", -3.25, 0.002, 0.002},
		{"zero skew", 0, 0.005, 0.005},
		{"asymmetric legs", 10, 0.004, 0.008},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Both clocks tick in lockstep (no drift over the exchange);
			// they differ only by the constant skew.
			site := &fakeClock{offset: 0}
			central := &fakeClock{offset: tc.skew}

			t0 := site.read()
			site.advance(tc.legOut)
			central.advance(tc.legOut)
			tRemote := central.read()
			site.advance(tc.legIn)
			central.advance(tc.legIn)
			t1 := site.read()

			got := EstimateClockOffset(t0, t1, tRemote)
			maxErr := math.Abs(tc.legOut-tc.legIn) / 2
			if err := math.Abs(got - tc.skew); err > maxErr+1e-12 {
				t.Errorf("offset estimate %v, true skew %v: error %v exceeds bound %v", got, tc.skew, err, maxErr)
			}
			if tc.legOut == tc.legIn && math.Abs(got-tc.skew) > 1e-12 {
				t.Errorf("symmetric legs: estimate %v should equal skew %v exactly", got, tc.skew)
			}
		})
	}
}
