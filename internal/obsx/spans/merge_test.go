package spans

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRecorderMergeCrossProcess drives the live-cluster trace path end to
// end: a site and central each record their half of one shipped transaction
// against skewed local clocks, the site stamps its handshake-estimated
// offset, and MergeFiles fuses the two files into one trace where the
// transaction's spans appear under a single tid in both process lanes with
// aligned timestamps.
func TestRecorderMergeCrossProcess(t *testing.T) {
	dir := t.TempDir()

	// Central's clock is 5s ahead of the site's. Each process records in
	// its own timebase.
	const skew = 5.0
	site := NewRecorder("site 0", SitePid(0), 0)
	site.SetClockOffset(EstimateClockOffset(1.0, 1.02, 6.01)) // exactly skew
	central := NewRecorder("central complex", CentralPid, 0)

	const txn = int64(42)
	site.Begin(1.10, txn, "txn", KV{"class", "A"})
	site.Instant(1.10, txn, "route: ship")
	central.Begin(1.15+skew, txn, "exec") // central local time
	central.End(1.30+skew, txn)
	central.Instant(1.30+skew, txn, "commit", KV{"where", "central"})
	site.End(1.35, txn)

	// A purely local transaction stays single-lane.
	site.Begin(2.0, 43, "txn")
	site.End(2.1, 43)

	sitePath := filepath.Join(dir, "site0.json")
	centralPath := filepath.Join(dir, "central.json")
	if err := site.WriteFile(sitePath); err != nil {
		t.Fatal(err)
	}
	if err := central.WriteFile(centralPath); err != nil {
		t.Fatal(err)
	}

	outPath := filepath.Join(dir, "merged.json")
	info, err := MergeToFile(outPath, sitePath, centralPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Files != 2 || info.Processes != 2 {
		t.Errorf("info = %+v, want 2 files / 2 processes", info)
	}
	if info.CrossProcessTxns != 1 {
		t.Errorf("cross-process txns = %d, want 1 (txn 42 only)", info.CrossProcessTxns)
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var tf jsonTrace
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("merged output is not valid trace JSON: %v\n%s", err, data)
	}
	lanes := map[int]bool{}
	var centralBegin, siteBegin float64
	for _, e := range tf.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.Tid == txn {
			lanes[e.Pid] = true
		}
		if e.Ph == "B" && e.Pid == CentralPid && e.Tid == txn {
			centralBegin = e.Ts
		}
		if e.Ph == "B" && e.Pid == SitePid(0) && e.Tid == txn {
			siteBegin = e.Ts
		}
	}
	if !lanes[CentralPid] || !lanes[SitePid(0)] {
		t.Fatalf("txn %d does not span both lanes: %v", txn, lanes)
	}
	// After the shift, the site's 1.10 and central's (1.15+skew) must land
	// 0.05s apart in the shared timebase.
	if gap := (centralBegin - siteBegin) / 1e6; math.Abs(gap-0.05) > 1e-9 {
		t.Errorf("shifted gap site->central = %vs, want 0.05s (site begin %v, central begin %v)", gap, siteBegin, centralBegin)
	}
	// Events are globally ordered by shifted time.
	last := math.Inf(-1)
	for _, e := range tf.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.Ts < last {
			t.Fatalf("merged events out of order: %v after %v", e.Ts, last)
		}
		last = e.Ts
	}
}

func TestRecorderDropsAtCap(t *testing.T) {
	r := NewRecorder("x", 2, 3)
	for i := 0; i < 10; i++ {
		r.Instant(float64(i), 1, "e")
	}
	if r.Events() != 3 || r.Dropped() != 7 {
		t.Errorf("events %d dropped %d, want 3/7", r.Events(), r.Dropped())
	}
}

func TestMergeRejectsMissingFile(t *testing.T) {
	var b strings.Builder
	if _, err := MergeFiles(&b, "/nonexistent/trace.json"); err == nil {
		t.Fatal("missing input accepted")
	}
	if _, err := MergeFiles(&b); err == nil {
		t.Fatal("zero inputs accepted")
	}
}
