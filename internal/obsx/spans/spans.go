// Package spans reconstructs per-transaction span trees from the engine's
// protocol-detail event stream and exports them as Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing.
//
// The paper's routing policies differ precisely in where a transaction's
// time goes — network hops, CPU queueing at the central complex, lock
// waits, optimistic-abort retries — and a summary Result cannot show that.
// A Collector subscribes to the observer bus (it is an obs.DetailObserver,
// so the engine materializes trace events only while one is attached),
// folds the flat event stream back into nested spans, and renders one
// trace "process" per local site plus a dedicated lane for the central
// complex. Each transaction gets its own thread (tid = transaction id)
// inside the process where the work happened, so a timeline reads:
//
//	txn                                  whole lifetime, home-site lane
//	├─ attempt N                         one execution attempt
//	│   └─ lock wait (elem)              blocking waits inside the attempt
//	├─ ship+setup                        transit + setup, central lane
//	├─ auth                              authentication round(s), central lane
//	└─ reply                             completion reply in flight, home lane
//
// Aborts, route decisions, commits, and authentication answers appear as
// instant events with their cause in args, so Perfetto's search and
// aggregation can slice on them.
package spans

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"hybriddb/internal/hybrid/obs"
	"hybriddb/internal/trace"
)

// DefaultMaxEvents bounds the retained trace events; a long saturated run
// can emit protocol events far faster than anyone can look at them.
const DefaultMaxEvents = 1 << 20

// pid assignment: the central complex gets its own lane before the sites.
const centralPid = 1

func sitePid(site int) int {
	if site < 0 {
		return centralPid
	}
	return site + 2
}

// event is one Chrome trace event. Args are ordered key/value pairs so the
// export is byte-deterministic.
type event struct {
	name string
	cat  string
	ph   byte // 'B', 'E', 'i', 'M'
	ts   float64
	pid  int
	tid  int64
	args []kv
}

type kv struct{ k, v string }

// txnState is the collector's view of one in-flight transaction.
type txnState struct {
	home    int
	attempt int

	txnOpen      bool
	execPid      int // pid of the open "attempt" span, 0 when closed
	shipOpen     bool
	authOpen     bool
	replyOpen    bool
	lockWaitOpen bool
	lockWaitPid  int
	lockWaitElem uint32
}

// Collector accumulates trace events for export. Subscribe it on an engine
// before Run; it must see the run from the start to pair span boundaries.
type Collector struct {
	// MaxEvents caps the retained events (0 selects DefaultMaxEvents).
	// The cap is soft: once reached, transactions not yet seen are dropped
	// (and counted), while transactions with open spans keep recording
	// until they close — truncating those would corrupt the B/E pairing.
	MaxEvents int

	sites   int
	events  []event
	txns    map[int64]*txnState
	order   []int64 // txn ids in arrival order, for deterministic flush
	dropped uint64
	lastAt  float64
}

// NewCollector returns a collector for an engine with the given number of
// local sites (spans of unknown sites still render; the count only seeds
// the process-name metadata).
func NewCollector(sites int) *Collector {
	return &Collector{sites: sites, txns: make(map[int64]*txnState)}
}

// WantDetail implements obs.DetailObserver: the collector consumes the
// protocol-detail stream.
func (c *Collector) WantDetail() bool { return true }

// Dropped returns the number of events discarded after MaxEvents filled.
func (c *Collector) Dropped() uint64 { return c.dropped }

// Events returns the number of retained trace events.
func (c *Collector) Events() int { return len(c.events) }

func (c *Collector) limit() int {
	if c.MaxEvents > 0 {
		return c.MaxEvents
	}
	return DefaultMaxEvents
}

func (c *Collector) add(e event) {
	c.events = append(c.events, e)
}

func (c *Collector) begin(at float64, pid int, tid int64, name string, args ...kv) {
	c.add(event{name: name, cat: "txn", ph: 'B', ts: at, pid: pid, tid: tid, args: args})
}

func (c *Collector) end(at float64, pid int, tid int64, args ...kv) {
	c.add(event{ph: 'E', ts: at, pid: pid, tid: tid, args: args})
}

func (c *Collector) instant(at float64, pid int, tid int64, name string, args ...kv) {
	c.add(event{name: name, cat: "txn", ph: 'i', ts: at, pid: pid, tid: tid, args: args})
}

// OnEvent implements obs.Observer, folding the protocol-detail stream into
// span boundaries. Lifecycle (numeric) events are ignored.
func (c *Collector) OnEvent(ev obs.Event) {
	if ev.Kind != obs.TraceDetail {
		return
	}
	if ev.At > c.lastAt {
		c.lastAt = ev.At
	}
	t := c.txns[ev.Txn]
	if t == nil {
		if ev.Trace != trace.Arrive || len(c.events) >= c.limit() {
			// Mid-flight txn admitted before the collector attached, or a
			// new arrival past the retention cap.
			c.dropped++
			return
		}
		t = &txnState{home: ev.Site, attempt: 1}
		c.txns[ev.Txn] = t
		c.order = append(c.order, ev.Txn)
	}
	switch ev.Trace {
	case trace.Arrive:
		t.txnOpen = true
		c.begin(ev.At, sitePid(ev.Site), ev.Txn, "txn", kv{"class", classOf(ev.Note)})
	case trace.RouteLocal:
		c.instant(ev.At, sitePid(ev.Site), ev.Txn, "route: local")
		t.execPid = sitePid(ev.Site)
		c.begin(ev.At, t.execPid, ev.Txn, "attempt", kv{"n", "1"})
	case trace.RouteShip:
		c.instant(ev.At, sitePid(ev.Site), ev.Txn, "route: ship")
		t.shipOpen = true
		c.begin(ev.At, centralPid, ev.Txn, "ship+setup")
	case trace.LockRequest:
		c.ensureExec(t, ev)
	case trace.LockWaitBegin:
		c.ensureExec(t, ev)
		t.lockWaitOpen = true
		t.lockWaitPid = sitePid(ev.Site)
		t.lockWaitElem = ev.Elem
		c.begin(ev.At, t.lockWaitPid, ev.Txn, "lock wait", kv{"elem", itoa(ev.Elem)})
	case trace.LockGranted:
		if t.lockWaitOpen && t.lockWaitElem == ev.Elem {
			t.lockWaitOpen = false
			c.end(ev.At, t.lockWaitPid, ev.Txn)
		}
	case trace.DeadlockAbort:
		c.closeLockWait(t, ev.At, ev.Txn)
		c.instant(ev.At, sitePid(ev.Site), ev.Txn, "abort", kv{"cause", "deadlock"}, kv{"elem", itoa(ev.Elem)})
		c.closeExec(t, ev, "deadlock")
		t.attempt++
	case trace.CrossAbortLocal:
		c.instant(ev.At, sitePid(ev.Site), ev.Txn, "abort", kv{"cause", "seized"})
		c.closeExec(t, ev, "seized")
		t.attempt++
	case trace.CrossAbortCentral:
		if t.authOpen {
			t.authOpen = false
			c.end(ev.At, centralPid, ev.Txn, kv{"outcome", "abort"})
		}
		c.instant(ev.At, centralPid, ev.Txn, "abort", kv{"cause", ev.Note})
		c.closeExec(t, ev, ev.Note)
		t.attempt++
	case trace.Rerun:
		t.execPid = sitePid(ev.Site)
		c.begin(ev.At, t.execPid, ev.Txn, "attempt", kv{"n", itoa(uint32(t.attempt))})
	case trace.AuthRequest:
		c.closeShip(t, ev.At, ev.Txn)
		if !t.authOpen {
			t.authOpen = true
			c.begin(ev.At, centralPid, ev.Txn, "auth")
		}
		c.instant(ev.At, centralPid, ev.Txn, "auth request", kv{"site", strconv.Itoa(ev.Site)})
	case trace.AuthSeized:
		c.instant(ev.At, sitePid(ev.Site), ev.Txn, "auth seized", kv{"elem", itoa(ev.Elem)}, kv{"victims", ev.Note})
	case trace.AuthACK:
		c.instant(ev.At, sitePid(ev.Site), ev.Txn, "auth ack")
	case trace.AuthNACK:
		c.instant(ev.At, sitePid(ev.Site), ev.Txn, "auth nack", kv{"why", ev.Note})
	case trace.CommitLocal:
		c.closeExec(t, ev, "")
		c.instant(ev.At, sitePid(ev.Site), ev.Txn, "commit", kv{"where", "local"})
		c.closeTxn(t, ev.At, ev.Txn, "")
		delete(c.txns, ev.Txn)
	case trace.CommitCentral:
		if t.authOpen {
			t.authOpen = false
			c.end(ev.At, centralPid, ev.Txn, kv{"outcome", "commit"})
		}
		c.closeExec(t, ev, "")
		c.instant(ev.At, centralPid, ev.Txn, "commit", kv{"where", "central"})
		// The completion reply is now in flight toward the origin.
		t.replyOpen = true
		c.begin(ev.At, sitePid(t.home), ev.Txn, "reply")
	case trace.ReplyDelivered:
		if t.replyOpen {
			t.replyOpen = false
			c.end(ev.At, sitePid(ev.Site), ev.Txn)
		}
		c.closeTxn(t, ev.At, ev.Txn, "")
		delete(c.txns, ev.Txn)
	case trace.UpdatePropagated:
		c.instant(ev.At, sitePid(ev.Site), ev.Txn, "updates propagated", kv{"batch", ev.Note})
	}
}

// ensureExec opens the current attempt's span if none is open — the first
// central event closes the ship+setup span, and an attempt restarted after
// a deadlock abort has no Rerun marker, so the span starts lazily at the
// attempt's first protocol event.
func (c *Collector) ensureExec(t *txnState, ev obs.Event) {
	if ev.Site < 0 {
		c.closeShip(t, ev.At, ev.Txn)
	}
	if t.execPid == 0 {
		t.execPid = sitePid(ev.Site)
		c.begin(ev.At, t.execPid, ev.Txn, "attempt", kv{"n", itoa(uint32(t.attempt))})
	}
}

// closeShip ends the transit+setup span once central execution shows signs
// of life.
func (c *Collector) closeShip(t *txnState, at float64, txn int64) {
	if t.shipOpen {
		t.shipOpen = false
		c.end(at, centralPid, txn)
	}
}

func (c *Collector) closeLockWait(t *txnState, at float64, txn int64) {
	if t.lockWaitOpen {
		t.lockWaitOpen = false
		c.end(at, t.lockWaitPid, txn)
	}
}

// closeExec ends the open attempt span, tagging the abort cause if any.
func (c *Collector) closeExec(t *txnState, ev obs.Event, abort string) {
	if ev.Site < 0 {
		// A central txn can abort at its commit point without ever issuing
		// a lock request on a re-run; the transit span may still be open.
		c.closeShip(t, ev.At, ev.Txn)
	}
	if t.execPid == 0 {
		return
	}
	if abort != "" {
		c.end(ev.At, t.execPid, ev.Txn, kv{"abort", abort})
	} else {
		c.end(ev.At, t.execPid, ev.Txn)
	}
	t.execPid = 0
}

func (c *Collector) closeTxn(t *txnState, at float64, txn int64, note string) {
	if !t.txnOpen {
		return
	}
	t.txnOpen = false
	if note != "" {
		c.end(at, sitePid(t.home), txn, kv{"note", note})
		return
	}
	c.end(at, sitePid(t.home), txn)
}

// classOf extracts the class letter from an Arrive note ("class A"/"class B").
func classOf(note string) string {
	if n := len(note); n > 0 {
		return note[n-1:]
	}
	return "?"
}

func itoa(v uint32) string { return strconv.FormatUint(uint64(v), 10) }

// flush closes every span still open at the end of the run (transactions in
// flight at the horizon), in arrival order so the export is deterministic.
func (c *Collector) flush() {
	for _, id := range c.order {
		t, ok := c.txns[id]
		if !ok {
			continue
		}
		c.closeLockWait(t, c.lastAt, id)
		if t.authOpen {
			t.authOpen = false
			c.end(c.lastAt, centralPid, id, kv{"outcome", "truncated"})
		}
		if t.execPid != 0 {
			c.end(c.lastAt, t.execPid, id, kv{"truncated", "true"})
			t.execPid = 0
		}
		if t.shipOpen {
			t.shipOpen = false
			c.end(c.lastAt, centralPid, id, kv{"truncated", "true"})
		}
		if t.replyOpen {
			t.replyOpen = false
			c.end(c.lastAt, sitePid(t.home), id, kv{"truncated", "true"})
		}
		c.closeTxn(t, c.lastAt, id, "truncated")
		delete(c.txns, id)
	}
	c.order = c.order[:0]
}

// WriteTo renders the collected spans as Chrome trace-event JSON. It closes
// any spans still open (end-of-run truncation), so call it once, after the
// run. The output is byte-deterministic for a deterministic run: field
// order, float formatting, and event order are all fixed.
func (c *Collector) WriteTo(w io.Writer) (int64, error) {
	c.flush()
	var buf bytes.Buffer
	buf.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	// Process-name metadata: the central complex lane, then every site lane
	// that appears in the trace (plus the configured sites).
	seen := map[int]bool{centralPid: true}
	for i := 0; i < c.sites; i++ {
		seen[sitePid(i)] = true
	}
	for _, e := range c.events {
		seen[e.pid] = true
	}
	pids := make([]int, 0, len(seen))
	for pid := range seen {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	first := true
	for _, pid := range pids {
		name := "central complex"
		if pid != centralPid {
			name = "site " + strconv.Itoa(pid-2)
		}
		writeMeta(&buf, &first, pid, name)
	}
	for i := range c.events {
		writeEvent(&buf, &first, &c.events[i])
	}
	buf.WriteString("\n]}\n")
	return buf.WriteTo(w)
}

// WriteFile exports the trace to a file.
func (c *Collector) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := c.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeMeta(buf *bytes.Buffer, first *bool, pid int, name string) {
	sep(buf, first)
	fmt.Fprintf(buf, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%s}}", pid, strconv.Quote(name))
}

func writeEvent(buf *bytes.Buffer, first *bool, e *event) {
	sep(buf, first)
	buf.WriteByte('{')
	if e.ph != 'E' {
		buf.WriteString("\"name\":")
		buf.WriteString(strconv.Quote(e.name))
		buf.WriteString(",\"cat\":\"")
		buf.WriteString(e.cat)
		buf.WriteString("\",")
	}
	buf.WriteString("\"ph\":\"")
	buf.WriteByte(e.ph)
	buf.WriteString("\",\"ts\":")
	// Simulated seconds to trace microseconds, at fixed (nanosecond)
	// precision so the export is byte-stable.
	buf.WriteString(strconv.FormatFloat(e.ts*1e6, 'f', 3, 64))
	buf.WriteString(",\"pid\":")
	buf.WriteString(strconv.Itoa(e.pid))
	buf.WriteString(",\"tid\":")
	buf.WriteString(strconv.FormatInt(e.tid, 10))
	if e.ph == 'i' {
		buf.WriteString(",\"s\":\"t\"")
	}
	if len(e.args) > 0 {
		buf.WriteString(",\"args\":{")
		for i, a := range e.args {
			if i > 0 {
				buf.WriteByte(',')
			}
			buf.WriteString(strconv.Quote(a.k))
			buf.WriteByte(':')
			buf.WriteString(strconv.Quote(a.v))
		}
		buf.WriteByte('}')
	}
	buf.WriteByte('}')
}

func sep(buf *bytes.Buffer, first *bool) {
	if *first {
		*first = false
		return
	}
	buf.WriteString(",\n")
}
