package spans

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
)

// traceDoc mirrors the Chrome trace-event JSON for validation.
type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	S    string            `json:"s"`
	Args map[string]string `json:"args"`
}

func collect(t *testing.T, cfg hybrid.Config, strat routing.Strategy) (*Collector, traceDoc) {
	t.Helper()
	e, err := hybrid.New(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(cfg.Sites)
	e.Subscribe(c)
	e.Run()
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	return c, doc
}

func testConfig() hybrid.Config {
	cfg := hybrid.DefaultConfig()
	cfg.Sites = 4
	cfg.Seed = 11
	cfg.Warmup = 0
	cfg.Duration = 40
	cfg.ArrivalRatePerSite = 1.5
	return cfg
}

// TestExportIsWellFormed checks the structural invariants of the Chrome
// trace format: every duration span balances (B/E per pid+tid, LIFO, no
// negative depth), instants carry a scope, and timestamps never go
// backwards within a thread.
func TestExportIsWellFormed(t *testing.T) {
	_, doc := collect(t, testConfig(), routing.NewStatic(0.5, 7))
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}

	type lane struct {
		pid int
		tid int64
	}
	depth := make(map[lane]int)
	lastTS := make(map[lane]float64)
	var spans, instants int
	for i, ev := range doc.TraceEvents {
		l := lane{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" {
				t.Fatalf("event %d: unexpected metadata %q", i, ev.Name)
			}
			continue
		case "B":
			if ev.Name == "" {
				t.Fatalf("event %d: B without a name", i)
			}
			depth[l]++
			spans++
		case "E":
			depth[l]--
			if depth[l] < 0 {
				t.Fatalf("event %d: E without matching B on pid %d tid %d", i, ev.Pid, ev.Tid)
			}
		case "i":
			if ev.S == "" {
				t.Fatalf("event %d: instant without scope", i)
			}
			instants++
		default:
			t.Fatalf("event %d: unknown phase %q", i, ev.Ph)
		}
		if ev.TS < lastTS[l] {
			t.Fatalf("event %d: time went backwards on pid %d tid %d: %v -> %v",
				i, ev.Pid, ev.Tid, lastTS[l], ev.TS)
		}
		lastTS[l] = ev.TS
	}
	for l, d := range depth {
		if d != 0 {
			t.Errorf("pid %d tid %d: %d spans left open", l.pid, l.tid, d)
		}
	}
	if spans == 0 || instants == 0 {
		t.Fatalf("export has %d spans and %d instants; want both nonzero", spans, instants)
	}
}

// TestExportCoversLifecycle checks the span vocabulary: a contended run
// must produce txn/attempt/auth/reply spans, route and commit instants, and
// a central-complex process lane.
func TestExportCoversLifecycle(t *testing.T) {
	_, doc := collect(t, testConfig(), routing.NewStatic(0.5, 7))
	names := make(map[string]int)
	pids := make(map[int]bool)
	for _, ev := range doc.TraceEvents {
		names[ev.Name]++
		if ev.Ph != "M" {
			pids[ev.Pid] = true
		}
	}
	for _, want := range []string{
		"txn", "attempt", "ship+setup", "auth", "reply",
		"route: local", "route: ship", "commit", "auth ack",
	} {
		if names[want] == 0 {
			t.Errorf("no %q events in export", want)
		}
	}
	if !pids[centralPid] {
		t.Error("no events in the central-complex lane")
	}
}

// TestCollectorIsDeterministic re-runs the same seed and demands identical
// bytes — the property the golden test then pins across code versions.
func TestCollectorIsDeterministic(t *testing.T) {
	render := func() []byte {
		e, err := hybrid.New(testConfig(), routing.NewStatic(0.5, 7))
		if err != nil {
			t.Fatal(err)
		}
		c := NewCollector(testConfig().Sites)
		e.Subscribe(c)
		e.Run()
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("same seed produced different exports")
	}
}

// TestMaxEventsSoftCap: past the cap, new transactions are dropped and
// counted, but the export still balances.
func TestMaxEventsSoftCap(t *testing.T) {
	cfg := testConfig()
	e, err := hybrid.New(cfg, routing.NewStatic(0.5, 7))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(cfg.Sites)
	c.MaxEvents = 200
	e.Subscribe(c)
	e.Run()
	if c.Dropped() == 0 {
		t.Fatal("expected drops with a 200-event cap")
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("capped export is not valid JSON: %v", err)
	}
	depth := make(map[int64]int)
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B":
			depth[int64(ev.Pid)<<32|ev.Tid&0xffffffff]++
		case "E":
			depth[int64(ev.Pid)<<32|ev.Tid&0xffffffff]--
		}
	}
	for lane, d := range depth {
		if d != 0 {
			t.Errorf("lane %x: %d spans left open in capped export", lane, d)
		}
	}
}

// TestWriteFile round-trips through the filesystem.
func TestWriteFile(t *testing.T) {
	cfg := testConfig()
	cfg.Duration = 10
	e, err := hybrid.New(cfg, routing.QueueLength{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(cfg.Sites)
	e.Subscribe(c)
	e.Run()
	path := t.TempDir() + "/trace.json"
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("file holds no trace events")
	}
}
