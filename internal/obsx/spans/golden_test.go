package spans

import (
	"bytes"
	"flag"
	"os"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
)

var update = flag.Bool("update", false, "rewrite the golden trace export")

const goldenPath = "testdata/trace_seed11.json"

// TestGoldenExport pins the span export byte-for-byte: a fixed seed must
// produce an identical Chrome trace-event file on every machine and across
// code versions. The export is hand-serialized with a fixed field order and
// fixed float precision precisely so this test can exist; an intentional
// format or lifecycle change regenerates the pin with -update.
func TestGoldenExport(t *testing.T) {
	cfg := hybrid.DefaultConfig()
	cfg.Sites = 3
	cfg.Seed = 11
	cfg.Warmup = 0
	cfg.Duration = 12
	cfg.ArrivalRatePerSite = 1.5
	e, err := hybrid.New(cfg, routing.NewStatic(0.5, 7))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector(cfg.Sites)
	e.Subscribe(c)
	e.Run()
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, buf.Len())
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("span export diverged from %s (%d bytes, want %d).\n"+
			"If the span lifecycle or export format changed intentionally, re-run with -update.",
			goldenPath, buf.Len(), len(want))
	}
}
