package spans

// Clock-offset estimation for multi-process traces. Each cluster process
// records spans against its own event-loop clock (seconds since process
// start), so the same instant appears at different timestamps in different
// files. At the Hello handshake the site samples its clock (t0), central
// answers with its own reading (tRemote), and the site samples again on
// receipt (t1) — the classic NTP exchange. Assuming the two legs of the
// round trip are symmetric, the remote reading was taken at local time
// (t0+t1)/2, so the offset below converts local readings into the remote
// (central) timebase: t_central ≈ t_local + offset. The error is bounded by
// half the round-trip asymmetry, far below the millisecond-scale spans the
// cluster records.

// EstimateClockOffset returns the estimated difference between a remote
// clock and the local clock (remote − local), from one request/response
// exchange: t0 is the local send time, t1 the local receive time, and
// tRemote the remote clock sampled between the two.
func EstimateClockOffset(t0, t1, tRemote float64) float64 {
	return tRemote - (t0+t1)/2
}
