package spans

// Recorder is the live cluster's counterpart to Collector: where the
// Collector folds the simulator's observer stream into spans after the
// fact, a Recorder is fed span boundaries directly by a running node
// (site or central), from whichever goroutine holds the event at the time.
// Each process writes its own trace file stamped with the clock offset
// estimated at the Hello handshake; MergeFiles then shifts every file into
// the central timebase and fuses them, so one shipped transaction's
// admit→ship→auth→reply lifecycle reads as a single span tree crossing
// process lanes in Perfetto.

import (
	"bytes"
	"io"
	"os"
	"strconv"
	"sync"
)

// DefaultRecorderMaxEvents bounds a live recorder's buffer; at the cap new
// events are dropped and counted rather than growing without bound.
const DefaultRecorderMaxEvents = 1 << 18

// KV is one span argument, rendered into the trace event's args object.
type KV struct{ K, V string }

// CentralPid is the merged trace's process id for the central complex;
// SitePid maps a site index to its lane. These mirror the simulator
// Collector's lane assignment so merged live traces and simulator exports
// read the same way.
const CentralPid = centralPid

// SitePid returns the trace process id of site index i.
func SitePid(i int) int { return sitePid(i) }

// Recorder accumulates trace events from a live node. Methods are
// mutex-guarded and safe from any goroutine; timestamps are the node's
// event-loop clock in seconds.
type Recorder struct {
	mu          sync.Mutex
	procName    string
	pid         int
	max         int
	clockOffset float64 // central − local, seconds; 0 for central itself
	events      []event
	dropped     uint64
}

// NewRecorder returns a recorder for one process lane. maxEvents <= 0
// selects DefaultRecorderMaxEvents.
func NewRecorder(procName string, pid, maxEvents int) *Recorder {
	if maxEvents <= 0 {
		maxEvents = DefaultRecorderMaxEvents
	}
	return &Recorder{procName: procName, pid: pid, max: maxEvents}
}

// SetClockOffset records the NTP-style offset estimate (central clock −
// local clock, seconds) stamped into the trace file for MergeFiles.
// Re-estimated on every reconnect handshake; the latest estimate wins.
func (r *Recorder) SetClockOffset(sec float64) {
	r.mu.Lock()
	r.clockOffset = sec
	r.mu.Unlock()
}

// ClockOffset returns the current offset estimate.
func (r *Recorder) ClockOffset() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clockOffset
}

// Dropped returns the number of events discarded after the buffer filled.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns the number of retained events.
func (r *Recorder) Events() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

func (r *Recorder) add(e event) {
	r.mu.Lock()
	if len(r.events) >= r.max {
		r.dropped++
	} else {
		r.events = append(r.events, e)
	}
	r.mu.Unlock()
}

func argsOf(kvs []KV) []kv {
	if len(kvs) == 0 {
		return nil
	}
	out := make([]kv, len(kvs))
	for i, a := range kvs {
		out[i] = kv{k: a.K, v: a.V}
	}
	return out
}

// Begin opens a span named name on transaction tid at local time at.
func (r *Recorder) Begin(at float64, tid int64, name string, args ...KV) {
	r.add(event{name: name, cat: "txn", ph: 'B', ts: at, pid: r.pid, tid: tid, args: argsOf(args)})
}

// End closes the innermost open span of transaction tid at local time at.
func (r *Recorder) End(at float64, tid int64, args ...KV) {
	r.add(event{ph: 'E', ts: at, pid: r.pid, tid: tid, args: argsOf(args)})
}

// Instant records a point event on transaction tid at local time at.
func (r *Recorder) Instant(at float64, tid int64, name string, args ...KV) {
	r.add(event{name: name, cat: "txn", ph: 'i', ts: at, pid: r.pid, tid: tid, args: argsOf(args)})
}

// WriteTo renders the recorded events as Chrome trace-event JSON with the
// process lane's metadata and the clock offset in otherData (consumed by
// MergeFiles). Timestamps stay in the local timebase — merging applies the
// shift, so a single process's file remains directly loadable too.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	events := append([]event(nil), r.events...)
	procName, pid, offset := r.procName, r.pid, r.clockOffset
	r.mu.Unlock()

	var buf bytes.Buffer
	buf.WriteString(`{"displayTimeUnit":"ms","otherData":{"process":`)
	buf.WriteString(strconv.Quote(procName))
	buf.WriteString(`,"pid":"` + strconv.Itoa(pid) + `"`)
	buf.WriteString(`,"clockOffsetSeconds":"` + strconv.FormatFloat(offset, 'g', -1, 64) + `"`)
	buf.WriteString("},\"traceEvents\":[\n")
	first := true
	writeMeta(&buf, &first, pid, procName)
	for i := range events {
		writeEvent(&buf, &first, &events[i])
	}
	buf.WriteString("\n]}\n")
	return buf.WriteTo(w)
}

// WriteFile exports the recorded trace to a file.
func (r *Recorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := r.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
