// Package logx is the cluster's small leveled logger: component-prefixed
// lines with a process-wide level, replacing the ad-hoc log.Printf calls of
// the live nodes. Three levels are enough for an emulation engine — Debug
// for per-message protocol noise, Info for lifecycle milestones (listening,
// reconnects, shutdown counters), Error for malformed frames and send
// failures. The `-v`/`-q` flags of hybridd and hybridload map onto the
// level; countable error conditions additionally bump a metrics counter at
// the call site, so they are measurable, not just greppable.
package logx

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

const (
	// LevelDebug logs everything, including per-message protocol events.
	LevelDebug Level = iota
	// LevelInfo is the default: lifecycle milestones and errors.
	LevelInfo
	// LevelError logs only errors (-q).
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int32(l))
	}
}

var (
	level atomic.Int32 // process-wide threshold, default LevelInfo

	outMu sync.Mutex
	out   io.Writer = os.Stderr
)

func init() { level.Store(int32(LevelInfo)) }

// SetLevel sets the process-wide log threshold.
func SetLevel(l Level) { level.Store(int32(l)) }

// GetLevel returns the process-wide log threshold.
func GetLevel() Level { return Level(level.Load()) }

// SetOutput redirects log output (default os.Stderr). For tests.
func SetOutput(w io.Writer) {
	outMu.Lock()
	out = w
	outMu.Unlock()
}

// RegisterFlags binds -v (debug) and -q (errors only) on fs and returns an
// apply function to call after parsing; -q wins when both are set.
func RegisterFlags(fs *flag.FlagSet) (apply func()) {
	verbose := fs.Bool("v", false, "verbose: log per-message protocol events")
	quiet := fs.Bool("q", false, "quiet: log only errors")
	return func() {
		switch {
		case *quiet:
			SetLevel(LevelError)
		case *verbose:
			SetLevel(LevelDebug)
		default:
			SetLevel(LevelInfo)
		}
	}
}

// Logger stamps lines with a fixed component prefix ("central", "site 3",
// "load"). The zero value logs with no prefix; copies are fine.
type Logger struct {
	component string
}

// New returns a logger for the named component.
func New(component string) Logger { return Logger{component: component} }

// Component returns the logger's prefix.
func (l Logger) Component() string { return l.component }

func (l Logger) log(lv Level, format string, args ...any) {
	if lv < GetLevel() {
		return
	}
	ts := time.Now().UTC().Format("15:04:05.000")
	msg := fmt.Sprintf(format, args...)
	outMu.Lock()
	defer outMu.Unlock()
	if l.component != "" {
		fmt.Fprintf(out, "%s %-5s [%s] %s\n", ts, lv, l.component, msg)
		return
	}
	fmt.Fprintf(out, "%s %-5s %s\n", ts, lv, msg)
}

// Debugf logs at debug level (per-message protocol noise).
func (l Logger) Debugf(format string, args ...any) { l.log(LevelDebug, format, args...) }

// Infof logs at info level (lifecycle milestones).
func (l Logger) Infof(format string, args ...any) { l.log(LevelInfo, format, args...) }

// Errorf logs at error level (malformed frames, send failures).
func (l Logger) Errorf(format string, args ...any) { l.log(LevelError, format, args...) }
