package logx

import (
	"bytes"
	"flag"
	"strings"
	"sync"
	"testing"
)

// withCapture redirects output to a buffer for the test, restoring stderr
// after. Tests sharing the package-level sink must not run in parallel.
func withCapture(t *testing.T, fn func(buf *bytes.Buffer)) {
	t.Helper()
	var buf bytes.Buffer
	SetOutput(&buf)
	prev := GetLevel()
	t.Cleanup(func() {
		SetOutput(nil2stderr())
		SetLevel(prev)
	})
	fn(&buf)
}

func nil2stderr() *bytes.Buffer { return &bytes.Buffer{} } // discard after tests

func TestLevelFiltering(t *testing.T) {
	withCapture(t, func(buf *bytes.Buffer) {
		l := New("site 2")
		SetLevel(LevelInfo)
		l.Debugf("dropped %d", 1)
		l.Infof("kept %d", 2)
		l.Errorf("kept %d", 3)
		out := buf.String()
		if strings.Contains(out, "dropped") {
			t.Errorf("debug line logged at info level:\n%s", out)
		}
		if !strings.Contains(out, "INFO  [site 2] kept 2") || !strings.Contains(out, "ERROR [site 2] kept 3") {
			t.Errorf("info/error lines missing or unprefixed:\n%s", out)
		}

		buf.Reset()
		SetLevel(LevelError)
		l.Infof("quiet")
		if buf.Len() != 0 {
			t.Errorf("info line logged at error level: %q", buf.String())
		}

		buf.Reset()
		SetLevel(LevelDebug)
		l.Debugf("loud")
		if !strings.Contains(buf.String(), "DEBUG [site 2] loud") {
			t.Errorf("debug line missing at debug level: %q", buf.String())
		}
	})
}

func TestRegisterFlags(t *testing.T) {
	withCapture(t, func(*bytes.Buffer) {
		for _, tc := range []struct {
			args []string
			want Level
		}{
			{nil, LevelInfo},
			{[]string{"-v"}, LevelDebug},
			{[]string{"-q"}, LevelError},
			{[]string{"-v", "-q"}, LevelError}, // -q wins
		} {
			fs := flag.NewFlagSet("t", flag.ContinueOnError)
			apply := RegisterFlags(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			apply()
			if GetLevel() != tc.want {
				t.Errorf("args %v: level %v, want %v", tc.args, GetLevel(), tc.want)
			}
		}
	})
}

// TestConcurrentLogging holds under -race: the sink is mutex-guarded and
// the level atomic.
func TestConcurrentLogging(t *testing.T) {
	withCapture(t, func(buf *bytes.Buffer) {
		SetLevel(LevelInfo)
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				l := New("w")
				for j := 0; j < 100; j++ {
					l.Infof("%d-%d", i, j)
					if j%10 == 0 {
						SetLevel(LevelInfo)
					}
				}
			}(i)
		}
		wg.Wait()
		if n := strings.Count(buf.String(), "\n"); n != 400 {
			t.Errorf("expected 400 lines, got %d", n)
		}
	})
}
