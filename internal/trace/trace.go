// Package trace provides structured event tracing for the simulator: every
// protocol-level step of a transaction's life (arrival, routing, lock waits,
// aborts, authentication, commit) can be recorded with its simulated
// timestamp and replayed, filtered, or printed. Tracing is how one debugs a
// discrete-event protocol simulation; the engine emits events through a
// Tracer interface so the zero-cost default (Nop) stays out of hot paths.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Kind classifies protocol events.
type Kind uint8

// Event kinds, in rough lifecycle order.
const (
	Arrive Kind = iota + 1
	RouteLocal
	RouteShip
	SetupDone
	LockRequest
	LockGranted
	LockWaitBegin
	DeadlockAbort
	CommitLocal
	UpdatePropagated
	UpdateApplied
	UpdateAcked
	AuthRequest
	AuthSeized
	AuthNACK
	AuthACK
	CommitCentral
	CrossAbortLocal
	CrossAbortCentral
	Rerun
	ReplyDelivered
)

var kindNames = map[Kind]string{
	Arrive:            "arrive",
	RouteLocal:        "route-local",
	RouteShip:         "route-ship",
	SetupDone:         "setup-done",
	LockRequest:       "lock-request",
	LockGranted:       "lock-granted",
	LockWaitBegin:     "lock-wait",
	DeadlockAbort:     "deadlock-abort",
	CommitLocal:       "commit-local",
	UpdatePropagated:  "update-propagated",
	UpdateApplied:     "update-applied",
	UpdateAcked:       "update-acked",
	AuthRequest:       "auth-request",
	AuthSeized:        "auth-seized",
	AuthNACK:          "auth-nack",
	AuthACK:           "auth-ack",
	CommitCentral:     "commit-central",
	CrossAbortLocal:   "cross-abort-local",
	CrossAbortCentral: "cross-abort-central",
	Rerun:             "rerun",
	ReplyDelivered:    "reply-delivered",
}

// String returns the event kind's name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded protocol step.
type Event struct {
	At   float64 // simulated time
	Kind Kind
	Txn  int64  // transaction id, 0 when not transaction-scoped
	Site int    // site index; -1 for the central site
	Elem uint32 // lock element, when relevant
	Note string // free-form detail
}

// String renders the event on one line.
func (e Event) String() string {
	site := "central"
	if e.Site >= 0 {
		site = fmt.Sprintf("site %d", e.Site)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%12.6f  %-19s %-8s", e.At, e.Kind, site)
	if e.Txn != 0 {
		fmt.Fprintf(&b, " txn %-6d", e.Txn)
	}
	if e.Elem != 0 || e.Kind == LockRequest || e.Kind == LockGranted ||
		e.Kind == AuthSeized {
		fmt.Fprintf(&b, " elem %-6d", e.Elem)
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " %s", e.Note)
	}
	return b.String()
}

// Tracer receives events from the engine.
type Tracer interface {
	// Record consumes one event. Implementations must not retain the
	// event beyond the call unless they copy it (Event is a value type, so
	// plain assignment copies).
	Record(Event)
}

// Nop discards every event. It is the engine default.
type Nop struct{}

// Record implements Tracer.
func (Nop) Record(Event) {}

// Ring keeps the most recent Capacity events in a ring buffer, which keeps
// tracing affordable on arbitrarily long runs.
type Ring struct {
	buf   []Event
	next  int
	count uint64
	// filter, when non-nil, drops events for which it returns false.
	filter func(Event) bool
}

// NewRing returns a ring tracer holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: non-positive capacity %d", capacity))
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Filter installs a predicate; events failing it are not recorded. A nil
// predicate records everything.
func (r *Ring) Filter(keep func(Event) bool) { r.filter = keep }

// FilterTxn keeps only events of the given transaction.
func (r *Ring) FilterTxn(txn int64) {
	r.Filter(func(e Event) bool { return e.Txn == txn })
}

// FilterElem keeps only events touching the given element.
func (r *Ring) FilterElem(elem uint32) {
	r.Filter(func(e Event) bool { return e.Elem == elem })
}

// Record implements Tracer.
func (r *Ring) Record(e Event) {
	if r.filter != nil && !r.filter(e) {
		return
	}
	r.count++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// Recorded returns the total number of events recorded (including ones that
// have since been overwritten).
func (r *Ring) Recorded() uint64 { return r.count }

// Events returns the retained events in record order (a copy).
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Dump writes the retained events, one per line.
func (r *Ring) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// Counter tallies events by kind without retaining them.
type Counter struct {
	counts map[Kind]uint64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[Kind]uint64)}
}

// Record implements Tracer.
func (c *Counter) Record(e Event) { c.counts[e.Kind]++ }

// Count returns the tally for one kind.
func (c *Counter) Count(k Kind) uint64 { return c.counts[k] }

// Total returns the tally across all kinds.
func (c *Counter) Total() uint64 {
	var total uint64
	for _, n := range c.counts {
		total += n
	}
	return total
}

// Multi fans events out to several tracers.
type Multi []Tracer

// Record implements Tracer.
func (m Multi) Record(e Event) {
	for _, t := range m {
		t.Record(e)
	}
}
