package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindStrings(t *testing.T) {
	for k := Arrive; k <= ReplyDelivered; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(200).String(), "Kind(") {
		t.Error("unknown kind not flagged")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 1.5, Kind: LockGranted, Txn: 42, Site: 3, Elem: 7}
	s := e.String()
	for _, want := range []string{"lock-granted", "site 3", "txn 42", "elem 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
	central := Event{At: 2, Kind: CommitCentral, Txn: 1, Site: -1}
	if !strings.Contains(central.String(), "central") {
		t.Errorf("central event string %q", central.String())
	}
}

func TestNopDiscards(t *testing.T) {
	var n Nop
	n.Record(Event{Kind: Arrive}) // must not panic; nothing to assert
}

func TestRingRetainsMostRecent(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Record(Event{Txn: int64(i)})
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d events, want 3", len(events))
	}
	for i, want := range []int64{3, 4, 5} {
		if events[i].Txn != want {
			t.Fatalf("events = %v, want txns 3,4,5", events)
		}
	}
	if r.Recorded() != 5 {
		t.Errorf("Recorded = %d, want 5", r.Recorded())
	}
}

func TestRingUnderCapacity(t *testing.T) {
	r := NewRing(10)
	r.Record(Event{Txn: 1})
	r.Record(Event{Txn: 2})
	events := r.Events()
	if len(events) != 2 || events[0].Txn != 1 || events[1].Txn != 2 {
		t.Fatalf("events = %v", events)
	}
}

func TestRingFilterTxn(t *testing.T) {
	r := NewRing(10)
	r.FilterTxn(7)
	r.Record(Event{Txn: 7, Kind: Arrive})
	r.Record(Event{Txn: 8, Kind: Arrive})
	r.Record(Event{Txn: 7, Kind: CommitLocal})
	if got := len(r.Events()); got != 2 {
		t.Fatalf("filtered events = %d, want 2", got)
	}
}

func TestRingFilterElem(t *testing.T) {
	r := NewRing(10)
	r.FilterElem(100)
	r.Record(Event{Elem: 100})
	r.Record(Event{Elem: 200})
	if got := len(r.Events()); got != 1 {
		t.Fatalf("filtered events = %d, want 1", got)
	}
}

func TestRingDump(t *testing.T) {
	r := NewRing(4)
	r.Record(Event{At: 1, Kind: Arrive, Txn: 9, Site: 0})
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "arrive") {
		t.Errorf("dump output %q", sb.String())
	}
}

func TestRingInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewRing(0)
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Record(Event{Kind: Arrive})
	c.Record(Event{Kind: Arrive})
	c.Record(Event{Kind: CommitLocal})
	if c.Count(Arrive) != 2 || c.Count(CommitLocal) != 1 || c.Count(Rerun) != 0 {
		t.Errorf("counts wrong: %d %d %d", c.Count(Arrive), c.Count(CommitLocal), c.Count(Rerun))
	}
	if c.Total() != 3 {
		t.Errorf("total = %d", c.Total())
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	m := Multi{a, b}
	m.Record(Event{Kind: Arrive})
	if a.Total() != 1 || b.Total() != 1 {
		t.Errorf("fan-out totals: %d %d", a.Total(), b.Total())
	}
}

// TestQuickRingOrder verifies the ring always returns the most recent
// min(n, capacity) events in record order.
func TestQuickRingOrder(t *testing.T) {
	f := func(n uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		r := NewRing(capacity)
		total := int(n % 64)
		for i := 0; i < total; i++ {
			r.Record(Event{Txn: int64(i)})
		}
		events := r.Events()
		want := total
		if want > capacity {
			want = capacity
		}
		if len(events) != want {
			return false
		}
		for i, e := range events {
			if e.Txn != int64(total-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
