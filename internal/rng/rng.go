// Package rng provides a deterministic, seedable pseudo-random number
// generator and the sampling distributions used by the simulator.
//
// The generator is xoshiro256** (Blackman & Vigna). We implement it ourselves
// rather than using math/rand so that simulation results are bit-stable
// across Go releases: the experiment outputs recorded in EXPERIMENTS.md can
// be reproduced exactly from a seed.
package rng

import "math"

// Source is a xoshiro256** pseudo-random number generator. The zero value is
// not usable; construct one with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, which guarantees the
// internal state is never all-zero (an absorbing state for xoshiro).
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// Split returns a new Source whose stream is independent of the receiver's.
// It is used to give each stochastic component of the simulation (arrivals,
// data references, lock modes, ...) its own stream so that changing how one
// component consumes randomness does not perturb the others.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xa3ec647659359acd)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17

	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)

	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits -> uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method (unbiased). It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// Exp returns an exponentially distributed sample with the given mean.
// It panics if mean is not positive.
func (r *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp called with non-positive mean")
	}
	// 1 - Float64() is in (0, 1], so Log never sees zero.
	return -mean * math.Log(1-r.Float64())
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Uniform returns a uniform sample in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm fills a permutation of [0, n) using Fisher–Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// SampleWithoutReplacement returns k distinct uniform values in [0, n).
// It panics if k > n or k < 0. For k much smaller than n it uses rejection
// from a set; otherwise a partial Fisher–Yates shuffle.
func (r *Source) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleWithoutReplacement requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	out := make([]int, k)
	var scratch []int
	r.SampleWithoutReplacementInto(n, out, &scratch)
	return out
}

// SampleWithoutReplacementInto is SampleWithoutReplacement with caller-owned
// storage: it fills out with len(out) distinct uniform values in [0, n),
// using *scratch (resized as needed) for the shuffle path. It draws exactly
// the same variate sequence as the allocating variant — the rejection path's
// duplicate test consumes no randomness either way.
func (r *Source) SampleWithoutReplacementInto(n int, out []int, scratch *[]int) {
	k := len(out)
	if k < 0 || k > n {
		panic("rng: SampleWithoutReplacement requires 0 <= k <= n")
	}
	if k == 0 {
		return
	}
	if k*8 < n {
		filled := 0
		for filled < k {
			v := r.Intn(n)
			dup := false
			for _, prev := range out[:filled] {
				if prev == v {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			out[filled] = v
			filled++
		}
		return
	}
	p := *scratch
	if cap(p) < n {
		p = make([]int, n)
		*scratch = p
	} else {
		p = p[:n]
	}
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	copy(out, p[:k])
}
