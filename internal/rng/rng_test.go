package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d with equal seeds", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	var acc uint64
	for i := 0; i < 100; i++ {
		acc |= r.Uint64()
	}
	if acc == 0 {
		t.Fatal("seed 0 generator returned only zeros")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream collided %d times of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 10, 1000} {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const mean, n = 2.5, 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean) > 0.05 {
		t.Errorf("exponential mean = %v, want ~%v", got, mean)
	}
}

func TestExpPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Errorf("Bool(%v) rate = %v", p, got)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	r := New(29)
	check := func(n, k int) {
		s := r.SampleWithoutReplacement(n, k)
		if len(s) != k {
			t.Fatalf("sample(%d,%d) has length %d", n, k, len(s))
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("sample(%d,%d) = %v invalid", n, k, s)
			}
			seen[v] = true
		}
	}
	check(10, 10)  // full shuffle path
	check(1000, 5) // rejection path
	check(5, 0)
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sample(2,3) did not panic")
		}
	}()
	New(1).SampleWithoutReplacement(2, 3)
}

func TestQuickIntnInRange(t *testing.T) {
	r := New(31)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickExpNonNegative(t *testing.T) {
	r := New(37)
	f := func(m uint16) bool {
		mean := float64(m%100)/10 + 0.1
		return r.Exp(mean) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(1.0)
	}
}
