package altarch

import "testing"

func TestCompareArchitectures(t *testing.T) {
	cfg := testConfig()
	cfg.ArrivalRatePerSite = 0.5
	cmp, err := CompareArchitectures(cfg, DefaultLockTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.PLocal != cfg.PLocal {
		t.Errorf("PLocal = %v, want %v", cmp.PLocal, cfg.PLocal)
	}
	if cmp.Centralized.Completed == 0 || cmp.Centralized.MeanRT <= 0 {
		t.Errorf("centralized: completed=%d meanRT=%v",
			cmp.Centralized.Completed, cmp.Centralized.MeanRT)
	}
	if cmp.Distributed.Completed == 0 || cmp.Distributed.MeanRT <= 0 {
		t.Errorf("distributed: completed=%d meanRT=%v",
			cmp.Distributed.Completed, cmp.Distributed.MeanRT)
	}
	if cmp.Hybrid.Completed == 0 || cmp.Hybrid.MeanRT <= 0 {
		t.Errorf("hybrid: completed=%d meanRT=%v",
			cmp.Hybrid.Completed, cmp.Hybrid.MeanRT)
	}
	if got := cmp.Hybrid.Strategy; got != "min-average/nis" {
		t.Errorf("hybrid strategy = %q, want the paper's best (min-average/nis)", got)
	}
}

func TestCompareArchitecturesInvalidConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Sites = 0
	if _, err := CompareArchitectures(cfg, DefaultLockTimeout); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestLocalitySweep(t *testing.T) {
	cfg := testConfig()
	cfg.ArrivalRatePerSite = 0.5
	cfg.Warmup = 10
	cfg.Duration = 60
	pLocals := []float64{0.75, 1.0}
	out, err := LocalitySweep(cfg, pLocals, DefaultLockTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(pLocals) {
		t.Fatalf("got %d points, want %d", len(out), len(pLocals))
	}
	for i, cmp := range out {
		if cmp.PLocal != pLocals[i] {
			t.Errorf("point %d: PLocal = %v, want %v", i, cmp.PLocal, pLocals[i])
		}
		if cmp.Centralized.Completed == 0 || cmp.Distributed.Completed == 0 ||
			cmp.Hybrid.Completed == 0 {
			t.Errorf("point %d: empty result %+v", i, cmp)
		}
	}
	// The [DIAS87] motivation: at full locality the distributed architecture
	// makes no remote calls and must not be slower than at 75% locality.
	if out[1].Distributed.MeanRT > out[0].Distributed.MeanRT {
		t.Errorf("distributed RT rose with locality: %v (p=1.0) > %v (p=0.75)",
			out[1].Distributed.MeanRT, out[0].Distributed.MeanRT)
	}
}

func TestLocalitySweepDefaultPoints(t *testing.T) {
	cfg := testConfig()
	cfg.ArrivalRatePerSite = 0.2
	cfg.Warmup = 5
	cfg.Duration = 30
	out, err := LocalitySweep(cfg, nil, DefaultLockTimeout)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.75, 0.9, 1.0}
	if len(out) != len(want) {
		t.Fatalf("got %d default points, want %d", len(out), len(want))
	}
	for i, cmp := range out {
		if cmp.PLocal != want[i] {
			t.Errorf("default point %d: PLocal = %v, want %v", i, cmp.PLocal, want[i])
		}
	}
}

func TestLocalitySweepPropagatesError(t *testing.T) {
	cfg := testConfig()
	cfg.Sites = 0
	if _, err := LocalitySweep(cfg, []float64{0.9}, DefaultLockTimeout); err == nil {
		t.Fatal("invalid config accepted")
	}
}
