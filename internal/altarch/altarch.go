// Package altarch implements the two architectures the paper's introduction
// positions the hybrid against (§1):
//
//   - the fully centralized system, in which every transaction's input is
//     shipped to the central complex, processed there under ordinary
//     locking, and the output shipped back — no use of geographic locality;
//   - the fully distributed system [GRAY86, LARS85], in which transactions
//     run at their home site and every reference to data mastered elsewhere
//     becomes a remote function call; cross-site commits use a two-phase
//     protocol and cross-site deadlocks are broken by lock-wait timeouts.
//
// The paper cites [DIAS87] for the motivating claim: the distributed system
// beats the centralized one only when remote calls per transaction are
// significantly below one, and the hybrid was designed to get the best of
// both. CompareArchitectures regenerates that comparison against the hybrid
// simulator.
package altarch

import (
	"fmt"

	"hybriddb/internal/cpu"
	"hybriddb/internal/exec"
	"hybriddb/internal/lock"
	"hybriddb/internal/rng"
	"hybriddb/internal/sim"
	"hybriddb/internal/stats"
	"hybriddb/internal/workload"

	"hybriddb/internal/hybrid"
)

// Result summarises a run of one alternative architecture.
type Result struct {
	Architecture string
	Window       float64

	MeanRT     float64
	P95RT      float64
	Throughput float64

	Generated uint64
	Completed uint64
	Aborts    uint64 // deadlock and timeout aborts

	UtilCentral   float64 // centralized architecture only
	UtilLocalMean float64 // distributed architecture only

	// RemoteCallsPerTxn is the measured average number of remote function
	// calls per transaction (distributed architecture only) — the quantity
	// [DIAS87] says governs the centralized/distributed comparison.
	RemoteCallsPerTxn float64
}

// ---- Fully centralized architecture.

// RunCentralized simulates the fully centralized system under the shared
// configuration: every transaction (class A and B alike) is shipped to the
// central site, runs there under ordinary two-phase locking with deadlock
// aborts, and the reply is shipped back.
func RunCentralized(cfg hybrid.Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	var (
		s       = sim.New()
		root    = rng.New(cfg.Seed)
		gen     = workload.NewGenerator(cfg.WorkloadConfig(), root.Split().Uint64())
		server  = cpu.NewServer(exec.Sim(s), cfg.CentralMIPS)
		locks   = lock.NewManager()
		horizon = cfg.Warmup + cfg.Duration

		rt        stats.Welford
		hist      = stats.NewHistogram(0, 60, 600)
		measuring bool
		busy0     float64
		generated uint64
		completed uint64
		aborts    uint64
	)

	type txn struct {
		spec      *workload.Txn
		arrivedAt float64
		attempt   int
	}

	var runCall func(t *txn, i int)
	commit := func(t *txn) {
		for _, elem := range t.spec.Elements {
			locks.Release(lock.ID(t.spec.ID), elem)
		}
		// Reply to the origin terminal.
		s.Schedule(cfg.CommDelay, func() {
			completed++
			if measuring {
				r := s.Now() - t.arrivedAt
				rt.Add(r)
				hist.Add(r)
			}
		})
	}
	abort := func(t *txn) {
		if measuring {
			aborts++
		}
		locks.ReleaseAll(lock.ID(t.spec.ID))
		t.attempt++
		s.Schedule(cfg.RestartDelay, func() { runCall(t, 0) })
	}
	runCall = func(t *txn, i int) {
		if i >= cfg.CallsPerTxn {
			commit(t)
			return
		}
		server.Submit(cfg.InstrPerCall, func() {
			elem, mode := t.spec.Elements[i], t.spec.Modes[i]
			proceed := func() {
				if t.attempt == 1 {
					s.Schedule(cfg.IOTimePerCall, func() { runCall(t, i+1) })
					return
				}
				runCall(t, i+1)
			}
			if _, held := locks.Holds(lock.ID(t.spec.ID), elem); held {
				proceed()
				return
			}
			switch locks.Acquire(lock.ID(t.spec.ID), elem, mode, proceed) {
			case lock.Granted:
				proceed()
			case lock.Queued:
				// proceed runs on grant.
			case lock.Deadlock:
				abort(t)
			}
		})
	}
	start := func(t *txn) {
		server.Submit(cfg.InstrOverhead, func() {
			s.Schedule(cfg.SetupIOTime, func() { runCall(t, 0) })
		})
	}

	arrivalSeeds := root.Split()
	for site := 0; site < cfg.Sites; site++ {
		site := site
		arr := workload.NewArrivals(cfg.SiteRate(site), arrivalSeeds.Uint64())
		var schedule func()
		schedule = func() {
			gap := arr.Next()
			if s.Now()+gap > horizon {
				return
			}
			s.Schedule(gap, func() {
				spec := gen.Next(site)
				generated++
				t := &txn{spec: spec, arrivedAt: s.Now(), attempt: 1}
				// Input message shipped to the central site.
				s.Schedule(cfg.CommDelay, func() { start(t) })
				schedule()
			})
		}
		schedule()
	}
	s.Schedule(cfg.Warmup, func() {
		measuring = true
		busy0 = server.BusyTime()
	})
	s.RunUntil(horizon)

	window := cfg.Duration
	res := Result{
		Architecture: "centralized",
		Window:       window,
		MeanRT:       rt.Mean(),
		P95RT:        hist.Quantile(0.95),
		Throughput:   float64(rt.Count()) / window,
		Generated:    generated,
		Completed:    completed,
		Aborts:       aborts,
		UtilCentral:  (server.BusyTime() - busy0) / window,
	}
	return res, nil
}

// ---- Fully distributed architecture.

// DefaultLockTimeout is the lock-wait timeout used to break cross-site
// deadlocks in the distributed architecture — the standard mechanism of the
// era's distributed databases (global wait-for graphs being impractical over
// long-haul links).
const DefaultLockTimeout = 5.0

// RunDistributed simulates the fully distributed system: transactions run at
// their home site; every reference to an element mastered elsewhere becomes
// a remote function call (request shipped to the master site, executed and
// locked there, reply shipped back); commits involving remote sites pay a
// two-phase commit round; lock waits are bounded by lockTimeout, after which
// the transaction aborts and restarts (this also breaks cross-site
// deadlocks, which no single site's wait-for graph can see).
func RunDistributed(cfg hybrid.Config, lockTimeout float64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if lockTimeout <= 0 {
		return Result{}, fmt.Errorf("altarch: lock timeout %v must be positive", lockTimeout)
	}
	var (
		s       = sim.New()
		root    = rng.New(cfg.Seed)
		wl      = cfg.WorkloadConfig()
		gen     = workload.NewGenerator(wl, root.Split().Uint64())
		horizon = cfg.Warmup + cfg.Duration

		rt          stats.Welford
		hist        = stats.NewHistogram(0, 60, 600)
		measuring   bool
		generated   uint64
		completed   uint64
		aborts      uint64
		remoteCalls uint64
		txnsDone    uint64
	)

	type site struct {
		cpu   *cpu.Server
		locks *lock.Manager
		busy0 float64
	}
	sites := make([]*site, cfg.Sites)
	for i := range sites {
		sites[i] = &site{cpu: cpu.NewServer(exec.Sim(s), cfg.LocalMIPS), locks: lock.NewManager()}
	}

	type txn struct {
		spec      *workload.Txn
		arrivedAt float64
		attempt   int
		epoch     int // invalidates stale timeout events after abort/grant
		// lockedAt[site] lists elements this attempt holds per site.
		lockedAt map[int][]uint32
	}

	var runCall func(t *txn, i int)

	releaseEverywhere := func(t *txn) {
		for siteIdx, elems := range t.lockedAt {
			st := sites[siteIdx]
			home := t.spec.HomeSite
			if siteIdx == home {
				st.locks.ReleaseAll(lock.ID(t.spec.ID))
				continue
			}
			elems := elems
			// Remote release travels as a message.
			s.Schedule(cfg.CommDelay, func() {
				for _, elem := range elems {
					st.locks.Release(lock.ID(t.spec.ID), elem)
				}
			})
		}
		t.lockedAt = make(map[int][]uint32)
	}

	abort := func(t *txn) {
		if measuring {
			aborts++
		}
		// Cancel any queued request at the site we were waiting on.
		for _, st := range sites {
			st.locks.CancelRequest(lock.ID(t.spec.ID))
		}
		releaseEverywhere(t)
		t.attempt++
		t.epoch++
		s.Schedule(cfg.RestartDelay, func() { runCall(t, 0) })
	}

	commit := func(t *txn) {
		remote := 0
		for siteIdx := range t.lockedAt {
			if siteIdx != t.spec.HomeSite {
				remote++
			}
		}
		finish := func() {
			releaseEverywhere(t)
			completed++
			txnsDone++
			if measuring {
				r := s.Now() - t.arrivedAt
				rt.Add(r)
				hist.Add(r)
			}
		}
		if remote == 0 {
			// Purely local: commit without any communication [DATE81].
			finish()
			return
		}
		// Two-phase commit: prepare round trip to the participants, then
		// commit messages (releases ride on them via releaseEverywhere).
		s.Schedule(2*cfg.CommDelay, finish)
	}

	// acquire obtains elem at siteIdx for t, then calls next. Lock waits are
	// bounded by lockTimeout. Deadlocks local to one site abort immediately.
	acquire := func(t *txn, siteIdx int, elem uint32, mode lock.Mode, next func()) {
		st := sites[siteIdx]
		if _, held := st.locks.Holds(lock.ID(t.spec.ID), elem); held {
			next()
			return
		}
		epoch := t.epoch
		granted := func() {
			if t.epoch != epoch {
				return // aborted while waiting; grant is stale
			}
			t.lockedAt[siteIdx] = append(t.lockedAt[siteIdx], elem)
			next()
		}
		switch st.locks.Acquire(lock.ID(t.spec.ID), elem, mode, func() { granted() }) {
		case lock.Granted:
			granted()
		case lock.Queued:
			s.Schedule(lockTimeout, func() {
				if t.epoch != epoch {
					return
				}
				if _, waiting := st.locks.Waiting(lock.ID(t.spec.ID)); waiting {
					abort(t)
				}
			})
		case lock.Deadlock:
			abort(t)
		}
	}

	runCall = func(t *txn, i int) {
		if i >= cfg.CallsPerTxn {
			commit(t)
			return
		}
		home := t.spec.HomeSite
		elem, mode := t.spec.Elements[i], t.spec.Modes[i]
		master := wl.PartitionOf(elem)
		epoch := t.epoch
		proceed := func() {
			if t.epoch != epoch {
				return
			}
			if t.attempt == 1 {
				s.Schedule(cfg.IOTimePerCall, func() { runCall(t, i+1) })
				return
			}
			runCall(t, i+1)
		}
		if master == home {
			sites[home].cpu.Submit(cfg.InstrPerCall, func() {
				acquire(t, home, elem, mode, proceed)
			})
			return
		}
		// Remote function call: request to the master site, execute the
		// call there (CPU + lock + I/O at the data), reply home.
		if measuring {
			remoteCalls++
		}
		s.Schedule(cfg.CommDelay, func() {
			sites[master].cpu.Submit(cfg.InstrPerCall, func() {
				acquire(t, master, elem, mode, func() {
					done := func() {
						s.Schedule(cfg.CommDelay, proceed)
					}
					if t.attempt == 1 {
						s.Schedule(cfg.IOTimePerCall, done)
						return
					}
					done()
				})
			})
		})
	}

	start := func(t *txn) {
		home := t.spec.HomeSite
		sites[home].cpu.Submit(cfg.InstrOverhead, func() {
			s.Schedule(cfg.SetupIOTime, func() { runCall(t, 0) })
		})
	}

	arrivalSeeds := root.Split()
	for siteIdx := 0; siteIdx < cfg.Sites; siteIdx++ {
		siteIdx := siteIdx
		arr := workload.NewArrivals(cfg.SiteRate(siteIdx), arrivalSeeds.Uint64())
		var schedule func()
		schedule = func() {
			gap := arr.Next()
			if s.Now()+gap > horizon {
				return
			}
			s.Schedule(gap, func() {
				spec := gen.Next(siteIdx)
				generated++
				t := &txn{
					spec: spec, arrivedAt: s.Now(), attempt: 1,
					lockedAt: make(map[int][]uint32),
				}
				start(t)
				schedule()
			})
		}
		schedule()
	}
	s.Schedule(cfg.Warmup, func() {
		measuring = true
		for _, st := range sites {
			st.busy0 = st.cpu.BusyTime()
		}
	})
	s.RunUntil(horizon)

	window := cfg.Duration
	var utilSum float64
	for _, st := range sites {
		utilSum += (st.cpu.BusyTime() - st.busy0) / window
	}
	var perTxn float64
	if rt.Count() > 0 {
		perTxn = float64(remoteCalls) / float64(rt.Count())
	}
	return Result{
		Architecture:      "distributed",
		Window:            window,
		MeanRT:            rt.Mean(),
		P95RT:             hist.Quantile(0.95),
		Throughput:        float64(rt.Count()) / window,
		Generated:         generated,
		Completed:         completed,
		Aborts:            aborts,
		UtilLocalMean:     utilSum / float64(len(sites)),
		RemoteCallsPerTxn: perTxn,
	}, nil
}
