package altarch

import (
	"math"
	"testing"

	"hybriddb/internal/hybrid"
)

func testConfig() hybrid.Config {
	cfg := hybrid.DefaultConfig()
	cfg.Warmup = 30
	cfg.Duration = 120
	cfg.ArrivalRatePerSite = 1.0
	return cfg
}

func TestCentralizedLowLoadResponseTime(t *testing.T) {
	cfg := testConfig()
	cfg.ArrivalRatePerSite = 0.2
	r, err := RunCentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Fatal("no completions")
	}
	// Unloaded: 2 comm hops (0.4) + 0.01 CPU + 0.035 + 10*(0.002+0.025).
	want := 0.4 + 0.01 + 0.035 + 10*(0.002+0.025)
	if math.Abs(r.MeanRT-want) > 0.05 {
		t.Errorf("centralized unloaded RT = %v, want ~%v", r.MeanRT, want)
	}
}

func TestCentralizedThroughputTracksLoad(t *testing.T) {
	cfg := testConfig()
	cfg.ArrivalRatePerSite = 2.0 // 20 tps: well under the 15 MIPS capacity
	r, err := RunCentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Throughput-20) > 2 {
		t.Errorf("throughput = %v, want ~20", r.Throughput)
	}
	if r.UtilCentral < 0.4 || r.UtilCentral > 0.8 {
		t.Errorf("central utilization = %v, want ~0.6", r.UtilCentral)
	}
}

func TestCentralizedSaturates(t *testing.T) {
	cfg := testConfig()
	// Capacity ≈ 1/(0.45/15) = 33 tps; offer 40.
	cfg.ArrivalRatePerSite = 4.0
	r, err := RunCentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.UtilCentral < 0.95 {
		t.Errorf("utilization = %v, want saturation", r.UtilCentral)
	}
	if r.MeanRT < 1.5 {
		t.Errorf("saturated RT = %v, want inflated", r.MeanRT)
	}
}

func TestCentralizedRejectsInvalidConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Sites = 0
	if _, err := RunCentralized(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestDistributedAllLocalIsFast(t *testing.T) {
	cfg := testConfig()
	cfg.PLocal = 1.0 // no class B: zero remote calls
	cfg.ArrivalRatePerSite = 0.1
	r, err := RunDistributed(cfg, DefaultLockTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if r.RemoteCallsPerTxn != 0 {
		t.Errorf("remote calls = %v with full locality", r.RemoteCallsPerTxn)
	}
	// Purely local: ~0.735 s unloaded, no 2PC, no communication.
	if math.Abs(r.MeanRT-0.735) > 0.05 {
		t.Errorf("distributed all-local RT = %v, want ~0.735", r.MeanRT)
	}
}

func TestDistributedRemoteCallsMeasured(t *testing.T) {
	cfg := testConfig()
	cfg.PLocal = 0.75
	cfg.ArrivalRatePerSite = 0.5
	r, err := RunDistributed(cfg, DefaultLockTimeout)
	if err != nil {
		t.Fatal(err)
	}
	// Class B (25%) references ~9/10 of its 10 elements remotely:
	// ~2.25 remote calls per transaction on average.
	if r.RemoteCallsPerTxn < 1.5 || r.RemoteCallsPerTxn > 3.0 {
		t.Errorf("remote calls per txn = %v, want ~2.25", r.RemoteCallsPerTxn)
	}
	if r.Completed == 0 {
		t.Fatal("no completions")
	}
}

func TestDistributedRemoteCallsRaiseResponseTime(t *testing.T) {
	cfg := testConfig()
	cfg.ArrivalRatePerSite = 0.5
	cfg.PLocal = 1.0
	local, err := RunDistributed(cfg, DefaultLockTimeout)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PLocal = 0.5
	remote, err := RunDistributed(cfg, DefaultLockTimeout)
	if err != nil {
		t.Fatal(err)
	}
	// Each remote call costs at least a 0.4 s round trip; with ~4.5 of
	// them per transaction on average the gap must be large.
	if remote.MeanRT < local.MeanRT+1.0 {
		t.Errorf("remote-heavy RT %v not far above all-local %v", remote.MeanRT, local.MeanRT)
	}
}

func TestDistributedTimeoutBreaksCrossSiteDeadlock(t *testing.T) {
	// Heavy write contention over a tiny lockspace with many cross-site
	// references: cross-site deadlocks are inevitable and only the timeout
	// can break them. The run must keep completing transactions.
	cfg := testConfig()
	cfg.Warmup, cfg.Duration = 20, 120
	cfg.Lockspace = 500
	cfg.PWrite = 0.7
	cfg.PLocal = 0.3
	cfg.ArrivalRatePerSite = 0.4
	r, err := RunDistributed(cfg, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 {
		t.Fatal("no completions under cross-site contention")
	}
	if r.Aborts == 0 {
		t.Error("no timeout/deadlock aborts despite heavy contention")
	}
}

func TestDistributedRejectsBadTimeout(t *testing.T) {
	if _, err := RunDistributed(testConfig(), 0); err == nil {
		t.Fatal("zero timeout accepted")
	}
}

func TestCompareArchitecturesHighLocality(t *testing.T) {
	// At perfect locality the distributed system avoids all communication
	// and must beat the centralized one ([DIAS87]'s favourable regime).
	// With the default 0.2 s delay the 15x faster central CPU nearly
	// cancels the round trip, so the clear distributed win needs the
	// larger delay — precisely the trade-off §1 describes.
	cfg := testConfig()
	cfg.PLocal = 1.0
	cfg.CommDelay = 0.5
	cfg.ArrivalRatePerSite = 0.5
	cmp, err := CompareArchitectures(cfg, DefaultLockTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Distributed.MeanRT >= cmp.Centralized.MeanRT {
		t.Errorf("at full locality distributed (%v) should beat centralized (%v)",
			cmp.Distributed.MeanRT, cmp.Centralized.MeanRT)
	}
}

func TestCompareArchitecturesLowLocality(t *testing.T) {
	// With half the transactions touching global data, remote calls per
	// transaction far exceed one and the centralized system must win
	// ([DIAS87]'s unfavourable regime).
	cfg := testConfig()
	cfg.PLocal = 0.5
	cfg.ArrivalRatePerSite = 0.5
	cmp, err := CompareArchitectures(cfg, DefaultLockTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Centralized.MeanRT >= cmp.Distributed.MeanRT {
		t.Errorf("at low locality centralized (%v) should beat distributed (%v)",
			cmp.Centralized.MeanRT, cmp.Distributed.MeanRT)
	}
}

func TestHybridTracksBetterArchitecture(t *testing.T) {
	// §1's design goal: the hybrid provides the advantages of both. At a
	// moderate load it should not be far worse than the better of the two
	// pure architectures at either locality extreme.
	for _, p := range []float64{0.5, 1.0} {
		cfg := testConfig()
		cfg.PLocal = p
		cfg.ArrivalRatePerSite = 1.0
		cmp, err := CompareArchitectures(cfg, DefaultLockTimeout)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Min(cmp.Centralized.MeanRT, cmp.Distributed.MeanRT)
		if cmp.Hybrid.MeanRT > best*1.5 {
			t.Errorf("pLocal=%v: hybrid %v far above best pure architecture %v",
				p, cmp.Hybrid.MeanRT, best)
		}
	}
}

func TestLocalitySweepDefaults(t *testing.T) {
	cfg := testConfig()
	cfg.Warmup, cfg.Duration = 15, 60
	cfg.ArrivalRatePerSite = 0.5
	points, err := LocalitySweep(cfg, nil, DefaultLockTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4 defaults", len(points))
	}
	// Distributed response time should fall as locality rises.
	for i := 1; i < len(points); i++ {
		if points[i].Distributed.MeanRT > points[i-1].Distributed.MeanRT+0.2 {
			t.Errorf("distributed RT rose with locality: %v -> %v at pLocal %v",
				points[i-1].Distributed.MeanRT, points[i].Distributed.MeanRT, points[i].PLocal)
		}
	}
}
