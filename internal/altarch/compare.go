package altarch

import (
	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
)

// Comparison holds one operating point of the three-architecture comparison
// of §1: centralized vs distributed vs hybrid (under its best dynamic
// load-sharing strategy).
type Comparison struct {
	PLocal      float64
	Centralized Result
	Distributed Result
	Hybrid      hybrid.Result
}

// CompareArchitectures runs all three architectures on the shared
// configuration. The hybrid system uses the paper's best strategy
// (min-average/nis).
func CompareArchitectures(cfg hybrid.Config, lockTimeout float64) (Comparison, error) {
	cmp := Comparison{PLocal: cfg.PLocal}

	cent, err := RunCentralized(cfg)
	if err != nil {
		return cmp, err
	}
	cmp.Centralized = cent

	dist, err := RunDistributed(cfg, lockTimeout)
	if err != nil {
		return cmp, err
	}
	cmp.Distributed = dist

	engine, err := hybrid.New(cfg, routing.MinAverage{
		Params:    cfg.ModelParams(),
		Estimator: routing.FromInSystem,
	})
	if err != nil {
		return cmp, err
	}
	cmp.Hybrid = engine.Run()
	return cmp, nil
}

// LocalitySweep runs the comparison across a sweep of PLocal values,
// exposing the [DIAS87] crossover: as locality falls (remote calls per
// transaction rise), the distributed architecture's response time blows up
// while the centralized one stays flat — and the hybrid should track the
// better of the two at every point.
func LocalitySweep(cfg hybrid.Config, pLocals []float64, lockTimeout float64) ([]Comparison, error) {
	if len(pLocals) == 0 {
		pLocals = []float64{0.5, 0.75, 0.9, 1.0}
	}
	out := make([]Comparison, 0, len(pLocals))
	for _, p := range pLocals {
		point := cfg
		point.PLocal = p
		cmp, err := CompareArchitectures(point, lockTimeout)
		if err != nil {
			return nil, err
		}
		out = append(out, cmp)
	}
	return out, nil
}
