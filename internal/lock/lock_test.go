package lock

import (
	"testing"
	"testing/quick"
)

func TestModeString(t *testing.T) {
	if Share.String() != "S" || Exclusive.String() != "X" {
		t.Fatalf("mode strings: %v %v", Share, Exclusive)
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode has empty string")
	}
}

func TestCompatibility(t *testing.T) {
	tests := []struct {
		a, b Mode
		want bool
	}{
		{Share, Share, true},
		{Share, Exclusive, false},
		{Exclusive, Share, false},
		{Exclusive, Exclusive, false},
	}
	for _, tt := range tests {
		if got := Compatible(tt.a, tt.b); got != tt.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestShareShareCoexist(t *testing.T) {
	m := NewManager()
	if out := m.Acquire(1, 100, Share, nil); out != Granted {
		t.Fatalf("first share: %v", out)
	}
	if out := m.Acquire(2, 100, Share, nil); out != Granted {
		t.Fatalf("second share: %v", out)
	}
	if m.LocksHeld() != 2 {
		t.Fatalf("LocksHeld = %d", m.LocksHeld())
	}
	m.CheckInvariants()
}

func TestExclusiveBlocks(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 7, Exclusive, nil)
	granted := false
	if out := m.Acquire(2, 7, Share, func() { granted = true }); out != Queued {
		t.Fatalf("conflicting request: %v", out)
	}
	if granted {
		t.Fatal("granted before release")
	}
	m.Release(1, 7)
	if !granted {
		t.Fatal("not granted after release")
	}
	m.CheckInvariants()
}

func TestFIFOGrantOrder(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 5, Exclusive, nil)
	var order []int
	for i := 2; i <= 5; i++ {
		i := i
		m.Acquire(ID(i), 5, Exclusive, func() { order = append(order, i) })
	}
	m.Release(1, 5)
	// Only the head waiter (2) is granted; others still conflict with it.
	if len(order) != 1 || order[0] != 2 {
		t.Fatalf("grant order after first release: %v", order)
	}
	m.Release(2, 5)
	m.Release(3, 5)
	m.Release(4, 5)
	want := []int{2, 3, 4, 5}
	if len(order) != len(want) {
		t.Fatalf("grants %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grants %v, want %v", order, want)
		}
	}
	m.CheckInvariants()
}

func TestNewcomerCannotOvertakeQueue(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 3, Share, nil)
	m.Acquire(2, 3, Exclusive, func() {}) // queued behind the share
	// Another share would be compatible with holder 1, but FIFO fairness
	// forbids jumping over the queued exclusive.
	if out := m.Acquire(3, 3, Share, func() {}); out != Queued {
		t.Fatalf("late share overtook queue: %v", out)
	}
	m.CheckInvariants()
}

func TestReacquireHeldLock(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 9, Exclusive, nil)
	if out := m.Acquire(1, 9, Share, nil); out != Granted {
		t.Fatalf("re-request weaker mode: %v", out)
	}
	if out := m.Acquire(1, 9, Exclusive, nil); out != Granted {
		t.Fatalf("re-request same mode: %v", out)
	}
	if m.LocksHeld() != 1 {
		t.Fatalf("LocksHeld = %d, want 1", m.LocksHeld())
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 4, Share, nil)
	if out := m.Acquire(1, 4, Exclusive, nil); out != Granted {
		t.Fatalf("sole-holder upgrade: %v", out)
	}
	if mode, ok := m.Holds(1, 4); !ok || mode != Exclusive {
		t.Fatalf("after upgrade holds %v %v", mode, ok)
	}
	m.CheckInvariants()
}

func TestUpgradeWaitsForOtherSharers(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 4, Share, nil)
	m.Acquire(2, 4, Share, nil)
	upgraded := false
	if out := m.Acquire(1, 4, Exclusive, func() { upgraded = true }); out != Queued {
		t.Fatalf("upgrade with co-sharer: %v", out)
	}
	m.Release(2, 4)
	if !upgraded {
		t.Fatal("upgrade not granted after sharer left")
	}
	if mode, _ := m.Holds(1, 4); mode != Exclusive {
		t.Fatalf("mode after upgrade = %v", mode)
	}
	if m.LocksHeld() != 1 {
		t.Fatalf("LocksHeld = %d", m.LocksHeld())
	}
	m.CheckInvariants()
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 10, Exclusive, nil)
	m.Acquire(2, 20, Exclusive, nil)
	if out := m.Acquire(1, 20, Exclusive, func() {}); out != Queued {
		t.Fatalf("txn1 wait: %v", out)
	}
	// txn2 -> 10 would close the cycle 2 -> 1 -> 2.
	if out := m.Acquire(2, 10, Exclusive, func() {}); out != Deadlock {
		t.Fatalf("cycle not detected: %v", out)
	}
	m.CheckInvariants()
}

func TestDeadlockThreeWay(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 1, Exclusive, nil)
	m.Acquire(2, 2, Exclusive, nil)
	m.Acquire(3, 3, Exclusive, nil)
	if m.Acquire(1, 2, Exclusive, func() {}) != Queued {
		t.Fatal("1->2 should queue")
	}
	if m.Acquire(2, 3, Exclusive, func() {}) != Queued {
		t.Fatal("2->3 should queue")
	}
	if out := m.Acquire(3, 1, Exclusive, func() {}); out != Deadlock {
		t.Fatalf("3-cycle not detected: %v", out)
	}
}

func TestDeadlockViaQueueAhead(t *testing.T) {
	// txn2 holds A. txn1 waits for A. txn3 queues behind txn1 on A.
	// If txn1 then waits on something txn3 holds... but txn1 is already
	// blocked. Instead: txn3 holds B; txn1 queues on A behind nothing,
	// txn3 queues on A behind txn1, then txn2 (holder of A) requests B:
	// 2 -> 3 (holder of B) -> queued on A behind 1 -> ... -> holder 2? No.
	// Simplest queue-ahead cycle: 2 holds A; 1 queues on A; 3 holds B and
	// queues on A behind 1; then 1 is blocked, so have 2 release and
	// instead: 2 requests B: 2 -> holder(B)=3 -> waits A -> holder(A)=2.
	m := NewManager()
	m.Acquire(2, 'A', Exclusive, nil)
	m.Acquire(3, 'B', Exclusive, nil)
	if m.Acquire(3, 'A', Exclusive, func() {}) != Queued {
		t.Fatal("3 should queue on A")
	}
	if out := m.Acquire(2, 'B', Exclusive, func() {}); out != Deadlock {
		t.Fatalf("holder cycle not detected: %v", out)
	}
}

func TestNoFalseDeadlock(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 10, Exclusive, nil)
	if out := m.Acquire(2, 20, Exclusive, func() {}); out != Granted {
		t.Fatalf("independent lock: %v", out)
	}
	if out := m.Acquire(3, 10, Exclusive, func() {}); out != Queued {
		t.Fatalf("simple wait flagged: %v", out)
	}
}

func TestReleaseAllOnAbort(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 1, Exclusive, nil)
	m.Acquire(1, 2, Exclusive, nil)
	m.Acquire(1, 3, Share, nil)
	granted := false
	m.Acquire(2, 1, Exclusive, func() { granted = true })
	m.ReleaseAll(1)
	if m.LocksHeldBy(1) != 0 {
		t.Fatalf("txn1 still holds %d locks", m.LocksHeldBy(1))
	}
	if !granted {
		t.Fatal("waiter not granted after ReleaseAll")
	}
	m.CheckInvariants()
}

func TestReleaseAllCancelsPendingRequest(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 5, Exclusive, nil)
	m.Acquire(2, 5, Exclusive, func() { t.Fatal("cancelled request granted") })
	m.ReleaseAll(2)
	if _, waiting := m.Waiting(2); waiting {
		t.Fatal("still waiting after ReleaseAll")
	}
	m.Release(1, 5)
	m.CheckInvariants()
}

func TestCancelUnblocksLaterWaiters(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 5, Share, nil)
	m.Acquire(2, 5, Exclusive, func() { t.Fatal("cancelled grant ran") })
	granted := false
	m.Acquire(3, 5, Share, func() { granted = true })
	if !m.CancelRequest(2) {
		t.Fatal("CancelRequest returned false")
	}
	if !granted {
		t.Fatal("share behind cancelled exclusive not granted")
	}
	m.CheckInvariants()
}

func TestCancelNothingPending(t *testing.T) {
	m := NewManager()
	if m.CancelRequest(1) {
		t.Fatal("CancelRequest with no request returned true")
	}
}

func TestSeizeEvictsIncompatible(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 8, Exclusive, nil)
	victims, ok := m.Seize(100, 8, Exclusive)
	if !ok {
		t.Fatal("seize refused without coherence pending")
	}
	if len(victims) != 1 || victims[0] != 1 {
		t.Fatalf("victims = %v, want [1]", victims)
	}
	if _, held := m.Holds(1, 8); held {
		t.Fatal("victim still holds lock")
	}
	if mode, held := m.Holds(100, 8); !held || mode != Exclusive {
		t.Fatal("seizer does not hold lock")
	}
	m.CheckInvariants()
}

func TestSeizeCompatibleCoexists(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 8, Share, nil)
	victims, ok := m.Seize(100, 8, Share)
	if !ok || len(victims) != 0 {
		t.Fatalf("share seize: ok=%v victims=%v", ok, victims)
	}
	if _, held := m.Holds(1, 8); !held {
		t.Fatal("compatible local holder evicted")
	}
	m.CheckInvariants()
}

func TestSeizeRefusedWithPendingCoherence(t *testing.T) {
	m := NewManager()
	m.IncrCoherence(8)
	if _, ok := m.Seize(100, 8, Exclusive); ok {
		t.Fatal("seize succeeded despite in-flight update")
	}
	m.DecrCoherence(8)
	if _, ok := m.Seize(100, 8, Exclusive); !ok {
		t.Fatal("seize refused after ack")
	}
}

func TestCoherenceCount(t *testing.T) {
	m := NewManager()
	m.IncrCoherence(1)
	m.IncrCoherence(1)
	if m.Coherence(1) != 2 {
		t.Fatalf("coherence = %d", m.Coherence(1))
	}
	m.DecrCoherence(1)
	m.DecrCoherence(1)
	if m.Coherence(1) != 0 {
		t.Fatalf("coherence = %d", m.Coherence(1))
	}
}

func TestCoherenceUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("coherence underflow did not panic")
		}
	}()
	NewManager().DecrCoherence(3)
}

func TestDoubleRequestWhileBlockedPanics(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 5, Exclusive, nil)
	m.Acquire(2, 5, Exclusive, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("second request while blocked did not panic")
		}
	}()
	m.Acquire(2, 6, Exclusive, func() {})
}

func TestNilOnGrantForBlockingRequestPanics(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 5, Exclusive, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("nil onGrant did not panic")
		}
	}()
	m.Acquire(2, 5, Exclusive, nil)
}

func TestHoldersAndQueueLength(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 5, Share, nil)
	m.Acquire(2, 5, Share, nil)
	m.Acquire(3, 5, Exclusive, func() {})
	if len(m.Holders(5)) != 2 {
		t.Fatalf("holders = %v", m.Holders(5))
	}
	if m.QueueLength(5) != 1 {
		t.Fatalf("queue length = %d", m.QueueLength(5))
	}
	if m.QueueLength(99) != 0 || m.Holders(99) != nil {
		t.Fatal("untouched element not empty")
	}
}

func TestHeldByIsCopy(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 5, Share, nil)
	h := m.HeldBy(1)
	delete(h, 5)
	if _, held := m.Holds(1, 5); !held {
		t.Fatal("mutating HeldBy copy affected manager")
	}
}

// TestQuickNeverIncompatibleHolders drives the manager with a random
// operation sequence and checks after every step that no element has
// incompatible co-holders and all counters reconcile.
func TestQuickNeverIncompatibleHolders(t *testing.T) {
	f := func(ops []uint32) bool {
		m := NewManager()
		blocked := make(map[ID]bool)
		for _, op := range ops {
			id := ID(op % 7)
			elem := (op >> 3) % 5
			mode := Share
			if op&(1<<20) != 0 {
				mode = Exclusive
			}
			switch (op >> 24) % 4 {
			case 0, 1:
				if blocked[id] {
					continue
				}
				idc := id
				out := m.Acquire(id, elem, mode, func() { blocked[idc] = false })
				if out == Queued {
					blocked[id] = true
				}
			case 2:
				if blocked[id] {
					continue
				}
				m.Release(id, elem)
			case 3:
				m.ReleaseAll(id)
				blocked[id] = false
			}
			m.CheckInvariants()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSeizeInvariants interleaves seizures with local traffic.
func TestQuickSeizeInvariants(t *testing.T) {
	f := func(ops []uint32) bool {
		m := NewManager()
		blocked := make(map[ID]bool)
		for _, op := range ops {
			id := ID(op % 5)
			elem := (op >> 3) % 4
			switch (op >> 24) % 5 {
			case 0:
				if blocked[id] {
					continue
				}
				idc := id
				if m.Acquire(id, elem, Exclusive, func() { blocked[idc] = false }) == Queued {
					blocked[id] = true
				}
			case 1:
				victims, ok := m.Seize(ID(100+op%3), elem, Exclusive)
				if ok {
					for _, v := range victims {
						if v >= 100 {
							continue
						}
						// Victim aborts: cancel pending and drop the rest.
						m.ReleaseAll(v)
						blocked[v] = false
					}
				}
			case 2:
				m.IncrCoherence(elem)
			case 3:
				if m.Coherence(elem) > 0 {
					m.DecrCoherence(elem)
				}
			case 4:
				m.ReleaseAll(id)
				blocked[id] = false
			}
			m.CheckInvariants()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestReentrantGrantCallbackPreservesCoherence is a regression test for a
// bug where a grant callback that re-entered the manager — releasing the
// just-granted lock and raising the element's coherence count, as a
// transaction commit does — had its freshly created table entry destroyed
// by the outer Release's cleanup, silently zeroing the coherence count.
func TestReentrantGrantCallbackPreservesCoherence(t *testing.T) {
	m := NewManager()
	m.Acquire(1, 42, Exclusive, nil)
	m.Acquire(2, 42, Exclusive, func() {
		// Simulate txn 2 committing the instant it gets the lock:
		// release it and mark an in-flight asynchronous update.
		m.Release(2, 42)
		m.IncrCoherence(42)
	})
	m.Release(1, 42) // triggers the grant callback reentrantly
	if got := m.Coherence(42); got != 1 {
		t.Fatalf("coherence after reentrant commit = %d, want 1", got)
	}
	m.DecrCoherence(42)
	m.CheckInvariants()
}

// The manager must never leak map-iteration order into its outputs: callers
// release locks, mark victims, and schedule simulator events in the order
// these slices come back, and same-time events fire FIFO — any map-order
// dependence makes whole simulation runs irreproducible.
func TestHoldersSorted(t *testing.T) {
	m := NewManager()
	ids := []ID{9, 2, 7, 1, 5, 8, 3}
	for _, id := range ids {
		if got := m.Acquire(id, 42, Share, nil); got != Granted {
			t.Fatalf("acquire %d: %v", id, got)
		}
	}
	for trial := 0; trial < 10; trial++ {
		h := m.Holders(42)
		if len(h) != len(ids) {
			t.Fatalf("holders: got %d, want %d", len(h), len(ids))
		}
		for i := 1; i < len(h); i++ {
			if h[i-1] >= h[i] {
				t.Fatalf("holders not in ascending order: %v", h)
			}
		}
	}
}

func TestSeizeVictimsSorted(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		m := NewManager()
		for _, id := range []ID{6, 4, 9, 2, 8} {
			if got := m.Acquire(id, 7, Share, nil); got != Granted {
				t.Fatalf("acquire %d: %v", id, got)
			}
		}
		victims, ok := m.Seize(100, 7, Exclusive)
		if !ok {
			t.Fatal("seize refused with zero coherence")
		}
		want := []ID{2, 4, 6, 8, 9}
		if len(victims) != len(want) {
			t.Fatalf("victims: got %v, want %v", victims, want)
		}
		for i := range want {
			if victims[i] != want[i] {
				t.Fatalf("victims not sorted: got %v, want %v", victims, want)
			}
		}
	}
}
