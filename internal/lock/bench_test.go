package lock

import "testing"

// BenchmarkAcquireRelease measures the uncontended grant/release cycle —
// the lock manager's common case — over a rotating set of elements and
// transactions so the entry pool and held-set pool both cycle.
func BenchmarkAcquireRelease(b *testing.B) {
	m := NewManager()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := ID(i % 64)
		elem := uint32(i % 509)
		if m.Acquire(id, elem, Exclusive, nil) != Granted {
			b.Fatal("uncontended acquire not granted")
		}
		m.Release(id, elem)
	}
}

// BenchmarkTxnLifecycle measures a transaction-shaped pattern: acquire a
// handful of locks, then ReleaseAll, as the engine does at every commit and
// abort.
func BenchmarkTxnLifecycle(b *testing.B) {
	m := NewManager()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := ID(i % 32)
		base := uint32(i%97) * 8
		for k := uint32(0); k < 8; k++ {
			mode := Share
			if k%4 == 0 {
				mode = Exclusive
			}
			if m.Acquire(id, base+k, mode, nil) != Granted {
				b.Fatal("acquire not granted")
			}
		}
		m.ReleaseAll(id)
	}
}

// BenchmarkSeize measures the authentication-phase grab against a standing
// population of share holders.
func BenchmarkSeize(b *testing.B) {
	m := NewManager()
	const elem = 1
	holders := []ID{10, 20, 30, 40}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, id := range holders {
			if m.Acquire(id, elem, Share, nil) != Granted {
				b.Fatal("share acquire not granted")
			}
		}
		central := ID(1000 + i%16)
		victims, ok := m.Seize(central, elem, Exclusive)
		if !ok || len(victims) != len(holders) {
			b.Fatalf("seize: ok=%v victims=%d", ok, len(victims))
		}
		m.ReleaseAll(central)
	}
}

// BenchmarkContendedQueue measures the queue/grant path: a standing
// exclusive holder, a waiter that blocks, then release-and-grant.
func BenchmarkContendedQueue(b *testing.B) {
	m := NewManager()
	const elem = 7
	nop := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, c := ID(2*(i%100)), ID(2*(i%100)+1)
		if m.Acquire(a, elem, Exclusive, nil) != Granted {
			b.Fatal("holder not granted")
		}
		if m.Acquire(c, elem, Exclusive, nop) != Queued {
			b.Fatal("conflicting request not queued")
		}
		m.Release(a, elem) // grants c
		m.Release(c, elem)
	}
}
