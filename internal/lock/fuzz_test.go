package lock

import (
	"testing"
)

// FuzzLock drives random seize/acquire/release/coherence traffic through a
// Manager and verifies after every operation that no invariant is violated
// and no pooled entry is leaked. The harness honours the Manager's
// documented contracts (no second request while blocked, no coherence
// underflow, seize victims are aborted by the caller) the same way the
// engine does; everything else — operation order, element collisions, mode
// mixes, upgrade attempts — is the fuzzer's choice.
//
// Each byte is one operation on a small id/element domain, which keeps
// collisions (the interesting cases) frequent.
func FuzzLock(f *testing.F) {
	f.Add([]byte{})
	// A grant, a conflicting wait, a release that promotes the waiter.
	f.Add([]byte{0x00, 0x11, 0x40})
	// Share holders piling onto one element, then an exclusive seize.
	f.Add([]byte{0x02, 0x12, 0x22, 0x32, 0xb2})
	// Coherence up, seize refused, coherence down, seize succeeds.
	f.Add([]byte{0xc3, 0xa3, 0xd3, 0xa3})
	// Upgrade attempt under contention and a cancel.
	f.Add([]byte{0x04, 0x14, 0x84, 0x94, 0x74})

	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			ids   = 6
			elems = 8
		)
		m := NewManager()
		waiting := make(map[ID]bool)
		granted := func(id ID) func() { return func() { delete(waiting, id) } }
		abort := func(id ID) {
			// The engine's abort path: drop every lock and any pending
			// request the victim still has.
			m.ReleaseAll(id)
			delete(waiting, id)
		}

		for _, b := range data {
			id := ID(b % ids)
			elem := uint32((b >> 3) % elems)
			mode := Share
			if b&0x40 != 0 {
				mode = Exclusive
			}
			switch op := b >> 4; {
			case op < 0x6: // acquire (mode from bit 6)
				if waiting[id] {
					continue // contract: no second request while blocked
				}
				if m.Acquire(id, elem, mode, granted(id)) == Queued {
					waiting[id] = true
				}
			case op < 0x8: // release one held element, if held
				if _, ok := m.Holds(id, elem); ok && !waiting[id] {
					m.Release(id, elem)
				} else if b&1 == 0 {
					m.CancelRequest(id)
					delete(waiting, id)
				}
			case op < 0xa: // commit/abort: release everything
				abort(id)
			case op < 0xc: // seize (central authentication grab)
				if waiting[id] {
					continue
				}
				victims, ok := m.Seize(id, elem, mode)
				if ok {
					for _, v := range victims {
						if v == id {
							t.Fatalf("seize by %d returned itself as victim", id)
						}
						abort(v)
					}
				}
			case op < 0xe: // coherence count up
				if m.Coherence(elem) < 1<<20 {
					m.IncrCoherence(elem)
				}
			default: // coherence count down, if legal
				if m.Coherence(elem) > 0 {
					m.DecrCoherence(elem)
				}
			}
			m.CheckInvariants()
		}

		// Teardown: abort everyone and drain coherence; the table must be
		// empty afterwards — anything left is a leaked pooled entry.
		for id := ID(0); id < ids; id++ {
			abort(id)
		}
		for elem := uint32(0); elem < elems; elem++ {
			for m.Coherence(elem) > 0 {
				m.DecrCoherence(elem)
			}
		}
		m.CheckInvariants()
		if m.granted != 0 {
			t.Fatalf("%d grants survived teardown", m.granted)
		}
		if n := m.table.Len(); n != 0 {
			t.Fatalf("%d entries retained after teardown — pooled entry leak", n)
		}
	})
}
