package lock

import (
	"math/rand"
	"testing"
)

// buildRandomized populates a manager with share holders on one element,
// granting them in a randomized arrival order.
func buildRandomized(rng *rand.Rand, elem uint32, ids []ID) *Manager {
	m := NewManager()
	order := make([]ID, len(ids))
	copy(order, ids)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for _, id := range order {
		if got := m.Acquire(id, elem, Share, nil); got != Granted {
			panic("share lock not granted")
		}
	}
	return m
}

// TestHoldersOrderDeterministic asserts that Holders reports ascending ID
// order on every one of 100 randomized grant orders — the sorted-slice
// representation makes the order a construction invariant, not a per-call
// sort.
func TestHoldersOrderDeterministic(t *testing.T) {
	ids := []ID{42, 7, 1003, 5, 88, 219, 64, 11}
	const elem = 9
	for run := 0; run < 100; run++ {
		rng := rand.New(rand.NewSource(int64(run)))
		m := buildRandomized(rng, elem, ids)
		got := m.Holders(elem)
		if len(got) != len(ids) {
			t.Fatalf("run %d: %d holders, want %d", run, len(got), len(ids))
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("run %d: Holders not in ascending order: %v", run, got)
			}
		}
		if run > 0 {
			// Same set, any arrival order => identical report.
			want := []ID{5, 7, 11, 42, 64, 88, 219, 1003}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("run %d: Holders = %v, want %v", run, got, want)
				}
			}
		}
	}
}

// TestSeizeVictimOrderDeterministic asserts the Seize victim list comes out
// in ascending ID order regardless of the (randomized) order in which the
// victims acquired their locks, across 100 runs. The victim order feeds
// mark-for-abort events into the simulator's FIFO tie-break, so any
// nondeterminism here makes whole simulation trajectories irreproducible.
func TestSeizeVictimOrderDeterministic(t *testing.T) {
	ids := []ID{330, 12, 75, 2001, 9, 154, 48}
	const elem, central = 3, ID(999999)
	for run := 0; run < 100; run++ {
		rng := rand.New(rand.NewSource(int64(1000 + run)))
		m := buildRandomized(rng, elem, ids)
		victims, ok := m.Seize(central, elem, Exclusive)
		if !ok {
			t.Fatalf("run %d: seize failed with zero coherence", run)
		}
		if len(victims) != len(ids) {
			t.Fatalf("run %d: %d victims, want %d", run, len(victims), len(ids))
		}
		want := []ID{9, 12, 48, 75, 154, 330, 2001}
		for i := range want {
			if victims[i] != want[i] {
				t.Fatalf("run %d: victims = %v, want %v", run, victims, want)
			}
		}
		if mode, held := m.Holds(central, elem); !held || mode != Exclusive {
			t.Fatalf("run %d: central holder missing after seize", run)
		}
	}
}

// TestReleaseAllOrderDeterministic asserts ReleaseAll walks a transaction's
// locks in ascending element order for any acquisition order: waiters queued
// behind each element are granted in exactly that sequence.
func TestReleaseAllOrderDeterministic(t *testing.T) {
	elems := []uint32{17, 3, 99, 41, 8}
	const owner, waiter = ID(1), ID(2)
	for run := 0; run < 100; run++ {
		rng := rand.New(rand.NewSource(int64(2000 + run)))
		m := NewManager()
		order := make([]uint32, len(elems))
		copy(order, elems)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, elem := range order {
			if got := m.Acquire(owner, elem, Exclusive, nil); got != Granted {
				t.Fatalf("run %d: owner not granted %d", run, elem)
			}
		}
		// One waiter per element, queued behind the owner; grant order on
		// ReleaseAll reveals the release order. A transaction waits on one
		// element at a time, so use distinct waiter IDs.
		var grants []uint32
		for i, elem := range elems {
			elem := elem
			w := waiter + ID(i)
			if got := m.Acquire(w, elem, Share, func() { grants = append(grants, elem) }); got != Queued {
				t.Fatalf("run %d: waiter on %d not queued (got %v)", run, elem, got)
			}
		}
		m.ReleaseAll(owner)
		want := []uint32{3, 8, 17, 41, 99}
		if len(grants) != len(want) {
			t.Fatalf("run %d: %d grants, want %d", run, len(grants), len(want))
		}
		for i := range want {
			if grants[i] != want[i] {
				t.Fatalf("run %d: release order %v, want %v", run, grants, want)
			}
		}
		m.CheckInvariants()
	}
}
