// Package lock implements the per-site lock manager of the hybrid protocol
// (§2 of the paper). Each lock carries two fields:
//
//   - a concurrency-control field: classic share/exclusive locking with a
//     FIFO wait queue, used among transactions running at the same site;
//   - a coherence-control field: a count of asynchronous update messages for
//     the element that are in flight to the central site and not yet
//     acknowledged. A central/shipped transaction's authentication request
//     must be refused (NACK) while this count is non-zero.
//
// Same-site conflicts block; deadlocks among blocked transactions are
// detected by cycle search in the waits-for relation and resolved by
// aborting the requester (§4.1: the aborted transaction releases all its
// locks). Cross-site conflicts are resolved by Seize: the authentication
// phase of a central/shipped transaction takes the lock away from local
// holders, which are reported back as victims to be marked for abort.
//
// Hot-path representation: holders and per-transaction lock sets are small
// slices kept sorted by construction (not maps sorted per call), so every
// iteration order — ReleaseAll, Seize victims, Holders — is deterministic
// without any sorting, and entry objects are pooled across lock lifetimes
// so steady-state operation does not allocate.
package lock

import (
	"fmt"

	"hybriddb/internal/flatmap"
)

// ID identifies a transaction to the lock manager.
type ID int64

// Mode is a lock mode.
type Mode uint8

// Lock modes. Share is compatible only with Share.
const (
	Share Mode = iota + 1
	Exclusive
)

// String returns "S" or "X".
func (m Mode) String() string {
	switch m {
	case Share:
		return "S"
	case Exclusive:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Compatible reports whether two granted modes can coexist.
func Compatible(a, b Mode) bool { return a == Share && b == Share }

// Outcome is the synchronous result of an Acquire call.
type Outcome uint8

// Acquire outcomes.
const (
	// Granted means the lock was granted immediately.
	Granted Outcome = iota + 1
	// Queued means the request conflicts and was placed on the FIFO wait
	// queue; the onGrant callback will run when it is granted.
	Queued
	// Deadlock means enqueueing the request would have closed a cycle in
	// the waits-for relation; the request was not enqueued and the caller
	// must abort the transaction.
	Deadlock
)

type request struct {
	id      ID
	mode    Mode
	onGrant func()
}

// holder is one granted lock on an element. entry.holders is kept sorted by
// id, so victim and holder enumeration orders are deterministic by
// construction.
type holder struct {
	id   ID
	mode Mode
}

// heldElem is one element in a transaction's lock set, kept sorted by elem
// so ReleaseAll releases in ascending element order without sorting.
type heldElem struct {
	elem uint32
	mode Mode
}

type entry struct {
	holders   []holder // sorted by id ascending
	queue     []request
	coherence int
}

func (e *entry) empty() bool {
	return len(e.holders) == 0 && len(e.queue) == 0 && e.coherence == 0
}

// findHolder returns the position of id in the sorted holders slice, or the
// insertion point and false.
func (e *entry) findHolder(id ID) (int, bool) {
	lo, hi := 0, len(e.holders)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.holders[mid].id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(e.holders) && e.holders[lo].id == id
}

// findHeld returns the position of elem in the sorted held slice, or the
// insertion point and false.
func findHeld(h []heldElem, elem uint32) (int, bool) {
	lo, hi := 0, len(h)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h[mid].elem < elem {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(h) && h[lo].elem == elem
}

// Manager is the lock manager for one site. It is not safe for concurrent
// use; the discrete-event simulation is single-threaded by design.
//
// The three tables are open-addressed flat maps (internal/flatmap) rather
// than Go maps: Acquire/Release are the inner loop of every database call,
// and at 1000 sites the per-site tables must stay small, cache-resident and
// free of per-operation allocation. Nothing iterates them on the simulation
// path, so the unspecified probe order cannot leak into results.
type Manager struct {
	table *flatmap.Map[uint32, *entry]
	// held tracks, per transaction, the elements it holds and in what mode,
	// as a slice sorted by element.
	held *flatmap.Map[ID, []heldElem]
	// waitingOn maps a blocked transaction to the element it waits for.
	// A transaction requests locks sequentially, so it waits on at most one.
	waitingOn *flatmap.Map[ID, uint32]
	granted   int // total granted locks, kept incrementally

	// Object pools: entries and held slices cycle through short lifetimes
	// (one lock span, one transaction), so recycling them keeps the
	// steady-state Acquire/Release path allocation-free.
	freeEntries []*entry
	freeHeld    [][]heldElem
	victimBuf   []ID
	visitBuf    []ID // cycle-search scratch, reused across wouldDeadlock calls
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		table:     flatmap.New[uint32, *entry](64),
		held:      flatmap.New[ID, []heldElem](64),
		waitingOn: flatmap.New[ID, uint32](16),
	}
}

func (m *Manager) entry(elem uint32) *entry {
	e, ok := m.table.Get(elem)
	if !ok {
		if n := len(m.freeEntries); n > 0 {
			e = m.freeEntries[n-1]
			m.freeEntries = m.freeEntries[:n-1]
		} else {
			e = &entry{}
		}
		m.table.Put(elem, e)
	}
	return e
}

// maybeDrop removes an empty entry from the table and recycles it. The
// identity check matters: grant callbacks fired inside grantWaiters can
// re-enter the manager, drop this entry, and install a fresh one under the
// same element (e.g. a commit that releases the lock and then raises the
// element's coherence count); dropping by key alone would destroy that new
// entry. Recycling is always paired with the table delete, so an entry is
// never simultaneously pooled and installed.
func (m *Manager) maybeDrop(elem uint32, e *entry) {
	if cur, ok := m.table.Get(elem); e.empty() && ok && cur == e {
		m.table.Delete(elem)
		e.holders = e.holders[:0]
		e.queue = e.queue[:0]
		e.coherence = 0
		m.freeEntries = append(m.freeEntries, e)
	}
}

func (m *Manager) addHolder(id ID, elem uint32, mode Mode, e *entry) {
	if i, ok := e.findHolder(id); ok {
		// Upgrade: replace mode, total count unchanged.
		if e.holders[i].mode != mode {
			e.holders[i].mode = mode
			h, _ := m.held.Get(id)
			if j, ok := findHeld(h, elem); ok {
				h[j].mode = mode
			}
		}
		return
	} else {
		e.holders = append(e.holders, holder{})
		copy(e.holders[i+1:], e.holders[i:])
		e.holders[i] = holder{id: id, mode: mode}
	}
	h, ok := m.held.Get(id)
	if !ok && len(m.freeHeld) > 0 {
		n := len(m.freeHeld)
		h = m.freeHeld[n-1]
		m.freeHeld = m.freeHeld[:n-1]
	}
	j, _ := findHeld(h, elem)
	h = append(h, heldElem{})
	copy(h[j+1:], h[j:])
	h[j] = heldElem{elem: elem, mode: mode}
	m.held.Put(id, h)
	m.granted++
}

func (m *Manager) removeHolder(id ID, elem uint32, e *entry) {
	i, ok := e.findHolder(id)
	if !ok {
		return
	}
	copy(e.holders[i:], e.holders[i+1:])
	e.holders = e.holders[:len(e.holders)-1]
	if h, ok := m.held.Get(id); ok {
		if j, ok := findHeld(h, elem); ok {
			copy(h[j:], h[j+1:])
			h = h[:len(h)-1]
			if len(h) == 0 {
				m.held.Delete(id)
				m.freeHeld = append(m.freeHeld, h)
			} else {
				m.held.Put(id, h)
			}
		}
	}
	m.granted--
}

// Acquire requests elem in the given mode for transaction id. If the request
// must wait, onGrant is saved and invoked when the lock is eventually
// granted; onGrant must not be nil in that case. If the request holds the
// element already in a mode at least as strong, it is granted immediately.
func (m *Manager) Acquire(id ID, elem uint32, mode Mode, onGrant func()) Outcome {
	if _, waiting := m.waitingOn.Get(id); waiting {
		panic(fmt.Sprintf("lock: transaction %d issued a second request while blocked", id))
	}
	e := m.entry(elem)

	if i, ok := e.findHolder(id); ok {
		cur := e.holders[i].mode
		if cur == Exclusive || mode == Share {
			m.maybeDrop(elem, e)
			return Granted // already strong enough
		}
		// Upgrade Share -> Exclusive: immediate if sole holder.
		if len(e.holders) == 1 {
			m.addHolder(id, elem, Exclusive, e)
			return Granted
		}
		// Otherwise queue the upgrade like a fresh conflicting request.
	} else if m.grantable(id, mode, e) {
		m.addHolder(id, elem, mode, e)
		return Granted
	}

	// Conflict: deadlock check before enqueueing.
	if m.wouldDeadlock(id, elem, mode) {
		m.maybeDrop(elem, e)
		return Deadlock
	}
	if onGrant == nil {
		panic("lock: nil onGrant for a request that must wait")
	}
	e.queue = append(e.queue, request{id: id, mode: mode, onGrant: onGrant})
	m.waitingOn.Put(id, elem)
	return Queued
}

// grantable reports whether a fresh request (no queue-jumping: only called
// when the queue is empty or for queue-head scans) is compatible with the
// current holders, ignoring id itself (upgrade case).
func (m *Manager) grantable(id ID, mode Mode, e *entry) bool {
	if len(e.queue) > 0 {
		// FIFO fairness: a newcomer may not overtake waiting requests.
		return false
	}
	for _, h := range e.holders {
		if h.id == id {
			continue
		}
		if !Compatible(h.mode, mode) {
			return false
		}
	}
	return true
}

// wouldDeadlock reports whether blocking transaction id on elem would close
// a cycle in the waits-for relation. A blocked transaction waits for (a) the
// holders of its element whose mode conflicts with the request and (b) every
// request queued ahead of it (the grant scan is strictly FIFO, so requests
// ahead necessarily complete first).
func (m *Manager) wouldDeadlock(start ID, elem uint32, mode Mode) bool {
	// Waits-for chains are short (each blocked transaction waits on one
	// element), so a linear scan over a reused scratch slice beats a
	// per-call visited map.
	m.visitBuf = m.visitBuf[:0]
	seen := func(id ID) bool {
		for _, v := range m.visitBuf {
			if v == id {
				return true
			}
		}
		return false
	}
	var visit func(id ID, waitElem uint32, waitMode Mode, queuePos int) bool
	visit = func(id ID, waitElem uint32, waitMode Mode, queuePos int) bool {
		e, ok := m.table.Get(waitElem)
		if !ok {
			return false
		}
		step := func(next ID) bool {
			if next == start {
				return true
			}
			if seen(next) {
				return false
			}
			m.visitBuf = append(m.visitBuf, next)
			nextElem, blocked := m.waitingOn.Get(next)
			if !blocked {
				return false
			}
			ne, _ := m.table.Get(nextElem)
			pos := len(ne.queue)
			var nm Mode
			for i, r := range ne.queue {
				if r.id == next {
					pos = i
					nm = r.mode
					break
				}
			}
			return visit(next, nextElem, nm, pos)
		}
		for _, h := range e.holders {
			if h.id == id {
				continue
			}
			if !Compatible(h.mode, waitMode) {
				if step(h.id) {
					return true
				}
			}
		}
		for i := 0; i < queuePos && i < len(e.queue); i++ {
			if e.queue[i].id == id {
				continue
			}
			if step(e.queue[i].id) {
				return true
			}
		}
		return false
	}
	// The new request would sit at the back of the queue.
	pos := 0
	if e, ok := m.table.Get(elem); ok {
		pos = len(e.queue)
	}
	return visit(start, elem, mode, pos)
}

// Release gives up id's lock on elem and grants any newly compatible waiters.
// Releasing a lock that is not held is a no-op.
func (m *Manager) Release(id ID, elem uint32) {
	e, ok := m.table.Get(elem)
	if !ok {
		return
	}
	m.removeHolder(id, elem, e)
	m.grantWaiters(elem, e)
	m.maybeDrop(elem, e)
}

// ReleaseAll gives up every lock id holds and cancels any pending request.
// Used on deadlock abort (§4.1: all locks released). The held set is sorted
// by element, so repeatedly releasing its first entry walks the locks in
// ascending element order — the deterministic order the simulation's FIFO
// event tie-break requires — without sorting or copying.
func (m *Manager) ReleaseAll(id ID) {
	m.CancelRequest(id)
	for {
		h, _ := m.held.Get(id)
		if len(h) == 0 {
			return
		}
		m.Release(id, h[0].elem)
	}
}

// CancelRequest removes id's pending (queued) request, if any. The onGrant
// callback will never be invoked. Reports whether a request was cancelled.
func (m *Manager) CancelRequest(id ID) bool {
	elem, ok := m.waitingOn.Get(id)
	if !ok {
		return false
	}
	e, _ := m.table.Get(elem)
	for i, r := range e.queue {
		if r.id == id {
			copy(e.queue[i:], e.queue[i+1:])
			e.queue[len(e.queue)-1] = request{} // release the closure
			e.queue = e.queue[:len(e.queue)-1]
			break
		}
	}
	m.waitingOn.Delete(id)
	// Removing a queued request may unblock the grant scan.
	m.grantWaiters(elem, e)
	m.maybeDrop(elem, e)
	return true
}

// grantWaiters grants queued requests from the head while they are
// compatible with the current holders (strict FIFO: stops at the first
// request that cannot be granted). The head is removed by shifting in place
// so the queue's backing array stays reusable when the entry is pooled.
func (m *Manager) grantWaiters(elem uint32, e *entry) {
	for len(e.queue) > 0 {
		r := e.queue[0]
		compatible := true
		for _, h := range e.holders {
			if h.id == r.id {
				continue // upgrade request
			}
			if !Compatible(h.mode, r.mode) {
				compatible = false
				break
			}
		}
		if !compatible {
			return
		}
		copy(e.queue, e.queue[1:])
		e.queue[len(e.queue)-1] = request{} // release the closure
		e.queue = e.queue[:len(e.queue)-1]
		m.waitingOn.Delete(r.id)
		m.addHolder(r.id, elem, r.mode, e)
		r.onGrant()
	}
}

// Seize implements the authentication-phase lock grab of a central/shipped
// transaction at a local site. It fails (ok=false, nothing changes) if the
// element has in-flight asynchronous updates (coherence count non-zero).
// Otherwise the central transaction id becomes a holder; local holders whose
// mode conflicts are removed and returned as victims — in ascending ID
// order, since holders are sorted by construction — to be marked for abort
// by the caller. Compatible local holders keep their locks (§2).
//
// The returned slice is a buffer owned by the Manager, valid until the next
// Seize call; callers must consume (or copy) it before calling Seize again.
func (m *Manager) Seize(id ID, elem uint32, mode Mode) (victims []ID, ok bool) {
	e := m.entry(elem)
	if e.coherence != 0 {
		m.maybeDrop(elem, e)
		return nil, false
	}
	m.victimBuf = m.victimBuf[:0]
	for _, h := range e.holders {
		if h.id == id {
			continue
		}
		if !Compatible(h.mode, mode) || !Compatible(mode, h.mode) {
			m.victimBuf = append(m.victimBuf, h.id)
		}
	}
	for _, v := range m.victimBuf {
		m.removeHolder(v, elem, e)
	}
	m.addHolder(id, elem, mode, e)
	if len(m.victimBuf) == 0 {
		return nil, true
	}
	return m.victimBuf, true
}

// IncrCoherence records an asynchronous update in flight for elem.
func (m *Manager) IncrCoherence(elem uint32) {
	m.entry(elem).coherence++
}

// DecrCoherence records the acknowledgement of an asynchronous update. It
// panics if the count would go negative, then grants nothing (coherence does
// not block same-site requests).
func (m *Manager) DecrCoherence(elem uint32) {
	e, ok := m.table.Get(elem)
	if !ok || e.coherence == 0 {
		panic(fmt.Sprintf("lock: coherence underflow on element %d", elem))
	}
	e.coherence--
	m.maybeDrop(elem, e)
}

// Coherence returns the pending-update count for elem.
func (m *Manager) Coherence(elem uint32) int {
	if e, ok := m.table.Get(elem); ok {
		return e.coherence
	}
	return 0
}

// Holds reports whether id currently holds elem, and in which mode.
func (m *Manager) Holds(id ID, elem uint32) (Mode, bool) {
	if h, ok := m.held.Get(id); ok {
		if j, ok := findHeld(h, elem); ok {
			return h[j].mode, true
		}
	}
	return 0, false
}

// HeldBy returns the elements held by id (a copy).
func (m *Manager) HeldBy(id ID) map[uint32]Mode {
	src, _ := m.held.Get(id)
	out := make(map[uint32]Mode, len(src))
	for _, he := range src {
		out[he.elem] = he.mode
	}
	return out
}

// Holders returns the transactions currently holding elem (a copy, in
// ascending ID order — the holders slice is sorted by construction).
func (m *Manager) Holders(elem uint32) []ID {
	e, ok := m.table.Get(elem)
	if !ok {
		return nil
	}
	out := make([]ID, len(e.holders))
	for i, h := range e.holders {
		out[i] = h.id
	}
	return out
}

// HoldersAppend appends the IDs of the element's current holders to dst and
// returns it — the allocation-free variant of Holders for callers that walk
// holder sets in a loop with a reused buffer. The returned slice is only
// valid until the next Manager mutation.
func (m *Manager) HoldersAppend(elem uint32, dst []ID) []ID {
	e, ok := m.table.Get(elem)
	if !ok {
		return dst
	}
	for _, h := range e.holders {
		dst = append(dst, h.id)
	}
	return dst
}

// LocksHeld returns the total number of granted locks at this site. The
// dynamic routing strategies use it to estimate contention (§3.2.1).
func (m *Manager) LocksHeld() int { return m.granted }

// LocksHeldBy returns the number of locks id holds.
func (m *Manager) LocksHeldBy(id ID) int {
	h, _ := m.held.Get(id)
	return len(h)
}

// Waiting reports whether id has a queued request, and on which element.
func (m *Manager) Waiting(id ID) (uint32, bool) {
	return m.waitingOn.Get(id)
}

// QueueLength returns the number of requests waiting on elem.
func (m *Manager) QueueLength(elem uint32) int {
	if e, ok := m.table.Get(elem); ok {
		return len(e.queue)
	}
	return 0
}

// CheckInvariants verifies internal consistency; it is used by tests and by
// the simulator's self-check mode. It panics on violation.
func (m *Manager) CheckInvariants() {
	count := 0
	m.table.Range(func(elem uint32, e *entry) bool {
		if e.empty() {
			panic(fmt.Sprintf("lock: empty entry %d retained", elem))
		}
		if e.coherence < 0 {
			panic(fmt.Sprintf("lock: negative coherence on %d", elem))
		}
		// All pairs of holders must be compatible unless one pair member
		// arrived via Seize; Seize only ever leaves compatible residents,
		// so full pairwise compatibility must hold.
		for i, h := range e.holders {
			if i > 0 && e.holders[i-1].id >= h.id {
				panic(fmt.Sprintf("lock: holders of element %d out of order", elem))
			}
			got, ok := m.Holds(h.id, elem)
			if !ok || got != h.mode {
				panic(fmt.Sprintf("lock: held index out of sync for txn %d elem %d", h.id, elem))
			}
			count++
			for j := i + 1; j < len(e.holders); j++ {
				if !Compatible(h.mode, e.holders[j].mode) {
					panic(fmt.Sprintf("lock: incompatible co-holders on element %d", elem))
				}
			}
		}
		for _, r := range e.queue {
			if w, ok := m.waitingOn.Get(r.id); !ok || w != elem {
				panic(fmt.Sprintf("lock: waitingOn out of sync for txn %d", r.id))
			}
		}
		return true
	})
	m.held.Range(func(id ID, h []heldElem) bool {
		for i := 1; i < len(h); i++ {
			if h[i-1].elem >= h[i].elem {
				panic(fmt.Sprintf("lock: held set of txn %d out of order", id))
			}
		}
		return true
	})
	if count != m.granted {
		panic(fmt.Sprintf("lock: granted count %d != table count %d", m.granted, count))
	}
}
