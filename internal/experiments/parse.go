package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
)

// ParseStrategy resolves a command-line strategy specification to a maker.
// Accepted forms:
//
//	none
//	static            (analytically optimal ship probability)
//	static:P          (fixed ship probability P in [0,1])
//	measured-rt
//	queue-length
//	threshold:T       (queue-length heuristic with utilization threshold T)
//	min-incoming/ql   min-incoming/nis
//	min-average/ql    min-average/nis
//	best              (alias for min-average/nis, the paper's best)
func ParseStrategy(spec string) (StrategyMaker, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	switch name {
	case "none":
		return MakerNone(), nil
	case "static":
		if !hasArg {
			return MakerStaticOptimal(), nil
		}
		p, err := strconv.ParseFloat(arg, 64)
		if err != nil || p < 0 || p > 1 {
			return StrategyMaker{}, fmt.Errorf("experiments: static probability %q", arg)
		}
		return StrategyMaker{
			Label: fmt.Sprintf("static(%.3f)", p),
			Make: func(cfg hybrid.Config) (routing.Strategy, error) {
				return routing.NewStatic(p, cfg.Seed^0x9e3779b9), nil
			},
		}, nil
	case "measured-rt":
		return MakerMeasuredRT(), nil
	case "queue-length":
		return MakerQueueLength(), nil
	case "threshold":
		if !hasArg {
			return StrategyMaker{}, fmt.Errorf("experiments: threshold requires a value, e.g. threshold:-0.2")
		}
		theta, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return StrategyMaker{}, fmt.Errorf("experiments: threshold %q", arg)
		}
		return MakerQueueThreshold(theta), nil
	case "adaptive":
		return StrategyMaker{
			Label: "adaptive-static",
			Make: func(cfg hybrid.Config) (routing.Strategy, error) {
				const window = 30 // seconds between re-optimizations
				return routing.NewAdaptiveStatic(cfg.ModelParams(), cfg.PLocal, window, cfg.Seed^0x2545f491)
			},
		}, nil
	case "min-incoming/ql":
		return MakerMinIncoming(routing.FromQueueLength), nil
	case "min-incoming/nis":
		return MakerMinIncoming(routing.FromInSystem), nil
	case "min-average/ql":
		return MakerMinAverage(routing.FromQueueLength), nil
	case "min-average/nis", "best":
		return MakerMinAverage(routing.FromInSystem), nil
	default:
		return StrategyMaker{}, fmt.Errorf("experiments: unknown strategy %q", spec)
	}
}

// StrategyNames lists the accepted ParseStrategy specifications for help
// text.
func StrategyNames() []string {
	return []string{
		"none", "static", "static:P", "adaptive", "measured-rt",
		"queue-length", "threshold:T", "min-incoming/ql", "min-incoming/nis",
		"min-average/ql", "min-average/nis", "best",
	}
}
