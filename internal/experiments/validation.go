package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/model"
	"hybriddb/internal/routing"
	"hybriddb/internal/runner"
)

// ValidationStatus classifies one validation row: whether the model↔sim
// comparison at that operating point is meaningful. The named sentinel keeps
// saturation explicit — consumers (the enforced tolerance gate in
// internal/simtest, the printed table) branch on Status rather than testing
// RelErr against ±Inf or NaN.
type ValidationStatus uint8

// Validation row statuses.
const (
	// ValidationOK means both model and simulation produced finite,
	// positive response times; RelErr is meaningful.
	ValidationOK ValidationStatus = iota + 1
	// ValidationModelSaturated means the fixed-point solver reported
	// saturation (a utilization reached 1) or a non-finite response time;
	// there is no finite prediction to compare.
	ValidationModelSaturated
	// ValidationSimDegenerate means the simulation produced no usable mean
	// response time (zero, negative, or NaN — an empty or saturated
	// measurement window).
	ValidationSimDegenerate
)

// String names the status for tables and failure messages.
func (s ValidationStatus) String() string {
	switch s {
	case ValidationOK:
		return "ok"
	case ValidationModelSaturated:
		return "model-saturated"
	case ValidationSimDegenerate:
		return "sim-degenerate"
	default:
		return fmt.Sprintf("ValidationStatus(%d)", uint8(s))
	}
}

// ValidationRow compares the analytical model's prediction with the
// simulation at one operating point — the methodology check behind §3.1
// ("simulation estimates are shown to support this methodology").
type ValidationRow struct {
	RatePerSite float64
	PShip       float64
	ModelRT     float64 // model RAvg
	SimRT       float64 // simulated mean RT
	// RelErr is |model−sim|/sim. It is only meaningful when Status ==
	// ValidationOK; on any other status it is NaN, never ±Inf, so an
	// unguarded comparison cannot silently pass or fail on a saturated row.
	RelErr     float64
	Status     ValidationStatus
	ModelUtilL float64
	SimUtilL   float64
	ModelUtilC float64
	SimUtilC   float64
}

// ModelValidation runs the static policy at the given ship probability
// across the sweep, solving the analytical model at each point and
// simulating the same point, and reports the prediction errors. The model is
// expected to track the simulation closely at low-to-moderate loads and
// degrade near saturation, where its M/M/1-style expansions are crudest.
func ModelValidation(opt Options, pShip float64) ([]ValidationRow, error) {
	if pShip < 0 || pShip > 1 {
		return nil, fmt.Errorf("experiments: pShip %v out of [0,1]", pShip)
	}
	// The simulations dominate the cost and are independent across rates, so
	// they fan across the worker pool; the analytical solves are cheap and
	// stay serial.
	tasks := make([]runner.Task, len(opt.rates()))
	for i, rate := range opt.rates() {
		cfg := opt.Base
		cfg.ArrivalRatePerSite = rate
		tasks[i] = runner.Task{
			Label: fmt.Sprintf("validation at rate %v", rate),
			Cfg:   cfg,
			Make: func(cfg hybrid.Config) (routing.Strategy, error) {
				return routing.NewStatic(pShip, cfg.Seed^0x1234abcd), nil
			},
		}
	}
	sims, err := runner.Run(tasks, opt.Parallelism)
	if err != nil {
		return nil, err
	}

	rows := make([]ValidationRow, 0, len(opt.rates()))
	for i, rate := range opt.rates() {
		cfg := opt.Base
		cfg.ArrivalRatePerSite = rate

		sol, err := model.Solve(cfg.ModelInput(pShip))
		if err != nil {
			return nil, err
		}
		sim := sims[i]

		row := ValidationRow{
			RatePerSite: rate,
			PShip:       pShip,
			ModelRT:     sol.RAvg,
			SimRT:       sim.MeanRT,
			ModelUtilL:  sol.UtilLocal,
			SimUtilL:    sim.UtilLocalMean,
			ModelUtilC:  sol.UtilCentral,
			SimUtilC:    sim.UtilCentral,
		}
		switch {
		case sol.Saturated || math.IsInf(sol.RAvg, 0) || math.IsNaN(sol.RAvg):
			row.Status = ValidationModelSaturated
			row.RelErr = math.NaN()
		case sim.MeanRT <= 0 || math.IsNaN(sim.MeanRT):
			row.Status = ValidationSimDegenerate
			row.RelErr = math.NaN()
		default:
			row.Status = ValidationOK
			row.RelErr = math.Abs(sol.RAvg-sim.MeanRT) / sim.MeanRT
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteValidation renders the model-accuracy table.
func WriteValidation(w io.Writer, rows []ValidationRow) error {
	fmt.Fprintln(w, "Analytical model vs simulation (static policy)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "tps/site\tp_ship\tmodel RT\tsim RT\trel err\tutil L (m/s)\tutil C (m/s)")
	for _, r := range rows {
		err := r.Status.String()
		if r.Status == ValidationOK {
			err = fmt.Sprintf("%.1f%%", 100*r.RelErr)
		}
		fmt.Fprintf(tw, "%.2f\t%.2f\t%.3f\t%.3f\t%s\t%.2f/%.2f\t%.2f/%.2f\n",
			r.RatePerSite, r.PShip, r.ModelRT, r.SimRT, err,
			r.ModelUtilL, r.SimUtilL, r.ModelUtilC, r.SimUtilC)
	}
	return tw.Flush()
}
