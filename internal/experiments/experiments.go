// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): the response-time-versus-throughput curves of Figures 4.1,
// 4.2, 4.4, 4.5 and 4.7, the shipped-fraction curves of Figures 4.3 and 4.6,
// plus a maximum-supportable-throughput table and ablation sweeps. Each
// driver returns a Figure holding the full simulation results, renderable as
// an aligned text table or CSV.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/model"
	"hybriddb/internal/obsx/manifest"
	"hybriddb/internal/plot"
	"hybriddb/internal/routing"
	"hybriddb/internal/runner"
	"hybriddb/internal/stats"
)

// Options controls a figure regeneration.
type Options struct {
	// Base is the configuration template. Figure drivers override
	// CommDelay where the paper does; ArrivalRatePerSite is set per sweep
	// point.
	Base hybrid.Config
	// RatesPerSite is the sweep of per-site arrival rates. Nil selects
	// DefaultRates.
	RatesPerSite []float64
	// Replications is the number of independent replications per sweep
	// point. Replication 0 runs on Base.Seed itself (so 0 or 1 reproduces
	// the historical single-run sweeps bit for bit); replication r > 0 runs
	// on runner.DeriveSeed(Base.Seed, label, rateIndex, r). With more than
	// one replication every Point carries a sample standard deviation and a
	// 95% confidence half-width.
	Replications int
	// Parallelism bounds the worker pool fanning the (strategy × rate ×
	// replication) runs; 0 selects GOMAXPROCS. The value changes only
	// wall-clock time — sweep output is bit-identical at any parallelism.
	Parallelism int
	// Progress, when non-nil, receives a pool event after each run
	// completes (wall-clock completion order). Reporting never perturbs
	// results.
	Progress func(runner.ProgressEvent)
	// Manifest, when non-nil, accumulates every run of every sweep — label,
	// exact configuration, and full result — for a RUN_*.json artifact. Set
	// Base.CaptureHistograms to include histogram dumps in the results.
	Manifest *manifest.Manifest
}

// DefaultRates spans 5–34 tps total for the 10-site system, bracketing every
// knee in the paper's figures.
func DefaultRates() []float64 {
	return []float64{0.5, 1.0, 1.5, 2.0, 2.5, 2.8, 3.1, 3.4}
}

func (o Options) rates() []float64 {
	if len(o.RatesPerSite) > 0 {
		return o.RatesPerSite
	}
	return DefaultRates()
}

func (o Options) replications() int {
	if o.Replications > 1 {
		return o.Replications
	}
	return 1
}

// Point is one sweep point of one curve. With a single replication Y is that
// run's measurement and the dispersion fields are zero; with n > 1
// replications Y is the mean across replications.
type Point struct {
	RatePerSite float64
	TotalRate   float64
	Y           float64 // mean of the metric across replications
	// StdDev is the sample standard deviation of the metric across
	// replications (0 with a single replication).
	StdDev float64
	// HalfWidth is the 95% Student-t confidence half-width on Y (0 with a
	// single replication).
	HalfWidth float64
	// Replications is the number of independent runs aggregated into Y.
	Replications int
	// Result is the first replication's full measurement (the run on the
	// base seed) — the auxiliary columns of WriteCSV read from it.
	Result hybrid.Result
	// Results holds every replication's full measurement, in replication
	// order; Results[0] == Result.
	Results []hybrid.Result
}

// Curve is one strategy's series across the sweep.
type Curve struct {
	Label  string
	Points []Point
}

// Figure is a regenerated paper figure.
type Figure struct {
	ID     string // e.g. "4.2"
	Title  string
	XLabel string
	YLabel string
	Curves []Curve
}

// StrategyMaker constructs a fresh strategy for a configuration. A fresh
// instance per run keeps stateful strategies (static's random stream)
// independent across sweep points.
type StrategyMaker struct {
	Label string
	Make  func(cfg hybrid.Config) (routing.Strategy, error)
}

// Makers for the paper's policies.

// MakerNone is the no-load-sharing baseline.
func MakerNone() StrategyMaker {
	return StrategyMaker{Label: "none", Make: func(hybrid.Config) (routing.Strategy, error) {
		return routing.AlwaysLocal{}, nil
	}}
}

// MakerStaticOptimal runs the analytical optimization of §3.1 for the
// configuration's arrival rate and ships with the resulting probability.
func MakerStaticOptimal() StrategyMaker {
	return StrategyMaker{Label: "static*", Make: func(cfg hybrid.Config) (routing.Strategy, error) {
		opt, err := model.OptimalShipFraction(cfg.ModelInput(0), 0.01)
		if err != nil {
			return nil, fmt.Errorf("static optimization: %w", err)
		}
		return routing.NewStatic(opt.PShip, cfg.Seed^0x5bd1e995), nil
	}}
}

// MakerMeasuredRT is the §3.2.3 heuristic (curve A of Fig 4.2).
func MakerMeasuredRT() StrategyMaker {
	return StrategyMaker{Label: "measured-rt", Make: func(hybrid.Config) (routing.Strategy, error) {
		return routing.MeasuredRT{}, nil
	}}
}

// MakerQueueLength is the §3.2.4 heuristic (curve B of Fig 4.2).
func MakerQueueLength() StrategyMaker {
	return StrategyMaker{Label: "queue-length", Make: func(hybrid.Config) (routing.Strategy, error) {
		return routing.QueueLength{}, nil
	}}
}

// MakerQueueThreshold is the tuned heuristic of Figures 4.4 and 4.7.
func MakerQueueThreshold(theta float64) StrategyMaker {
	return StrategyMaker{
		Label: fmt.Sprintf("threshold(%+.1f)", theta),
		Make: func(hybrid.Config) (routing.Strategy, error) {
			return routing.QueueThreshold{Theta: theta}, nil
		},
	}
}

// MakerMinIncoming minimizes the incoming transaction's response time
// (§3.2.1; curves C and D of Fig 4.2).
func MakerMinIncoming(est routing.Estimator) StrategyMaker {
	return StrategyMaker{
		Label: "min-incoming/" + est.String(),
		Make: func(cfg hybrid.Config) (routing.Strategy, error) {
			return routing.MinIncoming{Params: cfg.ModelParams(), Estimator: est}, nil
		},
	}
}

// MakerMinAverage minimizes the average response time of all transactions
// (§3.2.2; curves E and F of Fig 4.2). The FromInSystem variant is the
// paper's best strategy.
func MakerMinAverage(est routing.Estimator) StrategyMaker {
	return StrategyMaker{
		Label: "min-average/" + est.String(),
		Make: func(cfg hybrid.Config) (routing.Strategy, error) {
			return routing.MinAverage{Params: cfg.ModelParams(), Estimator: est}, nil
		},
	}
}

// sweep fans every (strategy × rate × replication) run of the grid across
// the worker pool and aggregates each point's replications. Each run's seed
// is a pure function of (base seed, strategy label, rate index, replication
// index), so the curves are bit-identical for any Parallelism.
func sweep(opt Options, makers []StrategyMaker, y func(hybrid.Result) float64) ([]Curve, error) {
	rates := opt.rates()
	reps := opt.replications()

	tasks := make([]runner.Task, 0, len(makers)*len(rates)*reps)
	for _, mk := range makers {
		for ri, rate := range rates {
			for rep := 0; rep < reps; rep++ {
				cfg := opt.Base
				cfg.ArrivalRatePerSite = rate
				cfg.Seed = runner.RunSeed(opt.Base.Seed, mk.Label, ri, rep)
				tasks = append(tasks, runner.Task{
					Label: fmt.Sprintf("%s at rate %v rep %d", mk.Label, rate, rep),
					Cfg:   cfg,
					Make:  mk.Make,
				})
			}
		}
	}
	results, err := runner.RunOpts(tasks, runner.Options{
		Parallelism: opt.Parallelism,
		Progress:    opt.Progress,
	})
	if err != nil {
		return nil, err
	}
	if opt.Manifest != nil {
		for i := range tasks {
			opt.Manifest.Add(tasks[i].Label, tasks[i].Cfg, results[i])
		}
	}

	curves := make([]Curve, 0, len(makers))
	for mi, mk := range makers {
		curve := Curve{Label: mk.Label}
		for ri, rate := range rates {
			base := (mi*len(rates) + ri) * reps
			runs := results[base : base+reps]
			p := Point{
				RatePerSite:  rate,
				TotalRate:    rate * float64(opt.Base.Sites),
				Replications: reps,
				Result:       runs[0],
				Results:      runs,
			}
			if reps == 1 {
				p.Y = y(runs[0])
			} else {
				var w stats.Welford
				for _, r := range runs {
					w.Add(y(r))
				}
				p.Y = w.Mean()
				p.StdDev = w.StdDev()
				p.HalfWidth = w.CI95()
			}
			curve.Points = append(curve.Points, p)
		}
		curves = append(curves, curve)
	}
	return curves, nil
}

func meanRT(r hybrid.Result) float64       { return r.MeanRT }
func shipFraction(r hybrid.Result) float64 { return r.ShipFraction }

func withDelay(opt Options, d float64) Options {
	opt.Base.CommDelay = d
	return opt
}

// Figure41 regenerates Figure 4.1: average response time versus throughput
// for no sharing, optimal static sharing, and the best dynamic strategy, at
// 0.2 s communications delay.
func Figure41(opt Options) (Figure, error) {
	opt = withDelay(opt, 0.2)
	curves, err := sweep(opt, []StrategyMaker{
		MakerNone(),
		MakerStaticOptimal(),
		MakerMinAverage(routing.FromInSystem),
	}, meanRT)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "4.1",
		Title:  "Response time vs throughput: none / static / best dynamic (D=0.2s)",
		XLabel: "total offered tps",
		YLabel: "mean response time (s)",
		Curves: curves,
	}, nil
}

// Figure42 regenerates Figure 4.2: the six dynamic schemes at 0.2 s delay.
// Curve letters follow the paper: A measured-rt, B queue-length,
// C min-incoming/ql, D min-incoming/nis, E min-average/ql, F min-average/nis.
func Figure42(opt Options) (Figure, error) {
	opt = withDelay(opt, 0.2)
	curves, err := sweep(opt, []StrategyMaker{
		MakerMeasuredRT(),
		MakerQueueLength(),
		MakerMinIncoming(routing.FromQueueLength),
		MakerMinIncoming(routing.FromInSystem),
		MakerMinAverage(routing.FromQueueLength),
		MakerMinAverage(routing.FromInSystem),
	}, meanRT)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "4.2",
		Title:  "Response time vs throughput: dynamic schemes A-F (D=0.2s)",
		XLabel: "total offered tps",
		YLabel: "mean response time (s)",
		Curves: curves,
	}, nil
}

// Figure43 regenerates Figure 4.3: fraction of class A transactions shipped
// versus transaction rate, for every scheme, at 0.2 s delay.
func Figure43(opt Options) (Figure, error) {
	opt = withDelay(opt, 0.2)
	curves, err := sweep(opt, []StrategyMaker{
		MakerStaticOptimal(),
		MakerMeasuredRT(),
		MakerQueueLength(),
		MakerMinIncoming(routing.FromInSystem),
		MakerMinAverage(routing.FromInSystem),
	}, shipFraction)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "4.3",
		Title:  "Fraction of class A transactions shipped (D=0.2s)",
		XLabel: "total offered tps",
		YLabel: "fraction shipped",
		Curves: curves,
	}, nil
}

// Figure44 regenerates Figure 4.4: the queue-length heuristic tuned with
// thresholds 0, -0.1, -0.2, -0.3, against the best dynamic strategy, at
// 0.2 s delay (paper: optimum near -0.2).
func Figure44(opt Options) (Figure, error) {
	opt = withDelay(opt, 0.2)
	curves, err := sweep(opt, []StrategyMaker{
		MakerQueueThreshold(0),
		MakerQueueThreshold(-0.1),
		MakerQueueThreshold(-0.2),
		MakerQueueThreshold(-0.3),
		MakerMinAverage(routing.FromInSystem),
	}, meanRT)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "4.4",
		Title:  "Tuning the queue-length threshold (D=0.2s)",
		XLabel: "total offered tps",
		YLabel: "mean response time (s)",
		Curves: curves,
	}, nil
}

// Figure45 regenerates Figure 4.5: as Figure 4.1 but with 0.5 s delay, where
// the static benefit shrinks while dynamic sharing retains most of its gain.
func Figure45(opt Options) (Figure, error) {
	opt = withDelay(opt, 0.5)
	curves, err := sweep(opt, []StrategyMaker{
		MakerNone(),
		MakerStaticOptimal(),
		MakerMinAverage(routing.FromInSystem),
	}, meanRT)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "4.5",
		Title:  "Response time vs throughput: none / static / best dynamic (D=0.5s)",
		XLabel: "total offered tps",
		YLabel: "mean response time (s)",
		Curves: curves,
	}, nil
}

// Figure46 regenerates Figure 4.6: shipped fraction at 0.5 s delay (the
// static curve shows the paper's point of inflection).
func Figure46(opt Options) (Figure, error) {
	opt = withDelay(opt, 0.5)
	curves, err := sweep(opt, []StrategyMaker{
		MakerStaticOptimal(),
		MakerMeasuredRT(),
		MakerQueueLength(),
		MakerMinIncoming(routing.FromInSystem),
		MakerMinAverage(routing.FromInSystem),
	}, shipFraction)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "4.6",
		Title:  "Fraction of class A transactions shipped (D=0.5s)",
		XLabel: "total offered tps",
		YLabel: "fraction shipped",
		Curves: curves,
	}, nil
}

// Figure47 regenerates Figure 4.7: threshold tuning at 0.5 s delay, where
// the paper finds the optimum moves to about -0.1/+0.1 and the gap to the
// best dynamic strategy widens.
func Figure47(opt Options) (Figure, error) {
	opt = withDelay(opt, 0.5)
	curves, err := sweep(opt, []StrategyMaker{
		MakerQueueThreshold(0),
		MakerQueueThreshold(+0.1),
		MakerQueueThreshold(+0.2),
		MakerQueueThreshold(-0.1),
		MakerMinAverage(routing.FromInSystem),
	}, meanRT)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "4.7",
		Title:  "Tuning the queue-length threshold (D=0.5s)",
		XLabel: "total offered tps",
		YLabel: "mean response time (s)",
		Curves: curves,
	}, nil
}

// All regenerates every figure, in paper order.
func All(opt Options) ([]Figure, error) {
	drivers := []func(Options) (Figure, error){
		Figure41, Figure42, Figure43, Figure44, Figure45, Figure46, Figure47,
	}
	figures := make([]Figure, 0, len(drivers))
	for _, driver := range drivers {
		fig, err := driver(opt)
		if err != nil {
			return nil, err
		}
		figures = append(figures, fig)
	}
	return figures, nil
}

// WriteTable renders the figure as an aligned text table, one row per sweep
// rate and one column per curve.
func (f Figure) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure %s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	cols := []string{f.XLabel}
	for _, c := range f.Curves {
		cols = append(cols, c.Label)
	}
	fmt.Fprintln(tw, strings.Join(cols, "\t"))
	if len(f.Curves) > 0 {
		for i := range f.Curves[0].Points {
			row := []string{fmt.Sprintf("%.1f", f.Curves[0].Points[i].TotalRate)}
			for _, c := range f.Curves {
				cell := formatY(c.Points[i].Y)
				if hw := c.Points[i].HalfWidth; hw > 0 && !math.IsInf(c.Points[i].Y, 0) {
					cell += fmt.Sprintf("±%s", formatY(hw))
				}
				row = append(row, cell)
			}
			fmt.Fprintln(tw, strings.Join(row, "\t"))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

func formatY(y float64) string {
	switch {
	case math.IsInf(y, 1):
		return "inf"
	case y >= 100:
		return fmt.Sprintf("%.0f", y)
	default:
		return fmt.Sprintf("%.3f", y)
	}
}

// WriteCSV renders the figure in long form with the replication dispersion
// (sample stddev, 95% half-width) and the auxiliary measurements (throughput,
// ship fraction, aborts, utilizations — from the base-seed replication) per
// point.
func (f Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "figure,curve,rate_per_site,total_rate,y,stddev,ci95,replications,throughput,ship_fraction,mean_rt,aborts,util_local,util_central"); err != nil {
		return err
	}
	for _, c := range f.Curves {
		for _, p := range c.Points {
			r := p.Result
			reps := p.Replications
			if reps == 0 {
				reps = 1
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%g,%g,%g,%g,%g,%d,%g,%g,%g,%d,%g,%g\n",
				f.ID, c.Label, p.RatePerSite, p.TotalRate, p.Y, p.StdDev, p.HalfWidth, reps,
				r.Throughput, r.ShipFraction, r.MeanRT, r.TotalAborts(),
				r.UtilLocalMean, r.UtilCentral); err != nil {
				return err
			}
		}
	}
	return nil
}

// MaxThroughputRow is one line of the maximum-supportable-throughput table.
type MaxThroughputRow struct {
	Strategy string
	// MaxTPS is the largest swept total rate at which the mean response
	// time stays under the cutoff (§4.2 reads the knees of Figures 4.1 and
	// 4.2 this way).
	MaxTPS float64
	// RTAtMax is the mean response time at that rate.
	RTAtMax float64
}

// MaxThroughput estimates the paper's "maximum transaction rate supportable"
// per strategy: the largest offered rate whose mean response time stays
// below cutoff seconds.
func MaxThroughput(opt Options, makers []StrategyMaker, cutoff float64) ([]MaxThroughputRow, error) {
	if cutoff <= 0 {
		return nil, fmt.Errorf("experiments: cutoff %v must be positive", cutoff)
	}
	curves, err := sweep(opt, makers, meanRT)
	if err != nil {
		return nil, err
	}
	rows := make([]MaxThroughputRow, 0, len(curves))
	for _, c := range curves {
		row := MaxThroughputRow{Strategy: c.Label}
		for _, p := range c.Points {
			if p.Y < cutoff && p.TotalRate > row.MaxTPS {
				row.MaxTPS = p.TotalRate
				row.RTAtMax = p.Y
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// StandardMakers returns every paper policy for summary tables.
func StandardMakers() []StrategyMaker {
	return []StrategyMaker{
		MakerNone(),
		MakerStaticOptimal(),
		MakerMeasuredRT(),
		MakerQueueLength(),
		MakerQueueThreshold(-0.2),
		MakerMinIncoming(routing.FromQueueLength),
		MakerMinIncoming(routing.FromInSystem),
		MakerMinAverage(routing.FromQueueLength),
		MakerMinAverage(routing.FromInSystem),
	}
}

// WritePlot renders the figure as an ASCII chart. Saturated points (infinite
// or huge response times) are clamped via a y-cap at a small multiple of the
// largest "healthy" value so the knees stay visible.
func (f Figure) WritePlot(w io.Writer) error {
	var chart plot.Chart
	chart.Title = fmt.Sprintf("Figure %s — %s", f.ID, f.Title)
	chart.XLabel = f.XLabel
	chart.YLabel = f.YLabel
	// Cap the y-axis at 4x the smallest curve maximum, so one saturated
	// baseline does not flatten every other curve.
	smallestMax := math.Inf(1)
	for _, c := range f.Curves {
		curveMax := 0.0
		for _, p := range c.Points {
			if !math.IsInf(p.Y, 0) && p.Y > curveMax {
				curveMax = p.Y
			}
		}
		if curveMax > 0 && curveMax < smallestMax {
			smallestMax = curveMax
		}
	}
	if !math.IsInf(smallestMax, 0) {
		chart.YMax = 4 * smallestMax
	}
	for _, c := range f.Curves {
		xs := make([]float64, len(c.Points))
		ys := make([]float64, len(c.Points))
		for i, p := range c.Points {
			xs[i], ys[i] = p.TotalRate, p.Y
		}
		if err := chart.Add(c.Label, xs, ys); err != nil {
			return err
		}
	}
	if err := chart.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}
