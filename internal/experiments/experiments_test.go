package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
)

// quickOptions keeps test sweeps small and fast.
func quickOptions() Options {
	base := hybrid.DefaultConfig()
	base.Warmup = 30
	base.Duration = 90
	return Options{Base: base, RatesPerSite: []float64{1.0, 2.5}}
}

func TestDefaultRatesSorted(t *testing.T) {
	rates := DefaultRates()
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			t.Fatalf("rates not increasing: %v", rates)
		}
	}
}

func TestFigure41ShapesAndLayout(t *testing.T) {
	fig, err := Figure41(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "4.1" {
		t.Errorf("ID = %q", fig.ID)
	}
	if len(fig.Curves) != 3 {
		t.Fatalf("curves = %d, want 3", len(fig.Curves))
	}
	for _, c := range fig.Curves {
		if len(c.Points) != 2 {
			t.Fatalf("curve %s has %d points", c.Label, len(c.Points))
		}
		for _, p := range c.Points {
			if p.Y <= 0 || math.IsNaN(p.Y) {
				t.Errorf("curve %s point %v has bad Y %v", c.Label, p.TotalRate, p.Y)
			}
		}
	}
	// At 25 tps the baseline must be worse than the best dynamic strategy.
	none := fig.Curves[0].Points[1].Y
	best := fig.Curves[2].Points[1].Y
	if best >= none {
		t.Errorf("best dynamic (%v) not better than none (%v) at 25 tps", best, none)
	}
}

func TestFigure42CurveSet(t *testing.T) {
	fig, err := Figure42(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"measured-rt", "queue-length",
		"min-incoming/ql", "min-incoming/nis",
		"min-average/ql", "min-average/nis",
	}
	if len(fig.Curves) != len(want) {
		t.Fatalf("curves = %d, want %d", len(fig.Curves), len(want))
	}
	for i, c := range fig.Curves {
		if c.Label != want[i] {
			t.Errorf("curve %d = %q, want %q", i, c.Label, want[i])
		}
	}
}

func TestFigure43ShipFractionsInRange(t *testing.T) {
	fig, err := Figure43(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range fig.Curves {
		for _, p := range c.Points {
			if p.Y < 0 || p.Y > 1 {
				t.Errorf("curve %s ship fraction %v out of [0,1]", c.Label, p.Y)
			}
		}
	}
}

func TestFigure45UsesLongDelay(t *testing.T) {
	fig, err := Figure45(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Class B transactions always traverse the network, so with D=0.5
	// even the low-load mean RT must exceed the 4-hop floor contribution:
	// 25% of transactions pay >= 2.0s, so the mean is >= 0.5s and well
	// above the D=0.2 equivalent.
	short, err := Figure41(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fig.Curves[0].Points[0].Y <= short.Curves[0].Points[0].Y {
		t.Errorf("D=0.5 low-load RT (%v) not above D=0.2 (%v)",
			fig.Curves[0].Points[0].Y, short.Curves[0].Points[0].Y)
	}
}

func TestAllRunsEveryFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure set in -short mode")
	}
	opt := quickOptions()
	opt.RatesPerSite = []float64{1.5}
	figs, err := All(opt)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"4.1", "4.2", "4.3", "4.4", "4.5", "4.6", "4.7"}
	if len(figs) != len(wantIDs) {
		t.Fatalf("figures = %d, want %d", len(figs), len(wantIDs))
	}
	for i, f := range figs {
		if f.ID != wantIDs[i] {
			t.Errorf("figure %d = %s, want %s", i, f.ID, wantIDs[i])
		}
	}
}

func TestWriteTable(t *testing.T) {
	fig := Figure{
		ID: "9.9", Title: "test", XLabel: "tps", YLabel: "rt",
		Curves: []Curve{
			{Label: "a", Points: []Point{{TotalRate: 5, Y: 0.5}, {TotalRate: 10, Y: math.Inf(1)}}},
			{Label: "b", Points: []Point{{TotalRate: 5, Y: 123.4}, {TotalRate: 10, Y: 1}}},
		},
	}
	var buf bytes.Buffer
	if err := fig.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 9.9", "tps", "a", "b", "0.500", "inf", "123"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	opt := quickOptions()
	opt.RatesPerSite = []float64{1.0}
	fig, err := Figure41(opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header plus one line per curve point.
	if len(lines) != 1+3 {
		t.Fatalf("CSV has %d lines, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "figure,curve,") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestMaxThroughputOrdering(t *testing.T) {
	opt := quickOptions()
	opt.RatesPerSite = []float64{1.0, 2.0, 2.8, 3.2}
	rows, err := MaxThroughput(opt, []StrategyMaker{
		MakerNone(),
		MakerMinAverage(routing.FromInSystem),
	}, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].MaxTPS <= rows[0].MaxTPS {
		t.Errorf("best dynamic max tps (%v) not above none (%v)",
			rows[1].MaxTPS, rows[0].MaxTPS)
	}
}

func TestMaxThroughputRejectsBadCutoff(t *testing.T) {
	if _, err := MaxThroughput(quickOptions(), StandardMakers()[:1], 0); err == nil {
		t.Fatal("zero cutoff accepted")
	}
}

func TestStandardMakersBuildable(t *testing.T) {
	cfg := hybrid.DefaultConfig()
	for _, mk := range StandardMakers() {
		s, err := mk.Make(cfg)
		if err != nil {
			t.Errorf("%s: %v", mk.Label, err)
			continue
		}
		if s == nil {
			t.Errorf("%s: nil strategy", mk.Label)
		}
	}
}

func TestAblationWriteMix(t *testing.T) {
	base := hybrid.DefaultConfig()
	base.Warmup, base.Duration = 20, 60
	base.ArrivalRatePerSite = 2.0
	rows, err := AblationWriteMix(base, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].BestAborts != 0 {
		t.Errorf("read-only ablation has %d aborts", rows[0].BestAborts)
	}
	if rows[1].BestAborts == 0 {
		t.Errorf("write-heavy ablation has no aborts")
	}
}

func TestAblationIOTimeDefaults(t *testing.T) {
	base := hybrid.DefaultConfig()
	base.Warmup, base.Duration = 20, 50
	base.ArrivalRatePerSite = 1.0
	rows, err := AblationIOTime(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 defaults", len(rows))
	}
}

func TestAblationFeedback(t *testing.T) {
	base := hybrid.DefaultConfig()
	base.Warmup, base.Duration = 20, 60
	base.ArrivalRatePerSite = 2.0
	rows, err := AblationFeedback(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 modes", len(rows))
	}
	for _, r := range rows {
		if r.BestRT <= 0 {
			t.Errorf("%s: RT %v", r.Label, r.BestRT)
		}
	}
}

func TestAblationBatching(t *testing.T) {
	base := hybrid.DefaultConfig()
	base.Warmup, base.Duration = 20, 80
	base.ArrivalRatePerSite = 2.0
	base.UpdateProcInstr = 60_000
	rows, err := AblationBatching(base, []float64{0, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Messages >= rows[0].Messages {
		t.Errorf("batching did not cut messages: %d -> %d", rows[0].Messages, rows[1].Messages)
	}
}

func TestWritePlot(t *testing.T) {
	opt := quickOptions()
	opt.RatesPerSite = []float64{1.0, 2.5}
	fig, err := Figure41(opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fig.WritePlot(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 4.1", "A = none", "C = min-average/nis"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}
