package experiments

import (
	"fmt"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
)

// AblationRow is one configuration point of an ablation sweep: the same
// offered load run under the no-sharing baseline and the best dynamic
// strategy, reporting how the design choice under study moves the gap.
type AblationRow struct {
	Label       string
	BaselineRT  float64 // no load sharing
	BestRT      float64 // min-average/nis
	Improvement float64 // BaselineRT / BestRT
	BestShip    float64
	BestAborts  uint64
}

func ablationPoint(cfg hybrid.Config, label string) (AblationRow, error) {
	row := AblationRow{Label: label}

	base, err := hybrid.New(cfg, routing.AlwaysLocal{})
	if err != nil {
		return row, err
	}
	rb := base.Run()
	row.BaselineRT = rb.MeanRT

	best, err := hybrid.New(cfg, routing.MinAverage{
		Params:    cfg.ModelParams(),
		Estimator: routing.FromInSystem,
	})
	if err != nil {
		return row, err
	}
	rd := best.Run()
	row.BestRT = rd.MeanRT
	row.BestShip = rd.ShipFraction
	row.BestAborts = rd.TotalAborts()
	if rd.MeanRT > 0 {
		row.Improvement = rb.MeanRT / rd.MeanRT
	}
	return row, nil
}

// AblationWriteMix sweeps the exclusive-lock probability. The paper's trace
// fixed this value; the sweep demonstrates that the policy ranking is not an
// artifact of our substituted default (DESIGN.md §5).
func AblationWriteMix(base hybrid.Config, mixes []float64) ([]AblationRow, error) {
	if len(mixes) == 0 {
		mixes = []float64{0, 0.1, 0.25, 0.5, 0.75}
	}
	rows := make([]AblationRow, 0, len(mixes))
	for _, m := range mixes {
		cfg := base
		cfg.PWrite = m
		row, err := ablationPoint(cfg, fmt.Sprintf("PWrite=%.2f", m))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationIOTime sweeps the per-call I/O time around the substituted 25 ms
// default.
func AblationIOTime(base hybrid.Config, ioTimes []float64) ([]AblationRow, error) {
	if len(ioTimes) == 0 {
		ioTimes = []float64{0.010, 0.025, 0.050}
	}
	rows := make([]AblationRow, 0, len(ioTimes))
	for _, io := range ioTimes {
		cfg := base
		cfg.IOTimePerCall = io
		row, err := ablationPoint(cfg, fmt.Sprintf("IO=%.0fms", io*1000))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationFeedback compares the central-state feedback modes under the
// queue-length heuristic, quantifying the cost of delayed information
// (§4.2's ideal-case discussion).
func AblationFeedback(base hybrid.Config) ([]AblationRow, error) {
	modes := []hybrid.Feedback{
		hybrid.FeedbackAuthOnly,
		hybrid.FeedbackAllMessages,
		hybrid.FeedbackIdeal,
	}
	rows := make([]AblationRow, 0, len(modes))
	for _, mode := range modes {
		cfg := base
		cfg.Feedback = mode
		row := AblationRow{Label: "feedback=" + mode.String()}

		baseline, err := hybrid.New(cfg, routing.AlwaysLocal{})
		if err != nil {
			return nil, err
		}
		row.BaselineRT = baseline.Run().MeanRT

		engine, err := hybrid.New(cfg, routing.QueueLength{})
		if err != nil {
			return nil, err
		}
		r := engine.Run()
		row.BestRT = r.MeanRT
		row.BestShip = r.ShipFraction
		row.BestAborts = r.TotalAborts()
		if r.MeanRT > 0 {
			row.Improvement = row.BaselineRT / r.MeanRT
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BatchingRow is one point of the update-batching sweep.
type BatchingRow struct {
	Window       float64 // batch window, seconds (0 = unbatched)
	MeanRT       float64
	Messages     uint64
	NACKs        uint64
	UtilCentral  float64
	ShipFraction float64
}

// AblationBatching sweeps the asynchronous-update batch window (§2:
// batching "to reduce the overheads involved"), reporting the message
// savings against the NACK-rate cost of longer coherence windows. Run it
// with base.UpdateProcInstr > 0 to also see the central CPU relief.
func AblationBatching(base hybrid.Config, windows []float64) ([]BatchingRow, error) {
	if len(windows) == 0 {
		windows = []float64{0, 0.2, 0.5, 1.0}
	}
	rows := make([]BatchingRow, 0, len(windows))
	for _, w := range windows {
		cfg := base
		cfg.UpdateBatchWindow = w
		engine, err := hybrid.New(cfg, routing.MinAverage{
			Params:    cfg.ModelParams(),
			Estimator: routing.FromInSystem,
		})
		if err != nil {
			return nil, err
		}
		r := engine.Run()
		rows = append(rows, BatchingRow{
			Window:       w,
			MeanRT:       r.MeanRT,
			Messages:     r.MessagesSent,
			NACKs:        r.AbortsCentralNACK,
			UtilCentral:  r.UtilCentral,
			ShipFraction: r.ShipFraction,
		})
	}
	return rows, nil
}
