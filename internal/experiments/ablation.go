package experiments

import (
	"fmt"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
	"hybriddb/internal/runner"
)

// AblationRow is one configuration point of an ablation sweep: the same
// offered load run under the no-sharing baseline and the best dynamic
// strategy, reporting how the design choice under study moves the gap.
type AblationRow struct {
	Label       string
	BaselineRT  float64 // no load sharing
	BestRT      float64 // min-average/nis
	Improvement float64 // BaselineRT / BestRT
	BestShip    float64
	BestAborts  uint64
}

func makeAlwaysLocal(hybrid.Config) (routing.Strategy, error) {
	return routing.AlwaysLocal{}, nil
}

func makeMinAverageNIS(cfg hybrid.Config) (routing.Strategy, error) {
	return routing.MinAverage{
		Params:    cfg.ModelParams(),
		Estimator: routing.FromInSystem,
	}, nil
}

// ablationRows runs every configuration's baseline and best-dynamic pair in
// one fan-out across the worker pool and assembles the rows in input order.
func ablationRows(cfgs []hybrid.Config, labels []string, best runner.Task) ([]AblationRow, error) {
	tasks := make([]runner.Task, 0, 2*len(cfgs))
	for i, cfg := range cfgs {
		baseline := runner.Task{Label: labels[i] + " baseline", Cfg: cfg, Make: makeAlwaysLocal}
		contender := best
		contender.Label = labels[i] + " " + best.Label
		contender.Cfg = cfg
		tasks = append(tasks, baseline, contender)
	}
	results, err := runner.Run(tasks, 0)
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, len(cfgs))
	for i := range cfgs {
		rb, rd := results[2*i], results[2*i+1]
		rows[i] = AblationRow{
			Label:      labels[i],
			BaselineRT: rb.MeanRT,
			BestRT:     rd.MeanRT,
			BestShip:   rd.ShipFraction,
			BestAborts: rd.TotalAborts(),
		}
		if rd.MeanRT > 0 {
			rows[i].Improvement = rb.MeanRT / rd.MeanRT
		}
	}
	return rows, nil
}

func bestDynamicTask() runner.Task {
	return runner.Task{Label: "min-average/nis", Make: makeMinAverageNIS}
}

// AblationWriteMix sweeps the exclusive-lock probability. The paper's trace
// fixed this value; the sweep demonstrates that the policy ranking is not an
// artifact of our substituted default (DESIGN.md §5).
func AblationWriteMix(base hybrid.Config, mixes []float64) ([]AblationRow, error) {
	if len(mixes) == 0 {
		mixes = []float64{0, 0.1, 0.25, 0.5, 0.75}
	}
	cfgs := make([]hybrid.Config, len(mixes))
	labels := make([]string, len(mixes))
	for i, m := range mixes {
		cfg := base
		cfg.PWrite = m
		cfgs[i] = cfg
		labels[i] = fmt.Sprintf("PWrite=%.2f", m)
	}
	return ablationRows(cfgs, labels, bestDynamicTask())
}

// AblationIOTime sweeps the per-call I/O time around the substituted 25 ms
// default.
func AblationIOTime(base hybrid.Config, ioTimes []float64) ([]AblationRow, error) {
	if len(ioTimes) == 0 {
		ioTimes = []float64{0.010, 0.025, 0.050}
	}
	cfgs := make([]hybrid.Config, len(ioTimes))
	labels := make([]string, len(ioTimes))
	for i, io := range ioTimes {
		cfg := base
		cfg.IOTimePerCall = io
		cfgs[i] = cfg
		labels[i] = fmt.Sprintf("IO=%.0fms", io*1000)
	}
	return ablationRows(cfgs, labels, bestDynamicTask())
}

// AblationFeedback compares the central-state feedback modes under the
// queue-length heuristic, quantifying the cost of delayed information
// (§4.2's ideal-case discussion).
func AblationFeedback(base hybrid.Config) ([]AblationRow, error) {
	modes := []hybrid.Feedback{
		hybrid.FeedbackAuthOnly,
		hybrid.FeedbackAllMessages,
		hybrid.FeedbackIdeal,
	}
	cfgs := make([]hybrid.Config, len(modes))
	labels := make([]string, len(modes))
	for i, mode := range modes {
		cfg := base
		cfg.Feedback = mode
		cfgs[i] = cfg
		labels[i] = "feedback=" + mode.String()
	}
	return ablationRows(cfgs, labels, runner.Task{
		Label: "queue-length",
		Make: func(hybrid.Config) (routing.Strategy, error) {
			return routing.QueueLength{}, nil
		},
	})
}

// BatchingRow is one point of the update-batching sweep.
type BatchingRow struct {
	Window       float64 // batch window, seconds (0 = unbatched)
	MeanRT       float64
	Messages     uint64
	NACKs        uint64
	UtilCentral  float64
	ShipFraction float64
}

// AblationBatching sweeps the asynchronous-update batch window (§2:
// batching "to reduce the overheads involved"), reporting the message
// savings against the NACK-rate cost of longer coherence windows. Run it
// with base.UpdateProcInstr > 0 to also see the central CPU relief.
func AblationBatching(base hybrid.Config, windows []float64) ([]BatchingRow, error) {
	if len(windows) == 0 {
		windows = []float64{0, 0.2, 0.5, 1.0}
	}
	tasks := make([]runner.Task, len(windows))
	for i, w := range windows {
		cfg := base
		cfg.UpdateBatchWindow = w
		tasks[i] = runner.Task{
			Label: fmt.Sprintf("batch window %gs", w),
			Cfg:   cfg,
			Make:  makeMinAverageNIS,
		}
	}
	results, err := runner.Run(tasks, 0)
	if err != nil {
		return nil, err
	}
	rows := make([]BatchingRow, len(windows))
	for i, r := range results {
		rows[i] = BatchingRow{
			Window:       windows[i],
			MeanRT:       r.MeanRT,
			Messages:     r.MessagesSent,
			NACKs:        r.AbortsCentralNACK,
			UtilCentral:  r.UtilCentral,
			ShipFraction: r.ShipFraction,
		}
	}
	return rows, nil
}
