package experiments

import (
	"fmt"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
	"hybriddb/internal/runner"
)

// The paper's conclusion names the factors the tuned threshold depends on:
// "communications delay, MIPS at local and central site, fraction of local
// transactions, and number of local systems". These sweeps quantify that
// dependence — and the robustness of the model-based strategy to the same
// factors — beyond the two delay points of Figures 4.4 and 4.7.

// SensitivityRow is one configuration point of a sensitivity sweep: the best
// threshold found for the queue-length heuristic at that point, and how the
// tuning-free best dynamic strategy compares.
type SensitivityRow struct {
	Label         string
	BestTheta     float64 // argmin over the candidate thresholds
	BestThetaRT   float64 // mean RT at that threshold
	BestDynamicRT float64 // mean RT of min-average/nis, untuned
}

// candidateThetas spans the range the paper explores.
func candidateThetas() []float64 {
	return []float64{-0.3, -0.2, -0.1, 0, 0.1, 0.2}
}

// sensitivityPoint tunes the threshold heuristic at one configuration and
// runs the reference dynamic strategy. The candidate thresholds and the
// reference run are independent simulations, so they fan across the worker
// pool; the argmin scan stays in candidate order, so ties resolve exactly as
// they did serially.
func sensitivityPoint(cfg hybrid.Config, label string) (SensitivityRow, error) {
	row := SensitivityRow{Label: label, BestThetaRT: -1}
	thetas := candidateThetas()
	tasks := make([]runner.Task, 0, len(thetas)+1)
	for _, theta := range thetas {
		theta := theta
		tasks = append(tasks, runner.Task{
			Label: fmt.Sprintf("%s theta %+.1f", label, theta),
			Cfg:   cfg,
			Make: func(hybrid.Config) (routing.Strategy, error) {
				return routing.QueueThreshold{Theta: theta}, nil
			},
		})
	}
	tasks = append(tasks, runner.Task{
		Label: label + " min-average/nis",
		Cfg:   cfg,
		Make: func(cfg hybrid.Config) (routing.Strategy, error) {
			return routing.MinAverage{
				Params:    cfg.ModelParams(),
				Estimator: routing.FromInSystem,
			}, nil
		},
	})
	results, err := runner.Run(tasks, 0)
	if err != nil {
		return row, err
	}
	for i, theta := range thetas {
		if r := results[i]; row.BestThetaRT < 0 || r.MeanRT < row.BestThetaRT {
			row.BestThetaRT = r.MeanRT
			row.BestTheta = theta
		}
	}
	row.BestDynamicRT = results[len(thetas)].MeanRT
	return row, nil
}

// SensitivitySites sweeps the number of local systems at a fixed total
// offered rate (so each configuration faces the same aggregate load and the
// central site sees an identical class B stream).
func SensitivitySites(base hybrid.Config, siteCounts []int, totalRate float64) ([]SensitivityRow, error) {
	if len(siteCounts) == 0 {
		siteCounts = []int{5, 10, 20}
	}
	if totalRate <= 0 {
		return nil, fmt.Errorf("experiments: total rate %v", totalRate)
	}
	rows := make([]SensitivityRow, 0, len(siteCounts))
	for _, n := range siteCounts {
		cfg := base
		cfg.Sites = n
		cfg.ArrivalRatePerSite = totalRate / float64(n)
		row, err := sensitivityPoint(cfg, fmt.Sprintf("sites=%d", n))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SensitivityMIPS sweeps the central processor speed.
func SensitivityMIPS(base hybrid.Config, centralMIPS []float64) ([]SensitivityRow, error) {
	if len(centralMIPS) == 0 {
		centralMIPS = []float64{5, 15, 30}
	}
	rows := make([]SensitivityRow, 0, len(centralMIPS))
	for _, m := range centralMIPS {
		cfg := base
		cfg.CentralMIPS = m
		row, err := sensitivityPoint(cfg, fmt.Sprintf("centralMIPS=%g", m))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SensitivityPLocal sweeps the class A fraction.
func SensitivityPLocal(base hybrid.Config, fractions []float64) ([]SensitivityRow, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.5, 0.75, 0.9}
	}
	rows := make([]SensitivityRow, 0, len(fractions))
	for _, p := range fractions {
		cfg := base
		cfg.PLocal = p
		row, err := sensitivityPoint(cfg, fmt.Sprintf("pLocal=%.2f", p))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
