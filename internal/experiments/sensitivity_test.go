package experiments

import (
	"testing"

	"hybriddb/internal/hybrid"
)

func sensitivityBase() hybrid.Config {
	cfg := hybrid.DefaultConfig()
	cfg.Warmup, cfg.Duration = 20, 80
	cfg.ArrivalRatePerSite = 2.0
	return cfg
}

func TestSensitivitySites(t *testing.T) {
	rows, err := SensitivitySites(sensitivityBase(), []int{5, 10}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BestThetaRT <= 0 || r.BestDynamicRT <= 0 {
			t.Errorf("%s: RTs %v / %v", r.Label, r.BestThetaRT, r.BestDynamicRT)
		}
		// The tuned heuristic may tie but should not dramatically beat the
		// model-based strategy anywhere in the sweep.
		if r.BestDynamicRT > r.BestThetaRT*1.3 {
			t.Errorf("%s: dynamic %v far above tuned threshold %v",
				r.Label, r.BestDynamicRT, r.BestThetaRT)
		}
	}
}

func TestSensitivitySitesRejectsBadRate(t *testing.T) {
	if _, err := SensitivitySites(sensitivityBase(), nil, 0); err == nil {
		t.Fatal("zero total rate accepted")
	}
}

func TestSensitivityMIPS(t *testing.T) {
	rows, err := SensitivityMIPS(sensitivityBase(), []float64{5, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A slower central site shifts the optimal threshold upward (shipping
	// is less attractive), and never downward past the fast-central case.
	if rows[0].BestTheta < rows[1].BestTheta {
		t.Errorf("slow central theta %v below fast central theta %v",
			rows[0].BestTheta, rows[1].BestTheta)
	}
}

func TestSensitivityPLocalDefaults(t *testing.T) {
	cfg := sensitivityBase()
	cfg.Warmup, cfg.Duration = 15, 50
	rows, err := SensitivityPLocal(cfg, []float64{0.6, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}
