package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"hybriddb/internal/hybrid"
)

func TestModelValidationAccurateAtModerateLoad(t *testing.T) {
	base := hybrid.DefaultConfig()
	base.Warmup, base.Duration = 50, 300
	opt := Options{Base: base, RatesPerSite: []float64{0.5, 1.0, 1.5}}
	rows, err := ModelValidation(opt, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.IsInf(r.RelErr, 1) {
			t.Errorf("rate %v saturated unexpectedly", r.RatePerSite)
			continue
		}
		// The §3.1 model should predict these uncontended-to-moderate
		// points within 20%.
		if r.RelErr > 0.20 {
			t.Errorf("rate %v: model %v vs sim %v (err %.1f%%)",
				r.RatePerSite, r.ModelRT, r.SimRT, 100*r.RelErr)
		}
		// Utilization predictions should be close too.
		if math.Abs(r.ModelUtilL-r.SimUtilL) > 0.08 {
			t.Errorf("rate %v: local util model %v vs sim %v",
				r.RatePerSite, r.ModelUtilL, r.SimUtilL)
		}
	}
}

func TestModelValidationRejectsBadPShip(t *testing.T) {
	if _, err := ModelValidation(quickOptions(), 1.5); err == nil {
		t.Fatal("pShip > 1 accepted")
	}
}

func TestWriteValidation(t *testing.T) {
	rows := []ValidationRow{
		{RatePerSite: 1, PShip: 0.3, ModelRT: 1.0, SimRT: 1.05, RelErr: 0.048},
		{RatePerSite: 3.4, PShip: 0.3, RelErr: math.Inf(1)},
	}
	var buf bytes.Buffer
	if err := WriteValidation(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4.8%") {
		t.Errorf("relative error missing:\n%s", out)
	}
	if !strings.Contains(out, "sat") {
		t.Errorf("saturation marker missing:\n%s", out)
	}
}
