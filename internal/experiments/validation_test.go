package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"hybriddb/internal/hybrid"
)

func TestModelValidationAccurateAtModerateLoad(t *testing.T) {
	base := hybrid.DefaultConfig()
	base.Warmup, base.Duration = 50, 300
	opt := Options{Base: base, RatesPerSite: []float64{0.5, 1.0, 1.5}}
	rows, err := ModelValidation(opt, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Status != ValidationOK {
			t.Errorf("rate %v: status %v, want ok", r.RatePerSite, r.Status)
			continue
		}
		// The §3.1 model should predict these uncontended-to-moderate
		// points within 20%.
		if r.RelErr > 0.20 {
			t.Errorf("rate %v: model %v vs sim %v (err %.1f%%)",
				r.RatePerSite, r.ModelRT, r.SimRT, 100*r.RelErr)
		}
		// Utilization predictions should be close too.
		if math.Abs(r.ModelUtilL-r.SimUtilL) > 0.08 {
			t.Errorf("rate %v: local util model %v vs sim %v",
				r.RatePerSite, r.ModelUtilL, r.SimUtilL)
		}
	}
}

func TestModelValidationRejectsBadPShip(t *testing.T) {
	if _, err := ModelValidation(quickOptions(), 1.5); err == nil {
		t.Fatal("pShip > 1 accepted")
	}
}

func TestWriteValidation(t *testing.T) {
	rows := []ValidationRow{
		{RatePerSite: 1, PShip: 0.3, ModelRT: 1.0, SimRT: 1.05, RelErr: 0.048, Status: ValidationOK},
		{RatePerSite: 3.4, PShip: 0.3, RelErr: math.NaN(), Status: ValidationModelSaturated},
		{RatePerSite: 3.8, PShip: 0.3, ModelRT: 9.9, RelErr: math.NaN(), Status: ValidationSimDegenerate},
	}
	var buf bytes.Buffer
	if err := WriteValidation(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4.8%") {
		t.Errorf("relative error missing:\n%s", out)
	}
	if !strings.Contains(out, "model-saturated") {
		t.Errorf("model saturation sentinel missing:\n%s", out)
	}
	if !strings.Contains(out, "sim-degenerate") {
		t.Errorf("sim degeneracy sentinel missing:\n%s", out)
	}
}

// TestModelValidationSaturatedRowIsNamed pins the RelErr contract at a
// saturating operating point: the row carries a named status and RelErr is
// NaN — not +Inf that a band comparison would silently propagate.
func TestModelValidationSaturatedRowIsNamed(t *testing.T) {
	base := hybrid.DefaultConfig()
	base.Warmup, base.Duration = 20, 80
	// 4.0 tps/site at p_ship=0 drives local utilization past 1 in the model.
	rows, err := ModelValidation(Options{Base: base, RatesPerSite: []float64{4.0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Status != ValidationModelSaturated {
		t.Fatalf("status = %v, want model-saturated (model util L %v)", r.Status, r.ModelUtilL)
	}
	if !math.IsNaN(r.RelErr) {
		t.Errorf("RelErr = %v, want NaN on a saturated row", r.RelErr)
	}
}
