package experiments

import (
	"math"
	"reflect"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
	"hybriddb/internal/runner"
	"hybriddb/internal/stats"
)

// serialSweep is the pre-runner reference implementation: one goroutine, one
// engine at a time, in (strategy, rate, replication) order, using the same
// seed schedule as the parallel path. The determinism regression below holds
// the parallel runner to bit-identical agreement with it.
func serialSweep(opt Options, makers []StrategyMaker, y func(hybrid.Result) float64) ([]Curve, error) {
	reps := opt.replications()
	curves := make([]Curve, 0, len(makers))
	for _, mk := range makers {
		curve := Curve{Label: mk.Label}
		for ri, rate := range opt.rates() {
			p := Point{
				RatePerSite:  rate,
				TotalRate:    rate * float64(opt.Base.Sites),
				Replications: reps,
			}
			var w stats.Welford
			for rep := 0; rep < reps; rep++ {
				cfg := opt.Base
				cfg.ArrivalRatePerSite = rate
				cfg.Seed = runner.RunSeed(opt.Base.Seed, mk.Label, ri, rep)
				strat, err := mk.Make(cfg)
				if err != nil {
					return nil, err
				}
				engine, err := hybrid.New(cfg, strat)
				if err != nil {
					return nil, err
				}
				res := engine.Run()
				p.Results = append(p.Results, res)
				w.Add(y(res))
			}
			p.Result = p.Results[0]
			if reps == 1 {
				p.Y = y(p.Result)
			} else {
				p.Y = w.Mean()
				p.StdDev = w.StdDev()
				p.HalfWidth = w.CI95()
			}
			curve.Points = append(curve.Points, p)
		}
		curves = append(curves, curve)
	}
	return curves, nil
}

func determinismOptions() Options {
	base := hybrid.DefaultConfig()
	base.Warmup = 10
	base.Duration = 40
	base.Seed = 7
	return Options{
		Base:         base,
		RatesPerSite: []float64{1.0, 2.5},
		Replications: 3,
	}
}

// TestSweepDeterministicAcrossParallelism is the determinism regression: the
// same Options through the serial reference path and through the parallel
// runner at Parallelism 1, 4 and 16 must produce bit-identical curves —
// same seeds, same curves, independent of worker count and scheduling order.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	makers := []StrategyMaker{
		MakerNone(),
		MakerQueueLength(),
		MakerMinAverage(routing.FromInSystem),
	}
	want, err := serialSweep(determinismOptions(), makers, meanRT)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallelism := range []int{1, 4, 16} {
		opt := determinismOptions()
		opt.Parallelism = parallelism
		got, err := sweep(opt, makers, meanRT)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism %d curves differ from the serial reference", parallelism)
		}
	}
}

// TestFigureDeterministicAcrossParallelism runs a full figure driver at
// several worker counts and asserts bit-identical Figure output.
func TestFigureDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) Figure {
		opt := determinismOptions()
		opt.Replications = 2
		opt.Parallelism = parallelism
		fig, err := Figure42(opt)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return fig
	}
	want := run(1)
	for _, parallelism := range []int{4, 16} {
		if got := run(parallelism); !reflect.DeepEqual(want, got) {
			t.Fatalf("Figure 4.2 at parallelism %d differs from parallelism 1", parallelism)
		}
	}
}

// TestSingleReplicationMatchesHistoricalPath checks the backward-compatibility
// contract: Replications 1 (and 0) reproduces the historical single-run sweep
// exactly — every run on the unmodified base seed.
func TestSingleReplicationMatchesHistoricalPath(t *testing.T) {
	opt := determinismOptions()
	opt.Replications = 1
	makers := []StrategyMaker{MakerNone(), MakerQueueLength()}

	curves, err := sweep(opt, makers, meanRT)
	if err != nil {
		t.Fatal(err)
	}
	for mi, mk := range makers {
		for pi, rate := range opt.rates() {
			// The historical path: one engine, base seed untouched.
			cfg := opt.Base
			cfg.ArrivalRatePerSite = rate
			strat, err := mk.Make(cfg)
			if err != nil {
				t.Fatal(err)
			}
			engine, err := hybrid.New(cfg, strat)
			if err != nil {
				t.Fatal(err)
			}
			want := engine.Run()
			p := curves[mi].Points[pi]
			if p.Y != want.MeanRT {
				t.Errorf("%s at rate %v: Y = %v, want single-run %v", mk.Label, rate, p.Y, want.MeanRT)
			}
			if !reflect.DeepEqual(p.Result, want) {
				t.Errorf("%s at rate %v: Result differs from the single-run path", mk.Label, rate)
			}
			if p.StdDev != 0 || p.HalfWidth != 0 {
				t.Errorf("%s at rate %v: single replication has dispersion %v/%v", mk.Label, rate, p.StdDev, p.HalfWidth)
			}
		}
	}
}

// TestReplicatedPointAggregation checks each Point's mean/stddev/half-width
// against a direct hand computation over its per-replication results.
func TestReplicatedPointAggregation(t *testing.T) {
	opt := determinismOptions()
	opt.Replications = 4
	curves, err := sweep(opt, []StrategyMaker{MakerQueueLength()}, meanRT)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range curves[0].Points {
		if p.Replications != 4 || len(p.Results) != 4 {
			t.Fatalf("point carries %d/%d replications, want 4", p.Replications, len(p.Results))
		}
		n := float64(len(p.Results))
		var sum float64
		for _, r := range p.Results {
			sum += r.MeanRT
		}
		mean := sum / n
		var ss float64
		for _, r := range p.Results {
			d := r.MeanRT - mean
			ss += d * d
		}
		sd := math.Sqrt(ss / (n - 1))
		hw := stats.TQuantile95(len(p.Results)-1) * sd / math.Sqrt(n)
		if math.Abs(p.Y-mean) > 1e-12 {
			t.Errorf("Y = %v, want mean %v", p.Y, mean)
		}
		if math.Abs(p.StdDev-sd) > 1e-9 {
			t.Errorf("StdDev = %v, want %v", p.StdDev, sd)
		}
		if math.Abs(p.HalfWidth-hw) > 1e-9 {
			t.Errorf("HalfWidth = %v, want %v", p.HalfWidth, hw)
		}
		if p.StdDev == 0 {
			t.Error("distinct seeds produced zero dispersion across replications")
		}
		if !reflect.DeepEqual(p.Result, p.Results[0]) {
			t.Error("Result is not the first replication")
		}
	}
}
