package experiments

import (
	"strings"
	"testing"

	"hybriddb/internal/hybrid"
)

func TestParseStrategyAccepted(t *testing.T) {
	cfg := hybrid.DefaultConfig()
	tests := []struct {
		spec      string
		wantLabel string
	}{
		{"none", "none"},
		{"static", "static*"},
		{"static:0.4", "static(0.400)"},
		{"measured-rt", "measured-rt"},
		{"queue-length", "queue-length"},
		{"threshold:-0.2", "threshold(-0.2)"},
		{"threshold:0.1", "threshold(+0.1)"},
		{"min-incoming/ql", "min-incoming/ql"},
		{"min-incoming/nis", "min-incoming/nis"},
		{"min-average/ql", "min-average/ql"},
		{"min-average/nis", "min-average/nis"},
		{"best", "min-average/nis"},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			mk, err := ParseStrategy(tt.spec)
			if err != nil {
				t.Fatalf("ParseStrategy(%q): %v", tt.spec, err)
			}
			if mk.Label != tt.wantLabel {
				t.Errorf("label = %q, want %q", mk.Label, tt.wantLabel)
			}
			if _, err := mk.Make(cfg); err != nil {
				t.Errorf("Make: %v", err)
			}
		})
	}
}

func TestParseStrategyRejected(t *testing.T) {
	for _, spec := range []string{
		"", "unknown", "static:2", "static:x", "threshold", "threshold:abc",
		"min-average", "min-average/xyz",
	} {
		if _, err := ParseStrategy(spec); err == nil {
			t.Errorf("ParseStrategy(%q) accepted", spec)
		}
	}
}

func TestStrategyNamesParsable(t *testing.T) {
	for _, name := range StrategyNames() {
		spec := name
		// Placeholder forms in the help text.
		switch spec {
		case "static:P":
			spec = "static:0.5"
		case "threshold:T":
			spec = "threshold:-0.2"
		}
		if _, err := ParseStrategy(spec); err != nil {
			t.Errorf("help-listed name %q does not parse: %v", name, err)
		}
	}
}

// nameToSpec maps a strategy's self-reported Name() back to a ParseStrategy
// specification. Parameterized names render as "prefix(arg)"; the parser
// takes "prefix:arg".
func nameToSpec(t *testing.T, name string) string {
	t.Helper()
	open := strings.IndexByte(name, '(')
	if open < 0 {
		if name == "adaptive-static" {
			return "adaptive"
		}
		return name
	}
	if !strings.HasSuffix(name, ")") {
		t.Fatalf("malformed parameterized name %q", name)
	}
	prefix, arg := name[:open], name[open+1:len(name)-1]
	if prefix == "queue-threshold" {
		prefix = "threshold"
	}
	return prefix + ":" + arg
}

// TestStrategyNameRoundTrip checks that every strategy's Name() stays within
// the parser's vocabulary: parse a spec, build the strategy, derive a spec
// from its Name(), and re-parse — the rebuilt strategy must report the same
// name. This pins CLI flags, report labels, and golden-result strategy
// fields together.
func TestStrategyNameRoundTrip(t *testing.T) {
	cfg := hybrid.DefaultConfig()
	specs := []string{
		"none", "static:0.25", "adaptive", "measured-rt", "queue-length",
		"threshold:-0.2", "threshold:0.1",
		"min-incoming/ql", "min-incoming/nis",
		"min-average/ql", "min-average/nis", "best",
	}
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) {
			mk, err := ParseStrategy(spec)
			if err != nil {
				t.Fatal(err)
			}
			s, err := mk.Make(cfg)
			if err != nil {
				t.Fatal(err)
			}
			respec := nameToSpec(t, s.Name())
			mk2, err := ParseStrategy(respec)
			if err != nil {
				t.Fatalf("Name %q -> spec %q does not re-parse: %v", s.Name(), respec, err)
			}
			s2, err := mk2.Make(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if s2.Name() != s.Name() {
				t.Errorf("round trip changed name: %q -> %q", s.Name(), s2.Name())
			}
		})
	}
}
