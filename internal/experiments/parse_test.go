package experiments

import (
	"testing"

	"hybriddb/internal/hybrid"
)

func TestParseStrategyAccepted(t *testing.T) {
	cfg := hybrid.DefaultConfig()
	tests := []struct {
		spec      string
		wantLabel string
	}{
		{"none", "none"},
		{"static", "static*"},
		{"static:0.4", "static(0.400)"},
		{"measured-rt", "measured-rt"},
		{"queue-length", "queue-length"},
		{"threshold:-0.2", "threshold(-0.2)"},
		{"threshold:0.1", "threshold(+0.1)"},
		{"min-incoming/ql", "min-incoming/ql"},
		{"min-incoming/nis", "min-incoming/nis"},
		{"min-average/ql", "min-average/ql"},
		{"min-average/nis", "min-average/nis"},
		{"best", "min-average/nis"},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			mk, err := ParseStrategy(tt.spec)
			if err != nil {
				t.Fatalf("ParseStrategy(%q): %v", tt.spec, err)
			}
			if mk.Label != tt.wantLabel {
				t.Errorf("label = %q, want %q", mk.Label, tt.wantLabel)
			}
			if _, err := mk.Make(cfg); err != nil {
				t.Errorf("Make: %v", err)
			}
		})
	}
}

func TestParseStrategyRejected(t *testing.T) {
	for _, spec := range []string{
		"", "unknown", "static:2", "static:x", "threshold", "threshold:abc",
		"min-average", "min-average/xyz",
	} {
		if _, err := ParseStrategy(spec); err == nil {
			t.Errorf("ParseStrategy(%q) accepted", spec)
		}
	}
}

func TestStrategyNamesParsable(t *testing.T) {
	for _, name := range StrategyNames() {
		spec := name
		// Placeholder forms in the help text.
		switch spec {
		case "static:P":
			spec = "static:0.5"
		case "threshold:T":
			spec = "threshold:-0.2"
		}
		if _, err := ParseStrategy(spec); err != nil {
			t.Errorf("help-listed name %q does not parse: %v", name, err)
		}
	}
}
