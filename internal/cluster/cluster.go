// Package cluster is the live implementation of the hybrid transaction
// core: the same classify → route → lock → execute → commit → propagate
// state machine the simulator runs (internal/hybrid), executed by real
// processes over real TCP (DESIGN.md §13).
//
// Each node — a local site or the central complex — owns an exec.Loop, the
// wall-clock twin of a simulator shard: network receive goroutines decode
// frames and post handlers onto the loop, which runs them one at a time, so
// the lock tables, CPU queues, and per-transaction state need no locking,
// exactly as in the simulation. The substrates are shared with the
// simulator, not reimplemented: internal/lock for two-phase locking with
// seizure and coherence counts, internal/cpu for the FCFS processors (whose
// service completions are real timers here instead of virtual events),
// internal/routing for the ship-vs-local strategies, and internal/workload
// for transaction generation.
//
// The cluster runs in emulation mode: CPU bursts and I/O hold the real
// timers of their configured durations, and the configured one-way
// communication delay is emulated at the receiver of every inter-tier
// message (the sender's TCP latency rides inside it). That makes a loopback
// cluster's measured response times directly comparable to the simulator's
// predictions for the same hybrid.Config — the comparison the e2e test and
// the tolerance bands in testdata/tolerances.json enforce.
package cluster

import (
	"fmt"

	"hybriddb/internal/cpu"
	"hybriddb/internal/exec"
	"hybriddb/internal/hybrid"
)

// validate rejects configurations the live engine cannot honor.
func validate(cfg hybrid.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.RateSchedules != nil {
		return fmt.Errorf("cluster: rate schedules are a simulator feature; pace the load generator instead")
	}
	if cfg.Feedback == hybrid.FeedbackIdeal {
		return fmt.Errorf("cluster: ideal feedback requires synchronously readable remote state; a live cluster cannot provide it")
	}
	if cfg.UpdateBatchWindow > 0 {
		return fmt.Errorf("cluster: update batching not implemented in the live engine")
	}
	if cfg.EpochLength > 0 {
		return fmt.Errorf("cluster: epoch-batched propagation not implemented in the live engine")
	}
	return nil
}

// ioDelay performs one emulated I/O keyed to elem: a pure timer under the
// paper's assumption, or an FCFS wait at the disk holding the element when
// a disk bank is configured — the live twin of the simulator's scheduleIO.
func ioDelay(loop *exec.Loop, disks []*cpu.Server, elem uint32, seconds float64, done func()) {
	if len(disks) == 0 {
		loop.Schedule(seconds, done)
		return
	}
	disks[int(elem)%len(disks)].Submit(seconds*1e6, done)
}

// newDisks builds an emulated disk bank on the node's loop (unit-rate
// servers, like the simulator's).
func newDisks(loop *exec.Loop, n int) []*cpu.Server {
	if n <= 0 {
		return nil
	}
	disks := make([]*cpu.Server, n)
	for i := range disks {
		disks[i] = cpu.NewServer(loop, 1)
	}
	return disks
}

// deliver posts fn onto the loop after the configured one-way delay — the
// receiver-side emulation of the star network's link latency.
func deliver(loop *exec.Loop, delay float64, fn func()) {
	loop.Schedule(delay, fn)
}

// snapshotAge converts a received snapshot into the receiver's timebase:
// it was taken one emulated link delay ago. Keeping the two processes'
// clocks out of the protocol costs only the (sub-millisecond on loopback)
// real transport latency.
func snapshotAge(now, delay float64) float64 { return now - delay }
