//go:build !race

package cluster

// The closing gate of the transport-agnostic refactor: the live loopback
// cluster and the discrete-event simulator run the SAME configuration with
// the SAME routing strategy, and the measured mean response time and
// ship/local routing mix must agree within the versioned tolerance bands of
// testdata/tolerances.json. Excluded under the race detector (instrumented
// timers are far too slow to hold emulated service times) and in -short
// mode; `go test ./internal/cluster` runs it in full CI.

import (
	"context"
	"math"
	"testing"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
)

// loadClusterTolerances returns the embedded bands (the same ones
// hybridload's live drift gauge holds a run against).
func loadClusterTolerances(t *testing.T) Tolerances {
	t.Helper()
	tol, err := DefaultTolerances()
	if err != nil {
		t.Fatalf("tolerances: %v", err)
	}
	if len(tol.ThetaPoints) < 2 {
		t.Fatalf("tolerances underspecified: %+v", tol)
	}
	return tol
}

// diffConfig is the differential operating point: 4 sites, millisecond-
// scale service times (so wall-clock timer slop stays small relative to
// the RT), moderate utilization at both routing extremes.
func diffConfig() hybrid.Config {
	return hybrid.Config{
		Sites:              4,
		LocalMIPS:          1,
		CentralMIPS:        15,
		CommDelay:          0.02,
		ArrivalRatePerSite: 8,
		PLocal:             0.75,
		PWrite:             0.25,
		CallsPerTxn:        10,
		Lockspace:          32768,
		InstrPerCall:       3000,
		InstrOverhead:      15000,
		IOTimePerCall:      0.0025,
		SetupIOTime:        0.0035,
		RestartDelay:       0.01,
		Feedback:           hybrid.FeedbackAllMessages,
		Seed:               7,
		Warmup:             5,
		Duration:           60,
	}
}

// simPredict averages the simulator's prediction over a few seeds.
func simPredict(t *testing.T, cfg hybrid.Config, theta float64, reps int) (meanRT, shipFrac float64) {
	t.Helper()
	pred, err := PredictSim(cfg, func() (routing.Strategy, error) {
		return routing.QueueThreshold{Theta: theta}, nil
	}, reps)
	if err != nil {
		t.Fatalf("PredictSim: %v", err)
	}
	return pred.MeanRT, pred.ShipFraction
}

func TestClusterVsSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: the live differential needs multi-second paced runs")
	}
	tol := loadClusterTolerances(t)
	cfg := diffConfig()

	for _, theta := range tol.ThetaPoints {
		theta := theta
		t.Run(routing.QueueThreshold{Theta: theta}.Name(), func(t *testing.T) {
			simRT, simShip := simPredict(t, cfg, theta, tol.SimReplications)

			addrs, teardown := bootCluster(t, cfg, routing.QueueThreshold{Theta: theta})
			defer teardown()
			res, err := RunLoad(context.Background(), addrs, cfg, LoadOptions{
				Warmup:   1.5,
				Duration: 6,
				Ramp:     0.5,
				Threads:  2,
				Seed:     cfg.Seed + 99,
			})
			if err != nil {
				t.Fatalf("RunLoad: %v", err)
			}
			if res.Errors != 0 {
				t.Fatalf("%d request errors on loopback", res.Errors)
			}
			if res.Completed < 50 {
				t.Fatalf("only %d completions measured; window too small to compare", res.Completed)
			}

			relErr := math.Abs(res.MeanRT-simRT) / simRT
			shipErr := math.Abs(res.ShipFraction - simShip)
			t.Logf("θ=%+.1f: live meanRT %.1fms vs sim %.1fms (rel err %.3f ≤ %.3f); "+
				"live ship mix %.3f vs sim %.3f (abs err %.3f ≤ %.3f); %d completions",
				theta, res.MeanRT*1e3, simRT*1e3, relErr, tol.RTRelErrMax,
				res.ShipFraction, simShip, shipErr, tol.ShipFracAbsErrMax, res.Completed)
			if relErr > tol.RTRelErrMax {
				t.Errorf("mean RT diverges from the simulator: live %.4fs vs sim %.4fs (rel err %.3f > %.3f)",
					res.MeanRT, simRT, relErr, tol.RTRelErrMax)
			}
			if shipErr > tol.ShipFracAbsErrMax {
				t.Errorf("routing mix diverges from the simulator: live %.3f vs sim %.3f (abs err %.3f > %.3f)",
					res.ShipFraction, simShip, shipErr, tol.ShipFracAbsErrMax)
			}
		})
	}
}
