package cluster

// The live central computing complex: accepts site uplinks, executes
// shipped transactions, and runs the commit protocol of §2 — the
// authenticate/ack-nack phase against the master sites, seized-lock
// releases, asynchronous update application with invalidation, and the
// completion replies. The logic is the wall-clock twin of the simulator's
// centralPath / commitProtocol / propagator layers; every handler runs on
// the node's exec.Loop.

import (
	"net"
	"strconv"
	"sync"

	"hybriddb/internal/cpu"
	"hybriddb/internal/exec"
	"hybriddb/internal/hybrid"
	"hybriddb/internal/lock"
	"hybriddb/internal/netx"
	"hybriddb/internal/obsx/flight"
	"hybriddb/internal/obsx/logx"
	"hybriddb/internal/obsx/metrics"
	"hybriddb/internal/obsx/spans"
	"hybriddb/internal/workload"
)

// ctxn is the central-side runtime state of one transaction, the live twin
// of the simulator's txnRun in its shipped phase.
type ctxn struct {
	spec     *workload.Txn
	attempt  int
	marked   bool // invalidated by an asynchronous update (§2)
	traced   bool // span context propagated on the ship frame
	authOpen bool // an auth span is open in the trace

	authPending int
	authNACK    bool
	authSeized  []int
}

// CentralStats is a loop-consistent snapshot of the central node's state.
type CentralStats struct {
	ShipArrived    uint64
	Commits        uint64
	RepliesSent    uint64
	InSystem       int
	AuthRounds     uint64
	AbortsNACK     uint64
	AbortsInval    uint64
	AbortsDeadlock uint64
	UpdatesApplied uint64
	ColdFetches    uint64
}

// Central is the live central node.
type Central struct {
	cfg hybrid.Config
	wl  workload.Config

	loop  *exec.Loop
	cpu   *cpu.Server
	disks []*cpu.Server
	locks *lock.Manager

	inSystem int
	running  map[lock.ID]*ctxn

	// Partial-replication geometry, the live twin of the simulator
	// engine's partialRepl / partSize / hotPerPart (see Engine.isCold).
	partialRepl bool
	partSize    uint32
	hotPerPart  uint32

	// siteConns is written and read only on the loop.
	siteConns []*netx.Conn

	stats CentralStats

	log   logx.Logger
	reg   *metrics.Registry
	wm    *wireMetrics
	net   *netx.Stats
	fr    *flight.Recorder
	spans *spans.Recorder

	ln     net.Listener
	wg     sync.WaitGroup
	connMu sync.Mutex
	conns  map[*netx.Conn]struct{}
	closed bool
}

// StartCentral boots a central node listening on addr ("host:0" picks a
// free port; see Addr).
func StartCentral(cfg hybrid.Config, addr string) (*Central, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	loop := exec.NewLoop()
	reg := metrics.NewRegistry()
	c := &Central{
		cfg:       cfg,
		wl:        cfg.WorkloadConfig(),
		loop:      loop,
		cpu:       cpu.NewServer(loop, cfg.CentralMIPS),
		disks:     newDisks(loop, cfg.DisksCentral),
		locks:     lock.NewManager(),
		running:   make(map[lock.ID]*ctxn),
		siteConns: make([]*netx.Conn, cfg.Sites),
		log:       logx.New("central"),
		reg:       reg,
		wm:        newWireMetrics(reg),
		net:       &netx.Stats{},
		fr:        flight.NewRecorder("central", flightCapacity),
		spans:     spans.NewRecorder("central complex", spans.CentralPid, 0),
		ln:        ln,
		conns:     make(map[*netx.Conn]struct{}),
	}
	c.partSize = c.wl.PartitionSize()
	if cfg.CentralHotFraction < 1 {
		c.partialRepl = true
		c.hotPerPart = uint32(cfg.CentralHotFraction * float64(c.partSize))
	} else {
		c.hotPerPart = c.partSize
	}
	c.registerMetrics()
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// isCold reports whether a lockspace element is outside the central
// complex's replicated hot fragment — the same per-partition-offset rule the
// simulator applies, so a live run and a simulated run of one Config agree
// element for element on which references pay the fetch.
func (c *Central) isCold(elem uint32) bool {
	site := elem / c.partSize
	if int(site) >= c.cfg.Sites {
		site = uint32(c.cfg.Sites - 1)
	}
	return elem-site*c.partSize >= c.hotPerPart
}

// flightCapacity is each node's flight-recorder ring size: enough recent
// wire history to reconstruct a stuck handshake or reconnect storm.
const flightCapacity = 256

// Metrics returns the node's registry, for a debug listener or a test
// scrape.
func (c *Central) Metrics() *metrics.Registry { return c.reg }

// Flight returns the node's flight recorder of recent wire events.
func (c *Central) Flight() *flight.Recorder { return c.fr }

// Spans returns the node's live span recorder (central timebase).
func (c *Central) Spans() *spans.Recorder { return c.spans }

// registerMetrics wires the registry: transport gauges read directly from
// atomics, and a scrape hook that mirrors the loop-confined protocol state
// in one loop-time instant — which is what lets a scrape assert the exact
// conservation invariant ship_arrived == commits + in_system.
func (c *Central) registerMetrics() {
	registerNetStats(c.reg, c.net)
	shipArrived := c.reg.Counter("central_ship_arrived_total", "shipped transactions arrived")
	commits := c.reg.Counter("central_commits_total", "central commits")
	replies := c.reg.Counter("central_replies_sent_total", "completion replies sent to home sites")
	authRounds := c.reg.Counter("central_auth_rounds_total", "authentication rounds started")
	updates := c.reg.Counter("central_updates_applied_total", "site update batches applied")
	coldFetches := c.reg.Counter("central_cold_fetch_total", "cold-element fetches paid under partial replication")
	abortNACK := c.reg.Counter("central_aborts_total", "central aborts by cause", metrics.L("cause", "nack"))
	abortInval := c.reg.Counter("central_aborts_total", "central aborts by cause", metrics.L("cause", "invalidated"))
	abortDead := c.reg.Counter("central_aborts_total", "central aborts by cause", metrics.L("cause", "deadlock"))
	inSystem := c.reg.Gauge("central_in_system", "transactions at central in any phase")
	queue := c.reg.Gauge("central_cpu_queue_depth", "bursts queued at the central CPU, job in service included")
	locksHeld := c.reg.Gauge("central_locks_held", "locks held at central")
	mirrorOnLoop(c.reg, c.loop.Post, func() {
		counterTo(shipArrived, c.stats.ShipArrived)
		counterTo(commits, c.stats.Commits)
		counterTo(replies, c.stats.RepliesSent)
		counterTo(authRounds, c.stats.AuthRounds)
		counterTo(updates, c.stats.UpdatesApplied)
		counterTo(coldFetches, c.stats.ColdFetches)
		counterTo(abortNACK, c.stats.AbortsNACK)
		counterTo(abortInval, c.stats.AbortsInval)
		counterTo(abortDead, c.stats.AbortsDeadlock)
		inSystem.Set(float64(c.inSystem))
		queue.Set(float64(c.cpu.QueueLength()))
		locksHeld.Set(float64(c.locks.LocksHeld()))
	})
}

// Addr returns the listener's address, for sites to dial.
func (c *Central) Addr() string { return c.ln.Addr().String() }

func (c *Central) acceptLoop() {
	defer c.wg.Done()
	for {
		nc, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		conn := netx.NewConn(nc, netx.Options{Stats: c.net})
		c.connMu.Lock()
		if c.closed {
			c.connMu.Unlock()
			conn.Close()
			return
		}
		c.conns[conn] = struct{}{}
		c.connMu.Unlock()
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			conn.Serve(c.dispatch)
			conn.Close()
			c.connMu.Lock()
			delete(c.conns, conn)
			c.connMu.Unlock()
		}()
	}
}

// dispatch decodes one inbound frame on the read goroutine and posts its
// handler onto the loop — after the emulated link delay for messages that
// crossed the star network in the model.
func (c *Central) dispatch(conn *netx.Conn, f netx.Frame) {
	c.wm.In(f.Type)
	switch f.Type {
	case netx.MsgHello:
		h, err := netx.DecodeHello(f.Payload)
		if err != nil {
			c.log.Errorf("bad hello from %s: %v", conn.RemoteAddr(), err)
			c.wm.Error("bad-hello")
			conn.Close()
			return
		}
		c.fr.Recordf(flight.In, "hello", "site %d t0=%.6f", h.Site, h.T0)
		c.loop.Post(func() { c.register(h, conn) })
	case netx.MsgShip:
		spec, traced, err := netx.DecodeShip(f.Payload)
		if err != nil {
			c.log.Errorf("bad ship from %s: %v", conn.RemoteAddr(), err)
			c.wm.Error("bad-ship")
			conn.Close()
			return
		}
		c.fr.Recordf(flight.In, "ship", "txn %d", spec.ID)
		deliver(c.loop, c.cfg.CommDelay, func() { c.onShip(spec, traced) })
	case netx.MsgAuthReply, netx.MsgUpdate:
		// Decoded here (the payload aliases the read buffer), handled on
		// the loop after the link delay.
		switch f.Type {
		case netx.MsgAuthReply:
			a, err := netx.DecodeAuthReply(f.Payload)
			if err != nil {
				c.log.Errorf("bad auth-reply: %v", err)
				c.wm.Error("bad-auth-reply")
				conn.Close()
				return
			}
			c.fr.Recordf(flight.In, "auth-reply", "txn %d site %d nack=%v", a.Txn, a.Site, a.NACK)
			deliver(c.loop, c.cfg.CommDelay, func() { c.onAuthReply(a) })
		case netx.MsgUpdate:
			u, err := netx.DecodeUpdate(f.Payload)
			if err != nil {
				c.log.Errorf("bad update: %v", err)
				c.wm.Error("bad-update")
				conn.Close()
				return
			}
			c.fr.Recordf(flight.In, "update", "txn %d site %d (%d elems)", u.Txn, u.Site, len(u.Elements))
			deliver(c.loop, c.cfg.CommDelay, func() { c.onUpdate(u) })
		}
	default:
		c.log.Errorf("unexpected %s from %s", netx.MsgName(f.Type), conn.RemoteAddr())
		c.wm.Error("unexpected-type")
	}
}

// register installs a site's uplink and answers its Hello with the central
// clock reading, completing the NTP-style offset handshake.
func (c *Central) register(h netx.Hello, conn *netx.Conn) {
	site := int(h.Site)
	if site < 0 || site >= len(c.siteConns) {
		c.log.Errorf("hello for out-of-range site %d", site)
		c.wm.Error("bad-site-index")
		conn.Close()
		return
	}
	if old := c.siteConns[site]; old != nil && old != conn {
		old.Close() // a site redialed; the stale uplink is dead
	}
	c.siteConns[site] = conn
	c.log.Debugf("site %d registered from %s", site, conn.RemoteAddr())
	ack := netx.AppendHelloAck(nil, netx.HelloAck{T0: h.T0, TCentral: c.loop.Now()})
	if err := conn.Send(netx.MsgHelloAck, 0, ack); err != nil {
		c.log.Errorf("hello-ack to site %d: %v", site, err)
		c.wm.Error("send")
		return
	}
	c.wm.Out(netx.MsgHelloAck)
	c.fr.Recordf(flight.Out, "hello-ack", "site %d", site)
}

// toSite sends one protocol message down a site's uplink. A missing or dead
// uplink loses the message, as a real network would; the site's reconnect
// restores the link.
func (c *Central) toSite(site int, msgType byte, payload []byte) {
	conn := c.siteConns[site]
	if conn == nil {
		c.log.Errorf("dropping %s for unregistered site %d", netx.MsgName(msgType), site)
		c.wm.Error("drop-unregistered")
		return
	}
	if err := conn.Send(msgType, 0, payload); err != nil {
		c.log.Errorf("send %s to site %d: %v", netx.MsgName(msgType), site, err)
		c.wm.Error("send")
		return
	}
	c.wm.Out(msgType)
	c.fr.Record(flight.Out, netx.MsgName(msgType), "site "+strconv.Itoa(site))
}

// snapshot captures the central state for piggybacking, like the
// simulator's propagator.snapshotCentral.
func (c *Central) snapshot() netx.Snapshot {
	return netx.Snapshot{
		Queue:    int32(c.cpu.QueueLength()),
		InSystem: int32(c.inSystem),
		Locks:    int32(c.locks.LocksHeld()),
	}
}

// ---- Central execution path (twin of centralPath).

func (c *Central) onShip(spec *workload.Txn, traced bool) {
	c.stats.ShipArrived++
	t := &ctxn{spec: spec, attempt: 1, traced: traced}
	if traced {
		c.spans.Begin(c.loop.Now(), spec.ID, "exec",
			spans.KV{K: "home", V: strconv.Itoa(spec.HomeSite)})
	}
	c.inSystem++
	c.running[lock.ID(spec.ID)] = t
	c.cpu.Submit(c.cfg.InstrOverhead, func() {
		ioDelay(c.loop, c.disks, uint32(spec.ID), c.cfg.SetupIOTime, func() {
			c.call(t, 0)
		})
	})
}

func (c *Central) call(t *ctxn, i int) {
	if i >= c.cfg.CallsPerTxn {
		c.commitBegin(t)
		return
	}
	c.cpu.Submit(c.cfg.InstrPerCall, func() {
		// Under partial replication a first-execution reference to a cold
		// element pays the fetch delay before its lock request; re-runs
		// find the element cached (the twin of centralPath.callBody).
		if c.partialRepl && t.attempt == 1 && c.isCold(t.spec.Elements[i]) {
			c.stats.ColdFetches++
			if c.cfg.ColdFetchDelay > 0 {
				c.loop.Schedule(c.cfg.ColdFetchDelay, func() { c.lockCall(t, i) })
				return
			}
		}
		c.lockCall(t, i)
	})
}

// lockCall is the lock acquisition of call i, after the CPU burst and any
// cold-element fetch.
func (c *Central) lockCall(t *ctxn, i int) {
	id := lock.ID(t.spec.ID)
	elem, mode := t.spec.Elements[i], t.spec.Modes[i]
	if _, held := c.locks.Holds(id, elem); held {
		// Re-runs retain surviving locks across an abort (§3.1).
		c.afterLock(t, i)
		return
	}
	switch c.locks.Acquire(id, elem, mode, func() { c.afterLock(t, i) }) {
	case lock.Granted:
		c.afterLock(t, i)
	case lock.Queued:
		// The grant callback continues the transaction.
	case lock.Deadlock:
		c.deadlockAbort(t)
	}
}

func (c *Central) afterLock(t *ctxn, i int) {
	if t.attempt == 1 {
		ioDelay(c.loop, c.disks, t.spec.Elements[i], c.cfg.IOTimePerCall, func() { c.call(t, i+1) })
		return
	}
	c.call(t, i+1)
}

func (c *Central) restart(t *ctxn) {
	t.marked = false
	t.attempt++
	c.loop.Schedule(c.cfg.RestartDelay, func() { c.call(t, 0) })
}

// abortSpan closes any open auth span and marks the abort on the
// transaction's trace lane.
func (c *Central) abortSpan(t *ctxn, cause string) {
	if !t.traced {
		return
	}
	now := c.loop.Now()
	if t.authOpen {
		t.authOpen = false
		c.spans.End(now, t.spec.ID, spans.KV{K: "outcome", V: "abort"})
	}
	c.spans.Instant(now, t.spec.ID, "abort", spans.KV{K: "cause", V: cause})
}

func (c *Central) deadlockAbort(t *ctxn) {
	c.stats.AbortsDeadlock++
	c.abortSpan(t, "deadlock")
	c.locks.ReleaseAll(lock.ID(t.spec.ID))
	c.restart(t)
}

// ---- Commit protocol (twin of commitProtocol).

func (c *Central) commitBegin(t *ctxn) {
	if t.marked {
		c.stats.AbortsInval++
		c.abortSpan(t, "invalidated")
		c.restart(t)
		return
	}
	sites := t.spec.SitesTouched(c.wl)
	t.authPending = len(sites)
	t.authNACK = false
	t.authSeized = t.authSeized[:0]
	c.stats.AuthRounds++
	if t.traced {
		t.authOpen = true
		c.spans.Begin(c.loop.Now(), t.spec.ID, "auth",
			spans.KV{K: "sites", V: strconv.Itoa(len(sites))})
	}
	snap := c.snapshot()
	for _, site := range sites {
		var elems []uint32
		var modes []lock.Mode
		for j, elem := range t.spec.Elements {
			if c.wl.PartitionOf(elem) == site {
				elems = append(elems, elem)
				modes = append(modes, t.spec.Modes[j])
			}
		}
		c.toSite(site, netx.MsgAuthReq, netx.AppendAuthReq(nil, netx.AuthReq{
			Txn: t.spec.ID, Elements: elems, Modes: modes, Snap: snap, Traced: t.traced,
		}))
	}
}

func (c *Central) onAuthReply(a netx.AuthReply) {
	t, ok := c.running[lock.ID(a.Txn)]
	if !ok || t.authPending == 0 {
		c.log.Errorf("stray auth-reply for txn %d", a.Txn)
		c.wm.Error("stray-auth-reply")
		return
	}
	if a.NACK {
		t.authNACK = true
	} else {
		t.authSeized = append(t.authSeized, int(a.Site))
	}
	t.authPending--
	if t.authPending > 0 {
		return
	}
	if t.authNACK || t.marked {
		if t.authNACK {
			c.stats.AbortsNACK++
			c.abortSpan(t, "nack")
		} else {
			c.stats.AbortsInval++
			c.abortSpan(t, "invalidated")
		}
		c.releaseAuthLocks(t)
		c.restart(t)
		return
	}
	c.finish(t)
}

func (c *Central) releaseAuthLocks(t *ctxn) {
	snap := c.snapshot()
	for _, site := range t.authSeized {
		c.toSite(site, netx.MsgRelease, netx.AppendRelease(nil, netx.Release{Txn: t.spec.ID, Snap: snap}))
	}
	t.authSeized = t.authSeized[:0]
}

func (c *Central) finish(t *ctxn) {
	id := lock.ID(t.spec.ID)
	snap := c.snapshot()
	for _, site := range t.authSeized {
		c.toSite(site, netx.MsgRelease, netx.AppendRelease(nil, netx.Release{Txn: t.spec.ID, Snap: snap}))
	}
	t.authSeized = t.authSeized[:0]
	c.locks.ReleaseAll(id)
	c.inSystem--
	delete(c.running, id)
	c.stats.Commits++
	c.stats.RepliesSent++
	if t.traced {
		now := c.loop.Now()
		if t.authOpen {
			t.authOpen = false
			c.spans.End(now, t.spec.ID, spans.KV{K: "outcome", V: "commit"})
		}
		c.spans.End(now, t.spec.ID, spans.KV{K: "attempts", V: strconv.Itoa(t.attempt)})
		c.spans.Instant(now, t.spec.ID, "commit")
	}
	c.toSite(t.spec.HomeSite, netx.MsgReply, netx.AppendReply(nil, netx.Reply{
		Txn: t.spec.ID, ClassB: t.spec.Class == workload.ClassB, Snap: c.snapshot(), Traced: t.traced,
	}))
}

// ---- Asynchronous update application (twin of propagator).

func (c *Central) onUpdate(u netx.Update) {
	if c.cfg.UpdateProcInstr > 0 {
		c.cpu.Submit(c.cfg.UpdateProcInstr, func() { c.applyUpdate(u) })
		return
	}
	c.applyUpdate(u)
}

func (c *Central) applyUpdate(u netx.Update) {
	for _, elem := range u.Elements {
		for _, holder := range c.locks.Holders(elem) {
			if vt, ok := c.running[holder]; ok {
				vt.marked = true
			}
			c.locks.Release(holder, elem)
		}
	}
	c.stats.UpdatesApplied++
	if u.Traced {
		c.spans.Instant(c.loop.Now(), u.Txn, "update-applied",
			spans.KV{K: "site", V: strconv.Itoa(int(u.Site))},
			spans.KV{K: "elems", V: strconv.Itoa(len(u.Elements))})
	}
	c.toSite(int(u.Site), netx.MsgUpdateAck, netx.AppendUpdateAck(nil, netx.UpdateAck{
		Elements: u.Elements, Snap: c.snapshot(),
	}))
}

// Stats returns a snapshot taken on the loop, so it is consistent with the
// protocol state (zero after Close).
func (c *Central) Stats() CentralStats {
	ch := make(chan CentralStats, 1)
	if !c.loop.Post(func() {
		st := c.stats
		st.InSystem = c.inSystem
		ch <- st
	}) {
		return CentralStats{}
	}
	return <-ch
}

// Close shuts the node down: stop accepting, drop every connection, stop
// the loop.
func (c *Central) Close() error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*netx.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	c.connMu.Unlock()

	err := c.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	c.wg.Wait()
	c.loop.Stop()
	return err
}
