package cluster

// Observability plumbing shared by the live nodes: per-message-type wire
// counters, wire-error tallies, transport-stat gauges, and the
// loop-consistent scrape hook that makes the conservation invariant
// (submitted == completed + in-flight) exactly checkable from a /metrics
// scrape. Nodes keep their existing loop-confined stats structs as the
// source of truth; at scrape time one closure posted onto the event loop
// mirrors the whole snapshot into the registry, so every sample a scrape
// sees came from the same instant of loop time.

import (
	"hybriddb/internal/netx"
	"hybriddb/internal/obsx/metrics"
)

// wireMetrics counts frames per message type and direction, plus decode and
// delivery errors by kind. The counters are plain atomics bumped inline on
// the read and send paths.
type wireMetrics struct {
	reg *metrics.Registry
	in  [netx.MsgHelloAck + 1]*metrics.Counter
	out [netx.MsgHelloAck + 1]*metrics.Counter
}

func newWireMetrics(reg *metrics.Registry) *wireMetrics {
	w := &wireMetrics{reg: reg}
	for t := netx.MsgHello; t <= netx.MsgHelloAck; t++ {
		w.in[t] = reg.Counter("wire_msgs_in_total", "inbound frames by message type", metrics.L("type", netx.MsgName(t)))
		w.out[t] = reg.Counter("wire_msgs_out_total", "outbound frames by message type", metrics.L("type", netx.MsgName(t)))
	}
	return w
}

// In counts one inbound frame of type t.
func (w *wireMetrics) In(t byte) {
	if int(t) < len(w.in) && w.in[t] != nil {
		w.in[t].Inc()
	}
}

// Out counts one outbound frame of type t.
func (w *wireMetrics) Out(t byte) {
	if int(t) < len(w.out) && w.out[t] != nil {
		w.out[t].Inc()
	}
}

// Error counts one wire error of the given kind (bad-ship, stray-reply,
// send, ...). Error paths are cold, so the registry lookup per call is
// fine.
func (w *wireMetrics) Error(kind string) {
	w.reg.Counter("wire_errors_total", "wire errors by kind (decode failures, stray or dropped messages, send errors)",
		metrics.L("type", kind)).Inc()
}

// registerNetStats exposes a netx.Stats as gauges read at scrape time.
func registerNetStats(reg *metrics.Registry, ns *netx.Stats) {
	u := func(f func() uint64) func() float64 { return func() float64 { return float64(f()) } }
	reg.GaugeFunc("net_frames_in", "frames read from all connections", u(ns.FramesIn.Load))
	reg.GaugeFunc("net_frames_out", "frames queued to write pumps", u(ns.FramesOut.Load))
	reg.GaugeFunc("net_bytes_in", "wire bytes read", u(ns.BytesIn.Load))
	reg.GaugeFunc("net_bytes_out", "wire bytes queued", u(ns.BytesOut.Load))
	reg.GaugeFunc("net_send_queue_depth", "frames sitting in write-pump queues right now", func() float64 {
		return float64(ns.SendQueueDepth.Load())
	})
	reg.GaugeFunc("net_read_deadline_hits", "reads that died on the read deadline", u(ns.ReadDeadlineHits.Load))
	reg.GaugeFunc("net_queue_full_kills", "connections killed by write backpressure", u(ns.QueueFullKills.Load))
	reg.GaugeFunc("net_connects", "successful uplink dials (reconnects after the first)", u(ns.Connects.Load))
}

// counterTo advances a mirrored counter to the loop-consistent value v.
// Only the (serialized) scrape hook writes these counters, and loop
// counters are monotone, so the delta is never negative.
func counterTo(c *metrics.Counter, v uint64) { c.Add(v - c.Value()) }

// mirrorOnLoop registers a scrape hook that runs fn on the node's loop and
// waits for it, so everything fn mirrors into the registry is one
// consistent loop-time snapshot. If the loop is stopped the hook is a
// no-op and the last mirrored values stand.
func mirrorOnLoop(reg *metrics.Registry, post func(func()) bool, fn func()) {
	reg.OnScrape(func() {
		done := make(chan struct{})
		if !post(func() {
			defer close(done)
			fn()
		}) {
			return
		}
		<-done
	})
}
