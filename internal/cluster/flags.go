package cluster

// Shared CLI flag plumbing for cmd/hybridd and cmd/hybridload. Every node
// of a cluster and its load generator must agree on the configuration (the
// workload shape decides partitioning and routing; the service times decide
// the emulation), so both binaries register the same flag set and the
// operator passes the same values to each process.

import (
	"flag"
	"fmt"

	"hybriddb/internal/hybrid"
)

// DefaultLiveConfig is the default operating point of the live binaries: the
// simulator's default workload shape with service times scaled down 10x
// (millisecond range), so a loopback cluster on one machine emulates
// faithfully — wall-clock timer slop stays small relative to every burst —
// and a demo run completes in seconds. Override any knob by flag.
func DefaultLiveConfig() hybrid.Config {
	cfg := hybrid.DefaultConfig()
	cfg.Sites = 4
	cfg.CommDelay = 0.02
	cfg.ArrivalRatePerSite = 8
	cfg.InstrPerCall = 3000
	cfg.InstrOverhead = 15000
	cfg.IOTimePerCall = 0.0025
	cfg.SetupIOTime = 0.0035
	cfg.RestartDelay = 0.01
	cfg.Feedback = hybrid.FeedbackAllMessages
	return cfg
}

// ConfigFlags binds the cluster configuration knobs to a flag set.
type ConfigFlags struct {
	sites       *int
	localMIPS   *float64
	centralMIPS *float64
	delay       *float64
	rate        *float64
	plocal      *float64
	pwrite      *float64
	calls       *int
	lockspace   *uint64
	instrCall   *float64
	instrOver   *float64
	ioCall      *float64
	ioSetup     *float64
	restart     *float64
	feedback    *string
	seed        *uint64
	skew        *float64
	hotFraction *float64
	coldFetch   *float64
}

// RegisterConfigFlags registers the shared configuration flags on fs with
// DefaultLiveConfig defaults.
func RegisterConfigFlags(fs *flag.FlagSet) *ConfigFlags {
	def := DefaultLiveConfig()
	return &ConfigFlags{
		sites:       fs.Int("sites", def.Sites, "number of local sites in the cluster"),
		localMIPS:   fs.Float64("mips-local", def.LocalMIPS, "local processor speed, MIPS"),
		centralMIPS: fs.Float64("mips-central", def.CentralMIPS, "central processor speed, MIPS"),
		delay:       fs.Float64("delay", def.CommDelay, "one-way communications delay, seconds (emulated at the receiver)"),
		rate:        fs.Float64("rate", def.ArrivalRatePerSite, "nominal arrival rate per site, txn/s (the load generator's default)"),
		plocal:      fs.Float64("plocal", def.PLocal, "fraction of class A (local-data) transactions"),
		pwrite:      fs.Float64("pwrite", def.PWrite, "probability a lock request is exclusive"),
		calls:       fs.Int("calls", def.CallsPerTxn, "database calls per transaction"),
		lockspace:   fs.Uint64("lockspace", uint64(def.Lockspace), "total lock elements, partitioned across sites"),
		instrCall:   fs.Float64("instr-call", def.InstrPerCall, "instructions per database call"),
		instrOver:   fs.Float64("instr-overhead", def.InstrOverhead, "initiation + message instructions per transaction"),
		ioCall:      fs.Float64("io-call", def.IOTimePerCall, "I/O seconds per database call (first run)"),
		ioSetup:     fs.Float64("io-setup", def.SetupIOTime, "setup I/O seconds before locks are held"),
		restart:     fs.Float64("restart-delay", def.RestartDelay, "delay before re-running an aborted transaction, seconds"),
		feedback:    fs.String("feedback", "all-messages", "central-state feedback: auth-only or all-messages"),
		seed:        fs.Uint64("seed", def.Seed, "configuration seed (strategy forking; the load generator seeds the workload)"),
		skew:        fs.Float64("skew", def.SkewTheta, "Zipf exponent of the lock-reference distribution (0 = uniform)"),
		hotFraction: fs.Float64("hot-fraction", def.CentralHotFraction, "fraction of each partition replicated at central (1 = full replication)"),
		coldFetch:   fs.Float64("cold-fetch", def.ColdFetchDelay, "seconds a central execution waits to fetch a cold element, first run only"),
	}
}

// Config assembles and validates the configuration from the parsed flags.
func (f *ConfigFlags) Config() (hybrid.Config, error) {
	cfg := DefaultLiveConfig()
	cfg.Sites = *f.sites
	cfg.LocalMIPS = *f.localMIPS
	cfg.CentralMIPS = *f.centralMIPS
	cfg.CommDelay = *f.delay
	cfg.ArrivalRatePerSite = *f.rate
	cfg.PLocal = *f.plocal
	cfg.PWrite = *f.pwrite
	cfg.CallsPerTxn = *f.calls
	cfg.Lockspace = uint32(*f.lockspace)
	cfg.InstrPerCall = *f.instrCall
	cfg.InstrOverhead = *f.instrOver
	cfg.IOTimePerCall = *f.ioCall
	cfg.SetupIOTime = *f.ioSetup
	cfg.RestartDelay = *f.restart
	cfg.Seed = *f.seed
	cfg.SkewTheta = *f.skew
	cfg.CentralHotFraction = *f.hotFraction
	cfg.ColdFetchDelay = *f.coldFetch
	switch *f.feedback {
	case "auth-only":
		cfg.Feedback = hybrid.FeedbackAuthOnly
	case "all-messages":
		cfg.Feedback = hybrid.FeedbackAllMessages
	default:
		return cfg, fmt.Errorf("cluster: unknown feedback mode %q (live nodes support auth-only and all-messages)", *f.feedback)
	}
	if err := validate(cfg); err != nil {
		return cfg, err
	}
	return cfg, nil
}
