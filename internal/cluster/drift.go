package cluster

// Live-vs-model drift: the same tolerance bands that gate the
// cluster-vs-simulator differential test (testdata/tolerances.json,
// embedded so binaries carry them) are reusable at run time — hybridload
// predicts the configured operating point with the simulator, then holds
// the measured mean RT and routing mix against the prediction while the
// load runs, exposing the drift as gauges and a stderr ticker line.

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"math"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
)

//go:embed testdata/tolerances.json
var tolerancesJSON []byte

// Tolerances are the versioned agreement bands between a live cluster and
// the simulator at the same configuration (see testdata/tolerances.json
// for the calibration rationale).
type Tolerances struct {
	RTRelErrMax       float64   `json:"rt_rel_err_max"`
	ShipFracAbsErrMax float64   `json:"ship_frac_abs_err_max"`
	ThetaPoints       []float64 `json:"theta_points"`
	SimReplications   int       `json:"sim_replications"`
}

// DefaultTolerances returns the embedded bands.
func DefaultTolerances() (Tolerances, error) {
	var tol Tolerances
	if err := json.Unmarshal(tolerancesJSON, &tol); err != nil {
		return Tolerances{}, fmt.Errorf("cluster: embedded tolerances: %w", err)
	}
	if tol.RTRelErrMax <= 0 || tol.ShipFracAbsErrMax <= 0 {
		return Tolerances{}, fmt.Errorf("cluster: embedded tolerances underspecified: %+v", tol)
	}
	return tol, nil
}

// SimPrediction is the simulator's expectation for one configuration,
// averaged over seed replications.
type SimPrediction struct {
	MeanRT       float64
	ShipFraction float64
	Replications int
}

// PredictSim runs the simulator at cfg, averaging over reps seed
// replications (0 selects 3, matching the differential test). mk builds a
// fresh strategy per replication so stateful strategies carry no state
// across seeds.
func PredictSim(cfg hybrid.Config, mk func() (routing.Strategy, error), reps int) (SimPrediction, error) {
	if reps <= 0 {
		reps = 3
	}
	p := SimPrediction{Replications: reps}
	for r := 0; r < reps; r++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(r)*1000003
		strat, err := mk()
		if err != nil {
			return SimPrediction{}, err
		}
		eng, err := hybrid.New(c, strat)
		if err != nil {
			return SimPrediction{}, err
		}
		res := eng.Run()
		p.MeanRT += res.MeanRT
		p.ShipFraction += res.ShipFraction
	}
	p.MeanRT /= float64(reps)
	p.ShipFraction /= float64(reps)
	return p, nil
}

// Drift holds one comparison of a live measurement against a prediction,
// in the same error metrics the differential test gates on.
type Drift struct {
	RTRelErr       float64 // |live − sim| / sim mean RT
	ShipFracAbsErr float64 // |live − sim| ship fraction
	WithinBands    bool
}

// ComputeDrift compares a measured mean RT and ship fraction against the
// prediction under the given bands.
func ComputeDrift(meanRT, shipFrac float64, pred SimPrediction, tol Tolerances) Drift {
	d := Drift{ShipFracAbsErr: math.Abs(shipFrac - pred.ShipFraction)}
	if pred.MeanRT > 0 {
		d.RTRelErr = math.Abs(meanRT-pred.MeanRT) / pred.MeanRT
	}
	d.WithinBands = d.RTRelErr <= tol.RTRelErrMax && d.ShipFracAbsErr <= tol.ShipFracAbsErrMax
	return d
}
