package cluster

import (
	"context"
	"testing"
	"time"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
)

// smokeConfig is a small, fast operating point: millisecond-scale service
// times so emulated timers dominate scheduler jitter, light utilization so
// the run drains quickly.
func smokeConfig(sites int) hybrid.Config {
	return hybrid.Config{
		Sites:              sites,
		LocalMIPS:          1,
		CentralMIPS:        15,
		CommDelay:          0.01,
		ArrivalRatePerSite: 10,
		PLocal:             0.75,
		PWrite:             0.25,
		CallsPerTxn:        6,
		Lockspace:          16384,
		InstrPerCall:       2000,
		InstrOverhead:      10000,
		IOTimePerCall:      0.002,
		SetupIOTime:        0.003,
		RestartDelay:       0.01,
		Feedback:           hybrid.FeedbackAllMessages,
		Seed:               1,
		Warmup:             1,
		Duration:           1,
	}
}

// bootCluster starts 1 central + cfg.Sites sites on loopback and returns
// the site addresses plus a teardown. Teardown order matters: sites first
// (their uplinks die), central last.
func bootCluster(t *testing.T, cfg hybrid.Config, strategy routing.Strategy) (addrs []string, teardown func()) {
	addrs, _, _, teardown = bootClusterNodes(t, cfg, strategy)
	return addrs, teardown
}

// bootClusterNodes is bootCluster exposing the node handles, for tests
// that scrape per-node metrics or dump observability state.
func bootClusterNodes(t *testing.T, cfg hybrid.Config, strategy routing.Strategy) (addrs []string, central *Central, sites []*Site, teardown func()) {
	t.Helper()
	central, err := StartCentral(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartCentral: %v", err)
	}
	teardown = func() {
		for _, s := range sites {
			s.Close()
		}
		central.Close()
	}
	for i := 0; i < cfg.Sites; i++ {
		s, err := StartSite(cfg, i, central.Addr(), "127.0.0.1:0", strategy)
		if err != nil {
			teardown()
			t.Fatalf("StartSite(%d): %v", i, err)
		}
		sites = append(sites, s)
		addrs = append(addrs, s.Addr())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, s := range sites {
		if err := s.WaitReady(ctx); err != nil {
			teardown()
			t.Fatalf("site %d never reached central: %v", i, err)
		}
	}
	return addrs, central, sites, teardown
}

// assertConservation holds the scraped metrics of one central + N sites to
// the flow invariants the loop-consistent scrape hooks guarantee exactly:
// per site, generated == completed_local + replies_delivered + in_flight;
// at central, ship_arrived == commits + in_system; cluster-wide, the sums
// balance. Shared by the in-process smoke (registry snapshots) and the
// process smoke (HTTP scrapes).
func assertConservation(t *testing.T, centralSnap map[string]float64, siteSnaps []map[string]float64) {
	t.Helper()
	if got, want := centralSnap["central_ship_arrived_total"],
		centralSnap["central_commits_total"]+centralSnap["central_in_system"]; got != want {
		t.Errorf("central conservation broken: ship_arrived %v != commits %v + in_system %v",
			got, centralSnap["central_commits_total"], centralSnap["central_in_system"])
	}
	var genSum, doneSum float64
	for i, snap := range siteSnaps {
		gen := snap["site_generated_total"]
		done := snap["site_completed_local_total"] + snap["site_replies_delivered_total"] + snap["site_in_flight"]
		if gen != done {
			t.Errorf("site %d conservation broken: generated %v != completed_local %v + replies %v + in_flight %v",
				i, gen, snap["site_completed_local_total"], snap["site_replies_delivered_total"], snap["site_in_flight"])
		}
		genSum += gen
		doneSum += done
	}
	if genSum != doneSum {
		t.Errorf("cluster-wide conservation broken: %v generated vs %v accounted", genSum, doneSum)
	}
	if genSum == 0 {
		t.Error("conservation trivially vacuous: no transactions generated")
	}
}

// TestClusterSmoke boots a 1 central + 2 site loopback cluster, drives a
// short paced run, and asserts nonzero commits on both paths, zero request
// errors, transaction conservation across every node's metrics, and a clean
// shutdown. This is the `make cluster-smoke` gate.
func TestClusterSmoke(t *testing.T) {
	cfg := smokeConfig(2)
	cfg.Warmup = 0.3
	cfg.Duration = 1.2
	addrs, central, sites, teardown := bootClusterNodes(t, cfg, routing.QueueThreshold{Theta: 0})
	defer teardown()
	defer func() {
		if t.Failed() {
			central.Flight().Dump(&testWriter{t})
			for _, s := range sites {
				s.Flight().Dump(&testWriter{t})
			}
		}
	}()

	res, err := RunLoad(context.Background(), addrs, cfg, LoadOptions{
		Warmup:   cfg.Warmup,
		Duration: cfg.Duration,
		Ramp:     0.2,
		Threads:  2,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	t.Logf("smoke: %d completed (%d localA / %d shippedA / %d classB), meanRT %.1fms, %d errors",
		res.Completed, res.LocalA, res.ShippedA, res.ClassB, res.MeanRT*1e3, res.Errors)
	if res.Completed == 0 {
		t.Fatal("no transactions completed")
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors on loopback", res.Errors)
	}
	if res.ClassB == 0 {
		t.Error("no class B transaction completed the ship->central->reply path")
	}
	if res.MeanRT <= 0 {
		t.Errorf("mean RT %.4f not positive", res.MeanRT)
	}

	// The loop-consistent scrape hooks make the flow invariants exact at any
	// instant, even with stragglers still in flight.
	siteSnaps := make([]map[string]float64, len(sites))
	for i, s := range sites {
		siteSnaps[i] = s.Metrics().Snapshot()
	}
	assertConservation(t, central.Metrics().Snapshot(), siteSnaps)
	if central.Metrics().Snapshot()["central_ship_arrived_total"] == 0 {
		t.Error("central saw no shipped transactions")
	}
}

// TestClusterColdFetches drives a skewed partial-replication configuration
// through the live cluster: with only a quarter of each partition centrally
// resident and every class A transaction shipped (θ=-1), central executions
// must pay cold fetches, and the counter must reach the scrape.
func TestClusterColdFetches(t *testing.T) {
	cfg := smokeConfig(2)
	cfg.Warmup = 0.2
	cfg.Duration = 1.0
	cfg.SkewTheta = 0.6
	cfg.CentralHotFraction = 0.25
	cfg.ColdFetchDelay = 0.002
	addrs, central, _, teardown := bootClusterNodes(t, cfg, routing.QueueThreshold{Theta: -1})
	defer teardown()

	res, err := RunLoad(context.Background(), addrs, cfg, LoadOptions{
		Warmup:   cfg.Warmup,
		Duration: cfg.Duration,
		Ramp:     0.1,
		Threads:  2,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Completed == 0 {
		t.Fatal("no transactions completed")
	}
	if got := central.Stats().ColdFetches; got == 0 {
		t.Error("partial-replication run paid no cold fetches")
	}
	if got := central.Metrics().Snapshot()["central_cold_fetch_total"]; got == 0 {
		t.Error("central_cold_fetch_total did not reach the scrape")
	}
}

// testWriter adapts t.Logf for flight-recorder dumps on test failure.
type testWriter struct{ t *testing.T }

func (w *testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// TestClusterShipAndLocalPaths pins the routing extremes: θ=+1 never ships
// class A, θ=-1 always ships (utilization estimates live in [0,1)).
func TestClusterShipAndLocalPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, tc := range []struct {
		name  string
		theta float64
		check func(t *testing.T, res *LoadResult)
	}{
		{"all-local", 1.0, func(t *testing.T, res *LoadResult) {
			if res.ShippedA != 0 {
				t.Errorf("θ=+1 shipped %d class A transactions", res.ShippedA)
			}
			if res.LocalA == 0 {
				t.Error("θ=+1 completed no local class A transactions")
			}
		}},
		{"all-ship", -1.0, func(t *testing.T, res *LoadResult) {
			if res.LocalA != 0 {
				t.Errorf("θ=-1 ran %d class A transactions locally", res.LocalA)
			}
			if res.ShippedA == 0 {
				t.Error("θ=-1 completed no shipped class A transactions")
			}
		}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := smokeConfig(2)
			addrs, teardown := bootCluster(t, cfg, routing.QueueThreshold{Theta: tc.theta})
			defer teardown()
			res, err := RunLoad(context.Background(), addrs, cfg, LoadOptions{
				Warmup: 0.2, Duration: 1.0, Threads: 2,
			})
			if err != nil {
				t.Fatalf("RunLoad: %v", err)
			}
			if res.Completed == 0 || res.Errors != 0 {
				t.Fatalf("completed %d, errors %d", res.Completed, res.Errors)
			}
			tc.check(t, res)
		})
	}
}

// TestClusterCancelledLoadReturnsPartial exercises the load generator's
// context path: cancelling mid-run returns what was measured.
func TestClusterCancelledLoadReturnsPartial(t *testing.T) {
	cfg := smokeConfig(1)
	addrs, teardown := bootCluster(t, cfg, routing.AlwaysLocal{})
	defer teardown()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(600 * time.Millisecond)
		cancel()
	}()
	res, err := RunLoad(ctx, addrs, cfg, LoadOptions{
		Warmup: 0.1, Duration: 30, Threads: 1, // would run half a minute uncancelled
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if res.Elapsed > 10 {
		t.Fatalf("cancel took %.1fs to take effect", res.Elapsed)
	}
}

// TestClusterConfigValidation pins the live engine's config gate.
func TestClusterConfigValidation(t *testing.T) {
	bad := smokeConfig(2)
	bad.Feedback = hybrid.FeedbackIdeal
	if _, err := StartCentral(bad, "127.0.0.1:0"); err == nil {
		t.Error("ideal feedback accepted by StartCentral")
	}
	bad = smokeConfig(2)
	bad.UpdateBatchWindow = 0.05
	if _, err := StartCentral(bad, "127.0.0.1:0"); err == nil {
		t.Error("update batching accepted by StartCentral")
	}
	bad = smokeConfig(2)
	bad.EpochLength = 0.5
	if _, err := StartCentral(bad, "127.0.0.1:0"); err == nil {
		t.Error("epoch-batched propagation accepted by StartCentral")
	}
	cfg := smokeConfig(2)
	if _, err := StartSite(cfg, 5, "127.0.0.1:1", "127.0.0.1:0", nil); err == nil {
		t.Error("out-of-range site index accepted")
	}
}

// TestLoadOptionsValidation pins the load generator's option gate.
func TestLoadOptionsValidation(t *testing.T) {
	cfg := smokeConfig(1)
	ctx := context.Background()
	if _, err := RunLoad(ctx, nil, cfg, LoadOptions{Duration: 1}); err == nil {
		t.Error("no addresses accepted")
	}
	if _, err := RunLoad(ctx, []string{"x"}, cfg, LoadOptions{}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := RunLoad(ctx, []string{"x"}, cfg, LoadOptions{Duration: 1, Pacing: "bursty"}); err == nil {
		t.Error("unknown pacing accepted")
	}
	if _, err := RunLoad(ctx, []string{"a", "b"}, cfg, LoadOptions{Duration: 1}); err == nil {
		t.Error("address/site count mismatch accepted")
	}
}
