package cluster

import (
	"context"
	"testing"
	"time"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/routing"
)

// smokeConfig is a small, fast operating point: millisecond-scale service
// times so emulated timers dominate scheduler jitter, light utilization so
// the run drains quickly.
func smokeConfig(sites int) hybrid.Config {
	return hybrid.Config{
		Sites:              sites,
		LocalMIPS:          1,
		CentralMIPS:        15,
		CommDelay:          0.01,
		ArrivalRatePerSite: 10,
		PLocal:             0.75,
		PWrite:             0.25,
		CallsPerTxn:        6,
		Lockspace:          16384,
		InstrPerCall:       2000,
		InstrOverhead:      10000,
		IOTimePerCall:      0.002,
		SetupIOTime:        0.003,
		RestartDelay:       0.01,
		Feedback:           hybrid.FeedbackAllMessages,
		Seed:               1,
		Warmup:             1,
		Duration:           1,
	}
}

// bootCluster starts 1 central + cfg.Sites sites on loopback and returns
// the site addresses plus a teardown. Teardown order matters: sites first
// (their uplinks die), central last.
func bootCluster(t *testing.T, cfg hybrid.Config, strategy routing.Strategy) (addrs []string, teardown func()) {
	t.Helper()
	central, err := StartCentral(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartCentral: %v", err)
	}
	var sites []*Site
	teardown = func() {
		for _, s := range sites {
			s.Close()
		}
		central.Close()
	}
	for i := 0; i < cfg.Sites; i++ {
		s, err := StartSite(cfg, i, central.Addr(), "127.0.0.1:0", strategy)
		if err != nil {
			teardown()
			t.Fatalf("StartSite(%d): %v", i, err)
		}
		sites = append(sites, s)
		addrs = append(addrs, s.Addr())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, s := range sites {
		if err := s.WaitReady(ctx); err != nil {
			teardown()
			t.Fatalf("site %d never reached central: %v", i, err)
		}
	}
	return addrs, teardown
}

// TestClusterSmoke boots a 1 central + 2 site loopback cluster, drives a
// short paced run, and asserts nonzero commits on both paths, zero request
// errors, and a clean shutdown. This is the `make cluster-smoke` gate.
func TestClusterSmoke(t *testing.T) {
	cfg := smokeConfig(2)
	cfg.Warmup = 0.3
	cfg.Duration = 1.2
	addrs, teardown := bootCluster(t, cfg, routing.QueueThreshold{Theta: 0})
	defer teardown()

	res, err := RunLoad(context.Background(), addrs, cfg, LoadOptions{
		Warmup:   cfg.Warmup,
		Duration: cfg.Duration,
		Ramp:     0.2,
		Threads:  2,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	t.Logf("smoke: %d completed (%d localA / %d shippedA / %d classB), meanRT %.1fms, %d errors",
		res.Completed, res.LocalA, res.ShippedA, res.ClassB, res.MeanRT*1e3, res.Errors)
	if res.Completed == 0 {
		t.Fatal("no transactions completed")
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors on loopback", res.Errors)
	}
	if res.ClassB == 0 {
		t.Error("no class B transaction completed the ship->central->reply path")
	}
	if res.MeanRT <= 0 {
		t.Errorf("mean RT %.4f not positive", res.MeanRT)
	}
}

// TestClusterShipAndLocalPaths pins the routing extremes: θ=+1 never ships
// class A, θ=-1 always ships (utilization estimates live in [0,1)).
func TestClusterShipAndLocalPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, tc := range []struct {
		name  string
		theta float64
		check func(t *testing.T, res *LoadResult)
	}{
		{"all-local", 1.0, func(t *testing.T, res *LoadResult) {
			if res.ShippedA != 0 {
				t.Errorf("θ=+1 shipped %d class A transactions", res.ShippedA)
			}
			if res.LocalA == 0 {
				t.Error("θ=+1 completed no local class A transactions")
			}
		}},
		{"all-ship", -1.0, func(t *testing.T, res *LoadResult) {
			if res.LocalA != 0 {
				t.Errorf("θ=-1 ran %d class A transactions locally", res.LocalA)
			}
			if res.ShippedA == 0 {
				t.Error("θ=-1 completed no shipped class A transactions")
			}
		}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := smokeConfig(2)
			addrs, teardown := bootCluster(t, cfg, routing.QueueThreshold{Theta: tc.theta})
			defer teardown()
			res, err := RunLoad(context.Background(), addrs, cfg, LoadOptions{
				Warmup: 0.2, Duration: 1.0, Threads: 2,
			})
			if err != nil {
				t.Fatalf("RunLoad: %v", err)
			}
			if res.Completed == 0 || res.Errors != 0 {
				t.Fatalf("completed %d, errors %d", res.Completed, res.Errors)
			}
			tc.check(t, res)
		})
	}
}

// TestClusterCancelledLoadReturnsPartial exercises the load generator's
// context path: cancelling mid-run returns what was measured.
func TestClusterCancelledLoadReturnsPartial(t *testing.T) {
	cfg := smokeConfig(1)
	addrs, teardown := bootCluster(t, cfg, routing.AlwaysLocal{})
	defer teardown()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(600 * time.Millisecond)
		cancel()
	}()
	res, err := RunLoad(ctx, addrs, cfg, LoadOptions{
		Warmup: 0.1, Duration: 30, Threads: 1, // would run half a minute uncancelled
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if res.Elapsed > 10 {
		t.Fatalf("cancel took %.1fs to take effect", res.Elapsed)
	}
}

// TestClusterConfigValidation pins the live engine's config gate.
func TestClusterConfigValidation(t *testing.T) {
	bad := smokeConfig(2)
	bad.Feedback = hybrid.FeedbackIdeal
	if _, err := StartCentral(bad, "127.0.0.1:0"); err == nil {
		t.Error("ideal feedback accepted by StartCentral")
	}
	bad = smokeConfig(2)
	bad.UpdateBatchWindow = 0.05
	if _, err := StartCentral(bad, "127.0.0.1:0"); err == nil {
		t.Error("update batching accepted by StartCentral")
	}
	cfg := smokeConfig(2)
	if _, err := StartSite(cfg, 5, "127.0.0.1:1", "127.0.0.1:0", nil); err == nil {
		t.Error("out-of-range site index accepted")
	}
}

// TestLoadOptionsValidation pins the load generator's option gate.
func TestLoadOptionsValidation(t *testing.T) {
	cfg := smokeConfig(1)
	ctx := context.Background()
	if _, err := RunLoad(ctx, nil, cfg, LoadOptions{Duration: 1}); err == nil {
		t.Error("no addresses accepted")
	}
	if _, err := RunLoad(ctx, []string{"x"}, cfg, LoadOptions{}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := RunLoad(ctx, []string{"x"}, cfg, LoadOptions{Duration: 1, Pacing: "bursty"}); err == nil {
		t.Error("unknown pacing accepted")
	}
	if _, err := RunLoad(ctx, []string{"a", "b"}, cfg, LoadOptions{Duration: 1}); err == nil {
		t.Error("address/site count mismatch accepted")
	}
}
