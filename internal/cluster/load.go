package cluster

// The open-loop paced load generator: stands in for each site's local
// terminals, submitting generated transactions over TCP at a configured
// rate regardless of completions (open loop — queueing shows up as response
// time, not reduced offered load, matching the simulator's Poisson arrival
// process). Shared by cmd/hybridload and the e2e tests.

import (
	"context"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"hybriddb/internal/hybrid"
	"hybriddb/internal/netx"
	"hybriddb/internal/obsx/flight"
	"hybriddb/internal/stats"
	"hybriddb/internal/workload"
)

// Pacing selects the interarrival process.
const (
	// PacingPoisson draws exponential gaps — the paper's arrival process.
	PacingPoisson = "poisson"
	// PacingUniform submits at fixed 1/rate intervals.
	PacingUniform = "uniform"
)

// LoadOptions tunes a load run.
type LoadOptions struct {
	Rate     float64 // arrivals per second per site (default cfg.ArrivalRatePerSite)
	Pacing   string  // PacingPoisson (default) or PacingUniform
	Ramp     float64 // seconds to ramp the rate from ~0 to Rate
	Warmup   float64 // seconds of load before the measurement window opens
	Duration float64 // measured seconds (required)
	Threads  int     // connections per site (default 2)
	Seed     uint64  // workload + pacing seed (default 1)

	// RequestTimeout bounds one submission round trip (default 30s); a
	// timeout counts as an error, which is how a lost message or wedged
	// site surfaces.
	RequestTimeout time.Duration

	// Progress, when set, is called every ProgressEvery (default 2s) from
	// a dedicated goroutine with the measurement window so far, and once
	// more when the run ends — the feed of hybridload's drift ticker.
	Progress      func(LoadProgress)
	ProgressEvery time.Duration

	// Flight, when set, records each submission and completion, so a
	// SIGQUIT dump of the load generator shows its recent traffic.
	Flight *flight.Recorder
}

// LoadProgress is a snapshot of the measurement window partway through a
// run.
type LoadProgress struct {
	Elapsed      float64 // wall seconds since the run started
	Submitted    uint64
	Completed    uint64
	Errors       uint64
	MeanRT       float64 // seconds, window so far
	ShipFraction float64
	Final        bool // true on the closing callback
}

func (o *LoadOptions) defaults(cfg hybrid.Config) error {
	if o.Rate <= 0 {
		o.Rate = cfg.ArrivalRatePerSite
	}
	if o.Rate <= 0 {
		return fmt.Errorf("cluster: load rate must be positive")
	}
	switch o.Pacing {
	case "":
		o.Pacing = PacingPoisson
	case PacingPoisson, PacingUniform:
	default:
		return fmt.Errorf("cluster: unknown pacing %q (want %q or %q)", o.Pacing, PacingPoisson, PacingUniform)
	}
	if o.Duration <= 0 {
		return fmt.Errorf("cluster: load duration must be positive")
	}
	if o.Warmup < 0 || o.Ramp < 0 {
		return fmt.Errorf("cluster: negative warmup or ramp")
	}
	if o.Threads <= 0 {
		o.Threads = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	return nil
}

// LoadResult aggregates a load run's measurement window.
type LoadResult struct {
	Submitted uint64 // submissions whose RT falls in the window
	Completed uint64
	Errors    uint64 // timeouts and transport failures (any submission)

	LocalA   uint64 // completed class A at the home site
	ShippedA uint64 // completed class A shipped to central
	ClassB   uint64 // completed class B (always central)

	MeanRT       float64 // seconds, all classes
	P50RT, P95RT float64
	ShipFraction float64 // ShippedA / (LocalA + ShippedA)
	Throughput   float64 // completions per second across all sites

	Elapsed float64          // wall seconds of the whole run
	Hist    *stats.Histogram // RT histogram of the window
}

// loadAgg collects completions under a lock (the only cross-goroutine
// state of a load run).
type loadAgg struct {
	mu   sync.Mutex
	res  LoadResult
	sum  float64
	hist *stats.Histogram
}

func (a *loadAgg) record(res netx.Result, rt float64, inWindow bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !inWindow {
		return
	}
	a.res.Completed++
	a.sum += rt
	a.hist.Add(rt)
	switch {
	case res.ClassB:
		a.res.ClassB++
	case res.Shipped:
		a.res.ShippedA++
	default:
		a.res.LocalA++
	}
}

func (a *loadAgg) fail() {
	a.mu.Lock()
	a.res.Errors++
	a.mu.Unlock()
}

// progress snapshots the window so far.
func (a *loadAgg) progress(elapsed float64) LoadProgress {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := LoadProgress{
		Elapsed:   elapsed,
		Submitted: a.res.Submitted,
		Completed: a.res.Completed,
		Errors:    a.res.Errors,
	}
	if a.res.Completed > 0 {
		p.MeanRT = a.sum / float64(a.res.Completed)
	}
	if routed := a.res.LocalA + a.res.ShippedA; routed > 0 {
		p.ShipFraction = float64(a.res.ShippedA) / float64(routed)
	}
	return p
}

// RunLoad drives a paced open-loop workload against the sites at addrs
// (addrs[i] is site i) and reports the measurement window [Warmup,
// Warmup+Duration), measured from the submitter's side: RT spans
// submission to result, per request. The context cancels the run early;
// what was measured so far is still returned.
func RunLoad(ctx context.Context, addrs []string, cfg hybrid.Config, opt LoadOptions) (*LoadResult, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no site addresses")
	}
	if err := opt.defaults(cfg); err != nil {
		return nil, err
	}
	gen := workload.NewGenerator(cfg.WorkloadConfig(), opt.Seed)
	if len(addrs) != cfg.Sites {
		return nil, fmt.Errorf("cluster: %d site addresses for %d configured sites", len(addrs), cfg.Sites)
	}

	// RT scale: seconds. The histogram spans [0, 30s) at 1ms resolution
	// per quantile bucket — far beyond any sane loopback RT.
	agg := &loadAgg{hist: stats.NewHistogram(0, 30, 3000)}

	conns := make([][]*netx.Conn, len(addrs))
	defer func() {
		for _, cs := range conns {
			for _, c := range cs {
				c.Close()
			}
		}
	}()
	for i, addr := range addrs {
		for k := 0; k < opt.Threads; k++ {
			nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				return nil, fmt.Errorf("cluster: dial site %d: %w", i, err)
			}
			conn := netx.NewConn(nc, netx.Options{})
			go conn.Serve(nil) // Call correlation only
			conns[i] = append(conns[i], conn)
		}
	}

	start := time.Now()
	var progressDone chan struct{}
	if opt.Progress != nil {
		every := opt.ProgressEvery
		if every <= 0 {
			every = 2 * time.Second
		}
		progressDone = make(chan struct{})
		go func() {
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-progressDone:
					return
				case <-tick.C:
					opt.Progress(agg.progress(time.Since(start).Seconds()))
				}
			}
		}()
	}
	horizon := opt.Warmup + opt.Duration
	var inflight sync.WaitGroup
	var pacers sync.WaitGroup
	for site := range addrs {
		site := site
		pacers.Add(1)
		go func() {
			defer pacers.Done()
			arrivals := workload.NewArrivals(opt.Rate, opt.Seed+uint64(site)*0x9E3779B97F4A7C15+1)
			next := 0 // round-robin over the site's connections
			for {
				elapsed := time.Since(start).Seconds()
				if elapsed >= horizon || ctx.Err() != nil {
					return
				}
				var gap float64
				if opt.Pacing == PacingUniform {
					gap = 1 / opt.Rate
				} else {
					gap = arrivals.Next()
				}
				if opt.Ramp > 0 && elapsed < opt.Ramp {
					// Effective rate Rate*t/Ramp: stretch this gap by the
					// inverse ramp factor (floored to bound the first gap).
					factor := math.Max(elapsed/opt.Ramp, 0.05)
					gap /= factor
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(time.Duration(gap * float64(time.Second))):
				}
				at := time.Since(start).Seconds()
				if at >= horizon {
					return
				}
				spec := gen.Next(site) // one pacer per site: disjoint streams
				conn := conns[site][next%len(conns[site])]
				next++
				inWindow := at >= opt.Warmup
				if inWindow {
					agg.mu.Lock()
					agg.res.Submitted++
					agg.mu.Unlock()
				}
				if opt.Flight != nil {
					opt.Flight.Recordf(flight.Out, "submit", "txn %d site %d", spec.ID, site)
				}
				inflight.Add(1)
				go func() {
					defer inflight.Done()
					cctx, cancel := context.WithTimeout(context.Background(), opt.RequestTimeout)
					defer cancel()
					t0 := time.Now()
					f, err := conn.Call(cctx, netx.MsgSubmit, netx.AppendTxn(nil, spec))
					if err != nil {
						if opt.Flight != nil {
							opt.Flight.Recordf(flight.Note, "error", "txn %d: %v", spec.ID, err)
						}
						agg.fail()
						return
					}
					res, err := netx.DecodeResult(f.Payload)
					if err != nil || res.Txn != spec.ID {
						if opt.Flight != nil {
							opt.Flight.Recordf(flight.Note, "error", "txn %d: bad result", spec.ID)
						}
						agg.fail()
						return
					}
					rt := time.Since(t0).Seconds()
					if opt.Flight != nil {
						opt.Flight.Recordf(flight.In, "result", "txn %d rt=%.1fms", spec.ID, rt*1e3)
					}
					agg.record(res, rt, inWindow)
				}()
			}
		}()
	}
	pacers.Wait()
	// Let the tail of in-flight requests complete (bounded by the request
	// timeout via their individual contexts).
	done := make(chan struct{})
	go func() { inflight.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
	}
	if progressDone != nil {
		close(progressDone)
		p := agg.progress(time.Since(start).Seconds())
		p.Final = true
		opt.Progress(p)
	}

	agg.mu.Lock()
	defer agg.mu.Unlock()
	r := agg.res
	r.Elapsed = time.Since(start).Seconds()
	r.Hist = agg.hist
	if r.Completed > 0 {
		r.MeanRT = agg.sum / float64(r.Completed)
		r.P50RT = agg.hist.Quantile(0.50)
		r.P95RT = agg.hist.Quantile(0.95)
	}
	if a := r.LocalA + r.ShippedA; a > 0 {
		r.ShipFraction = float64(r.ShippedA) / float64(a)
	}
	r.Throughput = float64(r.Completed) / opt.Duration
	return &r, ctx.Err()
}
