package cluster

// The live local site: accepts transaction submissions from load
// generators, classifies and routes them (ship vs. local) with a real
// internal/routing strategy over the site's stale view of central, runs the
// local execution path, answers the central commit protocol's
// authentication requests, and propagates committed updates. The wall-clock
// twin of the simulator's localPath plus the site-side handlers of
// commitProtocol and propagator; every handler runs on the node's
// exec.Loop.

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"

	"hybriddb/internal/cpu"
	"hybriddb/internal/exec"
	"hybriddb/internal/hybrid"
	"hybriddb/internal/lock"
	"hybriddb/internal/netx"
	"hybriddb/internal/routing"
	"hybriddb/internal/workload"
)

// stxn is the site-side runtime state of one locally executing
// transaction.
type stxn struct {
	spec    *workload.Txn
	attempt int
	marked  bool // seized by a central commit (§2)
}

// pendingSubmit routes a transaction's eventual result back to the load
// generator connection that submitted it.
type pendingSubmit struct {
	conn      *netx.Conn
	reqID     uint64
	arrivedAt float64
	shipped   bool
}

// SiteStats is a loop-consistent snapshot of a site's counters.
type SiteStats struct {
	Generated     uint64
	CompletedLocal uint64
	RepliesDelivered uint64
	ShippedA      uint64
	ShippedB      uint64
	LocalA        uint64
	AbortsSeized  uint64
	AbortsDeadlock uint64
	ShipSendErrors uint64
	InSystem      int
}

// Site is one live local site.
type Site struct {
	cfg hybrid.Config
	wl  workload.Config
	idx int

	strategy routing.Strategy

	loop  *exec.Loop
	cpu   *cpu.Server
	disks []*cpu.Server
	locks *lock.Manager

	inSystem   int
	shippedOut int
	running    map[lock.ID]*stxn
	pending    map[int64]pendingSubmit

	view   netx.Snapshot
	viewAt float64

	lastLocalRT   float64
	lastShippedRT float64

	stats SiteStats

	up *netx.Client // uplink to central

	ln     net.Listener
	wg     sync.WaitGroup
	connMu sync.Mutex
	conns  map[*netx.Conn]struct{}
	closed bool
}

// StartSite boots site idx: it listens for load generators on addr and
// maintains a reconnecting uplink to the central node. The strategy routes
// this site's class A arrivals; stateful strategies should be forked per
// site (routing.SiteLocal) by the caller, as the simulator does.
func StartSite(cfg hybrid.Config, idx int, centralAddr, addr string, strategy routing.Strategy) (*Site, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	if idx < 0 || idx >= cfg.Sites {
		return nil, fmt.Errorf("cluster: site index %d out of range [0,%d)", idx, cfg.Sites)
	}
	if strategy == nil {
		strategy = routing.AlwaysLocal{}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	loop := exec.NewLoop()
	s := &Site{
		cfg:      cfg,
		wl:       cfg.WorkloadConfig(),
		idx:      idx,
		strategy: strategy,
		loop:     loop,
		cpu:      cpu.NewServer(loop, cfg.LocalMIPS),
		disks:    newDisks(loop, cfg.DisksPerSite),
		locks:    lock.NewManager(),
		running:  make(map[lock.ID]*stxn),
		pending:  make(map[int64]pendingSubmit),
		ln:       ln,
		conns:    make(map[*netx.Conn]struct{}),
	}
	hello := netx.AppendHello(nil, netx.Hello{Site: uint32(idx)})
	s.up = netx.DialLoop(centralAddr, s.dispatchCentral, func(c *netx.Conn) error {
		return c.Send(netx.MsgHello, 0, hello)
	}, netx.Options{})
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the load-generator listener's address.
func (s *Site) Addr() string { return s.ln.Addr().String() }

// WaitReady blocks until the uplink to central is established.
func (s *Site) WaitReady(ctx context.Context) error { return s.up.WaitConnected(ctx) }

func (s *Site) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		conn := netx.NewConn(nc, netx.Options{})
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			conn.Serve(s.dispatchLoad)
			conn.Close()
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
		}()
	}
}

// dispatchLoad handles frames from load-generator connections: submissions
// enter the site immediately (the load generator stands in for the site's
// local terminals — no star-network delay on this hop, matching the
// simulator's arrival process).
func (s *Site) dispatchLoad(conn *netx.Conn, f netx.Frame) {
	if f.Type != netx.MsgSubmit {
		log.Printf("site %d: unexpected %s from load", s.idx, netx.MsgName(f.Type))
		return
	}
	spec, err := netx.DecodeTxn(f.Payload)
	if err != nil {
		log.Printf("site %d: bad submit: %v", s.idx, err)
		conn.Close()
		return
	}
	reqID := f.ReqID
	s.loop.Post(func() { s.admit(conn, reqID, spec) })
}

// dispatchCentral handles frames arriving on the uplink, applying the
// emulated link delay at this receiver.
func (s *Site) dispatchCentral(conn *netx.Conn, f netx.Frame) {
	delay := s.cfg.CommDelay
	switch f.Type {
	case netx.MsgAuthReq:
		a, err := netx.DecodeAuthReq(f.Payload)
		if err != nil {
			log.Printf("site %d: bad auth-req: %v", s.idx, err)
			conn.Close()
			return
		}
		deliver(s.loop, delay, func() { s.onAuthReq(a) })
	case netx.MsgRelease:
		r, err := netx.DecodeRelease(f.Payload)
		if err != nil {
			log.Printf("site %d: bad release: %v", s.idx, err)
			conn.Close()
			return
		}
		deliver(s.loop, delay, func() { s.onRelease(r) })
	case netx.MsgUpdateAck:
		u, err := netx.DecodeUpdateAck(f.Payload)
		if err != nil {
			log.Printf("site %d: bad update-ack: %v", s.idx, err)
			conn.Close()
			return
		}
		deliver(s.loop, delay, func() { s.onUpdateAck(u) })
	case netx.MsgReply:
		r, err := netx.DecodeReply(f.Payload)
		if err != nil {
			log.Printf("site %d: bad reply: %v", s.idx, err)
			conn.Close()
			return
		}
		deliver(s.loop, delay, func() { s.onReply(r) })
	default:
		log.Printf("site %d: unexpected %s from central", s.idx, netx.MsgName(f.Type))
	}
}

// refreshView installs a snapshot received one link delay ago, like the
// simulator's localSite.refreshView (newest wins; arrival order on the
// single uplink is already monotone).
func (s *Site) refreshView(snap netx.Snapshot) {
	at := snapshotAge(s.loop.Now(), s.cfg.CommDelay)
	if at >= s.viewAt {
		s.view = snap
		s.viewAt = at
	}
}

// routingState assembles the strategy's view, the live twin of
// Engine.routingState (always stale feedback: validate rejects
// FeedbackIdeal).
func (s *Site) routingState() routing.State {
	now := s.loop.Now()
	return routing.State{
		Now:             now,
		Site:            s.idx,
		LocalQueue:      s.cpu.QueueLength(),
		LocalInSystem:   s.inSystem,
		LocalLocks:      s.locks.LocksHeld(),
		CentralQueue:    int(s.view.Queue),
		CentralInSystem: int(s.view.InSystem),
		CentralLocks:    int(s.view.Locks),
		ViewAge:         now - s.viewAt,
		LastLocalRT:     s.lastLocalRT,
		LastShippedRT:   s.lastShippedRT,
	}
}

// ---- Admission and routing (twin of Engine.admit).

func (s *Site) admit(conn *netx.Conn, reqID uint64, spec *workload.Txn) {
	s.stats.Generated++
	p := pendingSubmit{conn: conn, reqID: reqID, arrivedAt: s.loop.Now()}
	if spec.Class == workload.ClassB {
		p.shipped = true
		s.stats.ShippedB++
		s.pending[spec.ID] = p
		s.ship(spec)
		return
	}
	if s.strategy.Decide(s.routingState()) == routing.Ship {
		p.shipped = true
		s.stats.ShippedA++
		s.shippedOut++
		s.pending[spec.ID] = p
		s.ship(spec)
		return
	}
	s.stats.LocalA++
	s.pending[spec.ID] = p
	s.startLocal(spec)
}

// ship forwards a transaction's input up to central. A send failure (link
// down) is counted; the load generator's per-request timeout surfaces the
// loss.
func (s *Site) ship(spec *workload.Txn) {
	if err := s.up.Send(netx.MsgShip, 0, netx.AppendTxn(nil, spec)); err != nil {
		s.stats.ShipSendErrors++
	}
}

// ---- Local execution path (twin of localPath).

func (s *Site) startLocal(spec *workload.Txn) {
	t := &stxn{spec: spec, attempt: 1}
	s.inSystem++
	s.running[lock.ID(spec.ID)] = t
	s.cpu.Submit(s.cfg.InstrOverhead, func() {
		ioDelay(s.loop, s.disks, uint32(spec.ID), s.cfg.SetupIOTime, func() {
			s.call(t, 0)
		})
	})
}

func (s *Site) call(t *stxn, i int) {
	if i >= s.cfg.CallsPerTxn {
		s.commitLocal(t)
		return
	}
	s.cpu.Submit(s.cfg.InstrPerCall, func() {
		id := lock.ID(t.spec.ID)
		elem, mode := t.spec.Elements[i], t.spec.Modes[i]
		if _, held := s.locks.Holds(id, elem); held {
			s.afterLock(t, i)
			return
		}
		switch s.locks.Acquire(id, elem, mode, func() { s.afterLock(t, i) }) {
		case lock.Granted:
			s.afterLock(t, i)
		case lock.Queued:
			// The grant callback continues the transaction.
		case lock.Deadlock:
			s.deadlockAbort(t)
		}
	})
}

func (s *Site) afterLock(t *stxn, i int) {
	if t.attempt == 1 {
		ioDelay(s.loop, s.disks, t.spec.Elements[i], s.cfg.IOTimePerCall, func() { s.call(t, i+1) })
		return
	}
	s.call(t, i+1)
}

// commitLocal is the §2 local commit point: abort if seized, otherwise
// release locks, raise coherence counts, propagate the updates
// asynchronously, and answer the load generator without waiting for the
// central acknowledgement.
func (s *Site) commitLocal(t *stxn) {
	if t.marked {
		s.stats.AbortsSeized++
		s.restart(t)
		return
	}
	id := lock.ID(t.spec.ID)
	updates := t.spec.Updates()
	for _, elem := range t.spec.Elements {
		s.locks.Release(id, elem)
	}
	for _, elem := range updates {
		s.locks.IncrCoherence(elem)
	}
	if len(updates) > 0 {
		if err := s.up.Send(netx.MsgUpdate, 0, netx.AppendUpdate(nil, netx.Update{
			Site: uint32(s.idx), Elements: updates,
		})); err != nil {
			// The coherence counts stay up until an ack arrives; a lost
			// update pins them, exactly as a real partition would.
			log.Printf("site %d: update send failed: %v", s.idx, err)
		}
	}
	s.inSystem--
	delete(s.running, id)
	s.stats.CompletedLocal++
	p, ok := s.pending[t.spec.ID]
	if ok {
		delete(s.pending, t.spec.ID)
		s.lastLocalRT = s.loop.Now() - p.arrivedAt
		s.respond(p, netx.Result{Txn: t.spec.ID, Shipped: false, ClassB: false})
	}
}

func (s *Site) restart(t *stxn) {
	t.marked = false
	t.attempt++
	s.loop.Schedule(s.cfg.RestartDelay, func() { s.call(t, 0) })
}

func (s *Site) deadlockAbort(t *stxn) {
	s.stats.AbortsDeadlock++
	s.locks.ReleaseAll(lock.ID(t.spec.ID))
	t.marked = false
	t.attempt++
	s.loop.Schedule(s.cfg.RestartDelay, func() { s.call(t, 0) })
}

// ---- Central-protocol handlers (site side of commitProtocol/propagator).

// onAuthReq authenticates a committing central transaction's elements:
// NACK if any has in-flight updates, otherwise seize the locks (marking
// conflicting local holders for abort) and ACK. Authentication messages
// always refresh the view (§4.2).
func (s *Site) onAuthReq(a netx.AuthReq) {
	s.refreshView(a.Snap)
	nack := false
	for _, elem := range a.Elements {
		if s.locks.Coherence(elem) != 0 {
			nack = true
			break
		}
	}
	if !nack {
		id := lock.ID(a.Txn)
		for j, elem := range a.Elements {
			victims, ok := s.locks.Seize(id, elem, a.Modes[j])
			if !ok {
				// Unreachable while handlers are loop-serialized: the
				// coherence check above cannot be invalidated mid-handler.
				log.Printf("site %d: seize failed after coherence check (txn %d elem %d)", s.idx, a.Txn, elem)
				nack = true
				break
			}
			for _, v := range victims {
				if vt, ok := s.running[v]; ok {
					vt.marked = true
				}
			}
		}
	}
	if err := s.up.Send(netx.MsgAuthReply, 0, netx.AppendAuthReply(nil, netx.AuthReply{
		Txn: a.Txn, Site: uint32(s.idx), NACK: nack,
	})); err != nil {
		log.Printf("site %d: auth-reply send failed: %v", s.idx, err)
	}
}

func (s *Site) onRelease(r netx.Release) {
	if s.cfg.Feedback == hybrid.FeedbackAllMessages {
		s.refreshView(r.Snap)
	}
	s.locks.ReleaseAll(lock.ID(r.Txn))
}

func (s *Site) onUpdateAck(u netx.UpdateAck) {
	if s.cfg.Feedback == hybrid.FeedbackAllMessages {
		s.refreshView(u.Snap)
	}
	for _, elem := range u.Elements {
		s.locks.DecrCoherence(elem)
	}
}

// onReply delivers a shipped transaction's completion back to the load
// generator that submitted it.
func (s *Site) onReply(r netx.Reply) {
	if s.cfg.Feedback == hybrid.FeedbackAllMessages {
		s.refreshView(r.Snap)
	}
	p, ok := s.pending[r.Txn]
	if !ok {
		log.Printf("site %d: stray reply for txn %d", s.idx, r.Txn)
		return
	}
	delete(s.pending, r.Txn)
	rt := s.loop.Now() - p.arrivedAt
	if !r.ClassB {
		s.shippedOut--
		s.lastShippedRT = rt
	}
	s.stats.RepliesDelivered++
	s.respond(p, netx.Result{Txn: r.Txn, Shipped: true, ClassB: r.ClassB})
}

func (s *Site) respond(p pendingSubmit, res netx.Result) {
	if err := p.conn.Send(netx.MsgResult, p.reqID, netx.AppendResult(nil, res)); err != nil {
		log.Printf("site %d: result send failed: %v", s.idx, err)
	}
}

// Stats returns a loop-consistent snapshot of the counters (zero after
// Close).
func (s *Site) Stats() SiteStats {
	ch := make(chan SiteStats, 1)
	if !s.loop.Post(func() {
		st := s.stats
		st.InSystem = s.inSystem
		ch <- st
	}) {
		return SiteStats{}
	}
	return <-ch
}

// Close shuts the site down: uplink, listener, load connections, loop.
func (s *Site) Close() error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*netx.Conn, 0, len(s.conns))
	for conn := range s.conns {
		conns = append(conns, conn)
	}
	s.connMu.Unlock()

	s.up.Close()
	err := s.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	s.wg.Wait()
	s.loop.Stop()
	return err
}
