package cluster

// The live local site: accepts transaction submissions from load
// generators, classifies and routes them (ship vs. local) with a real
// internal/routing strategy over the site's stale view of central, runs the
// local execution path, answers the central commit protocol's
// authentication requests, and propagates committed updates. The wall-clock
// twin of the simulator's localPath plus the site-side handlers of
// commitProtocol and propagator; every handler runs on the node's
// exec.Loop.

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"sync"

	"hybriddb/internal/cpu"
	"hybriddb/internal/exec"
	"hybriddb/internal/hybrid"
	"hybriddb/internal/lock"
	"hybriddb/internal/netx"
	"hybriddb/internal/obsx/flight"
	"hybriddb/internal/obsx/logx"
	"hybriddb/internal/obsx/metrics"
	"hybriddb/internal/obsx/spans"
	"hybriddb/internal/routing"
	"hybriddb/internal/workload"
)

// stxn is the site-side runtime state of one locally executing
// transaction.
type stxn struct {
	spec    *workload.Txn
	attempt int
	marked  bool // seized by a central commit (§2)
}

// pendingSubmit routes a transaction's eventual result back to the load
// generator connection that submitted it.
type pendingSubmit struct {
	conn      *netx.Conn
	reqID     uint64
	arrivedAt float64
	shipped   bool
}

// SiteStats is a loop-consistent snapshot of a site's counters.
type SiteStats struct {
	Generated        uint64
	CompletedLocal   uint64
	RepliesDelivered uint64
	ShippedA         uint64
	ShippedB         uint64
	LocalA           uint64
	AbortsSeized     uint64
	AbortsDeadlock   uint64
	ShipSendErrors   uint64
	InSystem         int
}

// Site is one live local site.
type Site struct {
	cfg hybrid.Config
	wl  workload.Config
	idx int

	strategy routing.Strategy

	loop  *exec.Loop
	cpu   *cpu.Server
	disks []*cpu.Server
	locks *lock.Manager

	inSystem   int
	shippedOut int
	running    map[lock.ID]*stxn
	pending    map[int64]pendingSubmit

	view   netx.Snapshot
	viewAt float64

	lastLocalRT   float64
	lastShippedRT float64

	stats SiteStats

	log   logx.Logger
	reg   *metrics.Registry
	wm    *wireMetrics
	net   *netx.Stats
	fr    *flight.Recorder
	spans *spans.Recorder

	// rtLocal / rtShipped are observed inline on the loop at completion —
	// the live twins of the simulator's per-route RT histograms.
	rtLocal   *metrics.Histogram
	rtShipped *metrics.Histogram

	up *netx.Client // uplink to central

	ln     net.Listener
	wg     sync.WaitGroup
	connMu sync.Mutex
	conns  map[*netx.Conn]struct{}
	closed bool
}

// StartSite boots site idx: it listens for load generators on addr and
// maintains a reconnecting uplink to the central node. The strategy routes
// this site's class A arrivals; stateful strategies should be forked per
// site (routing.SiteLocal) by the caller, as the simulator does.
func StartSite(cfg hybrid.Config, idx int, centralAddr, addr string, strategy routing.Strategy) (*Site, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	if idx < 0 || idx >= cfg.Sites {
		return nil, fmt.Errorf("cluster: site index %d out of range [0,%d)", idx, cfg.Sites)
	}
	if strategy == nil {
		strategy = routing.AlwaysLocal{}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	loop := exec.NewLoop()
	reg := metrics.NewRegistry()
	s := &Site{
		cfg:      cfg,
		wl:       cfg.WorkloadConfig(),
		idx:      idx,
		strategy: strategy,
		loop:     loop,
		cpu:      cpu.NewServer(loop, cfg.LocalMIPS),
		disks:    newDisks(loop, cfg.DisksPerSite),
		locks:    lock.NewManager(),
		running:  make(map[lock.ID]*stxn),
		pending:  make(map[int64]pendingSubmit),
		log:      logx.New("site " + strconv.Itoa(idx)),
		reg:      reg,
		wm:       newWireMetrics(reg),
		net:      &netx.Stats{},
		fr:       flight.NewRecorder("site "+strconv.Itoa(idx), flightCapacity),
		spans:    spans.NewRecorder("site "+strconv.Itoa(idx), spans.SitePid(idx), 0),
		ln:       ln,
		conns:    make(map[*netx.Conn]struct{}),
	}
	s.registerMetrics()
	// Each (re)connect sends a fresh Hello stamped with the current loop
	// clock; the central's HelloAck closes the NTP-style offset estimate.
	s.up = netx.DialLoop(centralAddr, s.dispatchCentral, func(c *netx.Conn) error {
		s.fr.Recordf(flight.Note, "connect", "uplink to %s", centralAddr)
		s.log.Debugf("uplink connected to %s", centralAddr)
		hello := netx.AppendHello(nil, netx.Hello{Site: uint32(idx), T0: s.loop.Now()})
		if err := c.Send(netx.MsgHello, 0, hello); err != nil {
			return err
		}
		s.wm.Out(netx.MsgHello)
		return nil
	}, netx.Options{Stats: s.net})
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Metrics returns the node's registry, for a debug listener or a test
// scrape.
func (s *Site) Metrics() *metrics.Registry { return s.reg }

// Flight returns the node's flight recorder of recent wire events.
func (s *Site) Flight() *flight.Recorder { return s.fr }

// Spans returns the node's live span recorder (local timebase, stamped with
// the handshake's clock-offset estimate).
func (s *Site) Spans() *spans.Recorder { return s.spans }

// registerMetrics wires the registry: transport gauges read straight from
// atomics, per-route RT histograms observed on the loop, and one scrape
// hook mirroring the loop-confined counters so the site conservation
// invariant generated == completed_local + replies_delivered + in_flight
// holds exactly in every exposition.
func (s *Site) registerMetrics() {
	registerNetStats(s.reg, s.net)
	s.rtLocal = s.reg.Histogram("site_rt_seconds", "transaction response time by route", 0, 30, 3000, metrics.L("route", "local"))
	s.rtShipped = s.reg.Histogram("site_rt_seconds", "transaction response time by route", 0, 30, 3000, metrics.L("route", "shipped"))
	s.reg.GaugeFunc("site_clock_offset_seconds", "estimated central-minus-local clock offset from the Hello handshake", s.spans.ClockOffset)
	generated := s.reg.Counter("site_generated_total", "transactions submitted to this site")
	completedLocal := s.reg.Counter("site_completed_local_total", "transactions committed on the local path")
	replies := s.reg.Counter("site_replies_delivered_total", "shipped-transaction completions delivered to load generators")
	routeLocal := s.reg.Counter("site_route_decisions_total", "routing decisions by outcome", metrics.L("route", "local"))
	routeShip := s.reg.Counter("site_route_decisions_total", "routing decisions by outcome", metrics.L("route", "ship"))
	routeShipB := s.reg.Counter("site_route_decisions_total", "routing decisions by outcome", metrics.L("route", "ship_b"))
	abortSeized := s.reg.Counter("site_aborts_total", "local aborts by cause", metrics.L("cause", "seized"))
	abortDead := s.reg.Counter("site_aborts_total", "local aborts by cause", metrics.L("cause", "deadlock"))
	shipErrs := s.reg.Counter("site_ship_send_errors_total", "ship frames lost to a down uplink")
	inFlight := s.reg.Gauge("site_in_flight", "submissions awaiting a result, both routes")
	inSystem := s.reg.Gauge("site_in_system", "transactions executing locally")
	queue := s.reg.Gauge("site_cpu_queue_depth", "bursts queued at the site CPU, job in service included")
	locksHeld := s.reg.Gauge("site_locks_held", "locks held at this site")
	mirrorOnLoop(s.reg, s.loop.Post, func() {
		counterTo(generated, s.stats.Generated)
		counterTo(completedLocal, s.stats.CompletedLocal)
		counterTo(replies, s.stats.RepliesDelivered)
		counterTo(routeLocal, s.stats.LocalA)
		counterTo(routeShip, s.stats.ShippedA)
		counterTo(routeShipB, s.stats.ShippedB)
		counterTo(abortSeized, s.stats.AbortsSeized)
		counterTo(abortDead, s.stats.AbortsDeadlock)
		counterTo(shipErrs, s.stats.ShipSendErrors)
		inFlight.Set(float64(len(s.pending)))
		inSystem.Set(float64(s.inSystem))
		queue.Set(float64(s.cpu.QueueLength()))
		locksHeld.Set(float64(s.locks.LocksHeld()))
	})
}

// Addr returns the load-generator listener's address.
func (s *Site) Addr() string { return s.ln.Addr().String() }

// WaitReady blocks until the uplink to central is established.
func (s *Site) WaitReady(ctx context.Context) error { return s.up.WaitConnected(ctx) }

func (s *Site) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		conn := netx.NewConn(nc, netx.Options{Stats: s.net})
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			conn.Serve(s.dispatchLoad)
			conn.Close()
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
		}()
	}
}

// dispatchLoad handles frames from load-generator connections: submissions
// enter the site immediately (the load generator stands in for the site's
// local terminals — no star-network delay on this hop, matching the
// simulator's arrival process).
func (s *Site) dispatchLoad(conn *netx.Conn, f netx.Frame) {
	s.wm.In(f.Type)
	if f.Type != netx.MsgSubmit {
		s.log.Errorf("unexpected %s from load", netx.MsgName(f.Type))
		s.wm.Error("unexpected-type")
		return
	}
	spec, err := netx.DecodeTxn(f.Payload)
	if err != nil {
		s.log.Errorf("bad submit: %v", err)
		s.wm.Error("bad-submit")
		conn.Close()
		return
	}
	s.fr.Recordf(flight.In, "submit", "txn %d", spec.ID)
	reqID := f.ReqID
	s.loop.Post(func() { s.admit(conn, reqID, spec) })
}

// dispatchCentral handles frames arriving on the uplink, applying the
// emulated link delay at this receiver.
func (s *Site) dispatchCentral(conn *netx.Conn, f netx.Frame) {
	s.wm.In(f.Type)
	delay := s.cfg.CommDelay
	switch f.Type {
	case netx.MsgHelloAck:
		ack, err := netx.DecodeHelloAck(f.Payload)
		if err != nil {
			s.log.Errorf("bad hello-ack: %v", err)
			s.wm.Error("bad-hello-ack")
			conn.Close()
			return
		}
		// NTP-style offset closes here: t1 is this site's clock at receipt,
		// ack.T0 its clock at send, ack.TCentral the central clock between.
		t1 := s.loop.Now()
		offset := spans.EstimateClockOffset(ack.T0, t1, ack.TCentral)
		s.spans.SetClockOffset(offset)
		s.fr.Recordf(flight.In, "hello-ack", "offset=%.6fs rtt=%.6fs", offset, t1-ack.T0)
		s.log.Debugf("clock offset vs central: %.6fs (rtt %.6fs)", offset, t1-ack.T0)
	case netx.MsgAuthReq:
		a, err := netx.DecodeAuthReq(f.Payload)
		if err != nil {
			s.log.Errorf("bad auth-req: %v", err)
			s.wm.Error("bad-auth-req")
			conn.Close()
			return
		}
		s.fr.Recordf(flight.In, "auth-req", "txn %d (%d elems)", a.Txn, len(a.Elements))
		deliver(s.loop, delay, func() { s.onAuthReq(a) })
	case netx.MsgRelease:
		r, err := netx.DecodeRelease(f.Payload)
		if err != nil {
			s.log.Errorf("bad release: %v", err)
			s.wm.Error("bad-release")
			conn.Close()
			return
		}
		s.fr.Recordf(flight.In, "release", "txn %d", r.Txn)
		deliver(s.loop, delay, func() { s.onRelease(r) })
	case netx.MsgUpdateAck:
		u, err := netx.DecodeUpdateAck(f.Payload)
		if err != nil {
			s.log.Errorf("bad update-ack: %v", err)
			s.wm.Error("bad-update-ack")
			conn.Close()
			return
		}
		s.fr.Recordf(flight.In, "update-ack", "%d elems", len(u.Elements))
		deliver(s.loop, delay, func() { s.onUpdateAck(u) })
	case netx.MsgReply:
		r, err := netx.DecodeReply(f.Payload)
		if err != nil {
			s.log.Errorf("bad reply: %v", err)
			s.wm.Error("bad-reply")
			conn.Close()
			return
		}
		s.fr.Recordf(flight.In, "reply", "txn %d", r.Txn)
		deliver(s.loop, delay, func() { s.onReply(r) })
	default:
		s.log.Errorf("unexpected %s from central", netx.MsgName(f.Type))
		s.wm.Error("unexpected-type")
	}
}

// refreshView installs a snapshot received one link delay ago, like the
// simulator's localSite.refreshView (newest wins; arrival order on the
// single uplink is already monotone).
func (s *Site) refreshView(snap netx.Snapshot) {
	at := snapshotAge(s.loop.Now(), s.cfg.CommDelay)
	if at >= s.viewAt {
		s.view = snap
		s.viewAt = at
	}
}

// routingState assembles the strategy's view, the live twin of
// Engine.routingState (always stale feedback: validate rejects
// FeedbackIdeal).
func (s *Site) routingState() routing.State {
	now := s.loop.Now()
	return routing.State{
		Now:             now,
		Site:            s.idx,
		LocalQueue:      s.cpu.QueueLength(),
		LocalInSystem:   s.inSystem,
		LocalLocks:      s.locks.LocksHeld(),
		CentralQueue:    int(s.view.Queue),
		CentralInSystem: int(s.view.InSystem),
		CentralLocks:    int(s.view.Locks),
		ViewAge:         now - s.viewAt,
		LastLocalRT:     s.lastLocalRT,
		LastShippedRT:   s.lastShippedRT,
	}
}

// ---- Admission and routing (twin of Engine.admit).

func (s *Site) admit(conn *netx.Conn, reqID uint64, spec *workload.Txn) {
	s.stats.Generated++
	p := pendingSubmit{conn: conn, reqID: reqID, arrivedAt: s.loop.Now()}
	s.spans.Begin(p.arrivedAt, spec.ID, "txn",
		spans.KV{K: "class", V: spec.Class.String()})
	if spec.Class == workload.ClassB {
		p.shipped = true
		s.stats.ShippedB++
		s.pending[spec.ID] = p
		s.spans.Instant(p.arrivedAt, spec.ID, "route", spans.KV{K: "decision", V: "ship_b"})
		s.ship(spec)
		return
	}
	if s.strategy.Decide(s.routingState()) == routing.Ship {
		p.shipped = true
		s.stats.ShippedA++
		s.shippedOut++
		s.pending[spec.ID] = p
		s.spans.Instant(p.arrivedAt, spec.ID, "route", spans.KV{K: "decision", V: "ship"})
		s.ship(spec)
		return
	}
	s.stats.LocalA++
	s.pending[spec.ID] = p
	s.spans.Instant(p.arrivedAt, spec.ID, "route", spans.KV{K: "decision", V: "local"})
	s.startLocal(spec)
}

// ship forwards a transaction's input up to central, span context attached.
// A send failure (link down) is counted; the load generator's per-request
// timeout surfaces the loss.
func (s *Site) ship(spec *workload.Txn) {
	if err := s.up.Send(netx.MsgShip, 0, netx.AppendShip(nil, spec, true)); err != nil {
		s.stats.ShipSendErrors++
		s.log.Errorf("ship send failed (txn %d): %v", spec.ID, err)
		s.wm.Error("ship-send")
		return
	}
	s.wm.Out(netx.MsgShip)
	s.fr.Recordf(flight.Out, "ship", "txn %d", spec.ID)
}

// ---- Local execution path (twin of localPath).

func (s *Site) startLocal(spec *workload.Txn) {
	t := &stxn{spec: spec, attempt: 1}
	s.inSystem++
	s.running[lock.ID(spec.ID)] = t
	s.cpu.Submit(s.cfg.InstrOverhead, func() {
		ioDelay(s.loop, s.disks, uint32(spec.ID), s.cfg.SetupIOTime, func() {
			s.call(t, 0)
		})
	})
}

func (s *Site) call(t *stxn, i int) {
	if i >= s.cfg.CallsPerTxn {
		s.commitLocal(t)
		return
	}
	s.cpu.Submit(s.cfg.InstrPerCall, func() {
		id := lock.ID(t.spec.ID)
		elem, mode := t.spec.Elements[i], t.spec.Modes[i]
		if _, held := s.locks.Holds(id, elem); held {
			s.afterLock(t, i)
			return
		}
		switch s.locks.Acquire(id, elem, mode, func() { s.afterLock(t, i) }) {
		case lock.Granted:
			s.afterLock(t, i)
		case lock.Queued:
			// The grant callback continues the transaction.
		case lock.Deadlock:
			s.deadlockAbort(t)
		}
	})
}

func (s *Site) afterLock(t *stxn, i int) {
	if t.attempt == 1 {
		ioDelay(s.loop, s.disks, t.spec.Elements[i], s.cfg.IOTimePerCall, func() { s.call(t, i+1) })
		return
	}
	s.call(t, i+1)
}

// commitLocal is the §2 local commit point: abort if seized, otherwise
// release locks, raise coherence counts, propagate the updates
// asynchronously, and answer the load generator without waiting for the
// central acknowledgement.
func (s *Site) commitLocal(t *stxn) {
	if t.marked {
		s.stats.AbortsSeized++
		s.spans.Instant(s.loop.Now(), t.spec.ID, "abort", spans.KV{K: "cause", V: "seized"})
		s.restart(t)
		return
	}
	id := lock.ID(t.spec.ID)
	updates := t.spec.Updates()
	for _, elem := range t.spec.Elements {
		s.locks.Release(id, elem)
	}
	for _, elem := range updates {
		s.locks.IncrCoherence(elem)
	}
	if len(updates) > 0 {
		if err := s.up.Send(netx.MsgUpdate, 0, netx.AppendUpdate(nil, netx.Update{
			Site: uint32(s.idx), Txn: t.spec.ID, Elements: updates, Traced: true,
		})); err != nil {
			// The coherence counts stay up until an ack arrives; a lost
			// update pins them, exactly as a real partition would.
			s.log.Errorf("update send failed (txn %d): %v", t.spec.ID, err)
			s.wm.Error("update-send")
		} else {
			s.wm.Out(netx.MsgUpdate)
			s.fr.Recordf(flight.Out, "update", "txn %d (%d elems)", t.spec.ID, len(updates))
		}
	}
	s.inSystem--
	delete(s.running, id)
	s.stats.CompletedLocal++
	p, ok := s.pending[t.spec.ID]
	if ok {
		delete(s.pending, t.spec.ID)
		now := s.loop.Now()
		s.lastLocalRT = now - p.arrivedAt
		s.rtLocal.Observe(s.lastLocalRT)
		s.spans.End(now, t.spec.ID,
			spans.KV{K: "route", V: "local"},
			spans.KV{K: "attempts", V: strconv.Itoa(t.attempt)})
		s.respond(p, netx.Result{Txn: t.spec.ID, Shipped: false, ClassB: false})
	}
}

func (s *Site) restart(t *stxn) {
	t.marked = false
	t.attempt++
	s.loop.Schedule(s.cfg.RestartDelay, func() { s.call(t, 0) })
}

func (s *Site) deadlockAbort(t *stxn) {
	s.stats.AbortsDeadlock++
	s.spans.Instant(s.loop.Now(), t.spec.ID, "abort", spans.KV{K: "cause", V: "deadlock"})
	s.locks.ReleaseAll(lock.ID(t.spec.ID))
	t.marked = false
	t.attempt++
	s.loop.Schedule(s.cfg.RestartDelay, func() { s.call(t, 0) })
}

// ---- Central-protocol handlers (site side of commitProtocol/propagator).

// onAuthReq authenticates a committing central transaction's elements:
// NACK if any has in-flight updates, otherwise seize the locks (marking
// conflicting local holders for abort) and ACK. Authentication messages
// always refresh the view (§4.2).
func (s *Site) onAuthReq(a netx.AuthReq) {
	s.refreshView(a.Snap)
	nack := false
	for _, elem := range a.Elements {
		if s.locks.Coherence(elem) != 0 {
			nack = true
			break
		}
	}
	if !nack {
		id := lock.ID(a.Txn)
		for j, elem := range a.Elements {
			victims, ok := s.locks.Seize(id, elem, a.Modes[j])
			if !ok {
				// Unreachable while handlers are loop-serialized: the
				// coherence check above cannot be invalidated mid-handler.
				s.log.Errorf("seize failed after coherence check (txn %d elem %d)", a.Txn, elem)
				s.wm.Error("seize-failed")
				nack = true
				break
			}
			for _, v := range victims {
				if vt, ok := s.running[v]; ok {
					vt.marked = true
				}
			}
		}
	}
	if a.Traced {
		verdict := "ack"
		if nack {
			verdict = "nack"
		}
		s.spans.Instant(s.loop.Now(), a.Txn, "auth-"+verdict,
			spans.KV{K: "elems", V: strconv.Itoa(len(a.Elements))})
	}
	if err := s.up.Send(netx.MsgAuthReply, 0, netx.AppendAuthReply(nil, netx.AuthReply{
		Txn: a.Txn, Site: uint32(s.idx), NACK: nack,
	})); err != nil {
		s.log.Errorf("auth-reply send failed (txn %d): %v", a.Txn, err)
		s.wm.Error("auth-reply-send")
		return
	}
	s.wm.Out(netx.MsgAuthReply)
	s.fr.Recordf(flight.Out, "auth-reply", "txn %d nack=%v", a.Txn, nack)
}

func (s *Site) onRelease(r netx.Release) {
	if s.cfg.Feedback == hybrid.FeedbackAllMessages {
		s.refreshView(r.Snap)
	}
	s.locks.ReleaseAll(lock.ID(r.Txn))
}

func (s *Site) onUpdateAck(u netx.UpdateAck) {
	if s.cfg.Feedback == hybrid.FeedbackAllMessages {
		s.refreshView(u.Snap)
	}
	for _, elem := range u.Elements {
		s.locks.DecrCoherence(elem)
	}
}

// onReply delivers a shipped transaction's completion back to the load
// generator that submitted it.
func (s *Site) onReply(r netx.Reply) {
	if s.cfg.Feedback == hybrid.FeedbackAllMessages {
		s.refreshView(r.Snap)
	}
	p, ok := s.pending[r.Txn]
	if !ok {
		s.log.Errorf("stray reply for txn %d", r.Txn)
		s.wm.Error("stray-reply")
		return
	}
	delete(s.pending, r.Txn)
	now := s.loop.Now()
	rt := now - p.arrivedAt
	if !r.ClassB {
		s.shippedOut--
		s.lastShippedRT = rt
	}
	s.rtShipped.Observe(rt)
	s.spans.End(now, r.Txn, spans.KV{K: "route", V: "shipped"})
	s.stats.RepliesDelivered++
	s.respond(p, netx.Result{Txn: r.Txn, Shipped: true, ClassB: r.ClassB})
}

func (s *Site) respond(p pendingSubmit, res netx.Result) {
	if err := p.conn.Send(netx.MsgResult, p.reqID, netx.AppendResult(nil, res)); err != nil {
		s.log.Errorf("result send failed (txn %d): %v", res.Txn, err)
		s.wm.Error("result-send")
		return
	}
	s.wm.Out(netx.MsgResult)
}

// Stats returns a loop-consistent snapshot of the counters (zero after
// Close).
func (s *Site) Stats() SiteStats {
	ch := make(chan SiteStats, 1)
	if !s.loop.Post(func() {
		st := s.stats
		st.InSystem = s.inSystem
		ch <- st
	}) {
		return SiteStats{}
	}
	return <-ch
}

// Close shuts the site down: uplink, listener, load connections, loop.
func (s *Site) Close() error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*netx.Conn, 0, len(s.conns))
	for conn := range s.conns {
		conns = append(conns, conn)
	}
	s.connMu.Unlock()

	s.up.Close()
	err := s.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	s.wg.Wait()
	s.loop.Stop()
	return err
}
