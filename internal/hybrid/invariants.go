package hybrid

// The conservation/invariant self-check, wired onto the observer bus: when
// Config.SelfCheck is set, an invariantObserver subscribes and audits the
// engine on every SelfCheck event (periodic during the run, once at the
// end).

import (
	"fmt"

	"hybriddb/internal/hybrid/obs"
)

// invariantObserver runs checkInvariants on each SelfCheck bus event.
type invariantObserver struct{ e *Engine }

// OnEvent implements obs.Observer.
func (o invariantObserver) OnEvent(ev obs.Event) {
	if ev.Kind == obs.SelfCheck {
		o.e.checkInvariants()
	}
}

// checkInvariants verifies cross-component consistency; enabled by
// Config.SelfCheck. It panics on violation (a simulator bug, never a
// workload condition).
func (e *Engine) checkInvariants() {
	var present uint64
	for _, ls := range e.sites {
		ls.locks.CheckInvariants()
		if ls.inSystem < 0 {
			panic(fmt.Sprintf("hybrid: negative inSystem at site %d", ls.idx))
		}
		if ls.running.Len() != ls.inSystem {
			panic(fmt.Sprintf("hybrid: site %d running=%d inSystem=%d",
				ls.idx, ls.running.Len(), ls.inSystem))
		}
		present += uint64(ls.inSystem)
	}
	e.central.locks.CheckInvariants()
	if e.central.running.Len() != e.central.inSystem {
		panic(fmt.Sprintf("hybrid: central running=%d inSystem=%d",
			e.central.running.Len(), e.central.inSystem))
	}
	present += uint64(e.central.inSystem)
	generated := e.generatedTotal()
	completed := e.completedTotal()
	shipping := e.inFlightShipTotal()
	replying := e.inFlightReplyTotal()
	total := completed + present + shipping + replying
	if total != generated {
		panic(fmt.Sprintf("hybrid: conservation violated: generated=%d accounted=%d "+
			"(completed=%d present=%d shipping=%d replying=%d)",
			generated, total, completed, present, shipping, replying))
	}
}
