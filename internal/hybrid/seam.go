package hybrid

// The seams of the transaction core (DESIGN.md §13). The lifecycle layers —
// classify/route (engine.go), local execution (local_path.go), central
// execution (central_path.go), the commit protocol (commit.go), and update
// propagation (propagate.go) — never touch an event queue directly: every
// "read the clock", "do this later", and "send a message to the other tier"
// goes through the three narrow interfaces below. The discrete-event
// simulator is one implementation of the seams (exec.Sim over internal/sim
// for time, comm.Network / shardNet for transport); the live networked
// engine in internal/cluster is the second (exec.Loop for wall-clock time,
// framed TCP through internal/netx for transport).

import "hybriddb/internal/exec"

// Clock reads the current time of the executor a handler runs on.
type Clock = exec.Clock

// Scheduler is the clock-plus-timer seam each partition (a local site or the
// central complex) schedules its lifecycle continuations on.
type Scheduler = exec.Scheduler

// Transport abstracts the star network between the sites and the central
// complex. The sequential engine uses comm.Network (messages scheduled on
// the single event queue); the sharded engine uses shardNet (messages posted
// across shard boundaries through the Group synchronizer); the live engine
// sends frames over TCP. All deliver site->central and central->site
// messages FIFO per link with the same fixed delay, so the lifecycle layers
// are transport-agnostic.
type Transport interface {
	ToCentral(site int, deliver func())
	ToSite(site int, deliver func())
	MessagesSent() uint64
	MessagesInFlight() uint64
}
