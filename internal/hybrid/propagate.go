package hybrid

// The propagation layer: asynchronous update flow from local commits to the
// central site (with optional batching), central-side invalidation and
// application, and the piggybacked central-state snapshots whose feedback
// routingState consumes.

import (
	"fmt"

	"hybriddb/internal/trace"
)

// centralSnapshot is the central state as piggybacked on messages to sites.
type centralSnapshot struct {
	queue    int
	inSystem int
	locks    int
	at       float64
}

// refreshView installs a newer central-state snapshot at a local site.
func (ls *localSite) refreshView(snap centralSnapshot) {
	if snap.at >= ls.view.at {
		ls.view = snap
	}
}

// propagator carries committed updates between the tiers.
type propagator struct{ e *Engine }

// snapshotCentral captures the central state for piggybacking on a message
// being sent now (always from the central shard).
func (p propagator) snapshotCentral() centralSnapshot {
	e := p.e
	return centralSnapshot{
		queue:    e.central.cpu.QueueLength(),
		inSystem: e.central.inSystem,
		locks:    e.central.locks.LocksHeld(),
		at:       e.central.sched.Now(),
	}
}

// propagate ships a committed transaction's updates to the central site —
// immediately, batched per Config.UpdateBatchWindow, or accumulated to the
// next global epoch boundary per Config.EpochLength (the modes are mutually
// exclusive; Validate enforces it). Batching keeps per-link FIFO ordering:
// the flush sends one message on the same uplink that unbatched commits
// would use.
// Propagate owns the updates slice it is handed: an unbatched send parks it
// in the message and the acknowledgement returns it to the site's pool; a
// batched send folds it into the pending batch and frees it immediately.
func (p propagator) propagate(ls *localSite, updates []uint32) {
	e := p.e
	site := ls.idx
	switch {
	case e.cfg.UpdateBatchWindow > 0:
		p.buffer(ls, updates, e.cfg.UpdateBatchWindow)
	case e.cfg.EpochLength > 0:
		// Epoch-batched (STAR-style) propagation: accumulate only. The
		// global epoch ticker (engine.go scheduleEpochFlush / parallel.go
		// armEpochFlush) drains every site's pending batch at each boundary,
		// iterating sites in ascending index — the same order the sharded
		// round merge imposes on same-instant uplink arrivals — so the
		// simultaneous flushes every boundary produces reach the central
		// queue in one deterministic order in both run modes.
		p.stash(ls, updates)
	default:
		e.network.ToCentral(site, func() { p.centralApply(site, updates) })
	}
}

// stash folds one commit's updates into the site's pending batch and frees
// the commit's own slice back to the site pool.
func (p propagator) stash(ls *localSite, updates []uint32) {
	if ls.pendingUpdates == nil {
		ls.pendingUpdates = ls.takeUpdBuf()
	}
	ls.pendingUpdates = append(ls.pendingUpdates, updates...)
	ls.updFree = append(ls.updFree, updates)
}

// buffer stashes one commit's updates and, on the batch's first commit,
// schedules the flush after the given delay (the batch-window mode).
func (p propagator) buffer(ls *localSite, updates []uint32, delay float64) {
	e := p.e
	site := ls.idx
	p.stash(ls, updates)
	if ls.flushPending {
		return
	}
	ls.flushPending = true
	ls.sched.Schedule(delay, func() {
		batch := ls.pendingUpdates
		ls.pendingUpdates = nil
		ls.flushPending = false
		e.network.ToCentral(site, func() { p.centralApply(site, batch) })
	})
}

// flushEpoch drains every site's pending epoch batch onto its uplink. It
// executes at a global epoch boundary — as a plain event in the sequential
// run, at a barrier with every shard clock on the boundary in a sharded run —
// and walks sites in ascending index, which is exactly the (edge index) order
// the sharded round merge gives the resulting same-instant central arrivals.
func (p propagator) flushEpoch() {
	e := p.e
	for _, ls := range e.sites {
		if len(ls.pendingUpdates) == 0 {
			continue
		}
		batch := ls.pendingUpdates
		ls.pendingUpdates = nil
		site := ls.idx
		e.network.ToCentral(site, func() { p.centralApply(site, batch) })
	}
}

// centralApply processes an asynchronous update message from a local site:
// invalidate central locks on the updated elements (mark holders for abort),
// install the update, and acknowledge so the site can lower its coherence
// counts.
func (p propagator) centralApply(site int, updates []uint32) {
	e := p.e
	if e.cfg.UpdateProcInstr > 0 {
		// Message handling consumes central CPU before the update applies
		// (per message, which is what batching amortises).
		e.central.cpu.Submit(e.cfg.UpdateProcInstr, func() { p.applyNow(site, updates) })
		return
	}
	p.applyNow(site, updates)
}

// applyNow performs the §2 invalidate-apply-acknowledge step of an
// asynchronous update message.
func (p propagator) applyNow(site int, updates []uint32) {
	e := p.e
	for _, elem := range updates {
		// Central-shard scratch walk; HoldersAppend copies the IDs out, so
		// the releases below cannot invalidate the iteration.
		e.central.holdersBuf = e.central.locks.HoldersAppend(elem, e.central.holdersBuf[:0])
		for _, holder := range e.central.holdersBuf {
			if vt, ok := e.central.running.Get(holder); ok {
				vt.marked = true
			}
			e.central.locks.Release(holder, elem)
		}
	}
	if e.Detailed() {
		e.emit(trace.UpdateApplied, 0, -1, 0, fmt.Sprintf("%d elements from site %d", len(updates), site))
	}
	snap := p.snapshotCentral()
	e.network.ToSite(site, func() {
		ls := e.sites[site]
		if e.cfg.Feedback == FeedbackAllMessages {
			ls.refreshView(snap)
		}
		for _, elem := range updates {
			ls.locks.DecrCoherence(elem)
		}
		e.emit(trace.UpdateAcked, 0, site, 0, "")
		// The acknowledgement executes on the originating site's shard, so
		// it can hand the update buffer back to that site's pool.
		if updates != nil {
			ls.updFree = append(ls.updFree, updates)
		}
	})
}
