package hybrid

// The central execution path of the transaction lifecycle layer: class B
// transactions and shipped class A transactions running at the central
// complex, up to the commit protocol (commit.go).

import (
	"fmt"

	"hybriddb/internal/hybrid/obs"
	"hybriddb/internal/lock"
	"hybriddb/internal/trace"
	"hybriddb/internal/workload"
)

// centralPath runs transactions at the central computing complex.
type centralPath struct{ e *Engine }

// ship sends a transaction's input to the central site. It executes on the
// home shard; the delivery closure executes on the central shard, where
// ownership of t has transferred with the message.
func (p centralPath) ship(t *txnRun) {
	e := p.e
	t.shipped = true
	home := t.spec.HomeSite
	ls := e.sites[home]
	if t.spec.Class == workload.ClassA {
		ls.shippedOut++
	}
	ls.shipStarted++
	e.network.ToCentral(home, func() {
		e.central.shipArrived++
		p.start(t)
	})
}

func (p centralPath) start(t *txnRun) {
	e := p.e
	e.central.inSystem++
	e.central.running.Put(t.id(), t)
	e.central.cpu.Submit(e.cfg.InstrOverhead, t.conts.setup)
}

// setupIO runs after the admission CPU burst: the initial I/O, no locks held.
func (p centralPath) setupIO(t *txnRun) {
	e := p.e
	scheduleIO(e.central.sched, e.central.disks, uint32(t.spec.ID), e.cfg.SetupIOTime, t.conts.setupIO)
}

func (p centralPath) call(t *txnRun, i int) {
	e := p.e
	if i >= e.cfg.CallsPerTxn {
		e.commit.begin(t)
		return
	}
	t.callIdx = i
	e.central.cpu.Submit(e.cfg.InstrPerCall, t.conts.call)
}

// callBody is call callIdx's work after its CPU burst. Under partial
// replication a first-execution reference to a cold element pays the fetch
// delay before its lock request (re-runs find the element cached, mirroring
// the first-run-only data I/O); then lockBody requests the lock.
func (p centralPath) callBody(t *txnRun) {
	e := p.e
	if e.partialRepl && t.attempt == 1 && e.isCold(t.spec.Elements[t.callIdx]) {
		e.observeAt(e.central.sched.Now(), obs.Event{Kind: obs.ColdFetch, Site: -1, Value: e.cfg.ColdFetchDelay})
		if e.cfg.ColdFetchDelay > 0 {
			e.central.sched.Schedule(e.cfg.ColdFetchDelay, t.conts.fetched)
			return
		}
		// A zero-delay fetch proceeds inline: scheduling a 0-delay event
		// would reorder same-time events relative to the full-replication
		// engine for no modelled reason.
	}
	p.lockBody(t)
}

// lockBody is the lock acquisition of call callIdx.
func (p centralPath) lockBody(t *txnRun) {
	e := p.e
	i := t.callIdx
	elem, mode := t.spec.Elements[i], t.spec.Modes[i]
	if _, held := e.central.locks.Holds(t.id(), elem); held {
		p.afterLock(t, i)
		return
	}
	e.emit(trace.LockRequest, t.spec.ID, -1, elem, mode.String())
	switch e.central.locks.Acquire(t.id(), elem, mode, t.conts.grant) {
	case lock.Granted:
		e.emit(trace.LockGranted, t.spec.ID, -1, elem, "")
		p.afterLock(t, i)
	case lock.Queued:
		t.phase = phaseLockWait
		t.lockWaitFrom = e.central.sched.Now()
		e.emit(trace.LockWaitBegin, t.spec.ID, -1, elem, "")
	case lock.Deadlock:
		e.emit(trace.DeadlockAbort, t.spec.ID, -1, elem, "")
		p.deadlockAbort(t)
	}
}

// granted resumes call callIdx after a queued lock request was granted.
func (p centralPath) granted(t *txnRun) {
	e := p.e
	e.recordLockWait(t)
	e.emit(trace.LockGranted, t.spec.ID, -1, t.spec.Elements[t.callIdx], "")
	p.afterLock(t, t.callIdx)
}

func (p centralPath) afterLock(t *txnRun, i int) {
	e := p.e
	if t.attempt == 1 {
		scheduleIO(e.central.sched, e.central.disks, t.spec.Elements[i], e.cfg.IOTimePerCall, t.conts.io)
		return
	}
	p.call(t, i+1)
}

// restart re-runs an aborted central transaction at the central site,
// retaining its surviving central locks (§3.1).
func (p centralPath) restart(t *txnRun) {
	e := p.e
	t.marked = false
	t.attempt++
	t.phase = phaseExecuting
	if e.Detailed() {
		e.emit(trace.Rerun, t.spec.ID, -1, 0, fmt.Sprintf("attempt %d", t.attempt))
	}
	e.central.sched.Schedule(e.cfg.RestartDelay, t.conts.restart)
}

func (p centralPath) deadlockAbort(t *txnRun) {
	e := p.e
	e.observeAt(e.central.sched.Now(), obs.Event{Kind: obs.AbortDeadlockCentral, Site: -1})
	e.central.locks.ReleaseAll(t.id())
	t.marked = false
	t.attempt++
	t.phase = phaseExecuting
	e.central.sched.Schedule(e.cfg.RestartDelay, t.conts.restart)
}
