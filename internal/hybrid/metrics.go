package hybrid

import (
	"hybriddb/internal/stats"
)

// metrics accumulates observations, gated by the measurement window: nothing
// is recorded until the warmup period ends.
type metrics struct {
	enabled bool
	start   float64 // window start time

	// Time-series accumulation (Config.SeriesBucket > 0).
	seriesBucket float64
	seriesSum    []float64
	seriesCount  []uint64

	// Response times by kind.
	rtAll      stats.Welford
	rtLocalA   stats.Welford
	rtShippedA stats.Welford
	rtClassB   stats.Welford
	rtHist     *stats.Histogram
	histLocalA *stats.Histogram
	histShipA  *stats.Histogram
	histClassB *stats.Histogram

	// Routing decisions (class A only).
	decisionsLocal uint64
	decisionsShip  uint64

	arrivalsA uint64
	arrivalsB uint64

	// Aborts by cause.
	abortsDeadlockLocal   uint64
	abortsDeadlockCentral uint64
	abortsLocalSeized     uint64 // local txn seized by a central authentication
	abortsCentralNACK     uint64 // authentication refused (in-flight updates)
	abortsCentralInval    uint64 // central lock invalidated by an async update

	// Lock waits.
	lockWait stats.Welford

	// Periodically sampled queue lengths (1 Hz over the window) and the
	// staleness of the central-state view at each routing decision.
	centralQueue stats.Welford
	localQueue   stats.Welford
	viewAge      stats.Welford

	// Authentication rounds.
	authRounds uint64
}

// recordSeries adds a completed response time to its time bucket.
func (m *metrics) recordSeries(now, rt float64) {
	if m.seriesBucket <= 0 {
		return
	}
	idx := int((now - m.start) / m.seriesBucket)
	if idx < 0 {
		return
	}
	for len(m.seriesSum) <= idx {
		m.seriesSum = append(m.seriesSum, 0)
		m.seriesCount = append(m.seriesCount, 0)
	}
	m.seriesSum[idx] += rt
	m.seriesCount[idx]++
}

func newMetrics() *metrics {
	return newMetricsWithSeries(0)
}

func newMetricsWithSeries(bucket float64) *metrics {
	return &metrics{
		seriesBucket: bucket,
		rtHist:       stats.NewHistogram(0, 60, 600),
		histLocalA:   stats.NewHistogram(0, 60, 600),
		histShipA:    stats.NewHistogram(0, 60, 600),
		histClassB:   stats.NewHistogram(0, 60, 600),
	}
}

// Result is the outcome of one simulation run.
type Result struct {
	Strategy string  // strategy name
	Window   float64 // measured simulated seconds

	// Completions within the window.
	CompletedLocalA   uint64
	CompletedShippedA uint64
	CompletedClassB   uint64

	// Mean response times (seconds).
	MeanRT         float64 // all classes, the paper's headline metric
	MeanRTLocalA   float64
	MeanRTShippedA float64
	MeanRTClassB   float64
	P95RT          float64
	P95RTLocalA    float64
	P95RTShippedA  float64
	P95RTClassB    float64

	Throughput float64 // completed transactions per second (all classes)

	// ShipFraction is the fraction of class A transactions routed to the
	// central site during the window (Fig 4.3 / 4.6).
	ShipFraction float64

	// Aborts by cause within the window.
	AbortsDeadlockLocal   uint64
	AbortsDeadlockCentral uint64
	AbortsLocalSeized     uint64
	AbortsCentralNACK     uint64
	AbortsCentralInval    uint64

	// Utilizations over the window.
	UtilLocalMean float64 // mean over local sites
	UtilLocalMax  float64
	UtilCentral   float64

	MeanLockWait float64 // mean duration of a blocking lock wait
	// Sampled at 1 Hz over the window: the CPU queue lengths the
	// queue-length strategies act on.
	MeanCentralQueue float64
	MeanLocalQueue   float64 // averaged over sites
	// MeanViewAge is how stale the arrival site's view of the central
	// state was at routing-decision time (0 under FeedbackIdeal).
	MeanViewAge  float64
	AuthRounds   uint64 // authentication rounds executed
	MessagesSent uint64 // network messages in the whole run

	// PerSite breaks utilization and local completions down by site —
	// informative under skewed SiteRates.
	PerSite []SiteStats

	// RTSeries is the mean response time per time bucket over the window
	// (Config.SeriesBucket > 0) — the adaptation transient under load
	// fluctuations.
	RTSeries []RTBucket

	// Totals for conservation checking.
	Generated uint64 // transactions generated in the whole run
	Completed uint64 // transactions completed in the whole run
}

// RTBucket is one time bucket of the response-time series.
type RTBucket struct {
	Start       float64 // seconds since the measurement window opened
	MeanRT      float64
	Completions uint64
}

// SiteStats is the per-site breakdown of a run.
type SiteStats struct {
	Site            int
	Utilization     float64 // CPU utilization over the window
	CompletedLocalA uint64  // class A transactions committed locally
	MeanRTLocalA    float64 // their mean response time
}

// TotalAborts sums all abort causes.
func (r Result) TotalAborts() uint64 {
	return r.AbortsDeadlockLocal + r.AbortsDeadlockCentral +
		r.AbortsLocalSeized + r.AbortsCentralNACK + r.AbortsCentralInval
}
