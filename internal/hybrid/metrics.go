package hybrid

import (
	"hybriddb/internal/hybrid/obs"
	"hybriddb/internal/stats"
)

// metrics accumulates observations, gated by the measurement window: nothing
// is recorded until the warmup period ends. It is an obs.Observer — the only
// one the engine always subscribes — and every value it holds arrives over
// the bus rather than through direct calls from the lifecycle layer.
// Accumulation is partitioned: every event folds into the core of the
// partition whose shard emitted it — the origin site, the central complex
// (core index sites), or the run coordinator (core sites+1, for
// barrier-time samples). In a sharded run each core is therefore written by
// exactly one shard worker, and in the sequential run by the one loop;
// result() merges the cores in the same fixed order in both modes, so the
// assembled Result is bit-identical between them.
type metrics struct {
	enabled bool    // written only at the MeasureStart barrier
	start   float64 // window start time

	seriesBucket float64
	cores        []metricsCore

	// Response-time histograms are kept per shard group, not per core: the
	// four 600-bucket histograms dominate a core's footprint (~19 KB), and
	// at N=1000 sites per-core histograms would cost ~19 MB of cold state.
	// Histogram buckets are integer counts, so — unlike the Welford and
	// series merges — their merge is order-independent and moving them off
	// the per-partition cores cannot change any Result bit. histGroup maps a
	// core to its group (the owning shard in a sharded run, group 0
	// sequentially); each group's set is allocated lazily on first record,
	// by the one worker that owns the group.
	hists     []*histSet
	histGroup []int32
}

// histSet is one shard group's response-time histograms.
type histSet struct {
	rtHist     *stats.Histogram
	histLocalA *stats.Histogram
	histShipA  *stats.Histogram
	histClassB *stats.Histogram
}

func newHistSet() *histSet {
	return &histSet{
		rtHist:     stats.NewHistogram(0, 60, 600),
		histLocalA: stats.NewHistogram(0, 60, 600),
		histShipA:  stats.NewHistogram(0, 60, 600),
		histClassB: stats.NewHistogram(0, 60, 600),
	}
}

// metricsCore is one partition's accumulator set — compact (no histogram
// arrays) so 1000-site runs keep every hot core cache-resident.
type metricsCore struct {
	// Response times by kind. rtLocalA doubles as the per-site local-commit
	// stat for site cores (every local commit of site i lands in core i).
	rtAll      stats.Welford
	rtLocalA   stats.Welford
	rtShippedA stats.Welford
	rtClassB   stats.Welford

	// Routing decisions (class A only) and arrivals.
	decisionsLocal uint64
	decisionsShip  uint64
	arrivalsA      uint64
	arrivalsB      uint64

	// Aborts by cause.
	abortsDeadlockLocal   uint64
	abortsDeadlockCentral uint64
	abortsLocalSeized     uint64 // local txn seized by a central authentication
	abortsCentralNACK     uint64 // authentication refused (in-flight updates)
	abortsCentralInval    uint64 // central lock invalidated by an async update

	// Cold fetches under partial replication (central core).
	coldFetches uint64

	// Lock waits (site cores and the central core) and the staleness of the
	// central-state view at each routing decision (site cores).
	lockWait stats.Welford
	viewAge  stats.Welford

	// Authentication rounds (central core).
	authRounds uint64

	// 1 Hz queue-length samples (coordinator core only).
	centralQueue stats.Welford
	localQueue   stats.Welford

	// Time-series accumulation (Config.SeriesBucket > 0): completed
	// response times (site cores) and the 1 Hz queue-length samples
	// (coordinator core) fold into the same bucket grid, merged elementwise
	// at result time.
	seriesSum    []float64
	seriesCount  []uint64
	seriesQSumC  []float64 // central queue-length sample sums per bucket
	seriesQSumL  []float64 // mean-local queue-length sample sums per bucket
	seriesQCount []uint64  // queue samples per bucket
}

func newMetrics(bucket float64, sites int) *metrics {
	return &metrics{
		seriesBucket: bucket,
		cores:        make([]metricsCore, sites+2),
		hists:        make([]*histSet, 1),
		histGroup:    make([]int32, sites+2),
	}
}

// setHistGroups re-homes the histogram sets for a sharded run: core i's
// histograms live in the group of the shard that writes core i. Called from
// setupRunMode before any event executes. The central and coordinator cores
// map to shard 0 (the central complex's shard; the coordinator core never
// records response times).
func (m *metrics) setHistGroups(shardOf []int, nShards int) {
	m.hists = make([]*histSet, nShards)
	for i, sh := range shardOf {
		m.histGroup[i] = int32(sh)
	}
	m.histGroup[len(m.histGroup)-2] = 0
	m.histGroup[len(m.histGroup)-1] = 0
}

// histFor returns the (lazily allocated) histogram set of a core's group.
// Only the worker owning the group ever calls this for its cores, so the
// lazy initialization is single-writer.
func (m *metrics) histFor(core int) *histSet {
	g := m.histGroup[core]
	h := m.hists[g]
	if h == nil {
		h = newHistSet()
		m.hists[g] = h
	}
	return h
}

// coreIndex routes an event to its partition's core: coordinator events
// (barrier-time samples) to the last core, central-complex events
// (Site < 0) to the second-to-last, everything else to the origin site's.
func (m *metrics) coreIndex(ev obs.Event) int {
	if ev.Kind == obs.QueueSample {
		return len(m.cores) - 1
	}
	if ev.Site < 0 {
		return len(m.cores) - 2
	}
	return ev.Site
}

// OnEvent implements obs.Observer: lifecycle events fold into the emitting
// partition's core; protocol-detail events are ignored. In a sharded run
// this is called concurrently by the shard workers, which is safe because
// coreIndex routes every event to a core only its own shard writes, and the
// enabled/start gate is written exclusively at the MeasureStart barrier.
func (m *metrics) OnEvent(ev obs.Event) {
	if ev.Kind == obs.MeasureStart {
		m.enabled = true
		m.start = ev.At
		return
	}
	if !m.enabled {
		return
	}
	idx := m.coreIndex(ev)
	c := &m.cores[idx]
	switch ev.Kind {
	case obs.TxnArrive:
		if ev.ClassB {
			c.arrivalsB++
			return
		}
		c.arrivalsA++
		c.viewAge.Add(ev.Value)
		if ev.Shipped {
			c.decisionsShip++
		} else {
			c.decisionsLocal++
		}
	case obs.TxnLocalCommit:
		c.rtAll.Add(ev.Value)
		c.rtLocalA.Add(ev.Value)
		h := m.histFor(idx)
		h.rtHist.Add(ev.Value)
		h.histLocalA.Add(ev.Value)
		m.recordSeries(c, ev.At, ev.Value)
	case obs.TxnReply:
		c.rtAll.Add(ev.Value)
		h := m.histFor(idx)
		h.rtHist.Add(ev.Value)
		m.recordSeries(c, ev.At, ev.Value)
		if ev.ClassB {
			c.rtClassB.Add(ev.Value)
			h.histClassB.Add(ev.Value)
		} else {
			c.rtShippedA.Add(ev.Value)
			h.histShipA.Add(ev.Value)
		}
	case obs.LockWaitEnd:
		c.lockWait.Add(ev.Value)
	case obs.AuthRound:
		c.authRounds++
	case obs.AbortDeadlockLocal:
		c.abortsDeadlockLocal++
	case obs.AbortDeadlockCentral:
		c.abortsDeadlockCentral++
	case obs.AbortLocalSeized:
		c.abortsLocalSeized++
	case obs.AbortCentralNACK:
		c.abortsCentralNACK++
	case obs.AbortCentralInval:
		c.abortsCentralInval++
	case obs.ColdFetch:
		c.coldFetches++
	case obs.QueueSample:
		c.centralQueue.Add(ev.Value)
		c.localQueue.Add(ev.Aux)
		m.recordQueueSeries(c, ev.At, ev.Value, ev.Aux)
	}
}

// seriesIndex maps a window time to its bucket, or -1 when the series is
// disabled or the time precedes the measurement window.
func (m *metrics) seriesIndex(now float64) int {
	// The pre-window guard must precede the division: int() truncates toward
	// zero, so a time just before the window would otherwise fold into
	// bucket 0 instead of being rejected.
	if m.seriesBucket <= 0 || now < m.start {
		return -1
	}
	return int((now - m.start) / m.seriesBucket)
}

// recordSeries adds a completed response time to its time bucket.
func (m *metrics) recordSeries(c *metricsCore, now, rt float64) {
	idx := m.seriesIndex(now)
	if idx < 0 {
		return
	}
	for len(c.seriesSum) <= idx {
		c.seriesSum = append(c.seriesSum, 0)
		c.seriesCount = append(c.seriesCount, 0)
	}
	c.seriesSum[idx] += rt
	c.seriesCount[idx]++
}

// recordQueueSeries folds one 1 Hz queue-length observation into its bucket.
func (m *metrics) recordQueueSeries(c *metricsCore, now, central, local float64) {
	idx := m.seriesIndex(now)
	if idx < 0 {
		return
	}
	for len(c.seriesQSumC) <= idx {
		c.seriesQSumC = append(c.seriesQSumC, 0)
		c.seriesQSumL = append(c.seriesQSumL, 0)
		c.seriesQCount = append(c.seriesQCount, 0)
	}
	c.seriesQSumC[idx] += central
	c.seriesQSumL[idx] += local
	c.seriesQCount[idx]++
}

// mergeInto folds one core's accumulators into the aggregate. The caller
// merges cores in a fixed order (0..sites+1), which both run modes share —
// the floating-point results of the Welford and series merges depend on
// that order, so keeping it fixed is part of the bit-exactness contract.
func (c *metricsCore) mergeInto(agg *metricsCore) {
	agg.rtAll.Merge(&c.rtAll)
	agg.rtLocalA.Merge(&c.rtLocalA)
	agg.rtShippedA.Merge(&c.rtShippedA)
	agg.rtClassB.Merge(&c.rtClassB)
	agg.decisionsLocal += c.decisionsLocal
	agg.decisionsShip += c.decisionsShip
	agg.arrivalsA += c.arrivalsA
	agg.arrivalsB += c.arrivalsB
	agg.abortsDeadlockLocal += c.abortsDeadlockLocal
	agg.abortsDeadlockCentral += c.abortsDeadlockCentral
	agg.abortsLocalSeized += c.abortsLocalSeized
	agg.abortsCentralNACK += c.abortsCentralNACK
	agg.abortsCentralInval += c.abortsCentralInval
	agg.coldFetches += c.coldFetches
	agg.lockWait.Merge(&c.lockWait)
	agg.viewAge.Merge(&c.viewAge)
	agg.authRounds += c.authRounds
	agg.centralQueue.Merge(&c.centralQueue)
	agg.localQueue.Merge(&c.localQueue)
	mergeSeriesF(&agg.seriesSum, c.seriesSum)
	mergeSeriesU(&agg.seriesCount, c.seriesCount)
	mergeSeriesF(&agg.seriesQSumC, c.seriesQSumC)
	mergeSeriesF(&agg.seriesQSumL, c.seriesQSumL)
	mergeSeriesU(&agg.seriesQCount, c.seriesQCount)
}

func mergeSeriesF(dst *[]float64, src []float64) {
	for len(*dst) < len(src) {
		*dst = append(*dst, 0)
	}
	for i, v := range src {
		(*dst)[i] += v
	}
}

func mergeSeriesU(dst *[]uint64, src []uint64) {
	for len(*dst) < len(src) {
		*dst = append(*dst, 0)
	}
	for i, v := range src {
		(*dst)[i] += v
	}
}

// result assembles the run's Result from the metrics observer, the site
// layer's utilization accounting, and the network counters. It merges the
// per-partition cores into one aggregate in fixed order; both run modes
// take exactly this path, so a sequential and a sharded run of the same
// configuration produce bit-identical Results.
func (e *Engine) result() Result {
	// Both run modes leave every clock exactly at the horizon.
	window := e.horizon - e.m.start
	if !e.m.enabled || window <= 0 {
		window = 0
	}
	agg := &metricsCore{}
	for i := range e.m.cores {
		e.m.cores[i].mergeInto(agg)
	}
	// Histogram sets merge across shard groups in index order. Bucket
	// tallies are integers, so this merge is order-independent — the fixed
	// order is just hygiene.
	aggH := newHistSet()
	for _, h := range e.m.hists {
		if h == nil {
			continue
		}
		aggH.rtHist.Merge(h.rtHist)
		aggH.histLocalA.Merge(h.histLocalA)
		aggH.histShipA.Merge(h.histShipA)
		aggH.histClassB.Merge(h.histClassB)
	}
	r := Result{
		Strategy:              e.strategy.Name(),
		Window:                window,
		CompletedLocalA:       agg.rtLocalA.Count(),
		CompletedShippedA:     agg.rtShippedA.Count(),
		CompletedClassB:       agg.rtClassB.Count(),
		MeanRT:                agg.rtAll.Mean(),
		MeanRTLocalA:          agg.rtLocalA.Mean(),
		MeanRTShippedA:        agg.rtShippedA.Mean(),
		MeanRTClassB:          agg.rtClassB.Mean(),
		P95RT:                 aggH.rtHist.Quantile(0.95),
		P95RTLocalA:           aggH.histLocalA.Quantile(0.95),
		P95RTShippedA:         aggH.histShipA.Quantile(0.95),
		P95RTClassB:           aggH.histClassB.Quantile(0.95),
		RTPercentiles:         percentilesOf(aggH.rtHist),
		RTPercentilesLocalA:   percentilesOf(aggH.histLocalA),
		RTPercentilesShippedA: percentilesOf(aggH.histShipA),
		RTPercentilesClassB:   percentilesOf(aggH.histClassB),
		ClipAll:               clipOf(aggH.rtHist),
		ClipLocalA:            clipOf(aggH.histLocalA),
		ClipShippedA:          clipOf(aggH.histShipA),
		ClipClassB:            clipOf(aggH.histClassB),
		AbortsDeadlockLocal:   agg.abortsDeadlockLocal,
		AbortsDeadlockCentral: agg.abortsDeadlockCentral,
		AbortsLocalSeized:     agg.abortsLocalSeized,
		AbortsCentralNACK:     agg.abortsCentralNACK,
		AbortsCentralInval:    agg.abortsCentralInval,
		ColdFetches:           agg.coldFetches,
		MeanLockWait:          agg.lockWait.Mean(),
		MeanCentralQueue:      agg.centralQueue.Mean(),
		MeanLocalQueue:        agg.localQueue.Mean(),
		MeanViewAge:           agg.viewAge.Mean(),
		AuthRounds:            agg.authRounds,
		MessagesSent:          e.network.MessagesSent(),
		Generated:             e.generatedTotal(),
		Completed:             e.completedTotal(),
		InFlightShip:          e.inFlightShipTotal(),
		InFlightReply:         e.inFlightReplyTotal(),
	}
	for _, ls := range e.sites {
		r.InSystemAtEnd += uint64(ls.inSystem)
	}
	r.InSystemAtEnd += uint64(e.central.inSystem)
	if window > 0 {
		r.Throughput = float64(agg.rtAll.Count()) / window
		perSite, mean, max := siteUtilizations(e.sites, window)
		r.PerSite = make([]SiteStats, len(e.sites))
		for i := range e.sites {
			r.PerSite[i] = SiteStats{
				Site:            i,
				Utilization:     perSite[i],
				CompletedLocalA: e.m.cores[i].rtLocalA.Count(),
				MeanRTLocalA:    e.m.cores[i].rtLocalA.Mean(),
			}
		}
		r.UtilLocalMean = mean
		r.UtilLocalMax = max
		r.UtilCentral = (e.central.cpu.BusyTime() - e.central.busyAtWarmup) / window
	}
	if d := agg.decisionsLocal + agg.decisionsShip; d > 0 {
		r.ShipFraction = float64(agg.decisionsShip) / float64(d)
	}
	n := len(agg.seriesCount)
	if len(agg.seriesQCount) > n {
		n = len(agg.seriesQCount)
	}
	for i := 0; i < n; i++ {
		b := RTBucket{Start: float64(i) * e.m.seriesBucket}
		if i < len(agg.seriesCount) {
			b.Completions = agg.seriesCount[i]
		}
		if b.Completions > 0 {
			b.MeanRT = agg.seriesSum[i] / float64(b.Completions)
		}
		if i < len(agg.seriesQCount) {
			b.QueueSamples = agg.seriesQCount[i]
		}
		if b.QueueSamples > 0 {
			b.MeanCentralQueue = agg.seriesQSumC[i] / float64(b.QueueSamples)
			b.MeanLocalQueue = agg.seriesQSumL[i] / float64(b.QueueSamples)
		}
		r.RTSeries = append(r.RTSeries, b)
	}
	if e.cfg.CaptureHistograms {
		r.Histograms = &ResultHistograms{
			All:      aggH.rtHist.Dump(),
			LocalA:   aggH.histLocalA.Dump(),
			ShippedA: aggH.histShipA.Dump(),
			ClassB:   aggH.histClassB.Dump(),
		}
		// The dumps' exact means must come from the per-core Welfords, not
		// the histograms' own accumulators: the histogram sets are partitioned
		// per shard group, so their internal float means depend on the shard
		// count, while the core Welfords see identical per-partition
		// accumulation and the same fixed merge order in every run mode.
		r.Histograms.All.Mean = agg.rtAll.Mean()
		r.Histograms.LocalA.Mean = agg.rtLocalA.Mean()
		r.Histograms.ShippedA.Mean = agg.rtShippedA.Mean()
		r.Histograms.ClassB.Mean = agg.rtClassB.Mean()
	}
	return r
}

// percentilesOf reads the headline quantiles off a response-time histogram.
func percentilesOf(h *stats.Histogram) Percentiles {
	return Percentiles{
		P50: h.Quantile(0.50),
		P90: h.Quantile(0.90),
		P95: h.Quantile(0.95),
		P99: h.Quantile(0.99),
	}
}

// clipOf reads a histogram's out-of-range tallies.
func clipOf(h *stats.Histogram) HistClip {
	return HistClip{Under: h.Under(), Over: h.Over()}
}

// Result is the outcome of one simulation run.
type Result struct {
	Strategy string  // strategy name
	Window   float64 // measured simulated seconds

	// Completions within the window.
	CompletedLocalA   uint64
	CompletedShippedA uint64
	CompletedClassB   uint64

	// Mean response times (seconds).
	MeanRT         float64 // all classes, the paper's headline metric
	MeanRTLocalA   float64
	MeanRTShippedA float64
	MeanRTClassB   float64
	P95RT          float64
	P95RTLocalA    float64
	P95RTShippedA  float64
	P95RTClassB    float64

	// Full percentile sets per response-time histogram (P95 repeats the
	// P95* fields above, kept for compatibility).
	RTPercentiles         Percentiles
	RTPercentilesLocalA   Percentiles
	RTPercentilesShippedA Percentiles
	RTPercentilesClassB   Percentiles

	// Out-of-range mass per response-time histogram. A nonzero Over means
	// responses exceeded the 60 s histogram ceiling, so the percentile
	// estimates above are clipped underestimates — saturated runs used to
	// hide this silently.
	ClipAll      HistClip
	ClipLocalA   HistClip
	ClipShippedA HistClip
	ClipClassB   HistClip

	Throughput float64 // completed transactions per second (all classes)

	// ShipFraction is the fraction of class A transactions routed to the
	// central site during the window (Fig 4.3 / 4.6).
	ShipFraction float64

	// Aborts by cause within the window.
	AbortsDeadlockLocal   uint64
	AbortsDeadlockCentral uint64
	AbortsLocalSeized     uint64
	AbortsCentralNACK     uint64
	AbortsCentralInval    uint64

	// ColdFetches counts central-path calls that paid the partial-
	// replication fetch delay within the window (Config.CentralHotFraction
	// below 1).
	ColdFetches uint64

	// Utilizations over the window.
	UtilLocalMean float64 // mean over local sites
	UtilLocalMax  float64
	UtilCentral   float64

	MeanLockWait float64 // mean duration of a blocking lock wait
	// Sampled at 1 Hz over the window: the CPU queue lengths the
	// queue-length strategies act on.
	MeanCentralQueue float64
	MeanLocalQueue   float64 // averaged over sites
	// MeanViewAge is how stale the arrival site's view of the central
	// state was at routing-decision time (0 under FeedbackIdeal).
	MeanViewAge  float64
	AuthRounds   uint64 // authentication rounds executed
	MessagesSent uint64 // network messages in the whole run

	// PerSite breaks utilization and local completions down by site —
	// informative under skewed SiteRates.
	PerSite []SiteStats

	// RTSeries is the mean response time and queue lengths per time bucket
	// over the window (Config.SeriesBucket > 0) — the adaptation transient
	// under load fluctuations.
	RTSeries []RTBucket

	// Histograms holds full response-time histogram dumps, attached only
	// when Config.CaptureHistograms is set (run-manifest export); nil
	// otherwise so the default path allocates nothing for them.
	Histograms *ResultHistograms

	// Totals for conservation checking: every generated transaction is, at
	// the horizon, either completed, still resident at a site or the central
	// complex, or in flight on the network. The correctness harness
	// (internal/simtest) enforces
	// Generated == Completed + InSystemAtEnd + InFlightShip + InFlightReply.
	Generated uint64 // transactions generated in the whole run
	Completed uint64 // transactions completed in the whole run
	// InSystemAtEnd counts transactions still resident (any phase) at local
	// sites or the central complex when the run's horizon was reached.
	InSystemAtEnd uint64
	// InFlightShip counts shipped inputs still travelling to the central
	// site at the horizon; InFlightReply counts completion replies still
	// travelling back to their origin.
	InFlightShip  uint64
	InFlightReply uint64
}

// Percentiles summarises one response-time histogram (seconds).
type Percentiles struct {
	P50 float64
	P90 float64
	P95 float64
	P99 float64
}

// HistClip counts observations outside a histogram's bucketed range.
type HistClip struct {
	Under uint64
	Over  uint64
}

// ResultHistograms carries the four response-time histogram dumps of a run.
type ResultHistograms struct {
	All      stats.HistogramDump
	LocalA   stats.HistogramDump
	ShippedA stats.HistogramDump
	ClassB   stats.HistogramDump
}

// RTBucket is one time bucket of the response-time and queue-length series.
type RTBucket struct {
	Start       float64 // seconds since the measurement window opened
	MeanRT      float64
	Completions uint64
	// Queue-length samples (1 Hz) folded into this bucket.
	QueueSamples     uint64
	MeanCentralQueue float64
	MeanLocalQueue   float64
}

// SiteStats is the per-site breakdown of a run.
type SiteStats struct {
	Site            int
	Utilization     float64 // CPU utilization over the window
	CompletedLocalA uint64  // class A transactions committed locally
	MeanRTLocalA    float64 // their mean response time
}

// TotalAborts sums all abort causes.
func (r Result) TotalAborts() uint64 {
	return r.AbortsDeadlockLocal + r.AbortsDeadlockCentral +
		r.AbortsLocalSeized + r.AbortsCentralNACK + r.AbortsCentralInval
}
