package hybrid

import (
	"hybriddb/internal/hybrid/obs"
	"hybriddb/internal/stats"
)

// metrics accumulates observations, gated by the measurement window: nothing
// is recorded until the warmup period ends. It is an obs.Observer — the only
// one the engine always subscribes — and every value it holds arrives over
// the bus rather than through direct calls from the lifecycle layer.
type metrics struct {
	enabled bool
	start   float64 // window start time

	// Time-series accumulation (Config.SeriesBucket > 0): completed
	// response times and the 1 Hz queue-length samples fold into the same
	// bucket grid, so a manifest carries the adaptation transient for both.
	seriesBucket float64
	seriesSum    []float64
	seriesCount  []uint64
	seriesQSumC  []float64 // central queue-length sample sums per bucket
	seriesQSumL  []float64 // mean-local queue-length sample sums per bucket
	seriesQCount []uint64  // queue samples per bucket

	// Response times by kind.
	rtAll      stats.Welford
	rtLocalA   stats.Welford
	rtShippedA stats.Welford
	rtClassB   stats.Welford
	rtHist     *stats.Histogram
	histLocalA *stats.Histogram
	histShipA  *stats.Histogram
	histClassB *stats.Histogram

	// Per-site response times of locally committed class A transactions.
	perSiteRT []stats.Welford

	// Routing decisions (class A only).
	decisionsLocal uint64
	decisionsShip  uint64

	arrivalsA uint64
	arrivalsB uint64

	// Aborts by cause.
	abortsDeadlockLocal   uint64
	abortsDeadlockCentral uint64
	abortsLocalSeized     uint64 // local txn seized by a central authentication
	abortsCentralNACK     uint64 // authentication refused (in-flight updates)
	abortsCentralInval    uint64 // central lock invalidated by an async update

	// Lock waits.
	lockWait stats.Welford

	// Periodically sampled queue lengths (1 Hz over the window) and the
	// staleness of the central-state view at each routing decision.
	centralQueue stats.Welford
	localQueue   stats.Welford
	viewAge      stats.Welford

	// Authentication rounds.
	authRounds uint64
}

func newMetrics(bucket float64, sites int) *metrics {
	return &metrics{
		seriesBucket: bucket,
		rtHist:       stats.NewHistogram(0, 60, 600),
		histLocalA:   stats.NewHistogram(0, 60, 600),
		histShipA:    stats.NewHistogram(0, 60, 600),
		histClassB:   stats.NewHistogram(0, 60, 600),
		perSiteRT:    make([]stats.Welford, sites),
	}
}

// OnEvent implements obs.Observer: lifecycle events fold into the window's
// accumulators; protocol-detail events are ignored.
func (m *metrics) OnEvent(ev obs.Event) {
	if ev.Kind == obs.MeasureStart {
		m.enabled = true
		m.start = ev.At
		return
	}
	if !m.enabled {
		return
	}
	switch ev.Kind {
	case obs.TxnArrive:
		if ev.ClassB {
			m.arrivalsB++
			return
		}
		m.arrivalsA++
		m.viewAge.Add(ev.Value)
		if ev.Shipped {
			m.decisionsShip++
		} else {
			m.decisionsLocal++
		}
	case obs.TxnLocalCommit:
		m.rtAll.Add(ev.Value)
		m.rtLocalA.Add(ev.Value)
		m.rtHist.Add(ev.Value)
		m.histLocalA.Add(ev.Value)
		m.recordSeries(ev.At, ev.Value)
		m.perSiteRT[ev.Site].Add(ev.Value)
	case obs.TxnReply:
		m.rtAll.Add(ev.Value)
		m.rtHist.Add(ev.Value)
		m.recordSeries(ev.At, ev.Value)
		if ev.ClassB {
			m.rtClassB.Add(ev.Value)
			m.histClassB.Add(ev.Value)
		} else {
			m.rtShippedA.Add(ev.Value)
			m.histShipA.Add(ev.Value)
		}
	case obs.LockWaitEnd:
		m.lockWait.Add(ev.Value)
	case obs.AuthRound:
		m.authRounds++
	case obs.AbortDeadlockLocal:
		m.abortsDeadlockLocal++
	case obs.AbortDeadlockCentral:
		m.abortsDeadlockCentral++
	case obs.AbortLocalSeized:
		m.abortsLocalSeized++
	case obs.AbortCentralNACK:
		m.abortsCentralNACK++
	case obs.AbortCentralInval:
		m.abortsCentralInval++
	case obs.QueueSample:
		m.centralQueue.Add(ev.Value)
		m.localQueue.Add(ev.Aux)
		m.recordQueueSeries(ev.At, ev.Value, ev.Aux)
	}
}

// seriesIndex maps a window time to its bucket, or -1 when the series is
// disabled or the time precedes the measurement window.
func (m *metrics) seriesIndex(now float64) int {
	// The pre-window guard must precede the division: int() truncates toward
	// zero, so a time just before the window would otherwise fold into
	// bucket 0 instead of being rejected.
	if m.seriesBucket <= 0 || now < m.start {
		return -1
	}
	return int((now - m.start) / m.seriesBucket)
}

// recordSeries adds a completed response time to its time bucket.
func (m *metrics) recordSeries(now, rt float64) {
	idx := m.seriesIndex(now)
	if idx < 0 {
		return
	}
	for len(m.seriesSum) <= idx {
		m.seriesSum = append(m.seriesSum, 0)
		m.seriesCount = append(m.seriesCount, 0)
	}
	m.seriesSum[idx] += rt
	m.seriesCount[idx]++
}

// recordQueueSeries folds one 1 Hz queue-length observation into its bucket.
func (m *metrics) recordQueueSeries(now, central, local float64) {
	idx := m.seriesIndex(now)
	if idx < 0 {
		return
	}
	for len(m.seriesQSumC) <= idx {
		m.seriesQSumC = append(m.seriesQSumC, 0)
		m.seriesQSumL = append(m.seriesQSumL, 0)
		m.seriesQCount = append(m.seriesQCount, 0)
	}
	m.seriesQSumC[idx] += central
	m.seriesQSumL[idx] += local
	m.seriesQCount[idx]++
}

// result assembles the run's Result from the metrics observer, the site
// layer's utilization accounting, and the network counters.
func (e *Engine) result() Result {
	window := e.simulator.Now() - e.m.start
	if !e.m.enabled || window <= 0 {
		window = 0
	}
	r := Result{
		Strategy:              e.strategy.Name(),
		Window:                window,
		CompletedLocalA:       e.m.rtLocalA.Count(),
		CompletedShippedA:     e.m.rtShippedA.Count(),
		CompletedClassB:       e.m.rtClassB.Count(),
		MeanRT:                e.m.rtAll.Mean(),
		MeanRTLocalA:          e.m.rtLocalA.Mean(),
		MeanRTShippedA:        e.m.rtShippedA.Mean(),
		MeanRTClassB:          e.m.rtClassB.Mean(),
		P95RT:                 e.m.rtHist.Quantile(0.95),
		P95RTLocalA:           e.m.histLocalA.Quantile(0.95),
		P95RTShippedA:         e.m.histShipA.Quantile(0.95),
		P95RTClassB:           e.m.histClassB.Quantile(0.95),
		RTPercentiles:         percentilesOf(e.m.rtHist),
		RTPercentilesLocalA:   percentilesOf(e.m.histLocalA),
		RTPercentilesShippedA: percentilesOf(e.m.histShipA),
		RTPercentilesClassB:   percentilesOf(e.m.histClassB),
		ClipAll:               clipOf(e.m.rtHist),
		ClipLocalA:            clipOf(e.m.histLocalA),
		ClipShippedA:          clipOf(e.m.histShipA),
		ClipClassB:            clipOf(e.m.histClassB),
		AbortsDeadlockLocal:   e.m.abortsDeadlockLocal,
		AbortsDeadlockCentral: e.m.abortsDeadlockCentral,
		AbortsLocalSeized:     e.m.abortsLocalSeized,
		AbortsCentralNACK:     e.m.abortsCentralNACK,
		AbortsCentralInval:    e.m.abortsCentralInval,
		MeanLockWait:          e.m.lockWait.Mean(),
		MeanCentralQueue:      e.m.centralQueue.Mean(),
		MeanLocalQueue:        e.m.localQueue.Mean(),
		MeanViewAge:           e.m.viewAge.Mean(),
		AuthRounds:            e.m.authRounds,
		MessagesSent:          e.network.MessagesSent(),
		Generated:             e.generated,
		Completed:             e.completed,
		InFlightShip:          e.inFlightShip,
		InFlightReply:         e.inFlightReply,
	}
	for _, ls := range e.sites {
		r.InSystemAtEnd += uint64(ls.inSystem)
	}
	r.InSystemAtEnd += uint64(e.central.inSystem)
	if window > 0 {
		r.Throughput = float64(e.m.rtAll.Count()) / window
		perSite, mean, max := siteUtilizations(e.sites, window)
		r.PerSite = make([]SiteStats, len(e.sites))
		for i := range e.sites {
			r.PerSite[i] = SiteStats{
				Site:            i,
				Utilization:     perSite[i],
				CompletedLocalA: e.m.perSiteRT[i].Count(),
				MeanRTLocalA:    e.m.perSiteRT[i].Mean(),
			}
		}
		r.UtilLocalMean = mean
		r.UtilLocalMax = max
		r.UtilCentral = (e.central.cpu.BusyTime() - e.central.busyAtWarmup) / window
	}
	if d := e.m.decisionsLocal + e.m.decisionsShip; d > 0 {
		r.ShipFraction = float64(e.m.decisionsShip) / float64(d)
	}
	n := len(e.m.seriesCount)
	if len(e.m.seriesQCount) > n {
		n = len(e.m.seriesQCount)
	}
	for i := 0; i < n; i++ {
		b := RTBucket{Start: float64(i) * e.m.seriesBucket}
		if i < len(e.m.seriesCount) {
			b.Completions = e.m.seriesCount[i]
		}
		if b.Completions > 0 {
			b.MeanRT = e.m.seriesSum[i] / float64(b.Completions)
		}
		if i < len(e.m.seriesQCount) {
			b.QueueSamples = e.m.seriesQCount[i]
		}
		if b.QueueSamples > 0 {
			b.MeanCentralQueue = e.m.seriesQSumC[i] / float64(b.QueueSamples)
			b.MeanLocalQueue = e.m.seriesQSumL[i] / float64(b.QueueSamples)
		}
		r.RTSeries = append(r.RTSeries, b)
	}
	if e.cfg.CaptureHistograms {
		r.Histograms = &ResultHistograms{
			All:      e.m.rtHist.Dump(),
			LocalA:   e.m.histLocalA.Dump(),
			ShippedA: e.m.histShipA.Dump(),
			ClassB:   e.m.histClassB.Dump(),
		}
	}
	return r
}

// percentilesOf reads the headline quantiles off a response-time histogram.
func percentilesOf(h *stats.Histogram) Percentiles {
	return Percentiles{
		P50: h.Quantile(0.50),
		P90: h.Quantile(0.90),
		P95: h.Quantile(0.95),
		P99: h.Quantile(0.99),
	}
}

// clipOf reads a histogram's out-of-range tallies.
func clipOf(h *stats.Histogram) HistClip {
	return HistClip{Under: h.Under(), Over: h.Over()}
}

// Result is the outcome of one simulation run.
type Result struct {
	Strategy string  // strategy name
	Window   float64 // measured simulated seconds

	// Completions within the window.
	CompletedLocalA   uint64
	CompletedShippedA uint64
	CompletedClassB   uint64

	// Mean response times (seconds).
	MeanRT         float64 // all classes, the paper's headline metric
	MeanRTLocalA   float64
	MeanRTShippedA float64
	MeanRTClassB   float64
	P95RT          float64
	P95RTLocalA    float64
	P95RTShippedA  float64
	P95RTClassB    float64

	// Full percentile sets per response-time histogram (P95 repeats the
	// P95* fields above, kept for compatibility).
	RTPercentiles         Percentiles
	RTPercentilesLocalA   Percentiles
	RTPercentilesShippedA Percentiles
	RTPercentilesClassB   Percentiles

	// Out-of-range mass per response-time histogram. A nonzero Over means
	// responses exceeded the 60 s histogram ceiling, so the percentile
	// estimates above are clipped underestimates — saturated runs used to
	// hide this silently.
	ClipAll      HistClip
	ClipLocalA   HistClip
	ClipShippedA HistClip
	ClipClassB   HistClip

	Throughput float64 // completed transactions per second (all classes)

	// ShipFraction is the fraction of class A transactions routed to the
	// central site during the window (Fig 4.3 / 4.6).
	ShipFraction float64

	// Aborts by cause within the window.
	AbortsDeadlockLocal   uint64
	AbortsDeadlockCentral uint64
	AbortsLocalSeized     uint64
	AbortsCentralNACK     uint64
	AbortsCentralInval    uint64

	// Utilizations over the window.
	UtilLocalMean float64 // mean over local sites
	UtilLocalMax  float64
	UtilCentral   float64

	MeanLockWait float64 // mean duration of a blocking lock wait
	// Sampled at 1 Hz over the window: the CPU queue lengths the
	// queue-length strategies act on.
	MeanCentralQueue float64
	MeanLocalQueue   float64 // averaged over sites
	// MeanViewAge is how stale the arrival site's view of the central
	// state was at routing-decision time (0 under FeedbackIdeal).
	MeanViewAge  float64
	AuthRounds   uint64 // authentication rounds executed
	MessagesSent uint64 // network messages in the whole run

	// PerSite breaks utilization and local completions down by site —
	// informative under skewed SiteRates.
	PerSite []SiteStats

	// RTSeries is the mean response time and queue lengths per time bucket
	// over the window (Config.SeriesBucket > 0) — the adaptation transient
	// under load fluctuations.
	RTSeries []RTBucket

	// Histograms holds full response-time histogram dumps, attached only
	// when Config.CaptureHistograms is set (run-manifest export); nil
	// otherwise so the default path allocates nothing for them.
	Histograms *ResultHistograms

	// Totals for conservation checking: every generated transaction is, at
	// the horizon, either completed, still resident at a site or the central
	// complex, or in flight on the network. The correctness harness
	// (internal/simtest) enforces
	// Generated == Completed + InSystemAtEnd + InFlightShip + InFlightReply.
	Generated uint64 // transactions generated in the whole run
	Completed uint64 // transactions completed in the whole run
	// InSystemAtEnd counts transactions still resident (any phase) at local
	// sites or the central complex when the run's horizon was reached.
	InSystemAtEnd uint64
	// InFlightShip counts shipped inputs still travelling to the central
	// site at the horizon; InFlightReply counts completion replies still
	// travelling back to their origin.
	InFlightShip  uint64
	InFlightReply uint64
}

// Percentiles summarises one response-time histogram (seconds).
type Percentiles struct {
	P50 float64
	P90 float64
	P95 float64
	P99 float64
}

// HistClip counts observations outside a histogram's bucketed range.
type HistClip struct {
	Under uint64
	Over  uint64
}

// ResultHistograms carries the four response-time histogram dumps of a run.
type ResultHistograms struct {
	All      stats.HistogramDump
	LocalA   stats.HistogramDump
	ShippedA stats.HistogramDump
	ClassB   stats.HistogramDump
}

// RTBucket is one time bucket of the response-time and queue-length series.
type RTBucket struct {
	Start       float64 // seconds since the measurement window opened
	MeanRT      float64
	Completions uint64
	// Queue-length samples (1 Hz) folded into this bucket.
	QueueSamples     uint64
	MeanCentralQueue float64
	MeanLocalQueue   float64
}

// SiteStats is the per-site breakdown of a run.
type SiteStats struct {
	Site            int
	Utilization     float64 // CPU utilization over the window
	CompletedLocalA uint64  // class A transactions committed locally
	MeanRTLocalA    float64 // their mean response time
}

// TotalAborts sums all abort causes.
func (r Result) TotalAborts() uint64 {
	return r.AbortsDeadlockLocal + r.AbortsDeadlockCentral +
		r.AbortsLocalSeized + r.AbortsCentralNACK + r.AbortsCentralInval
}
