package hybrid

// The sharded parallel run mode (DESIGN.md §12, §14): each local site is
// assigned to one of Shards-1 event-queue shards (contiguous blocks), the
// central complex owns shard 0, and the shards execute concurrently under the
// conservative synchronization of sim.Group with CommDelay as the lookahead
// window. The
// topology is a star — sites interact only with the central complex, never
// with each other — so co-locating several sites on one shard changes
// nothing observable: their events still execute in timestamp order on the
// shared shard queue, and all cross-site effects go through central.
//
// Bit-exactness with the sequential loop rests on three properties:
//
//  1. Partitioned determinism. Every random stream, transaction-ID block,
//     strategy instance, metric accumulator, and conservation counter is
//     owned by exactly one partition (a site, the central complex, or the
//     coordinator), so no result depends on the global interleaving of
//     events at different partitions — only on each partition's own event
//     order, which conservative synchronization preserves exactly.
//  2. Deterministic message order. Cross-shard messages are merged between
//     rounds sorted by (arrival time, edge, per-edge sequence); each edge
//     is written by one shard, so the per-edge sequence reproduces the
//     sequential engine's per-link FIFO order, including same-instant
//     release-before-reply guarantees the commit protocol relies on.
//  3. Barrier-aligned global events. Measurement start, queue samples, and
//     self-checks execute with every shard clock advanced to the event's
//     instant, in a fixed priority order, so clock integrals (CPU busy
//     time) and cross-partition reads see the sequential state.
//
// The one remaining difference class: an event at site A and an event at
// site B at the exact same float64 timestamp execute in seq order on one
// queue and concurrently here. Such ties have measure zero — every site
// timestamp descends from its own continuous exponential arrival chain —
// and cannot influence any partitioned accumulator anyway; the simtest
// differential gate would catch a violation.

import (
	"hybriddb/internal/exec"
	"hybriddb/internal/hybrid/obs"
	"hybriddb/internal/sim"
)

// Barrier priorities for globally synchronized events, replicating the
// scheduling-order tie-break of the sequential loop (the measurement event
// is scheduled first, the self-check chain second, the sample chain third).
// The gaps leave room for the epoch-flush chain, whose position among
// coinciding chain events depends on its interval (see epochFlushPrio).
const (
	prioMeasure   = 0
	prioSelfCheck = 2
	prioSample    = 4
)

// epochFlushPrio places the epoch-flush chain among the other barrier chains
// at a shared instant exactly where the sequential event queue puts it. In
// the sequential run, coinciding chain events execute in insertion order, and
// a repeating chain's pending event was inserted when the chain last fired —
// one interval earlier. A chain with the longer interval therefore inserted
// earlier and fires first. The epoch chain is armed last in Run, so on equal
// intervals (epoch == 1 vs the sample chain, epoch == 10 vs the self-check
// chain, and every rearm thereafter, by induction) it fires after the chain
// with the equal interval.
func epochFlushPrio(epoch float64) int {
	switch {
	case epoch <= 1: // shorter than (or equal to) the 1 s sample interval
		return prioSample + 1
	case epoch <= 10: // between the sample and 10 s self-check intervals
		return prioSelfCheck + 1
	default: // longer than every other chain interval
		return prioMeasure + 1
	}
}

// setupRunMode decides sequential vs sharded and, for a sharded run,
// re-homes every site onto its shard. Called once at the top of Run: only
// then are external observers known, and no server has work yet so the CPU
// and disk servers can rebind clocks.
func (e *Engine) setupRunMode() {
	e.parallel = e.cfg.Shards > 1 &&
		e.cfg.CommDelay > 0 && // the lookahead window; zero means no safe lead
		e.cfg.Feedback != FeedbackIdeal && // ideal feedback reads central state instantaneously
		e.externalObs == 0 // external observers need the single ordered stream
	if !e.parallel {
		return
	}
	nShards := e.cfg.Shards
	if nShards > e.cfg.Sites+1 {
		nShards = e.cfg.Sites + 1 // no point in more shards than partitions
	}
	sims := make([]*sim.Simulator, nShards)
	sims[0] = e.simulator // central keeps the engine's queue as shard 0
	for i := 1; i < nShards; i++ {
		sims[i] = sim.New()
	}
	// Contiguous-block site→shard mapping: worker shard w (1-based) owns a
	// block of sites/(nShards-1) consecutive sites, the first rem workers
	// one extra. Shard count is thereby decoupled from site count — N=1000
	// runs on GOMAXPROCS-ish shards, not 1001 — and any mapping is
	// observationally equivalent: sites interact only with central, and
	// co-located sites still execute in timestamp order on the shared queue.
	workers := nShards - 1
	per, rem := len(e.sites)/workers, len(e.sites)%workers
	shardOf := make([]int, len(e.sites))
	big := rem * (per + 1) // sites held by the per+1-sized blocks
	for i, ls := range e.sites {
		var w int
		if i < big {
			w = i / (per + 1)
		} else {
			w = rem + (i-big)/per
		}
		sh := 1 + w
		shardOf[i] = sh
		ls.sched = exec.NewDispatch(exec.Sim(sims[sh]))
		ls.cpu.Rebind(exec.Sim(sims[sh]))
		for _, d := range ls.disks {
			d.Rebind(exec.Sim(sims[sh]))
		}
	}
	e.m.setHistGroups(shardOf, nShards)
	// Two edges per site (uplink, downlink); lookahead = the one-way delay.
	e.group = sim.NewGroup(sims, 2*len(e.sites), e.cfg.CommDelay)
	// Declare the star: sites talk only to central (shard 0), so the
	// synchronizer can bound site shards by central's clock alone and let
	// them coalesce many lookahead windows per round.
	e.group.SetHub(0)
	e.network = newShardNet(e.group, sims, shardOf, e.cfg.CommDelay)
}

// runSharded drives the Group: the global measurement/sample/check chains
// are armed as barrier events with times built by the same repeated
// addition the sequential chains perform, then the synchronizer runs to the
// horizon.
func (e *Engine) runSharded() {
	e.group.ScheduleGlobalAt(e.cfg.Warmup, prioMeasure, e.startMeasurement)
	if e.cfg.SelfCheck {
		e.armSelfCheck(0)
	}
	e.armQueueSample(0)
	if e.cfg.EpochLength > 0 {
		e.armEpochFlush(0)
	}
	e.group.Run(e.horizon)
}

// armEpochFlush arms the next epoch-boundary flush after instant last as a
// barrier event: every shard clock sits on the boundary, so the coordinator
// may drain the site-owned pending batches and post the uplink messages
// directly (the workers are parked, and a message sent from the boundary
// instant meets the lookahead bound with equality). Boundary floats are built
// by the same repeated addition the sequential chain performs.
func (e *Engine) armEpochFlush(last float64) {
	next := last + e.cfg.EpochLength
	if next > e.horizon {
		return
	}
	e.group.ScheduleGlobalAt(next, epochFlushPrio(e.cfg.EpochLength), func() {
		e.prop.flushEpoch()
		e.armEpochFlush(next)
	})
}

// armSelfCheck arms the next barrier self-check after instant last. The
// next time is last+10 — the identical float the sequential chain computes
// by scheduling 10 seconds after firing at last.
func (e *Engine) armSelfCheck(last float64) {
	const interval = 10.0
	next := last + interval
	if next > e.horizon {
		return
	}
	e.group.ScheduleGlobalAt(next, prioSelfCheck, func() {
		e.observeAt(next, obs.Event{Kind: obs.SelfCheck})
		e.armSelfCheck(next)
	})
}

// armQueueSample arms the next 1 Hz barrier queue sample after instant
// last; every shard clock sits on the sample instant when it fires, so the
// queue lengths read are the sequential ones.
func (e *Engine) armQueueSample(last float64) {
	const interval = 1.0
	next := last + interval
	if next > e.horizon {
		return
	}
	e.group.ScheduleGlobalAt(next, prioSample, func() {
		e.sampleQueues(next)
		e.armQueueSample(next)
	})
}

// shardLink is one directed site<->central link of a sharded run. The sent
// counter is written only by the sending shard's worker, delivered only by
// the receiving shard's worker (distinct words; the Group's round barrier
// orders them against the coordinator's reads).
type shardLink struct {
	group *sim.Group
	src   *sim.Simulator // sending shard's clock
	from  int            // sending shard index
	to    int            // receiving shard index
	edge  int            // FIFO edge id (unique per link)
	delay float64

	sent      uint64
	delivered uint64
}

func (l *shardLink) send(deliver func()) {
	l.sent++
	l.group.Post(l.from, l.to, l.edge, l.src.Now()+l.delay, func() {
		l.delivered++
		deliver()
	})
}

// shardNet is the sharded transport: the same star topology as
// comm.Network, with messages crossing shard boundaries through the Group.
type shardNet struct {
	up   []*shardLink // site i -> central
	down []*shardLink // central -> site i
}

func newShardNet(g *sim.Group, sims []*sim.Simulator, shardOf []int, delay float64) *shardNet {
	n := len(shardOf)
	net := &shardNet{up: make([]*shardLink, n), down: make([]*shardLink, n)}
	for i, sh := range shardOf {
		net.up[i] = &shardLink{
			group: g, src: sims[sh], from: sh, to: 0, edge: i, delay: delay,
		}
		net.down[i] = &shardLink{
			group: g, src: sims[0], from: 0, to: sh, edge: n + i, delay: delay,
		}
	}
	return net
}

// ToCentral implements transport.
func (n *shardNet) ToCentral(site int, deliver func()) { n.up[site].send(deliver) }

// ToSite implements transport.
func (n *shardNet) ToSite(site int, deliver func()) { n.down[site].send(deliver) }

// MessagesSent implements transport. Call only between rounds or after the
// run (the coordinator's view of the link counters).
func (n *shardNet) MessagesSent() uint64 {
	var total uint64
	for i := range n.up {
		total += n.up[i].sent + n.down[i].sent
	}
	return total
}

// MessagesInFlight implements transport.
func (n *shardNet) MessagesInFlight() uint64 {
	var total uint64
	for i := range n.up {
		total += (n.up[i].sent - n.up[i].delivered) + (n.down[i].sent - n.down[i].delivered)
	}
	return total
}
