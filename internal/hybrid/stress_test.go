package hybrid

import (
	"testing"
	"testing/quick"

	"hybriddb/internal/routing"
	"hybriddb/internal/trace"
)

// TestQuickProtocolStress drives short self-checked simulations across a
// randomized configuration space — site counts, contention levels, write
// mixes, delays, batching, disks, feedback modes, and strategies — asserting
// the engine's internal invariants (lock-table consistency, transaction
// conservation, coherence counts) hold everywhere, not just at the paper's
// operating point.
func TestQuickProtocolStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress in -short mode")
	}
	strategies := func(cfg Config) []routing.Strategy {
		p := cfg.ModelParams()
		return []routing.Strategy{
			routing.AlwaysLocal{},
			routing.NewStatic(0.5, cfg.Seed),
			routing.MeasuredRT{},
			routing.QueueLength{},
			routing.QueueThreshold{Theta: -0.2},
			routing.MinIncoming{Params: p, Estimator: routing.FromInSystem},
			routing.MinAverage{Params: p, Estimator: routing.FromQueueLength},
		}
	}
	f := func(seed uint32, knobs [8]uint8) bool {
		cfg := DefaultConfig()
		cfg.Seed = uint64(seed)
		cfg.Warmup = 5
		cfg.Duration = 25
		cfg.SelfCheck = true
		cfg.Sites = int(knobs[0]%5) + 1
		cfg.ArrivalRatePerSite = 0.3 + float64(knobs[1]%30)/10 // 0.3 .. 3.2
		cfg.PWrite = float64(knobs[2]%10) / 10
		cfg.PLocal = 0.3 + float64(knobs[3]%8)/10 // 0.3 .. 1.0
		cfg.Lockspace = 500 + uint32(knobs[4])*100
		cfg.CommDelay = float64(knobs[5]%6) / 10 // 0 .. 0.5
		if knobs[6]%3 == 1 {
			cfg.UpdateBatchWindow = 0.3
		}
		if knobs[6]%3 == 2 {
			cfg.DisksPerSite = 2
			cfg.DisksCentral = 4
		}
		cfg.Feedback = []Feedback{FeedbackAuthOnly, FeedbackAllMessages, FeedbackIdeal}[knobs[7]%3]
		if cfg.PLocal > 1 {
			cfg.PLocal = 1
		}

		all := strategies(cfg)
		strat := all[int(knobs[7]/3)%len(all)]

		engine, err := New(cfg, strat)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		counter := trace.NewCounter()
		engine.SetTracer(counter)
		r := engine.Run() // SelfCheck panics on any invariant violation
		if r.Completed > r.Generated {
			return false
		}
		// Every arrival must be traced.
		return counter.Count(trace.Arrive) == r.Generated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
