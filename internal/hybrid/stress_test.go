package hybrid

import (
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"hybriddb/internal/routing"
	"hybriddb/internal/trace"
)

// TestQuickProtocolStress drives short self-checked simulations across a
// randomized configuration space — site counts, contention levels, write
// mixes, delays, batching, disks, feedback modes, and strategies — asserting
// the engine's internal invariants (lock-table consistency, transaction
// conservation, coherence counts) hold everywhere, not just at the paper's
// operating point.
func TestQuickProtocolStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress in -short mode")
	}
	strategies := func(cfg Config) []routing.Strategy {
		p := cfg.ModelParams()
		return []routing.Strategy{
			routing.AlwaysLocal{},
			routing.NewStatic(0.5, cfg.Seed),
			routing.MeasuredRT{},
			routing.QueueLength{},
			routing.QueueThreshold{Theta: -0.2},
			routing.MinIncoming{Params: p, Estimator: routing.FromInSystem},
			routing.MinAverage{Params: p, Estimator: routing.FromQueueLength},
		}
	}
	f := func(seed uint32, knobs [8]uint8) bool {
		cfg := DefaultConfig()
		cfg.Seed = uint64(seed)
		cfg.Warmup = 5
		cfg.Duration = 25
		cfg.SelfCheck = true
		cfg.Sites = int(knobs[0]%5) + 1
		cfg.ArrivalRatePerSite = 0.3 + float64(knobs[1]%30)/10 // 0.3 .. 3.2
		cfg.PWrite = float64(knobs[2]%10) / 10
		cfg.PLocal = 0.3 + float64(knobs[3]%8)/10 // 0.3 .. 1.0
		cfg.Lockspace = 500 + uint32(knobs[4])*100
		cfg.CommDelay = float64(knobs[5]%6) / 10 // 0 .. 0.5
		if knobs[6]%3 == 1 {
			cfg.UpdateBatchWindow = 0.3
		}
		if knobs[6]%3 == 2 {
			cfg.DisksPerSite = 2
			cfg.DisksCentral = 4
		}
		cfg.Feedback = []Feedback{FeedbackAuthOnly, FeedbackAllMessages, FeedbackIdeal}[knobs[7]%3]
		if cfg.PLocal > 1 {
			cfg.PLocal = 1
		}

		all := strategies(cfg)
		strat := all[int(knobs[7]/3)%len(all)]

		engine, err := New(cfg, strat)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		counter := trace.NewCounter()
		engine.SetTracer(counter)
		r := engine.Run() // SelfCheck panics on any invariant violation
		if r.Completed > r.Generated {
			return false
		}
		// Every arrival must be traced.
		return counter.Count(trace.Arrive) == r.Generated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentEngines spins many engines with distinct seeds in concurrent
// goroutines and checks each produces exactly the result it produces when run
// alone — engines must share no mutable state, the property the parallel
// experiment runner rests on. Run under `go test -race` this also has the
// race detector audit every cross-engine access.
func TestConcurrentEngines(t *testing.T) {
	const engines = 8
	cfg := DefaultConfig()
	cfg.Sites = 5
	cfg.Warmup = 10
	cfg.Duration = 60
	cfg.ArrivalRatePerSite = 2.0
	cfg.SelfCheck = true

	strategies := func(c Config) []routing.Strategy {
		p := c.ModelParams()
		return []routing.Strategy{
			routing.AlwaysLocal{},
			routing.NewStatic(0.4, c.Seed),
			routing.QueueLength{},
			routing.MinAverage{Params: p, Estimator: routing.FromInSystem},
		}
	}

	// Reference: each configuration run alone, serially.
	serial := make([]Result, engines)
	for i := range serial {
		c := cfg
		c.Seed = uint64(i + 1)
		engine, err := New(c, strategies(c)[i%4])
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = engine.Run()
	}

	// The same configurations, all engines running concurrently.
	concurrent := make([]Result, engines)
	errs := make([]error, engines)
	var wg sync.WaitGroup
	wg.Add(engines)
	for i := 0; i < engines; i++ {
		go func(i int) {
			defer wg.Done()
			c := cfg
			c.Seed = uint64(i + 1)
			engine, err := New(c, strategies(c)[i%4])
			if err != nil {
				errs[i] = err
				return
			}
			concurrent[i] = engine.Run()
		}(i)
	}
	wg.Wait()

	for i := 0; i < engines; i++ {
		if errs[i] != nil {
			t.Fatalf("engine %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(serial[i], concurrent[i]) {
			t.Errorf("engine %d: concurrent result differs from solo run — engines share state", i)
		}
	}
	// Distinct seeds must actually explore distinct sample paths.
	if reflect.DeepEqual(concurrent[0].Generated, concurrent[4].Generated) &&
		concurrent[0].MeanRT == concurrent[4].MeanRT {
		t.Error("engines with distinct seeds produced identical results")
	}
}
