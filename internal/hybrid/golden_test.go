package hybrid

import (
	"strconv"
	"testing"

	"hybriddb/internal/routing"
)

// golden pins one strategy's Result for the fixed golden configuration.
// Floats are stored as hex strings (strconv.FormatFloat 'x'), so the
// comparison is bit-exact: a refactor that changes any event ordering, RNG
// draw, or accumulation order fails this test even if the run still looks
// statistically plausible.
type golden struct {
	Strategy                                                    string
	Generated, Completed                                        uint64
	CompletedLocalA, CompletedShippedA, CompletedClassB         uint64
	MeanRT, MeanRTLocalA, MeanRTShippedA, MeanRTClassB          string
	P95RT, ShipFraction, Throughput                             string
	MeanLockWait, MeanCentralQueue, MeanLocalQueue, MeanViewAge string
	UtilLocalMean, UtilLocalMax, UtilCentral                    string
	Aborts, AuthRounds, MessagesSent                            uint64
}

// goldenResults was regenerated for the sharded-core refactor, which
// intentionally changed the sample path: the workload generator and stateful
// strategies now draw from per-site RNG streams, transaction IDs carry the
// site in their high bits, and metrics accumulate per partition before a
// fixed-order merge. Regenerate only when a change is MEANT to alter
// simulation behavior; pure refactors must reproduce these bits exactly —
// in BOTH run modes, which share one sample path by construction.
var goldenResults = []golden{
	{
		Strategy:  "none",
		Generated: 2027, Completed: 1998,
		CompletedLocalA: 1220, CompletedShippedA: 0, CompletedClassB: 420,
		MeanRT: "0x1.8f98485b82295p+00", MeanRTLocalA: "0x1.b61e0f14e18b6p+00", MeanRTShippedA: "0x0p+00", MeanRTClassB: "0x1.1fb22baec26eap+00",
		P95RT: "0x1.e666666666667p+01", ShipFraction: "0x0p+00", Throughput: "0x1.48p+04",
		MeanLockWait: "0x1.3ac482a06c175p-01", MeanCentralQueue: "0x1.add3c0ca4587fp-03", MeanLocalQueue: "0x1.101e573ac901fp+01", MeanViewAge: "0x1.f44196dc67fe5p-02",
		UtilLocalMean: "0x1.5f16982da3e62p-01", UtilLocalMax: "0x1.917fbece358d5p-01", UtilCentral: "0x1.40e909d0781b5p-03",
		Aborts: 6, AuthRounds: 418, MessagesSent: 13818,
	},
	{
		Strategy:  "static(0.500)",
		Generated: 2027, Completed: 2005,
		CompletedLocalA: 610, CompletedShippedA: 607, CompletedClassB: 422,
		MeanRT: "0x1.117523a61f9ddp+00", MeanRTLocalA: "0x1.ea2c60ad5cd1ep-01", MeanRTShippedA: "0x1.224bef69b1ec1p+00", MeanRTClassB: "0x1.223f1df5561edp+00",
		P95RT: "0x1.58d4fdf3b6459p+00", ShipFraction: "0x1.fa15f78d18807p-02", Throughput: "0x1.47ccccccccccdp+04",
		MeanLockWait: "0x1.3994df0689b8cp-02", MeanCentralQueue: "0x1.f9add3c0ca458p-02", MeanLocalQueue: "0x1.0abee4d1db56bp-01", MeanViewAge: "0x1.c65dd7772d961p-02",
		UtilLocalMean: "0x1.6257c14908426p-02", UtilLocalMax: "0x1.a208843e9e61dp-02", UtilCentral: "0x1.876b6bf5fbc6dp-02",
		Aborts: 7, AuthRounds: 1022, MessagesSent: 16115,
	},
	{
		Strategy:  "measured-rt",
		Generated: 2027, Completed: 2003,
		CompletedLocalA: 113, CompletedShippedA: 1104, CompletedClassB: 422,
		MeanRT: "0x1.26e16ad3045aap+00", MeanRTLocalA: "0x1.27e413255291p+00", MeanRTShippedA: "0x1.2690c87e6e696p+00", MeanRTClassB: "0x1.276f1a990ce88p+00",
		P95RT: "0x1.473c870bdcb7cp+00", ShipFraction: "0x1.d0afbc68c4036p-01", Throughput: "0x1.47ccccccccccdp+04",
		MeanLockWait: "0x1.49de777bd133ap-02", MeanCentralQueue: "0x1.25ed097b425edp+00", MeanLocalQueue: "0x1.01e573ac901e4p-03", MeanViewAge: "0x1.af2e041e2e64dp-02",
		UtilLocalMean: "0x1.0447af185b3d6p-04", UtilLocalMax: "0x1.4de668f017425p-02", UtilCentral: "0x1.237dd9222405bp-01",
		Aborts: 0, AuthRounds: 1522, MessagesSent: 17777,
	},
	{
		Strategy:  "queue-length",
		Generated: 2027, Completed: 2004,
		CompletedLocalA: 821, CompletedShippedA: 392, CompletedClassB: 421,
		MeanRT: "0x1.fd2e09953c78bp-01", MeanRTLocalA: "0x1.b889249a59c2bp-01", MeanRTShippedA: "0x1.215e974388b6bp+00", MeanRTClassB: "0x1.21235f538636p+00",
		P95RT: "0x1.325236c6d294ep+00", ShipFraction: "0x1.4c0a237c32b17p-02", Throughput: "0x1.46ccccccccccdp+04",
		MeanLockWait: "0x1.e00c60ff933d5p-03", MeanCentralQueue: "0x1.3c0ca4587e6b9p-02", MeanLocalQueue: "0x1.2a59c20de7fb1p-01", MeanViewAge: "0x1.d2b6a416c8be3p-02",
		UtilLocalMean: "0x1.db8d5b6ff00ebp-02", UtilLocalMax: "0x1.f9c16d2c0128ap-02", UtilCentral: "0x1.37aa7b63411c1p-02",
		Aborts: 7, AuthRounds: 811, MessagesSent: 15335,
	},
	{
		Strategy:  "min-average/nis",
		Generated: 2027, Completed: 2007,
		CompletedLocalA: 711, CompletedShippedA: 506, CompletedClassB: 421,
		MeanRT: "0x1.f7f1293616701p-01", MeanRTLocalA: "0x1.937e82bac5aa6p-01", MeanRTShippedA: "0x1.22b57bfeab57ep+00", MeanRTClassB: "0x1.223b5dc706753p+00",
		P95RT: "0x1.314cdf6c18aa6p+00", ShipFraction: "0x1.ac5b3f5dc83cdp-02", Throughput: "0x1.479999999999ap+04",
		MeanLockWait: "0x1.0c7624d252be4p-02", MeanCentralQueue: "0x1.0fcd6e9e06521p-01", MeanLocalQueue: "0x1.d27d27d27d27dp-02", MeanViewAge: "0x1.cc555dffbb3dfp-02",
		UtilLocalMean: "0x1.98cc18beff72fp-02", UtilLocalMax: "0x1.a953777c8b4ap-02", UtilCentral: "0x1.64218edd8f116p-02",
		Aborts: 7, AuthRounds: 925, MessagesSent: 15813,
	},
}

func goldenConfig() Config {
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.Warmup = 20
	cfg.Duration = 80
	cfg.ArrivalRatePerSite = 2.0
	cfg.SelfCheck = true
	return cfg
}

func goldenStrategies(cfg Config) []routing.Strategy {
	p := cfg.ModelParams()
	return []routing.Strategy{
		routing.AlwaysLocal{},
		routing.NewStatic(0.5, 7),
		routing.MeasuredRT{},
		routing.QueueLength{},
		routing.MinAverage{Params: p, Estimator: routing.FromInSystem},
	}
}

func hexf(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }

// TestGoldenSweep re-runs the pinned multi-strategy sweep and compares every
// field bit-for-bit against the pre-refactor engine's output. This is the
// regression gate for "behaviorally invisible" refactors: race-freedom and
// statistical tests can pass while the sample path silently changes; this
// test cannot.
func TestGoldenSweep(t *testing.T) {
	cfg := goldenConfig()
	for i, s := range goldenStrategies(cfg) {
		want := goldenResults[i]
		s := s
		t.Run(want.Strategy, func(t *testing.T) {
			e, err := New(cfg, s)
			if err != nil {
				t.Fatal(err)
			}
			r := e.Run()
			if r.Strategy != want.Strategy {
				t.Fatalf("strategy %q, want %q", r.Strategy, want.Strategy)
			}
			ints := []struct {
				name      string
				got, want uint64
			}{
				{"Generated", r.Generated, want.Generated},
				{"Completed", r.Completed, want.Completed},
				{"CompletedLocalA", r.CompletedLocalA, want.CompletedLocalA},
				{"CompletedShippedA", r.CompletedShippedA, want.CompletedShippedA},
				{"CompletedClassB", r.CompletedClassB, want.CompletedClassB},
				{"TotalAborts", r.TotalAborts(), want.Aborts},
				{"AuthRounds", r.AuthRounds, want.AuthRounds},
				{"MessagesSent", r.MessagesSent, want.MessagesSent},
			}
			for _, c := range ints {
				if c.got != c.want {
					t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
				}
			}
			floats := []struct {
				name string
				got  float64
				want string
			}{
				{"MeanRT", r.MeanRT, want.MeanRT},
				{"MeanRTLocalA", r.MeanRTLocalA, want.MeanRTLocalA},
				{"MeanRTShippedA", r.MeanRTShippedA, want.MeanRTShippedA},
				{"MeanRTClassB", r.MeanRTClassB, want.MeanRTClassB},
				{"P95RT", r.P95RT, want.P95RT},
				{"ShipFraction", r.ShipFraction, want.ShipFraction},
				{"Throughput", r.Throughput, want.Throughput},
				{"MeanLockWait", r.MeanLockWait, want.MeanLockWait},
				{"MeanCentralQueue", r.MeanCentralQueue, want.MeanCentralQueue},
				{"MeanLocalQueue", r.MeanLocalQueue, want.MeanLocalQueue},
				{"MeanViewAge", r.MeanViewAge, want.MeanViewAge},
				{"UtilLocalMean", r.UtilLocalMean, want.UtilLocalMean},
				{"UtilLocalMax", r.UtilLocalMax, want.UtilLocalMax},
				{"UtilCentral", r.UtilCentral, want.UtilCentral},
			}
			for _, c := range floats {
				if got := hexf(c.got); got != c.want {
					t.Errorf("%s = %s (%v), want %s", c.name, got, c.got, c.want)
				}
			}
		})
	}
}

// TestGoldenPerSiteConsistency cross-checks the per-site breakdown against
// the aggregate on the golden configuration — the per-site accumulators
// moved between layers in the decomposition and must still reconcile.
func TestGoldenPerSiteConsistency(t *testing.T) {
	cfg := goldenConfig()
	e, err := New(cfg, routing.NewStatic(0.5, 7))
	if err != nil {
		t.Fatal(err)
	}
	r := e.Run()
	if len(r.PerSite) != cfg.Sites {
		t.Fatalf("PerSite has %d entries, want %d", len(r.PerSite), cfg.Sites)
	}
	var sum uint64
	for _, s := range r.PerSite {
		sum += s.CompletedLocalA
	}
	if sum != r.CompletedLocalA {
		t.Errorf("per-site completions %d != aggregate %d", sum, r.CompletedLocalA)
	}
}
