// Package obs is the engine's observer bus: every instrumentation concern —
// metrics accumulation, protocol tracing, periodic queue samples, invariant
// self-checks — subscribes to one Observer interface instead of being wired
// directly into the transaction lifecycle. The engine emits two tiers of
// events:
//
//   - Lifecycle events carry numeric payloads only (response times, queue
//     lengths, abort causes) and are emitted unconditionally; the metrics
//     observer folds them into the run's Result.
//   - Protocol-detail events (Kind == TraceDetail) mirror the trace package's
//     event stream one-to-one, including rendered note strings. They are
//     emitted only when a detail observer is subscribed (Bus.HasDetail), so
//     the hot loop pays nothing — not even string construction — when tracing
//     is off.
package obs

import "hybriddb/internal/trace"

// Kind classifies bus events.
type Kind uint8

// Lifecycle event kinds.
const (
	// MeasureStart opens the measurement window: observers reset or arm
	// their accumulators at Event.At.
	MeasureStart Kind = iota + 1
	// TxnArrive is one admitted transaction: ClassB says which class,
	// Shipped the routing decision (always true for class B), and Value the
	// staleness of the central-state view at decision time (class A only).
	TxnArrive
	// TxnLocalCommit is a class A transaction committing at its home site:
	// Site is the site index, Value the response time.
	TxnLocalCommit
	// TxnReply is a completion reply delivered at the origin site for a
	// centrally executed transaction: ClassB says which class, Value the
	// response time.
	TxnReply
	// LockWaitEnd closes one blocking lock wait; Value is its duration.
	LockWaitEnd
	// AuthRound is one authentication round opened by a central commit.
	AuthRound
	// Abort causes, one kind per counter.
	AbortDeadlockLocal
	AbortDeadlockCentral
	AbortLocalSeized
	AbortCentralNACK
	AbortCentralInval
	// ColdFetch is a central-path database call that referenced a cold
	// (non-replicated) element under partial replication and paid the
	// configured fetch delay before its lock request; Value is that delay.
	ColdFetch
	// QueueSample is the periodic (1 Hz simulated) CPU queue observation:
	// Value is the central queue length, Aux the mean local queue length.
	QueueSample
	// SelfCheck asks invariant-checking observers to audit the engine now.
	SelfCheck
	// TraceDetail wraps one protocol-level trace event (Event.Trace, plus
	// Txn/Site/Elem/Note). Emitted only when a detail observer subscribed.
	TraceDetail
)

var kindNames = map[Kind]string{
	MeasureStart:         "measure-start",
	TxnArrive:            "txn-arrive",
	TxnLocalCommit:       "txn-local-commit",
	TxnReply:             "txn-reply",
	LockWaitEnd:          "lock-wait-end",
	AuthRound:            "auth-round",
	AbortDeadlockLocal:   "abort-deadlock-local",
	AbortDeadlockCentral: "abort-deadlock-central",
	AbortLocalSeized:     "abort-local-seized",
	AbortCentralNACK:     "abort-central-nack",
	AbortCentralInval:    "abort-central-inval",
	ColdFetch:            "cold-fetch",
	QueueSample:          "queue-sample",
	SelfCheck:            "self-check",
	TraceDetail:          "trace-detail",
}

// String returns the kind's name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "Kind(?)"
}

// Event is one observation. Which payload fields are meaningful depends on
// Kind; unused fields are zero.
type Event struct {
	At   float64 // simulated time
	Kind Kind

	// Protocol-detail payload (Kind == TraceDetail).
	Trace trace.Kind
	Txn   int64
	Site  int // also the origin site of TxnArrive/TxnLocalCommit/TxnReply
	Elem  uint32
	Note  string

	// Lifecycle payload.
	ClassB  bool
	Shipped bool
	Value   float64
	Aux     float64
}

// Observer receives events from the engine. Implementations must not retain
// the event beyond the call unless they copy it (Event is a value type).
type Observer interface {
	OnEvent(Event)
}

// DetailObserver is an Observer that also wants the high-frequency
// protocol-detail stream (TraceDetail events). Bus.Subscribe detects it.
type DetailObserver interface {
	Observer
	WantDetail() bool
}

// Func adapts a plain function to an Observer.
type Func func(Event)

// OnEvent implements Observer.
func (f Func) OnEvent(e Event) { f(e) }

// Bus fans events out to subscribed observers. The zero value is ready to
// use; an empty bus drops everything.
type Bus struct {
	all    []Observer // receive every event
	detail []Observer // additionally receive TraceDetail events
}

// Subscribe adds an observer. Observers implementing DetailObserver with
// WantDetail() == true also receive the protocol-detail stream.
func (b *Bus) Subscribe(o Observer) {
	if o == nil {
		return
	}
	b.all = append(b.all, o)
	if d, ok := o.(DetailObserver); ok && d.WantDetail() {
		b.detail = append(b.detail, o)
	}
}

// HasDetail reports whether any subscribed observer wants protocol-detail
// events. Emitters check this before building a TraceDetail event, so note
// strings are never rendered when tracing is off.
func (b *Bus) HasDetail() bool { return len(b.detail) > 0 }

// Emit delivers a lifecycle event to every subscribed observer.
func (b *Bus) Emit(e Event) {
	for _, o := range b.all {
		o.OnEvent(e)
	}
}

// EmitDetail delivers a protocol-detail event to detail observers only.
func (b *Bus) EmitDetail(e Event) {
	for _, o := range b.detail {
		o.OnEvent(e)
	}
}

// Tracer adapts a trace.Tracer to the bus: it subscribes for the
// protocol-detail stream and forwards each TraceDetail event as a
// trace.Event, reproducing exactly the stream the engine used to hand the
// tracer directly.
type Tracer struct {
	T trace.Tracer
}

// NewTracer wraps t for subscription on the bus.
func NewTracer(t trace.Tracer) Tracer { return Tracer{T: t} }

// WantDetail implements DetailObserver.
func (Tracer) WantDetail() bool { return true }

// OnEvent implements Observer.
func (a Tracer) OnEvent(e Event) {
	if e.Kind != TraceDetail || a.T == nil {
		return
	}
	a.T.Record(trace.Event{
		At: e.At, Kind: e.Trace, Txn: e.Txn, Site: e.Site, Elem: e.Elem, Note: e.Note,
	})
}
