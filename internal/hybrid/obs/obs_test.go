package obs

import (
	"testing"

	"hybriddb/internal/trace"
)

// detailFunc is a Func that also opts into the detail stream.
type detailFunc struct{ f func(Event) }

func (d detailFunc) OnEvent(e Event)  { d.f(e) }
func (d detailFunc) WantDetail() bool { return true }

func TestBusZeroValueDropsEverything(t *testing.T) {
	var b Bus
	if b.HasDetail() {
		t.Fatal("empty bus reports detail observers")
	}
	// Must not panic.
	b.Emit(Event{Kind: TxnArrive})
	b.EmitDetail(Event{Kind: TraceDetail})
	b.Subscribe(nil)
	b.Emit(Event{Kind: TxnArrive})
}

func TestBusFanOut(t *testing.T) {
	var b Bus
	var got1, got2 []Kind
	b.Subscribe(Func(func(e Event) { got1 = append(got1, e.Kind) }))
	b.Subscribe(Func(func(e Event) { got2 = append(got2, e.Kind) }))
	b.Emit(Event{Kind: TxnArrive})
	b.Emit(Event{Kind: TxnReply})
	want := []Kind{TxnArrive, TxnReply}
	for _, got := range [][]Kind{got1, got2} {
		if len(got) != len(want) {
			t.Fatalf("observer saw %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("observer saw %v, want %v", got, want)
			}
		}
	}
}

func TestDetailRouting(t *testing.T) {
	var b Bus
	var plain, detail int
	b.Subscribe(Func(func(Event) { plain++ }))
	if b.HasDetail() {
		t.Fatal("plain observer counted as detail observer")
	}
	b.Subscribe(detailFunc{func(Event) { detail++ }})
	if !b.HasDetail() {
		t.Fatal("detail observer not detected")
	}
	b.Emit(Event{Kind: TxnArrive})         // both
	b.EmitDetail(Event{Kind: TraceDetail}) // detail only
	if plain != 1 {
		t.Errorf("plain observer got %d events, want 1", plain)
	}
	if detail != 2 {
		t.Errorf("detail observer got %d events, want 2", detail)
	}
}

func TestTracerAdapter(t *testing.T) {
	ring := trace.NewRing(8)
	a := NewTracer(ring)
	if !a.WantDetail() {
		t.Fatal("tracer adapter must want detail")
	}
	a.OnEvent(Event{Kind: TxnArrive, Value: 1.5}) // lifecycle: ignored
	a.OnEvent(Event{
		At: 2.5, Kind: TraceDetail, Trace: trace.Arrive,
		Txn: 7, Site: 3, Elem: 11, Note: "class A",
	})
	evs := ring.Events()
	if len(evs) != 1 {
		t.Fatalf("ring holds %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.At != 2.5 || e.Kind != trace.Arrive || e.Txn != 7 || e.Site != 3 ||
		e.Elem != 11 || e.Note != "class A" {
		t.Errorf("forwarded event = %+v", e)
	}
}

func TestTracerAdapterNilTracer(t *testing.T) {
	a := NewTracer(nil)
	// Must not panic.
	a.OnEvent(Event{Kind: TraceDetail, Trace: trace.Arrive})
}

func TestKindString(t *testing.T) {
	for k := MeasureStart; k <= TraceDetail; k++ {
		if s := k.String(); s == "" || s == "Kind(?)" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(0).String() != "Kind(?)" {
		t.Errorf("unknown kind = %q", Kind(0).String())
	}
}
