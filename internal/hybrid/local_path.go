package hybrid

// The local execution path of the transaction lifecycle layer: class A
// transactions retained at their home site, from setup I/O through database
// calls, lock acquisition, and the local commit point of §2.

import (
	"fmt"

	"hybriddb/internal/hybrid/obs"
	"hybriddb/internal/lock"
	"hybriddb/internal/trace"
)

// localPath runs class A transactions at their home site.
type localPath struct{ e *Engine }

// start admits a transaction to its home site: transaction initiation +
// message handling CPU, then the initial I/O (no locks held during either,
// §3.1).
func (p localPath) start(t *txnRun) {
	e := p.e
	ls := e.sites[t.spec.HomeSite]
	ls.inSystem++
	ls.running.Put(t.id(), t)
	ls.cpu.Submit(e.cfg.InstrOverhead, t.conts.setup)
}

// setupIO runs after the admission CPU burst: the initial I/O, no locks held.
func (p localPath) setupIO(t *txnRun) {
	e := p.e
	ls := e.sites[t.spec.HomeSite]
	scheduleIO(ls.sched, ls.disks, uint32(t.spec.ID), e.cfg.SetupIOTime, t.conts.setupIO)
}

// call performs database call i of a locally running transaction: CPU burst,
// then lock acquisition, then (first run only) the I/O.
func (p localPath) call(t *txnRun, i int) {
	e := p.e
	if i >= e.cfg.CallsPerTxn {
		p.commit(t)
		return
	}
	t.callIdx = i
	e.sites[t.spec.HomeSite].cpu.Submit(e.cfg.InstrPerCall, t.conts.call)
}

// callBody is call callIdx's work after its CPU burst: the lock acquisition.
func (p localPath) callBody(t *txnRun) {
	e := p.e
	i := t.callIdx
	ls := e.sites[t.spec.HomeSite]
	elem, mode := t.spec.Elements[i], t.spec.Modes[i]
	if _, held := ls.locks.Holds(t.id(), elem); held {
		// Re-run retains locks across a cross-site abort (§3.1).
		p.afterLock(t, i)
		return
	}
	e.emit(trace.LockRequest, t.spec.ID, ls.idx, elem, mode.String())
	switch ls.locks.Acquire(t.id(), elem, mode, t.conts.grant) {
	case lock.Granted:
		e.emit(trace.LockGranted, t.spec.ID, ls.idx, elem, "")
		p.afterLock(t, i)
	case lock.Queued:
		t.phase = phaseLockWait
		t.lockWaitFrom = ls.sched.Now()
		e.emit(trace.LockWaitBegin, t.spec.ID, ls.idx, elem, "")
	case lock.Deadlock:
		e.emit(trace.DeadlockAbort, t.spec.ID, ls.idx, elem, "")
		p.deadlockAbort(t)
	}
}

// granted resumes call callIdx after a queued lock request was granted.
func (p localPath) granted(t *txnRun) {
	e := p.e
	e.recordLockWait(t)
	e.emit(trace.LockGranted, t.spec.ID, e.sites[t.spec.HomeSite].idx, t.spec.Elements[t.callIdx], "")
	p.afterLock(t, t.callIdx)
}

func (p localPath) afterLock(t *txnRun, i int) {
	e := p.e
	if t.attempt == 1 {
		// First run: fetch the data from disk. Re-runs find all data in
		// memory (§3.1). conts.io advances to call callIdx+1.
		ls := e.sites[t.spec.HomeSite]
		scheduleIO(ls.sched, ls.disks, t.spec.Elements[i], e.cfg.IOTimePerCall, t.conts.io)
		return
	}
	p.call(t, i+1)
}

// commit is the commit point of a locally running class A transaction (§2):
// abort if marked; otherwise release locks, raise coherence counts on
// updated elements, and propagate the updates asynchronously — completing
// without waiting for the central acknowledgement.
func (p localPath) commit(t *txnRun) {
	e := p.e
	ls := e.sites[t.spec.HomeSite]
	if t.marked {
		e.observeAt(ls.sched.Now(), obs.Event{Kind: obs.AbortLocalSeized, Site: ls.idx})
		e.emit(trace.CrossAbortLocal, t.spec.ID, t.spec.HomeSite, 0, "seized by central commit")
		p.restart(t)
		return
	}
	// The update set rides the asynchronous update message, so it cannot be
	// scratch: propagate takes ownership, and the buffer returns to the
	// site's pool with the central acknowledgement.
	updates := t.spec.AppendUpdates(ls.takeUpdBuf())
	for _, elem := range t.spec.Elements {
		ls.locks.Release(t.id(), elem)
	}
	for _, elem := range updates {
		ls.locks.IncrCoherence(elem)
	}
	if len(updates) > 0 {
		if e.Detailed() {
			e.emit(trace.UpdatePropagated, t.spec.ID, ls.idx, 0, fmt.Sprintf("%d elements", len(updates)))
		}
		e.prop.propagate(ls, updates)
	} else if updates != nil {
		ls.updFree = append(ls.updFree, updates)
	}
	e.emit(trace.CommitLocal, t.spec.ID, t.spec.HomeSite, 0, "")

	now := ls.sched.Now()
	rt := now - t.arrivedAt
	t.phase = phaseDone
	ls.lastLocalRT = rt
	ls.inSystem--
	ls.running.Delete(t.id())
	ls.completed++
	e.observeAt(now, obs.Event{Kind: obs.TxnLocalCommit, Site: ls.idx, Value: rt})
	e.recycleTxnRun(t)
}

// restart re-runs a cross-site-aborted local transaction. Locks other than
// the seized ones are retained (§3.1); data is in memory.
func (p localPath) restart(t *txnRun) {
	e := p.e
	t.marked = false
	t.attempt++
	t.phase = phaseExecuting
	if e.Detailed() {
		e.emit(trace.Rerun, t.spec.ID, t.spec.HomeSite, 0, fmt.Sprintf("attempt %d", t.attempt))
	}
	e.sites[t.spec.HomeSite].sched.Schedule(e.cfg.RestartDelay, t.conts.restart)
}

// deadlockAbort handles a same-site deadlock: the requester aborts and
// releases all locks (§4.1), then re-runs.
func (p localPath) deadlockAbort(t *txnRun) {
	e := p.e
	ls := e.sites[t.spec.HomeSite]
	e.observeAt(ls.sched.Now(), obs.Event{Kind: obs.AbortDeadlockLocal, Site: ls.idx})
	ls.locks.ReleaseAll(t.id())
	t.marked = false
	t.attempt++
	t.phase = phaseExecuting
	ls.sched.Schedule(e.cfg.RestartDelay, t.conts.restart)
}
