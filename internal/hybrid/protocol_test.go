package hybrid

import (
	"testing"

	"hybriddb/internal/routing"
	"hybriddb/internal/trace"
)

// eventLog collects every event grouped by transaction.
type eventLog struct {
	byTxn map[int64][]trace.Kind
}

func (l *eventLog) Record(e trace.Event) {
	if e.Txn == 0 {
		return
	}
	l.byTxn[e.Txn] = append(l.byTxn[e.Txn], e.Kind)
}

func contains(kinds []trace.Kind, k trace.Kind) bool {
	for _, kind := range kinds {
		if kind == k {
			return true
		}
	}
	return false
}

// indexOf returns the first position of k, or -1.
func indexOf(kinds []trace.Kind, k trace.Kind) int {
	for i, kind := range kinds {
		if kind == k {
			return i
		}
	}
	return -1
}

// runTracedContended runs a contended mixed workload with full tracing.
func runTracedContended(t *testing.T) *eventLog {
	t.Helper()
	cfg := testConfig()
	cfg.Warmup, cfg.Duration = 0, 150
	cfg.ArrivalRatePerSite = 2.0
	cfg.PWrite = 0.5
	cfg.Lockspace = 2000
	e, err := New(cfg, routing.NewStatic(0.5, 9))
	if err != nil {
		t.Fatal(err)
	}
	log := &eventLog{byTxn: make(map[int64][]trace.Kind)}
	e.SetTracer(log)
	e.Run()
	return log
}

// TestProtocolSequenceVictim verifies the §2 victim lifecycle: a local
// transaction whose lock is seized by a central commit aborts at its commit
// point, re-runs, and (if it completes) commits locally afterwards.
func TestProtocolSequenceVictim(t *testing.T) {
	log := runTracedContended(t)
	verified := 0
	for txn, kinds := range log.byTxn {
		abortAt := indexOf(kinds, trace.CrossAbortLocal)
		if abortAt < 0 {
			continue
		}
		rerunAt := indexOf(kinds[abortAt:], trace.Rerun)
		if rerunAt < 0 {
			t.Errorf("txn %d cross-aborted without a rerun: %v", txn, kinds)
			continue
		}
		if commitAt := indexOf(kinds, trace.CommitLocal); commitAt >= 0 && commitAt < abortAt {
			t.Errorf("txn %d committed before its cross abort: %v", txn, kinds)
		}
		verified++
	}
	if verified == 0 {
		t.Skip("no local victims in this run; contention too low")
	}
}

// TestProtocolSequenceCentralCommit verifies that every central commit was
// preceded by at least one authentication request and followed by exactly
// one reply delivery.
func TestProtocolSequenceCentralCommit(t *testing.T) {
	log := runTracedContended(t)
	checked := 0
	for txn, kinds := range log.byTxn {
		commitAt := indexOf(kinds, trace.CommitCentral)
		if commitAt < 0 {
			continue
		}
		authAt := indexOf(kinds, trace.AuthRequest)
		if authAt < 0 || authAt > commitAt {
			t.Errorf("txn %d committed centrally without prior authentication: %v", txn, kinds)
		}
		replies := 0
		for _, k := range kinds {
			if k == trace.ReplyDelivered {
				replies++
			}
		}
		// Zero replies is legitimate when the horizon cuts the run with
		// the reply message still in flight; more than one never is.
		if replies > 1 {
			t.Errorf("txn %d delivered %d replies: %v", txn, replies, kinds)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no central commits traced")
	}
}

// TestProtocolSequenceNACKRetries verifies that a NACKed central transaction
// re-runs and authenticates again rather than committing on the failed
// round.
func TestProtocolSequenceNACKRetries(t *testing.T) {
	log := runTracedContended(t)
	verified := 0
	for txn, kinds := range log.byTxn {
		nackAt := indexOf(kinds, trace.AuthNACK)
		if nackAt < 0 {
			continue
		}
		commitAt := indexOf(kinds, trace.CommitCentral)
		if commitAt >= 0 && commitAt < nackAt {
			continue // commit from an earlier successful round is impossible; skip defensively
		}
		if commitAt >= 0 {
			// Committed eventually: there must be a second auth round
			// between the NACK and the commit.
			laterAuth := indexOf(kinds[nackAt:], trace.AuthRequest)
			if laterAuth < 0 {
				t.Errorf("txn %d committed after NACK without re-authentication: %v", txn, kinds)
			}
		}
		verified++
	}
	if verified == 0 {
		t.Skip("no NACKs in this run")
	}
}

// TestProtocolEveryCompletionHasSingleCommit verifies no transaction commits
// twice (one commit-local or one reply-delivered per transaction).
func TestProtocolEveryCompletionHasSingleCommit(t *testing.T) {
	log := runTracedContended(t)
	for txn, kinds := range log.byTxn {
		commits := 0
		for _, k := range kinds {
			if k == trace.CommitLocal || k == trace.ReplyDelivered {
				commits++
			}
		}
		if commits > 1 {
			t.Errorf("txn %d completed %d times: %v", txn, commits, kinds)
		}
	}
}

// TestProtocolUpdatesOnlyAfterCommit verifies asynchronous updates are only
// propagated by committing transactions (never by aborted attempts).
func TestProtocolUpdatesOnlyAfterCommit(t *testing.T) {
	log := runTracedContended(t)
	seen := false
	for txn, kinds := range log.byTxn {
		upAt := indexOf(kinds, trace.UpdatePropagated)
		if upAt < 0 {
			continue
		}
		seen = true
		if !contains(kinds, trace.CommitLocal) {
			t.Errorf("txn %d propagated updates but never committed: %v", txn, kinds)
		}
	}
	if !seen {
		t.Fatal("no update propagation traced")
	}
}
