package hybrid

import (
	"fmt"

	"hybriddb/internal/comm"
	"hybriddb/internal/cpu"
	"hybriddb/internal/lock"
	"hybriddb/internal/rng"
	"hybriddb/internal/routing"
	"hybriddb/internal/sim"
	"hybriddb/internal/stats"
	"hybriddb/internal/trace"
	"hybriddb/internal/workload"
)

// txnPhase tracks where a transaction is in its lifecycle, for invariant
// checking and abort bookkeeping.
type txnPhase uint8

const (
	phaseSetup txnPhase = iota + 1
	phaseExecuting
	phaseLockWait
	phaseAuthWait
	phaseDone
)

// txnRun is the runtime state of one transaction.
type txnRun struct {
	spec      *workload.Txn
	arrivedAt float64
	shipped   bool // executing at the central site
	attempt   int  // 1 on the first execution
	phase     txnPhase

	// marked is the §2 "marked for abort" flag, set by a committed
	// conflicting action at the other tier (authentication seizure for
	// local transactions, asynchronous-update invalidation for central
	// ones). Checked at commit.
	marked bool

	// Authentication state (central executions only).
	authPending int
	authNACK    bool
	authSeized  []int // sites where locks were seized and must be released

	lockWaitFrom float64 // set while phase == phaseLockWait
}

func (t *txnRun) id() lock.ID { return lock.ID(t.spec.ID) }

// localSite is one distributed system.
type localSite struct {
	idx   int
	cpu   *cpu.Server
	disks []*cpu.Server // empty: pure-delay I/O (the paper's assumption)
	locks *lock.Manager

	inSystem int                 // n_i: class A transactions present
	running  map[lock.ID]*txnRun // transactions executing here

	shippedOut int // class A transactions currently shipped from here

	// Stale view of the central state, refreshed per the Feedback mode.
	view centralSnapshot

	lastLocalRT   float64
	lastShippedRT float64

	// Per-site measurement-window statistics.
	rtLocalA stats.Welford

	// Batched asynchronous updates awaiting the next flush
	// (Config.UpdateBatchWindow > 0).
	pendingUpdates []uint32
	flushPending   bool

	busyAtWarmup float64
}

// centralSite is the central computing complex.
type centralSite struct {
	cpu   *cpu.Server
	disks []*cpu.Server
	locks *lock.Manager

	inSystem int // n_c: transactions present (class B + shipped class A)
	running  map[lock.ID]*txnRun

	busyAtWarmup float64
}

// centralSnapshot is the central state as piggybacked on messages to sites.
type centralSnapshot struct {
	queue    int
	inSystem int
	locks    int
	at       float64
}

// Engine wires the substrates into the full hybrid system simulation.
type Engine struct {
	cfg      Config
	strategy routing.Strategy

	simulator *sim.Simulator
	network   *comm.Network
	generator *workload.Generator
	arrivals  []*workload.Arrivals
	nhpp      []*workload.NHPPArrivals // non-nil when RateSchedules is set

	sites   []*localSite
	central *centralSite

	m      *metrics
	tracer trace.Tracer // nil when tracing is off

	// Recorded workload replay (SetTrace). When non-nil, replayTxns is
	// grouped by home site and replaces the Poisson generator.
	replayTxns [][]*workload.Txn
	replayGaps [][]float64

	generated uint64
	completed uint64
	// Transactions in transit: shipped inputs not yet at central, and
	// completion replies not yet at the origin. Used by the conservation
	// check.
	inFlightShip  uint64
	inFlightReply uint64

	horizon float64
}

// New builds an engine for the configuration and strategy.
func New(cfg Config, strategy routing.Strategy) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if strategy == nil {
		return nil, fmt.Errorf("hybrid: nil strategy")
	}
	s := sim.New()
	root := rng.New(cfg.Seed)
	e := &Engine{
		cfg:       cfg,
		strategy:  strategy,
		simulator: s,
		network:   comm.NewNetwork(s, cfg.Sites, cfg.CommDelay),
		generator: workload.NewGenerator(cfg.WorkloadConfig(), root.Split().Uint64()),
		m:         newMetricsWithSeries(cfg.SeriesBucket),
		central: &centralSite{
			cpu:     cpu.NewServer(s, cfg.CentralMIPS),
			disks:   newDisks(s, cfg.DisksCentral),
			locks:   lock.NewManager(),
			running: make(map[lock.ID]*txnRun),
		},
		horizon: cfg.Warmup + cfg.Duration,
	}
	arrivalSeeds := root.Split()
	for i := 0; i < cfg.Sites; i++ {
		e.sites = append(e.sites, &localSite{
			idx:     i,
			cpu:     cpu.NewServer(s, cfg.LocalMIPS),
			disks:   newDisks(s, cfg.DisksPerSite),
			locks:   lock.NewManager(),
			running: make(map[lock.ID]*txnRun),
		})
		if cfg.RateSchedules != nil {
			e.nhpp = append(e.nhpp, workload.NewNHPPArrivals(cfg.RateSchedules[i], arrivalSeeds.Uint64()))
		} else {
			e.arrivals = append(e.arrivals, workload.NewArrivals(cfg.SiteRate(i), arrivalSeeds.Uint64()))
		}
	}
	return e, nil
}

// newDisks builds a disk bank; disks are modelled as unit-rate servers whose
// "instructions" equal the I/O time in microseconds-of-a-1MIPS-machine, so
// Submit(seconds*1e6) serves for exactly seconds.
func newDisks(s *sim.Simulator, n int) []*cpu.Server {
	if n <= 0 {
		return nil
	}
	disks := make([]*cpu.Server, n)
	for i := range disks {
		disks[i] = cpu.NewServer(s, 1)
	}
	return disks
}

// scheduleIO performs one I/O of the given duration keyed to elem: a pure
// delay under the paper's assumption, or an FCFS wait at the disk holding
// the element when a disk bank is configured.
func (e *Engine) scheduleIO(disks []*cpu.Server, elem uint32, seconds float64, done func()) {
	if len(disks) == 0 {
		e.simulator.Schedule(seconds, done)
		return
	}
	disks[int(elem)%len(disks)].Submit(seconds*1e6, done)
}

// SetTracer installs a protocol-event tracer. Call before Run; a nil tracer
// (the default) records nothing and costs nothing.
func (e *Engine) SetTracer(t trace.Tracer) { e.tracer = t }

// SetTrace replaces the synthetic workload with a recorded transaction
// stream (see workload.Capture/ReadAll): gaps[i] is the interarrival time of
// txns[i] at its home site, relative to the previous trace transaction of
// that site. Call before Run. Transactions beyond the simulation horizon
// simply never arrive.
func (e *Engine) SetTrace(txns []*workload.Txn, gaps []float64) error {
	if len(txns) != len(gaps) {
		return fmt.Errorf("hybrid: %d transactions but %d gaps", len(txns), len(gaps))
	}
	byTxns := make([][]*workload.Txn, e.cfg.Sites)
	byGaps := make([][]float64, e.cfg.Sites)
	seen := make(map[int64]struct{}, len(txns))
	for i, t := range txns {
		if t == nil {
			return fmt.Errorf("hybrid: nil transaction at index %d", i)
		}
		if t.HomeSite < 0 || t.HomeSite >= e.cfg.Sites {
			return fmt.Errorf("hybrid: transaction %d home site %d out of range", t.ID, t.HomeSite)
		}
		if gaps[i] < 0 {
			return fmt.Errorf("hybrid: negative gap at index %d", i)
		}
		if _, dup := seen[t.ID]; dup {
			return fmt.Errorf("hybrid: duplicate transaction id %d", t.ID)
		}
		seen[t.ID] = struct{}{}
		byTxns[t.HomeSite] = append(byTxns[t.HomeSite], t)
		byGaps[t.HomeSite] = append(byGaps[t.HomeSite], gaps[i])
	}
	e.replayTxns = byTxns
	e.replayGaps = byGaps
	return nil
}

// emit records a protocol event when tracing is on.
func (e *Engine) emit(kind trace.Kind, txn int64, site int, elem uint32, note string) {
	if e.tracer == nil {
		return
	}
	e.tracer.Record(trace.Event{
		At: e.simulator.Now(), Kind: kind, Txn: txn, Site: site, Elem: elem, Note: note,
	})
}

// Run executes the simulation and returns the measured result.
func (e *Engine) Run() Result {
	if e.replayTxns != nil {
		for i := range e.sites {
			e.scheduleReplay(i, 0)
		}
	} else {
		for i := range e.sites {
			e.scheduleArrival(i)
		}
	}
	e.simulator.Schedule(e.cfg.Warmup, e.startMeasurement)
	if e.cfg.SelfCheck {
		e.scheduleSelfCheck()
	}
	e.scheduleQueueSample()
	e.simulator.RunUntil(e.horizon)
	if e.cfg.SelfCheck {
		e.checkInvariants()
	}
	return e.result()
}

func (e *Engine) scheduleArrival(site int) {
	var gap float64
	if e.nhpp != nil {
		gap = e.nhpp[site].Next(e.simulator.Now())
	} else {
		gap = e.arrivals[site].Next()
	}
	if e.simulator.Now()+gap > e.horizon {
		return // no arrivals beyond the horizon
	}
	e.simulator.Schedule(gap, func() {
		e.admit(e.generator.Next(site))
		e.scheduleArrival(site)
	})
}

func (e *Engine) scheduleReplay(site, idx int) {
	if idx >= len(e.replayTxns[site]) {
		return
	}
	gap := e.replayGaps[site][idx]
	if e.simulator.Now()+gap > e.horizon {
		return
	}
	e.simulator.Schedule(gap, func() {
		e.admit(e.replayTxns[site][idx])
		e.scheduleReplay(site, idx+1)
	})
}

func (e *Engine) startMeasurement() {
	e.m.enabled = true
	e.m.start = e.simulator.Now()
	for _, ls := range e.sites {
		ls.busyAtWarmup = ls.cpu.BusyTime()
	}
	e.central.busyAtWarmup = e.central.cpu.BusyTime()
}

// scheduleQueueSample samples the CPU queue lengths once per simulated
// second during the measurement window.
func (e *Engine) scheduleQueueSample() {
	const interval = 1.0
	if e.simulator.Now()+interval > e.horizon {
		return
	}
	e.simulator.Schedule(interval, func() {
		if e.m.enabled {
			e.m.centralQueue.Add(float64(e.central.cpu.QueueLength()))
			total := 0
			for _, ls := range e.sites {
				total += ls.cpu.QueueLength()
			}
			e.m.localQueue.Add(float64(total) / float64(len(e.sites)))
		}
		e.scheduleQueueSample()
	})
}

func (e *Engine) scheduleSelfCheck() {
	const interval = 10.0
	if e.simulator.Now()+interval > e.horizon {
		return
	}
	e.simulator.Schedule(interval, func() {
		e.checkInvariants()
		e.scheduleSelfCheck()
	})
}

// ---- Arrival and routing.

// admit processes one arriving transaction, whatever its source.
func (e *Engine) admit(spec *workload.Txn) {
	site := spec.HomeSite
	e.generated++
	t := &txnRun{spec: spec, arrivedAt: e.simulator.Now(), attempt: 1, phase: phaseSetup}
	e.emit(trace.Arrive, spec.ID, site, 0, "class "+spec.Class.String())

	if spec.Class == workload.ClassB {
		if e.m.enabled {
			e.m.arrivalsB++
		}
		e.emit(trace.RouteShip, spec.ID, site, 0, "class B")
		e.ship(t)
		return
	}
	if e.m.enabled {
		e.m.arrivalsA++
	}
	st := e.routingState(site)
	if e.m.enabled {
		e.m.viewAge.Add(st.ViewAge)
	}
	if e.strategy.Decide(st) == routing.Ship {
		if e.m.enabled {
			e.m.decisionsShip++
		}
		e.emit(trace.RouteShip, spec.ID, site, 0, "")
		e.ship(t)
		return
	}
	if e.m.enabled {
		e.m.decisionsLocal++
	}
	e.emit(trace.RouteLocal, spec.ID, site, 0, "")
	e.startLocal(t)
}

// routingState assembles the strategy's view at the arrival site.
func (e *Engine) routingState(site int) routing.State {
	ls := e.sites[site]
	st := routing.State{
		Now:           e.simulator.Now(),
		Site:          site,
		LocalQueue:    ls.cpu.QueueLength(),
		LocalInSystem: ls.inSystem,
		LocalLocks:    ls.locks.LocksHeld(),
		LastLocalRT:   ls.lastLocalRT,
		LastShippedRT: ls.lastShippedRT,
	}
	if e.cfg.Feedback == FeedbackIdeal {
		st.CentralQueue = e.central.cpu.QueueLength()
		st.CentralInSystem = e.central.inSystem
		st.CentralLocks = e.central.locks.LocksHeld()
		st.ViewAge = 0
	} else {
		st.CentralQueue = ls.view.queue
		st.CentralInSystem = ls.view.inSystem
		st.CentralLocks = ls.view.locks
		st.ViewAge = e.simulator.Now() - ls.view.at
	}
	return st
}

// snapshotCentral captures the central state for piggybacking on a message
// being sent now.
func (e *Engine) snapshotCentral() centralSnapshot {
	return centralSnapshot{
		queue:    e.central.cpu.QueueLength(),
		inSystem: e.central.inSystem,
		locks:    e.central.locks.LocksHeld(),
		at:       e.simulator.Now(),
	}
}

func (ls *localSite) refreshView(snap centralSnapshot) {
	if snap.at >= ls.view.at {
		ls.view = snap
	}
}

// ---- Local execution (class A retained at the home site).

func (e *Engine) startLocal(t *txnRun) {
	ls := e.sites[t.spec.HomeSite]
	ls.inSystem++
	ls.running[t.id()] = t
	// Transaction initiation + message handling CPU, then the initial I/O
	// (no locks held during either, §3.1).
	ls.cpu.Submit(e.cfg.InstrOverhead, func() {
		e.scheduleIO(ls.disks, uint32(t.spec.ID), e.cfg.SetupIOTime, func() {
			t.phase = phaseExecuting
			e.localCall(t, 0)
		})
	})
}

// localCall performs database call i of a locally running transaction:
// CPU burst, then lock acquisition, then (first run only) the I/O.
func (e *Engine) localCall(t *txnRun, i int) {
	if i >= e.cfg.CallsPerTxn {
		e.localCommit(t)
		return
	}
	ls := e.sites[t.spec.HomeSite]
	ls.cpu.Submit(e.cfg.InstrPerCall, func() {
		elem, mode := t.spec.Elements[i], t.spec.Modes[i]
		if _, held := ls.locks.Holds(t.id(), elem); held {
			// Re-run retains locks across a cross-site abort (§3.1).
			e.localAfterLock(t, i)
			return
		}
		e.emit(trace.LockRequest, t.spec.ID, ls.idx, elem, mode.String())
		switch ls.locks.Acquire(t.id(), elem, mode, func() {
			e.recordLockWait(t)
			e.emit(trace.LockGranted, t.spec.ID, ls.idx, elem, "")
			e.localAfterLock(t, i)
		}) {
		case lock.Granted:
			e.emit(trace.LockGranted, t.spec.ID, ls.idx, elem, "")
			e.localAfterLock(t, i)
		case lock.Queued:
			t.phase = phaseLockWait
			t.lockWaitFrom = e.simulator.Now()
			e.emit(trace.LockWaitBegin, t.spec.ID, ls.idx, elem, "")
		case lock.Deadlock:
			e.emit(trace.DeadlockAbort, t.spec.ID, ls.idx, elem, "")
			e.localDeadlockAbort(t)
		}
	})
}

func (e *Engine) recordLockWait(t *txnRun) {
	if t.phase == phaseLockWait && e.m.enabled {
		e.m.lockWait.Add(e.simulator.Now() - t.lockWaitFrom)
	}
	t.phase = phaseExecuting
}

func (e *Engine) localAfterLock(t *txnRun, i int) {
	if t.attempt == 1 {
		// First run: fetch the data from disk. Re-runs find all data in
		// memory (§3.1).
		ls := e.sites[t.spec.HomeSite]
		e.scheduleIO(ls.disks, t.spec.Elements[i], e.cfg.IOTimePerCall, func() { e.localCall(t, i+1) })
		return
	}
	e.localCall(t, i+1)
}

// localCommit is the commit point of a locally running class A transaction
// (§2): abort if marked; otherwise release locks, raise coherence counts on
// updated elements, and propagate the updates asynchronously — completing
// without waiting for the central acknowledgement.
func (e *Engine) localCommit(t *txnRun) {
	if t.marked {
		if e.m.enabled {
			e.m.abortsLocalSeized++
		}
		e.emit(trace.CrossAbortLocal, t.spec.ID, t.spec.HomeSite, 0, "seized by central commit")
		e.restartLocal(t)
		return
	}
	ls := e.sites[t.spec.HomeSite]
	updates := t.spec.Updates()
	for _, elem := range t.spec.Elements {
		ls.locks.Release(t.id(), elem)
	}
	for _, elem := range updates {
		ls.locks.IncrCoherence(elem)
	}
	if len(updates) > 0 {
		site := t.spec.HomeSite
		e.emit(trace.UpdatePropagated, t.spec.ID, site, 0, fmt.Sprintf("%d elements", len(updates)))
		e.propagateUpdates(ls, updates)
	}
	e.emit(trace.CommitLocal, t.spec.ID, t.spec.HomeSite, 0, "")

	now := e.simulator.Now()
	rt := now - t.arrivedAt
	t.phase = phaseDone
	ls.lastLocalRT = rt
	ls.inSystem--
	delete(ls.running, t.id())
	e.completed++
	if e.m.enabled {
		e.m.rtAll.Add(rt)
		e.m.rtLocalA.Add(rt)
		e.m.rtHist.Add(rt)
		e.m.histLocalA.Add(rt)
		e.m.recordSeries(now, rt)
		ls.rtLocalA.Add(rt)
	}
}

// propagateUpdates ships a committed transaction's updates to the central
// site — immediately, or batched per Config.UpdateBatchWindow. Batching
// keeps per-link FIFO ordering: the flush sends one message on the same
// uplink that unbatched commits would use.
func (e *Engine) propagateUpdates(ls *localSite, updates []uint32) {
	site := ls.idx
	if e.cfg.UpdateBatchWindow <= 0 {
		e.network.ToCentral(site, func() { e.centralApplyUpdate(site, updates) })
		return
	}
	ls.pendingUpdates = append(ls.pendingUpdates, updates...)
	if ls.flushPending {
		return
	}
	ls.flushPending = true
	e.simulator.Schedule(e.cfg.UpdateBatchWindow, func() {
		batch := ls.pendingUpdates
		ls.pendingUpdates = nil
		ls.flushPending = false
		e.network.ToCentral(site, func() { e.centralApplyUpdate(site, batch) })
	})
}

// restartLocal re-runs a cross-site-aborted local transaction. Locks other
// than the seized ones are retained (§3.1); data is in memory.
func (e *Engine) restartLocal(t *txnRun) {
	t.marked = false
	t.attempt++
	t.phase = phaseExecuting
	e.emit(trace.Rerun, t.spec.ID, t.spec.HomeSite, 0, fmt.Sprintf("attempt %d", t.attempt))
	e.simulator.Schedule(e.cfg.RestartDelay, func() { e.localCall(t, 0) })
}

// localDeadlockAbort handles a same-site deadlock: the requester aborts and
// releases all locks (§4.1), then re-runs.
func (e *Engine) localDeadlockAbort(t *txnRun) {
	if e.m.enabled {
		e.m.abortsDeadlockLocal++
	}
	ls := e.sites[t.spec.HomeSite]
	ls.locks.ReleaseAll(t.id())
	t.marked = false
	t.attempt++
	t.phase = phaseExecuting
	e.simulator.Schedule(e.cfg.RestartDelay, func() { e.localCall(t, 0) })
}

// ---- Central execution (class B, and shipped class A).

func (e *Engine) ship(t *txnRun) {
	t.shipped = true
	home := t.spec.HomeSite
	if t.spec.Class == workload.ClassA {
		e.sites[home].shippedOut++
	}
	e.inFlightShip++
	e.network.ToCentral(home, func() {
		e.inFlightShip--
		e.startCentral(t)
	})
}

func (e *Engine) startCentral(t *txnRun) {
	e.central.inSystem++
	e.central.running[t.id()] = t
	e.central.cpu.Submit(e.cfg.InstrOverhead, func() {
		e.scheduleIO(e.central.disks, uint32(t.spec.ID), e.cfg.SetupIOTime, func() {
			t.phase = phaseExecuting
			e.centralCall(t, 0)
		})
	})
}

func (e *Engine) centralCall(t *txnRun, i int) {
	if i >= e.cfg.CallsPerTxn {
		e.centralBeginCommit(t)
		return
	}
	e.central.cpu.Submit(e.cfg.InstrPerCall, func() {
		elem, mode := t.spec.Elements[i], t.spec.Modes[i]
		if _, held := e.central.locks.Holds(t.id(), elem); held {
			e.centralAfterLock(t, i)
			return
		}
		e.emit(trace.LockRequest, t.spec.ID, -1, elem, mode.String())
		switch e.central.locks.Acquire(t.id(), elem, mode, func() {
			e.recordLockWait(t)
			e.emit(trace.LockGranted, t.spec.ID, -1, elem, "")
			e.centralAfterLock(t, i)
		}) {
		case lock.Granted:
			e.emit(trace.LockGranted, t.spec.ID, -1, elem, "")
			e.centralAfterLock(t, i)
		case lock.Queued:
			t.phase = phaseLockWait
			t.lockWaitFrom = e.simulator.Now()
			e.emit(trace.LockWaitBegin, t.spec.ID, -1, elem, "")
		case lock.Deadlock:
			e.emit(trace.DeadlockAbort, t.spec.ID, -1, elem, "")
			e.centralDeadlockAbort(t)
		}
	})
}

func (e *Engine) centralAfterLock(t *txnRun, i int) {
	if t.attempt == 1 {
		e.scheduleIO(e.central.disks, t.spec.Elements[i], e.cfg.IOTimePerCall, func() { e.centralCall(t, i+1) })
		return
	}
	e.centralCall(t, i+1)
}

// centralBeginCommit is the commit point of a centrally running transaction:
// abort if invalidated, otherwise run the authentication phase against every
// master site of the data locked (§2).
func (e *Engine) centralBeginCommit(t *txnRun) {
	if t.marked {
		if e.m.enabled {
			e.m.abortsCentralInval++
		}
		e.emit(trace.CrossAbortCentral, t.spec.ID, -1, 0, "invalidated by async update")
		e.restartCentral(t)
		return
	}
	wl := e.cfg.WorkloadConfig()
	sites := t.spec.SitesTouched(wl)
	t.phase = phaseAuthWait
	t.authPending = len(sites)
	t.authNACK = false
	t.authSeized = t.authSeized[:0]
	if e.m.enabled {
		e.m.authRounds++
	}

	snap := e.snapshotCentral()
	for _, site := range sites {
		site := site
		var elems []uint32
		var modes []lock.Mode
		for j, elem := range t.spec.Elements {
			if wl.PartitionOf(elem) == site {
				elems = append(elems, elem)
				modes = append(modes, t.spec.Modes[j])
			}
		}
		e.emit(trace.AuthRequest, t.spec.ID, site, 0, fmt.Sprintf("%d elements", len(elems)))
		e.network.ToSite(site, func() {
			// Authentication messages always refresh the site's view of
			// the central state (§4.2).
			e.sites[site].refreshView(snap)
			e.siteAuthenticate(t, site, elems, modes)
		})
	}
}

// siteAuthenticate processes an authentication request at a local site: NACK
// if any element has in-flight asynchronous updates; otherwise seize the
// locks, marking conflicting local holders for abort, and ACK.
func (e *Engine) siteAuthenticate(t *txnRun, site int, elems []uint32, modes []lock.Mode) {
	ls := e.sites[site]
	nack := false
	for _, elem := range elems {
		if ls.locks.Coherence(elem) != 0 {
			nack = true
			break
		}
	}
	if !nack {
		for j, elem := range elems {
			victims, ok := ls.locks.Seize(t.id(), elem, modes[j])
			if !ok {
				// Unreachable: coherence was checked above and cannot
				// change within one event.
				panic("hybrid: seize failed after coherence check")
			}
			if len(victims) > 0 {
				e.emit(trace.AuthSeized, t.spec.ID, site, elem,
					fmt.Sprintf("%d victims", len(victims)))
			}
			for _, v := range victims {
				e.markVictim(ls, v)
			}
		}
		e.emit(trace.AuthACK, t.spec.ID, site, 0, "")
	} else {
		e.emit(trace.AuthNACK, t.spec.ID, site, 0, "in-flight updates")
	}
	e.network.ToCentral(site, func() { e.centralAuthReply(t, site, nack) })
}

// markVictim marks the holder of a seized lock for abort. The victim is
// normally a local transaction; it can also be another central transaction's
// stale authentication lock if that transaction was invalidated mid-flight,
// in which case it is already marked.
func (e *Engine) markVictim(ls *localSite, v lock.ID) {
	if vt, ok := ls.running[v]; ok {
		vt.marked = true
		return
	}
	if vt, ok := e.central.running[v]; ok {
		vt.marked = true
	}
}

func (e *Engine) centralAuthReply(t *txnRun, site int, nack bool) {
	if nack {
		t.authNACK = true
	} else {
		t.authSeized = append(t.authSeized, site)
	}
	t.authPending--
	if t.authPending > 0 {
		return
	}
	// All replies in: final commit gate (§2) — every site positive and the
	// central locks not invalidated meanwhile.
	if t.authNACK || t.marked {
		if e.m.enabled {
			if t.authNACK {
				e.m.abortsCentralNACK++
			} else {
				e.m.abortsCentralInval++
			}
		}
		reason := "invalidated during authentication"
		if t.authNACK {
			reason = "authentication NACK"
		}
		e.emit(trace.CrossAbortCentral, t.spec.ID, -1, 0, reason)
		e.releaseAuthLocks(t)
		e.restartCentral(t)
		return
	}
	e.centralCommit(t)
}

// releaseAuthLocks tells every site that seized locks for t to release them
// (abort path).
func (e *Engine) releaseAuthLocks(t *txnRun) {
	snap := e.snapshotCentral()
	for _, site := range t.authSeized {
		site := site
		e.network.ToSite(site, func() {
			if e.cfg.Feedback == FeedbackAllMessages {
				e.sites[site].refreshView(snap)
			}
			e.sites[site].locks.ReleaseAll(t.id())
		})
	}
	t.authSeized = t.authSeized[:0]
}

// centralCommit finalizes a central transaction: commit messages release the
// authentication locks and install the updates at the involved sites, the
// central locks are released, and the completion reply travels to the origin
// where the response time is recorded.
func (e *Engine) centralCommit(t *txnRun) {
	snap := e.snapshotCentral()
	for _, site := range t.authSeized {
		site := site
		e.network.ToSite(site, func() {
			if e.cfg.Feedback == FeedbackAllMessages {
				e.sites[site].refreshView(snap)
			}
			e.sites[site].locks.ReleaseAll(t.id())
		})
	}
	t.authSeized = t.authSeized[:0]
	e.central.locks.ReleaseAll(t.id())
	e.central.inSystem--
	delete(e.central.running, t.id())
	t.phase = phaseDone
	e.emit(trace.CommitCentral, t.spec.ID, -1, 0, "")

	home := t.spec.HomeSite
	e.inFlightReply++
	e.network.ToSite(home, func() {
		e.inFlightReply--
		e.emit(trace.ReplyDelivered, t.spec.ID, home, 0, "")
		ls := e.sites[home]
		if e.cfg.Feedback == FeedbackAllMessages {
			ls.refreshView(snap)
		}
		now := e.simulator.Now()
		rt := now - t.arrivedAt
		e.completed++
		if t.spec.Class == workload.ClassA {
			ls.shippedOut--
			ls.lastShippedRT = rt
		}
		if e.m.enabled {
			e.m.rtAll.Add(rt)
			e.m.rtHist.Add(rt)
			e.m.recordSeries(now, rt)
			if t.spec.Class == workload.ClassA {
				e.m.rtShippedA.Add(rt)
				e.m.histShipA.Add(rt)
			} else {
				e.m.rtClassB.Add(rt)
				e.m.histClassB.Add(rt)
			}
		}
	})
}

// restartCentral re-runs an aborted central transaction at the central site,
// retaining its surviving central locks (§3.1).
func (e *Engine) restartCentral(t *txnRun) {
	t.marked = false
	t.attempt++
	t.phase = phaseExecuting
	e.emit(trace.Rerun, t.spec.ID, -1, 0, fmt.Sprintf("attempt %d", t.attempt))
	e.simulator.Schedule(e.cfg.RestartDelay, func() { e.centralCall(t, 0) })
}

func (e *Engine) centralDeadlockAbort(t *txnRun) {
	if e.m.enabled {
		e.m.abortsDeadlockCentral++
	}
	e.central.locks.ReleaseAll(t.id())
	t.marked = false
	t.attempt++
	t.phase = phaseExecuting
	e.simulator.Schedule(e.cfg.RestartDelay, func() { e.centralCall(t, 0) })
}

// ---- Asynchronous update propagation (local commits -> central).

// centralApplyUpdate processes an asynchronous update message from a local
// site: invalidate central locks on the updated elements (mark holders for
// abort), install the update, and acknowledge so the site can lower its
// coherence counts.
func (e *Engine) centralApplyUpdate(site int, updates []uint32) {
	if e.cfg.UpdateProcInstr > 0 {
		// Message handling consumes central CPU before the update applies
		// (per message, which is what batching amortises).
		e.central.cpu.Submit(e.cfg.UpdateProcInstr, func() { e.applyUpdateNow(site, updates) })
		return
	}
	e.applyUpdateNow(site, updates)
}

// applyUpdateNow performs the §2 invalidate-apply-acknowledge step of an
// asynchronous update message.
func (e *Engine) applyUpdateNow(site int, updates []uint32) {
	for _, elem := range updates {
		for _, holder := range e.central.locks.Holders(elem) {
			if vt, ok := e.central.running[holder]; ok {
				vt.marked = true
			}
			e.central.locks.Release(holder, elem)
		}
	}
	e.emit(trace.UpdateApplied, 0, -1, 0, fmt.Sprintf("%d elements from site %d", len(updates), site))
	snap := e.snapshotCentral()
	e.network.ToSite(site, func() {
		ls := e.sites[site]
		if e.cfg.Feedback == FeedbackAllMessages {
			ls.refreshView(snap)
		}
		for _, elem := range updates {
			ls.locks.DecrCoherence(elem)
		}
		e.emit(trace.UpdateAcked, 0, site, 0, "")
	})
}

// ---- Results and invariants.

func (e *Engine) result() Result {
	window := e.simulator.Now() - e.m.start
	if !e.m.enabled || window <= 0 {
		window = 0
	}
	r := Result{
		Strategy:              e.strategy.Name(),
		Window:                window,
		CompletedLocalA:       e.m.rtLocalA.Count(),
		CompletedShippedA:     e.m.rtShippedA.Count(),
		CompletedClassB:       e.m.rtClassB.Count(),
		MeanRT:                e.m.rtAll.Mean(),
		MeanRTLocalA:          e.m.rtLocalA.Mean(),
		MeanRTShippedA:        e.m.rtShippedA.Mean(),
		MeanRTClassB:          e.m.rtClassB.Mean(),
		P95RT:                 e.m.rtHist.Quantile(0.95),
		P95RTLocalA:           e.m.histLocalA.Quantile(0.95),
		P95RTShippedA:         e.m.histShipA.Quantile(0.95),
		P95RTClassB:           e.m.histClassB.Quantile(0.95),
		AbortsDeadlockLocal:   e.m.abortsDeadlockLocal,
		AbortsDeadlockCentral: e.m.abortsDeadlockCentral,
		AbortsLocalSeized:     e.m.abortsLocalSeized,
		AbortsCentralNACK:     e.m.abortsCentralNACK,
		AbortsCentralInval:    e.m.abortsCentralInval,
		MeanLockWait:          e.m.lockWait.Mean(),
		MeanCentralQueue:      e.m.centralQueue.Mean(),
		MeanLocalQueue:        e.m.localQueue.Mean(),
		MeanViewAge:           e.m.viewAge.Mean(),
		AuthRounds:            e.m.authRounds,
		MessagesSent:          e.network.MessagesSent(),
		Generated:             e.generated,
		Completed:             e.completed,
	}
	if window > 0 {
		r.Throughput = float64(e.m.rtAll.Count()) / window
		var busy, maxUtil float64
		r.PerSite = make([]SiteStats, len(e.sites))
		for i, ls := range e.sites {
			u := (ls.cpu.BusyTime() - ls.busyAtWarmup) / window
			busy += u
			if u > maxUtil {
				maxUtil = u
			}
			r.PerSite[i] = SiteStats{
				Site:            i,
				Utilization:     u,
				CompletedLocalA: ls.rtLocalA.Count(),
				MeanRTLocalA:    ls.rtLocalA.Mean(),
			}
		}
		r.UtilLocalMean = busy / float64(len(e.sites))
		r.UtilLocalMax = maxUtil
		r.UtilCentral = (e.central.cpu.BusyTime() - e.central.busyAtWarmup) / window
	}
	if d := e.m.decisionsLocal + e.m.decisionsShip; d > 0 {
		r.ShipFraction = float64(e.m.decisionsShip) / float64(d)
	}
	for i := range e.m.seriesCount {
		b := RTBucket{
			Start:       float64(i) * e.m.seriesBucket,
			Completions: e.m.seriesCount[i],
		}
		if b.Completions > 0 {
			b.MeanRT = e.m.seriesSum[i] / float64(b.Completions)
		}
		r.RTSeries = append(r.RTSeries, b)
	}
	return r
}

// checkInvariants verifies cross-component consistency; enabled by
// Config.SelfCheck. It panics on violation (a simulator bug, never a
// workload condition).
func (e *Engine) checkInvariants() {
	var present uint64
	for _, ls := range e.sites {
		ls.locks.CheckInvariants()
		if ls.inSystem < 0 {
			panic(fmt.Sprintf("hybrid: negative inSystem at site %d", ls.idx))
		}
		if len(ls.running) != ls.inSystem {
			panic(fmt.Sprintf("hybrid: site %d running=%d inSystem=%d",
				ls.idx, len(ls.running), ls.inSystem))
		}
		present += uint64(ls.inSystem)
	}
	e.central.locks.CheckInvariants()
	if len(e.central.running) != e.central.inSystem {
		panic(fmt.Sprintf("hybrid: central running=%d inSystem=%d",
			len(e.central.running), e.central.inSystem))
	}
	present += uint64(e.central.inSystem)
	total := e.completed + present + e.inFlightShip + e.inFlightReply
	if total != e.generated {
		panic(fmt.Sprintf("hybrid: conservation violated: generated=%d accounted=%d "+
			"(completed=%d present=%d shipping=%d replying=%d)",
			e.generated, total, e.completed, present, e.inFlightShip, e.inFlightReply))
	}
}
