package hybrid

import (
	"fmt"

	"hybriddb/internal/comm"
	"hybriddb/internal/cpu"
	"hybriddb/internal/exec"
	"hybriddb/internal/flatmap"
	"hybriddb/internal/hybrid/obs"
	"hybriddb/internal/lock"
	"hybriddb/internal/rng"
	"hybriddb/internal/routing"
	"hybriddb/internal/sim"
	"hybriddb/internal/trace"
	"hybriddb/internal/workload"
)

// Engine wires the substrates into the full hybrid system simulation. The
// logic lives in four layers, each in its own file:
//
//   - site layer (site.go): localSite/centralSite state, view snapshots, and
//     disk/CPU server construction;
//   - transaction lifecycle layer (local_path.go, central_path.go,
//     commit.go): the txnRun phase machine and the cross-site
//     authenticate/ack/nack commit protocol;
//   - propagation layer (propagate.go): asynchronous update application and
//     the piggybacked central-state feedback routingState consumes;
//   - observer bus (obs package, wired here): metrics, tracing, queue
//     sampling, and invariant self-checks subscribe to engine events.
//
// Engine itself only constructs, wires, and drives the run loop — which is
// either the single-queue sequential loop (the bit-exact oracle) or the
// sharded conservative-parallel loop (parallel.go), selected at Run time.
type Engine struct {
	cfg      Config
	strategy routing.Strategy
	// strategies holds the per-site decision instances: stateful strategies
	// (routing.SiteLocal) are forked one per site so each site's decision
	// stream is a pure function of that site's arrivals; stateless ones are
	// shared. Both run modes use the same instances, which is what makes
	// their decision streams bit-identical.
	strategies []routing.Strategy

	simulator *sim.Simulator // the sequential event queue (shard 0's in a sharded run)
	network   Transport
	generator *workload.Generator
	arrivals  []*workload.Arrivals
	nhpp      []*workload.NHPPArrivals // non-nil when RateSchedules is set

	sites   []*localSite
	central *centralSite

	// Sharded-run state (parallel.go); group is nil in a sequential run.
	group    *sim.Group
	parallel bool

	// Lifecycle and propagation layers (stateless handles on the engine).
	local  localPath
	remote centralPath
	commit commitProtocol
	prop   propagator

	// Instrumentation: every observation flows through the bus. The metrics
	// observer is always subscribed (it produces the Result); tracing and
	// self-checking subscribe on demand. externalObs counts observers from
	// outside the engine — their presence forces the sequential loop, since
	// only a single event queue produces one globally ordered event stream.
	bus         obs.Bus
	m           *metrics
	externalObs int

	// Recorded workload replay (SetTrace). When non-nil, replayTxns is
	// grouped by home site and replaces the Poisson generator.
	replayTxns [][]*workload.Txn
	replayGaps [][]float64

	// Partial-replication precompute (Config.CentralHotFraction < 1): a
	// partition element at offset >= hotPerPart is cold — not centrally
	// resident — and a central-path call on it pays ColdFetchDelay.
	partialRepl bool
	hotPerPart  uint32
	partSize    uint32

	horizon float64
}

// New builds an engine for the configuration and strategy.
func New(cfg Config, strategy routing.Strategy) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if strategy == nil {
		return nil, fmt.Errorf("hybrid: nil strategy")
	}
	s := sim.New()
	root := rng.New(cfg.Seed)
	e := &Engine{
		cfg:       cfg,
		strategy:  strategy,
		simulator: s,
		generator: workload.NewGenerator(cfg.WorkloadConfig(), root.Split().Uint64()),
		m:         newMetrics(cfg.SeriesBucket, cfg.Sites),
		central: &centralSite{
			sched:   exec.NewDispatch(exec.Sim(s)),
			cpu:     cpu.NewServer(exec.Sim(s), cfg.CentralMIPS),
			disks:   newDisks(exec.Sim(s), cfg.DisksCentral),
			locks:   lock.NewManager(),
			running: flatmap.New[lock.ID, *txnRun](16),
		},
		horizon: cfg.Warmup + cfg.Duration,
	}
	e.partSize = cfg.WorkloadConfig().PartitionSize()
	if cfg.CentralHotFraction < 1 {
		e.partialRepl = true
		e.hotPerPart = uint32(cfg.CentralHotFraction * float64(e.partSize))
	} else {
		e.hotPerPart = e.partSize
	}
	e.network = comm.NewNetwork(s, cfg.Sites, cfg.CommDelay)
	e.local = localPath{e}
	e.remote = centralPath{e}
	e.commit = commitProtocol{e}
	e.prop = propagator{e}
	e.bus.Subscribe(e.m)
	if cfg.SelfCheck {
		e.bus.Subscribe(invariantObserver{e})
	}
	arrivalSeeds := root.Split()
	for i := 0; i < cfg.Sites; i++ {
		e.sites = append(e.sites, &localSite{
			idx:     i,
			sched:   exec.NewDispatch(exec.Sim(s)),
			cpu:     cpu.NewServer(exec.Sim(s), cfg.LocalMIPS),
			disks:   newDisks(exec.Sim(s), cfg.DisksPerSite),
			locks:   lock.NewManager(),
			running: flatmap.New[lock.ID, *txnRun](16),
		})
		if cfg.RateSchedules != nil {
			e.nhpp = append(e.nhpp, workload.NewNHPPArrivals(cfg.RateSchedules[i], arrivalSeeds.Uint64()))
		} else {
			e.arrivals = append(e.arrivals, workload.NewArrivals(cfg.SiteRate(i), arrivalSeeds.Uint64()))
		}
	}
	e.strategies = make([]routing.Strategy, cfg.Sites)
	if sl, ok := strategy.(routing.SiteLocal); ok {
		stratSeeds := root.Split()
		for i := range e.strategies {
			e.strategies[i] = sl.ForSite(i, stratSeeds.Uint64())
		}
	} else {
		for i := range e.strategies {
			e.strategies[i] = strategy
		}
	}
	return e, nil
}

// Subscribe attaches an observer to the engine's bus. Call before Run.
// Observers implementing obs.DetailObserver also receive the protocol-detail
// (trace) stream. An external observer pins the run to the sequential loop:
// only a single event queue delivers one globally ordered event stream.
func (e *Engine) Subscribe(o obs.Observer) {
	e.externalObs++
	e.bus.Subscribe(o)
}

// SetTracer subscribes a protocol-event tracer on the bus. Call before Run;
// a nil tracer is ignored, and with no tracer subscribed the engine never
// materializes trace events. Like Subscribe, a tracer forces the sequential
// loop.
func (e *Engine) SetTracer(t trace.Tracer) {
	if t == nil {
		return
	}
	e.externalObs++
	e.bus.Subscribe(obs.NewTracer(t))
}

// observeAt emits a lifecycle event stamped with the given simulated time —
// the clock of whichever shard (or the single queue) the emitting event is
// executing on.
func (e *Engine) observeAt(at float64, ev obs.Event) {
	ev.At = at
	e.bus.Emit(ev)
}

// emit records a protocol-detail event. The HasDetail guard keeps the hot
// loop free of event (and note string) construction when tracing is off;
// callers with expensive notes should check Detailed themselves. Detail
// observers imply a sequential run, so the single queue's clock is correct.
func (e *Engine) emit(kind trace.Kind, txn int64, site int, elem uint32, note string) {
	if !e.bus.HasDetail() {
		return
	}
	e.bus.EmitDetail(obs.Event{
		At: e.simulator.Now(), Kind: obs.TraceDetail,
		Trace: kind, Txn: txn, Site: site, Elem: elem, Note: note,
	})
}

// Detailed reports whether a detail (trace) observer is subscribed.
func (e *Engine) Detailed() bool { return e.bus.HasDetail() }

// SetTrace replaces the synthetic workload with a recorded transaction
// stream (see workload.Capture/ReadAll): gaps[i] is the interarrival time of
// txns[i] at its home site, relative to the previous trace transaction of
// that site. Call before Run. Transactions beyond the simulation horizon
// simply never arrive.
func (e *Engine) SetTrace(txns []*workload.Txn, gaps []float64) error {
	if len(txns) != len(gaps) {
		return fmt.Errorf("hybrid: %d transactions but %d gaps", len(txns), len(gaps))
	}
	byTxns := make([][]*workload.Txn, e.cfg.Sites)
	byGaps := make([][]float64, e.cfg.Sites)
	seen := make(map[int64]struct{}, len(txns))
	for i, t := range txns {
		if t == nil {
			return fmt.Errorf("hybrid: nil transaction at index %d", i)
		}
		if t.HomeSite < 0 || t.HomeSite >= e.cfg.Sites {
			return fmt.Errorf("hybrid: transaction %d home site %d out of range", t.ID, t.HomeSite)
		}
		if gaps[i] < 0 {
			return fmt.Errorf("hybrid: negative gap at index %d", i)
		}
		if _, dup := seen[t.ID]; dup {
			return fmt.Errorf("hybrid: duplicate transaction id %d", t.ID)
		}
		seen[t.ID] = struct{}{}
		byTxns[t.HomeSite] = append(byTxns[t.HomeSite], t)
		byGaps[t.HomeSite] = append(byGaps[t.HomeSite], gaps[i])
	}
	e.replayTxns = byTxns
	e.replayGaps = byGaps
	return nil
}

// Parallel reports whether the last (or, after setup, current) Run uses the
// sharded core. Meaningful after Run returns; used by tests and by the CLI
// to report the effective mode.
func (e *Engine) Parallel() bool { return e.parallel }

// Run executes the simulation and returns the measured result.
func (e *Engine) Run() Result {
	e.setupRunMode()
	if e.replayTxns != nil {
		for i := range e.sites {
			e.scheduleReplay(i, 0)
		}
	} else {
		for i := range e.sites {
			e.scheduleArrival(i)
		}
	}
	if e.parallel {
		e.runSharded()
	} else {
		e.simulator.Schedule(e.cfg.Warmup, e.startMeasurement)
		if e.cfg.SelfCheck {
			e.scheduleSelfCheck()
		}
		e.scheduleQueueSample()
		if e.cfg.EpochLength > 0 {
			e.scheduleEpochFlush()
		}
		e.simulator.RunUntil(e.horizon)
	}
	if e.cfg.SelfCheck {
		e.observeAt(e.horizon, obs.Event{Kind: obs.SelfCheck})
	}
	return e.result()
}

func (e *Engine) scheduleArrival(site int) {
	ls := e.sites[site]
	var gap float64
	if e.nhpp != nil {
		gap = e.nhpp[site].Next(ls.sched.Now())
	} else {
		gap = e.arrivals[site].Next()
	}
	if ls.sched.Now()+gap > e.horizon {
		return // no arrivals beyond the horizon
	}
	if ls.arriveFn == nil {
		ls.arriveFn = func() {
			var spec *workload.Txn
			if n := len(ls.specFree); n > 0 {
				spec = ls.specFree[n-1]
				ls.specFree[n-1] = nil
				ls.specFree = ls.specFree[:n-1]
			}
			e.admit(e.generator.NextInto(site, spec))
			e.scheduleArrival(site)
		}
	}
	ls.sched.Schedule(gap, ls.arriveFn)
}

func (e *Engine) scheduleReplay(site, idx int) {
	if idx >= len(e.replayTxns[site]) {
		return
	}
	ls := e.sites[site]
	gap := e.replayGaps[site][idx]
	if ls.sched.Now()+gap > e.horizon {
		return
	}
	ls.sched.Schedule(gap, func() {
		e.admit(e.replayTxns[site][idx])
		e.scheduleReplay(site, idx+1)
	})
}

// startMeasurement opens the measurement window: the site layer snapshots
// CPU busy time for utilization accounting, and observers arm themselves on
// the MeasureStart event. In a sharded run it executes at a barrier with
// every shard clock aligned on the warmup instant, so the busy-time
// snapshots (which integrate up to "now") read exactly as in the sequential
// run.
func (e *Engine) startMeasurement() {
	for _, ls := range e.sites {
		ls.busyAtWarmup = ls.cpu.BusyTime()
	}
	e.central.busyAtWarmup = e.central.cpu.BusyTime()
	e.observeAt(e.cfg.Warmup, obs.Event{Kind: obs.MeasureStart})
}

// sampleQueues is the 1 Hz queue-length observation shared by both run
// modes; at is the sample instant (every shard clock sits on it in a
// sharded run).
func (e *Engine) sampleQueues(at float64) {
	total := 0
	for _, ls := range e.sites {
		total += ls.cpu.QueueLength()
	}
	e.observeAt(at, obs.Event{
		Kind:  obs.QueueSample,
		Value: float64(e.central.cpu.QueueLength()),
		Aux:   float64(total) / float64(len(e.sites)),
	})
}

// scheduleQueueSample samples the CPU queue lengths once per simulated
// second and publishes them on the bus (sequential mode; the sharded loop
// arms the same chain as barrier events).
func (e *Engine) scheduleQueueSample() {
	const interval = 1.0
	if e.simulator.Now()+interval > e.horizon {
		return
	}
	e.simulator.Schedule(interval, func() {
		e.sampleQueues(e.simulator.Now())
		e.scheduleQueueSample()
	})
}

// scheduleEpochFlush drives the global epoch ticker of the epoch-batched
// propagation mode (sequential run): every EpochLength seconds, drain each
// site's pending update batch onto its uplink. Boundary instants are built by
// repeated addition from zero — the identical floats the sharded chain in
// parallel.go computes — and the chain is armed last in Run, after the sample
// chain, so a boundary coinciding with a sample instant flushes after the
// sample in both run modes.
func (e *Engine) scheduleEpochFlush() {
	epoch := e.cfg.EpochLength
	if e.simulator.Now()+epoch > e.horizon {
		return
	}
	e.simulator.Schedule(epoch, func() {
		e.prop.flushEpoch()
		e.scheduleEpochFlush()
	})
}

func (e *Engine) scheduleSelfCheck() {
	const interval = 10.0
	if e.simulator.Now()+interval > e.horizon {
		return
	}
	e.simulator.Schedule(interval, func() {
		e.observeAt(e.simulator.Now(), obs.Event{Kind: obs.SelfCheck})
		e.scheduleSelfCheck()
	})
}

// admit processes one arriving transaction, whatever its source: class B
// ships unconditionally, class A consults the routing strategy. It executes
// on the home site's shard.
func (e *Engine) admit(spec *workload.Txn) {
	site := spec.HomeSite
	ls := e.sites[site]
	ls.generated++
	t := e.newTxnRun(ls, spec)
	if e.Detailed() {
		e.emit(trace.Arrive, spec.ID, site, 0, "class "+spec.Class.String())
	}

	if spec.Class == workload.ClassB {
		e.observeAt(ls.sched.Now(), obs.Event{Kind: obs.TxnArrive, ClassB: true, Shipped: true, Site: site})
		e.emit(trace.RouteShip, spec.ID, site, 0, "class B")
		e.remote.ship(t)
		return
	}
	st := e.routingState(site)
	shipped := e.strategies[site].Decide(st) == routing.Ship
	e.observeAt(ls.sched.Now(), obs.Event{Kind: obs.TxnArrive, Shipped: shipped, Value: st.ViewAge, Site: site})
	if shipped {
		e.emit(trace.RouteShip, spec.ID, site, 0, "")
		e.remote.ship(t)
		return
	}
	e.emit(trace.RouteLocal, spec.ID, site, 0, "")
	e.local.start(t)
}

// generatedTotal sums the per-site admission counters.
func (e *Engine) generatedTotal() uint64 {
	var n uint64
	for _, ls := range e.sites {
		n += ls.generated
	}
	return n
}

// completedTotal sums the per-site completion counters.
func (e *Engine) completedTotal() uint64 {
	var n uint64
	for _, ls := range e.sites {
		n += ls.completed
	}
	return n
}

// inFlightShipTotal counts shipped inputs still travelling to the central
// site: inputs sent minus inputs received.
func (e *Engine) inFlightShipTotal() uint64 {
	var sent uint64
	for _, ls := range e.sites {
		sent += ls.shipStarted
	}
	return sent - e.central.shipArrived
}

// isCold reports whether a lockspace element is outside the central
// complex's replicated hot fragment. Offsets are taken within the element's
// partition; the remainder elements of an uneven split (attached to the last
// site) sit past its partition size and are always cold.
func (e *Engine) isCold(elem uint32) bool {
	site := elem / e.partSize
	if int(site) >= e.cfg.Sites {
		site = uint32(e.cfg.Sites - 1)
	}
	return elem-site*e.partSize >= e.hotPerPart
}

// inFlightReplyTotal counts completion replies still travelling to their
// origin: replies sent minus replies delivered.
func (e *Engine) inFlightReplyTotal() uint64 {
	var delivered uint64
	for _, ls := range e.sites {
		delivered += ls.replyArrived
	}
	return e.central.replyStarted - delivered
}
